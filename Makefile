GO ?= go

.PHONY: all build vet test race check bench fmt

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The full local gate: everything CI would run.
check: build vet race

bench:
	$(GO) test -bench . -benchtime 1x -run ^$$ .

fmt:
	gofmt -l -w .
