GO ?= go

# Label stamped into the benchmark snapshot written by `make bench`.
LABEL ?= dev

.PHONY: all build vet test race check bench benchcmp bench-regress bench-smoke fmt fuzz calibration-roundtrip obs-gate serve-gate serve-bench cluster-gate cluster-bench netchaos-gate remote-bench hotpath-gate hotpath-bench trace-gate scenario-gate scenario-bench

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
	else echo "vet: staticcheck not installed, skipping"; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short fuzz smoke over the numeric kernels: the piecewise fitter and
# the Poisson-binomial distribution must never panic or emit non-finite
# values on adversarial input.
fuzz:
	$(GO) test -run ^$$ -fuzz '^FuzzFitPiecewise$$' -fuzztime 5s ./internal/stats
	$(GO) test -run ^$$ -fuzz '^FuzzPoissonBinomial$$' -fuzztime 5s ./internal/prob
	$(GO) test -run ^$$ -fuzz '^FuzzDecodeRequest$$' -fuzztime 5s ./internal/serve
	$(GO) test -run ^$$ -fuzz '^FuzzDecodeBinaryRequest$$' -fuzztime 5s ./internal/serve
	$(GO) test -run ^$$ -fuzz '^FuzzReadTraceHeader$$' -fuzztime 5s ./internal/scenario
	$(GO) test -run ^$$ -fuzz '^FuzzDecodeTraceRecord$$' -fuzztime 5s ./internal/scenario

# Persistence gate: write a calibration envelope, verify it, then prove
# damaged copies are rejected — a truncated file and a payload with one
# value flipped (valid JSON, so only the checksum can catch it).
calibration-roundtrip:
	tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	$(GO) run ./cmd/calibrate -burst 50 -contenders 2 -save "$$tmp/cal.json" && \
	$(GO) run ./cmd/calibrate -check "$$tmp/cal.json" && \
	head -c 120 "$$tmp/cal.json" > "$$tmp/trunc.json" && \
	! $(GO) run ./cmd/calibrate -check "$$tmp/trunc.json" 2>/dev/null && \
	sed 's/1024/1023/' "$$tmp/cal.json" > "$$tmp/rot.json" && \
	! $(GO) run ./cmd/calibrate -check "$$tmp/rot.json" 2>/dev/null && \
	echo "calibration-roundtrip: OK"

# Telemetry gate: the disabled-metrics path must stay allocation-free
# on the warm prediction hot path, and the Prometheus exposition and run
# manifest must match their golden files.
obs-gate:
	$(GO) test -run 'AllocationFree' ./internal/core ./internal/obs
	$(GO) test -run 'TestPrometheusExpositionGolden|TestManifestGolden' ./internal/obs
	@echo "obs-gate: OK"

# Serving gate: the model's property tests, the served-vs-direct
# bit-for-bit differential over 10k randomized requests, the decoder
# fuzz corpus (seeds only — `make fuzz` explores), the race-checked
# soak, and a low-rate loadgen smoke against a self-served instance.
serve-gate:
	$(GO) test -run 'TestProperty' ./internal/prob ./internal/core
	$(GO) test -run 'TestDifferential' ./internal/serve
	$(GO) test -run 'FuzzDecodeRequest' ./internal/serve
	$(GO) test -race -run 'TestSoak' ./internal/serve
	$(GO) run ./cmd/loadgen -duration 1s -conc 4 -warmup 100ms > /dev/null
	@echo "serve-gate: OK"

# Record the serving benchmark snapshot: a closed-loop loadgen run
# against a self-served instance, in the same benchjson format as
# `make bench` so `make benchcmp` can diff serving throughput.
serve-bench:
	$(GO) run ./cmd/loadgen -duration 3s -conc 8 -label $(LABEL) -o BENCH_$(LABEL)_serve.json

# Cluster gate: ring and breaker property tests, the supervisor/router
# behavior battery, the race-checked chaos soak (4 real replicas, 16
# closed-loop workers, seeded kills/stalls/degradations mid-load, ≥99%
# success, fleet self-heals, no goroutine leaks), and a loadgen smoke
# through the affinity router.
cluster-gate:
	$(GO) test -run 'TestRing|TestBreaker' ./internal/cluster
	$(GO) test -run 'TestCluster' ./internal/cluster
	$(GO) test -run 'TestPlanChaos' ./internal/faults
	$(GO) test -race -run 'TestChaos' ./internal/cluster
	$(GO) run ./cmd/loadgen -cluster 3 -duration 1s -conc 4 -warmup 100ms > /dev/null
	@echo "cluster-gate: OK"

# Record the cluster benchmark snapshot: the serve-bench traffic shape
# through a 4-replica fleet behind the affinity router, so batched% and
# throughput are diffable against the single-replica numbers.
cluster-bench:
	$(GO) run ./cmd/loadgen -cluster 4 -duration 3s -conc 8 -label $(LABEL) -o BENCH_$(LABEL)_cluster.json

# Network chaos gate: the seeded net-fault plan and proxy behavior
# battery, the race-checked remote soak (real contentiond child
# processes joined as remote members, each behind a netchaos proxy
# injecting seeded latency/resets/stalls/partitions mid-load — ≥99%
# success, availability never zero, partitioned members suspected and
# readmitted after heal), the membership/failure-detector battery, and
# a loadgen smoke through the remote-member path.
netchaos-gate:
	$(GO) test -run 'TestPlanNetChaos' ./internal/faults
	$(GO) test -race ./internal/netchaos
	$(GO) test -run 'TestParseMembers|TestConfigValidate|TestMembership|TestAddRemote|TestRemoteSuspect|TestClusterClientGone' ./internal/cluster
	$(GO) test -race -run 'TestRemoteChaosGate' ./internal/cluster
	$(GO) test -run 'TestMembersReloadSmoke' ./cmd/contentionlb
	tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	$(GO) build -o "$$tmp/contentiond" ./cmd/contentiond && \
	$(GO) run ./cmd/loadgen -remote 2 -exec "$$tmp/contentiond" -duration 1s -conc 4 -warmup 100ms > /dev/null
	@echo "netchaos-gate: OK"

# Record the remote-member benchmark snapshot: the serve-bench traffic
# shape through a remote-only router over two contentiond child
# processes — the multi-host transport path (HTTP hops, deadline
# propagation, heartbeats) measured against the in-process numbers.
remote-bench:
	tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	$(GO) build -o "$$tmp/contentiond" ./cmd/contentiond && \
	$(GO) run ./cmd/loadgen -remote 2 -exec "$$tmp/contentiond" -duration 3s -conc 8 -label $(LABEL) -o BENCH_$(LABEL)_remote.json

# Hot-path gate: the surface-vs-DP randomized differential (bit-exact
# at grid nodes, ≤1e-3 relative between them), the staleness and
# invalidation protocol, the zero-allocation pins on warm surface and
# binary-decode paths, the binary round-trip and fast-path
# differentials, the binary decoder fuzz corpus (seeds only — `make
# fuzz` explores), and a binary+surface loadgen smoke.
hotpath-gate:
	$(GO) test -run 'TestSurface' ./internal/surface
	$(GO) test -run 'TestBinary|TestFastPath' ./internal/serve
	$(GO) test -run 'FuzzDecodeBinaryRequest' ./internal/serve
	$(GO) run ./cmd/loadgen -binary -surface -duration 1s -conc 4 -warmup 100ms > /dev/null
	@echo "hotpath-gate: OK"

# Record the hot-path benchmark snapshot: the serve-bench traffic shape
# three ways — JSON through the batcher, binary wire through the
# batcher, and binary wire with the precomputed surface fast path — so
# the decode and model-evaluation wins are separately attributable.
hotpath-bench:
	$(GO) run ./cmd/loadgen -duration 3s -conc 8 -label $(LABEL) -o BENCH_$(LABEL)_hotpath.json
	$(GO) run ./cmd/loadgen -binary -duration 3s -conc 8 -label $(LABEL) -o BENCH_$(LABEL)_hotpath.json -append
	$(GO) run ./cmd/loadgen -binary -surface -duration 3s -conc 8 -label $(LABEL) -o BENCH_$(LABEL)_hotpath.json -append

# Observability-plane gate: the trace context / sampler / SLO / quantile
# / exposition-parse batteries, the serve span-tree and binary
# trace-block tests with the unsampled warm-path allocation pin and the
# tracing goroutine-leak check, the race-checked propagation
# differential (balancer + two real replicas must emit ONE connected
# span tree per sampled request), the fleet scrape/merge + /debug/fleet
# battery, the stage-metric regression pin in benchjson, and a traced
# loadgen smoke through a 2-replica fleet emitting per-stage
# attribution metrics.
trace-gate:
	$(GO) test -run 'TestTraceContext|TestSampler|TestNewID|TestSLO|TestHistogramQuantile|TestMetricSnapshotQuantile|TestPrometheus|TestParsePrometheusText|TestMerge' ./internal/obs
	$(GO) test -run 'TestTrace|TestBinaryTraceBlock|TestRequestID|TestUnsampledWarmPathAllocationFree|TestTracingNoGoroutineLeak' ./internal/serve
	$(GO) test -race -run 'TestTracePropagationAcrossFleet|TestFleet|TestLB|TestReadySLODetail' ./internal/cluster
	$(GO) test -run 'TestDiffRegressStageMetrics' ./cmd/benchjson
	$(GO) run ./cmd/loadgen -cluster 2 -trace-sample 10 -stages -duration 1s -conc 4 -warmup 100ms > /dev/null
	@echo "trace-gate: OK"

# Scenario gate: generator properties (rates integrate to their
# configured means, burst duty cycles match the stationary distribution,
# schedules are bit-deterministic per seed), the trace round-trip and
# corruption taxonomy, the race-checked record→replay differentials
# (10k requests bit-identical through a live server, plus the cluster
# variant), the trace fuzz seed corpus, the legacy-pacing regression
# pins, the DES replay driver and a sweep smoke cell, the binary-wire
# router pin, and a loadgen record→replay round trip through a real
# self-served instance.
scenario-gate:
	$(GO) test -run 'TestConstantRate|TestSinusoidIntegratesToMean|TestMarkovBurstDutyCycle|TestFlashCrowdMonotoneRamp|TestScheduleBitDeterministic|TestScheduleShape|TestSpecRoundTrip' ./internal/scenario
	$(GO) test -run 'TestTrace' ./internal/scenario
	$(GO) test -race -run 'TestReplay' ./internal/scenario
	$(GO) test -run 'TestFuzzSeedsPass' ./internal/scenario
	$(GO) test -run 'TestUniformPacerMatchesLegacyTicker|TestOpenLoopDrawOrderUnchanged|TestOverloadMessageUnchanged|TestPaceLoopOrderAndDeadline' ./cmd/loadgen
	$(GO) test -run 'TestScenarioReplayDeterministic|TestScenarioSweepSmokeCell' ./internal/experiments
	$(GO) test -run 'TestRouterBinaryWire' ./internal/cluster
	tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	$(GO) run ./cmd/loadgen -scenario bursty -duration 1s -binary -record "$$tmp/run.ctrc" -warmup 100ms > /dev/null && \
	$(GO) run ./cmd/loadgen -replay "$$tmp/run.ctrc" -warmup 100ms > /dev/null
	@echo "scenario-gate: OK"

# Record the scenario benchmark snapshot: the hotpath-bench reference
# shape first (so bench-regress can gate against BENCH_pr8_hotpath),
# then one scenario-paced run per wire tier.
scenario-bench:
	$(GO) run ./cmd/loadgen -binary -surface -duration 3s -conc 8 -label $(LABEL) -o BENCH_$(LABEL)_scenario.json
	$(GO) run ./cmd/loadgen -scenario mixed -duration 3s -label $(LABEL) -o BENCH_$(LABEL)_scenario.json -append
	$(GO) run ./cmd/loadgen -scenario mixed -duration 3s -binary -label $(LABEL) -o BENCH_$(LABEL)_scenario.json -append
	$(GO) run ./cmd/loadgen -scenario mixed -duration 3s -binary -surface -label $(LABEL) -o BENCH_$(LABEL)_scenario.json -append

# The full local gate: everything CI would run.
check: build vet race fuzz calibration-roundtrip obs-gate serve-gate cluster-gate netchaos-gate hotpath-gate trace-gate scenario-gate bench-smoke

# Record a benchmark snapshot: full suite with allocation stats, parsed
# into BENCH_$(LABEL).json for later `make benchcmp` diffs.
bench:
	$(GO) test -bench . -benchtime 1x -benchmem -run ^$$ . \
		| $(GO) run ./cmd/benchjson -label $(LABEL) -o BENCH_$(LABEL).json

# Diff two recorded snapshots: make benchcmp OLD=BENCH_seed.json NEW=BENCH_pr3.json
OLD ?= BENCH_seed.json
NEW ?= BENCH_pr3.json
benchcmp:
	$(GO) run ./cmd/benchjson -diff $(OLD) $(NEW)

# Regression gate over two snapshots: exits non-zero when any cost
# metric (ns/op, B/op, allocs/op, or a *-ms latency percentile) grew by
# more than PCT percent: make bench-regress OLD=... NEW=... PCT=25
PCT ?= 25
bench-regress:
	$(GO) run ./cmd/benchjson -diff -regress $(PCT) $(OLD) $(NEW)

# Cheap gate: one pass of the hot-path microbenchmarks through the
# JSON parser, proving the bench harness itself still works.
bench-smoke:
	$(GO) test -bench 'BenchmarkSlowdownEvaluation|BenchmarkPredictComm' -benchtime 1x -benchmem -run ^$$ . \
		| $(GO) run ./cmd/benchjson -label smoke > /dev/null
	@echo "bench-smoke: OK"

fmt:
	gofmt -l -w .
