package contention

import (
	"contention/internal/apps"
)

// Benchmark applications (see internal/apps).
type (
	// CM2Program is an instruction-level profile of a CM2 application.
	CM2Program = apps.CM2Program
	// CM2Segment is one serial→parallel phase of a CM2 program.
	CM2Segment = apps.Segment
)

// MakeLaplaceGrid builds an M×M Laplace test grid (top edge at 100).
func MakeLaplaceGrid(m int) ([][]float64, error) { return apps.MakeLaplaceGrid(m) }

// SORSolve runs red-black SOR in place, returning the final residual.
func SORSolve(grid [][]float64, omega float64, iters int) (float64, error) {
	return apps.SORSolve(grid, omega, iters)
}

// SORWork returns the dedicated front-end execution time of iters SOR
// sweeps on an M×M grid (the profile behind dcomp_sun).
func SORWork(m, iters int) float64 { return apps.SORWork(m, iters) }

// SORDataSets describes transferring an M×M matrix as M row messages.
func SORDataSets(m int) []DataSet { return apps.SORDataSets(m) }

// GaussSolve performs Gaussian elimination with partial pivoting on the
// augmented system [a | b], returning the solution vector.
func GaussSolve(a [][]float64, b []float64) ([]float64, error) { return apps.GaussSolve(a, b) }

// MakeDiagonallyDominant builds a well-conditioned n×n test system with
// known solution x[i] = i+1.
func MakeDiagonallyDominant(n int) ([][]float64, []float64) {
	return apps.MakeDiagonallyDominant(n)
}

// GaussCM2Program profiles Gaussian elimination on an M×(M+1) matrix
// for the CM2 platform.
func GaussCM2Program(m int) CM2Program { return apps.GaussCM2Program(m) }

// RunCM2 executes a CM2 program on the simulated platform, returning
// elapsed virtual time plus the back-end busy and idle times.
func RunCM2(p *Proc, plat *SunCM2, prog CM2Program) (elapsed, busy, idle float64) {
	return apps.RunCM2(p, plat, prog)
}

// SyntheticSpec controls random CM2 program generation (the paper's
// synthetic benchmark suite).
type SyntheticSpec = apps.SyntheticSpec

// DefaultSyntheticSpec returns a mid-weight synthetic program skeleton.
func DefaultSyntheticSpec(seed int64) SyntheticSpec { return apps.DefaultSyntheticSpec(seed) }

// SyntheticCM2Program generates a reproducible random CM2 program.
func SyntheticCM2Program(spec SyntheticSpec) (CM2Program, error) {
	return apps.SyntheticCM2Program(spec)
}
