// Benchmarks regenerating every table and figure of the paper's
// evaluation (one benchmark per exhibit), plus ablation benchmarks for
// the design choices called out in DESIGN.md §5. Each benchmark reports
// the model-vs-actual error of its experiment as a custom metric
// (err%), alongside the usual time/op: run with
//
//	go test -bench=. -benchmem
package contention_test

import (
	"flag"
	"testing"

	"contention/internal/core"
	"contention/internal/experiments"
	"contention/internal/runner"
	"contention/internal/stats"
)

// benchSerial forces the experiment benchmarks onto the serial path
// (no worker pool). The default matches cmd/experiments: parallel on,
// with output guaranteed byte-identical to serial.
var benchSerial = flag.Bool("benchserial", false, "run experiment benchmarks without the worker pool")

var benchPool = runner.New(0)

func benchEnv(b *testing.B) *experiments.Env {
	b.Helper()
	env, err := experiments.SharedEnv()
	if err != nil {
		b.Fatalf("calibration failed: %v", err)
	}
	if !*benchSerial {
		env = env.WithPool(benchPool)
	}
	return env
}

func BenchmarkTable1Dedicated(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Tables12()
		if err != nil {
			b.Fatal(err)
		}
		if r.Series[0].Y[0] != 16 {
			b.Fatalf("makespan %v, want 16", r.Series[0].Y[0])
		}
	}
}

func BenchmarkTable3NonDedicated(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table3()
		if err != nil {
			b.Fatal(err)
		}
		if r.Series[0].Y[0] != 38 {
			b.Fatalf("makespan %v, want 38", r.Series[0].Y[0])
		}
	}
}

func BenchmarkTable4NonDedicated(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table4()
		if err != nil {
			b.Fatal(err)
		}
		if r.Series[0].Y[0] != 48 {
			b.Fatalf("makespan %v, want 48", r.Series[0].Y[0])
		}
	}
}

// benchFigure runs a figure driver b.N times and reports its model
// error under the given label.
func benchFigure(b *testing.B, run func(*experiments.Env) (experiments.Result, error), errLabel string) {
	env := benchEnv(b)
	b.ResetTimer()
	var last experiments.Result
	for i := 0; i < b.N; i++ {
		r, err := run(env)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	if errLabel != "" {
		b.ReportMetric(last.Err(errLabel), "err%")
	}
}

func BenchmarkFigure1(b *testing.B) { benchFigure(b, experiments.Figure1, "p=3") }
func BenchmarkFigure2(b *testing.B) { benchFigure(b, experiments.Figure2, "") }
func BenchmarkFigure3(b *testing.B) { benchFigure(b, experiments.Figure3, "p=3") }
func BenchmarkFigure4(b *testing.B) { benchFigure(b, experiments.Figure4, "") }
func BenchmarkFigure5(b *testing.B) { benchFigure(b, experiments.Figure5, "contended") }
func BenchmarkFigure6(b *testing.B) { benchFigure(b, experiments.Figure6, "contended") }
func BenchmarkFigure7(b *testing.B) { benchFigure(b, experiments.Figure7, "j=1000") }
func BenchmarkFigure8(b *testing.B) { benchFigure(b, experiments.Figure8, "j=500") }

// --- Ablations (DESIGN.md §5) ---------------------------------------------

// BenchmarkAblationPiecewiseVsSingle compares the paper's two-piece
// communication model against a single (α, β) pair on the dedicated
// burst data of Figure 4. The reported metric is the error *advantage*
// of the piecewise model in percentage points.
func BenchmarkAblationPiecewiseVsSingle(b *testing.B) {
	env := benchEnv(b)
	var advantage float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure4(env)
		if err != nil {
			b.Fatal(err)
		}
		var measured experiments.Series
		for _, s := range r.Series {
			if s.Name == "sun→paragon 1-HOP" {
				measured = s
				break
			}
		}
		if len(measured.X) == 0 {
			b.Fatal("missing sun→paragon 1-HOP series")
		}
		const count = 1000
		// Piecewise prediction from the calibration.
		var piecewise, single []float64
		fit, err := stats.OLS(measured.X, measured.Y)
		if err != nil {
			b.Fatal(err)
		}
		for k, x := range measured.X {
			dcomm, err := env.Cal.ToBack.Dedicated([]core.DataSet{{N: count, Words: int(x)}})
			if err != nil {
				b.Fatal(err)
			}
			piecewise = append(piecewise, dcomm)
			single = append(single, fit.Predict(measured.X[k]))
		}
		errPiece, err := stats.MAPE(piecewise, measured.Y)
		if err != nil {
			b.Fatal(err)
		}
		errSingle, err := stats.MAPE(single, measured.Y)
		if err != nil {
			b.Fatal(err)
		}
		advantage = errSingle - errPiece
	}
	b.ReportMetric(advantage, "pp-advantage")
}

// BenchmarkAblationNearestJVsWrongJ reports how much accuracy the
// nearest-j rule buys on the Figure 7 workload: the error gap between
// the j=1 column and the auto-selected j=1000 column.
func BenchmarkAblationNearestJVsWrongJ(b *testing.B) {
	env := benchEnv(b)
	var gap float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure7(env)
		if err != nil {
			b.Fatal(err)
		}
		gap = r.Err("j=1") - r.Err("j=1000")
	}
	b.ReportMetric(gap, "pp-advantage")
}

// BenchmarkAblationMixtureVsWorstCase compares the paper's
// probabilistic-mixture computation slowdown against the naive p+1
// worst case on the Figure 7 workload. Metric: percentage points of
// error the mixture model saves.
func BenchmarkAblationMixtureVsWorstCase(b *testing.B) {
	env := benchEnv(b)
	var advantage float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure7(env)
		if err != nil {
			b.Fatal(err)
		}
		var dedicated, actual experiments.Series
		for _, s := range r.Series {
			switch s.Name {
			case "dedicated":
				dedicated = s
			case "actual":
				actual = s
			}
		}
		worst := make([]float64, len(dedicated.Y))
		for k, d := range dedicated.Y {
			worst[k] = d * core.SimpleSlowdown(2) // p = 2 contenders
		}
		errWorst, err := stats.MAPE(worst, actual.Y)
		if err != nil {
			b.Fatal(err)
		}
		advantage = errWorst - r.Err("j=1000")
	}
	b.ReportMetric(advantage, "pp-advantage")
}

// BenchmarkSlowdownEvaluation measures the run-time cost of one
// slowdown evaluation for a 16-application system — the quantity the
// paper argues must be negligible for on-line scheduling.
func BenchmarkSlowdownEvaluation(b *testing.B) {
	env := benchEnv(b)
	sys, err := core.NewSystem(env.Cal.Tables)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if err := sys.Add(core.Contender{CommFraction: 0.4, MsgWords: 500}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sys.CommSlowdown()
		if _, err := sys.CompSlowdown(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredictComm measures one cached end-to-end communication
// prediction (slowdown mixture + dedicated model) for a fixed
// contender set — the per-call cost a scheduler pays after warm-up.
func BenchmarkPredictComm(b *testing.B) {
	env := benchEnv(b)
	pred := env.Pred
	cs := []core.Contender{
		{CommFraction: 0.40, MsgWords: 500},
		{CommFraction: 0.25, MsgWords: 200},
	}
	sets := []core.DataSet{{N: 400, Words: 512}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pred.PredictComm(core.HostToBack, sets, cs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredictCommBatch measures a 32-point sweep predicted through
// the batched API: the slowdown mixture is computed once and reused for
// every point.
func BenchmarkPredictCommBatch(b *testing.B) {
	env := benchEnv(b)
	pred := env.Pred
	cs := []core.Contender{
		{CommFraction: 0.40, MsgWords: 500},
		{CommFraction: 0.25, MsgWords: 200},
	}
	batches := make([][]core.DataSet, 32)
	for i := range batches {
		batches[i] = []core.DataSet{{N: 400, Words: 64 * (i + 1)}}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pred.PredictCommBatch(core.HostToBack, batches, cs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSuite regenerates the full paper evaluation (tables and
// figures 1–8) through the experiment engine — the headline wall-clock
// number the worker pool exists for. Compare with and without
// -benchserial to see the fan-out win.
func BenchmarkSuite(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.All(env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSystemAddRemove measures the incremental O(p) add and O(p²)
// remove of the run-time contender set.
func BenchmarkSystemAddRemove(b *testing.B) {
	env := benchEnv(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys, err := core.NewSystem(env.Cal.Tables)
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 8; j++ {
			if err := sys.Add(core.Contender{CommFraction: 0.5, MsgWords: 200}); err != nil {
				b.Fatal(err)
			}
		}
		for j := 7; j >= 0; j-- {
			if err := sys.Remove(j); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- Extension benchmarks ---------------------------------------------------

// BenchmarkSyntheticSuite regenerates the paper's generality check over
// random CM2 programs, reporting the suite MAPE.
func BenchmarkSyntheticSuite(b *testing.B) {
	env := benchEnv(b)
	var errPct float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.SyntheticCM2(env, 30)
		if err != nil {
			b.Fatal(err)
		}
		errPct = r.Err("suite")
	}
	b.ReportMetric(errPct, "err%")
}

// BenchmarkExtensionIOCharacteristics reports the error advantage of
// per-contender activity fractions over the naive p+1 on I/O-bound load.
func BenchmarkExtensionIOCharacteristics(b *testing.B) {
	env := benchEnv(b)
	var advantage float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.IOCharacteristics(env)
		if err != nil {
			b.Fatal(err)
		}
		advantage = r.Err("naive") - r.Err("extended")
	}
	b.ReportMetric(advantage, "pp-advantage")
}

// BenchmarkExtensionPhased reports the error advantage of re-evaluating
// the slowdown at job-mix changes over freezing the initial mix.
func BenchmarkExtensionPhased(b *testing.B) {
	env := benchEnv(b)
	var advantage float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.PhasedContention(env)
		if err != nil {
			b.Fatal(err)
		}
		advantage = r.Err("static") - r.Err("phased")
	}
	b.ReportMetric(advantage, "pp-advantage")
}

// BenchmarkExtensionMultiMachine reports the per-link model's error on
// the three-machine platform (split placement).
func BenchmarkExtensionMultiMachine(b *testing.B) {
	env := benchEnv(b)
	var errPct float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.MultiMachine(env)
		if err != nil {
			b.Fatal(err)
		}
		errPct = r.Err("split")
	}
	b.ReportMetric(errPct, "err%")
}

// BenchmarkExtensionOffloadDecision reports the model's error on the
// offload path of the Equation (1) end-to-end experiment.
func BenchmarkExtensionOffloadDecision(b *testing.B) {
	env := benchEnv(b)
	var errPct float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.OffloadDecision(env)
		if err != nil {
			b.Fatal(err)
		}
		errPct = r.Err("offload")
	}
	b.ReportMetric(errPct, "err%")
}

// BenchmarkFaultTolerance reports how much error the injected-fault
// sweep adds to the fault-blind calibrated model at the heaviest
// intensity, relative to the clean run.
func BenchmarkFaultTolerance(b *testing.B) {
	env := benchEnv(b)
	var clean, heavy float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.FaultTolerance(env)
		if err != nil {
			b.Fatal(err)
		}
		clean = r.Err("clean")
		heavy = r.Err("heaviest-fault")
	}
	b.ReportMetric(clean, "clean-err%")
	b.ReportMetric(heavy, "faulty-err%")
}
