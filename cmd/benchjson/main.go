// Command benchjson converts `go test -bench` output into a stable
// JSON snapshot and diffs two snapshots. It is the engine behind
// `make bench` (which records BENCH_<label>.json) and `make benchcmp`.
//
// Usage:
//
//	go test -bench . -benchmem | benchjson -label pr3 -o BENCH_pr3.json
//	benchjson -diff BENCH_seed.json BENCH_pr3.json
//	benchjson -diff -regress 25 BENCH_seed.json BENCH_pr3.json
//
// With -regress PCT (a -diff mode), cost metrics — ns/op, B/op,
// allocs/op, and latency metrics ending in -ms — that grew by more
// than PCT percent are listed after the diff and the exit status is 1,
// so `make bench-regress` can gate on serving-latency regressions.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one benchmark's results: the iteration count plus every
// reported metric (ns/op, B/op, allocs/op, and custom b.ReportMetric
// units such as err%).
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Snapshot is a labelled set of benchmark results.
type Snapshot struct {
	Label      string      `json:"label"`
	GoOS       string      `json:"goos,omitempty"`
	GoArch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	label := flag.String("label", "", "snapshot label recorded in the JSON")
	out := flag.String("o", "", "output file (default stdout)")
	diff := flag.Bool("diff", false, "diff two snapshot files given as arguments")
	regress := flag.Float64("regress", 0, "with -diff: exit non-zero when a cost metric (ns/op, B/op, allocs/op, *-ms) grows by more than this percent")
	flag.Parse()

	if *regress < 0 {
		fmt.Fprintln(os.Stderr, "benchjson: -regress percent must be non-negative")
		os.Exit(2)
	}
	if *regress > 0 && !*diff {
		fmt.Fprintln(os.Stderr, "benchjson: -regress requires -diff")
		os.Exit(2)
	}
	if *diff {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: benchjson -diff [-regress PCT] OLD.json NEW.json")
			os.Exit(2)
		}
		regressions, err := diffSnapshots(os.Stdout, flag.Arg(0), flag.Arg(1), *regress)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		if len(regressions) > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %d metric(s) regressed beyond %g%%:\n", len(regressions), *regress)
			for _, r := range regressions {
				fmt.Fprintln(os.Stderr, "  "+r)
			}
			os.Exit(1)
		}
		return
	}

	snap, err := parseBench(os.Stdin, *label)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(snap.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(snap.Benchmarks), *out)
	}
}

// parseBench reads `go test -bench` text and extracts every benchmark
// line. A line looks like
//
//	BenchmarkFigure1-4   1   15816848 ns/op   2.105 err%   384 B/op   16 allocs/op
//
// i.e. name, iteration count, then (value, unit) pairs.
func parseBench(r io.Reader, label string) (Snapshot, error) {
	snap := Snapshot{Label: label}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			snap.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			snap.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			snap.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		bm := Benchmark{
			// Strip the -GOMAXPROCS suffix so snapshots from hosts with
			// different core counts diff cleanly.
			Name:       stripProcSuffix(fields[0]),
			Iterations: iters,
			Metrics:    map[string]float64{},
		}
		ok := true
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				ok = false
				break
			}
			bm.Metrics[fields[i+1]] = v
		}
		if ok {
			snap.Benchmarks = append(snap.Benchmarks, bm)
		}
	}
	if err := sc.Err(); err != nil {
		return Snapshot{}, err
	}
	sort.Slice(snap.Benchmarks, func(i, j int) bool {
		return snap.Benchmarks[i].Name < snap.Benchmarks[j].Name
	})
	return snap, nil
}

func stripProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// costMetric reports whether a metric's growth is a regression: the
// standard per-op costs plus every loadgen latency percentile (the
// *-ms family). Throughput-style metrics (req/s, batched%) are trend
// lines, not gates — their "good" direction varies by benchmark.
func costMetric(unit string) bool {
	switch unit {
	case "ns/op", "B/op", "allocs/op":
		return true
	}
	return strings.HasSuffix(unit, "-ms")
}

// diffSnapshots prints a per-benchmark, per-metric comparison of two
// snapshot files. Shared metrics show the absolute delta and relative
// change; benchmarks and metrics present on only one side are reported
// with their values as added or removed, never silently skipped, and a
// summary line totals the comparison. With regressPct > 0 it also
// returns one line per cost metric that grew by more than that percent
// between the snapshots.
func diffSnapshots(w io.Writer, oldPath, newPath string, regressPct float64) ([]string, error) {
	oldSnap, err := readSnapshot(oldPath)
	if err != nil {
		return nil, err
	}
	newSnap, err := readSnapshot(newPath)
	if err != nil {
		return nil, err
	}
	oldBy := map[string]Benchmark{}
	for _, b := range oldSnap.Benchmarks {
		oldBy[b.Name] = b
	}
	fmt.Fprintf(w, "benchmark diff: %s (%s) -> %s (%s)\n",
		oldSnap.Label, oldPath, newSnap.Label, newPath)
	tw := bufio.NewWriter(w)
	defer tw.Flush()
	var compared, added, removed int
	var regressions []string
	for _, nb := range newSnap.Benchmarks {
		ob, found := oldBy[nb.Name]
		if !found {
			added++
			for _, u := range sortedUnits(nb.Metrics) {
				fmt.Fprintf(tw, "%-40s %12s  %14s -> %-14.4g (added benchmark)\n",
					nb.Name, u, "-", nb.Metrics[u])
			}
			continue
		}
		delete(oldBy, nb.Name)
		compared++
		for _, u := range unionUnits(ob.Metrics, nb.Metrics) {
			ov, inOld := ob.Metrics[u]
			nv, inNew := nb.Metrics[u]
			switch {
			case !inOld:
				fmt.Fprintf(tw, "%-40s %12s  %14s -> %-14.4g (added metric)\n", nb.Name, u, "-", nv)
			case !inNew:
				fmt.Fprintf(tw, "%-40s %12s  %14.4g -> %-14s (removed metric)\n", nb.Name, u, ov, "-")
			default:
				change := "~"
				if ov != 0 {
					change = fmt.Sprintf("%+.1f%%", 100*(nv-ov)/ov)
				}
				fmt.Fprintf(tw, "%-40s %12s  %14.4g -> %-14.4g %+.4g (%s)\n",
					nb.Name, u, ov, nv, nv-ov, change)
				if regressPct > 0 && costMetric(u) && ov >= 0 && nv > ov*(1+regressPct/100) {
					regressions = append(regressions, fmt.Sprintf("%s %s: %.4g -> %.4g (%s)",
						nb.Name, u, ov, nv, change))
				}
			}
		}
	}
	for _, name := range sortedNames(oldBy) {
		removed++
		ob := oldBy[name]
		for _, u := range sortedUnits(ob.Metrics) {
			fmt.Fprintf(tw, "%-40s %12s  %14.4g -> %-14s (removed benchmark)\n",
				name, u, ob.Metrics[u], "-")
		}
	}
	fmt.Fprintf(tw, "summary: %d compared, %d added, %d removed\n", compared, added, removed)
	return regressions, nil
}

// sortedUnits returns the metric units in sorted order.
func sortedUnits(m map[string]float64) []string {
	units := make([]string, 0, len(m))
	for u := range m {
		units = append(units, u)
	}
	sort.Strings(units)
	return units
}

// unionUnits returns the sorted union of both sides' metric units.
func unionUnits(a, b map[string]float64) []string {
	seen := map[string]bool{}
	for u := range a {
		seen[u] = true
	}
	for u := range b {
		seen[u] = true
	}
	units := make([]string, 0, len(seen))
	for u := range seen {
		units = append(units, u)
	}
	sort.Strings(units)
	return units
}

// sortedNames returns the map's benchmark names in sorted order.
func sortedNames(m map[string]Benchmark) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func readSnapshot(path string) (Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Snapshot{}, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return Snapshot{}, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}
