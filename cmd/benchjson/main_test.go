package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBench(t *testing.T) {
	input := `goos: linux
goarch: amd64
cpu: Intel(R) Xeon(R)
BenchmarkPredictComm-4   1000   15816 ns/op   2.105 err%   384 B/op   16 allocs/op
BenchmarkPredictComp-4   2000   7900 ns/op   0 B/op   0 allocs/op
PASS
`
	snap, err := parseBench(strings.NewReader(input), "seed")
	if err != nil {
		t.Fatal(err)
	}
	if snap.Label != "seed" || snap.GoOS != "linux" || snap.GoArch != "amd64" {
		t.Fatalf("header fields wrong: %+v", snap)
	}
	if len(snap.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(snap.Benchmarks))
	}
	bm := snap.Benchmarks[0]
	if bm.Name != "BenchmarkPredictComm" {
		t.Fatalf("proc suffix not stripped: %q", bm.Name)
	}
	if bm.Iterations != 1000 || bm.Metrics["ns/op"] != 15816 || bm.Metrics["allocs/op"] != 16 {
		t.Fatalf("metrics wrong: %+v", bm)
	}
}

// writeSnap writes a snapshot file for diff tests.
func writeSnap(t *testing.T, dir, name string, s Snapshot) string {
	t.Helper()
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestDiffReportsEverySide checks the diff's accounting: shared metrics
// show absolute and relative deltas (including allocs/op), one-sided
// benchmarks and metrics are reported as added/removed with their
// values, and the summary line totals the comparison.
func TestDiffReportsEverySide(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeSnap(t, dir, "old.json", Snapshot{Label: "seed", Benchmarks: []Benchmark{
		{Name: "BenchmarkShared", Iterations: 100, Metrics: map[string]float64{
			"ns/op": 1000, "allocs/op": 4, "old-only": 7,
		}},
		{Name: "BenchmarkGone", Iterations: 10, Metrics: map[string]float64{"ns/op": 50}},
	}})
	newPath := writeSnap(t, dir, "new.json", Snapshot{Label: "pr", Benchmarks: []Benchmark{
		{Name: "BenchmarkShared", Iterations: 100, Metrics: map[string]float64{
			"ns/op": 1100, "allocs/op": 0, "new-only": 3,
		}},
		{Name: "BenchmarkFresh", Iterations: 10, Metrics: map[string]float64{"ns/op": 25}},
	}})

	var b strings.Builder
	if _, err := diffSnapshots(&b, oldPath, newPath, 0); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"+100 (+10.0%)",     // ns/op absolute + relative delta
		"-4 (-100.0%)",      // allocs/op delta reported, not skipped
		"(added metric)",    // new-only
		"(removed metric)",  // old-only
		"(added benchmark)", // BenchmarkFresh, with its value
		"25",
		"(removed benchmark)", // BenchmarkGone, with its value
		"50",
		"summary: 1 compared, 1 added, 1 removed",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("diff output missing %q:\n%s", want, out)
		}
	}
}

// TestDiffZeroBaseline checks that a zero old value keeps the relative
// change undefined ("~") while the absolute delta is still printed.
func TestDiffZeroBaseline(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeSnap(t, dir, "old.json", Snapshot{Benchmarks: []Benchmark{
		{Name: "BenchmarkX", Metrics: map[string]float64{"allocs/op": 0}},
	}})
	newPath := writeSnap(t, dir, "new.json", Snapshot{Benchmarks: []Benchmark{
		{Name: "BenchmarkX", Metrics: map[string]float64{"allocs/op": 3}},
	}})
	var b strings.Builder
	if _, err := diffSnapshots(&b, oldPath, newPath, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "+3 (~)") {
		t.Fatalf("zero baseline not handled:\n%s", b.String())
	}
}

// TestDiffRegressGate checks the -regress accounting: cost metrics
// (ns/op and the loadgen *-ms latency family) beyond the threshold are
// returned as regressions, growth within the threshold and throughput
// metrics moving in their "bad" direction are not — req/s falling is a
// trend line, not a gated cost.
func TestDiffRegressGate(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeSnap(t, dir, "old.json", Snapshot{Label: "seed", Benchmarks: []Benchmark{
		{Name: "BenchmarkX", Metrics: map[string]float64{"ns/op": 1000, "B/op": 100}},
		{Name: "Loadgen/closed-conc8", Metrics: map[string]float64{"p50-ms": 1.0, "req/s": 5000}},
	}})
	newPath := writeSnap(t, dir, "new.json", Snapshot{Label: "pr", Benchmarks: []Benchmark{
		{Name: "BenchmarkX", Metrics: map[string]float64{"ns/op": 1400, "B/op": 105}},
		{Name: "Loadgen/closed-conc8", Metrics: map[string]float64{"p50-ms": 2.0, "req/s": 100}},
	}})
	var b strings.Builder
	regs, err := diffSnapshots(&b, oldPath, newPath, 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 2 {
		t.Fatalf("got %d regressions %v, want 2 (ns/op +40%%, p50-ms +100%%)", len(regs), regs)
	}
	joined := strings.Join(regs, "\n")
	for _, want := range []string{"BenchmarkX ns/op", "Loadgen/closed-conc8 p50-ms"} {
		if !strings.Contains(joined, want) {
			t.Errorf("regressions missing %q:\n%s", want, joined)
		}
	}
	for _, reject := range []string{"B/op", "req/s"} {
		if strings.Contains(joined, reject) {
			t.Errorf("regressions wrongly include %q:\n%s", reject, joined)
		}
	}
}

// TestDiffRegressStageMetrics pins that the per-stage attribution
// quantiles loadgen -stages emits (stage-<name>-p50-ms and friends)
// are gated cost metrics: if a stage's latency grows past the
// threshold between snapshots, bench-regress fails the build.
func TestDiffRegressStageMetrics(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeSnap(t, dir, "old.json", Snapshot{Label: "seed", Benchmarks: []Benchmark{
		{Name: "Loadgen/closed-conc8", Metrics: map[string]float64{
			"stage-decode-p99-ms":  0.10,
			"stage-compute-p50-ms": 0.40,
			"req/s":                30000,
		}},
	}})
	newPath := writeSnap(t, dir, "new.json", Snapshot{Label: "pr", Benchmarks: []Benchmark{
		{Name: "Loadgen/closed-conc8", Metrics: map[string]float64{
			"stage-decode-p99-ms":  0.50, // +400%: gated
			"stage-compute-p50-ms": 0.44, // +10%: within threshold
			"req/s":                28000,
		}},
	}})
	var b strings.Builder
	regs, err := diffSnapshots(&b, oldPath, newPath, 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 {
		t.Fatalf("got %d regressions %v, want exactly stage-decode-p99-ms", len(regs), regs)
	}
	if !strings.Contains(regs[0], "stage-decode-p99-ms") {
		t.Errorf("regression is not the decode stage quantile: %v", regs)
	}
}
