package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBench(t *testing.T) {
	input := `goos: linux
goarch: amd64
cpu: Intel(R) Xeon(R)
BenchmarkPredictComm-4   1000   15816 ns/op   2.105 err%   384 B/op   16 allocs/op
BenchmarkPredictComp-4   2000   7900 ns/op   0 B/op   0 allocs/op
PASS
`
	snap, err := parseBench(strings.NewReader(input), "seed")
	if err != nil {
		t.Fatal(err)
	}
	if snap.Label != "seed" || snap.GoOS != "linux" || snap.GoArch != "amd64" {
		t.Fatalf("header fields wrong: %+v", snap)
	}
	if len(snap.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(snap.Benchmarks))
	}
	bm := snap.Benchmarks[0]
	if bm.Name != "BenchmarkPredictComm" {
		t.Fatalf("proc suffix not stripped: %q", bm.Name)
	}
	if bm.Iterations != 1000 || bm.Metrics["ns/op"] != 15816 || bm.Metrics["allocs/op"] != 16 {
		t.Fatalf("metrics wrong: %+v", bm)
	}
}

// writeSnap writes a snapshot file for diff tests.
func writeSnap(t *testing.T, dir, name string, s Snapshot) string {
	t.Helper()
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestDiffReportsEverySide checks the diff's accounting: shared metrics
// show absolute and relative deltas (including allocs/op), one-sided
// benchmarks and metrics are reported as added/removed with their
// values, and the summary line totals the comparison.
func TestDiffReportsEverySide(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeSnap(t, dir, "old.json", Snapshot{Label: "seed", Benchmarks: []Benchmark{
		{Name: "BenchmarkShared", Iterations: 100, Metrics: map[string]float64{
			"ns/op": 1000, "allocs/op": 4, "old-only": 7,
		}},
		{Name: "BenchmarkGone", Iterations: 10, Metrics: map[string]float64{"ns/op": 50}},
	}})
	newPath := writeSnap(t, dir, "new.json", Snapshot{Label: "pr", Benchmarks: []Benchmark{
		{Name: "BenchmarkShared", Iterations: 100, Metrics: map[string]float64{
			"ns/op": 1100, "allocs/op": 0, "new-only": 3,
		}},
		{Name: "BenchmarkFresh", Iterations: 10, Metrics: map[string]float64{"ns/op": 25}},
	}})

	var b strings.Builder
	if err := diffSnapshots(&b, oldPath, newPath); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"+100 (+10.0%)",     // ns/op absolute + relative delta
		"-4 (-100.0%)",      // allocs/op delta reported, not skipped
		"(added metric)",    // new-only
		"(removed metric)",  // old-only
		"(added benchmark)", // BenchmarkFresh, with its value
		"25",
		"(removed benchmark)", // BenchmarkGone, with its value
		"50",
		"summary: 1 compared, 1 added, 1 removed",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("diff output missing %q:\n%s", want, out)
		}
	}
}

// TestDiffZeroBaseline checks that a zero old value keeps the relative
// change undefined ("~") while the absolute delta is still printed.
func TestDiffZeroBaseline(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeSnap(t, dir, "old.json", Snapshot{Benchmarks: []Benchmark{
		{Name: "BenchmarkX", Metrics: map[string]float64{"allocs/op": 0}},
	}})
	newPath := writeSnap(t, dir, "new.json", Snapshot{Benchmarks: []Benchmark{
		{Name: "BenchmarkX", Metrics: map[string]float64{"allocs/op": 3}},
	}})
	var b strings.Builder
	if err := diffSnapshots(&b, oldPath, newPath); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "+3 (~)") {
		t.Fatalf("zero baseline not handled:\n%s", b.String())
	}
}
