// Command calibrate runs the system test suite against the simulated
// platforms and prints the resulting model parameters: the piecewise
// (α, β) communication fits per direction, the discovered threshold,
// and the three delay tables.
//
// Usage:
//
//	calibrate                 # Sun/Paragon 1-HOP + Sun/CM2
//	calibrate -mode 2hops
//	calibrate -contenders 6 -burst 500
//	calibrate -save cal.json  # persist a checksummed envelope atomically
//	calibrate -check cal.json # verify a stored calibration's invariants
package main

import (
	"flag"
	"fmt"
	"os"

	"contention/internal/calibrate"
	"contention/internal/caltrust"
	"contention/internal/core"
	"contention/internal/platform"
)

func main() {
	mode := flag.String("mode", "1hop", "Sun/Paragon communication mode: 1hop or 2hops")
	burst := flag.Int("burst", 200, "messages per ping-pong burst")
	contenders := flag.Int("contenders", 4, "delay-table depth (max contenders)")
	asJSON := flag.Bool("json", false, "emit the calibration as JSON (loadable with contention.LoadCalibration)")
	check := flag.String("check", "", "verify a stored calibration file (integrity + invariants) and exit")
	save := flag.String("save", "", "write the calibration atomically to FILE as a checksummed envelope")
	repeats := flag.Int("repeats", 1, "measurements per calibration point (robust aggregation when > 1)")
	flag.Parse()
	defer exitOnPanic()

	if *check != "" {
		os.Exit(runCheck(*check))
	}
	if *burst < 1 {
		fmt.Fprintf(os.Stderr, "-burst %d must be ≥ 1\n", *burst)
		os.Exit(2)
	}
	if *contenders < 1 {
		fmt.Fprintf(os.Stderr, "-contenders %d must be ≥ 1\n", *contenders)
		os.Exit(2)
	}

	var hop platform.HopMode
	switch *mode {
	case "1hop":
		hop = platform.OneHop
	case "2hops":
		hop = platform.TwoHops
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q (want 1hop or 2hops)\n", *mode)
		os.Exit(2)
	}

	if *repeats < 1 {
		fmt.Fprintf(os.Stderr, "-repeats %d must be ≥ 1\n", *repeats)
		os.Exit(2)
	}

	params := platform.DefaultParagonParams(hop)
	opts := calibrate.DefaultOptions(params)
	opts.BurstCount = *burst
	opts.MaxContenders = *contenders
	opts.Repeats = *repeats

	cal, conf, err := calibrate.RunRobust(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "calibration failed:", err)
		os.Exit(1)
	}

	if *save != "" {
		meta := caltrust.Meta{Note: fmt.Sprintf("calibrate -mode %s -burst %d -contenders %d -repeats %d",
			*mode, *burst, *contenders, *repeats)}
		if err := caltrust.WriteFile(*save, cal, meta); err != nil {
			fmt.Fprintln(os.Stderr, "saving calibration:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (schema %d, checksummed)\n", *save, caltrust.SchemaVersion)
		return
	}

	if *asJSON {
		if err := cal.Save(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "encoding calibration:", err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("platform: %s\n\n", cal.Platform)
	printModel("sun→paragon", cal.ToBack)
	printModel("paragon→sun", cal.ToHost)

	fmt.Println("delay tables (index i = number of contenders):")
	printTable("  delay^i_comp (computing apps → communication)", cal.Tables.CompOnComm)
	printTable("  delay^i_comm (communicating apps → communication)", cal.Tables.CommOnComm)
	for _, j := range cal.Tables.JGrid() {
		printTable(fmt.Sprintf("  delay^{i,j=%d}_comm (communicating apps → computation)", j),
			cal.Tables.CommOnComp[j])
	}

	if conf.Repeats > 1 {
		fmt.Printf("\nrobust estimation: %d repeats/point, %d outliers rejected, %g%% CIs\n",
			conf.Repeats, conf.OutliersRejected, 100*conf.Level)
		fmt.Printf("  sun→paragon small piece: α ∈ [%.6g, %.6g]  β ∈ [%.6g, %.6g]\n",
			conf.ToBack.Small.Alpha.Lo, conf.ToBack.Small.Alpha.Hi,
			conf.ToBack.Small.Beta.Lo, conf.ToBack.Small.Beta.Hi)
	}

	cm2, err := calibrate.CalibrateCM2(calibrate.DefaultCM2Options(platform.DefaultCM2Params()))
	if err != nil {
		fmt.Fprintln(os.Stderr, "CM2 calibration failed:", err)
		os.Exit(1)
	}
	fmt.Println("\nsun/cm2 transfer model:")
	fmt.Printf("  α = %.6gs  β = %.6g words/s\n", cm2.Small.Alpha, cm2.Small.Beta)
}

func printModel(name string, m core.CommModel) {
	fmt.Printf("%s (threshold %d words):\n", name, m.Threshold)
	fmt.Printf("  size ≤ threshold: α = %.6gs  β = %.6g words/s\n", m.Small.Alpha, m.Small.Beta)
	fmt.Printf("  size > threshold: α = %.6gs  β = %.6g words/s\n\n", m.Large.Alpha, m.Large.Beta)
}

func printTable(label string, xs []float64) {
	fmt.Printf("%s:", label)
	for i, v := range xs {
		fmt.Printf(" i=%d:%.3f", i+1, v)
	}
	fmt.Println()
}

// runCheck loads a stored calibration, verifying envelope integrity
// (schema, checksum) and the trust layer's physical invariants, and
// reports PASS/FAIL. Returns the process exit code.
func runCheck(path string) int {
	cal, env, err := caltrust.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "FAIL:", err)
		return 1
	}
	report := caltrust.Validate(cal, caltrust.DefaultCheckConfig())
	for _, v := range report.Violations {
		fmt.Fprintln(os.Stderr, " ", v.String())
	}
	if !report.OK() {
		fmt.Fprintf(os.Stderr, "FAIL: %s: calibration violates model invariants\n", path)
		return 1
	}
	note := ""
	if env.Note != "" {
		note = fmt.Sprintf(" (%s)", env.Note)
	}
	fmt.Printf("OK: %s: schema %d, checksum verified, invariants hold%s\n", path, env.Schema, note)
	return 0
}

// exitOnPanic turns a stray panic from the internal packages into a
// clean error exit instead of a crash dump — user input must never
// produce a stack trace.
func exitOnPanic() {
	if r := recover(); r != nil {
		fmt.Fprintln(os.Stderr, "fatal:", r)
		os.Exit(1)
	}
}
