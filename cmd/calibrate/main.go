// Command calibrate runs the system test suite against the simulated
// platforms and prints the resulting model parameters: the piecewise
// (α, β) communication fits per direction, the discovered threshold,
// and the three delay tables.
//
// Usage:
//
//	calibrate                 # Sun/Paragon 1-HOP + Sun/CM2
//	calibrate -mode 2hops
//	calibrate -contenders 6 -burst 500
package main

import (
	"flag"
	"fmt"
	"os"

	"contention/internal/calibrate"
	"contention/internal/core"
	"contention/internal/platform"
)

func main() {
	mode := flag.String("mode", "1hop", "Sun/Paragon communication mode: 1hop or 2hops")
	burst := flag.Int("burst", 200, "messages per ping-pong burst")
	contenders := flag.Int("contenders", 4, "delay-table depth (max contenders)")
	asJSON := flag.Bool("json", false, "emit the calibration as JSON (loadable with contention.LoadCalibration)")
	flag.Parse()
	defer exitOnPanic()
	if *burst < 1 {
		fmt.Fprintf(os.Stderr, "-burst %d must be ≥ 1\n", *burst)
		os.Exit(2)
	}
	if *contenders < 1 {
		fmt.Fprintf(os.Stderr, "-contenders %d must be ≥ 1\n", *contenders)
		os.Exit(2)
	}

	var hop platform.HopMode
	switch *mode {
	case "1hop":
		hop = platform.OneHop
	case "2hops":
		hop = platform.TwoHops
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q (want 1hop or 2hops)\n", *mode)
		os.Exit(2)
	}

	params := platform.DefaultParagonParams(hop)
	opts := calibrate.DefaultOptions(params)
	opts.BurstCount = *burst
	opts.MaxContenders = *contenders

	cal, err := calibrate.Run(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "calibration failed:", err)
		os.Exit(1)
	}

	if *asJSON {
		if err := cal.Save(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "encoding calibration:", err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("platform: %s\n\n", cal.Platform)
	printModel("sun→paragon", cal.ToBack)
	printModel("paragon→sun", cal.ToHost)

	fmt.Println("delay tables (index i = number of contenders):")
	printTable("  delay^i_comp (computing apps → communication)", cal.Tables.CompOnComm)
	printTable("  delay^i_comm (communicating apps → communication)", cal.Tables.CommOnComm)
	for _, j := range cal.Tables.JGrid() {
		printTable(fmt.Sprintf("  delay^{i,j=%d}_comm (communicating apps → computation)", j),
			cal.Tables.CommOnComp[j])
	}

	cm2, err := calibrate.CalibrateCM2(calibrate.DefaultCM2Options(platform.DefaultCM2Params()))
	if err != nil {
		fmt.Fprintln(os.Stderr, "CM2 calibration failed:", err)
		os.Exit(1)
	}
	fmt.Println("\nsun/cm2 transfer model:")
	fmt.Printf("  α = %.6gs  β = %.6g words/s\n", cm2.Small.Alpha, cm2.Small.Beta)
}

func printModel(name string, m core.CommModel) {
	fmt.Printf("%s (threshold %d words):\n", name, m.Threshold)
	fmt.Printf("  size ≤ threshold: α = %.6gs  β = %.6g words/s\n", m.Small.Alpha, m.Small.Beta)
	fmt.Printf("  size > threshold: α = %.6gs  β = %.6g words/s\n\n", m.Large.Alpha, m.Large.Beta)
}

func printTable(label string, xs []float64) {
	fmt.Printf("%s:", label)
	for i, v := range xs {
		fmt.Printf(" i=%d:%.3f", i+1, v)
	}
	fmt.Println()
}

// exitOnPanic turns a stray panic from the internal packages into a
// clean error exit instead of a crash dump — user input must never
// produce a stack trace.
func exitOnPanic() {
	if r := recover(); r != nil {
		fmt.Fprintln(os.Stderr, "fatal:", r)
		os.Exit(1)
	}
}
