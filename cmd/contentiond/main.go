// Command contentiond serves contention predictions over HTTP/JSON:
// the Figueira–Berman slowdown model behind a micro-batching daemon, so
// a resource manager can ask "what will this transfer (or compute
// phase) cost under this contender mix" without linking the model.
//
// Endpoints:
//
//	POST /v1/predict  — comm/comp cost query (see internal/serve.Request)
//	POST /v1/observe  — feed a predicted/observed residual to the trust layer
//	GET  /healthz     — liveness + calibration trust state
//	GET  /metrics     — Prometheus text exposition (with -metrics)
//
// Concurrent requests sharing a contender mix are answered by one
// batched slowdown computation per batching window; when the trust
// layer detects calibration drift the daemon degrades to the paper's
// conservative p+1 fallback and says so in every response.
//
// Usage:
//
//	contentiond                         # built-in synthetic calibration
//	contentiond -cal sun.calib.json     # stored calibration artifact
//	contentiond -addr :9090 -window 2ms -metrics
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"syscall"
	"time"

	"contention/internal/caltrust"
	"contention/internal/core"
	"contention/internal/obs"
	"contention/internal/runner"
	"contention/internal/serve"
	"contention/internal/surface"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8123", "listen address (host:port; :0 picks a free port)")
	calPath := flag.String("cal", "", "calibration artifact (caltrust JSON); built-in synthetic Sun/Paragon tables when empty")
	window := flag.Duration("window", serve.DefaultWindow, "micro-batch window (0 flushes per arrival burst, <0 disables batching)")
	maxBatch := flag.Int("max-batch", serve.DefaultMaxBatch, "flush a batch group early at this many requests")
	maxInFlight := flag.Int("max-inflight", serve.DefaultMaxInFlight, "admission bound on concurrently served requests")
	maxQueue := flag.Int("max-queue", serve.DefaultMaxQueue, "admission bound on requests waiting for a slot (0 rejects instead of queueing)")
	timeout := flag.Duration("timeout", serve.DefaultTimeout, "per-request deadline")
	useSurface := flag.Bool("surface", false, "precompute the slowdown surface at startup and enable the batcher-bypass fast path")
	surfaceP := flag.Int("surface-max-p", 16, "largest homogeneous contender count covered by -surface")
	surfaceCells := flag.Int("surface-cells", 512, "comm-fraction grid cells for -surface (power of two)")
	traceSample := flag.Int("trace-sample", 0, "head-sample 1 in N headless requests into the span timeline (0 disables; propagated trace verdicts are always honored)")
	sloLatency := flag.Duration("slo-latency", 0, "latency SLO threshold (0 disables the SLO tracker)")
	sloLatencyTarget := flag.Float64("slo-latency-target", 0.99, "fraction of requests that must beat -slo-latency")
	sloAvailability := flag.Float64("slo-availability", 0.999, "fraction of requests that must succeed")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	metrics := flag.Bool("metrics", false, "record telemetry and expose GET /metrics; implied by -metrics-addr and -run-report")
	metricsAddr := flag.String("metrics-addr", "", "also serve Prometheus text on http://ADDR/metrics and expvar on /debug/vars")
	runReport := flag.String("run-report", "", "write a JSON run manifest to this file at exit (plus a Prometheus snapshot beside it)")
	flag.Parse()
	defer exitOnPanic()
	start := time.Now()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
		}()
	}

	if *metricsAddr != "" || *runReport != "" {
		*metrics = true
	}
	if *metrics {
		obs.SetEnabled(true)
	}
	if *metricsAddr != "" {
		a, err := obs.ListenAndServe(*metricsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "metrics-addr:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "serving metrics on http://%s/metrics\n", a)
	}

	cal := serve.SyntheticCalibration()
	calSource := "synthetic"
	if *calPath != "" {
		loaded, env, err := caltrust.ReadFile(*calPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cal:", err)
			os.Exit(1)
		}
		cal = loaded
		calSource = fmt.Sprintf("%s (schema v%d)", *calPath, env.Schema)
	}
	// Lenient construction + tracker adoption: an artifact that fails
	// strict validation is served in the Degraded state (p+1 fallback
	// with the reason in every response) rather than refused — the
	// operator sees why on /healthz.
	pred := core.NewPredictorLenient(cal)
	tracker, err := caltrust.NewTracker(pred, caltrust.DefaultTrackerConfig())
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracker:", err)
		os.Exit(1)
	}

	if *useSurface {
		surf, err := surface.Build(cal.Tables, surface.Config{
			MaxContenders: *surfaceP,
			GridCells:     *surfaceCells,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pred.AttachSurface(surf); err != nil {
			fmt.Fprintln(os.Stderr, "surface:", err)
			os.Exit(1)
		}
		st := surf.Stats()
		fmt.Fprintf(os.Stderr, "surface: %d nodes precomputed (p ≤ %d, %d cells, %d j columns, max interp err %.2g)\n",
			st.Fills, st.MaxContenders, st.GridCells, st.Columns, st.MaxRelError)
	}

	var slo *obs.SLOTracker
	if *sloLatency > 0 {
		slo, err = obs.NewSLOTracker(obs.SLOConfig{
			LatencyThresholdSeconds: sloLatency.Seconds(),
			LatencyTarget:           *sloLatencyTarget,
			AvailabilityTarget:      *sloAvailability,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "slo:", err)
			os.Exit(1)
		}
	}

	srv, err := serve.New(serve.Config{
		Pred:        pred,
		Tracker:     tracker,
		Pool:        runner.New(0),
		Window:      *window,
		MaxBatch:    *maxBatch,
		MaxInFlight: *maxInFlight,
		MaxQueue:    *maxQueue,
		Timeout:     *timeout,
		FastPath:    *useSurface,
		Sampler:     obs.NewSampler(*traceSample),
		SLO:         slo,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}

	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	if *metrics {
		mux.Handle("GET /metrics", obs.Default().Handler())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "listen:", err)
		os.Exit(1)
	}
	httpSrv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	fmt.Fprintf(os.Stderr, "contentiond on http://%s (calibration %s, trust %s, window %v)\n",
		ln.Addr(), calSource, tracker.State(), *window)

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "%v: draining\n", sig)
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "serve:", err)
			os.Exit(1)
		}
	}

	// Flip /readyz to 503 first so routers stop sending new work, then
	// let in-flight requests finish within the shutdown deadline.
	srv.Drain()
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		fmt.Fprintln(os.Stderr, "shutdown:", err)
	}
	srv.Close()

	if *runReport != "" {
		m := obs.NewManifest("contentiond")
		m.Config = map[string]string{
			"addr":         *addr,
			"cal":          calSource,
			"window":       window.String(),
			"max_batch":    strconv.Itoa(*maxBatch),
			"max_inflight": strconv.Itoa(*maxInFlight),
			"max_queue":    strconv.Itoa(*maxQueue),
			"timeout":      timeout.String(),
		}
		m.StartedAt = start.UTC().Format(time.RFC3339)
		m.WallSeconds = time.Since(start).Seconds()
		m.Spans = obs.DefaultTracer().Spans()
		if slo != nil {
			st := slo.Status()
			m.SLO = &st
		}
		m.FillFromSnapshot(obs.Default().Snapshot())
		if err := m.Write(*runReport); err != nil {
			fmt.Fprintln(os.Stderr, "run-report:", err)
			os.Exit(1)
		}
		prom := strings.TrimSuffix(*runReport, ".json") + ".prom"
		if err := os.WriteFile(prom, []byte(obs.Default().PrometheusText()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "run-report:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "run manifest: %s (metrics snapshot: %s)\n", *runReport, prom)
	}
}

// exitOnPanic turns a stray panic from the internal packages into a
// clean error exit instead of a crash dump.
func exitOnPanic() {
	if r := recover(); r != nil {
		fmt.Fprintln(os.Stderr, "fatal:", r)
		os.Exit(1)
	}
}
