// Command contentionlb fronts a self-healing fleet of contention
// prediction replicas: a supervisor spawns N backends (in-process
// serve.Servers, or child-process contentiond daemons with -exec),
// babysits them through crashes with seeded exponential backoff, and
// routes requests by batch-key affinity so concurrent queries sharing a
// contender mix still collapse into one slowdown computation on one
// replica.
//
// The API surface is identical to a single contentiond, so clients
// cannot tell a fleet from a daemon:
//
//	POST /v1/predict  — routed by contender-mix affinity, with failover
//	POST /v1/observe  — residual broadcast to every up replica
//	GET  /healthz     — fleet health + per-member detail
//	GET  /readyz      — 503 while draining or with zero replicas up
//	GET  /metrics     — Prometheus text exposition plus merged fleet_*
//	                    member series (with -metrics)
//	GET  /debug/fleet — fleet digest: members, ring weights, breakers,
//	                    suspicion, per-stage p50/p99, SLO burn (HTML;
//	                    JSON with ?format=json)
//
// Around the consistent-hash ring sit the robustness layers: per-replica
// circuit breakers over a rolling error rate, load-aware spill past a
// busy primary, bounded retries under a cluster-wide retry budget, and
// optional hedged second requests (-hedge) for tail-latency protection.
// SIGTERM drains: readiness flips off, in-flight requests finish, then
// every replica shuts down gracefully.
//
// With -members the balancer also (or only) fronts remote replicas on
// other hosts: the file lists addresses and routing weights, is
// hot-reloaded on SIGHUP and by polling, and a heartbeat failure
// detector moves silent members out of the ring until they answer
// again. Removing a member from the file drains it gracefully — its
// keys remap to ring successors, in-flight requests finish.
//
// Usage:
//
//	contentionlb -replicas 4                      # 4 in-process replicas
//	contentionlb -replicas 4 -exec ./contentiond  # 4 child-process daemons
//	contentionlb -members members.json            # remote fleet on other hosts
//	contentionlb -replicas 4 -hedge 5ms -metrics -addr :9000
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"contention/internal/caltrust"
	"contention/internal/cluster"
	"contention/internal/core"
	"contention/internal/obs"
	"contention/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8200", "listen address (host:port; :0 picks a free port)")
	replicas := flag.Int("replicas", 4, "supervised replica count")
	execBin := flag.String("exec", "", "spawn replicas as child processes of this contentiond binary (in-process replicas when empty)")
	calPath := flag.String("cal", "", "calibration artifact served by every in-process replica; built-in synthetic tables when empty")
	window := flag.Duration("window", serve.DefaultWindow, "per-replica micro-batch window")
	hedge := flag.Duration("hedge", 0, "hedged-request delay (0 disables hedging)")
	spill := flag.Int("spill", cluster.DefaultSpillInFlight, "per-replica in-flight high-water before spilling past the ring primary")
	maxTries := flag.Int("max-tries", cluster.DefaultMaxTries, "attempt bound per request (first try + failovers)")
	retryBudget := flag.Float64("retry-budget", cluster.DefaultRetryBudget, "cluster-wide retry allowance as a fraction of request volume")
	probe := flag.Duration("probe", cluster.DefaultProbeInterval, "replica health-probe interval")
	members := flag.String("members", "", `remote members file ({"members":[{"addr":"host:port","weight":2},...]}); hot-reloaded on SIGHUP and by polling. With no explicit -replicas the local fleet is 0`)
	heartbeat := flag.Duration("heartbeat", 0, "remote-member heartbeat interval (0 selects -probe)")
	suspectAfter := flag.Float64("suspect-after", cluster.DefaultSuspectAfter, "failure-detector threshold in learned heartbeat intervals of silence")
	reload := flag.Duration("reload", time.Second, "members-file poll interval")
	timeout := flag.Duration("timeout", serve.DefaultTimeout, "end-to-end request deadline")
	traceSample := flag.Int("trace-sample", 0, "head-sample 1 in N headless requests into the span timeline (0 disables; propagated trace verdicts are always honored)")
	sloLatency := flag.Duration("slo-latency", 0, "latency SLO threshold (0 disables the SLO tracker)")
	sloLatencyTarget := flag.Float64("slo-latency-target", 0.99, "fraction of requests that must beat -slo-latency")
	sloAvailability := flag.Float64("slo-availability", 0.999, "fraction of requests that must succeed")
	fleetScrape := flag.Duration("fleet-scrape", cluster.DefaultFleetInterval, "member /metrics scrape period for the fleet_* aggregation and /debug/fleet (0 disables)")
	metrics := flag.Bool("metrics", false, "record telemetry and expose GET /metrics; implied by -metrics-addr and -run-report")
	metricsAddr := flag.String("metrics-addr", "", "also serve Prometheus text on http://ADDR/metrics and expvar on /debug/vars")
	runReport := flag.String("run-report", "", "write a JSON run manifest to this file at exit (plus a Prometheus snapshot beside it)")
	flag.Parse()
	defer exitOnPanic()
	start := time.Now()

	if *metricsAddr != "" || *runReport != "" {
		*metrics = true
	}
	if *metrics {
		obs.SetEnabled(true)
	}
	if *metricsAddr != "" {
		a, err := obs.ListenAndServe(*metricsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "metrics-addr:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "serving metrics on http://%s/metrics\n", a)
	}

	// A members file with no explicit -replicas means a remote-only
	// balancer: every backend lives on another host.
	if *members != "" {
		replicasSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "replicas" {
				replicasSet = true
			}
		})
		if !replicasSet {
			*replicas = 0
		}
	}

	var factory cluster.Factory
	backend := "in-process"
	switch {
	case *replicas == 0:
		backend = "remote-only"
	case *execBin != "":
		backend = *execBin
		args := []string{"-window", window.String()}
		if *calPath != "" {
			args = append(args, "-cal", *calPath)
		}
		// Children must expose /metrics for the fleet_* aggregation to
		// have anything to scrape; a member without it answers 404 and
		// is silently skipped.
		if *metrics || *fleetScrape > 0 {
			args = append(args, "-metrics")
		}
		factory = cluster.ExecFactory(*execBin, args...)
	default:
		var cal *core.Calibration
		if *calPath != "" {
			loaded, _, err := caltrust.ReadFile(*calPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "cal:", err)
				os.Exit(1)
			}
			cal = &loaded
		}
		factory = cluster.InProcessFactory(cluster.InProcConfig{Cal: cal, Window: *window})
	}

	var slo *obs.SLOTracker
	if *sloLatency > 0 {
		var err error
		slo, err = obs.NewSLOTracker(obs.SLOConfig{
			LatencyThresholdSeconds: sloLatency.Seconds(),
			LatencyTarget:           *sloLatencyTarget,
			AvailabilityTarget:      *sloAvailability,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "slo:", err)
			os.Exit(1)
		}
	}

	c, err := cluster.New(cluster.Config{
		Replicas:          *replicas,
		Factory:           factory,
		HedgeDelay:        *hedge,
		SpillInFlight:     *spill,
		MaxTries:          *maxTries,
		RetryBudget:       *retryBudget,
		ProbeInterval:     *probe,
		HeartbeatInterval: *heartbeat,
		SuspectAfter:      *suspectAfter,
		Timeout:           *timeout,
		Sampler:           obs.NewSampler(*traceSample),
		SLO:               slo,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := c.Start(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// Membership: the members file is the fleet's source of truth. Boot
	// fails on an unreadable file (a balancer with no backends is a
	// deployment error); after boot, reload errors keep the last good
	// member set serving.
	memStop := make(chan struct{})
	if *members != "" {
		ms, err := cluster.NewMembership(c, cluster.MembershipConfig{
			Fetch:        cluster.FileSource(*members),
			PollInterval: *reload,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		sum, err := ms.Reload(context.Background())
		if err != nil {
			fmt.Fprintln(os.Stderr, "members:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "members: %d joined from %s\n", sum.Added, *members)
		go ms.Run(memStop)
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			for {
				select {
				case <-memStop:
					return
				case <-hup:
					sum, err := ms.Reload(context.Background())
					if err != nil {
						fmt.Fprintln(os.Stderr, "members reload:", err)
						continue
					}
					fmt.Fprintf(os.Stderr, "members reload: +%d -%d ~%d\n",
						sum.Added, sum.Removed, sum.Reweighted)
				}
			}
		}()
	}

	mux := http.NewServeMux()
	mux.Handle("/", c.Handler())
	fleet := cluster.NewFleet(c, cluster.FleetConfig{Interval: *fleetScrape, SLO: slo})
	if *fleetScrape > 0 {
		go fleet.Run(memStop)
	}
	mux.Handle("GET /debug/fleet", fleet.Handler())
	if *metrics {
		// The balancer's exposition includes the merged fleet_* series
		// from the latest member scrape.
		mux.Handle("GET /metrics", fleet.MetricsHandler())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "listen:", err)
		os.Exit(1)
	}
	httpSrv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	fmt.Fprintf(os.Stderr, "contentionlb on http://%s (%d replicas, backend %s, window %v, hedge %v)\n",
		ln.Addr(), *replicas, backend, *window, *hedge)

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "%v: draining fleet\n", sig)
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "serve:", err)
			os.Exit(1)
		}
	}

	// Drain order: the cluster flips /readyz and refuses new predicts
	// first, in-flight routed requests finish, replicas close; then the
	// front listener shuts down.
	close(memStop)
	shutCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := c.Shutdown(shutCtx); err != nil {
		fmt.Fprintln(os.Stderr, "drain:", err)
	}
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		fmt.Fprintln(os.Stderr, "shutdown:", err)
	}

	if *runReport != "" {
		m := obs.NewManifest("contentionlb")
		m.Config = map[string]string{
			"addr":         *addr,
			"replicas":     strconv.Itoa(*replicas),
			"backend":      backend,
			"window":       window.String(),
			"hedge":        hedge.String(),
			"spill":        strconv.Itoa(*spill),
			"max_tries":    strconv.Itoa(*maxTries),
			"retry_budget": fmt.Sprintf("%g", *retryBudget),
			"timeout":      timeout.String(),
		}
		m.StartedAt = start.UTC().Format(time.RFC3339)
		m.WallSeconds = time.Since(start).Seconds()
		m.Spans = obs.DefaultTracer().Spans()
		if slo != nil {
			st := slo.Status()
			m.SLO = &st
		}
		m.FillFromSnapshot(obs.Default().Snapshot())
		if err := m.Write(*runReport); err != nil {
			fmt.Fprintln(os.Stderr, "run-report:", err)
			os.Exit(1)
		}
		prom := strings.TrimSuffix(*runReport, ".json") + ".prom"
		if err := os.WriteFile(prom, []byte(obs.Default().PrometheusText()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "run-report:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "run manifest: %s (metrics snapshot: %s)\n", *runReport, prom)
	}
}

// exitOnPanic turns a stray panic from the internal packages into a
// clean error exit instead of a crash dump.
func exitOnPanic() {
	if r := recover(); r != nil {
		fmt.Fprintln(os.Stderr, "fatal:", r)
		os.Exit(1)
	}
}
