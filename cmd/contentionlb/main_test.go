package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestMembersReloadSmoke is the CLI-level membership smoke: two real
// contentiond daemons fronted by a real contentionlb -members, a
// SIGHUP-triggered reload that drops one member, and traffic that
// succeeds throughout. It drives the exact binaries and signals an
// operator would.
func TestMembersReloadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds two binaries and runs real processes")
	}
	dir := t.TempDir()
	build := func(name, pkg string) string {
		t.Helper()
		bin := filepath.Join(dir, name)
		if out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput(); err != nil {
			t.Fatalf("go build %s: %v\n%s", pkg, err, out)
		}
		return bin
	}
	daemonBin := build("contentiond", "contention/cmd/contentiond")
	lbBin := build("contentionlb", "contention/cmd/contentionlb")

	spawn := func(bin string, args ...string) (*exec.Cmd, string) {
		t.Helper()
		cmd := exec.Command(bin, args...)
		stderr, err := cmd.StderrPipe()
		if err != nil {
			t.Fatal(err)
		}
		if err := cmd.Start(); err != nil {
			t.Fatalf("start %s: %v", bin, err)
		}
		t.Cleanup(func() {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
		})
		addrCh := make(chan string, 1)
		go func() {
			br := bufio.NewReader(stderr)
			for {
				line, err := br.ReadString('\n')
				if i := strings.Index(line, "on http://"); i >= 0 {
					rest := line[i+len("on http://"):]
					if j := strings.IndexAny(rest, " \n"); j >= 0 {
						rest = rest[:j]
					}
					addrCh <- rest
					go func() {
						for {
							if _, err := br.ReadString('\n'); err != nil {
								return
							}
						}
					}()
					return
				}
				if err != nil {
					return
				}
			}
		}()
		select {
		case addr := <-addrCh:
			return cmd, addr
		case <-time.After(10 * time.Second):
			t.Fatalf("%s: no startup banner", bin)
			return nil, ""
		}
	}

	_, addr1 := spawn(daemonBin, "-addr", "127.0.0.1:0")
	_, addr2 := spawn(daemonBin, "-addr", "127.0.0.1:0")

	membersPath := filepath.Join(dir, "members.json")
	writeMembers := func(addrs ...string) {
		t.Helper()
		type m struct {
			Addr string `json:"addr"`
		}
		var f struct {
			Members []m `json:"members"`
		}
		for _, a := range addrs {
			f.Members = append(f.Members, m{Addr: a})
		}
		data, _ := json.Marshal(f)
		tmp := membersPath + ".tmp"
		if err := os.WriteFile(tmp, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.Rename(tmp, membersPath); err != nil {
			t.Fatal(err)
		}
	}
	writeMembers(addr1, addr2)

	lb, lbAddr := spawn(lbBin, "-addr", "127.0.0.1:0", "-members", membersPath, "-reload", "24h")

	upCount := func() int {
		resp, err := http.Get("http://" + lbAddr + "/healthz")
		if err != nil {
			return -1
		}
		defer resp.Body.Close()
		var h struct {
			ReplicasUp int `json:"replicas_up"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			return -1
		}
		return h.ReplicasUp
	}
	waitUp := func(want int, what string) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for upCount() != want {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s (replicas_up %d, want %d)", what, upCount(), want)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	predict := func() int {
		t.Helper()
		resp, err := http.Post("http://"+lbAddr+"/v1/predict", "application/json",
			strings.NewReader(`{"kind":"comp","dcomp":1,"contenders":[{"comm_fraction":0.3,"msg_words":100}]}`))
		if err != nil {
			t.Fatalf("predict: %v", err)
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}

	waitUp(2, "both members joined")
	if status := predict(); status != http.StatusOK {
		t.Fatalf("predict with 2 members: status %d", status)
	}

	// Drop the second member; SIGHUP applies the new file (the poll
	// interval is set far out, so the signal is what reloads).
	writeMembers(addr1)
	if err := lb.Process.Signal(syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}
	waitUp(1, "member drained after SIGHUP reload")
	if status := predict(); status != http.StatusOK {
		t.Fatalf("predict after reload: status %d", status)
	}

	// Re-add it: the next SIGHUP grows the fleet back.
	writeMembers(addr1, addr2)
	if err := lb.Process.Signal(syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}
	waitUp(2, "member rejoined after SIGHUP reload")
	if status := predict(); status != http.StatusOK {
		t.Fatalf("predict after rejoin: status %d", status)
	}
	fmt.Println("members-reload smoke: OK")
}
