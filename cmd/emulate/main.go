// Command emulate runs the live distributed contention emulation: real
// goroutines doing calibrated spin work under a quantum round-robin
// fair-share executor, and real loopback-TCP transfers over a paced
// shared wire. It compares the measured wall-clock slowdowns against
// the paper's laws (p+1 for a fair-shared CPU, n+1 for an FCFS wire),
// demonstrating the model against genuinely concurrent execution rather
// than the deterministic simulator.
//
// Usage:
//
//	emulate                 # both experiments, default sizes
//	emulate -p 4 -senders 3
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"contention/internal/emu"
	"contention/internal/obs"
)

func main() {
	maxP := flag.Int("p", 3, "maximum CPU-bound contender count")
	senders := flag.Int("senders", 2, "maximum concurrent contender senders on the link")
	work := flag.Float64("work", 0.1, "probe job size in CPU-seconds")
	metrics := flag.Bool("metrics", false, "record telemetry (metrics + spans); implied by -metrics-addr and -run-report")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus text on http://ADDR/metrics and expvar on /debug/vars")
	runReport := flag.String("run-report", "", "write a JSON run manifest to this file at exit (plus a Prometheus snapshot beside it)")
	flag.Parse()
	defer exitOnPanic()
	start := time.Now()

	if *metricsAddr != "" || *runReport != "" {
		*metrics = true
	}
	if *metrics {
		obs.SetEnabled(true)
	}
	if *metricsAddr != "" {
		addr, err := obs.ListenAndServe(*metricsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "metrics-addr:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "serving metrics on http://%s/metrics\n", addr)
	}
	if *maxP < 0 || *senders < 0 {
		fmt.Fprintf(os.Stderr, "contender counts must be non-negative (-p %d, -senders %d)\n", *maxP, *senders)
		os.Exit(2)
	}
	if *work <= 0 {
		fmt.Fprintf(os.Stderr, "-work %v must be positive\n", *work)
		os.Exit(2)
	}

	fmt.Println("calibrating spin rate...")
	spinner, err := emu.CalibrateSpinner(200 * time.Millisecond)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("spin rate: %.3g ops/s\n\n", spinner.OpsPerSec())

	fmt.Println("CPU contention on a fair-shared host (paper: slowdown = p+1):")
	fmt.Printf("%4s  %12s  %12s  %9s  %7s  %6s\n", "p", "dedicated", "contended", "slowdown", "model", "err")
	cpuSpan := obs.StartSpan("emulate", "cpu-contention")
	for p := 1; p <= *maxP; p++ {
		res, err := emu.ComputeSlowdown(spinner, *work, p)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%4d  %12v  %12v  %9.2f  %7.0f  %5.1f%%\n",
			p, res.Dedicated.Round(time.Millisecond), res.Contended.Round(time.Millisecond),
			res.Slowdown, res.ModelSlowdown, res.ErrPct)
	}

	cpuSpan.End()

	fmt.Println("\nmixture workload (alternators; model = work conservation over observed utilizations):")
	fmt.Printf("%18s  %9s  %7s  %6s\n", "fractions", "slowdown", "model", "err")
	mixSpan := obs.StartSpan("emulate", "mixture")
	for _, fracs := range [][]float64{{0.5}, {0.5, 0.5}, {0.3, 0.7}} {
		res, err := emu.MixtureSlowdown(spinner, *work, fracs)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%18v  %9.2f  %7.2f  %5.1f%%\n", fracs, res.Slowdown, res.ModelSlowdown, res.ErrPct)
	}

	mixSpan.End()

	fmt.Println("\nlink contention over real loopback TCP (FCFS wire: slowdown ≈ n+1):")
	fmt.Printf("%4s  %12s  %12s  %9s  %7s  %6s\n", "n", "dedicated", "contended", "slowdown", "model", "err")
	linkSpan := obs.StartSpan("emulate", "link-contention")
	for n := 1; n <= *senders; n++ {
		res, err := emu.LinkContention(80, 300, n)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%4d  %12v  %12v  %9.2f  %7.0f  %5.1f%%\n",
			n, res.Dedicated.Round(time.Millisecond), res.Contended.Round(time.Millisecond),
			res.Slowdown, res.ModelSlowdown, res.ErrPct)
	}
	linkSpan.End()

	if *runReport != "" {
		m := obs.NewManifest("emulate")
		m.Config = map[string]string{
			"p":       strconv.Itoa(*maxP),
			"senders": strconv.Itoa(*senders),
			"work":    strconv.FormatFloat(*work, 'g', -1, 64),
		}
		m.StartedAt = start.UTC().Format(time.RFC3339)
		m.WallSeconds = time.Since(start).Seconds()
		m.Spans = obs.DefaultTracer().Spans()
		m.FillFromSnapshot(obs.Default().Snapshot())
		if err := m.Write(*runReport); err != nil {
			fmt.Fprintln(os.Stderr, "run-report:", err)
			os.Exit(1)
		}
		prom := strings.TrimSuffix(*runReport, ".json") + ".prom"
		if err := os.WriteFile(prom, []byte(obs.Default().PrometheusText()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "run-report:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "run manifest: %s (metrics snapshot: %s)\n", *runReport, prom)
	}
}

// exitOnPanic turns a stray panic from the internal packages into a
// clean error exit instead of a crash dump — user input must never
// produce a stack trace.
func exitOnPanic() {
	if r := recover(); r != nil {
		fmt.Fprintln(os.Stderr, "fatal:", r)
		os.Exit(1)
	}
}
