// Command experiments reproduces every table and figure of the paper's
// evaluation on the simulated platforms and prints model-vs-actual
// series with error summaries. Its output is the data recorded in
// EXPERIMENTS.md.
//
// Usage:
//
//	experiments            # run everything
//	experiments -list      # list experiment ids
//	experiments -only figure5
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"contention/internal/experiments"
	"contention/internal/obs"
	"contention/internal/runner"
)

func main() {
	only := flag.String("only", "", "run a single experiment by id (e.g. figure5)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	extensions := flag.Bool("extensions", false, "also run the extension experiments (synthetic suite, I/O, phased, multi-machine)")
	scenarios := flag.Bool("scenarios", false, "also run the scenario sweep matrix (every builtin scenario × wire format × serving mode, with replay verification per cell)")
	scenarioN := flag.Int("scenario-n", 60, "requests per scenario sweep cell")
	asJSON := flag.Bool("json", false, "emit results as a JSON array instead of text tables")
	parallel := flag.Bool("parallel", true, "fan experiment drivers and sweeps out on a worker pool (output is byte-identical to serial)")
	workers := flag.Int("workers", 0, "worker-pool size for -parallel (0 = GOMAXPROCS)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	metrics := flag.Bool("metrics", false, "record telemetry (metrics + spans); implied by -metrics-addr and -run-report")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus text on http://ADDR/metrics and expvar on /debug/vars")
	runReport := flag.String("run-report", "", "write a JSON run manifest to this file at exit (plus a Prometheus snapshot beside it)")
	flag.Parse()
	defer exitOnPanic()
	start := time.Now()

	if *metricsAddr != "" || *runReport != "" {
		*metrics = true
	}
	if *metrics {
		obs.SetEnabled(true)
	}
	if *metricsAddr != "" {
		addr, err := obs.ListenAndServe(*metricsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "metrics-addr:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "serving metrics on http://%s/metrics\n", addr)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
		}()
	}

	ids := []string{"table1-2", "table3", "table4", "figure1", "figure2",
		"figure3", "figure4", "figure5", "figure6", "figure7", "figure8",
		"synthetic", "iochar", "phased", "multimachine", "offload", "faulttolerance",
		"caldrift", "scenarioreplay", "scenariosweep"}
	if *list {
		for _, id := range ids {
			fmt.Println(id)
		}
		return
	}

	fmt.Fprintln(os.Stderr, "calibrating platforms (runs the system test suite once)...")
	env, err := experiments.NewEnv()
	if err != nil {
		fmt.Fprintln(os.Stderr, "calibration failed:", err)
		os.Exit(1)
	}
	if *parallel {
		env = env.WithPool(runner.New(*workers))
	}
	results, err := experiments.All(env)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiment failed:", err)
		os.Exit(1)
	}
	wantExt := *extensions
	if *only == "synthetic" || *only == "iochar" || *only == "phased" || *only == "multimachine" || *only == "offload" || *only == "faulttolerance" || *only == "caldrift" || *only == "scenarioreplay" {
		wantExt = true
	}
	if wantExt {
		ext, err := experiments.Extensions(env)
		if err != nil {
			fmt.Fprintln(os.Stderr, "extension experiment failed:", err)
			os.Exit(1)
		}
		results = append(results, ext...)
	}
	var scenarioReport *obs.ScenarioReport
	if *scenarios || *only == "scenariosweep" {
		fmt.Fprintln(os.Stderr, "running the scenario sweep matrix...")
		r, rep, err := experiments.ScenarioSweep(env, *scenarioN)
		if err != nil {
			fmt.Fprintln(os.Stderr, "scenario sweep failed:", err)
			os.Exit(1)
		}
		results = append(results, r)
		scenarioReport = rep
	}
	found := false
	var selected []experiments.Result
	for _, r := range results {
		if *only != "" && r.ID != *only {
			continue
		}
		found = true
		selected = append(selected, r)
	}
	if *only != "" && !found {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *only)
		os.Exit(1)
	}
	if *runReport != "" {
		m := experiments.BuildManifest(env, "experiments", map[string]string{
			"only":       *only,
			"extensions": strconv.FormatBool(wantExt),
			"scenarios":  strconv.FormatBool(scenarioReport != nil),
			"parallel":   strconv.FormatBool(*parallel),
			"workers":    strconv.Itoa(env.Pool.Workers()),
		})
		m.Scenario = scenarioReport
		m.StartedAt = start.UTC().Format(time.RFC3339)
		m.WallSeconds = time.Since(start).Seconds()
		if err := m.Write(*runReport); err != nil {
			fmt.Fprintln(os.Stderr, "run-report:", err)
			os.Exit(1)
		}
		prom := strings.TrimSuffix(*runReport, ".json") + ".prom"
		if err := os.WriteFile(prom, []byte(obs.Default().PrometheusText()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "run-report:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "run manifest: %s (metrics snapshot: %s)\n", *runReport, prom)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(selected); err != nil {
			fmt.Fprintln(os.Stderr, "encoding results:", err)
			os.Exit(1)
		}
		return
	}
	for _, r := range selected {
		fmt.Println(r.Render())
	}
}

// exitOnPanic turns a stray panic from the internal packages into a
// clean error exit instead of a crash dump — user input must never
// produce a stack trace.
func exitOnPanic() {
	if r := recover(); r != nil {
		fmt.Fprintln(os.Stderr, "fatal:", r)
		os.Exit(1)
	}
}
