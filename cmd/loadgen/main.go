// Command loadgen drives a contentiond prediction service with
// synthetic traffic and records throughput and latency percentiles in
// the benchjson snapshot format, so serving performance regressions are
// caught the same way (`benchjson -diff`) as micro-benchmark ones.
//
// Two generator shapes:
//
//   - closed loop (-mode closed): -conc workers issue requests
//     back-to-back; throughput is whatever the service sustains.
//   - open loop (-mode open): requests arrive on a fixed schedule at
//     -rate req/s regardless of completions — the shape that exposes
//     queueing collapse, since arrivals do not slow down when the
//     server does.
//
// With no -addr, loadgen self-serves: it starts an in-process server on
// a loopback port (built-in synthetic calibration) and drives that, so
// a smoke run needs no separately started daemon. With -cluster N it
// self-serves a supervised N-replica fleet behind the affinity router
// instead, measuring the load balancer path end to end.
//
// Usage:
//
// With -remote N and -exec it self-serves the multi-host path: N
// contentiond child processes joined as remote members of a
// remote-only router (HTTP transport, heartbeat failure detection) —
// the closest single-machine stand-in for a real fleet. With -members
// it routes to the remote replicas listed in a members file instead.
//
// Usage:
//
//	loadgen -duration 5s -conc 8                  # closed loop, self-served
//	loadgen -mode open -rate 2000 -duration 10s   # open loop at 2 kreq/s
//	loadgen -binary                               # binary wire format instead of JSON
//	loadgen -binary -surface                      # + precomputed-surface fast path
//	loadgen -cluster 4 -o BENCH_cluster.json      # 4-replica fleet behind the router
//	loadgen -remote 2 -exec ./contentiond         # remote-member path, child daemons
//	loadgen -members members.json                 # remote fleet from a members file
//	loadgen -addr 127.0.0.1:8123 -o BENCH_serve.json -label pr5
//	loadgen -o BENCH.json -append                 # add this run to an existing snapshot
package main

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"contention/internal/cluster"
	"contention/internal/core"
	"contention/internal/obs"
	"contention/internal/runner"
	"contention/internal/scenario"
	"contention/internal/serve"
	"contention/internal/surface"
)

// benchmark and snapshot mirror cmd/benchjson's wire format (that
// command is package main, so the shapes are restated here; the format
// is pinned by the snapshot schema test in cmd/benchjson).
type benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type snapshot struct {
	Label      string      `json:"label"`
	GoOS       string      `json:"goos,omitempty"`
	GoArch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []benchmark `json:"benchmarks"`
}

func main() {
	addr := flag.String("addr", "", "target host:port; empty self-serves an in-process server on loopback")
	mode := flag.String("mode", "closed", "generator shape: closed (back-to-back workers) or open (fixed arrival rate)")
	conc := flag.Int("conc", 2*runtime.GOMAXPROCS(0), "closed-loop worker count (also open-loop max in-flight)")
	rate := flag.Float64("rate", 1000, "open-loop arrival rate in req/s")
	duration := flag.Duration("duration", 3*time.Second, "run length")
	warmup := flag.Duration("warmup", 300*time.Millisecond, "warm-up run excluded from the recorded stats")
	seed := flag.Int64("seed", 1, "corpus seed")
	label := flag.String("label", "loadgen", "snapshot label recorded in the JSON")
	out := flag.String("o", "", "write benchjson snapshot to this file (default stdout)")
	window := flag.Duration("window", serve.DefaultWindow, "micro-batch window for the self-served server")
	clusterN := flag.Int("cluster", 0, "self-serve a supervised cluster of N in-process replicas behind the affinity router (instead of one server); ignored with -addr")
	remoteN := flag.Int("remote", 0, "self-serve a remote-only router over N contentiond child processes from -exec; ignored with -addr")
	execBin := flag.String("exec", "", "contentiond binary spawned by -remote")
	membersPath := flag.String("members", "", "route to the remote members listed in this file (remote-only router in front); ignored with -addr")
	binaryMode := flag.Bool("binary", false, "send requests in the binary wire format instead of JSON")
	surfaceMode := flag.Bool("surface", false, "self-serve with a precomputed slowdown surface attached and the batcher-bypass fast path on (single in-process server only)")
	traceSample := flag.Int("trace-sample", 0, "head-sample 1 in N requests into a propagated trace: the context rides the trace header (JSON) or the in-band binary trace block (0 disables)")
	stagesOut := flag.Bool("stages", false, "record per-stage latency attribution on the self-served target and emit stage-*-p50/p99-ms metrics in the snapshot")
	appendOut := flag.Bool("append", false, "append this run's benchmarks to the existing snapshot in -o instead of overwriting it")
	scenarioSpec := flag.String("scenario", "", "drive a scenario schedule instead of uniform traffic: a built-in name (steady, diurnal, bursty, flashcrowd, mixed) or a spec string; paced open-loop by the schedule's offsets over -duration from -seed (overrides -mode/-rate)")
	recordPath := flag.String("record", "", "record the -scenario run — requests and the responses they received — as a contention/trace/v1 file")
	replayPath := flag.String("replay", "", "replay a recorded trace file, paced by its recorded offsets, and verify each response against the recorded one (exit 1 on mismatch)")
	flag.Parse()

	if *mode != "closed" && *mode != "open" {
		fmt.Fprintf(os.Stderr, "-mode %q must be closed or open\n", *mode)
		os.Exit(2)
	}
	if *conc < 1 || *rate <= 0 || *duration <= 0 {
		fmt.Fprintln(os.Stderr, "-conc, -rate and -duration must be positive")
		os.Exit(2)
	}
	if *scenarioSpec != "" && *replayPath != "" {
		fmt.Fprintln(os.Stderr, "-scenario and -replay are mutually exclusive")
		os.Exit(2)
	}
	if *recordPath != "" && *scenarioSpec == "" {
		fmt.Fprintln(os.Stderr, "-record needs -scenario (the run to record)")
		os.Exit(2)
	}
	if *traceSample > 0 && (*scenarioSpec != "" || *replayPath != "") {
		fmt.Fprintln(os.Stderr, "-trace-sample does not combine with -scenario/-replay (traces of traces)")
		os.Exit(2)
	}

	if *remoteN > 0 && *execBin == "" {
		fmt.Fprintln(os.Stderr, "-remote needs -exec (the contentiond binary to spawn)")
		os.Exit(2)
	}
	if *surfaceMode && (*addr != "" || *clusterN > 0 || *remoteN > 0 || *membersPath != "") {
		fmt.Fprintln(os.Stderr, "-surface applies only to the single self-served server (no -addr/-cluster/-remote/-members)")
		os.Exit(2)
	}
	if *appendOut && *out == "" {
		fmt.Fprintln(os.Stderr, "-append needs -o (the snapshot file to extend)")
		os.Exit(2)
	}
	// Stage attribution and sampled traces both need telemetry on; with a
	// self-served target the server side shares this process's registry.
	if *stagesOut || *traceSample > 0 {
		obs.SetEnabled(true)
	}
	target := *addr
	remoteMembers := 0
	if target == "" {
		var (
			stop     func()
			hostPort string
			desc     string
			err      error
		)
		switch {
		case *remoteN > 0 || *membersPath != "":
			stop, hostPort, remoteMembers, err = selfServeRemote(*remoteN, *execBin, *membersPath, *window)
			desc = fmt.Sprintf("remote-only router over %d members", remoteMembers)
		case *clusterN > 0:
			stop, hostPort, err = selfServeCluster(*clusterN, *window)
			desc = fmt.Sprintf("%d-replica cluster", *clusterN)
		default:
			stop, hostPort, err = selfServe(*window, *surfaceMode)
			desc = "server"
			if *surfaceMode {
				desc = "server (surface fast path)"
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "self-serve:", err)
			os.Exit(1)
		}
		defer stop()
		target = hostPort
		fmt.Fprintf(os.Stderr, "self-serving %s on %s (synthetic calibration, window %v)\n", desc, target, *window)
	}
	url := "http://" + target + "/v1/predict"
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        4 * *conc,
		MaxIdleConnsPerHost: 4 * *conc,
	}}

	contentType := "application/json"
	if *binaryMode {
		contentType = serve.ContentTypeBinary
	}
	sampler := obs.NewSampler(*traceSample)

	// Scenario and replay runs are schedule-paced: build the play list up
	// front so the measured loop only paces and posts.
	var (
		sc         *scenario.Scenario
		plays      []playItem
		replayRecs []scenario.Record
		scenName   string
	)
	switch {
	case *replayPath != "":
		f, err := os.Open(*replayPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
		hdr, recs, err := scenario.ReadTrace(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: reading trace %s: %v\n", *replayPath, err)
			os.Exit(1)
		}
		if len(recs) == 0 {
			fmt.Fprintf(os.Stderr, "loadgen: trace %s holds no records\n", *replayPath)
			os.Exit(1)
		}
		// The trace's wire format wins over -binary: the recorded bytes
		// are what gets replayed.
		*binaryMode = hdr.Format == scenario.FormatBinary
		contentType = "application/json"
		if *binaryMode {
			contentType = serve.ContentTypeBinary
		}
		replayRecs = recs
		plays = make([]playItem, len(recs))
		for i, r := range recs {
			plays[i] = playItem{offset: r.Offset, cohort: r.Cohort, body: r.Req}
		}
		scenName = "replay"
		fmt.Fprintf(os.Stderr, "replaying %d records (scenario %q, seed %d, %s wire, served=%v)\n",
			len(recs), hdr.Scenario, hdr.Seed, hdr.Format, hdr.Served)
	case *scenarioSpec != "":
		var err error
		if sc, err = scenario.Parse(*scenarioSpec); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(2)
		}
		items, err := sc.Schedule(*seed, *duration)
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
		format := scenario.FormatJSON
		if *binaryMode {
			format = scenario.FormatBinary
		}
		plays = make([]playItem, len(items))
		for i, it := range items {
			b, err := scenario.EncodeItem(it, format)
			if err != nil {
				fmt.Fprintf(os.Stderr, "loadgen: encoding schedule item %d: %v\n", i, err)
				os.Exit(1)
			}
			plays[i] = playItem{offset: it.Offset, cohort: it.Cohort, body: b}
		}
		scenName = "scenario-" + benchSafe(sc.Name)
		fmt.Fprintf(os.Stderr, "scenario %s: %d scheduled requests over %v (seed %d, %s wire)\n",
			sc.Name, len(plays), *duration, *seed, format)
	}

	bodies, traced := corpus(rand.New(rand.NewSource(*seed)), 512, *binaryMode)
	if *warmup > 0 {
		run(client, url, contentType, bodies, nil, nil, "closed", *conc, *rate, *warmup)
	}
	if *stagesOut {
		// Drop warm-up observations so the stage quantiles cover only the
		// measured run.
		obs.Default().Reset()
	}
	// Mallocs delta across the measured run / successful requests gives a
	// process-wide allocs/op trend line: client encode+decode cost, plus
	// the whole server side when self-serving.
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	var (
		res      *result
		statuses []int
		outs     []serve.Response
	)
	if plays != nil {
		res, statuses, outs = runSchedule(client, url, contentType, plays, *conc)
	} else {
		res = run(client, url, contentType, bodies, traced, sampler, *mode, *conc, *rate, *duration)
	}
	runtime.ReadMemStats(&ms1)

	if *recordPath != "" {
		if err := writeServedTrace(*recordPath, sc, *seed, *duration, *binaryMode, plays, statuses, outs); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen: recording trace:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "recorded %d served requests to %s\n", len(plays), *recordPath)
	}
	if replayRecs != nil {
		if m := verifyReplay(replayRecs, statuses, outs); m > 0 {
			fmt.Fprintf(os.Stderr, "loadgen: replay verification FAILED: %d of %d responses diverged\n", m, len(replayRecs))
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "replay verified: %d responses reproduced\n", len(replayRecs))
	}

	if res.errors > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: %d/%d requests failed; first: %s\n", res.errors, res.total(), res.firstErr)
	}
	if len(res.latencies) == 0 {
		fmt.Fprintln(os.Stderr, "loadgen: no successful requests")
		os.Exit(1)
	}
	sort.Float64s(res.latencies)
	name := fmt.Sprintf("Loadgen/%s-conc%d", *mode, *conc)
	if *mode == "open" {
		name = fmt.Sprintf("Loadgen/open-rate%g", *rate)
	}
	if scenName != "" {
		name = "Loadgen/" + scenName
	}
	if *addr == "" {
		switch {
		case *remoteN > 0 || *membersPath != "":
			name += fmt.Sprintf("-remote%d", remoteMembers)
		case *clusterN > 0:
			name += fmt.Sprintf("-cluster%d", *clusterN)
		}
	}
	if *binaryMode {
		name += "-bin"
	}
	if *surfaceMode {
		name += "-surface"
	}
	snap := snapshot{
		Label:  *label,
		GoOS:   runtime.GOOS,
		GoArch: runtime.GOARCH,
		CPU:    fmt.Sprintf("GOMAXPROCS=%d", runtime.GOMAXPROCS(0)),
		Benchmarks: []benchmark{{
			Name:       name,
			Iterations: int64(len(res.latencies)),
			Metrics: map[string]float64{
				"req/s":     float64(len(res.latencies)) / res.elapsed.Seconds(),
				"p50-ms":    percentile(res.latencies, 50),
				"p90-ms":    percentile(res.latencies, 90),
				"p99-ms":    percentile(res.latencies, 99),
				"p99.9-ms":  percentile(res.latencies, 99.9),
				"max-ms":    res.latencies[len(res.latencies)-1],
				"err%":      100 * float64(res.errors) / float64(res.total()),
				"batched%":  100 * float64(res.batched.Load()) / float64(len(res.latencies)),
				"fast%":     100 * float64(res.fast.Load()) / float64(len(res.latencies)),
				"allocs/op": float64(ms1.Mallocs-ms0.Mallocs) / float64(len(res.latencies)),
			},
		}},
	}
	if *stagesOut {
		for k, v := range stageMetrics(obs.Default().Snapshot()) {
			snap.Benchmarks[0].Metrics[k] = v
		}
	}
	fmt.Fprintf(os.Stderr, "%s: %d ok in %v — %.0f req/s, p50 %.3f ms, p99 %.3f ms, p99.9 %.3f ms, batched %.1f%%, fast %.1f%%, %.0f allocs/op\n",
		name, len(res.latencies), res.elapsed.Round(time.Millisecond),
		snap.Benchmarks[0].Metrics["req/s"], snap.Benchmarks[0].Metrics["p50-ms"],
		snap.Benchmarks[0].Metrics["p99-ms"], snap.Benchmarks[0].Metrics["p99.9-ms"],
		snap.Benchmarks[0].Metrics["batched%"], snap.Benchmarks[0].Metrics["fast%"],
		snap.Benchmarks[0].Metrics["allocs/op"])

	if *appendOut {
		if prev, err := os.ReadFile(*out); err == nil {
			var old snapshot
			if err := json.Unmarshal(prev, &old); err != nil {
				fmt.Fprintf(os.Stderr, "loadgen: -append %s: %v\n", *out, err)
				os.Exit(1)
			}
			old.Benchmarks = append(old.Benchmarks, snap.Benchmarks...)
			snap = old
		}
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// benchSafe reduces a scenario name to a benchmark-name-safe token:
// alphanumerics, dashes and underscores, capped at 24 runes. Anything
// else (a raw spec string used without a name) falls back to "custom".
func benchSafe(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			b.WriteRune(r)
		default:
			continue
		}
		if b.Len() >= 24 {
			break
		}
	}
	if b.Len() == 0 {
		return "custom"
	}
	return b.String()
}

// writeServedTrace records a scenario run — every request body plus the
// status and response it received — as a contention/trace/v1 file, so
// the run can be replayed and verified later.
func writeServedTrace(path string, sc *scenario.Scenario, seed int64, horizon time.Duration, binary bool, plays []playItem, statuses []int, outs []serve.Response) error {
	format := scenario.FormatJSON
	if binary {
		format = scenario.FormatBinary
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	tw, err := scenario.NewTraceWriter(f, scenario.TraceHeader{
		Seed:      seed,
		Scenario:  sc.Spec(),
		HorizonMS: horizon.Milliseconds(),
		Format:    format,
		Served:    true,
	})
	if err != nil {
		f.Close()
		return err
	}
	for i, p := range plays {
		rec := scenario.Record{
			Offset: p.offset, Cohort: p.cohort, Req: p.body,
			HasResp: true, Status: statuses[i], Resp: outs[i],
		}
		if err := tw.Write(&rec); err != nil {
			f.Close()
			return err
		}
	}
	if err := tw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// selfServe starts an in-process prediction server on a loopback port,
// optionally with a precomputed slowdown surface attached and the
// batcher-bypass fast path enabled.
func selfServe(window time.Duration, withSurface bool) (stop func(), hostPort string, err error) {
	cal := serve.SyntheticCalibration()
	pred, err := core.NewPredictor(cal)
	if err != nil {
		return nil, "", err
	}
	if withSurface {
		s, err := surface.Build(cal.Tables, surface.Config{})
		if err != nil {
			return nil, "", err
		}
		if err := pred.AttachSurface(s); err != nil {
			return nil, "", err
		}
	}
	srv, err := serve.New(serve.Config{
		Pred: pred, Pool: runner.New(0), Window: window, FastPath: withSurface,
	})
	if err != nil {
		return nil, "", err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		return nil, "", err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	return func() { hs.Close(); srv.Close() }, ln.Addr().String(), nil
}

// selfServeCluster starts a supervised fleet of n in-process replicas
// behind the affinity router on a loopback port. Affinity routing keeps
// equal contender mixes on one replica, so batched% should hold up
// against the single-replica number instead of diluting by 1/n.
func selfServeCluster(n int, window time.Duration) (stop func(), hostPort string, err error) {
	c, err := cluster.New(cluster.Config{
		Replicas: n,
		Factory:  cluster.InProcessFactory(cluster.InProcConfig{Window: window}),
	})
	if err != nil {
		return nil, "", err
	}
	if err := c.Start(); err != nil {
		return nil, "", err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = c.Shutdown(ctx)
		return nil, "", err
	}
	hs := &http.Server{Handler: c.Handler()}
	go hs.Serve(ln)
	return func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = c.Shutdown(ctx)
	}, ln.Addr().String(), nil
}

// selfServeRemote starts a remote-only router on a loopback port and
// joins its members: n contentiond child processes spawned from bin,
// plus everything listed in membersPath (either may be empty). The
// routed path is the real multi-host one — HTTP transport, heartbeat
// failure detection — just with loopback standing in for the network.
func selfServeRemote(n int, bin, membersPath string, window time.Duration) (stop func(), hostPort string, members int, err error) {
	c, err := cluster.New(cluster.Config{})
	if err != nil {
		return nil, "", 0, err
	}
	if err := c.Start(); err != nil {
		return nil, "", 0, err
	}
	var children []cluster.Replica
	teardown := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = c.Shutdown(ctx)
		for _, r := range children {
			_ = r.Close(ctx)
		}
	}
	fail := func(err error) (func(), string, int, error) {
		teardown()
		return nil, "", 0, err
	}
	if n > 0 {
		factory := cluster.ExecFactory(bin, "-window", window.String())
		for i := 0; i < n; i++ {
			rep, err := factory(i, 0)
			if err != nil {
				return fail(fmt.Errorf("spawn contentiond %d: %w", i, err))
			}
			children = append(children, rep)
			if _, err := c.AddRemote(rep.Addr(), 1); err != nil {
				return fail(err)
			}
			members++
		}
	}
	if membersPath != "" {
		ms, err := cluster.NewMembership(c, cluster.MembershipConfig{Fetch: cluster.FileSource(membersPath)})
		if err != nil {
			return fail(err)
		}
		sum, err := ms.Reload(context.Background())
		if err != nil {
			return fail(err)
		}
		members += sum.Added
	}
	if members == 0 {
		return fail(fmt.Errorf("no remote members joined"))
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fail(err)
	}
	hs := &http.Server{Handler: c.Handler()}
	go hs.Serve(ln)
	return func() {
		hs.Close()
		teardown()
	}, ln.Addr().String(), members, nil
}

// corpus builds n request bodies over a small pool of contender mixes,
// weighted toward mix reuse so the server's micro-batching sees the
// traffic shape it exists for. Half the mixes are homogeneous — one
// spec replicated p times, no I/O — the class the precomputed surface
// covers, so -surface runs exercise the fast path on realistic sweeps
// while the other half measures the heterogeneous fallback.
//
// For the binary format a second, traced encoding of each body is also
// returned: identical payload plus an in-band trace block holding
// placeholder ids, which run patches per sampled request (the block
// sits at fixed offsets right after the 4-byte header). traced is nil
// for JSON — sampled JSON requests carry the trace header instead.
func corpus(rng *rand.Rand, n int, binary bool) (bodies, traced [][]byte) {
	mixes := make([][]serve.ContenderSpec, 12)
	for m := range mixes {
		p := rng.Intn(5)
		specs := make([]serve.ContenderSpec, p)
		if m < len(mixes)/2 {
			one := serve.ContenderSpec{
				CommFraction: math.Round(rng.Float64()*80) / 100,
				MsgWords:     rng.Intn(2000),
			}
			for i := range specs {
				specs[i] = one
			}
		} else {
			for i := range specs {
				specs[i] = serve.ContenderSpec{
					CommFraction: math.Round(rng.Float64()*80) / 100,
					MsgWords:     rng.Intn(2000),
				}
			}
		}
		mixes[m] = specs
	}
	bodies = make([][]byte, n)
	if binary {
		traced = make([][]byte, n)
	}
	placeholder := obs.TraceContext{TraceID: 1, Sampled: true}
	for i := range bodies {
		req := serve.Request{Contenders: mixes[rng.Intn(len(mixes))]}
		if rng.Intn(2) == 0 {
			req.Kind = "comm"
			req.Dir = "to_back"
			if rng.Intn(2) == 0 {
				req.Dir = "to_host"
			}
			req.Sets = []serve.DataSetSpec{{N: 1 + rng.Intn(100), Words: rng.Intn(4000)}}
		} else {
			req.Kind = "comp"
			d := 0.1 + rng.Float64()*10
			req.Dcomp = &d
		}
		var (
			b   []byte
			err error
		)
		if binary {
			b, err = serve.AppendBinaryRequest(nil, &req)
			if err == nil {
				traced[i], err = serve.AppendBinaryRequestTraced(nil, &req, placeholder)
			}
		} else {
			b, err = json.Marshal(&req)
		}
		if err != nil {
			panic(err) // corpus requests are valid by construction
		}
		bodies[i] = b
	}
	return bodies, traced
}

// stageMetrics digests the serve_stage_seconds histograms into
// stage-<name>-p50/p99-ms snapshot metrics — the `-ms` suffix makes
// benchjson treat them as regress-guarded cost metrics.
func stageMetrics(snap obs.Snapshot) map[string]float64 {
	out := map[string]float64{}
	prefix := obs.MetricServeStageSeconds + `{stage="`
	for _, m := range snap.Metrics {
		if !strings.HasPrefix(m.Name, prefix) || !strings.HasSuffix(m.Name, `"}`) {
			continue
		}
		stage := m.Name[len(prefix) : len(m.Name)-2]
		if p50, ok := m.Quantile(0.5); ok {
			out["stage-"+stage+"-p50-ms"] = p50 * 1e3
		}
		if p99, ok := m.Quantile(0.99); ok {
			out["stage-"+stage+"-p99-ms"] = p99 * 1e3
		}
	}
	return out
}

// result accumulates one run's outcomes.
type result struct {
	latencies []float64 // milliseconds, successful requests only
	errors    int64
	firstErr  string
	elapsed   time.Duration
	batched   atomic.Int64
	fast      atomic.Int64
}

func (r *result) total() int64 { return int64(len(r.latencies)) + r.errors }

// run executes one generator run and returns the measured outcomes.
// Binary-format responses only arrive with status 200 — pipeline errors
// come back as the JSON envelope regardless of the request format, so
// non-200 is recorded off the status alone. When sampler fires for a
// request, a fresh root trace context rides along — patched into the
// traced binary body when one exists, the trace header otherwise.
func run(client *http.Client, url, contentType string, bodies, traced [][]byte, sampler *obs.Sampler, mode string, conc int, rate float64, d time.Duration) *result {
	res := &result{}
	var mu sync.Mutex
	record := func(lat time.Duration, out serve.Response, err error) {
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			res.errors++
			if res.firstErr == "" {
				res.firstErr = err.Error()
			}
			return
		}
		res.latencies = append(res.latencies, float64(lat)/float64(time.Millisecond))
		if out.Batch > 1 {
			res.batched.Add(1)
		}
		if out.Fast {
			res.fast.Add(1)
		}
	}
	binaryFmt := contentType == serve.ContentTypeBinary
	one := func(idx int) {
		body := bodies[idx]
		traceHdr := ""
		if sampler.Sample() {
			tc := obs.NewRootContext(true)
			if traced != nil {
				// Patch the placeholder ids in the pre-encoded trace block,
				// which sits at a fixed offset: u32 length prefix, 4-byte
				// header, then u64 trace id + u64 span id.
				buf := append([]byte(nil), traced[idx]...)
				binary.LittleEndian.PutUint64(buf[8:], tc.TraceID)
				binary.LittleEndian.PutUint64(buf[16:], tc.SpanID)
				body = buf
			} else {
				traceHdr = tc.String()
			}
		}
		t0 := time.Now()
		var resp *http.Response
		var err error
		if traceHdr != "" {
			req, rerr := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
			if rerr != nil {
				record(0, serve.Response{}, rerr)
				return
			}
			req.Header.Set("Content-Type", contentType)
			req.Header.Set(serve.TraceHeader, traceHdr)
			resp, err = client.Do(req)
		} else {
			resp, err = client.Post(url, contentType, bytes.NewReader(body))
		}
		lat := time.Since(t0)
		if err != nil {
			record(0, serve.Response{}, err)
			return
		}
		var out serve.Response
		var decErr error
		if binaryFmt && resp.StatusCode == http.StatusOK {
			var raw []byte
			raw, decErr = io.ReadAll(resp.Body)
			if decErr == nil {
				out, decErr = serve.DecodeBinaryResponse(raw)
			}
		} else {
			decErr = json.NewDecoder(resp.Body).Decode(&out)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			record(0, serve.Response{}, fmt.Errorf("status %d", resp.StatusCode))
			return
		}
		if decErr != nil {
			record(0, serve.Response{}, decErr)
			return
		}
		record(lat, out, nil)
	}

	start := time.Now()
	deadline := start.Add(d)
	var wg sync.WaitGroup
	switch mode {
	case "closed":
		for w := 0; w < conc; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				lrng := rand.New(rand.NewSource(int64(w) + 101))
				for time.Now().Before(deadline) {
					one(lrng.Intn(len(bodies)))
				}
			}(w)
		}
	case "open":
		// Fixed arrival schedule via the shared pacer; a semaphore caps
		// in-flight requests so an overloaded server surfaces as drops
		// (counted as errors), not as an unbounded goroutine pile.
		sem := make(chan struct{}, 4*conc)
		openLoop(newUniformPacer(rate), d, len(bodies), func(idx int) {
			select {
			case sem <- struct{}{}:
				wg.Add(1)
				go func() {
					defer wg.Done()
					defer func() { <-sem }()
					one(idx)
				}()
			default:
				record(0, serve.Response{}, fmt.Errorf(overloadFmt, cap(sem)))
			}
		})
	}
	wg.Wait()
	res.elapsed = time.Since(start)
	return res
}

// percentile returns the p-th percentile (nearest-rank) of sorted data.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}
