// Open-loop pacing. Legacy -rate traffic and scenario/trace schedules
// share one pacer abstraction: a pacer yields successive arrival
// offsets from run start, and paceLoop sleeps to each offset and fires
// the arrival callback synchronously, in order — so the per-arrival
// corpus draws stay on one deterministic rng stream regardless of which
// pacer is driving.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"os"
	"sync"
	"time"

	"contention/internal/scenario"
	"contention/internal/serve"
)

// pacer yields the next arrival's offset from run start. ok is false
// when the schedule is exhausted (a uniform pacer never exhausts).
type pacer interface {
	next() (offset time.Duration, ok bool)
}

// uniformPacer reproduces the legacy fixed-rate ticker schedule:
// arrival k (1-based) fires at k·interval, with the interval clamped to
// 1ns exactly as the ticker construction always clamped it.
type uniformPacer struct {
	interval time.Duration
	k        int64
}

func newUniformPacer(rate float64) *uniformPacer {
	interval := time.Duration(float64(time.Second) / rate)
	if interval <= 0 {
		interval = time.Nanosecond
	}
	return &uniformPacer{interval: interval}
}

func (p *uniformPacer) next() (time.Duration, bool) {
	p.k++
	return time.Duration(p.k) * p.interval, true
}

// schedulePacer replays a fixed offset schedule (a scenario realization
// or a recorded trace).
type schedulePacer struct {
	offsets []time.Duration
	i       int
}

func (p *schedulePacer) next() (time.Duration, bool) {
	if p.i >= len(p.offsets) {
		return 0, false
	}
	off := p.offsets[p.i]
	p.i++
	return off, true
}

// paceLoop fires arrive(seq) at each pacer offset, synchronously and in
// order, until the schedule is exhausted or the next arrival would land
// past deadline d. A loop that falls behind wall clock issues late
// instead of dropping — open-loop arrivals never slow down, they pile
// up.
func paceLoop(p pacer, d time.Duration, arrive func(seq int)) {
	start := time.Now()
	for seq := 0; ; seq++ {
		off, ok := p.next()
		if !ok || off > d {
			return
		}
		if wait := time.Until(start.Add(off)); wait > 0 {
			time.Sleep(wait)
		}
		arrive(seq)
	}
}

// openSeed is the legacy open-loop corpus rng seed; the draw stream it
// starts is pinned byte-identical by TestOpenLoopDrawOrderUnchanged.
const openSeed = 77

// overloadFmt is the open-loop drop diagnostic, pinned by test so
// dashboards grepping for it keep matching.
const overloadFmt = "open-loop overload: %d requests in flight"

// openLoop is the legacy -rate open loop: one corpus index drawn per
// arrival from the openSeed stream, handed to issue in arrival order.
// Returns the arrival count.
func openLoop(p pacer, d time.Duration, nBodies int, issue func(idx int)) int {
	lrng := rand.New(rand.NewSource(openSeed))
	n := 0
	paceLoop(p, d, func(int) {
		issue(lrng.Intn(nBodies))
		n++
	})
	return n
}

// postOnce issues one request body and decodes the outcome. Non-200
// responses report only the status (the body is the JSON error
// envelope regardless of request format); transport failures return
// status 0.
func postOnce(client *http.Client, url, contentType, traceHdr string, body []byte) (int, serve.Response, time.Duration, error) {
	t0 := time.Now()
	var resp *http.Response
	var err error
	if traceHdr != "" {
		req, rerr := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
		if rerr != nil {
			return 0, serve.Response{}, 0, rerr
		}
		req.Header.Set("Content-Type", contentType)
		req.Header.Set(serve.TraceHeader, traceHdr)
		resp, err = client.Do(req)
	} else {
		resp, err = client.Post(url, contentType, bytes.NewReader(body))
	}
	lat := time.Since(t0)
	if err != nil {
		return 0, serve.Response{}, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, serve.Response{}, lat, nil
	}
	var out serve.Response
	if contentType == serve.ContentTypeBinary {
		raw, rerr := io.ReadAll(resp.Body)
		if rerr != nil {
			return resp.StatusCode, serve.Response{}, lat, rerr
		}
		if out, rerr = serve.DecodeBinaryResponse(raw); rerr != nil {
			return resp.StatusCode, serve.Response{}, lat, rerr
		}
	} else if derr := json.NewDecoder(resp.Body).Decode(&out); derr != nil {
		return resp.StatusCode, serve.Response{}, lat, derr
	}
	return resp.StatusCode, out, lat, nil
}

// playItem is one scheduled request of a scenario or replayed trace.
type playItem struct {
	offset time.Duration
	cohort string
	body   []byte
}

// runSchedule drives plays open-loop at their offsets. Unlike the
// legacy open loop, nothing is dropped: the in-flight cap (4·conc)
// back-pressures the pacer instead, because a record or replay run must
// deliver every request. Per-play statuses and responses come back in
// schedule order.
func runSchedule(client *http.Client, url, contentType string, plays []playItem, conc int) (*result, []int, []serve.Response) {
	res := &result{}
	statuses := make([]int, len(plays))
	outs := make([]serve.Response, len(plays))
	var mu sync.Mutex
	var wg sync.WaitGroup
	sem := make(chan struct{}, 4*conc)
	offsets := make([]time.Duration, len(plays))
	for i, p := range plays {
		offsets[i] = p.offset
	}
	start := time.Now()
	// No deadline: the schedule's own horizon bounds the run.
	paceLoop(&schedulePacer{offsets: offsets}, 1<<62, func(seq int) {
		sem <- struct{}{}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			status, out, lat, err := postOnce(client, url, contentType, "", plays[seq].body)
			statuses[seq], outs[seq] = status, out
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				res.errors++
				if res.firstErr == "" {
					res.firstErr = err.Error()
				}
				return
			}
			res.latencies = append(res.latencies, float64(lat)/float64(time.Millisecond))
			if out.Batch > 1 {
				res.batched.Add(1)
			}
			if out.Fast {
				res.fast.Add(1)
			}
		}()
	})
	wg.Wait()
	res.elapsed = time.Since(start)
	return res, statuses, outs
}

// verifyReplay holds a replayed run against its recorded trace: every
// status must match exactly, and every 200 value must match bit-for-bit
// — except where the fast-path verdict flipped between record and
// replay (admission timing), where the surface-vs-DP answers may differ
// by the surface's interpolation tolerance. Returns the mismatch count.
func verifyReplay(recs []scenario.Record, statuses []int, outs []serve.Response) int {
	mismatches := 0
	complain := func(i int, format string, args ...any) {
		mismatches++
		scenario.CountReplayMismatch()
		if mismatches <= 10 {
			fmt.Fprintf(os.Stderr, "replay mismatch at record %d (%s): %s\n",
				i, recs[i].Cohort, fmt.Sprintf(format, args...))
		}
	}
	for i, r := range recs {
		if !r.HasResp {
			continue
		}
		if statuses[i] != r.Status {
			complain(i, "status %d, recorded %d", statuses[i], r.Status)
			continue
		}
		if r.Status != http.StatusOK {
			continue
		}
		got, want := outs[i], r.Resp
		if got.Fast == want.Fast {
			if math.Float64bits(got.Value) != math.Float64bits(want.Value) || got.Degraded != want.Degraded {
				complain(i, "value %x (degraded=%v), recorded %x (degraded=%v)",
					math.Float64bits(got.Value), got.Degraded, math.Float64bits(want.Value), want.Degraded)
			}
			continue
		}
		// Fast verdict flipped: surface interpolation vs exact DP.
		if rel := math.Abs(got.Value-want.Value) / math.Max(math.Abs(want.Value), 1e-12); rel > 1e-3 {
			complain(i, "fast-flip value %v vs recorded %v (rel %.2g > 1e-3)", got.Value, want.Value, rel)
		}
	}
	return mismatches
}
