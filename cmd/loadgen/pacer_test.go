package main

import (
	"math/rand"
	"testing"
	"time"
)

// TestUniformPacerMatchesLegacyTicker pins the shared pacer to the
// pre-refactor open-loop schedule: the legacy code built a ticker with
// interval time.Duration(float64(time.Second)/rate) clamped to 1ns, so
// arrival k (1-based) fires at k·interval. Any drift here changes
// legacy -rate output.
func TestUniformPacerMatchesLegacyTicker(t *testing.T) {
	for _, rate := range []float64{1, 3, 1000, 2000, 333.33, 1e12} {
		legacyInterval := time.Duration(float64(time.Second) / rate)
		if legacyInterval <= 0 {
			legacyInterval = time.Nanosecond
		}
		p := newUniformPacer(rate)
		if p.interval != legacyInterval {
			t.Fatalf("rate %g: interval %v, legacy ticker used %v", rate, p.interval, legacyInterval)
		}
		for k := int64(1); k <= 5; k++ {
			off, ok := p.next()
			if !ok || off != time.Duration(k)*legacyInterval {
				t.Fatalf("rate %g arrival %d: offset %v ok=%v, want %v", rate, k, off, ok, time.Duration(k)*legacyInterval)
			}
		}
	}
}

// TestOpenLoopDrawOrderUnchanged pins the legacy corpus draw stream:
// seed 77, one Intn(nBodies) per arrival, in arrival order. The indices
// handed to issue must be byte-identical to the pre-refactor loop's.
func TestOpenLoopDrawOrderUnchanged(t *testing.T) {
	const nBodies = 512
	want := rand.New(rand.NewSource(77))
	var got []int
	// A schedule of 40 zero offsets fires 40 immediate arrivals.
	n := openLoop(&schedulePacer{offsets: make([]time.Duration, 40)}, time.Second, nBodies, func(idx int) {
		got = append(got, idx)
	})
	if n != 40 || len(got) != 40 {
		t.Fatalf("openLoop fired %d arrivals (%d recorded), want 40", n, len(got))
	}
	for i, idx := range got {
		if w := want.Intn(nBodies); idx != w {
			t.Fatalf("arrival %d drew corpus index %d, legacy stream yields %d", i, idx, w)
		}
	}
}

// TestOverloadMessageUnchanged pins the drop diagnostic string format
// verbatim — dashboards and log greps match on it.
func TestOverloadMessageUnchanged(t *testing.T) {
	if overloadFmt != "open-loop overload: %d requests in flight" {
		t.Fatalf("overloadFmt changed: %q", overloadFmt)
	}
	if openSeed != 77 {
		t.Fatalf("openSeed changed: %d", openSeed)
	}
}

// TestPaceLoopOrderAndDeadline pins paceLoop semantics: arrivals fire
// synchronously in schedule order, the loop stops at schedule
// exhaustion, and an offset past the deadline ends the run without
// firing.
func TestPaceLoopOrderAndDeadline(t *testing.T) {
	offsets := []time.Duration{0, time.Microsecond, 2 * time.Microsecond, time.Hour}
	var seqs []int
	paceLoop(&schedulePacer{offsets: offsets}, time.Second, func(seq int) {
		seqs = append(seqs, seq)
	})
	if len(seqs) != 3 {
		t.Fatalf("fired %d arrivals, want 3 (the time.Hour offset is past deadline)", len(seqs))
	}
	for i, s := range seqs {
		if s != i {
			t.Fatalf("arrival order %v not sequential", seqs)
		}
	}
	// Exhaustion without a deadline hit.
	fired := 0
	paceLoop(&schedulePacer{offsets: make([]time.Duration, 7)}, time.Second, func(int) { fired++ })
	if fired != 7 {
		t.Fatalf("fired %d, want 7 on schedule exhaustion", fired)
	}
}

// TestBenchSafe pins scenario-name sanitization for benchmark names.
func TestBenchSafe(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"mixed", "mixed"},
		{"flash-crowd_2", "flash-crowd_2"},
		{"a=constant(rate=1)", "aconstantrate1"},
		{"===", "custom"},
		{"", "custom"},
		{"aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa", "aaaaaaaaaaaaaaaaaaaaaaaa"},
	} {
		if got := benchSafe(tc.in); got != tc.want {
			t.Errorf("benchSafe(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}
