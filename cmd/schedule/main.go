// Command schedule ranks task-to-machine allocations for a
// chain-structured heterogeneous application under contention-adjusted
// costs — the paper's motivating use of the slowdown model.
//
// With -example it runs the paper's §1 problem (Tables 1–4). Otherwise
// it reads a JSON problem description from stdin:
//
//	{
//	  "tasks": ["A", "B"],
//	  "machines": ["M1", "M2"],
//	  "exec": {"A": {"M1": 12, "M2": 18}, "B": {"M1": 4, "M2": 30}},
//	  "edges": [{"from": "A", "to": "B",
//	             "cost": {"M1>M2": 7, "M2>M1": 8}}]
//	}
//
// Flags apply slowdown factors before ranking:
//
//	schedule -example -exec-machine M1 -exec-slowdown 3 -comm-slowdown 3
package main

import (
	"flag"
	"fmt"
	"os"

	"contention/internal/sched"
)

func main() {
	example := flag.Bool("example", false, "use the paper's Tables 1–2 problem")
	execMachine := flag.String("exec-machine", "", "machine whose execution costs are slowed")
	execSlowdown := flag.Float64("exec-slowdown", 1, "execution slowdown factor for -exec-machine")
	commSlowdown := flag.Float64("comm-slowdown", 1, "communication slowdown factor for all transfers")
	top := flag.Int("top", 0, "print only the best N allocations (0 = all)")
	flag.Parse()
	defer exitOnPanic()
	if *execSlowdown <= 0 || *commSlowdown <= 0 {
		fmt.Fprintf(os.Stderr, "slowdown factors must be positive (exec %v, comm %v)\n", *execSlowdown, *commSlowdown)
		os.Exit(2)
	}
	if *top < 0 {
		fmt.Fprintf(os.Stderr, "-top %d must be non-negative\n", *top)
		os.Exit(2)
	}

	var p sched.Problem
	if *example {
		p = sched.PaperExample()
	} else {
		var err error
		p, err = sched.ParseJSON(os.Stdin)
		if err != nil {
			fmt.Fprintln(os.Stderr, "reading problem from stdin:", err)
			os.Exit(1)
		}
	}

	if *execMachine != "" && *execSlowdown != 1 {
		p = p.ScaleExec(sched.Machine(*execMachine), *execSlowdown)
	}
	if *commSlowdown != 1 {
		p = p.ScaleComm(*commSlowdown)
	}

	ranked, err := p.Rank()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ranking failed:", err)
		os.Exit(1)
	}
	n := len(ranked)
	if *top > 0 && *top < n {
		n = *top
	}
	for i := 0; i < n; i++ {
		fmt.Printf("%2d. %-30s makespan %.4g\n", i+1, ranked[i].Assignment, ranked[i].Makespan)
	}
}

// exitOnPanic turns a stray panic from the internal packages into a
// clean error exit instead of a crash dump — user input must never
// produce a stack trace.
func exitOnPanic() {
	if r := recover(); r != nil {
		fmt.Fprintln(os.Stderr, "fatal:", r)
		os.Exit(1)
	}
}
