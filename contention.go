// Package contention is a Go implementation of the contention model of
// Figueira & Berman, "Modeling the Effects of Contention on the
// Performance of Heterogeneous Applications" (HPDC 1996), together with
// everything needed to reproduce the paper: simulated Sun/CM2 and
// Sun/Paragon platforms, the calibration suite, contention-generating
// workloads, an allocation scheduler, and drivers for every table and
// figure of the evaluation.
//
// The model predicts how contention — extra applications computing on a
// time-shared front-end or communicating over a shared link — inflates
// the computation and communication costs of an application on a
// two-machine coupled heterogeneous platform:
//
//   - Dedicated communication cost is a piecewise-linear function of
//     message size: per data set, N × (α + size/β), with (α, β) from
//     one of two pieces split at a threshold (1024 words on the
//     Sun/Paragon).
//   - On a tightly coupled host/SIMD pair (Sun/CM2), all contention is
//     CPU contention and slowdown = p+1; back-end programs follow
//     T = max(dcomp + didle, dserial × slowdown).
//   - On an independent host/MPP pair (Sun/Paragon), slowdown is a
//     probabilistic mixture over the workload: Poisson-binomial
//     probabilities that exactly i contenders compute (pcomp_i) or
//     communicate (pcomm_i) weight measured delay tables.
//
// This root package is a façade: it re-exports the public surface of
// the internal packages so downstream users need a single import.
//
//	cal, _ := contention.Calibrate(contention.DefaultCalibrationOptions(
//	    contention.DefaultParagonParams(contention.OneHop)))
//	pred, _ := contention.NewPredictor(cal)
//	cost, _ := pred.PredictComm(contention.HostToBack,
//	    []contention.DataSet{{N: 1000, Words: 200}},
//	    []contention.Contender{{CommFraction: 0.25, MsgWords: 200}})
package contention

import (
	"fmt"
	"io"
	"math"

	"contention/internal/caltrust"
	"contention/internal/core"
)

// Model types (the paper's contribution; see internal/core).
type (
	// DataSet is a group of N same-sized messages of Words words each.
	DataSet = core.DataSet
	// CommPiece is one linear piece of the communication-cost model.
	CommPiece = core.CommPiece
	// CommModel is the piecewise-linear dedicated communication model.
	CommModel = core.CommModel
	// Contender describes one extra application sharing the front-end.
	Contender = core.Contender
	// DelayTables holds the calibrated system-dependent delay terms.
	DelayTables = core.DelayTables
	// Calibration bundles per-direction comm models and delay tables.
	Calibration = core.Calibration
	// Predictor produces slowdown-adjusted cost predictions.
	Predictor = core.Predictor
	// System tracks a contender set with incremental probability updates.
	System = core.System
	// Direction names a transfer direction across the platform link.
	Direction = core.Direction
)

// Transfer directions.
const (
	// HostToBack is front-end → back-end (the paper's Sun→CM2/Paragon).
	HostToBack = core.HostToBack
	// BackToHost is back-end → front-end.
	BackToHost = core.BackToHost
)

// Uniform returns a single-piece communication model.
func Uniform(alpha, beta float64) CommModel { return core.Uniform(alpha, beta) }

// NewPredictor validates a calibration and returns a predictor.
func NewPredictor(cal Calibration) (*Predictor, error) { return core.NewPredictor(cal) }

// NewSystem returns an empty run-time contender set over delay tables.
func NewSystem(tables DelayTables) (*System, error) { return core.NewSystem(tables) }

// SimpleSlowdown is the CM2-platform slowdown p+1 for p extra CPU-bound
// processes on a fair-shared CPU. Unlike the internal helper it rejects
// a negative p with an error instead of panicking.
func SimpleSlowdown(p int) (float64, error) {
	if p < 0 {
		return 0, fmt.Errorf("contention: negative contender count %d", p)
	}
	return core.SimpleSlowdown(p), nil
}

// CommSlowdown is the Sun/Paragon communication slowdown:
// 1 + Σ pcomp_i·delay^i_comp + Σ pcomm_i·delay^i_comm.
func CommSlowdown(cs []Contender, t DelayTables) (float64, error) {
	return core.CommSlowdown(cs, t)
}

// CompSlowdown is the Sun/Paragon computation slowdown:
// 1 + Σ pcomp_i·i + Σ pcomm_i·delay^{i,j}_comm, with j the maximum
// contender message size.
func CompSlowdown(cs []Contender, t DelayTables) (float64, error) {
	return core.CompSlowdown(cs, t)
}

// CompSlowdownWithJ is CompSlowdown with an explicit j column.
func CompSlowdownWithJ(cs []Contender, t DelayTables, j int) (float64, error) {
	return core.CompSlowdownWithJ(cs, t, j)
}

// CM2ExecTime is the back-end execution law
// max(dcomp+didle, dserial×(p+1)). Invalid inputs (negative times or
// contender count, NaN) return an error instead of panicking.
func CM2ExecTime(dcomp, didle, dserial float64, p int) (float64, error) {
	if p < 0 {
		return 0, fmt.Errorf("contention: negative contender count %d", p)
	}
	for _, v := range [...]float64{dcomp, didle, dserial} {
		if v < 0 || math.IsNaN(v) {
			return 0, fmt.Errorf("contention: invalid CM2 time component %v", v)
		}
	}
	return core.CM2ExecTime(dcomp, didle, dserial, p), nil
}

// CM2CommTime scales a dedicated CM2 transfer cost by the CPU slowdown.
// Invalid inputs return an error instead of panicking.
func CM2CommTime(dcomm float64, p int) (float64, error) {
	if p < 0 {
		return 0, fmt.Errorf("contention: negative contender count %d", p)
	}
	if dcomm < 0 || math.IsNaN(dcomm) {
		return 0, fmt.Errorf("contention: invalid dedicated comm cost %v", dcomm)
	}
	return core.CM2CommTime(dcomm, p), nil
}

// ShouldOffload is the paper's Equation (1): offload a task to the
// back-end only when tHost > tBack + cTo + cFrom.
func ShouldOffload(tHost, tBack, cTo, cFrom float64) bool {
	return core.ShouldOffload(tHost, tBack, cTo, cFrom)
}

// --- §4 extensions ---------------------------------------------------------

// MemoryModel describes front-end memory for the paging extension.
type MemoryModel = core.MemoryModel

// MemorySlowdown returns the paging factor for an application sharing
// the host with the given contender working sets.
func MemorySlowdown(m MemoryModel, appPages int, contenderPages []int) (float64, error) {
	return core.MemorySlowdown(m, appPages, contenderPages)
}

// CompSlowdownWithMemory combines the contention mixture with the
// paging factor.
func CompSlowdownWithMemory(cs []Contender, t DelayTables, m MemoryModel, appPages int, contenderPages []int) (float64, error) {
	return core.CompSlowdownWithMemory(cs, t, m, appPages, contenderPages)
}

// Phase is one interval of a piecewise-constant contender timeline.
type Phase = core.Phase

// PredictCompPhased predicts a computation's elapsed time under a
// dynamic job mix, re-evaluating the slowdown at every phase change.
func PredictCompPhased(dcomp float64, phases []Phase, t DelayTables) (float64, error) {
	return core.PredictCompPhased(dcomp, phases, t)
}

// PredictCommPhased is the communication analogue of PredictCompPhased.
func PredictCommPhased(dcomm float64, phases []Phase, t DelayTables) (float64, error) {
	return core.PredictCommPhased(dcomm, phases, t)
}

// LinkID identifies one front-end↔back-end link of a multi-machine
// platform.
type LinkID = core.LinkID

// MultiContender tags a contender with the link it communicates over.
type MultiContender = core.MultiContender

// CommSlowdownMulti is the per-link communication slowdown of the
// more-than-two-machines generalization.
func CommSlowdownMulti(target LinkID, cs []MultiContender, t DelayTables) (float64, error) {
	return core.CommSlowdownMulti(target, cs, t)
}

// CompSlowdownMulti is the computation slowdown on a multi-link
// front-end (link tags are irrelevant for computation).
func CompSlowdownMulti(cs []MultiContender, t DelayTables) (float64, error) {
	return core.CompSlowdownMulti(cs, t)
}

// PredictCommMulti scales a dedicated cost on the target link by the
// multi-machine slowdown.
func PredictCommMulti(dcomm float64, target LinkID, cs []MultiContender, t DelayTables) (float64, error) {
	return core.PredictCommMulti(dcomm, target, cs, t)
}

// LoadCalibration reads a calibration previously written with
// Calibration.Save and validates it — letting a scheduler start from a
// stored calibration instead of re-running the test suite.
func LoadCalibration(r io.Reader) (Calibration, error) { return core.LoadCalibration(r) }

// SaveCalibrationFile persists the calibration to path atomically as a
// schema-versioned, checksummed envelope (see internal/caltrust). The
// note is free-form provenance stored alongside the payload.
func SaveCalibrationFile(path string, cal Calibration, note string) error {
	return caltrust.WriteFile(path, cal, caltrust.Meta{Note: note})
}

// LoadCalibrationFile reads a calibration written by SaveCalibrationFile
// (or legacy raw `calibrate -json` output), rejecting corrupt,
// truncated, or incompatibly-versioned files with a descriptive error.
func LoadCalibrationFile(path string) (Calibration, error) {
	cal, _, err := caltrust.ReadFile(path)
	return cal, err
}

// CheckCalibration runs the trust layer's strict invariant validation —
// delay tables monotone in contender count, comm-model pieces
// consistent at the breakpoint — beyond the structural checks of
// Calibration.Validate. The returned error (nil when clean) is a
// *ValidationReport listing every violation with its parameter path.
func CheckCalibration(cal Calibration) error {
	return caltrust.Validate(cal, caltrust.DefaultCheckConfig()).Err()
}

// ValidationReport is the structured multi-violation error produced by
// CheckCalibration (recover it with errors.As).
type ValidationReport = core.ValidationReport
