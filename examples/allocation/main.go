// Allocation: the paper's motivating example (§1, Tables 1–4) end to
// end. A two-task application must be mapped onto a two-machine
// heterogeneous platform; contention changes which mapping is best, and
// the slowdown model is what lets the scheduler see that in advance.
package main

import (
	"fmt"
	"log"

	"contention"
)

func report(header string, p contention.Problem) contention.Ranked {
	ranked, err := p.Rank()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(header)
	for i, r := range ranked {
		marker := "  "
		if i == 0 {
			marker = "→ "
		}
		fmt.Printf("  %s%-14s makespan %g\n", marker, r.Assignment, r.Makespan)
	}
	fmt.Println()
	return ranked[0]
}

func main() {
	// Tables 1–2: the dedicated platform.
	p := contention.PaperExample()
	best := report("Dedicated (Tables 1-2): both tasks belong on M1.", p)
	if best.Makespan != 16 {
		log.Fatalf("expected the paper's 16-unit dedicated makespan, got %g", best.Makespan)
	}

	// Table 3: two CPU-bound applications arrive on M1. The fair-share
	// CPU gives slowdown p+1 = 3 for everything M1 computes.
	slowdown, err := contention.SimpleSlowdown(2)
	if err != nil {
		log.Fatal(err)
	}
	p3 := p.ScaleExec("M1", slowdown)
	best = report(fmt.Sprintf("M1 compute slowed ×%g (Table 3): offload A to M2.", slowdown), p3)
	if best.Makespan != 38 {
		log.Fatalf("expected the paper's 38-unit makespan, got %g", best.Makespan)
	}

	// Table 4: the contenders also transfer data to M2, so the link
	// slows by the same factor — and the offload stops paying off.
	p4 := p3.ScaleComm(slowdown)
	best = report("Compute AND comm slowed ×3 (Table 4): keep both on M1.", p4)
	if best.Makespan != 48 {
		log.Fatalf("expected the paper's 48-unit makespan, got %g", best.Makespan)
	}

	// The offload rule (Equation 1) on the same numbers: offload task A
	// only when tHost > tBack + transfer costs.
	tHost, tBack := 36.0, 18.0
	fmt.Printf("Equation (1) for task A, comm dedicated (7+8):   offload? %v\n",
		contention.ShouldOffload(tHost, tBack, 7, 8))
	fmt.Printf("Equation (1) for task A, comm slowed ×3 (21+24): offload? %v\n",
		contention.ShouldOffload(tHost, tBack, 21, 24))
}
