// Closed loop: the full pipeline a contention-aware scheduler runs.
// A load monitor observes the platform and estimates the contender set
// (no user-supplied descriptors); the model turns the estimate into
// computation and communication slowdown factors; the allocation
// problem is adjusted and re-ranked — reproducing the paper's Tables
// 1–4 flip from live observations instead of known workloads.
package main

import (
	"fmt"
	"log"

	"contention"
)

func main() {
	// Calibrate once (static per platform).
	params := contention.DefaultParagonParams(contention.OneHop)
	cal, err := contention.Calibrate(contention.DefaultCalibrationOptions(params))
	if err != nil {
		log.Fatal(err)
	}

	// A loaded platform: two contenders the scheduler knows nothing
	// about — one CPU-bound, one communicating.
	k := contention.NewKernel()
	sp, err := contention.NewSunParagon(k, params)
	if err != nil {
		log.Fatal(err)
	}
	contention.SpawnCPUHog(sp, "mystery-hog")
	if _, err := contention.SpawnAlternator(sp, contention.AlternatorSpec{
		Name: "mystery-comm", CommFraction: 0.5, MsgWords: 400, Period: 0.1,
	}); err != nil {
		log.Fatal(err)
	}

	// Observe for 30 virtual seconds.
	mon, err := contention.NewMonitor(sp, 0.05, 10000)
	if err != nil {
		log.Fatal(err)
	}
	mon.Start()
	k.RunUntil(30)
	est, err := mon.EstimateWindow(30)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("observed: host %.0f%% busy, link %.0f%% busy, ≈%d applications, msgs ≈%d words\n",
		est.HostUtilization*100, est.LinkUtilization*100, est.Apps, est.MeanMsgWords)

	// Estimate → slowdown factors.
	cs := est.Contenders(0)
	comp, err := contention.CompSlowdown(cs, cal.Tables)
	if err != nil {
		log.Fatal(err)
	}
	comm, err := contention.CommSlowdown(cs, cal.Tables)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("estimated slowdowns: computation %.2f, communication %.2f\n\n", comp, comm)

	// Slowdowns → allocation decision for the paper's A/B application.
	problem := contention.PaperExample()
	dedicated, err := problem.Best()
	if err != nil {
		log.Fatal(err)
	}
	adjusted, err := problem.AdjustForLoad(map[contention.Machine]contention.Load{
		"M1": {Comp: comp, Comm: comm},
	})
	if err != nil {
		log.Fatal(err)
	}
	loaded, err := adjusted.Best()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dedicated plan:  %s (makespan %.0f)\n", dedicated.Assignment, dedicated.Makespan)
	fmt.Printf("load-aware plan: %s (makespan %.1f)\n", loaded.Assignment, loaded.Makespan)
	if loaded.Assignment.String() != dedicated.Assignment.String() {
		fmt.Println("→ the observed contention flipped the allocation, as in the paper's §1 example")
	} else {
		fmt.Println("→ the observed contention did not change the allocation")
	}
}
