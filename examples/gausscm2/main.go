// Gaussian elimination on the CM2 — the paper's Figure 3 scenario. The
// example solves a real system with the Gaussian-elimination kernel,
// then runs its CM2 profile on the simulated Sun/CM2 platform with and
// without CPU-bound contenders and compares the measured times against
// the execution law T = max(dcomp + didle, dserial × (p+1)).
package main

import (
	"fmt"
	"log"
	"math"

	"contention"
)

func run(m, hogs int) (elapsed, busy, idle float64) {
	k := contention.NewKernel()
	plat, err := contention.NewSunCM2(k, contention.DefaultCM2Params())
	if err != nil {
		log.Fatal(err)
	}
	plat.SpawnCPUHogs(hogs)
	prog := contention.GaussCM2Program(m)
	k.Spawn("gauss", func(p *contention.Proc) {
		elapsed, busy, idle = contention.RunCM2(p, plat, prog)
		k.Stop()
	})
	k.Run()
	return elapsed, busy, idle
}

func main() {
	// The real kernel first: solve a 12×12 system.
	a, b := contention.MakeDiagonallyDominant(12)
	x, err := contention.GaussSolve(a, b)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Gaussian elimination solved a 12×12 system: x[0]=%.3f … x[11]=%.3f\n\n", x[0], x[11])

	fmt.Println("Gaussian elimination on the simulated Sun/CM2 (p = 3 CPU-bound contenders):")
	fmt.Printf("%6s  %12s  %12s  %12s  %9s\n", "M", "dedicated", "model p=3", "actual p=3", "err")
	for _, m := range []int{50, 100, 150, 200, 300, 400} {
		prog := contention.GaussCM2Program(m)
		dedicated, busy, idle := run(m, 0)
		model, err := contention.CM2ExecTime(busy, idle, prog.TotalSerial(), 3)
		if err != nil {
			log.Fatal(err)
		}
		actual, _, _ := run(m, 3)
		errPct := 100 * math.Abs(model-actual) / actual
		fmt.Printf("%6d  %12.4f  %12.4f  %12.4f  %8.1f%%\n", m, dedicated, model, actual, errPct)
	}
	fmt.Println("\nbelow M ≈ 200 the serial part × (p+1) dominates (contention hurts);")
	fmt.Println("above it the CM2 is the bottleneck and the contenders stop mattering,")
	fmt.Println("matching the paper's Figure 3 crossover")
}
