// Multi-machine: the paper's "generalization of these results to more
// than two machines is straightforward" made concrete. One front-end
// drives two back-end machines over separate links; the per-link
// slowdown distinguishes a contender on the target link (CPU + wire)
// from one on another link (CPU only), and a dynamic job-mix timeline
// is predicted with the phased model.
package main

import (
	"fmt"
	"log"
	"math"

	"contention"
)

func main() {
	params := contention.DefaultParagonParams(contention.OneHop)
	cal, err := contention.Calibrate(contention.DefaultCalibrationOptions(params))
	if err != nil {
		log.Fatal(err)
	}

	a := contention.Contender{CommFraction: 0.76, MsgWords: 200}
	b := contention.Contender{CommFraction: 0.66, MsgWords: 800}

	// Per-link slowdowns for a transfer on link 0 under two placements.
	split, err := contention.CommSlowdownMulti(0, []contention.MultiContender{
		{Contender: a, Link: 0}, {Contender: b, Link: 1},
	}, cal.Tables)
	if err != nil {
		log.Fatal(err)
	}
	same, err := contention.CommSlowdownMulti(0, []contention.MultiContender{
		{Contender: a, Link: 0}, {Contender: b, Link: 0},
	}, cal.Tables)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("slowdown on link 0: contenders split across links %.3f, both on link 0 %.3f\n",
		split, same)

	// Verify against the simulated three-machine platform: a 1000×512w
	// burst on link 0 with the contenders split.
	k := contention.NewKernel()
	legs, err := contention.NewSunMultiParagon(k, params, 2)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := contention.SpawnAlternator(legs[0], contention.AlternatorSpec{
		Name: "contA", CommFraction: 0.76, MsgWords: 200, Period: 0.1, Phase: 0.017,
	}); err != nil {
		log.Fatal(err)
	}
	if _, err := contention.SpawnAlternator(legs[1], contention.AlternatorSpec{
		Name: "contB", CommFraction: 0.66, MsgWords: 800, Period: 0.1, Phase: 0.031,
	}); err != nil {
		log.Fatal(err)
	}
	contention.SpawnPingEcho(legs[0], "bench")
	actual := -1.0
	k.Spawn("bench", func(p *contention.Proc) {
		p.Delay(0.5)
		var err error
		actual, err = contention.PingPongBurst(p, legs[0], "bench", 1000, 512)
		if err != nil {
			log.Fatal(err)
		}
		k.Stop()
	})
	k.Run()

	pred, err := contention.NewPredictor(cal)
	if err != nil {
		log.Fatal(err)
	}
	dcomm, err := pred.DedicatedComm(contention.HostToBack,
		[]contention.DataSet{{N: 1000, Words: 512}})
	if err != nil {
		log.Fatal(err)
	}
	predicted := dcomm * split
	fmt.Printf("burst on link 0: predicted %.3fs, actual (simulated) %.3fs, error %.1f%%\n",
		predicted, actual, 100*math.Abs(predicted-actual)/actual)

	// Phased prediction across a job-mix change: contender B migrates
	// from link 1 to link 0 halfway through a long transfer.
	phases := []contention.Phase{
		{Duration: 5, Contenders: []contention.Contender{a}}, // B elsewhere: CPU-only effect folded into calibration error
		{Contenders: []contention.Contender{a, b}},           // B joins link 0
	}
	phased, err := contention.PredictCommPhased(dcomm*3, phases, cal.Tables)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phased prediction for a 3× longer transfer across the mix change: %.3fs\n", phased)
}
