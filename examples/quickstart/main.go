// Quickstart: calibrate the simulated Sun/Paragon platform once, then
// predict the cost of a communication burst under contention and check
// the prediction against an actual (simulated) run — the core loop a
// contention-aware scheduler performs.
package main

import (
	"fmt"
	"log"
	"math"

	"contention"
)

func main() {
	// 1. Calibrate the platform (static, once per platform): piecewise
	// α/β per direction plus the delay tables.
	params := contention.DefaultParagonParams(contention.OneHop)
	cal, err := contention.Calibrate(contention.DefaultCalibrationOptions(params))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("calibrated %s: threshold %d words, α=%.4gs β=%.4g words/s\n",
		cal.Platform, cal.ToBack.Threshold, cal.ToBack.Small.Alpha, cal.ToBack.Small.Beta)

	// 2. Describe the current workload: two extra applications on the
	// front-end, communicating 25% and 76% of the time with 200-word
	// messages (the paper's Figure 5 scenario).
	contenders := []contention.Contender{
		{CommFraction: 0.25, MsgWords: 200},
		{CommFraction: 0.76, MsgWords: 200},
	}

	// 3. Predict: dedicated cost × slowdown factor.
	pred, err := contention.NewPredictor(cal)
	if err != nil {
		log.Fatal(err)
	}
	sets := []contention.DataSet{{N: 1000, Words: 512}}
	dedicated, err := pred.DedicatedComm(contention.HostToBack, sets)
	if err != nil {
		log.Fatal(err)
	}
	predicted, err := pred.PredictComm(contention.HostToBack, sets, contenders)
	if err != nil {
		log.Fatal(err)
	}
	slowdown, err := contention.CommSlowdown(contenders, cal.Tables)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dedicated dcomm = %.3fs, slowdown = %.3f, predicted = %.3fs\n",
		dedicated, slowdown, predicted)

	// 4. Verify against an actual run on the simulated platform with
	// the same contenders emulated.
	k := contention.NewKernel()
	sp, err := contention.NewSunParagon(k, params)
	if err != nil {
		log.Fatal(err)
	}
	specs := []contention.AlternatorSpec{
		{Name: "alt25", CommFraction: 0.25, MsgWords: 200, Period: 0.1, Phase: 0.017, Direction: contention.SunToParagon},
		{Name: "alt76", CommFraction: 0.76, MsgWords: 200, Period: 0.1, Phase: 0.031, Direction: contention.SunToParagon},
	}
	for _, s := range specs {
		if _, err := contention.SpawnAlternator(sp, s); err != nil {
			log.Fatal(err)
		}
	}
	contention.SpawnPingEcho(sp, "bench")
	actual := -1.0
	k.Spawn("bench", func(p *contention.Proc) {
		p.Delay(0.5) // let contenders reach steady state
		var err error
		actual, err = contention.PingPongBurst(p, sp, "bench", 1000, 512)
		if err != nil {
			log.Fatal(err)
		}
		k.Stop()
	})
	k.Run()

	errPct := 100 * math.Abs(predicted-actual) / actual
	fmt.Printf("actual (simulated) = %.3fs, model error = %.1f%%\n", actual, errPct)
	fmt.Println("the paper reports ≈12% average error for this experiment")
}
