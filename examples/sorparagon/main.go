// SOR on the Sun under communicating contenders — the paper's Figure
// 7/8 scenario. The example first runs the real SOR kernel to show the
// numerics, then predicts its contended execution time with the
// computation-slowdown model, sweeping the j column to show why the
// contenders' message size must be taken into account.
package main

import (
	"fmt"
	"log"
	"math"

	"contention"
)

func main() {
	// The real kernel: solve Laplace's equation on a 33×33 grid.
	grid, err := contention.MakeLaplaceGrid(33)
	if err != nil {
		log.Fatal(err)
	}
	res, err := contention.SORSolve(grid, 1.5, 800)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SOR solved a 33×33 Laplace problem: residual %.2e, center value %.3f\n\n",
		res, grid[16][16])

	// Calibrate the platform once.
	params := contention.DefaultParagonParams(contention.OneHop)
	cal, err := contention.Calibrate(contention.DefaultCalibrationOptions(params))
	if err != nil {
		log.Fatal(err)
	}

	// The Figure 7 workload: contenders communicating 66% of the time
	// with 800-word messages and 33% with 1200-word messages.
	contenders := []contention.Contender{
		{CommFraction: 0.66, MsgWords: 800},
		{CommFraction: 0.33, MsgWords: 1200},
	}
	specs := []contention.AlternatorSpec{
		{Name: "alt66", CommFraction: 0.66, MsgWords: 800, Period: 0.1, Phase: 0.017, Direction: contention.SunToParagon},
		{Name: "alt33", CommFraction: 0.33, MsgWords: 1200, Period: 0.1, Phase: 0.031, Direction: contention.ParagonToSun},
	}

	const m, iters = 300, 20
	dcomp := contention.SORWork(m, iters)

	// Actual contended run on the simulated platform.
	k := contention.NewKernel()
	sp, err := contention.NewSunParagon(k, params)
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range specs {
		if _, err := contention.SpawnAlternator(sp, s); err != nil {
			log.Fatal(err)
		}
	}
	actual := -1.0
	k.Spawn("sor", func(p *contention.Proc) {
		p.Delay(0.5)
		start := p.Now()
		sp.Host.Compute(p, dcomp)
		actual = p.Now() - start
		k.Stop()
	})
	k.Run()

	fmt.Printf("SOR %d×%d, %d sweeps: dedicated %.2fs, actual under contention %.2fs\n",
		m, m, iters, dcomp, actual)
	fmt.Println("model predictions by delay^{i,j} column:")
	for _, j := range []int{1, 500, 1000} {
		s, err := contention.CompSlowdownWithJ(contenders, cal.Tables, j)
		if err != nil {
			log.Fatal(err)
		}
		pred := dcomp * s
		fmt.Printf("  j=%-5d slowdown %.3f → %.2fs (error %.1f%%)\n",
			j, s, pred, 100*math.Abs(pred-actual)/actual)
	}
	auto, err := contention.CompSlowdown(contenders, cal.Tables)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  auto j (max contender message size, nearest column): slowdown %.3f → %.2fs\n",
		auto, dcomp*auto)
	fmt.Println("\nthe paper reports 4% error with j=1000, 16% with j=500, 32% with j=1")
}
