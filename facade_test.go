package contention_test

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"contention"
)

// The facade tests exercise the public API end to end the way a
// downstream scheduler would use it.

func facadeCalibration(t *testing.T) contention.Calibration {
	t.Helper()
	params := contention.DefaultParagonParams(contention.OneHop)
	opts := contention.DefaultCalibrationOptions(params)
	opts.BurstCount = 50
	opts.MaxContenders = 3
	cal, err := contention.Calibrate(opts)
	if err != nil {
		t.Fatalf("Calibrate: %v", err)
	}
	return cal
}

func TestFacadeCalibrateAndPredict(t *testing.T) {
	cal := facadeCalibration(t)
	if cal.ToBack.Threshold != 1024 {
		t.Fatalf("threshold %d, want 1024", cal.ToBack.Threshold)
	}
	pred, err := contention.NewPredictor(cal)
	if err != nil {
		t.Fatal(err)
	}
	sets := []contention.DataSet{{N: 100, Words: 200}}
	ded, err := pred.DedicatedComm(contention.HostToBack, sets)
	if err != nil {
		t.Fatal(err)
	}
	cs := []contention.Contender{{CommFraction: 0.5, MsgWords: 200}}
	got, err := pred.PredictComm(contention.HostToBack, sets, cs)
	if err != nil {
		t.Fatal(err)
	}
	if got <= ded {
		t.Fatalf("contended %v not above dedicated %v", got, ded)
	}
}

func TestFacadeSlowdownFunctions(t *testing.T) {
	if got, err := contention.SimpleSlowdown(3); err != nil || got != 4 {
		t.Fatalf("SimpleSlowdown(3) = %v, %v", got, err)
	}
	if got, err := contention.CM2ExecTime(1, 0.5, 3, 2); err != nil || got != 9 {
		t.Fatalf("CM2ExecTime = %v, %v, want 9", got, err)
	}
	if got, err := contention.CM2CommTime(2, 1); err != nil || got != 4 {
		t.Fatalf("CM2CommTime = %v, %v, want 4", got, err)
	}
	// The façade rejects invalid inputs with errors, never panics.
	if _, err := contention.SimpleSlowdown(-1); err == nil {
		t.Fatal("SimpleSlowdown(-1) accepted")
	}
	if _, err := contention.CM2ExecTime(-1, 0, 0, 0); err == nil {
		t.Fatal("CM2ExecTime with negative dcomp accepted")
	}
	if _, err := contention.CM2ExecTime(1, 0, 0, -2); err == nil {
		t.Fatal("CM2ExecTime with negative p accepted")
	}
	if _, err := contention.CM2CommTime(-1, 0); err == nil {
		t.Fatal("CM2CommTime with negative dcomm accepted")
	}
	if !contention.ShouldOffload(10, 2, 3, 3) {
		t.Fatal("ShouldOffload(10,2,3,3) = false")
	}
	tables := contention.DelayTables{}
	s, err := contention.CommSlowdown(nil, tables)
	if err != nil || s != 1 {
		t.Fatalf("empty CommSlowdown = %v, %v", s, err)
	}
	s, err = contention.CompSlowdown([]contention.Contender{{}, {}}, tables)
	if err != nil || s != 3 {
		t.Fatalf("CPU-bound CompSlowdown = %v, %v", s, err)
	}
	if _, err := contention.CompSlowdownWithJ(nil, tables, 500); err != nil {
		t.Fatalf("CompSlowdownWithJ: %v", err)
	}
}

func TestFacadeSystemLifecycle(t *testing.T) {
	cal := facadeCalibration(t)
	sys, err := contention.NewSystem(cal.Tables)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Add(contention.Contender{CommFraction: 0.4, MsgWords: 500}); err != nil {
		t.Fatal(err)
	}
	if sys.CommSlowdown() <= 1 {
		t.Fatal("slowdown should exceed 1 with a contender")
	}
	if err := sys.Remove(0); err != nil {
		t.Fatal(err)
	}
	if sys.CommSlowdown() != 1 {
		t.Fatal("slowdown should return to 1")
	}
}

func TestFacadeSimulationRoundTrip(t *testing.T) {
	k := contention.NewKernel()
	sp, err := contention.NewSunParagon(k, contention.DefaultParagonParams(contention.OneHop))
	if err != nil {
		t.Fatal(err)
	}
	contention.SpawnPingEcho(sp, "x")
	contention.SpawnCPUHog(sp, "hog")
	if _, err := contention.SpawnAlternator(sp, contention.AlternatorSpec{
		Name: "alt", CommFraction: 0.3, MsgWords: 100, Period: 0.1,
	}); err != nil {
		t.Fatal(err)
	}
	var elapsed float64
	k.Spawn("bench", func(p *contention.Proc) {
		if _, err := contention.PingPongBurst(p, sp, "x", 0, 100); err == nil {
			t.Error("zero-count burst accepted")
		}
		if _, err := contention.PingPongBurst(p, nil, "x", 20, 100); err == nil {
			t.Error("nil platform accepted")
		}
		var err error
		elapsed, err = contention.PingPongBurst(p, sp, "x", 20, 100)
		if err != nil {
			t.Error(err)
		}
		k.Stop()
	})
	k.Run()
	if elapsed <= 0 {
		t.Fatalf("elapsed = %v", elapsed)
	}
}

func TestFacadeCM2RoundTrip(t *testing.T) {
	model, err := contention.CalibrateCM2(
		contention.DefaultCM2CalibrationOptions(contention.DefaultCM2Params()))
	if err != nil {
		t.Fatal(err)
	}
	if model.Small.Beta <= 0 {
		t.Fatalf("β = %v", model.Small.Beta)
	}
	k := contention.NewKernel()
	plat, err := contention.NewSunCM2(k, contention.DefaultCM2Params())
	if err != nil {
		t.Fatal(err)
	}
	prog := contention.GaussCM2Program(80)
	var elapsed, busy, idle float64
	k.Spawn("g", func(p *contention.Proc) {
		elapsed, busy, idle = contention.RunCM2(p, plat, prog)
	})
	k.Run()
	if elapsed <= 0 || busy <= 0 || idle < 0 {
		t.Fatalf("run stats %v/%v/%v", elapsed, busy, idle)
	}
}

func TestFacadeApplications(t *testing.T) {
	grid, err := contention.MakeLaplaceGrid(9)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := contention.SORSolve(grid, 1.4, 50); err != nil {
		t.Fatal(err)
	}
	a, b := contention.MakeDiagonallyDominant(6)
	x, err := contention.GaussSolve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[5]-6) > 1e-8 {
		t.Fatalf("x[5] = %v", x[5])
	}
	if contention.SORWork(102, 10) <= 0 {
		t.Fatal("SORWork non-positive")
	}
	if got := contention.SORDataSets(100); len(got) != 1 {
		t.Fatalf("SORDataSets = %v", got)
	}
	prog, err := contention.SyntheticCM2Program(contention.DefaultSyntheticSpec(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Segments) == 0 {
		t.Fatal("empty synthetic program")
	}
}

func TestFacadeScheduler(t *testing.T) {
	p := contention.PaperExample()
	best, err := p.Best()
	if err != nil {
		t.Fatal(err)
	}
	if best.Makespan != 16 {
		t.Fatalf("makespan %v", best.Makespan)
	}
	slowdown, err := contention.SimpleSlowdown(2)
	if err != nil {
		t.Fatal(err)
	}
	adjusted := p.ScaleExec("M1", slowdown).ScaleComm(3)
	best, err = adjusted.Best()
	if err != nil {
		t.Fatal(err)
	}
	if best.Makespan != 48 {
		t.Fatalf("adjusted makespan %v", best.Makespan)
	}
}

func TestFacadeExtensions(t *testing.T) {
	m := contention.MemoryModel{Pages: 100, Thrash: 2}
	pf, err := contention.MemorySlowdown(m, 100, []int{50})
	if err != nil {
		t.Fatal(err)
	}
	if pf != 2 {
		t.Fatalf("MemorySlowdown = %v, want 2", pf)
	}
	s, err := contention.CompSlowdownWithMemory(
		[]contention.Contender{{}}, contention.DelayTables{}, m, 100, []int{50})
	if err != nil {
		t.Fatal(err)
	}
	if s != 4 {
		t.Fatalf("CompSlowdownWithMemory = %v, want 4 (2×2)", s)
	}
	phases := []contention.Phase{
		{Duration: 2, Contenders: []contention.Contender{{}}},
		{Contenders: nil},
	}
	got, err := contention.PredictCompPhased(3, phases, contention.DelayTables{})
	if err != nil {
		t.Fatal(err)
	}
	if got != 4 {
		t.Fatalf("PredictCompPhased = %v, want 4", got)
	}
	if _, err := contention.PredictCommPhased(3, phases, contention.DelayTables{}); err != nil {
		t.Fatal(err)
	}
	tagged := []contention.MultiContender{
		{Contender: contention.Contender{CommFraction: 1, MsgWords: 500}, Link: 1},
	}
	tables := contention.DelayTables{
		CompOnComm: []float64{0.5},
		CommOnComp: map[int][]float64{500: {0.6}},
	}
	ms, err := contention.CommSlowdownMulti(0, tagged, tables)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ms-(1+0.6*0.5)) > 1e-12 {
		t.Fatalf("CommSlowdownMulti = %v", ms)
	}
	if _, err := contention.CompSlowdownMulti(tagged, tables); err != nil {
		t.Fatal(err)
	}
	if _, err := contention.PredictCommMulti(1, 0, tagged, tables); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeMultiPlatform(t *testing.T) {
	k := contention.NewKernel()
	legs, err := contention.NewSunMultiParagon(k, contention.DefaultParagonParams(contention.OneHop), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(legs) != 2 || legs[0].Host != legs[1].Host {
		t.Fatal("legs malformed")
	}
}

func TestFacadeExperimentEnv(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full experiment sweep")
	}
	env, err := contention.NewExperimentEnv()
	if err != nil {
		t.Fatal(err)
	}
	all, err := contention.AllExperiments(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 11 {
		t.Fatalf("got %d experiments, want 11", len(all))
	}
	ext, err := contention.ExtensionExperiments(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(ext) != 8 {
		t.Fatalf("got %d extension experiments, want 8", len(ext))
	}
	if ext[len(ext)-1].ID != "scenarioreplay" {
		t.Fatalf("last extension %q, want scenarioreplay", ext[len(ext)-1].ID)
	}
}

func TestFacadeRuntimeInfrastructure(t *testing.T) {
	cal := facadeCalibration(t)
	k := contention.NewKernel()
	sp, err := contention.NewSunParagon(k, contention.DefaultParagonParams(contention.OneHop))
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := contention.NewResourceManager(k, contention.ResourceManagerConfig{
		Tables: cal.Tables,
		MPP:    sp.MPP,
		Host:   sp.Host,
	})
	if err != nil {
		t.Fatal(err)
	}
	mon, err := contention.NewMonitor(sp, 0.1, 100)
	if err != nil {
		t.Fatal(err)
	}
	mon.Start()
	contention.SpawnCPUHog(sp, "hog")
	k.Spawn("app", func(p *contention.Proc) {
		r, err := mgr.Submit(p, contention.AppDescriptor{
			Name:      "app",
			Contender: contention.Contender{CommFraction: 0.3, MsgWords: 200},
			Nodes:     4,
		})
		if err != nil {
			t.Error(err)
			return
		}
		p.Delay(5)
		if err := r.Release(); err != nil {
			t.Error(err)
		}
		k.Stop()
	})
	k.Run()
	est, err := mon.EstimateWindow(5)
	if err != nil {
		t.Fatal(err)
	}
	if est.HostUtilization < 0.9 {
		t.Fatalf("host utilization %v with a hog, want ≈ 1", est.HostUtilization)
	}
	if mgr.Admitted() != 1 {
		t.Fatalf("Admitted = %d", mgr.Admitted())
	}
}

func TestFacadeCalibrationFileRoundtrip(t *testing.T) {
	cal := facadeCalibration(t)
	path := filepath.Join(t.TempDir(), "cal.json")
	if err := contention.SaveCalibrationFile(path, cal, "facade test"); err != nil {
		t.Fatal(err)
	}
	got, err := contention.LoadCalibrationFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.ToBack.Threshold != cal.ToBack.Threshold {
		t.Fatalf("roundtrip threshold %d, want %d", got.ToBack.Threshold, cal.ToBack.Threshold)
	}
	if err := contention.CheckCalibration(got); err != nil {
		t.Fatalf("calibrated artifact fails invariant check: %v", err)
	}
	// Damage the file: the load must fail loudly, not return garbage.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := contention.LoadCalibrationFile(path); err == nil {
		t.Fatal("truncated calibration file loaded without error")
	}
	// An invalid calibration is reported with parameter paths.
	bad := cal
	bad.Tables.CompOnComm = append([]float64(nil), cal.Tables.CompOnComm...)
	bad.Tables.CompOnComm[1] = 0.01
	bad.Tables.CompOnComm[0] = 3.0
	err = contention.CheckCalibration(bad)
	if err == nil {
		t.Fatal("grossly non-monotone tables passed CheckCalibration")
	}
	var report *contention.ValidationReport
	if !errors.As(err, &report) || len(report.Fatal()) == 0 {
		t.Fatalf("error %T is not a recoverable ValidationReport", err)
	}
}
