module contention

go 1.22
