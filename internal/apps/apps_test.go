package apps

import (
	"math"
	"testing"

	"contention/internal/des"
	"contention/internal/platform"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMakeLaplaceGrid(t *testing.T) {
	g, err := MakeLaplaceGrid(5)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 5; j++ {
		if g[0][j] != 100 {
			t.Fatalf("top boundary g[0][%d] = %v, want 100", j, g[0][j])
		}
	}
	if g[2][2] != 0 {
		t.Fatalf("interior not zero: %v", g[2][2])
	}
	if _, err := MakeLaplaceGrid(2); err == nil {
		t.Fatal("size 2 accepted")
	}
}

func TestSORSolveConverges(t *testing.T) {
	g, _ := MakeLaplaceGrid(17)
	res, err := SORSolve(g, 1.5, 500)
	if err != nil {
		t.Fatal(err)
	}
	if res > 1e-6 {
		t.Fatalf("residual %v after 500 sweeps, want < 1e-6", res)
	}
	// The discrete harmonic solution is symmetric about the vertical
	// midline and bounded by the boundary values.
	m := len(g)
	for i := 1; i < m-1; i++ {
		for j := 1; j < m-1; j++ {
			if g[i][j] < 0 || g[i][j] > 100 {
				t.Fatalf("maximum principle violated at (%d,%d): %v", i, j, g[i][j])
			}
			if d := math.Abs(g[i][j] - g[i][m-1-j]); d > 1e-5 {
				t.Fatalf("asymmetry at (%d,%d): %v", i, j, d)
			}
		}
	}
	// Near the hot boundary values are larger than near the cold one.
	if g[1][m/2] <= g[m-2][m/2] {
		t.Fatalf("temperature gradient inverted: %v vs %v", g[1][m/2], g[m-2][m/2])
	}
}

func TestSORSolveValidation(t *testing.T) {
	g, _ := MakeLaplaceGrid(5)
	if _, err := SORSolve(g, 2.5, 10); err == nil {
		t.Fatal("omega out of range accepted")
	}
	if _, err := SORSolve(g, 1.5, 0); err == nil {
		t.Fatal("zero iterations accepted")
	}
	if _, err := SORSolve([][]float64{{1, 2}, {3}}, 1.5, 1); err == nil {
		t.Fatal("ragged grid accepted")
	}
}

func TestSORWorkScalesQuadratically(t *testing.T) {
	w100 := SORWork(102, 10) // 100×100 interior
	w200 := SORWork(202, 10) // 200×200 interior
	if !approx(w200/w100, 4, 1e-9) {
		t.Fatalf("work ratio %v, want 4 (quadratic)", w200/w100)
	}
	if got := SORWork(102, 10); !approx(got, 10*5*100*100/SunOpsRate, 1e-12) {
		t.Fatalf("SORWork = %v", got)
	}
}

func TestSORDataSets(t *testing.T) {
	sets := SORDataSets(300)
	if len(sets) != 1 || sets[0].N != 300 || sets[0].Words != 300 {
		t.Fatalf("SORDataSets = %+v", sets)
	}
}

func TestGaussSolveKnownSolution(t *testing.T) {
	for _, n := range []int{1, 2, 5, 20} {
		a, b := MakeDiagonallyDominant(n)
		x, err := GaussSolve(a, b)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i := range x {
			if !approx(x[i], float64(i+1), 1e-8) {
				t.Fatalf("n=%d: x[%d] = %v, want %d", n, i, x[i], i+1)
			}
		}
	}
}

func TestGaussSolvePivots(t *testing.T) {
	// Zero on the diagonal requires a row swap.
	a := [][]float64{{0, 1}, {1, 0}}
	b := []float64{2, 3}
	x, err := GaussSolve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(x[0], 3, 1e-12) || !approx(x[1], 2, 1e-12) {
		t.Fatalf("x = %v, want [3 2]", x)
	}
}

func TestGaussSolveErrors(t *testing.T) {
	if _, err := GaussSolve(nil, nil); err == nil {
		t.Fatal("empty system accepted")
	}
	if _, err := GaussSolve([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Fatal("mismatched rhs accepted")
	}
	if _, err := GaussSolve([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Fatal("non-square accepted")
	}
	if _, err := GaussSolve([][]float64{{0, 0}, {0, 0}}, []float64{1, 1}); err == nil {
		t.Fatal("singular matrix accepted")
	}
}

func TestGaussCM2ProgramShape(t *testing.T) {
	prog := GaussCM2Program(100)
	if len(prog.Segments) != 100 {
		t.Fatalf("segments = %d, want 100", len(prog.Segments))
	}
	for i, seg := range prog.Segments {
		if seg.Serial <= 0 || seg.Parallel <= 0 {
			t.Fatalf("segment %d non-positive: %+v", i, seg)
		}
	}
	// Early steps touch more rows → at least as much parallel work.
	first := prog.Segments[0].Parallel
	last := prog.Segments[99].Parallel
	if first < last {
		t.Fatalf("parallel durations inverted: first %v < last %v", first, last)
	}
	if prog.TotalSerial() <= 0 || prog.TotalParallel() <= 0 {
		t.Fatal("totals must be positive")
	}
}

func TestGaussCrossoverNear200(t *testing.T) {
	// The synthetic calibration must put the serial×4 vs parallel
	// balance crossover near M = 200 (paper Figure 3).
	ratio := func(m int) float64 {
		prog := GaussCM2Program(m)
		return prog.TotalSerial() * 4 / prog.TotalParallel()
	}
	if r := ratio(100); r <= 1 {
		t.Fatalf("M=100: serial×4/parallel = %v, want > 1 (contention visible)", r)
	}
	if r := ratio(400); r >= 1 {
		t.Fatalf("M=400: serial×4/parallel = %v, want < 1 (CM2-bound)", r)
	}
	// Crossover bracket: between 150 and 300.
	if ratio(150) <= 1 || ratio(300) >= 1 {
		t.Fatalf("crossover outside (150,300): r150=%v r300=%v", ratio(150), ratio(300))
	}
}

func TestRunCM2DedicatedElapsed(t *testing.T) {
	k := des.New()
	plat := platform.MustNewSunCM2(k, platform.DefaultCM2Params())
	prog := GaussCM2Program(50)
	var elapsed, busy, idle float64
	k.Spawn("app", func(p *des.Proc) {
		elapsed, busy, idle = RunCM2(p, plat, prog)
	})
	k.Run()
	if !approx(busy, prog.TotalParallel(), 1e-9) {
		t.Fatalf("busy = %v, want %v", busy, prog.TotalParallel())
	}
	if elapsed < prog.TotalParallel()-1e-9 || elapsed < prog.TotalSerial()-1e-9 {
		t.Fatalf("elapsed %v below both serial %v and parallel %v totals",
			elapsed, prog.TotalSerial(), prog.TotalParallel())
	}
	if elapsed > prog.TotalSerial()+prog.TotalParallel()+1e-9 {
		t.Fatalf("elapsed %v exceeds serial+parallel (no overlap at all?)", elapsed)
	}
	if !approx(busy+idle, elapsed, 1e-9) {
		t.Fatalf("busy %v + idle %v != elapsed %v", busy, idle, elapsed)
	}
}

func TestRunCM2ContendedFollowsMaxLaw(t *testing.T) {
	// With 3 CPU hogs the elapsed time approaches
	// max(parallel + idle_dedicated, serial × 4).
	prog := GaussCM2Program(120)

	// Dedicated run for didle.
	k1 := des.New()
	plat1 := platform.MustNewSunCM2(k1, platform.DefaultCM2Params())
	var dedIdle float64
	k1.Spawn("app", func(p *des.Proc) {
		_, _, dedIdle = RunCM2(p, plat1, prog)
	})
	k1.Run()

	k2 := des.New()
	plat2 := platform.MustNewSunCM2(k2, platform.DefaultCM2Params())
	var elapsed float64
	k2.Spawn("app", func(p *des.Proc) {
		elapsed, _, _ = RunCM2(p, plat2, prog)
	})
	plat2.SpawnCPUHogs(3)
	k2.RunUntil(1e6)
	want := math.Max(prog.TotalParallel()+dedIdle, prog.TotalSerial()*4)
	if math.Abs(elapsed-want)/want > 0.15 {
		t.Fatalf("contended elapsed %v, model %v (>15%% apart)", elapsed, want)
	}
}

func TestSyntheticCM2ProgramReproducible(t *testing.T) {
	spec := DefaultSyntheticSpec(42)
	a, err := SyntheticCM2Program(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SyntheticCM2Program(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Segments) != spec.Segments || len(b.Segments) != len(a.Segments) {
		t.Fatalf("segment counts %d/%d, want %d", len(a.Segments), len(b.Segments), spec.Segments)
	}
	for i := range a.Segments {
		if a.Segments[i] != b.Segments[i] {
			t.Fatalf("segment %d differs between identical seeds", i)
		}
	}
	c, err := SyntheticCM2Program(SyntheticSpec{Seed: 43, Segments: spec.Segments,
		SerialMeanOps: spec.SerialMeanOps, ParallelMean: spec.ParallelMean,
		Burstiness: spec.Burstiness, SyncEvery: spec.SyncEvery})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Segments {
		if a.Segments[i] != c.Segments[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical programs")
	}
}

func TestSyntheticSpecValidation(t *testing.T) {
	bad := []SyntheticSpec{
		{Segments: 0},
		{Segments: 1, SerialMeanOps: -1},
		{Segments: 1, ParallelMean: -1},
		{Segments: 1, Burstiness: 1},
		{Segments: 1, SyncEvery: -1},
	}
	for i, s := range bad {
		if _, err := SyntheticCM2Program(s); err == nil {
			t.Errorf("case %d did not error", i)
		}
	}
}

func TestRunCM2SyncEveryLimitsOverlap(t *testing.T) {
	// With SyncEvery=1 the program serializes: elapsed = serial + parallel.
	prog := CM2Program{Name: "sync1", SyncEvery: 1, Segments: []Segment{
		{Serial: 0.01, Parallel: 0.02},
		{Serial: 0.01, Parallel: 0.02},
	}}
	k := des.New()
	plat := platform.MustNewSunCM2(k, platform.DefaultCM2Params())
	var elapsed float64
	k.Spawn("app", func(p *des.Proc) {
		elapsed, _, _ = RunCM2(p, plat, prog)
	})
	k.Run()
	if !approx(elapsed, 0.06, 1e-9) {
		t.Fatalf("elapsed %v, want 0.06 (fully serialized)", elapsed)
	}
}

func TestRunSORParagonScales(t *testing.T) {
	run := func(nodes int) float64 {
		k := des.New()
		sp := platform.MustNewSunParagon(k, platform.DefaultParagonParams(platform.OneHop))
		var elapsed float64
		var err error
		k.Spawn("sor", func(p *des.Proc) {
			elapsed, err = RunSORParagon(p, sp, SORParagonSpec{M: 200, Iters: 10, Nodes: nodes})
		})
		k.Run()
		if err != nil {
			t.Fatal(err)
		}
		return elapsed
	}
	t4 := run(4)
	t16 := run(16)
	if t16 >= t4 {
		t.Fatalf("16 nodes (%v) not faster than 4 (%v)", t16, t4)
	}
	// Sublinear speedup: halo exchange costs grow with the partition.
	if t4/t16 > 4.5 {
		t.Fatalf("speedup %v looks superlinear", t4/t16)
	}
}

func TestRunSORParagonValidation(t *testing.T) {
	k := des.New()
	sp := platform.MustNewSunParagon(k, platform.DefaultParagonParams(platform.OneHop))
	k.Spawn("bad", func(p *des.Proc) {
		for _, spec := range []SORParagonSpec{
			{M: 2, Iters: 1, Nodes: 1},
			{M: 10, Iters: 0, Nodes: 1},
			{M: 10, Iters: 1, Nodes: 0},
			{M: 10, Iters: 1, Nodes: 1000}, // more than the machine has
		} {
			if _, err := RunSORParagon(p, sp, spec); err == nil {
				t.Errorf("spec %+v accepted", spec)
			}
		}
	})
	k.Run()
}

func TestSORParagonEstimateTracksSimulation(t *testing.T) {
	k := des.New()
	sp := platform.MustNewSunParagon(k, platform.DefaultParagonParams(platform.OneHop))
	spec := SORParagonSpec{M: 300, Iters: 10, Nodes: 8}
	est, err := SORParagonEstimate(sp, spec)
	if err != nil {
		t.Fatal(err)
	}
	var sim float64
	k.Spawn("sor", func(p *des.Proc) {
		sim, err = RunSORParagon(p, sp, spec)
	})
	k.Run()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est-sim)/sim > 0.01 {
		t.Fatalf("estimate %v vs simulated %v", est, sim)
	}
	if _, err := SORParagonEstimate(sp, SORParagonSpec{}); err == nil {
		t.Fatal("invalid spec accepted")
	}
}
