package apps

import (
	"errors"
	"fmt"
	"math"

	"contention/internal/des"
	"contention/internal/platform"
)

// GaussSolve performs Gaussian elimination with partial pivoting on the
// augmented system [a | b], returning the solution vector. a is an
// n×n matrix; both a and b are left in eliminated form.
func GaussSolve(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	if n == 0 {
		return nil, errors.New("apps: empty system")
	}
	if len(b) != n {
		return nil, fmt.Errorf("apps: rhs length %d != %d", len(b), n)
	}
	for i, row := range a {
		if len(row) != n {
			return nil, fmt.Errorf("apps: row %d has length %d, want %d", i, len(row), n)
		}
	}
	for k := 0; k < n; k++ {
		// Partial pivot: the serial/scalar part of the step.
		pivot := k
		best := math.Abs(a[k][k])
		for i := k + 1; i < n; i++ {
			if v := math.Abs(a[i][k]); v > best {
				pivot, best = i, v
			}
		}
		if best == 0 {
			return nil, fmt.Errorf("apps: singular matrix at column %d", k)
		}
		if pivot != k {
			a[k], a[pivot] = a[pivot], a[k]
			b[k], b[pivot] = b[pivot], b[k]
		}
		// Elimination: the data-parallel part of the step.
		for i := k + 1; i < n; i++ {
			f := a[i][k] / a[k][k]
			if f == 0 {
				continue
			}
			a[i][k] = 0
			for j := k + 1; j < n; j++ {
				a[i][j] -= f * a[k][j]
			}
			b[i] -= f * b[k]
		}
	}
	// Back substitution.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for j := i + 1; j < n; j++ {
			s -= a[i][j] * x[j]
		}
		x[i] = s / a[i][i]
	}
	return x, nil
}

// MakeDiagonallyDominant builds a well-conditioned n×n test system with
// a known solution x[i] = i+1, returning (a, b).
func MakeDiagonallyDominant(n int) ([][]float64, []float64) {
	a := make([][]float64, n)
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i + 1)
	}
	for i := range a {
		a[i] = make([]float64, n)
		for j := range a[i] {
			if i == j {
				a[i][j] = float64(2*n + 1)
			} else {
				a[i][j] = 1 / float64(1+abs(i-j))
			}
		}
	}
	b := make([]float64, n)
	for i := range b {
		s := 0.0
		for j := range x {
			s += a[i][j] * x[j]
		}
		b[i] = s
	}
	return a, b
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// --- CM2 program profiles -------------------------------------------------

// CM2PEs is the number of processing elements of the synthetic CM2.
const CM2PEs = 8192

// Profile constants for the Gaussian-elimination CM2 program (see the
// package comment and DESIGN.md §5): serial scalar ops per elimination
// step, sequencer overhead per parallel instruction, and per-VP-loop
// cost. Chosen so the paper's Figure 3 crossover lands near M = 200.
const (
	gaussSerialBaseOps   = 1500.0
	gaussSerialPerRowOps = 6.0
	cm2InstrOverhead     = 5e-4
	cm2PerVPLoop         = 1.5e-3
	gaussInstrsPerStep   = 2
)

// Segment is one serial→parallel phase of a front-end/back-end program:
// the front-end executes Serial seconds of scalar code (dedicated time),
// then issues a parallel instruction that occupies the back-end for
// Parallel seconds.
type Segment struct {
	Serial   float64
	Parallel float64
}

// CM2Program is an instruction-level profile of a CM2 application.
type CM2Program struct {
	Name     string
	Segments []Segment
	// SyncEvery, when positive, makes the front-end wait for all issued
	// instructions after every n-th segment (a reduction returning a
	// result to the host, as in the paper's Figure 2).
	SyncEvery int
}

// TotalSerial is the paper's dserial_cm2: dedicated front-end time.
func (p CM2Program) TotalSerial() float64 {
	s := 0.0
	for _, seg := range p.Segments {
		s += seg.Serial
	}
	return s
}

// TotalParallel is the paper's dcomp_cm2: dedicated back-end time.
func (p CM2Program) TotalParallel() float64 {
	s := 0.0
	for _, seg := range p.Segments {
		s += seg.Parallel
	}
	return s
}

// GaussCM2Program profiles Gaussian elimination on an M×(M+1) augmented
// matrix for the CM2: per elimination step, a serial pivot phase on the
// Sun and a data-parallel elimination instruction on the CM2 whose
// duration depends on the virtual-processor ratio.
func GaussCM2Program(m int) CM2Program {
	if m < 1 {
		panic(fmt.Sprintf("apps: invalid Gauss size %d", m))
	}
	segs := make([]Segment, 0, m)
	for k := 0; k < m; k++ {
		serialOps := gaussSerialBaseOps + gaussSerialPerRowOps*float64(m)
		elems := float64((m - k) * (m + 1))
		vpLoops := math.Ceil(elems / CM2PEs)
		par := gaussInstrsPerStep*cm2InstrOverhead + cm2PerVPLoop*vpLoops
		segs = append(segs, Segment{
			Serial:   serialOps / SunOpsRate,
			Parallel: par,
		})
	}
	return CM2Program{Name: fmt.Sprintf("gauss-%d", m), Segments: segs}
}

// RunCM2 executes a CM2 program on the simulated platform, returning
// elapsed virtual time and the back-end session statistics
// (busy = dcomp_cm2 under dedicated conditions; idle = didle_cm2).
func RunCM2(p *des.Proc, plat *platform.SunCM2, prog CM2Program) (elapsed, busy, idle float64) {
	start := p.Now()
	sess := plat.Backend.Attach(p, prog.Name, plat.Params.FIFODepth)
	for i, seg := range prog.Segments {
		if seg.Serial > 0 {
			plat.Host.Compute(p, seg.Serial)
		}
		if seg.Parallel > 0 {
			sess.Issue(p, seg.Parallel)
		}
		if prog.SyncEvery > 0 && (i+1)%prog.SyncEvery == 0 {
			sess.Sync(p)
		}
	}
	sess.Detach(p)
	end := p.Now()
	return end - start, sess.BusyTime(), sess.IdleTime(end)
}
