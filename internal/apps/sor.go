// Package apps provides the two scientific benchmarks the paper
// validates with — an SOR solver for Laplace's equation and Gaussian
// elimination — both as real numerical kernels (used by the live
// emulation and the examples) and as platform profiles: the
// serial/parallel/communication structure that drives the simulated
// Sun/CM2 and Sun/Paragon platforms.
//
// Profile constants are synthetic calibrations documented in DESIGN.md:
// the Sun executes ≈2 MFLOPS; the CM2 has 8192 PEs with a per-parallel-
// instruction sequencer overhead and a per-virtual-processor-loop cost
// chosen so that the Gaussian-elimination serial/parallel balance
// crosses over near M = 200, matching the paper's Figure 3.
package apps

import (
	"errors"
	"fmt"
	"math"

	"contention/internal/core"
)

// SunOpsRate is the synthetic front-end scalar rate in operations/second.
const SunOpsRate = 2e6

// SOROpsPerPoint is the operation count of one SOR update (4 neighbor
// adds, one scale, one blend — rounded to the classic 5-op estimate
// plus loop overhead).
const SOROpsPerPoint = 5

// MakeLaplaceGrid builds an M×M grid with Dirichlet boundary conditions:
// the top edge held at 100, the others at 0 — a standard Laplace test
// problem.
func MakeLaplaceGrid(m int) ([][]float64, error) {
	if m < 3 {
		return nil, fmt.Errorf("apps: grid size %d must be ≥ 3", m)
	}
	g := make([][]float64, m)
	cells := make([]float64, m*m)
	for i := range g {
		g[i], cells = cells[:m], cells[m:]
	}
	for j := 0; j < m; j++ {
		g[0][j] = 100
	}
	return g, nil
}

// SORSolve runs red-black successive over-relaxation in place for the
// given number of iterations with relaxation factor omega, returning
// the final residual (max absolute update of the last sweep). Boundary
// rows and columns are held fixed.
func SORSolve(grid [][]float64, omega float64, iters int) (float64, error) {
	m := len(grid)
	if m < 3 {
		return 0, fmt.Errorf("apps: grid size %d must be ≥ 3", m)
	}
	for _, row := range grid {
		if len(row) != m {
			return 0, errors.New("apps: grid must be square")
		}
	}
	if omega <= 0 || omega >= 2 {
		return 0, fmt.Errorf("apps: omega %v out of (0,2)", omega)
	}
	if iters < 1 {
		return 0, fmt.Errorf("apps: iteration count %d must be ≥ 1", iters)
	}
	residual := 0.0
	for it := 0; it < iters; it++ {
		residual = 0
		for color := 0; color < 2; color++ {
			for i := 1; i < m-1; i++ {
				start := 1 + (i+color)%2
				for j := start; j < m-1; j += 2 {
					old := grid[i][j]
					gs := 0.25 * (grid[i-1][j] + grid[i+1][j] + grid[i][j-1] + grid[i][j+1])
					next := old + omega*(gs-old)
					grid[i][j] = next
					if d := math.Abs(next - old); d > residual {
						residual = d
					}
				}
			}
		}
	}
	return residual, nil
}

// SORWork returns the dedicated Sun execution time (seconds) of iters
// SOR sweeps on an M×M grid — the profile behind dcomp_sun in the
// paper's Figures 7 and 8.
func SORWork(m, iters int) float64 {
	if m < 0 || iters < 0 {
		panic(fmt.Sprintf("apps: invalid SOR profile m=%d iters=%d", m, iters))
	}
	interior := float64((m - 2) * (m - 2))
	if interior < 0 {
		interior = 0
	}
	return float64(iters) * SOROpsPerPoint * interior / SunOpsRate
}

// SORDataSets describes transferring an M×M matrix as M row messages of
// M words each — the data layout of the paper's Figure 1 transfer.
func SORDataSets(m int) []core.DataSet {
	return []core.DataSet{{N: m, Words: m}}
}
