package apps

import (
	"fmt"

	"contention/internal/des"
	"contention/internal/platform"
)

// Paragon-side SOR: the same solver run data-parallel on an MPP
// partition — the back-end alternative the paper's Equation (1) weighs
// against front-end execution.

// SORParagonSpec describes one distributed SOR run.
type SORParagonSpec struct {
	// M is the grid dimension (M×M points, row-partitioned).
	M int
	// Iters is the sweep count.
	Iters int
	// Nodes is the partition size.
	Nodes int
}

// Validate checks the spec.
func (s SORParagonSpec) Validate() error {
	if s.M < 3 {
		return fmt.Errorf("apps: SOR grid %d must be ≥ 3", s.M)
	}
	if s.Iters < 1 {
		return fmt.Errorf("apps: SOR iterations %d must be ≥ 1", s.Iters)
	}
	if s.Nodes < 1 {
		return fmt.Errorf("apps: partition size %d must be ≥ 1", s.Nodes)
	}
	return nil
}

// RunSORParagon executes the distributed SOR profile on the platform's
// MPP: per sweep, a balanced data-parallel update of the row partition
// followed by a halo exchange over the NX fabric (two boundary rows per
// internal partition boundary). It returns the elapsed virtual time.
func RunSORParagon(p *des.Proc, sp *platform.SunParagon, spec SORParagonSpec) (float64, error) {
	if err := spec.Validate(); err != nil {
		return 0, err
	}
	part, err := sp.MPP.Allocate(fmt.Sprintf("sor-%d", spec.M), spec.Nodes)
	if err != nil {
		return 0, err
	}
	defer part.Release()
	start := p.Now()
	interior := float64((spec.M - 2) * (spec.M - 2))
	workPerSweep := SOROpsPerPoint * interior / SunOpsRate // Sun-relative units
	haloMsgs := 2 * (spec.Nodes - 1)
	for it := 0; it < spec.Iters; it++ {
		part.ComputeTotal(p, workPerSweep)
		for h := 0; h < haloMsgs; h++ {
			sp.MPP.NXSend(p, spec.M)
		}
	}
	return p.Now() - start, nil
}

// SORParagonEstimate returns the dedicated-mode analytic estimate of
// the distributed run (compute at aggregate node speed plus fabric
// time), usable as the model's T_p input without running the simulator.
func SORParagonEstimate(sp *platform.SunParagon, spec SORParagonSpec) (float64, error) {
	if err := spec.Validate(); err != nil {
		return 0, err
	}
	interior := float64((spec.M - 2) * (spec.M - 2))
	perSweep := SOROpsPerPoint * interior / SunOpsRate / (float64(spec.Nodes) * sp.Params.Mesh.NodeSpeed)
	halo := float64(2*(spec.Nodes-1)) * sp.MPP.NXTime(spec.M)
	return float64(spec.Iters) * (perSweep + halo), nil
}
