package apps

import (
	"fmt"
	"math/rand"
)

// SyntheticSpec controls random CM2 program generation — the paper's
// "synthetic benchmarks, which employ a representative subset of the
// operations provided by the CM2", used to verify the generality of the
// execution-time model beyond SOR and Gaussian elimination.
type SyntheticSpec struct {
	// Seed makes the program reproducible.
	Seed int64
	// Segments is the number of serial→parallel phases.
	Segments int
	// SerialMeanOps is the mean serial scalar work per segment (ops).
	SerialMeanOps float64
	// ParallelMean is the mean parallel instruction duration (seconds).
	ParallelMean float64
	// Burstiness in [0,1) controls how unevenly work spreads across
	// segments (0 = uniform).
	Burstiness float64
	// SyncEvery inserts a reduction (front-end waits for the back-end)
	// every n-th segment; 0 disables.
	SyncEvery int
}

// Validate checks the spec.
func (s SyntheticSpec) Validate() error {
	if s.Segments < 1 {
		return fmt.Errorf("apps: synthetic segments %d must be ≥ 1", s.Segments)
	}
	if s.SerialMeanOps < 0 || s.ParallelMean < 0 {
		return fmt.Errorf("apps: negative synthetic means (%v ops, %v s)", s.SerialMeanOps, s.ParallelMean)
	}
	if s.Burstiness < 0 || s.Burstiness >= 1 {
		return fmt.Errorf("apps: burstiness %v out of [0,1)", s.Burstiness)
	}
	if s.SyncEvery < 0 {
		return fmt.Errorf("apps: negative sync interval %d", s.SyncEvery)
	}
	return nil
}

// DefaultSyntheticSpec returns a mid-weight program skeleton.
func DefaultSyntheticSpec(seed int64) SyntheticSpec {
	return SyntheticSpec{
		Seed:          seed,
		Segments:      80,
		SerialMeanOps: 2000,
		ParallelMean:  2e-3,
		Burstiness:    0.5,
		SyncEvery:     16,
	}
}

// SyntheticCM2Program generates a reproducible random CM2 program from
// the spec. Serial and parallel weights are drawn independently so the
// serial/parallel balance varies across programs — exactly the
// dimension along which the max() execution law must stay accurate.
func SyntheticCM2Program(spec SyntheticSpec) (CM2Program, error) {
	if err := spec.Validate(); err != nil {
		return CM2Program{}, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	jitter := func(mean float64) float64 {
		if mean == 0 {
			return 0
		}
		// Uniform in [mean(1-b), mean(1+3b)]: right-skewed for b > 0.
		lo := mean * (1 - spec.Burstiness)
		hi := mean * (1 + 3*spec.Burstiness)
		return lo + rng.Float64()*(hi-lo)
	}
	segs := make([]Segment, 0, spec.Segments)
	for i := 0; i < spec.Segments; i++ {
		segs = append(segs, Segment{
			Serial:   jitter(spec.SerialMeanOps) / SunOpsRate,
			Parallel: jitter(spec.ParallelMean),
		})
	}
	prog := CM2Program{
		Name:     fmt.Sprintf("synthetic-%d", spec.Seed),
		Segments: segs,
	}
	if spec.SyncEvery > 0 {
		prog.SyncEvery = spec.SyncEvery
	}
	return prog, nil
}
