// Package calibrate is the paper's "system test suite": it measures the
// system-dependent model parameters once per platform by running
// benchmarks against the (simulated) machine pair — exactly the
// procedure the paper runs against the real Sun/CM2 and Sun/Paragon.
//
//   - α and β per direction come from ping-pong bursts over a grid of
//     message sizes, fitted by linear regression; the piecewise
//     threshold is found by exhaustive search (package stats).
//   - delay^i_comp is the extra delay i CPU-bound generators impose on
//     the ping-pong benchmark.
//   - delay^i_comm is the average of the delays imposed on the
//     ping-pong benchmark by i generators streaming one-word messages
//     Sun→Paragon and Paragon→Sun.
//   - delay^{i,j}_comm is the delay imposed on a CPU-bound application
//     by i generators streaming j-word messages, averaged over both
//     directions, for j in a small calibrated grid (the paper uses
//     {1, 500, 1000}).
//
// These values are static per platform; the run-time slowdown
// calculation only combines them with the current workload.
package calibrate

import (
	"errors"
	"fmt"

	"contention/internal/core"
	"contention/internal/des"
	"contention/internal/platform"
	"contention/internal/stats"
	"contention/internal/workload"
)

// Options controls the calibration suite.
type Options struct {
	// Params is the platform under calibration.
	Params platform.ParagonParams
	// BurstCount is the number of messages per ping-pong burst
	// (the paper uses 1000; smaller values speed the suite up).
	BurstCount int
	// Sizes is the message-size grid for the α/β fit.
	Sizes []int
	// MaxContenders bounds the delay tables (entries for 1..MaxContenders).
	MaxContenders int
	// JGrid lists the message sizes for delay^{i,j} columns.
	JGrid []int
	// ProbeWords is the message size of the ping-pong probe used for
	// the delay measurements.
	ProbeWords int
	// ProbeWork is the CPU-bound probe duration (dedicated seconds)
	// used for delay^{i,j}.
	ProbeWork float64
	// Warmup lets contenders reach steady state before measuring.
	Warmup float64

	// Repeats is the number of measurements taken per point, each with
	// a deterministically jittered probe phase; 0 or 1 keeps the
	// single-shot behavior. The robust aggregation below only has
	// teeth when Repeats > 1.
	Repeats int
	// TrimFraction is trimmed per tail when aggregating repeated
	// measurements (0 = plain mean).
	TrimFraction float64
	// OutlierK rejects samples more than K MAD-equivalent standard
	// deviations from the median before aggregation (≤ 0 disables).
	OutlierK float64
	// BootstrapResamples sizes the bootstrap behind each confidence
	// interval (< 2 disables interval estimation).
	BootstrapResamples int
	// Confidence is the two-sided bootstrap confidence level.
	Confidence float64
	// Seed drives the bootstrap resampler (deterministic).
	Seed int64
}

// DefaultOptions returns the settings used throughout the experiments.
func DefaultOptions(params platform.ParagonParams) Options {
	return Options{
		Params:        params,
		BurstCount:    200,
		Sizes:         []int{16, 32, 64, 128, 256, 384, 512, 640, 768, 896, 1024, 1280, 1536, 2048, 2560, 3072, 4096},
		MaxContenders: 4,
		JGrid:         []int{1, 500, 1000},
		ProbeWords:    256,
		ProbeWork:     2.0,
		Warmup:        0.5,

		Repeats:            1,
		TrimFraction:       0.2,
		OutlierK:           3.5,
		BootstrapResamples: 200,
		Confidence:         0.95,
		Seed:               1,
	}
}

func (o Options) validate() error {
	if o.BurstCount < 2 {
		return fmt.Errorf("calibrate: burst count %d too small", o.BurstCount)
	}
	if len(o.Sizes) < 4 {
		return errors.New("calibrate: need at least 4 message sizes for the piecewise fit")
	}
	if o.MaxContenders < 1 {
		return fmt.Errorf("calibrate: max contenders %d must be ≥ 1", o.MaxContenders)
	}
	if len(o.JGrid) == 0 {
		return errors.New("calibrate: empty j grid")
	}
	if o.ProbeWords < 1 || o.ProbeWork <= 0 {
		return fmt.Errorf("calibrate: invalid probe (%d words, %v s)", o.ProbeWords, o.ProbeWork)
	}
	if o.Warmup < 0 {
		return fmt.Errorf("calibrate: negative warmup %v", o.Warmup)
	}
	if o.Repeats < 0 {
		return fmt.Errorf("calibrate: negative repeats %d", o.Repeats)
	}
	if o.TrimFraction < 0 || o.TrimFraction >= 0.5 {
		return fmt.Errorf("calibrate: trim fraction %v out of [0,0.5)", o.TrimFraction)
	}
	if o.Confidence < 0 || o.Confidence >= 1 {
		return fmt.Errorf("calibrate: confidence %v out of [0,1)", o.Confidence)
	}
	return nil
}

func (o Options) newPlatform() (*des.Kernel, *platform.SunParagon, error) {
	k := des.New()
	sp, err := platform.NewSunParagon(k, o.Params)
	if err != nil {
		return nil, nil, err
	}
	return k, sp, nil
}

// measureBurst runs one ping-pong burst of the given direction and size
// under the contenders installed by setup, returning per-message cost.
func (o Options) measureBurst(dir workload.Direction, words int, setup func(*platform.SunParagon)) (float64, error) {
	return o.measureBurstWarm(dir, words, setup, o.Warmup)
}

// measureBurstWarm is measureBurst with an explicit warmup, which the
// robust pipeline jitters across repeats to decorrelate the probe's
// phase from the contenders' deterministic cycles.
func (o Options) measureBurstWarm(dir workload.Direction, words int, setup func(*platform.SunParagon), warmup float64) (float64, error) {
	k, sp, err := o.newPlatform()
	if err != nil {
		return 0, err
	}
	if setup != nil {
		setup(sp)
	}
	port := "probe"
	var elapsed float64
	switch dir {
	case workload.SunToParagon:
		workload.SpawnPingEcho(sp, port)
		k.Spawn("probe", func(p *des.Proc) {
			if warmup > 0 {
				p.Delay(warmup)
			}
			elapsed = workload.PingPongBurst(p, sp, port, o.BurstCount, words)
			k.Stop() // contenders run forever; end the run with the probe
		})
	case workload.ParagonToSun:
		ctl := workload.BurstServer(sp, "server", port)
		k.Spawn("probe", func(p *des.Proc) {
			if warmup > 0 {
				p.Delay(warmup)
			}
			elapsed = workload.BurstFromParagon(p, sp, ctl, port, o.BurstCount, words)
			k.Stop()
		})
	default:
		return 0, fmt.Errorf("calibrate: unknown direction %d", int(dir))
	}
	k.Run()
	if elapsed <= 0 {
		return 0, fmt.Errorf("calibrate: probe did not finish (dir %v, %d words)", dir, words)
	}
	return elapsed / float64(o.BurstCount), nil
}

// measureCompute runs a CPU-bound probe of ProbeWork dedicated seconds
// under the contenders installed by setup, returning elapsed time.
func (o Options) measureCompute(setup func(*platform.SunParagon)) (float64, error) {
	return o.measureComputeWarm(setup, o.Warmup)
}

// measureComputeWarm is measureCompute with an explicit warmup.
func (o Options) measureComputeWarm(setup func(*platform.SunParagon), warmup float64) (float64, error) {
	k, sp, err := o.newPlatform()
	if err != nil {
		return 0, err
	}
	if setup != nil {
		setup(sp)
	}
	var elapsed float64
	k.Spawn("probe", func(p *des.Proc) {
		if warmup > 0 {
			p.Delay(warmup)
		}
		start := p.Now()
		sp.Host.Compute(p, o.ProbeWork)
		elapsed = p.Now() - start
		k.Stop()
	})
	k.Run()
	if elapsed <= 0 {
		return 0, errors.New("calibrate: compute probe did not finish")
	}
	return elapsed, nil
}

// FitCommModel measures dedicated per-message costs across the size
// grid for one direction and fits the piecewise-linear model.
func (o Options) FitCommModel(dir workload.Direction) (core.CommModel, stats.PiecewiseFit, error) {
	xs := make([]float64, 0, len(o.Sizes))
	ys := make([]float64, 0, len(o.Sizes))
	for _, words := range o.Sizes {
		cost, err := o.measureBurst(dir, words, nil)
		if err != nil {
			return core.CommModel{}, stats.PiecewiseFit{}, err
		}
		xs = append(xs, float64(words))
		ys = append(ys, cost)
	}
	fit, err := stats.FitPiecewise(xs, ys)
	if err != nil {
		return core.CommModel{}, stats.PiecewiseFit{}, err
	}
	model, err := modelFromFit(fit)
	return model, fit, err
}

func modelFromFit(fit stats.PiecewiseFit) (core.CommModel, error) {
	if fit.Small.Slope <= 0 || fit.Large.Slope <= 0 {
		return core.CommModel{}, fmt.Errorf("calibrate: non-positive fitted slope (%v/%v)", fit.Small.Slope, fit.Large.Slope)
	}
	clampAlpha := func(a float64) float64 {
		if a < 0 {
			return 0
		}
		return a
	}
	return core.CommModel{
		Threshold: int(fit.Threshold),
		Small:     core.CommPiece{Alpha: clampAlpha(fit.Small.Intercept), Beta: 1 / fit.Small.Slope},
		Large:     core.CommPiece{Alpha: clampAlpha(fit.Large.Intercept), Beta: 1 / fit.Large.Slope},
	}, nil
}

// spawnStreamers installs i generators that communicate continuously
// (comm fraction 1) with j-word messages in the given direction,
// phase-staggered deterministically.
func spawnStreamers(sp *platform.SunParagon, i, j int, dir workload.Direction) {
	for g := 0; g < i; g++ {
		spec := workload.AlternatorSpec{
			Name:         fmt.Sprintf("gen%d", g),
			CommFraction: 1,
			MsgWords:     j,
			Period:       0.05,
			Phase:        0.013 * float64(g+1),
			Direction:    dir,
		}
		if _, err := workload.SpawnAlternator(sp, spec); err != nil {
			panic(err) // specs are constructed here; invalid ones are bugs
		}
	}
}

// spawnHogs installs i CPU-bound generators.
func spawnHogs(sp *platform.SunParagon, i int) {
	for g := 0; g < i; g++ {
		workload.SpawnCPUHog(sp, fmt.Sprintf("hog%d", g))
	}
}

// MeasureDelayTables runs the contention probes and assembles the
// paper's three delay tables.
func (o Options) MeasureDelayTables() (core.DelayTables, error) {
	dedicated, err := o.measureBurst(workload.SunToParagon, o.ProbeWords, nil)
	if err != nil {
		return core.DelayTables{}, err
	}
	dedicatedComp, err := o.measureCompute(nil)
	if err != nil {
		return core.DelayTables{}, err
	}

	tables := core.DelayTables{CommOnComp: map[int][]float64{}}
	for i := 1; i <= o.MaxContenders; i++ {
		i := i

		// delay^i_comp: CPU-bound generators vs the ping-pong probe.
		contended, err := o.measureBurst(workload.SunToParagon, o.ProbeWords, func(sp *platform.SunParagon) {
			spawnHogs(sp, i)
		})
		if err != nil {
			return core.DelayTables{}, err
		}
		tables.CompOnComm = append(tables.CompOnComm, delayOf(contended, dedicated))

		// delay^i_comm: one-word streamers, both directions, averaged.
		toBack, err := o.measureBurst(workload.SunToParagon, o.ProbeWords, func(sp *platform.SunParagon) {
			spawnStreamers(sp, i, 1, workload.SunToParagon)
		})
		if err != nil {
			return core.DelayTables{}, err
		}
		toHost, err := o.measureBurst(workload.SunToParagon, o.ProbeWords, func(sp *platform.SunParagon) {
			spawnStreamers(sp, i, 1, workload.ParagonToSun)
		})
		if err != nil {
			return core.DelayTables{}, err
		}
		avg := (delayOf(toBack, dedicated) + delayOf(toHost, dedicated)) / 2
		tables.CommOnComm = append(tables.CommOnComm, avg)
	}

	// delay^{i,j}_comm: streamers vs the CPU-bound probe.
	for _, j := range o.JGrid {
		col := make([]float64, 0, o.MaxContenders)
		for i := 1; i <= o.MaxContenders; i++ {
			toBack, err := o.measureCompute(func(sp *platform.SunParagon) {
				spawnStreamers(sp, i, j, workload.SunToParagon)
			})
			if err != nil {
				return core.DelayTables{}, err
			}
			toHost, err := o.measureCompute(func(sp *platform.SunParagon) {
				spawnStreamers(sp, i, j, workload.ParagonToSun)
			})
			if err != nil {
				return core.DelayTables{}, err
			}
			avg := (delayOf(toBack, dedicatedComp) + delayOf(toHost, dedicatedComp)) / 2
			col = append(col, avg)
		}
		tables.CommOnComp[j] = col
	}
	return tables, nil
}

// delayOf converts a contended/dedicated pair into the paper's delay
// term: the extra cost as a fraction of the dedicated cost, floored at
// zero to absorb measurement jitter.
func delayOf(contended, dedicated float64) float64 {
	d := contended/dedicated - 1
	if d < 0 {
		return 0
	}
	return d
}

// Run executes the full suite and returns a ready-to-use calibration.
// It is RunRobust without the confidence annotations; with the default
// Repeats = 1 it reproduces the single-shot suite exactly.
func Run(opts Options) (core.Calibration, error) {
	cal, _, err := RunRobust(opts)
	return cal, err
}
