package calibrate

import (
	"math"
	"testing"

	"contention/internal/core"
	"contention/internal/platform"
	"contention/internal/workload"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func fastOptions() Options {
	o := DefaultOptions(platform.DefaultParagonParams(platform.OneHop))
	o.BurstCount = 50
	o.Sizes = []int{32, 128, 256, 512, 768, 1024, 1536, 2048, 3072, 4096}
	o.MaxContenders = 3
	o.ProbeWork = 0.5
	return o
}

func TestFitCommModelRecoversPlatformParameters(t *testing.T) {
	o := fastOptions()
	model, fit, err := o.FitCommModel(workload.SunToParagon)
	if err != nil {
		t.Fatal(err)
	}
	// The knee must land on the platform MTU.
	if model.Threshold != 1024 {
		t.Fatalf("threshold = %d, want 1024 (fit %+v)", model.Threshold, fit)
	}
	// Small-piece slope = conversion per word + 1/wire bandwidth.
	p := o.Params
	wantSlope := p.SendPerWord + 1/p.Link.Bandwidth
	if got := 1 / model.Small.Beta; math.Abs(got-wantSlope)/wantSlope > 0.05 {
		t.Fatalf("small-piece per-word cost %v, want ≈ %v", got, wantSlope)
	}
	// Small-piece intercept ≈ conversion startup + one packet overhead.
	wantAlpha := p.SendStartup + p.Link.PerPacket
	if math.Abs(model.Small.Alpha-wantAlpha)/wantAlpha > 0.15 {
		t.Fatalf("small-piece α %v, want ≈ %v", model.Small.Alpha, wantAlpha)
	}
	// Past the MTU every extra 1024 words costs another packet, so the
	// large piece's effective per-word cost exceeds the small piece's.
	if 1/model.Large.Beta <= 1/model.Small.Beta {
		t.Fatalf("large piece per-word cost %v not above small %v",
			1/model.Large.Beta, 1/model.Small.Beta)
	}
}

func TestFitCommModelToHostDirection(t *testing.T) {
	o := fastOptions()
	model, _, err := o.FitCommModel(workload.ParagonToSun)
	if err != nil {
		t.Fatal(err)
	}
	if model.Threshold != 1024 {
		t.Fatalf("to-host threshold = %d, want 1024", model.Threshold)
	}
	if err := model.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMeasureDelayTablesShape(t *testing.T) {
	o := fastOptions()
	tables, err := o.MeasureDelayTables()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables.CompOnComm) != o.MaxContenders || len(tables.CommOnComm) != o.MaxContenders {
		t.Fatalf("table lengths %d/%d, want %d", len(tables.CompOnComm), len(tables.CommOnComm), o.MaxContenders)
	}
	for _, j := range o.JGrid {
		if len(tables.CommOnComp[j]) != o.MaxContenders {
			t.Fatalf("CommOnComp[%d] length %d", j, len(tables.CommOnComp[j]))
		}
	}
	// delay^i_comp must grow with i (more hogs, more delay) and be near
	// the CPU-share prediction for the conversion stage: positive and
	// below i (only part of a message's cost is CPU work).
	prev := 0.0
	for i := 1; i <= o.MaxContenders; i++ {
		d := tables.CompOnComm[i-1]
		if d <= prev-0.05 {
			t.Fatalf("delay^%d_comp = %v not increasing (prev %v)", i, d, prev)
		}
		if d > float64(i) {
			t.Fatalf("delay^%d_comp = %v exceeds full CPU-share bound %d", i, d, i)
		}
		prev = d
	}
	// delay^{i,j} must increase with j up to the constant-delay regime.
	for i := 1; i <= o.MaxContenders; i++ {
		d1 := tables.CommOnComp[1][i-1]
		d500 := tables.CommOnComp[500][i-1]
		if d500 < d1-0.05 {
			t.Fatalf("delay^{%d,500} = %v below delay^{%d,1} = %v", i, d500, i, d1)
		}
	}
	if err := tables.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRunProducesValidCalibration(t *testing.T) {
	o := fastOptions()
	cal, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if err := cal.Validate(); err != nil {
		t.Fatal(err)
	}
	if cal.Platform == "" {
		t.Fatal("platform label empty")
	}
	// End-to-end sanity: predictions scale dedicated costs up under load.
	pred, err := core.NewPredictor(cal)
	if err != nil {
		t.Fatal(err)
	}
	sets := []core.DataSet{{N: 100, Words: 200}}
	ded, err := pred.DedicatedComm(core.HostToBack, sets)
	if err != nil {
		t.Fatal(err)
	}
	cs := []core.Contender{{CommFraction: 0.25, MsgWords: 200}, {CommFraction: 0.76, MsgWords: 200}}
	contended, err := pred.PredictComm(core.HostToBack, sets, cs)
	if err != nil {
		t.Fatal(err)
	}
	if contended <= ded {
		t.Fatalf("contended prediction %v not above dedicated %v", contended, ded)
	}
}

func TestOptionsValidation(t *testing.T) {
	params := platform.DefaultParagonParams(platform.OneHop)
	bad := []Options{
		{Params: params, BurstCount: 1, Sizes: []int{1, 2, 3, 4}, MaxContenders: 1, JGrid: []int{1}, ProbeWords: 1, ProbeWork: 1},
		{Params: params, BurstCount: 10, Sizes: []int{1, 2}, MaxContenders: 1, JGrid: []int{1}, ProbeWords: 1, ProbeWork: 1},
		{Params: params, BurstCount: 10, Sizes: []int{1, 2, 3, 4}, MaxContenders: 0, JGrid: []int{1}, ProbeWords: 1, ProbeWork: 1},
		{Params: params, BurstCount: 10, Sizes: []int{1, 2, 3, 4}, MaxContenders: 1, JGrid: nil, ProbeWords: 1, ProbeWork: 1},
		{Params: params, BurstCount: 10, Sizes: []int{1, 2, 3, 4}, MaxContenders: 1, JGrid: []int{1}, ProbeWords: 0, ProbeWork: 1},
		{Params: params, BurstCount: 10, Sizes: []int{1, 2, 3, 4}, MaxContenders: 1, JGrid: []int{1}, ProbeWords: 1, ProbeWork: 1, Warmup: -1},
	}
	for i, o := range bad {
		if _, err := Run(o); err == nil {
			t.Errorf("case %d did not error", i)
		}
	}
}

func TestCalibrateCM2RecoversParameters(t *testing.T) {
	params := platform.DefaultCM2Params()
	model, err := CalibrateCM2(DefaultCM2Options(params))
	if err != nil {
		t.Fatal(err)
	}
	// Ground truth: per-message CPU work α = XferStartup,
	// per-word 1/β = XferPerWord (host speed 1).
	wantBeta := 1 / params.XferPerWord
	if math.Abs(model.Small.Beta-wantBeta)/wantBeta > 0.01 {
		t.Fatalf("β = %v, want ≈ %v", model.Small.Beta, wantBeta)
	}
	if math.Abs(model.Small.Alpha-params.XferStartup)/params.XferStartup > 0.05 {
		t.Fatalf("α = %v, want ≈ %v", model.Small.Alpha, params.XferStartup)
	}
}

func TestCalibrateCM2Validation(t *testing.T) {
	params := platform.DefaultCM2Params()
	if _, err := CalibrateCM2(CM2Options{Params: params, BigWords: 10, SmallCount: 1000}); err == nil {
		t.Fatal("tiny big benchmark accepted")
	}
	if _, err := CalibrateCM2(CM2Options{Params: params, BigWords: 1e6, SmallCount: 10}); err == nil {
		t.Fatal("tiny small benchmark accepted")
	}
}
