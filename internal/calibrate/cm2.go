package calibrate

import (
	"errors"
	"fmt"

	"contention/internal/core"
	"contention/internal/des"
	"contention/internal/platform"
)

// CM2Options controls the Sun/CM2 calibration benchmarks.
type CM2Options struct {
	Params platform.CM2Params
	// BigWords is the large-array benchmark size (the paper uses 10⁶).
	BigWords int
	// SmallCount is the number of one-word arrays in the startup
	// benchmark (the paper uses 10⁶; scaled down for simulation speed —
	// per-message cost is what matters, and it is count-invariant here).
	SmallCount int
}

// DefaultCM2Options returns the suite defaults.
func DefaultCM2Options(params platform.CM2Params) CM2Options {
	return CM2Options{Params: params, BigWords: 1e6, SmallCount: 1e4}
}

// CalibrateCM2 measures the Sun/CM2 communication model by the paper's
// two benchmarks:
//
//  1. Transfer one array of BigWords words; with startup negligible at
//     that size, β ≈ BigWords / elapsed.
//  2. Transfer SmallCount one-word arrays; the per-array cost minus the
//     one-word payload time gives α.
//
// Both run in dedicated mode on a fresh simulated platform.
func CalibrateCM2(opts CM2Options) (core.CommModel, error) {
	if opts.BigWords < 1000 {
		return core.CommModel{}, fmt.Errorf("calibrate: big benchmark %d words too small", opts.BigWords)
	}
	if opts.SmallCount < 100 {
		return core.CommModel{}, fmt.Errorf("calibrate: small benchmark count %d too small", opts.SmallCount)
	}

	// Benchmark 1: one large array.
	big, err := cm2Elapsed(opts.Params, func(p *des.Proc, plat *platform.SunCM2) {
		plat.Transfer(p, opts.BigWords)
	})
	if err != nil {
		return core.CommModel{}, err
	}

	// Benchmark 2: many one-word arrays.
	small, err := cm2Elapsed(opts.Params, func(p *des.Proc, plat *platform.SunCM2) {
		plat.TransferMessages(p, opts.SmallCount, 1)
	})
	if err != nil {
		return core.CommModel{}, err
	}

	beta := float64(opts.BigWords) / big
	perSmall := small / float64(opts.SmallCount)
	alpha := perSmall - 1/beta
	if alpha < 0 {
		alpha = 0
	}
	if beta <= 0 {
		return core.CommModel{}, errors.New("calibrate: non-positive fitted CM2 bandwidth")
	}
	return core.Uniform(alpha, beta), nil
}

func cm2Elapsed(params platform.CM2Params, body func(*des.Proc, *platform.SunCM2)) (float64, error) {
	k := des.New()
	plat, err := platform.NewSunCM2(k, params)
	if err != nil {
		return 0, err
	}
	elapsed := -1.0
	k.Spawn("bench", func(p *des.Proc) {
		start := p.Now()
		body(p, plat)
		elapsed = p.Now() - start
	})
	k.Run()
	if elapsed < 0 {
		return 0, errors.New("calibrate: CM2 benchmark did not finish")
	}
	return elapsed, nil
}
