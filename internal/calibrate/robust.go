package calibrate

import (
	"fmt"
	"math/rand"

	"contention/internal/core"
	"contention/internal/platform"
	"contention/internal/stats"
	"contention/internal/workload"
)

// The robust estimation layer of the calibration suite: every model
// parameter is measured Repeats times with a deterministically
// jittered probe phase, MAD-filtered, aggregated by trimmed mean, and
// annotated with a bootstrap confidence interval. With Repeats = 1 the
// pipeline degenerates exactly to the single-shot suite.

// PieceCI carries confidence intervals for one comm-model piece.
type PieceCI struct {
	Alpha stats.Interval
	Beta  stats.Interval
}

// CommCI carries confidence intervals for a piecewise comm model.
type CommCI struct {
	Small PieceCI
	Large PieceCI
}

// Confidence annotates every fitted parameter of a calibration with a
// bootstrap confidence interval, plus aggregation diagnostics. Delay
// intervals are indexed like their tables ([i-1] = i contenders).
type Confidence struct {
	Level            float64
	Repeats          int
	OutliersRejected int

	ToBack CommCI
	ToHost CommCI

	CompOnComm []stats.Interval
	CommOnComm []stats.Interval
	CommOnComp map[int][]stats.Interval
}

// phaseJitter decorrelates repeat r's probe phase from the contenders'
// deterministic cycles: an irrational-looking offset that never aligns
// with the 0.05 s alternator period.
func phaseJitter(r int) float64 { return 0.0137 * float64(r) }

func (o Options) repeats() int {
	if o.Repeats < 1 {
		return 1
	}
	return o.Repeats
}

// aggregate MAD-filters and trim-means one sample set.
func (o Options) aggregate(samples []float64) (float64, int, error) {
	kept, rejected := stats.RejectOutliersMAD(samples, o.OutlierK)
	if len(kept) == 0 { // all rejected: fall back to the raw median
		return stats.Median(samples), rejected, nil
	}
	v, err := stats.TrimmedMean(kept, o.TrimFraction)
	return v, rejected, err
}

// resampleAgg draws one bootstrap resample of samples and aggregates
// it the same way the point estimate was aggregated.
func (o Options) resampleAgg(samples []float64, rng *rand.Rand) float64 {
	buf := make([]float64, len(samples))
	for i := range buf {
		buf[i] = samples[rng.Intn(len(samples))]
	}
	v, _, err := o.aggregate(buf)
	if err != nil { // can't happen for non-empty buf; be safe
		return stats.Median(buf)
	}
	return v
}

// interval turns a slice of bootstrap statistics into a confidence
// interval at the configured level.
func (o Options) interval(vals []float64) stats.Interval {
	if len(vals) < 2 {
		return stats.Interval{}
	}
	lo, errLo := stats.Quantile(vals, (1-o.Confidence)/2)
	hi, errHi := stats.Quantile(vals, (1+o.Confidence)/2)
	if errLo != nil || errHi != nil {
		return stats.Interval{}
	}
	return stats.Interval{Lo: lo, Hi: hi}
}

func (o Options) bootstrapOn() bool {
	return o.BootstrapResamples >= 2 && o.Confidence > 0
}

// sampleBurst measures one (direction, size, contender-setup) point
// Repeats times with jittered probe phase.
func (o Options) sampleBurst(dir workload.Direction, words int, setup func(*platform.SunParagon)) ([]float64, error) {
	out := make([]float64, 0, o.repeats())
	for r := 0; r < o.repeats(); r++ {
		cost, err := o.measureBurstWarm(dir, words, setup, o.Warmup+phaseJitter(r))
		if err != nil {
			return nil, err
		}
		out = append(out, cost)
	}
	return out, nil
}

// sampleCompute is the CPU-probe analogue of sampleBurst.
func (o Options) sampleCompute(setup func(*platform.SunParagon)) ([]float64, error) {
	out := make([]float64, 0, o.repeats())
	for r := 0; r < o.repeats(); r++ {
		elapsed, err := o.measureComputeWarm(setup, o.Warmup+phaseJitter(r))
		if err != nil {
			return nil, err
		}
		out = append(out, elapsed)
	}
	return out, nil
}

// fitCommModelRobust measures the size grid with repeats, fits the
// piecewise model on the aggregated points, and bootstraps α/β
// intervals by refitting resampled aggregates.
func (o Options) fitCommModelRobust(dir workload.Direction, rng *rand.Rand) (core.CommModel, CommCI, int, error) {
	xs := make([]float64, len(o.Sizes))
	ys := make([]float64, len(o.Sizes))
	sampleSets := make([][]float64, len(o.Sizes))
	rejected := 0
	for i, words := range o.Sizes {
		samples, err := o.sampleBurst(dir, words, nil)
		if err != nil {
			return core.CommModel{}, CommCI{}, 0, err
		}
		v, rej, err := o.aggregate(samples)
		if err != nil {
			return core.CommModel{}, CommCI{}, 0, err
		}
		xs[i] = float64(words)
		ys[i] = v
		sampleSets[i] = samples
		rejected += rej
	}
	fit, err := stats.FitPiecewise(xs, ys)
	if err != nil {
		return core.CommModel{}, CommCI{}, 0, err
	}
	model, err := modelFromFit(fit)
	if err != nil {
		return core.CommModel{}, CommCI{}, 0, err
	}
	ci := CommCI{}
	if o.bootstrapOn() {
		var aS, bS, aL, bL []float64
		bys := make([]float64, len(xs))
		for b := 0; b < o.BootstrapResamples; b++ {
			for i := range sampleSets {
				bys[i] = o.resampleAgg(sampleSets[i], rng)
			}
			bfit, err := stats.FitPiecewise(xs, bys)
			if err != nil {
				continue
			}
			bmodel, err := modelFromFit(bfit)
			if err != nil {
				continue
			}
			aS = append(aS, bmodel.Small.Alpha)
			bS = append(bS, bmodel.Small.Beta)
			aL = append(aL, bmodel.Large.Alpha)
			bL = append(bL, bmodel.Large.Beta)
		}
		ci.Small = PieceCI{Alpha: o.interval(aS), Beta: o.interval(bS)}
		ci.Large = PieceCI{Alpha: o.interval(aL), Beta: o.interval(bL)}
	}
	return model, ci, rejected, nil
}

// delayPoint aggregates a contended/dedicated sample-set pair into one
// delay entry plus its bootstrap interval. Both sample sets are
// resampled jointly so the interval reflects uncertainty in both.
func (o Options) delayPoint(contended, dedicated []float64, rng *rand.Rand) (float64, stats.Interval, int, error) {
	aggC, rejC, err := o.aggregate(contended)
	if err != nil {
		return 0, stats.Interval{}, 0, err
	}
	aggD, rejD, err := o.aggregate(dedicated)
	if err != nil {
		return 0, stats.Interval{}, 0, err
	}
	val := delayOf(aggC, aggD)
	iv := stats.Interval{}
	if o.bootstrapOn() {
		vals := make([]float64, 0, o.BootstrapResamples)
		for b := 0; b < o.BootstrapResamples; b++ {
			vals = append(vals, delayOf(o.resampleAgg(contended, rng), o.resampleAgg(dedicated, rng)))
		}
		iv = o.interval(vals)
	}
	return val, iv, rejC + rejD, nil
}

// delayPairPoint is delayPoint over a direction-averaged pair of
// contended sample sets (the paper averages Sun→Paragon and
// Paragon→Sun).
func (o Options) delayPairPoint(toBack, toHost, dedicated []float64, rng *rand.Rand) (float64, stats.Interval, int, error) {
	aggTB, rejTB, err := o.aggregate(toBack)
	if err != nil {
		return 0, stats.Interval{}, 0, err
	}
	aggTH, rejTH, err := o.aggregate(toHost)
	if err != nil {
		return 0, stats.Interval{}, 0, err
	}
	aggD, rejD, err := o.aggregate(dedicated)
	if err != nil {
		return 0, stats.Interval{}, 0, err
	}
	val := (delayOf(aggTB, aggD) + delayOf(aggTH, aggD)) / 2
	iv := stats.Interval{}
	if o.bootstrapOn() {
		vals := make([]float64, 0, o.BootstrapResamples)
		for b := 0; b < o.BootstrapResamples; b++ {
			d := o.resampleAgg(dedicated, rng)
			vals = append(vals, (delayOf(o.resampleAgg(toBack, rng), d)+delayOf(o.resampleAgg(toHost, rng), d))/2)
		}
		iv = o.interval(vals)
	}
	return val, iv, rejTB + rejTH + rejD, nil
}

// measureDelayTablesRobust runs the contention probes with repeats and
// assembles the delay tables plus per-entry confidence intervals.
func (o Options) measureDelayTablesRobust(rng *rand.Rand, conf *Confidence) (core.DelayTables, error) {
	dedicated, err := o.sampleBurst(workload.SunToParagon, o.ProbeWords, nil)
	if err != nil {
		return core.DelayTables{}, err
	}
	dedicatedComp, err := o.sampleCompute(nil)
	if err != nil {
		return core.DelayTables{}, err
	}

	tables := core.DelayTables{CommOnComp: map[int][]float64{}}
	conf.CommOnComp = map[int][]stats.Interval{}
	for i := 1; i <= o.MaxContenders; i++ {
		i := i

		// delay^i_comp: CPU-bound generators vs the ping-pong probe.
		contended, err := o.sampleBurst(workload.SunToParagon, o.ProbeWords, func(sp *platform.SunParagon) {
			spawnHogs(sp, i)
		})
		if err != nil {
			return core.DelayTables{}, err
		}
		val, iv, rej, err := o.delayPoint(contended, dedicated, rng)
		if err != nil {
			return core.DelayTables{}, err
		}
		tables.CompOnComm = append(tables.CompOnComm, val)
		conf.CompOnComm = append(conf.CompOnComm, iv)
		conf.OutliersRejected += rej

		// delay^i_comm: one-word streamers, both directions, averaged.
		toBack, err := o.sampleBurst(workload.SunToParagon, o.ProbeWords, func(sp *platform.SunParagon) {
			spawnStreamers(sp, i, 1, workload.SunToParagon)
		})
		if err != nil {
			return core.DelayTables{}, err
		}
		toHost, err := o.sampleBurst(workload.SunToParagon, o.ProbeWords, func(sp *platform.SunParagon) {
			spawnStreamers(sp, i, 1, workload.ParagonToSun)
		})
		if err != nil {
			return core.DelayTables{}, err
		}
		val, iv, rej, err = o.delayPairPoint(toBack, toHost, dedicated, rng)
		if err != nil {
			return core.DelayTables{}, err
		}
		tables.CommOnComm = append(tables.CommOnComm, val)
		conf.CommOnComm = append(conf.CommOnComm, iv)
		conf.OutliersRejected += rej
	}

	// delay^{i,j}_comm: streamers vs the CPU-bound probe.
	for _, j := range o.JGrid {
		col := make([]float64, 0, o.MaxContenders)
		ivCol := make([]stats.Interval, 0, o.MaxContenders)
		for i := 1; i <= o.MaxContenders; i++ {
			toBack, err := o.sampleCompute(func(sp *platform.SunParagon) {
				spawnStreamers(sp, i, j, workload.SunToParagon)
			})
			if err != nil {
				return core.DelayTables{}, err
			}
			toHost, err := o.sampleCompute(func(sp *platform.SunParagon) {
				spawnStreamers(sp, i, j, workload.ParagonToSun)
			})
			if err != nil {
				return core.DelayTables{}, err
			}
			val, iv, rej, err := o.delayPairPoint(toBack, toHost, dedicatedComp, rng)
			if err != nil {
				return core.DelayTables{}, err
			}
			col = append(col, val)
			ivCol = append(ivCol, iv)
			conf.OutliersRejected += rej
		}
		tables.CommOnComp[j] = col
		conf.CommOnComp[j] = ivCol
	}
	return tables, nil
}

// RunRobust executes the full suite with robust estimation and returns
// the calibration together with per-parameter confidence intervals.
func RunRobust(opts Options) (core.Calibration, *Confidence, error) {
	if err := opts.validate(); err != nil {
		return core.Calibration{}, nil, err
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	conf := &Confidence{Level: opts.Confidence, Repeats: opts.repeats()}

	toBack, ciBack, rejB, err := opts.fitCommModelRobust(workload.SunToParagon, rng)
	if err != nil {
		return core.Calibration{}, nil, err
	}
	toHost, ciHost, rejH, err := opts.fitCommModelRobust(workload.ParagonToSun, rng)
	if err != nil {
		return core.Calibration{}, nil, err
	}
	conf.ToBack, conf.ToHost = ciBack, ciHost
	conf.OutliersRejected += rejB + rejH

	tables, err := opts.measureDelayTablesRobust(rng, conf)
	if err != nil {
		return core.Calibration{}, nil, err
	}
	cal := core.Calibration{
		ToBack:   toBack,
		ToHost:   toHost,
		Tables:   tables,
		Platform: fmt.Sprintf("sun/paragon (%v)", opts.Params.Mode),
	}
	if err := cal.Validate(); err != nil {
		return core.Calibration{}, nil, err
	}
	return cal, conf, nil
}
