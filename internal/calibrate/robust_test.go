package calibrate

import (
	"testing"

	"contention/internal/core"
	"contention/internal/stats"
	"contention/internal/workload"
)

func robustOptions() Options {
	o := fastOptions()
	o.MaxContenders = 2
	o.Repeats = 3
	o.BootstrapResamples = 60
	return o
}

func checkInterval(t *testing.T, name string, iv stats.Interval, point float64) {
	t.Helper()
	if iv.Lo > iv.Hi {
		t.Fatalf("%s: interval inverted [%v, %v]", name, iv.Lo, iv.Hi)
	}
	// Degenerate (zero-width) intervals are legitimate when every repeat
	// agrees — the simulator is deterministic for uncontended probes —
	// but a non-degenerate interval must bracket its point estimate.
	if iv.Width() > 0 && !iv.Contains(point) {
		t.Fatalf("%s: point %v outside CI [%v, %v]", name, point, iv.Lo, iv.Hi)
	}
}

func TestRunRobustProducesIntervals(t *testing.T) {
	o := robustOptions()
	cal, conf, err := RunRobust(o)
	if err != nil {
		t.Fatal(err)
	}
	if err := cal.Validate(); err != nil {
		t.Fatal(err)
	}
	if conf.Repeats != 3 || conf.Level != o.Confidence {
		t.Fatalf("confidence metadata %+v", conf)
	}

	checkInterval(t, "ToBack.Small.Alpha", conf.ToBack.Small.Alpha, cal.ToBack.Small.Alpha)
	checkInterval(t, "ToBack.Small.Beta", conf.ToBack.Small.Beta, cal.ToBack.Small.Beta)
	checkInterval(t, "ToBack.Large.Alpha", conf.ToBack.Large.Alpha, cal.ToBack.Large.Alpha)
	checkInterval(t, "ToBack.Large.Beta", conf.ToBack.Large.Beta, cal.ToBack.Large.Beta)
	checkInterval(t, "ToHost.Small.Beta", conf.ToHost.Small.Beta, cal.ToHost.Small.Beta)

	if len(conf.CompOnComm) != o.MaxContenders || len(conf.CommOnComm) != o.MaxContenders {
		t.Fatalf("delay CI lengths %d/%d, want %d",
			len(conf.CompOnComm), len(conf.CommOnComm), o.MaxContenders)
	}
	for i := range conf.CompOnComm {
		checkInterval(t, "CompOnComm", conf.CompOnComm[i], cal.Tables.CompOnComm[i])
		checkInterval(t, "CommOnComm", conf.CommOnComm[i], cal.Tables.CommOnComm[i])
	}
	for _, j := range o.JGrid {
		col, ok := conf.CommOnComp[j]
		if !ok || len(col) != o.MaxContenders {
			t.Fatalf("CommOnComp[%d] CI column missing or short: %v", j, col)
		}
		for i := range col {
			checkInterval(t, "CommOnComp", col[i], cal.Tables.CommOnComp[j][i])
		}
	}
}

func TestRunRobustDeterministicForFixedSeed(t *testing.T) {
	o := robustOptions()
	cal1, conf1, err := RunRobust(o)
	if err != nil {
		t.Fatal(err)
	}
	cal2, conf2, err := RunRobust(o)
	if err != nil {
		t.Fatal(err)
	}
	if cal1.ToBack.Small.Beta != cal2.ToBack.Small.Beta {
		t.Fatalf("β differs across identical runs: %v vs %v",
			cal1.ToBack.Small.Beta, cal2.ToBack.Small.Beta)
	}
	if conf1.ToBack.Small.Beta != conf2.ToBack.Small.Beta {
		t.Fatalf("CI differs across identical runs: %+v vs %+v",
			conf1.ToBack.Small.Beta, conf2.ToBack.Small.Beta)
	}
	if cal1.Tables.CompOnComm[0] != cal2.Tables.CompOnComm[0] {
		t.Fatal("delay tables differ across identical runs")
	}
}

func TestRunRobustSingleRepeatMatchesRun(t *testing.T) {
	// Repeats = 1 must degenerate to the single-shot pipeline so the
	// seed calibrations (and every downstream expected value) are
	// unchanged by the robustness layer.
	o := fastOptions()
	single, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	model, _, err := o.FitCommModel(workload.SunToParagon)
	if err != nil {
		t.Fatal(err)
	}
	if single.ToBack != model {
		t.Fatalf("Run comm model %+v differs from single-shot fit %+v", single.ToBack, model)
	}
	pred, err := core.NewPredictor(single)
	if err != nil {
		t.Fatal(err)
	}
	if pred.Stale() != "" {
		t.Fatal("fresh calibration marked stale")
	}
}

func TestRobustOptionValidation(t *testing.T) {
	for _, mod := range []func(*Options){
		func(o *Options) { o.Repeats = -1 },
		func(o *Options) { o.TrimFraction = -0.1 },
		func(o *Options) { o.TrimFraction = 0.5 },
		func(o *Options) { o.Confidence = 1.0 },
		func(o *Options) { o.Confidence = -0.2 },
	} {
		o := fastOptions()
		mod(&o)
		if _, _, err := RunRobust(o); err == nil {
			t.Errorf("invalid robust option accepted: %+v", o)
		}
	}
}
