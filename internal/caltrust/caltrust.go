// Package caltrust is the calibration trust layer: it decides whether
// the constants every prediction hangs off — the piecewise (α, β) comm
// models and the delay tables of Figueira & Berman — can still be
// believed, and what to do when they cannot.
//
// It has four pieces:
//
//   - Invariant validation (Validate): beyond the structural checks in
//     package core, the trust layer enforces physical invariants —
//     delay tables monotone in contender count, comm-model pieces
//     consistent at the breakpoint — reporting violations as the
//     structured core.ValidationReport.
//   - Drift detection (Detector): a two-sided Page-Hinkley/CUSUM test
//     over prediction residuals that flags a platform that has drifted
//     since calibration (the "slowdown factors should be recalculated
//     when the job mix changes" concern of the paper's §4, generalised
//     to platform-parameter drift).
//   - A trust state machine (Tracker): Fresh → Stale on detected
//     drift (flipping the predictor to its p+1 degraded fallback and
//     optionally requesting recalibration), Degraded when the
//     calibration fails validation outright, and back to Fresh when a
//     recalibrated artifact is adopted.
//   - Safe persistence (WriteFile/ReadFile/Store): calibrations are
//     written atomically with a schema version and checksum, and loads
//     reject corrupt, truncated, or incompatibly-versioned files.
package caltrust

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"contention/internal/core"
	"contention/internal/obs"
)

// Trust-layer telemetry: every state transition and drift alarm is
// counted, so a run manifest can report how often trust was lost.
var (
	mDriftAlarms = obs.NewCounter(obs.MetricDriftAlarms,
		"Fresh→Stale drift detections across all trackers")
	mResiduals = obs.NewCounter(obs.MetricResidualsSeen,
		"prediction residuals fed to the drift detectors")
	mTransitions = obs.NewCounterVec(obs.MetricTrustTransitions,
		"tracker trust-state transitions by destination state", "to")
)

// TrustState classifies the active calibration.
type TrustState int

const (
	// Fresh: the calibration validates and no drift has been detected.
	Fresh TrustState = iota
	// Stale: drift detected since calibration; predictions fall back to
	// the conservative p+1 worst case until recalibration.
	Stale
	// Degraded: the calibration fails invariant validation; it should
	// never have been trusted in the first place.
	Degraded
)

// String implements fmt.Stringer.
func (s TrustState) String() string {
	switch s {
	case Fresh:
		return "fresh"
	case Stale:
		return "stale"
	case Degraded:
		return "degraded"
	default:
		return fmt.Sprintf("TrustState(%d)", int(s))
	}
}

// TrackerConfig configures a Tracker.
type TrackerConfig struct {
	// Drift parameterizes the Page-Hinkley residual test.
	Drift DriftConfig
	// Check parameterizes the strict invariant validation.
	Check CheckConfig
	// OnStale, when non-nil, is invoked once at the Fresh→Stale
	// transition — the hook a resource manager uses to request
	// automatic recalibration.
	OnStale func(reason string)
}

// DefaultTrackerConfig returns the settings used by the experiments.
func DefaultTrackerConfig() TrackerConfig {
	return TrackerConfig{Drift: DefaultDriftConfig(), Check: DefaultCheckConfig()}
}

// Tracker binds a predictor to the trust state machine: it validates
// the calibration at adoption, watches prediction residuals for drift,
// and flips the predictor to its degraded fallback when trust is lost.
//
// A Tracker is goroutine-safe: the serving daemon consults State on
// every request while live residuals stream into Observe. The OnStale
// hook is invoked outside the tracker's lock, so it may safely call
// back into the tracker (e.g. Adopt after recalibration).
type Tracker struct {
	cfg TrackerConfig

	mu       sync.Mutex
	pred     *core.Predictor
	det      *Detector
	state    TrustState
	reason   string
	observed int
}

// NewTracker builds a tracker around pred. A calibration that fails
// strict validation is adopted in the Degraded state (its predictor is
// marked stale so robust predictions fall back to p+1) rather than
// rejected — the trust layer reports, the caller decides.
func NewTracker(pred *core.Predictor, cfg TrackerConfig) (*Tracker, error) {
	if pred == nil {
		return nil, errors.New("caltrust: nil predictor")
	}
	det, err := NewDetector(cfg.Drift)
	if err != nil {
		return nil, err
	}
	t := &Tracker{cfg: cfg, pred: pred, det: det}
	t.mu.Lock()
	t.adopt(pred)
	t.mu.Unlock()
	return t, nil
}

// adopt installs pred and derives the initial trust state from strict
// validation. Caller holds t.mu.
func (t *Tracker) adopt(pred *core.Predictor) {
	t.pred = pred
	t.det.Reset()
	t.observed = 0
	report := Validate(pred.Calibration(), t.cfg.Check)
	if fatal := report.Fatal(); len(fatal) > 0 {
		t.state = Degraded
		t.reason = fatal[0].String()
		pred.MarkStale(t.reason)
		mTransitions.With(Degraded.String()).Inc()
		return
	}
	t.state = Fresh
	t.reason = ""
	pred.ClearStale()
	mTransitions.With(Fresh.String()).Inc()
}

// State returns the current trust state.
func (t *Tracker) State() TrustState {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.state
}

// Reason explains a non-Fresh state ("" when Fresh).
func (t *Tracker) Reason() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.reason
}

// Predictor returns the tracked predictor.
func (t *Tracker) Predictor() *core.Predictor {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.pred
}

// Observed reports how many residuals have been fed in since the last
// adoption.
func (t *Tracker) Observed() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.observed
}

// DriftStat exposes the detector's current Page-Hinkley statistic.
func (t *Tracker) DriftStat() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.det.Stat()
}

// Observe feeds one predicted/observed cost pair (same units, both
// positive and finite) into the drift detector. It returns true at the
// Fresh→Stale transition: the predictor is marked stale — flipping its
// Robust predictions to the p+1 fallback — and the OnStale hook fires.
// Non-finite or non-positive inputs are rejected with an error and do
// not reach the detector.
func (t *Tracker) Observe(predicted, observed float64) (bool, error) {
	if !(predicted > 0) || math.IsInf(predicted, 0) {
		return false, fmt.Errorf("caltrust: predicted cost %v must be positive and finite", predicted)
	}
	if !(observed > 0) || math.IsInf(observed, 0) {
		return false, fmt.Errorf("caltrust: observed cost %v must be positive and finite", observed)
	}
	t.mu.Lock()
	t.observed++
	mResiduals.Inc()
	residual := observed/predicted - 1
	drifted, err := t.det.Add(residual)
	if err != nil {
		t.mu.Unlock()
		return false, err
	}
	if drifted && t.state == Fresh {
		t.state = Stale
		t.reason = fmt.Sprintf("drift detected after %d observations (residual %+.3f, PH stat %.3f > λ %.3f)",
			t.observed, residual, t.det.Stat(), t.cfg.Drift.Lambda)
		reason := t.reason
		mDriftAlarms.Inc()
		mTransitions.With(Stale.String()).Inc()
		t.pred.MarkStale(reason)
		t.mu.Unlock()
		if t.cfg.OnStale != nil {
			t.cfg.OnStale(reason)
		}
		return true, nil
	}
	t.mu.Unlock()
	return false, nil
}

// Adopt swaps in a predictor built from a fresh calibration (after
// recalibration), resets the drift detector, and re-derives the trust
// state from validation — Fresh when the new artifact is clean. The
// superseded predictor is marked stale, which also invalidates any
// precomputed surface attached to it: anything still holding the old
// predictor degrades to the p+1 fallback instead of serving values
// from a calibration that has been replaced.
func (t *Tracker) Adopt(pred *core.Predictor) error {
	if pred == nil {
		return errors.New("caltrust: nil predictor")
	}
	t.mu.Lock()
	old := t.pred
	t.adopt(pred)
	t.mu.Unlock()
	if old != nil && old != pred {
		old.MarkStale("superseded by recalibration")
	}
	return nil
}
