package caltrust

import (
	"math"
	"strings"
	"testing"

	"contention/internal/core"
)

func goodCalibration() core.Calibration {
	return core.Calibration{
		ToBack: core.CommModel{Threshold: 1024,
			Small: core.CommPiece{Alpha: 1e-3, Beta: 2.5e5},
			Large: core.CommPiece{Alpha: 2e-3, Beta: 2.8e5}},
		ToHost: core.Uniform(1.2e-3, 3e5),
		Tables: core.DelayTables{
			CompOnComm: []float64{0.9, 1.8, 2.7, 3.5},
			CommOnComm: []float64{0.5, 1.1, 1.6, 2.2},
			CommOnComp: map[int][]float64{1: {0.1, 0.2, 0.3}, 500: {0.4, 0.8, 1.2}},
		},
		Platform: "test",
	}
}

func TestValidateAcceptsGoodCalibration(t *testing.T) {
	report := Validate(goodCalibration(), DefaultCheckConfig())
	if !report.OK() {
		t.Fatalf("good calibration rejected:\n%s", report)
	}
}

func TestValidateRejectsNonMonotoneTable(t *testing.T) {
	cal := goodCalibration()
	cal.Tables.CompOnComm = []float64{2.0, 0.4, 2.5, 3.0} // big dip at i=2
	report := Validate(cal, DefaultCheckConfig())
	if report.OK() {
		t.Fatal("non-monotone delay table passed strict validation")
	}
	found := false
	for _, v := range report.Fatal() {
		if v.Path == "Tables.CompOnComm[1]" {
			found = true
		}
	}
	if !found {
		t.Fatalf("violation not located at Tables.CompOnComm[1]:\n%s", report)
	}
	// A dip within the slack is absorbed as measurement jitter.
	cal.Tables.CompOnComm = []float64{2.0, 1.95, 2.5, 3.0}
	if report := Validate(cal, DefaultCheckConfig()); !report.OK() {
		t.Fatalf("jitter-sized dip rejected:\n%s", report)
	}
}

func TestValidateWarnsOnInconsistentBreakpoint(t *testing.T) {
	cal := goodCalibration()
	// Large piece prices a threshold-sized message at ~4x the small piece.
	cal.ToBack.Large = core.CommPiece{Alpha: 0.012, Beta: 2.8e5}
	report := Validate(cal, DefaultCheckConfig())
	if !report.OK() {
		t.Fatalf("breakpoint mismatch should be advisory, got fatal:\n%s", report)
	}
	warned := false
	for _, v := range report.Violations {
		if v.Warn && v.Path == "ToBack.Threshold" {
			warned = true
		}
	}
	if !warned {
		t.Fatalf("no breakpoint warning emitted:\n%s", report)
	}
}

func TestDetectorFiresOnSustainedShift(t *testing.T) {
	d, err := NewDetector(DefaultDriftConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Clean residuals: small zero-mean noise must not fire.
	noise := []float64{0.01, -0.02, 0.015, -0.01, 0.02, -0.015, 0.01, -0.005}
	for _, x := range noise {
		fired, err := d.Add(x)
		if err != nil {
			t.Fatal(err)
		}
		if fired {
			t.Fatalf("detector fired on noise (stat %.3f)", d.Stat())
		}
	}
	// Sustained +60% shift: must fire within a handful of samples.
	firedAt := -1
	for i := 0; i < 10; i++ {
		fired, err := d.Add(0.6)
		if err != nil {
			t.Fatal(err)
		}
		if fired {
			firedAt = i
			break
		}
	}
	if firedAt < 0 {
		t.Fatal("detector never fired on a sustained 60% shift")
	}
	if firedAt > 4 {
		t.Fatalf("detection took %d shifted samples, want ≤ 4", firedAt+1)
	}
	if !d.Drifted() {
		t.Fatal("Drifted() false after firing")
	}
	d.Reset()
	if d.Drifted() || d.N() != 0 {
		t.Fatal("Reset did not clear the detector")
	}
}

func TestDetectorTwoSided(t *testing.T) {
	d, err := NewDetector(DefaultDriftConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := d.Add(0.0); err != nil {
			t.Fatal(err)
		}
	}
	fired := false
	for i := 0; i < 10; i++ {
		f, err := d.Add(-0.6) // platform got faster: model now over-predicts
		if err != nil {
			t.Fatal(err)
		}
		if f {
			fired = true
			break
		}
	}
	if !fired {
		t.Fatal("downward drift not detected")
	}
}

func TestDetectorRejectsNonFinite(t *testing.T) {
	d, err := NewDetector(DefaultDriftConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, err := d.Add(bad); err == nil {
			t.Fatalf("Add(%v) did not error", bad)
		}
	}
	if d.N() != 0 {
		t.Fatalf("rejected residuals were counted: n=%d", d.N())
	}
}

func TestTrackerLifecycle(t *testing.T) {
	pred, err := core.NewPredictor(goodCalibration())
	if err != nil {
		t.Fatal(err)
	}
	staleReason := ""
	cfg := DefaultTrackerConfig()
	cfg.OnStale = func(reason string) { staleReason = reason }
	tr, err := NewTracker(pred, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tr.State() != Fresh {
		t.Fatalf("initial state %v, want fresh", tr.State())
	}

	// Healthy residuals keep it fresh.
	for i := 0; i < 5; i++ {
		if _, err := tr.Observe(1.0, 1.01); err != nil {
			t.Fatal(err)
		}
	}
	if tr.State() != Fresh {
		t.Fatalf("state %v after clean residuals, want fresh", tr.State())
	}

	// Sustained 80% under-prediction: drift fires, predictor flips to
	// the degraded fallback, the hook sees the reason.
	flipped := false
	for i := 0; i < 10; i++ {
		d, err := tr.Observe(1.0, 1.8)
		if err != nil {
			t.Fatal(err)
		}
		if d {
			flipped = true
			break
		}
	}
	if !flipped || tr.State() != Stale {
		t.Fatalf("drift not detected (state %v)", tr.State())
	}
	if staleReason == "" || !strings.Contains(staleReason, "drift detected") {
		t.Fatalf("OnStale reason %q", staleReason)
	}
	if pred.Stale() == "" {
		t.Fatal("predictor not marked stale")
	}
	cs := []core.Contender{{CommFraction: 0.5, MsgWords: 200}}
	p, err := pred.PredictCommRobust(core.HostToBack, []core.DataSet{{N: 10, Words: 100}}, cs)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Degraded {
		t.Fatal("stale predictor did not degrade its prediction")
	}

	// Adopting a recalibrated predictor restores trust.
	fresh, err := core.NewPredictor(goodCalibration())
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Adopt(fresh); err != nil {
		t.Fatal(err)
	}
	if tr.State() != Fresh || tr.Observed() != 0 {
		t.Fatalf("post-adopt state %v observed %d, want fresh/0", tr.State(), tr.Observed())
	}
	p2, err := fresh.PredictCommRobust(core.HostToBack, []core.DataSet{{N: 10, Words: 100}}, cs)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Degraded {
		t.Fatalf("recalibrated predictor still degraded: %q", p2.Reason)
	}
}

func TestTrackerDegradedOnInvalidCalibration(t *testing.T) {
	cal := goodCalibration()
	cal.Tables.CompOnComm = []float64{3.0, 0.2, 3.5, 4.0} // grossly non-monotone
	pred := core.NewPredictorLenient(cal)
	tr, err := NewTracker(pred, DefaultTrackerConfig())
	if err != nil {
		t.Fatal(err)
	}
	if tr.State() != Degraded {
		t.Fatalf("state %v for invalid calibration, want degraded", tr.State())
	}
	if tr.Reason() == "" {
		t.Fatal("degraded state carries no reason")
	}
	if pred.Stale() == "" {
		t.Fatal("degraded calibration's predictor not marked stale")
	}
}

func TestTrackerObserveRejectsBadInputs(t *testing.T) {
	pred, err := core.NewPredictor(goodCalibration())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewTracker(pred, DefaultTrackerConfig())
	if err != nil {
		t.Fatal(err)
	}
	bad := [][2]float64{
		{0, 1}, {-1, 1}, {math.NaN(), 1}, {math.Inf(1), 1},
		{1, 0}, {1, -2}, {1, math.NaN()}, {1, math.Inf(1)},
	}
	for _, pair := range bad {
		if _, err := tr.Observe(pair[0], pair[1]); err == nil {
			t.Errorf("Observe(%v, %v) did not error", pair[0], pair[1])
		}
	}
	if tr.Observed() != 0 {
		t.Fatalf("rejected observations were counted: %d", tr.Observed())
	}
}
