package caltrust

import (
	"fmt"
	"math"
)

// DriftConfig parameterizes the Page-Hinkley drift test.
type DriftConfig struct {
	// Delta is the drift allowance: residual excursions below it are
	// absorbed as noise instead of accumulating toward detection.
	Delta float64
	// Lambda is the detection threshold on the cumulative statistic.
	Lambda float64
	// MinSamples is the number of residuals required before detection
	// may fire (the running mean needs a baseline).
	MinSamples int
}

// DefaultDriftConfig detects a sustained ~25% residual shift within a
// couple of observation windows while ignoring isolated noise.
func DefaultDriftConfig() DriftConfig {
	return DriftConfig{Delta: 0.05, Lambda: 0.5, MinSamples: 3}
}

func (c DriftConfig) validate() error {
	if c.Delta < 0 || math.IsNaN(c.Delta) || math.IsInf(c.Delta, 0) {
		return fmt.Errorf("caltrust: drift allowance δ = %v must be non-negative and finite", c.Delta)
	}
	if !(c.Lambda > 0) || math.IsInf(c.Lambda, 0) {
		return fmt.Errorf("caltrust: detection threshold λ = %v must be positive and finite", c.Lambda)
	}
	if c.MinSamples < 1 {
		return fmt.Errorf("caltrust: min samples %d must be ≥ 1", c.MinSamples)
	}
	return nil
}

// Detector is a two-sided Page-Hinkley (CUSUM-family) change detector
// over a residual stream: it accumulates deviations of each residual
// from the running mean beyond the allowance δ and fires when the
// cumulative excursion exceeds λ in either direction. Once fired it
// stays fired until Reset.
type Detector struct {
	cfg  DriftConfig
	n    int
	mean float64
	// Upward test: mUp accumulates (x - mean - δ); the statistic is
	// mUp - min(mUp). Downward is symmetric.
	mUp, minUp     float64
	mDown, maxDown float64
	drifted        bool
}

// NewDetector builds a detector.
func NewDetector(cfg DriftConfig) (*Detector, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Detector{cfg: cfg}, nil
}

// Add feeds one residual. It returns true while the detector considers
// the stream drifted. Non-finite residuals are rejected — they must
// never silently poison the statistic.
func (d *Detector) Add(x float64) (bool, error) {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return d.drifted, fmt.Errorf("caltrust: non-finite residual %v", x)
	}
	d.n++
	d.mean += (x - d.mean) / float64(d.n)
	d.mUp += x - d.mean - d.cfg.Delta
	if d.mUp < d.minUp {
		d.minUp = d.mUp
	}
	d.mDown += x - d.mean + d.cfg.Delta
	if d.mDown > d.maxDown {
		d.maxDown = d.mDown
	}
	if d.n >= d.cfg.MinSamples && d.Stat() > d.cfg.Lambda {
		d.drifted = true
	}
	return d.drifted, nil
}

// Stat returns the current detection statistic: the larger of the
// upward and downward cumulative excursions.
func (d *Detector) Stat() float64 {
	return math.Max(d.mUp-d.minUp, d.maxDown-d.mDown)
}

// Drifted reports whether detection has fired.
func (d *Detector) Drifted() bool { return d.drifted }

// N reports the number of residuals consumed since the last reset.
func (d *Detector) N() int { return d.n }

// Mean reports the running mean residual.
func (d *Detector) Mean() float64 { return d.mean }

// Reset clears all state (after recalibration).
func (d *Detector) Reset() { *d = Detector{cfg: d.cfg} }
