package caltrust

import (
	"testing"

	"contention/internal/core"
	"contention/internal/obs"
)

// TestTrustCountersMove checks the trust layer's telemetry through a
// full lifecycle: adoption lands a fresh transition, every residual is
// tallied, sustained drift fires exactly one alarm with a matching
// stale transition, and re-adoption counts fresh again.
func TestTrustCountersMove(t *testing.T) {
	obs.SetEnabled(true)
	t.Cleanup(func() { obs.SetEnabled(false) })

	fresh0 := mTransitions.With(Fresh.String()).Value()
	stale0 := mTransitions.With(Stale.String()).Value()
	alarms0, res0 := mDriftAlarms.Value(), mResiduals.Value()

	pred, err := core.NewPredictor(goodCalibration())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewTracker(pred, DefaultTrackerConfig())
	if err != nil {
		t.Fatal(err)
	}
	if d := mTransitions.With(Fresh.String()).Value() - fresh0; d != 1 {
		t.Fatalf("fresh transitions moved by %d after adoption, want 1", d)
	}

	// Clean residuals establish the Page-Hinkley baseline; a sustained
	// 80% under-prediction then shifts the mean and fires the alarm.
	fed := int64(0)
	for i := 0; i < 5; i++ {
		if _, err := tr.Observe(1.0, 1.01); err != nil {
			t.Fatal(err)
		}
		fed++
	}
	drifted := false
	for i := 0; i < 20 && !drifted; i++ {
		drifted, err = tr.Observe(1.0, 1.8)
		if err != nil {
			t.Fatal(err)
		}
		fed++
	}
	if !drifted {
		t.Fatal("sustained drift not detected")
	}
	if d := mResiduals.Value() - res0; d != fed {
		t.Fatalf("residual counter moved by %d, want %d", d, fed)
	}
	if d := mDriftAlarms.Value() - alarms0; d != 1 {
		t.Fatalf("drift alarms moved by %d, want 1", d)
	}
	if d := mTransitions.With(Stale.String()).Value() - stale0; d != 1 {
		t.Fatalf("stale transitions moved by %d, want 1", d)
	}

	recal, err := core.NewPredictor(goodCalibration())
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Adopt(recal); err != nil {
		t.Fatal(err)
	}
	if d := mTransitions.With(Fresh.String()).Value() - fresh0; d != 2 {
		t.Fatalf("fresh transitions moved by %d after re-adoption, want 2", d)
	}
}
