package caltrust

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"contention/internal/core"
)

// SchemaVersion is the on-disk calibration envelope schema this build
// reads and writes. Schema 0 denotes a legacy raw-JSON calibration
// (the `calibrate -json` output), accepted on read for compatibility.
const SchemaVersion = 1

// Meta is the creation metadata stamped into a persisted calibration.
type Meta struct {
	// Platform names the calibrated platform (defaults to the
	// calibration's own Platform field).
	Platform string
	// CreatedAt is an RFC3339 timestamp supplied by the caller (kept
	// opaque here so simulated time works too).
	CreatedAt string
	// Note is free-form provenance ("recalibrated after drift @ w=12").
	Note string
}

// Envelope is the on-disk form: schema version, provenance, a checksum
// of the calibration payload, and the payload itself.
type Envelope struct {
	Schema      int             `json:"schema"`
	Platform    string          `json:"platform,omitempty"`
	CreatedAt   string          `json:"created_at,omitempty"`
	Note        string          `json:"note,omitempty"`
	Checksum    string          `json:"checksum"`
	Calibration json.RawMessage `json:"calibration"`
}

// ErrCorrupt is wrapped by load errors caused by a damaged file
// (truncation, bit rot, checksum mismatch) as opposed to version skew.
var ErrCorrupt = errors.New("caltrust: calibration file corrupt")

// ErrSchema is wrapped by load errors caused by an incompatible schema
// version.
var ErrSchema = errors.New("caltrust: incompatible calibration schema")

// checksum hashes the payload in canonical (compacted) JSON form, so
// re-indentation by the envelope encoder — or a pretty-printing editor
// — does not read as corruption while any value change does.
func checksum(payload []byte) (string, error) {
	var compact bytes.Buffer
	if err := json.Compact(&compact, payload); err != nil {
		return "", fmt.Errorf("caltrust: canonicalizing payload: %w", err)
	}
	sum := sha256.Sum256(compact.Bytes())
	return hex.EncodeToString(sum[:]), nil
}

// Encode renders the calibration as a schema-versioned, checksummed
// envelope. It refuses to encode a calibration that fails validation.
func Encode(cal core.Calibration, meta Meta) ([]byte, error) {
	if err := cal.Validate(); err != nil {
		return nil, fmt.Errorf("caltrust: refusing to persist invalid calibration: %w", err)
	}
	payload, err := json.Marshal(cal)
	if err != nil {
		return nil, fmt.Errorf("caltrust: encoding calibration: %w", err)
	}
	if meta.Platform == "" {
		meta.Platform = cal.Platform
	}
	sum, err := checksum(payload)
	if err != nil {
		return nil, err
	}
	env := Envelope{
		Schema:      SchemaVersion,
		Platform:    meta.Platform,
		CreatedAt:   meta.CreatedAt,
		Note:        meta.Note,
		Checksum:    sum,
		Calibration: payload,
	}
	out, err := json.MarshalIndent(env, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("caltrust: encoding envelope: %w", err)
	}
	return append(out, '\n'), nil
}

// Decode parses data written by Encode, verifying schema version and
// checksum before validating the calibration itself. Legacy raw
// calibration JSON (no envelope) is accepted and reported with a
// zero-schema envelope.
func Decode(data []byte) (core.Calibration, Envelope, error) {
	var env Envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return core.Calibration{}, Envelope{}, fmt.Errorf("%w: not valid JSON: %v", ErrCorrupt, err)
	}
	if env.Calibration == nil && env.Checksum == "" {
		// Not an envelope. A legacy raw calibration decodes directly —
		// but only strictly: unknown fields mean "not a calibration".
		dec := json.NewDecoder(bytes.NewReader(data))
		dec.DisallowUnknownFields()
		var cal core.Calibration
		if err := dec.Decode(&cal); err != nil {
			return core.Calibration{}, Envelope{}, fmt.Errorf("%w: neither an envelope nor a raw calibration: %v", ErrCorrupt, err)
		}
		if err := cal.Validate(); err != nil {
			return core.Calibration{}, Envelope{}, fmt.Errorf("caltrust: legacy calibration invalid: %w", err)
		}
		return cal, Envelope{Schema: 0, Platform: cal.Platform}, nil
	}
	if env.Schema != SchemaVersion {
		return core.Calibration{}, Envelope{}, fmt.Errorf("%w: file has schema %d, this build reads %d",
			ErrSchema, env.Schema, SchemaVersion)
	}
	if env.Checksum == "" || env.Calibration == nil {
		return core.Calibration{}, Envelope{}, fmt.Errorf("%w: envelope missing checksum or payload", ErrCorrupt)
	}
	got, err := checksum(env.Calibration)
	if err != nil {
		return core.Calibration{}, Envelope{}, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if got != env.Checksum {
		return core.Calibration{}, Envelope{}, fmt.Errorf("%w: checksum mismatch (stored %.12s…, computed %.12s…)",
			ErrCorrupt, env.Checksum, got)
	}
	var cal core.Calibration
	if err := json.Unmarshal(env.Calibration, &cal); err != nil {
		return core.Calibration{}, Envelope{}, fmt.Errorf("%w: payload does not decode: %v", ErrCorrupt, err)
	}
	if err := cal.Validate(); err != nil {
		return core.Calibration{}, Envelope{}, fmt.Errorf("caltrust: loaded calibration invalid: %w", err)
	}
	return cal, env, nil
}

// writeFileAtomic writes data to path via a temp file in the same
// directory, fsyncs, and renames — a crash mid-write leaves either the
// old file or the new one, never a torn hybrid.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".cal-*.tmp")
	if err != nil {
		return fmt.Errorf("caltrust: creating temp file: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("caltrust: writing %s: %w", tmpName, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("caltrust: syncing %s: %w", tmpName, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("caltrust: closing %s: %w", tmpName, err)
	}
	if err := os.Chmod(tmpName, 0o644); err != nil {
		return fmt.Errorf("caltrust: chmod %s: %w", tmpName, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("caltrust: renaming into place: %w", err)
	}
	return nil
}

// WriteFile persists the calibration to path atomically as a
// schema-versioned, checksummed envelope.
func WriteFile(path string, cal core.Calibration, meta Meta) error {
	data, err := Encode(cal, meta)
	if err != nil {
		return err
	}
	return writeFileAtomic(path, data)
}

// ReadFile loads and verifies a calibration written by WriteFile (or a
// legacy raw `calibrate -json` file).
func ReadFile(path string) (core.Calibration, Envelope, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return core.Calibration{}, Envelope{}, fmt.Errorf("caltrust: reading %s: %w", path, err)
	}
	cal, env, err := Decode(data)
	if err != nil {
		return core.Calibration{}, Envelope{}, fmt.Errorf("%s: %w", path, err)
	}
	return cal, env, nil
}

// Store is a versioned calibration archive: each Save writes an
// immutable cal-vNNNN.json and atomically repoints CURRENT at it, so a
// recalibration can be rolled out (and rolled back) without a window
// in which no valid calibration exists on disk.
type Store struct {
	dir string
}

// NewStore opens (creating if needed) a store rooted at dir.
func NewStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("caltrust: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("caltrust: creating store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) versionPath(v int) string {
	return filepath.Join(s.dir, fmt.Sprintf("cal-v%04d.json", v))
}

const currentName = "CURRENT"

// Versions lists the stored calibration versions, ascending.
func (s *Store) Versions() ([]int, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("caltrust: listing store: %w", err)
	}
	var out []int
	for _, e := range entries {
		var v int
		if _, err := fmt.Sscanf(e.Name(), "cal-v%04d.json", &v); err == nil {
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out, nil
}

// Save persists a new calibration version atomically and repoints
// CURRENT at it, returning the version number.
func (s *Store) Save(cal core.Calibration, meta Meta) (int, error) {
	data, err := Encode(cal, meta)
	if err != nil {
		return 0, err
	}
	versions, err := s.Versions()
	if err != nil {
		return 0, err
	}
	next := 1
	if len(versions) > 0 {
		next = versions[len(versions)-1] + 1
	}
	path := s.versionPath(next)
	if err := writeFileAtomic(path, data); err != nil {
		return 0, err
	}
	if err := writeFileAtomic(filepath.Join(s.dir, currentName), []byte(filepath.Base(path)+"\n")); err != nil {
		return 0, err
	}
	return next, nil
}

// Load reads and verifies one stored version.
func (s *Store) Load(version int) (core.Calibration, Envelope, error) {
	return ReadFile(s.versionPath(version))
}

// Current reads and verifies the version CURRENT points at, returning
// the calibration, its envelope, and the version number.
func (s *Store) Current() (core.Calibration, Envelope, int, error) {
	data, err := os.ReadFile(filepath.Join(s.dir, currentName))
	if err != nil {
		return core.Calibration{}, Envelope{}, 0, fmt.Errorf("caltrust: reading CURRENT: %w", err)
	}
	name := string(bytes.TrimSpace(data))
	var v int
	if _, err := fmt.Sscanf(name, "cal-v%04d.json", &v); err != nil {
		return core.Calibration{}, Envelope{}, 0, fmt.Errorf("%w: CURRENT points at %q", ErrCorrupt, name)
	}
	cal, env, err := s.Load(v)
	if err != nil {
		return core.Calibration{}, Envelope{}, 0, err
	}
	return cal, env, v, nil
}
