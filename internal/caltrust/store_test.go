package caltrust

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"contention/internal/core"
)

func TestWriteReadRoundtrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cal.json")
	cal := goodCalibration()
	meta := Meta{CreatedAt: "1996-08-06T12:00:00Z", Note: "unit test"}
	if err := WriteFile(path, cal, meta); err != nil {
		t.Fatal(err)
	}
	got, env, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if env.Schema != SchemaVersion || env.Platform != "test" || env.Note != "unit test" {
		t.Fatalf("envelope %+v", env)
	}
	if got.Platform != cal.Platform || len(got.Tables.CompOnComm) != len(cal.Tables.CompOnComm) {
		t.Fatalf("roundtrip mismatch: %+v", got)
	}
	// No stray temp files left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries, want 1", len(entries))
	}
}

func TestWriteFileRefusesInvalidCalibration(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cal.json")
	if err := WriteFile(path, core.Calibration{}, Meta{}); err == nil {
		t.Fatal("invalid calibration persisted")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("refused write still created the file")
	}
}

func TestReadFileRejectsTruncated(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cal.json")
	if err := WriteFile(path, goodCalibration(), Meta{}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 1, len(data) / 2, len(data) - 2} {
		trunc := filepath.Join(dir, "trunc.json")
		if err := os.WriteFile(trunc, data[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		_, _, err := ReadFile(trunc)
		if err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation to %d bytes: error %v does not wrap ErrCorrupt", n, err)
		}
	}
}

func TestReadFileRejectsBitRot(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cal.json")
	if err := WriteFile(path, goodCalibration(), Meta{}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one digit inside the payload, keeping valid JSON, so only
	// the checksum can catch it.
	s := string(data)
	idx := strings.Index(s, "0.9")
	if idx < 0 {
		t.Fatalf("marker value not found in %s", s)
	}
	rotted := s[:idx] + "0.8" + s[idx+3:]
	if err := os.WriteFile(path, []byte(rotted), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = ReadFile(path)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bit rot not caught by checksum: %v", err)
	}
}

func TestReadFileRejectsFutureSchema(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cal.json")
	if err := WriteFile(path, goodCalibration(), Meta{}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var env Envelope
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatal(err)
	}
	env.Schema = SchemaVersion + 1
	out, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = ReadFile(path)
	if !errors.Is(err, ErrSchema) {
		t.Fatalf("future schema accepted: %v", err)
	}
}

func TestDecodeLegacyRawCalibration(t *testing.T) {
	raw, err := json.Marshal(goodCalibration())
	if err != nil {
		t.Fatal(err)
	}
	cal, env, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if env.Schema != 0 {
		t.Fatalf("legacy schema %d, want 0", env.Schema)
	}
	if cal.Platform != "test" {
		t.Fatalf("legacy decode lost data: %+v", cal)
	}
	// Arbitrary JSON is not a calibration.
	if _, _, err := Decode([]byte(`{"foo": 1}`)); err == nil {
		t.Fatal("arbitrary JSON decoded as a calibration")
	}
}

func TestStoreVersioning(t *testing.T) {
	store, err := NewStore(filepath.Join(t.TempDir(), "cals"))
	if err != nil {
		t.Fatal(err)
	}
	cal := goodCalibration()
	v1, err := store.Save(cal, Meta{Note: "initial"})
	if err != nil {
		t.Fatal(err)
	}
	cal2 := goodCalibration()
	cal2.Tables.CompOnComm = []float64{1.0, 2.0, 3.0, 4.0}
	v2, err := store.Save(cal2, Meta{Note: "recalibrated"})
	if err != nil {
		t.Fatal(err)
	}
	if v1 != 1 || v2 != 2 {
		t.Fatalf("versions %d, %d, want 1, 2", v1, v2)
	}
	versions, err := store.Versions()
	if err != nil {
		t.Fatal(err)
	}
	if len(versions) != 2 || versions[0] != 1 || versions[1] != 2 {
		t.Fatalf("Versions() = %v", versions)
	}
	cur, env, v, err := store.Current()
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 || env.Note != "recalibrated" || cur.Tables.CompOnComm[0] != 1.0 {
		t.Fatalf("Current() = v%d %+v", v, env)
	}
	// Old versions stay loadable (rollback).
	old, env1, err := store.Load(1)
	if err != nil {
		t.Fatal(err)
	}
	if env1.Note != "initial" || old.Tables.CompOnComm[0] != 0.9 {
		t.Fatalf("Load(1) = %+v %+v", old.Tables.CompOnComm, env1)
	}
}
