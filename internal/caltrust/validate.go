package caltrust

import (
	"fmt"
	"math"

	"contention/internal/core"
)

// CheckConfig parameterizes the strict invariant validation.
type CheckConfig struct {
	// MonotoneSlack is the relative dip tolerated between consecutive
	// delay-table entries before non-monotonicity is fatal: entry i+1
	// may undercut entry i by at most MonotoneSlack·(1 + entry i).
	// Calibration measurements carry jitter; a small dip is noise, a
	// large one means the table is physically impossible (more
	// contenders cannot reduce contention).
	MonotoneSlack float64
	// BreakpointSlack is the relative mismatch tolerated between the
	// two comm-model pieces evaluated at the threshold before the
	// breakpoint is flagged (as a warning: a discontinuous fit predicts
	// inconsistently around the knee but is still usable).
	BreakpointSlack float64
}

// DefaultCheckConfig returns the tolerances used by the experiments.
func DefaultCheckConfig() CheckConfig {
	return CheckConfig{MonotoneSlack: 0.15, BreakpointSlack: 0.35}
}

// Validate runs the trust layer's strict invariant validation over a
// calibration: everything core validates (finite, non-negative, β > 0)
// plus monotone delay tables and consistent comm-model breakpoints.
// All findings are merged into one structured report.
func Validate(cal core.Calibration, cfg CheckConfig) *core.ValidationReport {
	r := cal.ValidateReport()
	checkMonotone(r, "Tables.CompOnComm", cal.Tables.CompOnComm, cfg)
	checkMonotone(r, "Tables.CommOnComm", cal.Tables.CommOnComm, cfg)
	for _, j := range cal.Tables.JGrid() {
		checkMonotone(r, fmt.Sprintf("Tables.CommOnComp[%d]", j), cal.Tables.CommOnComp[j], cfg)
	}
	checkBreakpoint(r, "ToBack", cal.ToBack, cfg)
	checkBreakpoint(r, "ToHost", cal.ToHost, cfg)
	return r
}

// checkMonotone enforces that delays do not decrease with contender
// count beyond the configured slack. Entries already flagged as
// non-finite by the core pass are skipped to avoid duplicate noise.
func checkMonotone(r *core.ValidationReport, path string, xs []float64, cfg CheckConfig) {
	for i := 1; i < len(xs); i++ {
		prev, cur := xs[i-1], xs[i]
		if math.IsNaN(prev) || math.IsNaN(cur) || math.IsInf(prev, 0) || math.IsInf(cur, 0) {
			continue
		}
		if cur < prev-cfg.MonotoneSlack*(1+prev) {
			r.Add(fmt.Sprintf("%s[%d]", path, i),
				"delay %v under %d contenders falls below %v under %d — contention cannot decrease with load",
				cur, i+1, prev, i)
		}
	}
}

// checkBreakpoint flags comm models whose two pieces disagree grossly
// at the threshold (a physically implausible discontinuity in the cost
// of a threshold-sized message).
func checkBreakpoint(r *core.ValidationReport, path string, m core.CommModel, cfg CheckConfig) {
	if m.Validate() != nil {
		return // structural violations already reported by core
	}
	if m.Threshold >= math.MaxInt/2 {
		return // single-piece model: no breakpoint to be inconsistent at
	}
	small := m.Small.Time(m.Threshold)
	large := m.Large.Time(m.Threshold)
	if small <= 0 || large <= 0 {
		return
	}
	if diff := math.Abs(small-large) / math.Max(small, large); diff > cfg.BreakpointSlack {
		r.Warn(path+".Threshold",
			"pieces disagree by %.0f%% at the %d-word breakpoint (%.4g vs %.4g s)",
			100*diff, m.Threshold, small, large)
	}
}
