package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"contention/internal/serve"
)

// TestRouterBinaryWire pins the router's binary wire path end to end:
// a binary-encoded request must route by its affinity key, come back
// 200 with a binary response body, and carry the same predicted value
// as the identical JSON request. Malformed binary bodies must fail at
// the router with the JSON error envelope, not reach a replica.
func TestRouterBinaryWire(t *testing.T) {
	c, err := New(Config{
		Replicas: 2,
		Factory:  InProcessFactory(InProcConfig{Window: 200 * time.Microsecond}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(c.Handler())
	t.Cleanup(func() {
		front.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = c.Shutdown(ctx)
	})

	d := 2.5
	req := &serve.Request{
		Kind:  "comp",
		Dcomp: &d,
		Contenders: []serve.ContenderSpec{
			{CommFraction: 0.3, MsgWords: 400},
			{CommFraction: 0.6, MsgWords: 900},
		},
	}
	jb, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := serve.AppendBinaryRequest(nil, req)
	if err != nil {
		t.Fatal(err)
	}

	// JSON reference answer.
	resp, err := front.Client().Post(front.URL+"/v1/predict", "application/json", bytes.NewReader(jb))
	if err != nil {
		t.Fatal(err)
	}
	var jsonOut serve.Response
	if err := json.NewDecoder(resp.Body).Decode(&jsonOut); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("JSON predict status %d", resp.StatusCode)
	}

	// Binary answers must match bit for bit and arrive with the binary
	// content type.
	for i := 0; i < 5; i++ {
		resp, err := front.Client().Post(front.URL+"/v1/predict", serve.ContentTypeBinary, bytes.NewReader(bb))
		if err != nil {
			t.Fatal(err)
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("binary predict %d: status %d, body %q", i, resp.StatusCode, raw)
		}
		if ct := resp.Header.Get("Content-Type"); ct != serve.ContentTypeBinary {
			t.Fatalf("binary predict %d: content type %q", i, ct)
		}
		out, err := serve.DecodeBinaryResponse(raw)
		if err != nil {
			t.Fatalf("binary predict %d: %v", i, err)
		}
		if math.Float64bits(out.Value) != math.Float64bits(jsonOut.Value) {
			t.Fatalf("binary value %x, JSON value %x", math.Float64bits(out.Value), math.Float64bits(jsonOut.Value))
		}
	}

	// A malformed binary body is rejected at the router as a 400 JSON
	// envelope.
	resp, err = front.Client().Post(front.URL+"/v1/predict", serve.ContentTypeBinary, bytes.NewReader([]byte{0xde, 0xad}))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed binary: status %d, want 400", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("malformed binary: error content type %q, want application/json", ct)
	}
}
