package cluster

import (
	"sync"
	"time"

	"contention/internal/obs"
)

// BreakerState is the circuit state of one replica's breaker.
type BreakerState int32

const (
	// Closed: traffic flows; outcomes feed the rolling error rate.
	Closed BreakerState = iota
	// Open: the replica failed too often; requests are refused locally
	// until the cooldown lapses.
	Open
	// HalfOpen: the cooldown lapsed; a bounded number of probe requests
	// are let through to test recovery.
	HalfOpen
)

// String names the state for logs and metrics labels.
func (s BreakerState) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerConfig parameterizes a Breaker. The zero value selects the
// defaults noted per field.
type BreakerConfig struct {
	// Window is the rolling period the error rate is computed over
	// (default 5s), split into Buckets buckets (default 10).
	Window  time.Duration
	Buckets int
	// MinVolume is the minimum number of outcomes inside the window
	// before the breaker may trip (default 10) — a single failed request
	// against an idle replica is noise, not an outage.
	MinVolume int
	// TripRate is the failure fraction at which Closed trips to Open
	// (default 0.5).
	TripRate float64
	// Cooldown is how long Open refuses traffic before allowing
	// half-open probes (default 1s).
	Cooldown time.Duration
	// HalfOpenProbes is both the concurrent probe allowance in HalfOpen
	// and the consecutive successes required to close (default 2).
	HalfOpenProbes int
	// Now overrides the clock (tests); nil selects time.Now.
	Now func() time.Time
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Window <= 0 {
		c.Window = 5 * time.Second
	}
	if c.Buckets <= 0 {
		c.Buckets = 10
	}
	if c.MinVolume <= 0 {
		c.MinVolume = 10
	}
	if c.TripRate <= 0 || c.TripRate > 1 {
		c.TripRate = 0.5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = time.Second
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 2
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

var mBreakerTrans = obs.NewCounterVec(obs.MetricClusterBreakerTrans,
	"circuit-breaker state transitions, by destination state", "to")

// Breaker is a rolling error-rate circuit breaker: Closed → Open when
// the windowed failure rate crosses TripRate with enough volume, Open →
// HalfOpen after the cooldown, HalfOpen → Closed after consecutive
// successful probes (or straight back to Open on a failed one).
// Goroutine-safe.
type Breaker struct {
	cfg BreakerConfig

	mu      sync.Mutex
	state   BreakerState
	ok      []int64
	fail    []int64
	epoch   int64 // bucket index of the current rotation
	cur     int   // current bucket slot
	opened  time.Time
	probing int // outstanding half-open probes
	probeOK int // consecutive half-open successes
}

// NewBreaker builds a breaker in the Closed state.
func NewBreaker(cfg BreakerConfig) *Breaker {
	cfg = cfg.withDefaults()
	return &Breaker{
		cfg:  cfg,
		ok:   make([]int64, cfg.Buckets),
		fail: make([]int64, cfg.Buckets),
	}
}

func (b *Breaker) bucketDur() time.Duration {
	return b.cfg.Window / time.Duration(b.cfg.Buckets)
}

// rotateLocked advances the bucket ring to now, zeroing buckets that
// aged out of the window.
func (b *Breaker) rotateLocked(now time.Time) {
	e := now.UnixNano() / int64(b.bucketDur())
	if b.epoch == 0 {
		b.epoch = e
		return
	}
	steps := e - b.epoch
	if steps <= 0 {
		return
	}
	if steps > int64(b.cfg.Buckets) {
		steps = int64(b.cfg.Buckets)
	}
	for i := int64(0); i < steps; i++ {
		b.cur = (b.cur + 1) % b.cfg.Buckets
		b.ok[b.cur], b.fail[b.cur] = 0, 0
	}
	b.epoch = e
}

func (b *Breaker) toLocked(s BreakerState) {
	if b.state == s {
		return
	}
	b.state = s
	mBreakerTrans.With(s.String()).Inc()
}

// Allow reports whether a request may be sent to the replica. In
// HalfOpen it also reserves one probe slot, so callers must pair every
// true return with exactly one Record.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.cfg.Now()
	switch b.state {
	case Closed:
		return true
	case Open:
		if now.Sub(b.opened) < b.cfg.Cooldown {
			return false
		}
		b.toLocked(HalfOpen)
		b.probing, b.probeOK = 0, 0
		fallthrough
	default: // HalfOpen
		if b.probing >= b.cfg.HalfOpenProbes {
			return false
		}
		b.probing++
		return true
	}
}

// Forgive releases an Allow() slot without recording an outcome. It is
// the pairing call for attempts whose failure says nothing about the
// replica — the requesting client canceled or disconnected mid-request
// — so the rolling error window stays a measure of replica health, not
// of client behavior. In HalfOpen it frees the reserved probe slot; in
// Closed and Open it is a no-op.
func (b *Breaker) Forgive() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == HalfOpen && b.probing > 0 {
		b.probing--
	}
}

// Record feeds one request outcome back.
func (b *Breaker) Record(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.cfg.Now()
	b.rotateLocked(now)
	if ok {
		b.ok[b.cur]++
	} else {
		b.fail[b.cur]++
	}
	switch b.state {
	case HalfOpen:
		if b.probing > 0 {
			b.probing--
		}
		if !ok {
			b.toLocked(Open)
			b.opened = now
			return
		}
		b.probeOK++
		if b.probeOK >= b.cfg.HalfOpenProbes {
			b.resetLocked()
			b.toLocked(Closed)
		}
	case Closed:
		vol, rate := b.statsLocked()
		if vol >= int64(b.cfg.MinVolume) && rate >= b.cfg.TripRate {
			b.toLocked(Open)
			b.opened = now
		}
	}
}

// resetLocked clears the rolling window (used when closing after a
// successful half-open probe run, so stale failures cannot re-trip).
func (b *Breaker) resetLocked() {
	for i := range b.ok {
		b.ok[i], b.fail[i] = 0, 0
	}
}

func (b *Breaker) statsLocked() (volume int64, failRate float64) {
	var okN, failN int64
	for i := range b.ok {
		okN += b.ok[i]
		failN += b.fail[i]
	}
	volume = okN + failN
	if volume > 0 {
		failRate = float64(failN) / float64(volume)
	}
	return volume, failRate
}

// State reports the current circuit state without side effects (an
// Open breaker whose cooldown has lapsed still reads Open until the
// next Allow performs the transition).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Stats reports the windowed outcome volume and failure rate.
func (b *Breaker) Stats() (volume int64, failRate float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.rotateLocked(b.cfg.Now())
	return b.statsLocked()
}
