package cluster

import (
	"testing"
	"time"
)

// fakeClock drives a breaker deterministically.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1000, 0)}
}
func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func testBreaker(c *fakeClock) *Breaker {
	return NewBreaker(BreakerConfig{
		Window:         time.Second,
		Buckets:        10,
		MinVolume:      10,
		TripRate:       0.5,
		Cooldown:       time.Second,
		HalfOpenProbes: 2,
		Now:            c.now,
	})
}

func TestBreakerTripsOnlyWithVolume(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk)
	// 9 straight failures: under MinVolume, must stay closed.
	for i := 0; i < 9; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker refused request %d", i)
		}
		b.Record(false)
	}
	if got := b.State(); got != Closed {
		t.Fatalf("state %v below MinVolume, want closed", got)
	}
	// The 10th failure reaches volume at 100% failure rate: trip.
	b.Record(false)
	if got := b.State(); got != Open {
		t.Fatalf("state %v after 10 failures, want open", got)
	}
	if b.Allow() {
		t.Fatal("open breaker allowed a request inside the cooldown")
	}
}

func TestBreakerIgnoresLowFailureRate(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk)
	for i := 0; i < 40; i++ {
		b.Record(i%4 != 0) // 25% failures, below the 50% trip rate
	}
	if got := b.State(); got != Closed {
		t.Fatalf("state %v at 25%% failure rate, want closed", got)
	}
}

func TestBreakerHalfOpenRecovery(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk)
	for i := 0; i < 10; i++ {
		b.Record(false)
	}
	if b.State() != Open {
		t.Fatal("breaker did not trip")
	}
	clk.advance(1100 * time.Millisecond)
	// Cooldown lapsed: Allow transitions to half-open and reserves a
	// probe slot, bounded by HalfOpenProbes.
	if !b.Allow() {
		t.Fatal("first half-open probe refused")
	}
	if b.State() != HalfOpen {
		t.Fatalf("state %v after cooldown Allow, want half-open", b.State())
	}
	if !b.Allow() {
		t.Fatal("second half-open probe refused")
	}
	if b.Allow() {
		t.Fatal("third concurrent probe allowed beyond HalfOpenProbes")
	}
	b.Record(true)
	b.Record(true)
	if got := b.State(); got != Closed {
		t.Fatalf("state %v after %d successful probes, want closed", got, 2)
	}
	// The window was reset on close: old failures cannot re-trip.
	b.Record(false)
	if got := b.State(); got != Closed {
		t.Fatalf("state %v after one post-recovery failure, want closed", got)
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk)
	for i := 0; i < 10; i++ {
		b.Record(false)
	}
	clk.advance(1100 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("probe refused")
	}
	b.Record(false)
	if got := b.State(); got != Open {
		t.Fatalf("state %v after failed probe, want open", got)
	}
	if b.Allow() {
		t.Fatal("reopened breaker allowed a request before a fresh cooldown")
	}
	// It can still recover after another cooldown.
	clk.advance(1100 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("probe refused after second cooldown")
	}
	b.Record(true)
	if !b.Allow() {
		t.Fatal("second probe refused")
	}
	b.Record(true)
	if got := b.State(); got != Closed {
		t.Fatalf("state %v after recovery, want closed", got)
	}
}

func TestBreakerWindowAgesOutFailures(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk)
	for i := 0; i < 9; i++ {
		b.Record(false)
	}
	// Age the failures out of the rolling window entirely.
	clk.advance(1500 * time.Millisecond)
	if vol, _ := b.Stats(); vol != 0 {
		t.Fatalf("windowed volume %d after aging, want 0", vol)
	}
	// Fresh failures start counting from zero: 9 more must not trip.
	for i := 0; i < 9; i++ {
		b.Record(false)
	}
	if got := b.State(); got != Closed {
		t.Fatalf("state %v, want closed — aged-out failures were counted", got)
	}
}

// TestBreakerForgive: a forgiven attempt leaves no trace — the rolling
// window does not move, and in HalfOpen the reserved probe slot is
// freed so a canceled probe cannot wedge recovery.
func TestBreakerForgive(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk)
	// Closed: Allow+Forgive records nothing.
	for i := 0; i < 20; i++ {
		if !b.Allow() {
			t.Fatal("closed breaker refused")
		}
		b.Forgive()
	}
	if vol, _ := b.Stats(); vol != 0 {
		t.Fatalf("windowed volume %d after forgiven attempts, want 0", vol)
	}
	if b.State() != Closed {
		t.Fatalf("state %v after forgiven attempts, want closed", b.State())
	}

	// HalfOpen: forgiving frees the probe slot for the next attempt.
	for i := 0; i < 10; i++ {
		b.Record(false)
	}
	clk.advance(1100 * time.Millisecond)
	if !b.Allow() || !b.Allow() {
		t.Fatal("half-open probes refused")
	}
	if b.Allow() {
		t.Fatal("probe allowed beyond HalfOpenProbes")
	}
	b.Forgive()
	if !b.Allow() {
		t.Fatal("forgiven probe slot was not freed")
	}
	// The two outstanding probes can still close the breaker.
	b.Record(true)
	b.Record(true)
	if got := b.State(); got != Closed {
		t.Fatalf("state %v after recovery through a forgiven probe, want closed", got)
	}
}

func TestBreakerStateIsSideEffectFree(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk)
	for i := 0; i < 10; i++ {
		b.Record(false)
	}
	clk.advance(2 * time.Second)
	// Cooldown has lapsed, but State must keep reading Open until an
	// Allow performs the transition (routing reads State without
	// committing to send).
	if got := b.State(); got != Open {
		t.Fatalf("State = %v, want open until Allow transitions", got)
	}
	if !b.Allow() {
		t.Fatal("Allow refused after cooldown")
	}
	if got := b.State(); got != HalfOpen {
		t.Fatalf("State = %v after Allow, want half-open", got)
	}
	b.Record(true)
}
