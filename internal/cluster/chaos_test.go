package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"contention/internal/faults"
)

// chaosSpec is the gate's fault schedule: a pure function of the seed,
// so a failing run is re-playable bit-for-bit.
func chaosGateSpec() faults.ChaosSpec {
	return faults.ChaosSpec{
		Seed:         1996, // Figueira–Berman, HPDC '96
		Replicas:     4,
		Duration:     3 * time.Second,
		KillEvery:    1200 * time.Millisecond,
		StallEvery:   900 * time.Millisecond,
		StallFor:     120 * time.Millisecond,
		DegradeEvery: 1500 * time.Millisecond,
		DegradeFor:   400 * time.Millisecond,
	}
}

// TestChaosPlanDeterministic pins the acceptance property the gate
// rests on: the fault schedule is bit-identical across generations.
func TestChaosPlanDeterministic(t *testing.T) {
	a, err := faults.PlanChaos(chaosGateSpec())
	if err != nil {
		t.Fatalf("PlanChaos: %v", err)
	}
	b, err := faults.PlanChaos(chaosGateSpec())
	if err != nil {
		t.Fatalf("PlanChaos (rerun): %v", err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("chaos plan is not deterministic for a fixed seed")
	}
}

// TestChaosGate is the self-healing SLO gate: four real in-process
// replicas (full serve stack) behind the supervisor and router, 16
// closed-loop workers, and a seeded schedule of kills, stalls, and
// calibration degradations replayed mid-load. The fleet must hold
// ≥ 99% success, never go fully dark, and every crashed replica must
// rejoin on its own.
func TestChaosGate(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos gate runs seconds of wall-clock load")
	}
	spec := chaosGateSpec()
	plan, err := faults.PlanChaos(spec)
	if err != nil {
		t.Fatalf("PlanChaos: %v", err)
	}
	t.Logf("chaos plan: %v over %v", faults.ChaosSummary(plan), spec.Duration)

	goroutinesBefore := runtime.NumGoroutine()

	c, err := New(Config{
		Replicas: spec.Replicas,
		Factory: InProcessFactory(InProcConfig{
			Window:   500 * time.Microsecond,
			MaxBatch: 16,
		}),
		RestartBase:   20 * time.Millisecond,
		RestartMax:    200 * time.Millisecond,
		MinUptime:     50 * time.Millisecond,
		Seed:          spec.Seed,
		MaxTries:      4,
		RetryBudget:   1.0,
		HedgeDelay:    30 * time.Millisecond,
		PerTryTimeout: 400 * time.Millisecond,
		Timeout:       3 * time.Second,
		MaxInFlight:   64,
		MaxQueue:      256,
		ProbeInterval: 30 * time.Millisecond,
		Breaker:       BreakerConfig{Cooldown: 100 * time.Millisecond},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := c.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	front := httptest.NewServer(c.Handler())

	// Load: 16 closed-loop workers over a small key corpus (identical
	// keys must collapse into batches on their affinity replica even
	// while the fleet churns).
	const workers = 16
	bodies := make([]string, 8)
	for i := range bodies {
		bodies[i] = fmt.Sprintf(
			`{"kind":"comp","dcomp":%d,"contenders":[{"comm_fraction":0.%d,"msg_words":%d}]}`,
			1+i%3, 1+i%8, 100*(i+1))
	}
	runFor := spec.Duration + 500*time.Millisecond
	const bucketWidth = 250 * time.Millisecond
	nBuckets := int(runFor/bucketWidth) + 1

	var (
		total, succ atomic.Int64
		bucketTotal = make([]atomic.Int64, nBuckets)
		bucketSucc  = make([]atomic.Int64, nBuckets)
		failures    sync.Map // status/error string -> *atomic.Int64
	)
	countFailure := func(key string) {
		v, _ := failures.LoadOrStore(key, new(atomic.Int64))
		v.(*atomic.Int64).Add(1)
	}
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := &http.Client{Timeout: 5 * time.Second}
			defer client.CloseIdleConnections()
			for i := 0; ; i++ {
				elapsed := time.Since(start)
				if elapsed >= runFor {
					return
				}
				bucket := int(elapsed / bucketWidth)
				body := bodies[(w+i)%len(bodies)]
				total.Add(1)
				bucketTotal[bucket].Add(1)
				resp, err := client.Post(front.URL+"/v1/predict", "application/json", strings.NewReader(body))
				if err != nil {
					countFailure("transport: " + err.Error())
					continue
				}
				_ = resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					succ.Add(1)
					bucketSucc[bucket].Add(1)
				} else {
					countFailure(fmt.Sprintf("status %d", resp.StatusCode))
				}
			}
		}(w)
	}

	// Applier: replay the plan against wall-clock offsets.
	var kills, stalls, degrades int
	for _, e := range plan {
		if d := e.At - time.Since(start); d > 0 {
			time.Sleep(d)
		}
		rep := c.Replica(e.Target)
		if rep == nil {
			continue // target is down; the fault has no one to hit
		}
		switch e.Kind {
		case faults.ChaosKill:
			rep.Kill()
			kills++
		case faults.ChaosStall:
			if s, ok := rep.(Staller); ok {
				s.StallFor(e.For)
				stalls++
			}
		case faults.ChaosDegrade:
			if d, ok := rep.(Degrader); ok {
				d.Degrade("chaos")
				degrades++
			}
		case faults.ChaosRecover:
			if d, ok := rep.(Degrader); ok {
				d.Recover()
			}
		}
	}
	wg.Wait()
	t.Logf("applied: %d kills, %d stalls, %d degrades", kills, stalls, degrades)
	if kills == 0 {
		t.Fatal("chaos plan applied no kills — the gate is not exercising crash-restart")
	}

	// SLO: ≥ 99% success across the whole run.
	tot, ok := total.Load(), succ.Load()
	if tot == 0 {
		t.Fatal("no requests issued")
	}
	rate := float64(ok) / float64(tot)
	failSummary := ""
	failures.Range(func(k, v any) bool {
		failSummary += fmt.Sprintf(" [%v ×%d]", k, v.(*atomic.Int64).Load())
		return true
	})
	t.Logf("requests: %d, success: %d (%.3f%%)%s", tot, ok, 100*rate, failSummary)
	if rate < 0.99 {
		t.Errorf("success rate %.3f%% < 99%%:%s", 100*rate, failSummary)
	}

	// Availability never hits zero: every bucket with real volume has
	// at least one success.
	for i := 0; i < nBuckets; i++ {
		bt, bs := bucketTotal[i].Load(), bucketSucc[i].Load()
		if bt >= 20 && bs == 0 {
			t.Errorf("availability hit zero in bucket %d (%d requests, 0 successes)", i, bt)
		}
	}

	// Self-healing: every killed replica rejoins without intervention.
	deadline := time.After(5 * time.Second)
	for c.UpCount() != spec.Replicas {
		select {
		case <-deadline:
			t.Fatalf("fleet never healed: %d/%d up, members %+v",
				c.UpCount(), spec.Replicas, c.Members())
		case <-time.After(10 * time.Millisecond):
		}
	}
	restarts := 0
	for _, m := range c.Members() {
		if m.State != "up" {
			t.Errorf("member %d state %q after healing window", m.ID, m.State)
		}
		restarts += m.Restarts
	}
	if restarts < kills {
		t.Errorf("%d restarts for %d kills — some crashes were not healed", restarts, kills)
	}

	// Service is still correct after the storm.
	resp, err := front.Client().Post(front.URL+"/v1/predict", "application/json", strings.NewReader(bodies[0]))
	if err != nil {
		t.Fatalf("post-chaos predict: %v", err)
	}
	var out map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&out)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || out["value"] == nil {
		t.Fatalf("post-chaos predict = %d %v", resp.StatusCode, out)
	}

	// Clean teardown, then no goroutine leaks.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := c.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	front.Close()
	leakDeadline := time.After(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= goroutinesBefore+4 {
			break
		}
		select {
		case <-leakDeadline:
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak: %d before, %d after shutdown\n%s",
				goroutinesBefore, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		case <-time.After(20 * time.Millisecond):
		}
	}
}
