package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"contention/internal/obs"
	"contention/internal/rm"
	"contention/internal/serve"
)

// ErrNoReplica is returned (as a 503 with Retry-After) when no healthy
// replica can take a request.
var ErrNoReplica = errors.New("cluster: no replica available")

// Defaults applied by New for zero Config fields.
const (
	DefaultRestartBase     = 100 * time.Millisecond
	DefaultRestartMax      = 5 * time.Second
	DefaultMinUptime       = 2 * time.Second
	DefaultCrashLoopBudget = 6
	DefaultCandidates      = 3
	DefaultSpillInFlight   = 64
	DefaultMaxTries        = 3
	DefaultRetryBudget     = 0.2
	DefaultPerTryTimeout   = 500 * time.Millisecond
	DefaultProbeInterval   = 250 * time.Millisecond
	DefaultSuspectAfter    = 4.0
)

// retryTokenCap bounds banked retry credit (milli-tokens): bursts of
// failures may spend at most this many stored retries before new
// traffic must earn more.
const retryTokenCap = 20_000

// Config parameterizes a Cluster.
type Config struct {
	// Replicas is the supervised fleet size. Required.
	Replicas int
	// Factory builds each replica incarnation. Required.
	Factory Factory

	// Supervision: a crashed replica is respawned after
	// RestartBase·2^strikes (capped at RestartMax) plus seeded jitter,
	// where strikes counts consecutive lives shorter than MinUptime. A
	// member that accumulates CrashLoopBudget strikes is abandoned — its
	// keys stay remapped to the survivors instead of flapping forever.
	RestartBase     time.Duration
	RestartMax      time.Duration
	MinUptime       time.Duration
	CrashLoopBudget int
	// Seed fixes the restart-jitter RNG.
	Seed int64

	// Routing.
	Vnodes     int // consistent-hash virtual nodes per replica
	Candidates int // ring candidates considered per request
	// SpillInFlight is the per-replica in-flight high-water: a primary
	// at or above it spills to the next ring node.
	SpillInFlight int
	// MaxTries bounds attempts per request (first try + failovers).
	MaxTries int
	// RetryBudget is the cluster-wide retry allowance as a fraction of
	// routed requests (token bucket): retries beyond it are shed so a
	// sick fleet is not finished off by its own retry storm.
	RetryBudget float64
	// HedgeDelay, when positive, launches a hedged second request to the
	// next candidate if the primary has not answered within it (p99
	// protection); first answer wins.
	HedgeDelay time.Duration
	// PerTryTimeout bounds each attempt; Timeout bounds the request.
	PerTryTimeout time.Duration
	Timeout       time.Duration
	// Front-door admission bounds (same semantics as serve.Config).
	MaxInFlight, MaxQueue int
	// Breaker parameterizes the per-replica circuit breakers.
	Breaker BreakerConfig
	// ProbeInterval is the health-probe period for locally supervised
	// replicas.
	ProbeInterval time.Duration
	// ProbeTimeout bounds each health-probe / heartbeat HTTP request.
	// Zero selects ProbeInterval (a probe never outlives its period);
	// an explicit value larger than ProbeInterval is a validation error,
	// since overlapping probes would double-count breaker outcomes.
	ProbeTimeout time.Duration
	// HeartbeatInterval is the failure-detector heartbeat period for
	// remote members. Zero selects ProbeInterval.
	HeartbeatInterval time.Duration
	// SuspectAfter is the failure-detector suspicion threshold, in
	// multiples of the learned EWMA heartbeat inter-arrival: a remote
	// member silent for more than SuspectAfter expected intervals leaves
	// the ring until it heartbeats again. Zero selects
	// DefaultSuspectAfter; explicit values below 1 are a validation
	// error (they would suspect members faster than one heartbeat).
	SuspectAfter float64
	// Sampler is the head-sampling knob for request tracing: requests
	// arriving without a trace header consult it once, and the verdict
	// rides the X-Contention-Trace header to the replicas. Nil never
	// samples.
	Sampler *obs.Sampler
	// SLO, when set, receives every front-door request outcome for
	// burn-rate tracking (client faults excluded).
	SLO *obs.SLOTracker
}

func (cfg Config) withDefaults() Config {
	if cfg.RestartBase <= 0 {
		cfg.RestartBase = DefaultRestartBase
	}
	if cfg.RestartMax <= 0 {
		cfg.RestartMax = DefaultRestartMax
	}
	if cfg.MinUptime <= 0 {
		cfg.MinUptime = DefaultMinUptime
	}
	if cfg.CrashLoopBudget <= 0 {
		cfg.CrashLoopBudget = DefaultCrashLoopBudget
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Vnodes <= 0 {
		cfg.Vnodes = DefaultVnodes
	}
	if cfg.Candidates <= 0 {
		cfg.Candidates = DefaultCandidates
	}
	if cfg.SpillInFlight <= 0 {
		cfg.SpillInFlight = DefaultSpillInFlight
	}
	if cfg.MaxTries <= 0 {
		cfg.MaxTries = DefaultMaxTries
	}
	if cfg.RetryBudget <= 0 {
		cfg.RetryBudget = DefaultRetryBudget
	}
	if cfg.PerTryTimeout <= 0 {
		cfg.PerTryTimeout = DefaultPerTryTimeout
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = serve.DefaultTimeout
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = serve.DefaultMaxInFlight
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = serve.DefaultMaxQueue
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = DefaultProbeInterval
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = cfg.ProbeInterval
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = cfg.ProbeInterval
	}
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = DefaultSuspectAfter
	}
	return cfg
}

// validate rejects default-filled configurations that could not work.
func (cfg Config) validate() error {
	if cfg.ProbeTimeout > cfg.ProbeInterval {
		return fmt.Errorf("cluster: ProbeTimeout %v exceeds ProbeInterval %v — probes would overlap and double-count breaker outcomes",
			cfg.ProbeTimeout, cfg.ProbeInterval)
	}
	if cfg.SuspectAfter < 1 {
		return fmt.Errorf("cluster: SuspectAfter %g would suspect members faster than one missed heartbeat (want >= 1)",
			cfg.SuspectAfter)
	}
	return nil
}

// memberState is one member's supervision state.
type memberState int32

const (
	stateUp memberState = iota
	stateDown
	stateFailed
	stateDraining
	stateSuspect
)

func (s memberState) String() string {
	switch s {
	case stateUp:
		return "up"
	case stateDown:
		return "down"
	case stateFailed:
		return "failed"
	case stateDraining:
		return "draining"
	case stateSuspect:
		return "suspect"
	}
	return "unknown"
}

// member is one supervised replica slot: the slot (id, breaker,
// supervision history) is permanent, the Replica incarnation behind it
// comes and goes. Local slots are babysat (crash → respawn); remote
// slots are judged by the heartbeat failure detector (silence → suspect
// → out of the ring until it beats again).
type member struct {
	id       int
	remote   bool
	breaker  *Breaker
	sus      *suspicion  // remote members only
	hbBusy   atomic.Bool // one heartbeat in flight at a time
	inflight atomic.Int64
	degraded atomic.Bool // last health probe saw a non-Fresh calibration

	mu      sync.Mutex
	state   memberState
	rep     Replica
	addr    string
	weight  float64
	gen     int
	strikes int
	upSince time.Time
	removed bool // deliberately drained; the babysitter must not restart it
}

func (m *member) up() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.state == stateUp
}

func (m *member) currentAddr() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.state != stateUp {
		return ""
	}
	return m.addr
}

// heartbeatAddr is the address the failure detector should heartbeat:
// up members (rhythm tracking) and suspect members (recovery
// detection), never drained or failed ones.
func (m *member) heartbeatAddr() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.removed || (m.state != stateUp && m.state != stateSuspect) {
		return ""
	}
	return m.addr
}

// markSuspect flips an up remote member to suspect; reports whether the
// transition happened (caller then removes it from the ring).
func (m *member) markSuspect() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.removed || m.state != stateUp {
		return false
	}
	m.state = stateSuspect
	return true
}

// clearSuspect flips a suspect member back to up; reports whether the
// transition happened (caller then re-adds it to the ring).
func (m *member) clearSuspect() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.removed || m.state != stateSuspect {
		return false
	}
	m.state = stateUp
	m.upSince = time.Now()
	return true
}

func (m *member) getWeight() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.weight
}

// Cluster is the supervised fleet plus its affinity router. Build with
// New, call Start, serve Handler; it is goroutine-safe.
type Cluster struct {
	cfg    Config
	adm    *rm.Admission
	client *http.Client

	// members is append-only: a member's id is its index, forever. The
	// slice header is guarded by memMu (AddRemote appends); the members
	// themselves carry their own locks.
	memMu   sync.RWMutex
	members []*member
	ringMu  sync.Mutex // serializes ring read-modify-write
	ring    atomic.Pointer[Ring]

	rngMu sync.Mutex
	rng   *rand.Rand // restart jitter

	retryTokens atomic.Int64 // milli-tokens

	draining atomic.Bool
	started  atomic.Bool
	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup // babysitters + prober
	bg       sync.WaitGroup // background hedge attempts
}

// New builds an unstarted cluster, applying defaults for zero fields.
// Replicas == 0 is a remote-only cluster: no local fleet is spawned and
// members arrive via AddRemote / the membership manager.
func New(cfg Config) (*Cluster, error) {
	if cfg.Replicas < 0 {
		return nil, errors.New("cluster: Config.Replicas must not be negative")
	}
	if cfg.Replicas > 0 && cfg.Factory == nil {
		return nil, errors.New("cluster: Config.Factory is required for local replicas")
	}
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	c := &Cluster{
		cfg: cfg,
		adm: rm.NewAdmission(cfg.MaxInFlight, cfg.MaxQueue),
		client: &http.Client{Transport: &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     30 * time.Second,
		}},
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		stop: make(chan struct{}),
	}
	c.retryTokens.Store(5_000) // a little starting credit so early faults can fail over
	c.members = make([]*member, cfg.Replicas)
	for i := range c.members {
		c.members[i] = &member{id: i, weight: 1, breaker: NewBreaker(cfg.Breaker)}
	}
	c.ring.Store(NewRing(cfg.Vnodes))
	return c, nil
}

// memberList snapshots the member slice. Members are append-only, so
// iterating the returned header without the lock is safe.
func (c *Cluster) memberList() []*member {
	c.memMu.RLock()
	defer c.memMu.RUnlock()
	return c.members
}

func (c *Cluster) memberByID(id int) *member {
	c.memMu.RLock()
	defer c.memMu.RUnlock()
	if id < 0 || id >= len(c.members) {
		return nil
	}
	return c.members[id]
}

// Config returns the effective (default-filled) configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Admission exposes the front-door admission controller (stats).
func (c *Cluster) Admission() *rm.Admission { return c.adm }

// Start spawns every replica and begins supervision. An initial spawn
// failure tears down what started and errors out — a cluster that
// cannot field its fleet at boot is a deployment problem, not one to
// heal around.
func (c *Cluster) Start() error {
	if !c.started.CompareAndSwap(false, true) {
		return errors.New("cluster: already started")
	}
	all := c.memberList()
	var locals []*member
	for _, m := range all {
		if !m.remote {
			locals = append(locals, m)
		}
	}
	ring := NewRing(c.cfg.Vnodes)
	for i, m := range locals {
		rep, err := c.cfg.Factory(m.id, 0)
		if err != nil {
			for j := 0; j < i; j++ {
				locals[j].mu.Lock()
				r := locals[j].rep
				locals[j].mu.Unlock()
				if r != nil {
					r.Kill()
				}
			}
			return fmt.Errorf("cluster: spawn replica %d: %w", m.id, err)
		}
		m.mu.Lock()
		m.state = stateUp
		m.rep = rep
		m.addr = rep.Addr()
		m.upSince = time.Now()
		m.mu.Unlock()
		ring = ring.WithWeight(m.id, m.getWeight())
	}
	// Remote members added before Start keep their ring points.
	c.ringMu.Lock()
	for _, m := range all {
		if m.remote && m.up() {
			ring = ring.WithWeight(m.id, m.getWeight())
		}
	}
	c.ring.Store(ring)
	c.ringMu.Unlock()
	mReplicasUp.Set(float64(ring.Size()))
	for _, m := range locals {
		c.wg.Add(1)
		go c.babysit(m)
	}
	c.wg.Add(1)
	go c.probeLoop()
	c.wg.Add(1)
	go c.heartbeatLoop()
	return nil
}

// AddRemote joins a remote prediction daemon at addr to the fleet with
// the given routing weight (weight <= 0 selects 1). It starts up and in
// the ring immediately; from then on the heartbeat failure detector
// decides whether it stays. Returns the new member's id.
func (c *Cluster) AddRemote(addr string, weight float64) (int, error) {
	if err := validateMemberAddr(addr); err != nil {
		return 0, err
	}
	if weight <= 0 {
		weight = 1
	}
	c.memMu.Lock()
	for _, m := range c.members {
		m.mu.Lock()
		dup := m.addr == addr && !m.removed && m.state != stateFailed
		m.mu.Unlock()
		if dup {
			c.memMu.Unlock()
			return 0, fmt.Errorf("cluster: member %d already serves %s", m.id, addr)
		}
	}
	id := len(c.members)
	m := &member{
		id:      id,
		remote:  true,
		weight:  weight,
		breaker: NewBreaker(c.cfg.Breaker),
		sus:     newSuspicion(c.cfg.HeartbeatInterval, c.cfg.SuspectAfter, time.Now()),
	}
	m.state = stateUp
	m.rep = newRemoteReplica(addr)
	m.addr = addr
	m.upSince = time.Now()
	c.members = append(c.members, m)
	c.memMu.Unlock()
	c.ringAdd(id)
	mMembersAdded.Inc()
	return id, nil
}

// ReweightMember changes member id's share of the keyspace. Only that
// member's ring points move, so at most its ownership-share delta of
// keys remap. Weight 0 keeps the member serving (failover, hedges) but
// owning no keys.
func (c *Cluster) ReweightMember(id int, weight float64) error {
	m := c.memberByID(id)
	if m == nil {
		return fmt.Errorf("cluster: no member %d", id)
	}
	if weight < 0 {
		return fmt.Errorf("cluster: member %d weight %g must not be negative", id, weight)
	}
	m.mu.Lock()
	m.weight = weight
	inRing := m.state == stateUp
	m.mu.Unlock()
	if inRing {
		c.ringMu.Lock()
		r := c.ring.Load().WithWeight(id, weight)
		c.ring.Store(r)
		c.ringMu.Unlock()
		mReplicasUp.Set(float64(r.Size()))
	}
	return nil
}

// heartbeatLoop drives the failure detector for remote members: each
// tick it checks every remote member's suspicion level (silence →
// suspect → out of the ring) and launches a non-blocking heartbeat
// probe whose arrival feeds the detector (and whose outcome feeds the
// breaker, so a remote member that answers garbage still trips it).
func (c *Cluster) heartbeatLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
		}
		now := time.Now()
		for _, m := range c.memberList() {
			if !m.remote {
				continue
			}
			if m.sus.suspect(now) && m.markSuspect() {
				c.ringRemove(m.id)
				mSuspects.Inc()
			}
			addr := m.heartbeatAddr()
			if addr == "" {
				continue
			}
			if !m.hbBusy.CompareAndSwap(false, true) {
				continue // previous heartbeat still in flight
			}
			c.wg.Add(1)
			go func(m *member, addr string) {
				defer c.wg.Done()
				defer m.hbBusy.Store(false)
				allowed := m.breaker.Allow()
				ok, degraded := c.probe(addr)
				if allowed {
					m.breaker.Record(ok)
				}
				if !ok {
					return
				}
				m.degraded.Store(degraded)
				m.sus.beat(time.Now())
				if m.clearSuspect() {
					c.ringAdd(m.id)
					mRejoins.Inc()
				}
			}(m, addr)
		}
	}
}

// --- supervision -------------------------------------------------------------

// babysit watches one member: when its replica dies it leaves the ring
// immediately, and rejoins after a successful seeded-backoff respawn.
func (c *Cluster) babysit(m *member) {
	defer c.wg.Done()
	for {
		m.mu.Lock()
		rep := m.rep
		m.mu.Unlock()
		if rep == nil {
			return
		}
		select {
		case <-rep.Done():
		case <-c.stop:
			return
		}
		select {
		case <-c.stop:
			return
		default:
		}

		m.mu.Lock()
		if m.removed || m.state != stateUp {
			m.mu.Unlock()
			return
		}
		uptime := time.Since(m.upSince)
		m.state = stateDown
		m.rep = nil
		if uptime < c.cfg.MinUptime {
			m.strikes++
		} else {
			m.strikes = 0
		}
		strikes := m.strikes
		m.mu.Unlock()
		c.ringRemove(m.id)

		for {
			if strikes >= c.cfg.CrashLoopBudget {
				m.mu.Lock()
				m.state = stateFailed
				m.mu.Unlock()
				mAbandoned.Inc()
				return
			}
			select {
			case <-time.After(c.backoff(strikes)):
			case <-c.stop:
				return
			}
			m.mu.Lock()
			gen := m.gen + 1
			m.mu.Unlock()
			rep2, err := c.cfg.Factory(m.id, gen)
			if err != nil {
				strikes++
				m.mu.Lock()
				m.strikes = strikes
				m.mu.Unlock()
				continue
			}
			m.mu.Lock()
			m.state = stateUp
			m.rep = rep2
			m.addr = rep2.Addr()
			m.gen = gen
			m.upSince = time.Now()
			m.mu.Unlock()
			mRestarts.Inc()
			c.ringAdd(m.id)
			break
		}
	}
}

// backoff is the respawn delay for a given strike count: exponential
// from RestartBase, capped at RestartMax, plus up to 50% seeded jitter
// so a mass failure does not respawn the whole fleet in lockstep.
func (c *Cluster) backoff(strikes int) time.Duration {
	if strikes > 20 {
		strikes = 20
	}
	d := c.cfg.RestartBase << strikes
	if d > c.cfg.RestartMax || d <= 0 {
		d = c.cfg.RestartMax
	}
	c.rngMu.Lock()
	j := time.Duration(c.rng.Int63n(int64(d)/2 + 1))
	c.rngMu.Unlock()
	return d + j
}

func (c *Cluster) ringAdd(id int) {
	w := 1.0
	if m := c.memberByID(id); m != nil {
		w = m.getWeight()
	}
	c.ringMu.Lock()
	r := c.ring.Load().WithWeight(id, w)
	c.ring.Store(r)
	c.ringMu.Unlock()
	mReplicasUp.Set(float64(r.Size()))
}

func (c *Cluster) ringRemove(id int) {
	c.ringMu.Lock()
	r := c.ring.Load().Without(id)
	c.ring.Store(r)
	c.ringMu.Unlock()
	mReplicasUp.Set(float64(r.Size()))
}

// UpCount reports how many replicas are in the routing ring.
func (c *Cluster) UpCount() int { return c.ring.Load().Size() }

// Replica returns member id's current incarnation (nil while down) —
// the chaos harness reaches replicas through this.
func (c *Cluster) Replica(id int) Replica {
	m := c.memberByID(id)
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rep
}

// probeLoop periodically probes each up replica's /healthz: outcomes
// feed the breaker (an Open breaker's cooldown lapse makes the probe
// the half-open test traffic, so recovery does not wait for a real
// request to risk itself), and the reported trust state drives the
// degraded-replica routing preference.
func (c *Cluster) probeLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
		}
		for _, m := range c.memberList() {
			if m.remote {
				continue // remote members are heartbeated, not probed
			}
			addr := m.currentAddr()
			if addr == "" {
				continue
			}
			if !m.breaker.Allow() {
				continue
			}
			ok, degraded := c.probe(addr)
			m.breaker.Record(ok)
			if ok {
				m.degraded.Store(degraded)
			}
		}
	}
}

func (c *Cluster) probe(addr string) (ok, degraded bool) {
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+addr+"/healthz", nil)
	if err != nil {
		return false, false
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return false, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return false, false
	}
	var h struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&h); err != nil {
		return false, false
	}
	return true, h.Status != "ok"
}

// --- routing -----------------------------------------------------------------

// tryResult is one attempt's outcome: a transport error, or a status +
// body to pass through.
type tryResult struct {
	status int
	body   []byte
	err    error
}

// retryable reports whether another replica might do better: transport
// errors, 5xx, and 429 (that replica is saturated; the ring successor
// may not be). 4xx client faults and 504 (the deadline is spent either
// way) are final, as are a vanished client and a spent request
// deadline — nobody is waiting for a second try.
func (r tryResult) retryable() bool {
	if errors.Is(r.err, ErrClientGone) || errors.Is(r.err, context.DeadlineExceeded) {
		return false
	}
	return r.err != nil || r.status >= 500 || r.status == http.StatusTooManyRequests
}

// route sends body to the replicas owning key, in ring-affinity order
// with load-aware spill, bounded retries, and optional hedging. meta
// carries the request's correlation state onto every attempt's wire.
func (c *Cluster) route(ctx context.Context, key string, body []byte, meta reqMeta) tryResult {
	ids := c.ring.Load().Sequence(key, c.cfg.Candidates)
	if len(ids) == 0 {
		return tryResult{err: ErrNoReplica}
	}
	cands := make([]*member, 0, len(ids))
	for _, id := range ids {
		if m := c.memberByID(id); m != nil {
			cands = append(cands, m)
		}
	}
	if len(cands) == 0 {
		return tryResult{err: ErrNoReplica}
	}

	// Load-aware spill: the ring primary leads unless its breaker is
	// open, it is at its in-flight high-water, or it is serving degraded
	// answers while a later candidate is healthy. Ring order is kept
	// after the leader, so spilled keys still concentrate per replica.
	lead := 0
	for i, m := range cands {
		if m.breaker.State() != Open &&
			m.inflight.Load() < int64(c.cfg.SpillInFlight) &&
			!m.degraded.Load() {
			lead = i
			break
		}
	}
	if lead > 0 {
		mSpills.Inc()
	}

	last := tryResult{err: ErrNoReplica}
	tries := 0
	for k := 0; k < len(cands) && tries < c.cfg.MaxTries; k++ {
		m := cands[(lead+k)%len(cands)]
		if !m.up() {
			continue
		}
		if tries > 0 && !c.takeRetryToken() {
			break
		}
		if !m.breaker.Allow() {
			if tries > 0 {
				c.refundRetryToken()
			}
			continue
		}
		if tries > 0 {
			mRetries.Inc()
		}
		tries++
		var res tryResult
		if tries == 1 && c.cfg.HedgeDelay > 0 {
			res = c.hedged(ctx, m, cands, body, meta)
		} else {
			res = c.attempt(ctx, m, body, meta)
		}
		last = res
		if !res.retryable() {
			return res
		}
		if ctx.Err() != nil {
			break
		}
	}
	return last
}

// attempt posts body to one member with the per-try timeout, recording
// the outcome in its breaker. Every attempt call must be preceded by
// exactly one Allow() on the member (half-open probe accounting).
// Transport errors are classified before they reach the breaker: a
// failure caused by the requesting client (cancel, disconnect) or by
// the request deadline expiring is forgiven — the replica did nothing
// wrong, and counting it would let misbehaving clients trip breakers.
func (c *Cluster) attempt(ctx context.Context, m *member, body []byte, meta reqMeta) tryResult {
	addr := m.currentAddr()
	if addr == "" {
		m.breaker.Record(false)
		return tryResult{err: ErrNoReplica}
	}
	m.inflight.Add(1)
	defer m.inflight.Add(-1)
	// Sampled requests get a per-attempt span whose context rides the
	// trace header, so the replica's spans parent into this attempt (an
	// unsampled or traceless meta passes through StartCtx unchanged at
	// no cost).
	span, wtc := obs.DefaultTracer().StartCtx("lb", "attempt", meta.tc)
	defer span.End()
	tctx, cancel := context.WithTimeout(ctx, c.cfg.PerTryTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(tctx, http.MethodPost, "http://"+addr+"/v1/predict", bytes.NewReader(body))
	if err != nil {
		m.breaker.Record(false)
		return tryResult{err: err}
	}
	ct := meta.contentType
	if ct == "" {
		ct = "application/json"
	}
	req.Header.Set("Content-Type", ct)
	if wtc.Valid() {
		req.Header.Set(serve.TraceHeader, wtc.String())
	}
	if meta.rid != "" {
		req.Header.Set(serve.RequestIDHeader, meta.rid)
	}
	// Propagate the remaining request deadline so the replica can bound
	// its own work (batching window, queue wait) to time someone is
	// still waiting for.
	if dl, ok := ctx.Deadline(); ok {
		if ms := time.Until(dl).Milliseconds(); ms > 0 {
			req.Header.Set(serve.DeadlineHeader, fmt.Sprintf("%d", ms))
		}
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return c.classifyTransportErr(ctx, m, err)
	}
	b, rerr := io.ReadAll(io.LimitReader(resp.Body, serve.MaxBodyBytes+1))
	resp.Body.Close()
	if rerr != nil {
		return c.classifyTransportErr(ctx, m, rerr)
	}
	res := tryResult{status: resp.StatusCode, body: b}
	m.breaker.Record(!res.retryable())
	return res
}

// classifyTransportErr decides whose fault a failed attempt was. Parent
// context canceled → the client went away (ErrClientGone, forgiven);
// parent deadline expired → the request ran out of time across the
// fleet, not on this member (forgiven); anything else — per-try
// timeout, connection refused/reset, malformed response — is the
// replica's problem and feeds its breaker.
func (c *Cluster) classifyTransportErr(ctx context.Context, m *member, err error) tryResult {
	switch ctx.Err() {
	case context.Canceled:
		m.breaker.Forgive()
		mClientGone.Inc()
		return tryResult{err: fmt.Errorf("%w: %v", ErrClientGone, err)}
	case context.DeadlineExceeded:
		m.breaker.Forgive()
		return tryResult{err: fmt.Errorf("%w: %v", context.DeadlineExceeded, err)}
	}
	m.breaker.Record(false)
	return tryResult{err: err}
}

// hedged races the primary against a delayed second request to the next
// healthy candidate: if the primary has not answered within HedgeDelay
// (a stall, a long batch window, a GC pause), the hedge usually wins
// and the request rides out the hiccup at the cost of one duplicate.
func (c *Cluster) hedged(ctx context.Context, primary *member, cands []*member, body []byte, meta reqMeta) tryResult {
	var backup *member
	for _, m := range cands {
		if m != primary && m.up() && m.breaker.State() != Open {
			backup = m
			break
		}
	}
	if backup == nil {
		return c.attempt(ctx, primary, body, meta)
	}
	ch := make(chan tryResult, 2)
	c.bg.Add(1)
	go func() {
		defer c.bg.Done()
		ch <- c.attempt(ctx, primary, body, meta)
	}()
	t := time.NewTimer(c.cfg.HedgeDelay)
	defer t.Stop()
	launched := 1
	select {
	case res := <-ch:
		return res
	case <-t.C:
		if backup.breaker.Allow() {
			mHedges.Inc()
			launched = 2
			c.bg.Add(1)
			go func() {
				defer c.bg.Done()
				ch <- c.attempt(ctx, backup, body, meta)
			}()
		}
	}
	res := <-ch
	if !res.retryable() || launched == 1 {
		return res
	}
	res2 := <-ch
	if !res2.retryable() {
		return res2
	}
	return res
}

// grantRetryCredit adds one request's worth of retry budget.
func (c *Cluster) grantRetryCredit() {
	add := int64(c.cfg.RetryBudget * 1000)
	if add <= 0 {
		return
	}
	if v := c.retryTokens.Add(add); v > retryTokenCap {
		c.retryTokens.Store(retryTokenCap)
	}
}

func (c *Cluster) takeRetryToken() bool {
	for {
		v := c.retryTokens.Load()
		if v < 1000 {
			return false
		}
		if c.retryTokens.CompareAndSwap(v, v-1000) {
			return true
		}
	}
}

func (c *Cluster) refundRetryToken() { c.retryTokens.Add(1000) }

// --- draining ----------------------------------------------------------------

// DrainMember removes member id from the fleet gracefully: the ring
// stops assigning its keys immediately (they remap to ring successors;
// everything else stays put), requests in flight to it finish within
// ctx, then the replica shuts down. The member is not restarted.
func (c *Cluster) DrainMember(ctx context.Context, id int) error {
	m := c.memberByID(id)
	if m == nil {
		return fmt.Errorf("cluster: no member %d", id)
	}
	m.mu.Lock()
	if m.state != stateUp && m.state != stateSuspect {
		st := m.state
		m.mu.Unlock()
		return fmt.Errorf("cluster: member %d is %s, not up", id, st)
	}
	m.state = stateDraining
	m.removed = true
	rep := m.rep
	m.mu.Unlock()
	c.ringRemove(id)

	tick := time.NewTicker(time.Millisecond)
	defer tick.Stop()
	for m.inflight.Load() > 0 {
		select {
		case <-ctx.Done():
			rep.Kill()
			return fmt.Errorf("cluster: drain member %d: %w", id, ctx.Err())
		case <-tick.C:
		}
	}
	return rep.Close(ctx)
}

// Shutdown drains the whole cluster: new requests are refused with 503
// + Retry-After, in-flight requests finish within ctx, then every
// replica is closed gracefully and supervision stops. Idempotent.
func (c *Cluster) Shutdown(ctx context.Context) error {
	c.draining.Store(true)
	var err error
	c.stopOnce.Do(func() {
		err = c.adm.Drain(ctx)
		close(c.stop)
		c.ringMu.Lock()
		c.ring.Store(NewRing(c.cfg.Vnodes))
		c.ringMu.Unlock()
		mReplicasUp.Set(0)

		// Hedge losers may outlive their front-door request; wait them
		// out (bounded by PerTryTimeout) before closing replicas.
		bgDone := make(chan struct{})
		go func() {
			c.bg.Wait()
			close(bgDone)
		}()
		select {
		case <-bgDone:
		case <-ctx.Done():
		}

		for _, m := range c.memberList() {
			m.mu.Lock()
			m.removed = true
			rep := m.rep
			m.mu.Unlock()
			if rep != nil {
				_ = rep.Close(ctx)
			}
		}
		c.wg.Wait()
		c.client.CloseIdleConnections()
	})
	return err
}

// --- status ------------------------------------------------------------------

// MemberStatus is one member's externally visible state.
type MemberStatus struct {
	ID       int     `json:"id"`
	State    string  `json:"state"`
	Addr     string  `json:"addr,omitempty"`
	Remote   bool    `json:"remote,omitempty"`
	Weight   float64 `json:"weight"`
	Restarts int     `json:"restarts"`
	Strikes  int     `json:"strikes,omitempty"`
	Breaker  string  `json:"breaker"`
	InFlight int64   `json:"in_flight"`
	Degraded bool    `json:"degraded,omitempty"`
	// Suspicion is the failure-detector level for remote members:
	// elapsed heartbeat silence in learned inter-arrival units.
	Suspicion float64 `json:"suspicion,omitempty"`
}

// Members reports every member's status.
func (c *Cluster) Members() []MemberStatus {
	list := c.memberList()
	now := time.Now()
	out := make([]MemberStatus, len(list))
	for i, m := range list {
		m.mu.Lock()
		out[i] = MemberStatus{
			ID:       m.id,
			State:    m.state.String(),
			Addr:     m.addr,
			Remote:   m.remote,
			Weight:   m.weight,
			Restarts: m.gen,
			Strikes:  m.strikes,
			Breaker:  m.breaker.State().String(),
			InFlight: m.inflight.Load(),
			Degraded: m.degraded.Load(),
		}
		if m.state != stateUp && m.state != stateSuspect {
			out[i].Addr = ""
		}
		m.mu.Unlock()
		if m.sus != nil {
			out[i].Suspicion = m.sus.level(now)
		}
	}
	return out
}

// --- HTTP front end ----------------------------------------------------------

// Handler returns the load-balancer mux — the same API surface as one
// replica, so clients cannot tell a fleet from a single daemon:
//
//	POST /v1/predict  — routed by batch-key affinity with failover
//	POST /v1/observe  — residual broadcast to every up replica
//	GET  /healthz     — fleet health + per-member detail
//	GET  /readyz      — 503 while draining or with zero replicas up
func (c *Cluster) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/predict", c.handlePredict)
	mux.HandleFunc("POST /v1/observe", c.handleObserve)
	mux.HandleFunc("GET /healthz", c.handleHealth)
	mux.HandleFunc("GET /readyz", c.handleReady)
	return mux
}

// errEnvelope is the JSON error body — the same shape serve emits, so
// clients parse one envelope regardless of which tier refused them.
type errEnvelope struct {
	Error     string `json:"error"`
	RequestID string `json:"request_id,omitempty"`
}

// writeError emits the JSON error envelope with the Retry-After
// back-off hint on 429/503.
func writeError(w http.ResponseWriter, status int, msg string) {
	writeErrorID(w, status, msg, "")
}

// writeErrorID is writeError plus request-id correlation: when rid is
// non-empty it is set as X-Request-Id and embedded in the envelope.
func writeErrorID(w http.ResponseWriter, status int, msg, rid string) {
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", serve.RetryAfterSeconds)
	}
	if rid != "" {
		w.Header().Set(serve.RequestIDHeader, rid)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errEnvelope{Error: msg, RequestID: rid})
}

func (c *Cluster) handlePredict(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	outcome := "ok"
	defer func() {
		mRequests.With(outcome).Inc()
		mRouteSeconds.Observe(time.Since(start).Seconds())
	}()

	lt, ptc := c.requestTrace(r)
	defer lt.end()
	binaryReq := r.Header.Get("Content-Type") == serve.ContentTypeBinary
	meta := reqMeta{rid: r.Header.Get(serve.RequestIDHeader), tc: ptc}
	if binaryReq {
		meta.contentType = serve.ContentTypeBinary
	}
	// errorID is the correlation id for failure responses: the client's
	// own X-Request-Id when present, otherwise minted on first use.
	errorID := func() string {
		if meta.rid == "" {
			meta.rid = obs.HexID(obs.NewID())
		}
		return meta.rid
	}

	if c.draining.Load() {
		outcome = "draining"
		writeErrorID(w, http.StatusServiceUnavailable, "cluster draining", errorID())
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, serve.MaxBodyBytes+1))
	if err != nil {
		outcome = "bad_request"
		writeErrorID(w, http.StatusBadRequest, "read body: "+err.Error(), errorID())
		return
	}
	var req *serve.Request
	if binaryReq {
		req, err = serve.DecodeBinaryRequest(body)
	} else {
		req, err = serve.DecodeRequest(bytes.NewReader(body))
	}
	var key string
	if err == nil {
		key, err = req.BatchKey()
	}
	decodeDone := time.Now()
	lbStDecode.Observe(decodeDone.Sub(start).Seconds())
	lt.stage("decode", start, decodeDone)
	if err != nil {
		outcome = "bad_request"
		status := http.StatusBadRequest
		var reqErr *serve.RequestError
		if errors.As(err, &reqErr) {
			status = reqErr.Status
		}
		writeErrorID(w, status, err.Error(), errorID())
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), c.cfg.Timeout)
	defer cancel()
	if err := c.adm.Acquire(ctx); err != nil {
		c.recordSLO(start, true, false)
		if errors.Is(err, rm.ErrSubmitTimeout) {
			outcome = "timeout"
			writeErrorID(w, http.StatusGatewayTimeout, err.Error(), errorID())
			return
		}
		outcome = "rejected"
		writeErrorID(w, http.StatusTooManyRequests, err.Error(), errorID())
		return
	}
	defer c.adm.Release()
	c.grantRetryCredit()

	routeStart := time.Now()
	res := c.route(ctx, key, body, meta)
	routeDone := time.Now()
	lbStRoute.Observe(routeDone.Sub(routeStart).Seconds())
	lt.stage("route", routeStart, routeDone)
	if res.err != nil {
		clientGone := errors.Is(res.err, ErrClientGone)
		c.recordSLO(start, true, clientGone)
		switch {
		case clientGone:
			// Nobody is listening; the status code exists for logs and
			// outcome metrics only (nginx's 499 convention).
			outcome = "client_gone"
			writeErrorID(w, StatusClientClosedRequest, res.err.Error(), errorID())
		case errors.Is(res.err, context.DeadlineExceeded):
			outcome = "timeout"
			writeErrorID(w, http.StatusGatewayTimeout, res.err.Error(), errorID())
		default:
			outcome = "unavailable"
			writeErrorID(w, http.StatusServiceUnavailable, fmt.Sprintf("%v: %v", ErrNoReplica, res.err), errorID())
		}
		return
	}
	if res.status != http.StatusOK {
		outcome = fmt.Sprintf("upstream_%d", res.status)
	}
	// Upstream 4xx are the client's fault; everything else counts.
	c.recordSLO(start, res.status != http.StatusOK,
		res.status >= 400 && res.status < 500 && res.status != http.StatusTooManyRequests)
	if res.status == http.StatusTooManyRequests || res.status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", serve.RetryAfterSeconds)
	}
	if meta.rid != "" {
		w.Header().Set(serve.RequestIDHeader, meta.rid)
	}
	// Binary responses only arrive with 200; upstream errors are the JSON
	// envelope regardless of the request wire.
	if binaryReq && res.status == http.StatusOK {
		w.Header().Set("Content-Type", serve.ContentTypeBinary)
	} else {
		w.Header().Set("Content-Type", "application/json")
	}
	w.WriteHeader(res.status)
	_, _ = w.Write(res.body)
	encodeDone := time.Now()
	lbStEncode.Observe(encodeDone.Sub(routeDone).Seconds())
	lt.stage("encode", routeDone, encodeDone)
}

// observeResult is the /v1/observe broadcast summary.
type observeResult struct {
	Forwarded int `json:"forwarded"`
	Errors    int `json:"errors"`
}

// handleObserve broadcasts one residual observation to every up
// replica: each replica runs its own drift detector, so all of them
// need the evidence regardless of which one served the prediction.
func (c *Cluster) handleObserve(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, serve.MaxBodyBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, "read body: "+err.Error())
		return
	}
	var res observeResult
	for _, m := range c.memberList() {
		addr := m.currentAddr()
		if addr == "" {
			continue
		}
		ctx, cancel := context.WithTimeout(r.Context(), c.cfg.PerTryTimeout)
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, "http://"+addr+"/v1/observe", bytes.NewReader(body))
		if err != nil {
			cancel()
			res.Errors++
			continue
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := c.client.Do(req)
		cancel()
		if err != nil {
			res.Errors++
			continue
		}
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			res.Forwarded++
		} else {
			res.Errors++
		}
	}
	status := http.StatusOK
	if res.Forwarded == 0 {
		status = http.StatusServiceUnavailable
	}
	if status != http.StatusOK {
		w.Header().Set("Retry-After", serve.RetryAfterSeconds)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(res)
}

// clusterHealth is the /healthz body.
type clusterHealth struct {
	Status     string         `json:"status"` // ok | degraded | down
	ReplicasUp int            `json:"replicas_up"`
	Draining   bool           `json:"draining,omitempty"`
	Members    []MemberStatus `json:"members"`
}

func (c *Cluster) handleHealth(w http.ResponseWriter, r *http.Request) {
	h := clusterHealth{
		ReplicasUp: c.UpCount(),
		Draining:   c.draining.Load(),
		Members:    c.Members(),
	}
	// Desired capacity counts members that should be serving: drained
	// and crash-looped slots are gone on purpose, not missing.
	desired := 0
	for _, m := range c.memberList() {
		m.mu.Lock()
		if !m.removed && m.state != stateFailed {
			desired++
		}
		m.mu.Unlock()
	}
	switch {
	case h.ReplicasUp == 0:
		h.Status = "down"
	case h.ReplicasUp < desired:
		h.Status = "degraded"
	default:
		h.Status = "ok"
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = json.NewEncoder(w).Encode(h)
}

// readyBody mirrors serve's /readyz shape. An SLO breach is reported in
// the detail but does not flip readiness — yanking the balancer for
// being slow would shed the capacity needed to recover.
type readyBody struct {
	Ready  bool           `json:"ready"`
	Reason string         `json:"reason,omitempty"`
	SLO    *obs.SLOStatus `json:"slo,omitempty"`
}

func (c *Cluster) handleReady(w http.ResponseWriter, r *http.Request) {
	reason := ""
	switch {
	case c.draining.Load():
		reason = "draining"
	case c.UpCount() == 0:
		reason = "no replicas up"
	}
	if reason != "" {
		writeError(w, http.StatusServiceUnavailable, reason)
		return
	}
	body := readyBody{Ready: true}
	if c.cfg.SLO != nil {
		st := c.cfg.SLO.Status()
		body.SLO = &st
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = json.NewEncoder(w).Encode(body)
}
