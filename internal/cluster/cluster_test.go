package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeReplica is a controllable prediction backend: it answers the
// cluster API with canned bodies and can be flipped into failure or
// stall modes, so router and supervisor behavior is testable without
// the full serve stack (the chaos gate covers that integration).
type fakeReplica struct {
	id, gen int
	ts      *httptest.Server
	hits    atomic.Int64 // /v1/predict requests served
	fail    atomic.Bool  // respond 500 to predicts
	hfail   atomic.Bool  // respond 500 to health probes (silences heartbeats)
	stallMS atomic.Int64 // delay predicts by this many ms
	metrics atomic.Value // string: /metrics page body ("" -> 404, like a daemon without -metrics)
	mfail   atomic.Bool  // respond 500 to /metrics
	lastRID atomic.Value // string: X-Request-Id of the last predict served
	done    chan struct{}
	once    sync.Once
}

func newFakeReplica(id, gen int) *fakeReplica {
	f := &fakeReplica{id: id, gen: gen, done: make(chan struct{})}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/predict", func(w http.ResponseWriter, r *http.Request) {
		if d := f.stallMS.Load(); d > 0 {
			select {
			case <-time.After(time.Duration(d) * time.Millisecond):
			case <-r.Context().Done():
				return
			}
		}
		f.hits.Add(1)
		f.lastRID.Store(r.Header.Get("X-Request-Id"))
		if f.fail.Load() {
			w.WriteHeader(http.StatusInternalServerError)
			fmt.Fprintf(w, `{"error":"injected"}`)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"value":1.5,"replica":%d}`, f.id)
	})
	mux.HandleFunc("POST /v1/observe", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, `{"drifted":false,"trust":"fresh"}`)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if f.hfail.Load() {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		fmt.Fprintf(w, `{"status":"ok","trust":"fresh"}`)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		if f.mfail.Load() {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		page, _ := f.metrics.Load().(string)
		if page == "" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fmt.Fprint(w, page)
	})
	f.ts = httptest.NewServer(mux)
	return f
}

func (f *fakeReplica) Addr() string { return strings.TrimPrefix(f.ts.URL, "http://") }

func (f *fakeReplica) Done() <-chan struct{} { return f.done }

func (f *fakeReplica) Close(ctx context.Context) error {
	f.once.Do(func() {
		f.ts.Close()
		close(f.done)
	})
	return nil
}

func (f *fakeReplica) Kill() {
	f.once.Do(func() {
		f.ts.CloseClientConnections()
		f.ts.Close()
		close(f.done)
	})
}

// fakeFleet tracks every fakeReplica a test factory spawned.
type fakeFleet struct {
	mu     sync.Mutex
	reps   []*fakeReplica // all incarnations, spawn order
	spawns map[int]int    // per-id spawn count
}

func newFakeFleet() *fakeFleet {
	return &fakeFleet{spawns: map[int]int{}}
}

func (fl *fakeFleet) factory(id, gen int) (Replica, error) {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	f := newFakeReplica(id, gen)
	fl.reps = append(fl.reps, f)
	fl.spawns[id]++
	return f, nil
}

// current returns the latest incarnation of id.
func (fl *fakeFleet) current(id int) *fakeReplica {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	for i := len(fl.reps) - 1; i >= 0; i-- {
		if fl.reps[i].id == id {
			return fl.reps[i]
		}
	}
	return nil
}

func (fl *fakeFleet) closeAll() {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	for _, f := range fl.reps {
		f.Kill()
	}
}

// newTestCluster starts a cluster over a fake fleet with fast,
// test-friendly supervision knobs (override via mutate).
func newTestCluster(t *testing.T, replicas int, mutate func(*Config)) (*Cluster, *fakeFleet, *httptest.Server) {
	t.Helper()
	fl := newFakeFleet()
	cfg := Config{
		Replicas:      replicas,
		Factory:       fl.factory,
		RestartBase:   5 * time.Millisecond,
		RestartMax:    50 * time.Millisecond,
		MinUptime:     time.Millisecond,
		Seed:          1,
		PerTryTimeout: time.Second,
		Timeout:       5 * time.Second,
		ProbeInterval: 25 * time.Millisecond,
		Breaker:       BreakerConfig{Cooldown: 50 * time.Millisecond},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := c.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	front := httptest.NewServer(c.Handler())
	t.Cleanup(func() {
		front.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = c.Shutdown(ctx)
		fl.closeAll()
	})
	return c, fl, front
}

func predictBody(i int) string {
	return fmt.Sprintf(`{"kind":"comp","dcomp":1,"contenders":[{"comm_fraction":0.3,"msg_words":%d}]}`, 100+i)
}

func postPredict(t *testing.T, front *httptest.Server, body string) (int, map[string]any) {
	t.Helper()
	resp, err := front.Client().Post(front.URL+"/v1/predict", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/predict: %v", err)
	}
	defer resp.Body.Close()
	var out map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&out)
	return resp.StatusCode, out
}

func waitFor(t *testing.T, what string, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.After(timeout)
	for !cond() {
		select {
		case <-deadline:
			t.Fatalf("timed out waiting for %s", what)
		case <-time.After(2 * time.Millisecond):
		}
	}
}

func TestClusterAffinity(t *testing.T) {
	_, fl, front := newTestCluster(t, 3, nil)

	// Equal keys concentrate on one replica.
	for i := 0; i < 20; i++ {
		if code, out := postPredict(t, front, predictBody(0)); code != http.StatusOK {
			t.Fatalf("predict = %d, body %v", code, out)
		}
	}
	hit := 0
	for id := 0; id < 3; id++ {
		if fl.current(id).hits.Load() > 0 {
			hit++
		}
	}
	if hit != 1 {
		t.Fatalf("equal-key traffic landed on %d replicas, want 1", hit)
	}

	// Distinct keys spread across the fleet.
	for i := 0; i < 60; i++ {
		if code, _ := postPredict(t, front, predictBody(i)); code != http.StatusOK {
			t.Fatalf("predict %d failed", i)
		}
	}
	spread := 0
	for id := 0; id < 3; id++ {
		if fl.current(id).hits.Load() > 0 {
			spread++
		}
	}
	if spread < 2 {
		t.Fatalf("60 distinct keys landed on %d replica(s), want ≥ 2", spread)
	}
}

func TestClusterBadRequestPassesThroughWithoutRouting(t *testing.T) {
	_, fl, front := newTestCluster(t, 2, nil)
	code, out := postPredict(t, front, `{"kind":"nonsense"}`)
	if code != http.StatusBadRequest && code != http.StatusUnprocessableEntity {
		t.Fatalf("invalid request = %d (%v), want 400/422", code, out)
	}
	for id := 0; id < 2; id++ {
		if n := fl.current(id).hits.Load(); n != 0 {
			t.Fatalf("invalid request reached replica %d (%d hits)", id, n)
		}
	}
}

func TestClusterFailoverAndRejoin(t *testing.T) {
	c, fl, front := newTestCluster(t, 3, nil)

	// Find the primary for this key.
	body := predictBody(0)
	if code, _ := postPredict(t, front, body); code != http.StatusOK {
		t.Fatal("warmup predict failed")
	}
	primary := -1
	for id := 0; id < 3; id++ {
		if fl.current(id).hits.Load() > 0 {
			primary = id
			break
		}
	}
	if primary < 0 {
		t.Fatal("no replica served the warmup request")
	}

	fl.current(primary).Kill()
	// Service continues through failover while the primary is down.
	for i := 0; i < 10; i++ {
		if code, out := postPredict(t, front, body); code != http.StatusOK {
			t.Fatalf("predict during failover = %d (%v)", code, out)
		}
	}
	// The supervisor respawns the dead member and it rejoins the ring.
	waitFor(t, "crashed replica rejoin", 5*time.Second, func() bool {
		return c.UpCount() == 3
	})
	fl.mu.Lock()
	spawns := fl.spawns[primary]
	fl.mu.Unlock()
	if spawns < 2 {
		t.Fatalf("primary %d spawned %d times, want ≥ 2 (restart)", primary, spawns)
	}
	if code, _ := postPredict(t, front, body); code != http.StatusOK {
		t.Fatal("predict after rejoin failed")
	}
}

func TestClusterRetriesUpstreamFailure(t *testing.T) {
	_, fl, front := newTestCluster(t, 3, nil)
	body := predictBody(3)
	if code, _ := postPredict(t, front, body); code != http.StatusOK {
		t.Fatal("warmup predict failed")
	}
	primary := -1
	for id := 0; id < 3; id++ {
		if fl.current(id).hits.Load() > 0 {
			primary = id
		}
	}
	fl.current(primary).fail.Store(true)
	code, out := postPredict(t, front, body)
	if code != http.StatusOK {
		t.Fatalf("predict with failing primary = %d (%v), want 200 via failover", code, out)
	}
	if got := int(out["replica"].(float64)); got == primary {
		t.Fatalf("answer came from the failing primary %d", got)
	}
}

func TestClusterCrashLoopBudget(t *testing.T) {
	var allow atomic.Bool
	allow.Store(true)
	fl := newFakeFleet()
	cfg := Config{
		Replicas: 2,
		Factory: func(id, gen int) (Replica, error) {
			if id == 1 && !allow.Load() {
				return nil, fmt.Errorf("injected spawn failure")
			}
			return fl.factory(id, gen)
		},
		RestartBase:     time.Millisecond,
		RestartMax:      5 * time.Millisecond,
		MinUptime:       10 * time.Second, // every death is a strike
		CrashLoopBudget: 3,
		Seed:            1,
		PerTryTimeout:   time.Second,
		ProbeInterval:   25 * time.Millisecond,
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := c.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	front := httptest.NewServer(c.Handler())
	defer func() {
		front.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = c.Shutdown(ctx)
		fl.closeAll()
	}()

	allow.Store(false)
	fl.current(1).Kill()
	waitFor(t, "member 1 abandoned", 5*time.Second, func() bool {
		return c.Members()[1].State == "failed"
	})
	if got := c.UpCount(); got != 1 {
		t.Fatalf("UpCount = %d after abandonment, want 1", got)
	}
	// The surviving replica keeps serving the whole keyspace.
	for i := 0; i < 10; i++ {
		if code, _ := postPredict(t, front, predictBody(i)); code != http.StatusOK {
			t.Fatalf("predict %d failed after abandonment", i)
		}
	}
}

func TestClusterHedgingBeatsStalledPrimary(t *testing.T) {
	_, fl, front := newTestCluster(t, 3, func(cfg *Config) {
		cfg.HedgeDelay = 20 * time.Millisecond
	})
	body := predictBody(5)
	if code, _ := postPredict(t, front, body); code != http.StatusOK {
		t.Fatal("warmup predict failed")
	}
	primary := -1
	for id := 0; id < 3; id++ {
		if fl.current(id).hits.Load() > 0 {
			primary = id
		}
	}
	fl.current(primary).stallMS.Store(1500)

	start := time.Now()
	code, out := postPredict(t, front, body)
	elapsed := time.Since(start)
	if code != http.StatusOK {
		t.Fatalf("hedged predict = %d (%v)", code, out)
	}
	if got := int(out["replica"].(float64)); got == primary {
		t.Fatalf("answer came from the stalled primary %d", got)
	}
	if elapsed > time.Second {
		t.Fatalf("hedged predict took %v — rode out the full stall instead of hedging", elapsed)
	}
}

// TestClusterClientGoneForgiven: a client that cancels mid-request
// produces a typed ErrClientGone outcome and leaves the replica's
// breaker untouched — misbehaving clients must not be able to trip
// breakers and evict healthy replicas.
func TestClusterClientGoneForgiven(t *testing.T) {
	c, fl, front := newTestCluster(t, 1, func(cfg *Config) {
		cfg.ProbeInterval = time.Hour // only request outcomes feed the breaker
		cfg.Breaker = BreakerConfig{MinVolume: 2, TripRate: 0.01, Cooldown: time.Hour}
	})
	fl.current(0).stallMS.Store(200)

	for i := 0; i < 10; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			front.URL+"/v1/predict", strings.NewReader(predictBody(i)))
		if err != nil {
			t.Fatal(err)
		}
		errc := make(chan error, 1)
		go func() {
			_, err := front.Client().Do(req)
			errc <- err
		}()
		time.Sleep(10 * time.Millisecond) // let the request reach the replica
		cancel()
		if err := <-errc; err == nil {
			t.Fatal("canceled request returned a response")
		}
	}

	m := c.memberByID(0)
	if vol, _ := m.breaker.Stats(); vol != 0 {
		t.Fatalf("breaker volume %d after client cancels, want 0 (forgiven)", vol)
	}
	if got := m.breaker.State(); got != Closed {
		t.Fatalf("breaker state %v after client cancels, want closed", got)
	}
	// The replica is still routable for a patient client.
	fl.current(0).stallMS.Store(0)
	if status, _ := postPredict(t, front, predictBody(99)); status != 200 {
		t.Fatalf("post-cancel predict status %d", status)
	}
}

func TestClusterDrainMember(t *testing.T) {
	c, fl, front := newTestCluster(t, 3, nil)
	body := predictBody(7)
	if code, _ := postPredict(t, front, body); code != http.StatusOK {
		t.Fatal("warmup predict failed")
	}
	primary := -1
	for id := 0; id < 3; id++ {
		if fl.current(id).hits.Load() > 0 {
			primary = id
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := c.DrainMember(ctx, primary); err != nil {
		t.Fatalf("DrainMember: %v", err)
	}
	if got := c.UpCount(); got != 2 {
		t.Fatalf("UpCount = %d after drain, want 2", got)
	}
	if got := c.Members()[primary].State; got != "draining" {
		t.Fatalf("drained member state %q", got)
	}
	before := fl.current(primary).hits.Load()
	for i := 0; i < 10; i++ {
		if code, _ := postPredict(t, front, body); code != http.StatusOK {
			t.Fatalf("predict after drain failed")
		}
	}
	if got := fl.current(primary).hits.Load(); got != before {
		t.Fatalf("drained member took %d new requests", got-before)
	}
	// Drained members stay out: the supervisor must not respawn them.
	time.Sleep(100 * time.Millisecond)
	fl.mu.Lock()
	spawns := fl.spawns[primary]
	fl.mu.Unlock()
	if spawns != 1 {
		t.Fatalf("drained member respawned (%d spawns)", spawns)
	}
	if err := c.DrainMember(ctx, primary); err == nil {
		t.Fatal("draining an already-drained member succeeded")
	}
}

func TestClusterShutdown(t *testing.T) {
	fl := newFakeFleet()
	c, err := New(Config{
		Replicas:      2,
		Factory:       fl.factory,
		Seed:          1,
		PerTryTimeout: time.Second,
		ProbeInterval: 25 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := c.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	front := httptest.NewServer(c.Handler())
	defer front.Close()
	defer fl.closeAll()

	if code, _ := postPredict(t, front, predictBody(0)); code != http.StatusOK {
		t.Fatal("predict before shutdown failed")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := c.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// Every replica is closed.
	for id := 0; id < 2; id++ {
		select {
		case <-fl.current(id).Done():
		default:
			t.Fatalf("replica %d still running after Shutdown", id)
		}
	}
	// New work is refused with a back-off hint.
	resp, err := front.Client().Post(front.URL+"/v1/predict", "application/json", strings.NewReader(predictBody(0)))
	if err != nil {
		t.Fatalf("POST after shutdown: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("predict after shutdown = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("post-shutdown 503 carries no Retry-After")
	}
	// Idempotent.
	if err := c.Shutdown(ctx); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
}

func TestClusterHealthAndReady(t *testing.T) {
	c, fl, front := newTestCluster(t, 2, nil)
	get := func(path string) (int, map[string]any) {
		resp, err := front.Client().Get(front.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var out map[string]any
		_ = json.NewDecoder(resp.Body).Decode(&out)
		return resp.StatusCode, out
	}
	code, h := get("/healthz")
	if code != http.StatusOK || h["status"] != "ok" {
		t.Fatalf("/healthz = %d %v", code, h)
	}
	if code, r := get("/readyz"); code != http.StatusOK || r["ready"] != true {
		t.Fatalf("/readyz = %d %v", code, r)
	}

	fl.current(0).Kill()
	waitFor(t, "health degraded", 2*time.Second, func() bool {
		_, h := get("/healthz")
		return h["status"] == "degraded" || h["status"] == "ok" && c.UpCount() == 2
	})
}

func TestClusterStartFailureTearsDown(t *testing.T) {
	fl := newFakeFleet()
	c, err := New(Config{
		Replicas: 3,
		Factory: func(id, gen int) (Replica, error) {
			if id == 2 {
				return nil, fmt.Errorf("injected")
			}
			return fl.factory(id, gen)
		},
		Seed: 1,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := c.Start(); err == nil {
		t.Fatal("Start succeeded with a failing factory")
	}
	for _, f := range fl.reps {
		select {
		case <-f.Done():
		default:
			t.Fatalf("replica %d left running after failed Start", f.id)
		}
	}
}

func TestClusterObserveBroadcast(t *testing.T) {
	_, _, front := newTestCluster(t, 3, nil)
	resp, err := front.Client().Post(front.URL+"/v1/observe", "application/json",
		strings.NewReader(`{"predicted":1.2,"observed":1.3}`))
	if err != nil {
		t.Fatalf("POST /v1/observe: %v", err)
	}
	defer resp.Body.Close()
	var out observeResult
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if resp.StatusCode != http.StatusOK || out.Forwarded != 3 {
		t.Fatalf("observe broadcast = %d, forwarded %d of 3", resp.StatusCode, out.Forwarded)
	}
}
