package cluster

import (
	"sync"
	"time"
)

// Heartbeat-based failure detection for remote members, in the
// phi-accrual family (Hayashibara et al.): instead of a fixed "dead
// after T silent" timeout, the detector learns the member's heartbeat
// inter-arrival rhythm as an EWMA and expresses suspicion as elapsed
// silence in units of that rhythm. A member on a slow or jittery link
// earns a proportionally longer leash; a member that normally answers
// like clockwork is suspected quickly. Suspicion only moves members in
// and out of the routing ring — request-level failures keep feeding the
// per-member circuit breaker, so the two mechanisms stay complementary
// instead of duplicated: the breaker reacts to errors, the detector to
// silence.

// suspicionAlpha is the EWMA smoothing factor for heartbeat
// inter-arrival gaps: ~5 beats of memory, enough to adapt to a link's
// real rhythm without one slow beat poisoning the estimate.
const suspicionAlpha = 0.2

// suspicion is one remote member's failure-detector state.
// Goroutine-safe.
type suspicion struct {
	mu        sync.Mutex
	threshold float64 // suspicion level at which the member is suspect
	floor     float64 // lower bound on the learned mean, seconds
	mean      float64 // EWMA heartbeat inter-arrival, seconds
	last      time.Time
}

// newSuspicion builds a detector expecting heartbeats every `expected`,
// suspecting after `threshold` expected-intervals of silence. The
// learned mean is floored at half the expected interval so a burst of
// fast beats cannot make the detector hair-triggered.
func newSuspicion(expected time.Duration, threshold float64, now time.Time) *suspicion {
	return &suspicion{
		threshold: threshold,
		floor:     expected.Seconds() / 2,
		mean:      expected.Seconds(),
		last:      now,
	}
}

// beat records one successful heartbeat at now.
func (s *suspicion) beat(now time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !now.After(s.last) {
		return
	}
	gap := now.Sub(s.last).Seconds()
	s.last = now
	s.mean = (1-suspicionAlpha)*s.mean + suspicionAlpha*gap
	if s.mean < s.floor {
		s.mean = s.floor
	}
}

// level reports the current suspicion: elapsed silence divided by the
// learned mean inter-arrival. ~1 is a member right on schedule; each
// additional unit is one more expected heartbeat missed.
func (s *suspicion) level(now time.Time) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	elapsed := now.Sub(s.last).Seconds()
	if elapsed <= 0 {
		return 0
	}
	return elapsed / s.mean
}

// suspect reports whether the silence has crossed the threshold.
func (s *suspicion) suspect(now time.Time) bool {
	return s.level(now) > s.threshold
}
