package cluster

import (
	"testing"
	"time"
)

func TestSuspicionStaysLowOnSchedule(t *testing.T) {
	t0 := time.Unix(1000, 0)
	s := newSuspicion(100*time.Millisecond, 4, t0)
	now := t0
	for i := 0; i < 50; i++ {
		now = now.Add(100 * time.Millisecond)
		s.beat(now)
		if s.suspect(now) {
			t.Fatalf("on-schedule member suspect at beat %d (level %.2f)", i, s.level(now))
		}
	}
	// One expected interval of silence is still on rhythm.
	if s.suspect(now.Add(100 * time.Millisecond)) {
		t.Fatal("one missed interval already suspect")
	}
	// Five missed intervals crosses the threshold of 4.
	if !s.suspect(now.Add(500 * time.Millisecond)) {
		t.Fatalf("five missed intervals not suspect (level %.2f)", s.level(now.Add(500*time.Millisecond)))
	}
}

// TestSuspicionAdaptsToSlowRhythm: a member that always heartbeats
// slowly earns a proportionally longer leash.
func TestSuspicionAdaptsToSlowRhythm(t *testing.T) {
	t0 := time.Unix(1000, 0)
	s := newSuspicion(100*time.Millisecond, 4, t0)
	now := t0
	// Beats actually arrive every 300ms; the EWMA converges up.
	for i := 0; i < 60; i++ {
		now = now.Add(300 * time.Millisecond)
		s.beat(now)
	}
	if s.suspect(now.Add(900 * time.Millisecond)) {
		t.Fatalf("3 slow-rhythm intervals suspect after adaptation (level %.2f)",
			s.level(now.Add(900*time.Millisecond)))
	}
	if !s.suspect(now.Add(2 * time.Second)) {
		t.Fatal("prolonged silence never suspect after adaptation")
	}
}

// TestSuspicionFloorBoundsSensitivity: a burst of rapid beats cannot
// shrink the learned mean below half the configured interval, so a
// single scheduling hiccup after the burst does not read as a failure.
func TestSuspicionFloorBoundsSensitivity(t *testing.T) {
	t0 := time.Unix(1000, 0)
	s := newSuspicion(100*time.Millisecond, 4, t0)
	now := t0
	for i := 0; i < 200; i++ {
		now = now.Add(time.Millisecond)
		s.beat(now)
	}
	// 150ms of silence is 3 floor-intervals (floor 50ms) — level ≤ 3,
	// under the threshold of 4 despite the 1ms observed rhythm.
	if s.suspect(now.Add(150 * time.Millisecond)) {
		t.Fatalf("floored detector suspect after one hiccup (level %.2f)",
			s.level(now.Add(150*time.Millisecond)))
	}
}

// TestSuspicionRecovery: a beat after a long silence resets the level;
// the one huge gap bumps the EWMA but the detector keeps working.
func TestSuspicionRecovery(t *testing.T) {
	t0 := time.Unix(1000, 0)
	s := newSuspicion(100*time.Millisecond, 4, t0)
	now := t0
	for i := 0; i < 20; i++ {
		now = now.Add(100 * time.Millisecond)
		s.beat(now)
	}
	// Partition: 5 seconds of silence.
	now = now.Add(5 * time.Second)
	if !s.suspect(now) {
		t.Fatal("5s of silence not suspect")
	}
	// Heal: the next beat clears the suspicion immediately.
	s.beat(now)
	if s.suspect(now.Add(10 * time.Millisecond)) {
		t.Fatal("member still suspect right after a fresh beat")
	}
	// Out-of-order or duplicate timestamps are ignored, not counted as
	// negative gaps.
	s.beat(now.Add(-time.Second))
	if got := s.level(now.Add(100 * time.Millisecond)); got < 0 {
		t.Fatalf("negative suspicion level %.2f", got)
	}
}
