// Fleet-wide metrics aggregation: the balancer periodically scrapes
// every member's /metrics page, reassembles the Prometheus text into
// snapshots, and merges them under a fleet_* prefix — counters and
// histogram buckets sum across members, so fleet_serve_stage_seconds is
// the whole fleet's latency attribution in one histogram family. The
// merged view is served two ways: appended to the balancer's own
// /metrics exposition, and digested into /debug/fleet — a single page
// (HTML for humans, JSON with ?format=json) answering "where is the
// fleet spending its time" with members, ring weights, breaker states,
// suspicion levels, and per-stage p50/p99.
//
// Members that do not expose /metrics (in-process replicas share this
// process's registry; daemons started without -metrics) answer 404 and
// are skipped, not counted as scrape failures.
package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"html"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"contention/internal/obs"
)

// DefaultFleetInterval is the scrape period when FleetConfig.Interval
// is zero.
const DefaultFleetInterval = 5 * time.Second

// fleetStages are the stage families surfaced on /debug/fleet: the
// replicas' serve pipeline (merged across members) and the balancer's
// own router pipeline (local registry).
var fleetStages = []struct {
	metric string
	tier   string
}{
	{obs.MetricClusterStageSeconds, "lb"},
	{"fleet_" + obs.MetricServeStageSeconds, "serve"},
}

// FleetConfig parameterizes a Fleet scraper.
type FleetConfig struct {
	// Interval is the scrape period (DefaultFleetInterval when zero).
	Interval time.Duration
	// Timeout bounds each member scrape (Interval when zero).
	Timeout time.Duration
	// SLO, when set, is shown on /debug/fleet.
	SLO *obs.SLOTracker
}

// Fleet scrapes member metrics and serves the merged view. Build with
// NewFleet, drive with Run (or ScrapeOnce in tests), mount Handler and
// MetricsHandler.
type Fleet struct {
	c      *Cluster
	cfg    FleetConfig
	merged atomic.Pointer[fleetScrape]
}

// fleetScrape is one completed scrape round.
type fleetScrape struct {
	snap    obs.Snapshot // merged, fleet_*-prefixed
	members int          // members that answered with a metrics page
	at      time.Time
}

// NewFleet returns a scraper over c's members.
func NewFleet(c *Cluster, cfg FleetConfig) *Fleet {
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultFleetInterval
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = cfg.Interval
	}
	return &Fleet{c: c, cfg: cfg}
}

// Run scrapes on the configured interval until stop closes.
func (f *Fleet) Run(stop <-chan struct{}) {
	t := time.NewTicker(f.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			f.ScrapeOnce(context.Background())
		}
	}
}

// ScrapeOnce scrapes every up member's /metrics now and swaps in the
// merged result. Returns how many members answered.
func (f *Fleet) ScrapeOnce(ctx context.Context) int {
	start := time.Now()
	mFleetScrapes.Inc()
	var snaps []obs.Snapshot
	for _, m := range f.c.memberList() {
		addr := m.currentAddr()
		if addr == "" {
			continue
		}
		snap, ok := f.scrapeMember(ctx, addr)
		if ok {
			snaps = append(snaps, snap)
		}
	}
	merged := obs.MergeSnapshots("fleet_", snaps...)
	f.merged.Store(&fleetScrape{snap: merged, members: len(snaps), at: start})
	mFleetMembersSeen.Set(float64(len(snaps)))
	mFleetScrapeSeconds.Observe(time.Since(start).Seconds())
	return len(snaps)
}

// scrapeMember fetches one member's exposition page. A 404 means the
// member does not export metrics — skipped silently; anything else
// that fails counts as a scrape error.
func (f *Fleet) scrapeMember(ctx context.Context, addr string) (obs.Snapshot, bool) {
	sctx, cancel := context.WithTimeout(ctx, f.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(sctx, http.MethodGet, "http://"+addr+"/metrics", nil)
	if err != nil {
		mFleetScrapeErrors.Inc()
		return obs.Snapshot{}, false
	}
	resp, err := f.c.client.Do(req)
	if err != nil {
		mFleetScrapeErrors.Inc()
		return obs.Snapshot{}, false
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return obs.Snapshot{}, false
	}
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		mFleetScrapeErrors.Inc()
		return obs.Snapshot{}, false
	}
	const maxMetricsBytes = 4 << 20
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxMetricsBytes))
	if err != nil {
		mFleetScrapeErrors.Inc()
		return obs.Snapshot{}, false
	}
	snap, err := obs.ParsePrometheusText(string(body))
	if err != nil {
		mFleetScrapeErrors.Inc()
		return obs.Snapshot{}, false
	}
	return snap, true
}

// Merged returns the latest merged fleet snapshot (zero before the
// first scrape) and how many members contributed.
func (f *Fleet) Merged() (obs.Snapshot, int) {
	s := f.merged.Load()
	if s == nil {
		return obs.Snapshot{}, 0
	}
	return s.snap, s.members
}

// MetricsHandler serves the balancer's own registry followed by the
// merged fleet_* series — one page, two namespaces, so a scraper of the
// balancer sees the whole fleet.
func (f *Fleet) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = obs.Default().WritePrometheus(w)
		if s := f.merged.Load(); s != nil {
			_ = s.snap.WritePrometheus(w)
		}
	})
}

// StageLatency is one pipeline stage's fleet-wide latency summary.
type StageLatency struct {
	Tier  string  `json:"tier"` // lb | serve
	Stage string  `json:"stage"`
	Count int64   `json:"count"`
	P50ms float64 `json:"p50_ms"`
	P99ms float64 `json:"p99_ms"`
}

// FleetStatus is the /debug/fleet JSON body.
type FleetStatus struct {
	ReplicasUp     int            `json:"replicas_up"`
	Members        []MemberStatus `json:"members"`
	ScrapedMembers int            `json:"scraped_members"`
	ScrapedAt      string         `json:"scraped_at,omitempty"`
	Stages         []StageLatency `json:"stages,omitempty"`
	SLO            *obs.SLOStatus `json:"slo,omitempty"`
}

// Status assembles the fleet digest from the latest scrape, the local
// registry, and the cluster's member table.
func (f *Fleet) Status() FleetStatus {
	st := FleetStatus{
		ReplicasUp: f.c.UpCount(),
		Members:    f.c.Members(),
	}
	if s := f.merged.Load(); s != nil {
		st.ScrapedMembers = s.members
		st.ScrapedAt = s.at.UTC().Format(time.RFC3339)
	}
	local := obs.Default().Snapshot()
	merged, _ := f.Merged()
	for _, fam := range fleetStages {
		src := local
		if strings.HasPrefix(fam.metric, "fleet_") {
			src = merged
		}
		st.Stages = append(st.Stages, stageLatencies(src, fam.metric, fam.tier)...)
	}
	if f.cfg.SLO != nil {
		s := f.cfg.SLO.Status()
		st.SLO = &s
	}
	return st
}

// stageLatencies extracts per-stage quantiles from one histogram family
// in snap, sorted by stage name.
func stageLatencies(snap obs.Snapshot, metric, tier string) []StageLatency {
	prefix := metric + `{stage="`
	var out []StageLatency
	for _, m := range snap.Metrics {
		if !strings.HasPrefix(m.Name, prefix) || !strings.HasSuffix(m.Name, `"}`) {
			continue
		}
		stage := m.Name[len(prefix) : len(m.Name)-2]
		sl := StageLatency{Tier: tier, Stage: stage, Count: m.Count}
		if p50, ok := m.Quantile(0.5); ok {
			sl.P50ms = p50 * 1e3
		}
		if p99, ok := m.Quantile(0.99); ok {
			sl.P99ms = p99 * 1e3
		}
		out = append(out, sl)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Stage < out[j].Stage })
	return out
}

// Handler serves /debug/fleet: JSON with ?format=json (or an Accept
// header preferring it), HTML otherwise.
func (f *Fleet) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		st := f.Status()
		if r.URL.Query().Get("format") == "json" ||
			strings.Contains(r.Header.Get("Accept"), "application/json") {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusOK)
			_ = json.NewEncoder(w).Encode(st)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		writeFleetHTML(w, st)
	})
}

// writeFleetHTML renders the digest as a dependency-free HTML page.
func writeFleetHTML(w io.Writer, st FleetStatus) {
	fmt.Fprint(w, `<!doctype html><meta charset="utf-8"><title>fleet</title>
<style>
body{font:14px/1.4 system-ui,sans-serif;margin:2em auto;max-width:60em;padding:0 1em}
table{border-collapse:collapse;margin:1em 0}
td,th{border:1px solid #ccc;padding:.3em .6em;text-align:left}
th{background:#f3f3f3}
.bad{color:#b00}.ok{color:#070}
</style>
`)
	fmt.Fprintf(w, "<h1>fleet</h1><p>%d replicas up, %d scraped", st.ReplicasUp, st.ScrapedMembers)
	if st.ScrapedAt != "" {
		fmt.Fprintf(w, " at %s", html.EscapeString(st.ScrapedAt))
	}
	fmt.Fprint(w, "</p>\n")

	if st.SLO != nil {
		cls, verdict := "ok", "within objectives"
		if st.SLO.Breach {
			cls, verdict = "bad", "BREACH: "+html.EscapeString(st.SLO.Reason)
		}
		fmt.Fprintf(w, `<h2>slo</h2><p class=%q>%s</p>
<table><tr><th>window</th><th>latency burn</th><th>availability burn</th><th>total</th><th>slow</th><th>failed</th></tr>
<tr><td>fast (%gs)</td><td>%.2f</td><td>%.2f</td><td>%d</td><td>%d</td><td>%d</td></tr>
<tr><td>slow (%gs)</td><td>%.2f</td><td>%.2f</td><td>%d</td><td>%d</td><td>%d</td></tr></table>
`,
			cls, verdict,
			st.SLO.Fast.Seconds, st.SLO.Fast.LatencyBurn, st.SLO.Fast.AvailabilityBurn,
			st.SLO.Fast.Total, st.SLO.Fast.Slow, st.SLO.Fast.Failed,
			st.SLO.Slow.Seconds, st.SLO.Slow.LatencyBurn, st.SLO.Slow.AvailabilityBurn,
			st.SLO.Slow.Total, st.SLO.Slow.Slow, st.SLO.Slow.Failed)
	}

	fmt.Fprint(w, `<h2>members</h2>
<table><tr><th>id</th><th>state</th><th>addr</th><th>weight</th><th>breaker</th><th>in-flight</th><th>restarts</th><th>suspicion</th></tr>
`)
	for _, m := range st.Members {
		cls := "ok"
		if m.State != "up" {
			cls = "bad"
		}
		fmt.Fprintf(w, "<tr><td>%d</td><td class=%q>%s</td><td>%s</td><td>%g</td><td>%s</td><td>%d</td><td>%d</td><td>%.2f</td></tr>\n",
			m.ID, cls, html.EscapeString(m.State), html.EscapeString(m.Addr),
			m.Weight, html.EscapeString(m.Breaker), m.InFlight, m.Restarts, m.Suspicion)
	}
	fmt.Fprint(w, "</table>\n")

	if len(st.Stages) > 0 {
		fmt.Fprint(w, `<h2>latency attribution</h2>
<table><tr><th>tier</th><th>stage</th><th>count</th><th>p50 (ms)</th><th>p99 (ms)</th></tr>
`)
		for _, s := range st.Stages {
			fmt.Fprintf(w, "<tr><td>%s</td><td>%s</td><td>%d</td><td>%.3f</td><td>%.3f</td></tr>\n",
				html.EscapeString(s.Tier), html.EscapeString(s.Stage), s.Count, s.P50ms, s.P99ms)
		}
		fmt.Fprint(w, "</table>\n")
	}
}
