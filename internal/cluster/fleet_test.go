package cluster

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"contention/internal/obs"
)

// withClusterTelemetry enables recording for one test and restores the
// prior state afterwards.
func withClusterTelemetry(t *testing.T) {
	t.Helper()
	prev := obs.Enabled()
	obs.SetEnabled(true)
	t.Cleanup(func() { obs.SetEnabled(prev) })
}

// memberMetricsPage is the exposition text the fake members serve —
// a counter plus a stage histogram, the families /debug/fleet digests.
func memberMetricsPage(responses int, decodeFastCount int) string {
	var b strings.Builder
	snap := obs.Snapshot{Metrics: []obs.MetricSnapshot{
		{Name: "serve_responses_total{outcome=\"ok\"}", Kind: "counter", Value: float64(responses)},
		{Name: obs.MetricServeStageSeconds + "{stage=\"decode\"}", Kind: "histogram",
			Count: int64(decodeFastCount), Sum: 0.001 * float64(decodeFastCount),
			Buckets: []obs.BucketSnapshot{
				{UpperBound: 0.001, Count: int64(decodeFastCount)},
				{UpperBound: 0.01, Count: int64(decodeFastCount)},
			}},
	}}
	if err := snap.WritePrometheus(&b); err != nil {
		panic(err)
	}
	return b.String()
}

// TestFleetScrapeMerge pins the aggregation rules: members exposing
// /metrics are parsed and summed under fleet_*, members answering 404
// are skipped silently, and a member serving garbage counts as a
// scrape error without poisoning the merge.
func TestFleetScrapeMerge(t *testing.T) {
	withClusterTelemetry(t)
	c, fl, _ := newTestCluster(t, 3, nil)
	f := NewFleet(c, FleetConfig{})

	fl.current(0).metrics.Store(memberMetricsPage(5, 10))
	fl.current(1).metrics.Store(memberMetricsPage(7, 30))
	// Replica 2 keeps its default "" page -> 404, the daemon-without-
	// -metrics shape.

	errsBefore := mFleetScrapeErrors.Value()
	if n := f.ScrapeOnce(context.Background()); n != 2 {
		t.Fatalf("ScrapeOnce = %d members, want 2", n)
	}
	if got := mFleetScrapeErrors.Value(); got != errsBefore {
		t.Fatalf("404 member counted as scrape error (%d -> %d)", errsBefore, got)
	}

	merged, members := f.Merged()
	if members != 2 {
		t.Fatalf("Merged members = %d, want 2", members)
	}
	if m, ok := merged.Find(`fleet_serve_responses_total{outcome="ok"}`); !ok || m.Value != 12 {
		t.Fatalf("fleet responses = %+v ok=%v, want summed 12", m, ok)
	}
	h, ok := merged.Find("fleet_" + obs.MetricServeStageSeconds + `{stage="decode"}`)
	if !ok || h.Count != 40 {
		t.Fatalf("fleet decode histogram = %+v ok=%v, want merged count 40", h, ok)
	}
	if len(h.Buckets) != 2 || h.Buckets[0].Count != 40 {
		t.Fatalf("fleet decode buckets = %+v, want per-bound sums", h.Buckets)
	}

	// A member serving an unparsable page is a scrape error; the other
	// members still merge.
	fl.current(2).metrics.Store("this is { not exposition")
	if n := f.ScrapeOnce(context.Background()); n != 2 {
		t.Fatalf("ScrapeOnce with garbage member = %d, want 2", n)
	}
	if got := mFleetScrapeErrors.Value(); got != errsBefore+1 {
		t.Fatalf("garbage page: scrape errors %d -> %d, want +1", errsBefore, got)
	}

	// So is a 500.
	fl.current(2).mfail.Store(true)
	f.ScrapeOnce(context.Background())
	if got := mFleetScrapeErrors.Value(); got != errsBefore+2 {
		t.Fatalf("500 page: scrape errors %d -> %d, want +2", errsBefore, got)
	}
}

// TestFleetStatusAndDebugPage drives /debug/fleet both ways: the JSON
// digest must carry members, scrape state, merged per-stage quantiles,
// and SLO status; the HTML page must render the same tables.
func TestFleetStatusAndDebugPage(t *testing.T) {
	withClusterTelemetry(t)
	slo, err := obs.NewSLOTracker(obs.SLOConfig{
		LatencyThresholdSeconds: 0.1,
		Registry:                obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	c, fl, _ := newTestCluster(t, 2, nil)
	f := NewFleet(c, FleetConfig{SLO: slo})
	fl.current(0).metrics.Store(memberMetricsPage(3, 20))
	fl.current(1).metrics.Store(memberMetricsPage(4, 20))
	f.ScrapeOnce(context.Background())

	st := f.Status()
	if st.ReplicasUp != 2 || len(st.Members) != 2 || st.ScrapedMembers != 2 {
		t.Fatalf("status %+v, want 2 up / 2 members / 2 scraped", st)
	}
	if st.ScrapedAt == "" {
		t.Error("ScrapedAt missing after a scrape")
	}
	if st.SLO == nil {
		t.Error("SLO status missing")
	}
	found := false
	for _, s := range st.Stages {
		if s.Tier == "serve" && s.Stage == "decode" {
			found = true
			if s.Count != 40 || s.P50ms <= 0 || s.P99ms < s.P50ms {
				t.Errorf("serve/decode stage = %+v, want merged count 40 and sane quantiles", s)
			}
		}
	}
	if !found {
		t.Fatalf("no serve/decode stage in %+v", st.Stages)
	}

	ts := httptest.NewServer(f.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("json content type %q", ct)
	}
	var decoded FleetStatus
	if err := json.NewDecoder(resp.Body).Decode(&decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.ReplicasUp != 2 || len(decoded.Stages) == 0 || decoded.SLO == nil {
		t.Fatalf("JSON digest %+v", decoded)
	}

	resp, err = http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	page, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	html := string(page)
	for _, want := range []string{"<h1>fleet</h1>", "<h2>members</h2>", "<h2>latency attribution</h2>", "<h2>slo</h2>", "decode"} {
		if !strings.Contains(html, want) {
			t.Errorf("HTML page missing %q:\n%s", want, html)
		}
	}
}

// TestFleetMetricsHandler pins the balancer's merged exposition: one
// page carrying both the local cluster_* families and the scraped
// fleet_* families, parseable as standard exposition text.
func TestFleetMetricsHandler(t *testing.T) {
	withClusterTelemetry(t)
	c, fl, front := newTestCluster(t, 2, nil)
	// Route one request so local cluster counters move.
	if code, _ := postPredict(t, front, predictBody(1)); code != http.StatusOK {
		t.Fatalf("predict status %d", code)
	}
	f := NewFleet(c, FleetConfig{})
	fl.current(0).metrics.Store(memberMetricsPage(9, 5))
	f.ScrapeOnce(context.Background())

	ts := httptest.NewServer(f.MetricsHandler())
	defer ts.Close()
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := obs.ParsePrometheusText(string(body))
	if err != nil {
		t.Fatalf("merged exposition does not parse: %v", err)
	}
	if m, ok := snap.Find(`fleet_serve_responses_total{outcome="ok"}`); !ok || m.Value != 9 {
		t.Errorf("fleet series = %+v ok=%v, want 9", m, ok)
	}
	if _, ok := snap.Find(`cluster_requests_total{outcome="ok"}`); !ok {
		t.Errorf("local cluster series missing from merged page; got %d series", len(snap.Metrics))
	}
}
