package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"sort"
	"sync"
	"time"
)

// Membership keeps a cluster's remote member set in sync with an
// external source of truth — a static members file or a DNS name —
// without restarts. Reloads are diffs, not rebuilds: a new address
// joins via AddRemote (only its ring points appear), a vanished
// address drains gracefully (in-flight requests finish; its keys remap
// to ring successors), and a weight change moves only that member's
// points. The bounded-remap property of the weighted ring therefore
// holds across reloads: changing one member never reshuffles
// bystanders' keys.

// MemberSpec is one entry in a members file: where the replica is and
// how much of the keyspace it should own.
type MemberSpec struct {
	Addr   string  `json:"addr"`
	Weight float64 `json:"weight,omitempty"` // 0 → 1
}

// membersFile is the on-disk format:
//
//	{"members": [{"addr": "10.0.0.5:8080", "weight": 2}, ...]}
type membersFile struct {
	Members []MemberSpec `json:"members"`
}

// ParseMembers decodes and validates a members-file payload. Weights
// default to 1; duplicate or malformed addresses are errors (a typo'd
// fleet definition should fail loudly at load time, not route oddly).
func ParseMembers(data []byte) ([]MemberSpec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var f membersFile
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("cluster: members file: %w", err)
	}
	seen := make(map[string]bool, len(f.Members))
	for i := range f.Members {
		m := &f.Members[i]
		if err := validateMemberAddr(m.Addr); err != nil {
			return nil, err
		}
		if seen[m.Addr] {
			return nil, fmt.Errorf("cluster: members file lists %s twice", m.Addr)
		}
		seen[m.Addr] = true
		if m.Weight < 0 {
			return nil, fmt.Errorf("cluster: member %s weight %g must not be negative", m.Addr, m.Weight)
		}
		if m.Weight == 0 {
			m.Weight = 1
		}
	}
	return f.Members, nil
}

// LoadMembersFile reads and parses a members file.
func LoadMembersFile(path string) ([]MemberSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseMembers(data)
}

// DNSSource builds a membership fetcher that resolves name and pairs
// every A/AAAA answer with port at weight 1 — the common "headless
// service" deployment where DNS is the fleet registry and all hosts
// are equal. Answers are sorted so a stable DNS view yields a stable
// member set.
func DNSSource(name, port string) func(context.Context) ([]MemberSpec, error) {
	return func(ctx context.Context) ([]MemberSpec, error) {
		hosts, err := net.DefaultResolver.LookupHost(ctx, name)
		if err != nil {
			return nil, fmt.Errorf("cluster: resolve %s: %w", name, err)
		}
		sort.Strings(hosts)
		specs := make([]MemberSpec, 0, len(hosts))
		for _, h := range hosts {
			specs = append(specs, MemberSpec{Addr: net.JoinHostPort(h, port), Weight: 1})
		}
		return specs, nil
	}
}

// FileSource builds a membership fetcher reading path on every call.
func FileSource(path string) func(context.Context) ([]MemberSpec, error) {
	return func(context.Context) ([]MemberSpec, error) {
		return LoadMembersFile(path)
	}
}

// MembershipConfig parameterizes a Membership manager.
type MembershipConfig struct {
	// Fetch produces the desired member set (FileSource / DNSSource /
	// custom). Required.
	Fetch func(context.Context) ([]MemberSpec, error)
	// PollInterval is how often Fetch runs in Run. Zero selects 1s.
	PollInterval time.Duration
	// DrainTimeout bounds the graceful drain of a removed member before
	// its connections are cut. Zero selects 5s.
	DrainTimeout time.Duration
}

// ReloadSummary reports what one membership reload changed.
type ReloadSummary struct {
	Added      int `json:"added"`
	Removed    int `json:"removed"`
	Reweighted int `json:"reweighted"`
}

func (s ReloadSummary) changed() bool { return s.Added+s.Removed+s.Reweighted > 0 }

// Membership drives a cluster's remote member set from a
// MembershipConfig.Fetch source. Goroutine-safe; Reload may be called
// directly (e.g. from a SIGHUP handler) while Run polls.
type Membership struct {
	c   *Cluster
	cfg MembershipConfig

	mu     sync.Mutex
	active map[string]int // addr → member id, as applied by this manager

	drains sync.WaitGroup
}

// NewMembership builds a manager for c. Existing remote members are
// unknown to it until a Reload lists them; local members are never
// touched.
func NewMembership(c *Cluster, cfg MembershipConfig) (*Membership, error) {
	if cfg.Fetch == nil {
		return nil, fmt.Errorf("cluster: MembershipConfig.Fetch is required")
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = time.Second
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 5 * time.Second
	}
	return &Membership{c: c, cfg: cfg, active: make(map[string]int)}, nil
}

// Reload fetches the desired member set and applies the diff against
// what this manager previously applied: joins first (capacity arrives
// before it is taken away), then reweights, then graceful drains of
// vanished members in the background.
func (ms *Membership) Reload(ctx context.Context) (ReloadSummary, error) {
	specs, err := ms.cfg.Fetch(ctx)
	if err != nil {
		mReloads.With("error").Inc()
		return ReloadSummary{}, err
	}
	sum, err := ms.apply(specs)
	if err != nil {
		mReloads.With("error").Inc()
		return sum, err
	}
	if sum.changed() {
		mReloads.With("applied").Inc()
	} else {
		mReloads.With("unchanged").Inc()
	}
	return sum, nil
}

func (ms *Membership) apply(specs []MemberSpec) (ReloadSummary, error) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	var sum ReloadSummary
	desired := make(map[string]float64, len(specs))
	for _, s := range specs {
		w := s.Weight
		if w == 0 {
			w = 1
		}
		desired[s.Addr] = w
	}

	// Joins and reweights, in spec order: member ids follow the file,
	// so two balancers reading the same fleet definition number their
	// members identically and reload logs are reproducible.
	for _, s := range specs {
		addr, w := s.Addr, desired[s.Addr]
		if id, ok := ms.active[addr]; ok {
			if m := ms.c.memberByID(id); m != nil && m.getWeight() != w {
				if err := ms.c.ReweightMember(id, w); err != nil {
					return sum, err
				}
				sum.Reweighted++
			}
			continue
		}
		id, err := ms.c.AddRemote(addr, w)
		if err != nil {
			return sum, err
		}
		ms.active[addr] = id
		sum.Added++
	}

	// Drains, in the background so a slow member cannot stall the
	// reload (its keys already remapped the moment DrainMember ran the
	// ring update; only connection teardown is deferred).
	for addr, id := range ms.active {
		if _, ok := desired[addr]; ok {
			continue
		}
		delete(ms.active, addr)
		sum.Removed++
		ms.drains.Add(1)
		go func(id int) {
			defer ms.drains.Done()
			dctx, cancel := context.WithTimeout(context.Background(), ms.cfg.DrainTimeout)
			defer cancel()
			_ = ms.c.DrainMember(dctx, id)
		}(id)
	}
	return sum, nil
}

// Run polls Fetch every PollInterval until stop closes, then waits for
// outstanding drains. Fetch errors are counted (cluster_membership_
// reloads_total{outcome="error"}) and retried next tick — a transient
// DNS failure must not empty the fleet; the last good member set keeps
// serving.
func (ms *Membership) Run(stop <-chan struct{}) {
	t := time.NewTicker(ms.cfg.PollInterval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			ms.drains.Wait()
			return
		case <-t.C:
			ctx, cancel := context.WithTimeout(context.Background(), ms.cfg.PollInterval)
			_, _ = ms.Reload(ctx)
			cancel()
		}
	}
}
