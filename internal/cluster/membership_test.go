package cluster

import (
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestParseMembers(t *testing.T) {
	specs, err := ParseMembers([]byte(`{"members":[
		{"addr":"10.0.0.5:8080","weight":2},
		{"addr":"10.0.0.6:8080"}]}`))
	if err != nil {
		t.Fatalf("ParseMembers: %v", err)
	}
	if len(specs) != 2 || specs[0].Weight != 2 || specs[1].Weight != 1 {
		t.Fatalf("specs = %+v, want weights 2 and 1", specs)
	}
	for _, bad := range []string{
		`{"members":[{"addr":"10.0.0.5:8080"},{"addr":"10.0.0.5:8080"}]}`, // duplicate
		`{"members":[{"addr":"10.0.0.5"}]}`,                               // no port
		`{"members":[{"addr":":8080"}]}`,                                  // no host
		`{"members":[{"addr":"10.0.0.5:0"}]}`,                             // port 0
		`{"members":[{"addr":"10.0.0.5:8080","weight":-1}]}`,              // negative weight
		`{"members":[{"addr":"10.0.0.5:8080","wieght":2}]}`,               // typo'd field
	} {
		if _, err := ParseMembers([]byte(bad)); err == nil {
			t.Errorf("ParseMembers(%s) accepted", bad)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	fl := newFakeFleet()
	defer fl.closeAll()
	if _, err := New(Config{Replicas: 1, Factory: fl.factory,
		ProbeInterval: 50 * time.Millisecond, ProbeTimeout: 100 * time.Millisecond}); err == nil {
		t.Error("ProbeTimeout > ProbeInterval accepted")
	}
	if _, err := New(Config{Replicas: 1, Factory: fl.factory, SuspectAfter: 0.5}); err == nil {
		t.Error("SuspectAfter < 1 accepted")
	}
	if _, err := New(Config{Replicas: 1}); err == nil {
		t.Error("local replicas without a Factory accepted")
	}
	if _, err := New(Config{Replicas: -1}); err == nil {
		t.Error("negative Replicas accepted")
	}
	// Remote-only: no Factory needed.
	c, err := New(Config{})
	if err != nil {
		t.Fatalf("remote-only New: %v", err)
	}
	if c.Config().ProbeTimeout != c.Config().ProbeInterval {
		t.Errorf("ProbeTimeout default %v, want ProbeInterval %v",
			c.Config().ProbeTimeout, c.Config().ProbeInterval)
	}
	if c.Config().HeartbeatInterval != c.Config().ProbeInterval {
		t.Errorf("HeartbeatInterval default %v, want ProbeInterval %v",
			c.Config().HeartbeatInterval, c.Config().ProbeInterval)
	}
	if c.Config().SuspectAfter != DefaultSuspectAfter {
		t.Errorf("SuspectAfter default %g, want %g", c.Config().SuspectAfter, DefaultSuspectAfter)
	}
}

// remoteFleet spawns fake daemons the cluster does not own — stand-ins
// for contentiond processes on other hosts.
type remoteFleet struct {
	t    *testing.T
	reps []*fakeReplica
}

func newRemoteFleet(t *testing.T, n int) *remoteFleet {
	t.Helper()
	rf := &remoteFleet{t: t}
	for i := 0; i < n; i++ {
		rf.reps = append(rf.reps, newFakeReplica(100+i, 0))
	}
	t.Cleanup(func() {
		for _, r := range rf.reps {
			r.Kill()
		}
	})
	return rf
}

func (rf *remoteFleet) membersJSON(weights ...float64) string {
	s := `{"members":[`
	for i, r := range rf.reps {
		if i >= len(weights) {
			break
		}
		if weights[i] < 0 {
			continue // negative sentinel: omit this member
		}
		if !stringsHasSuffix(s, "[") {
			s += ","
		}
		s += fmt.Sprintf(`{"addr":%q,"weight":%g}`, r.Addr(), weights[i])
	}
	return s + `]}`
}

func stringsHasSuffix(s, suf string) bool {
	return len(s) >= len(suf) && s[len(s)-len(suf):] == suf
}

// newRemoteCluster starts a remote-only cluster (no local fleet).
func newRemoteCluster(t *testing.T, mutate func(*Config)) (*Cluster, *httptest.Server) {
	t.Helper()
	cfg := Config{
		PerTryTimeout:     time.Second,
		Timeout:           5 * time.Second,
		ProbeInterval:     10 * time.Millisecond,
		HeartbeatInterval: 10 * time.Millisecond,
		Breaker:           BreakerConfig{Cooldown: 50 * time.Millisecond},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := c.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	front := httptest.NewServer(c.Handler())
	t.Cleanup(func() {
		front.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = c.Shutdown(ctx)
	})
	return c, front
}

func TestAddRemoteRoutesAndRejectsDuplicates(t *testing.T) {
	rf := newRemoteFleet(t, 2)
	c, front := newRemoteCluster(t, nil)
	for _, r := range rf.reps {
		if _, err := c.AddRemote(r.Addr(), 1); err != nil {
			t.Fatalf("AddRemote(%s): %v", r.Addr(), err)
		}
	}
	if _, err := c.AddRemote(rf.reps[0].Addr(), 1); err == nil {
		t.Fatal("duplicate AddRemote accepted")
	}
	if _, err := c.AddRemote("nonsense", 1); err == nil {
		t.Fatal("malformed addr accepted")
	}
	if got := c.UpCount(); got != 2 {
		t.Fatalf("UpCount = %d, want 2", got)
	}
	for i := 0; i < 20; i++ {
		status, _ := postPredict(t, front, predictBody(i))
		if status != 200 {
			t.Fatalf("predict %d: status %d", i, status)
		}
	}
	if rf.reps[0].hits.Load()+rf.reps[1].hits.Load() < 20 {
		t.Fatal("remote replicas did not serve the traffic")
	}
}

func TestRemoteSuspectAndRejoin(t *testing.T) {
	rf := newRemoteFleet(t, 2)
	c, front := newRemoteCluster(t, nil)
	for _, r := range rf.reps {
		if _, err := c.AddRemote(r.Addr(), 1); err != nil {
			t.Fatalf("AddRemote: %v", err)
		}
	}
	waitFor(t, "both remotes up", 2*time.Second, func() bool { return c.UpCount() == 2 })

	// Silence member 0's heartbeats: the failure detector must suspect
	// it and pull it from the ring.
	rf.reps[0].hfail.Store(true)
	waitFor(t, "member 0 suspect", 5*time.Second, func() bool {
		ms := c.Members()
		return ms[0].State == "suspect" && c.UpCount() == 1
	})
	// Traffic keeps flowing on the survivor.
	for i := 0; i < 10; i++ {
		if status, _ := postPredict(t, front, predictBody(i)); status != 200 {
			t.Fatalf("predict during suspicion: status %d", status)
		}
	}
	// Heal: the next heartbeat readmits it.
	rf.reps[0].hfail.Store(false)
	waitFor(t, "member 0 rejoin", 5*time.Second, func() bool {
		ms := c.Members()
		return ms[0].State == "up" && c.UpCount() == 2
	})
}

func TestMembershipReloadUnderLoad(t *testing.T) {
	rf := newRemoteFleet(t, 3)
	// Detection is off-topic here: the test asserts zero failed
	// requests across reloads, and a scheduling hiccup on a loaded CI
	// box must not fake a suspect (empty-ring 503s).
	c, front := newRemoteCluster(t, func(cfg *Config) { cfg.SuspectAfter = 1e9 })

	dir := t.TempDir()
	path := filepath.Join(dir, "members.json")
	write := func(content string) {
		t.Helper()
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write(rf.membersJSON(1, 1))

	ms, err := NewMembership(c, MembershipConfig{Fetch: FileSource(path)})
	if err != nil {
		t.Fatalf("NewMembership: %v", err)
	}
	sum, err := ms.Reload(context.Background())
	if err != nil || sum.Added != 2 {
		t.Fatalf("initial reload: %+v, %v (want 2 added)", sum, err)
	}
	if got := c.UpCount(); got != 2 {
		t.Fatalf("UpCount = %d after initial reload, want 2", got)
	}

	// Continuous load through every membership change; any non-200 is a
	// lost request.
	var failures atomic.Int64
	var reqs atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				status, _ := postPredict(t, front, predictBody(w*1000+i))
				reqs.Add(1)
				if status != 200 {
					failures.Add(1)
				}
			}
		}(w)
	}

	// Add the third member and reweight the first.
	write(rf.membersJSON(2, 1, 1))
	sum, err = ms.Reload(context.Background())
	if err != nil || sum.Added != 1 || sum.Reweighted != 1 {
		t.Fatalf("reload add+reweight: %+v, %v", sum, err)
	}
	waitFor(t, "three members up", 2*time.Second, func() bool { return c.UpCount() == 3 })
	time.Sleep(50 * time.Millisecond)

	// Remove the second member: graceful drain, zero lost requests.
	write(rf.membersJSON(2, -1, 1))
	sum, err = ms.Reload(context.Background())
	if err != nil || sum.Removed != 1 {
		t.Fatalf("reload remove: %+v, %v", sum, err)
	}
	waitFor(t, "member drained", 2*time.Second, func() bool { return c.UpCount() == 2 })
	time.Sleep(50 * time.Millisecond)

	close(stop)
	wg.Wait()
	ms.drains.Wait()
	if failures.Load() != 0 {
		t.Fatalf("%d of %d requests failed across membership changes", failures.Load(), reqs.Load())
	}
	if reqs.Load() == 0 {
		t.Fatal("load generator sent nothing")
	}
	// Idempotence: a reload with no changes reports none.
	sum, err = ms.Reload(context.Background())
	if err != nil || sum.changed() {
		t.Fatalf("no-op reload reported %+v, %v", sum, err)
	}
	// The drained member's status reflects the removal.
	states := map[string]int{}
	for _, m := range c.Members() {
		states[m.State]++
	}
	if states["up"] != 2 {
		t.Fatalf("member states %v, want 2 up", states)
	}
}

func TestMembershipFetchErrorKeepsFleet(t *testing.T) {
	rf := newRemoteFleet(t, 1)
	c, _ := newRemoteCluster(t, nil)
	if _, err := c.AddRemote(rf.reps[0].Addr(), 1); err != nil {
		t.Fatal(err)
	}
	ms, err := NewMembership(c, MembershipConfig{
		Fetch: FileSource(filepath.Join(t.TempDir(), "missing.json")),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ms.Reload(context.Background()); err == nil {
		t.Fatal("reload of a missing file succeeded")
	}
	if got := c.UpCount(); got != 1 {
		t.Fatalf("UpCount = %d after failed reload, want 1 (fleet must survive)", got)
	}
}
