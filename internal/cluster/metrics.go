package cluster

import "contention/internal/obs"

// Cluster telemetry. Request outcomes are a labelled family so the run
// manifest can break router traffic down the same way serve does;
// supervision events (restarts, abandonments, breaker transitions) are
// the self-healing audit trail.
var (
	mRequests = obs.NewCounterVec(obs.MetricClusterRequests,
		"routed requests, by outcome", "outcome")
	mRetries = obs.NewCounter(obs.MetricClusterRetries,
		"failover re-sends after a retryable replica failure")
	mSpills = obs.NewCounter(obs.MetricClusterSpills,
		"requests routed past the ring primary for load or breaker state")
	mHedges = obs.NewCounter(obs.MetricClusterHedges,
		"hedged second requests launched for tail-latency protection")
	mRestarts = obs.NewCounter(obs.MetricClusterRestarts,
		"replica respawns performed by the supervisor")
	mAbandoned = obs.NewCounter(obs.MetricClusterAbandoned,
		"replicas abandoned after exhausting the crash-loop budget")
	mReplicasUp = obs.NewGauge(obs.MetricClusterReplicasUp,
		"replicas currently up and in the routing ring")
	mRouteSeconds = obs.NewHistogram(obs.MetricClusterRouteSeconds,
		"end-to-end routed request latency in seconds", obs.DefaultSecondsBuckets())

	// Multi-host membership and failure detection.
	mSuspects = obs.NewCounter(obs.MetricClusterSuspects,
		"remote members suspected by the heartbeat failure detector")
	mRejoins = obs.NewCounter(obs.MetricClusterRejoins,
		"suspect members readmitted to the ring after a fresh heartbeat")
	mMembersAdded = obs.NewCounter(obs.MetricClusterMembersAdded,
		"remote members joined to the fleet")
	mClientGone = obs.NewCounter(obs.MetricClusterClientGone,
		"attempts abandoned because the requesting client vanished")
	mReloads = obs.NewCounterVec(obs.MetricClusterReloads,
		"membership file reloads, by outcome", "outcome")

	// Fleet metrics aggregation (the /debug/fleet scraper).
	mFleetScrapes = obs.NewCounter(obs.MetricFleetScrapes,
		"fleet metrics scrape rounds attempted")
	mFleetScrapeErrors = obs.NewCounter(obs.MetricFleetScrapeErrors,
		"member metrics pages that failed to fetch or parse")
	mFleetMembersSeen = obs.NewGauge(obs.MetricFleetMembersSeen,
		"members whose metrics the last scrape round captured")
	mFleetScrapeSeconds = obs.NewHistogram(obs.MetricFleetScrapeSeconds,
		"wall time per fleet scrape round in seconds", obs.DefaultSecondsBuckets())
)
