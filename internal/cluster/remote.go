package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
)

// RemoteReplica is a prediction backend on another host: the cluster
// does not own its process, only its address. It joins and leaves the
// fleet through the membership layer (AddRemote / DrainMember /
// Membership reloads), its liveness is judged by the heartbeat failure
// detector rather than a babysitter, and requests reach it over the
// router's pooled HTTP transport with per-request deadline propagation.
type RemoteReplica struct {
	addr string
	done chan struct{}
	once sync.Once
}

func newRemoteReplica(addr string) *RemoteReplica {
	return &RemoteReplica{addr: addr, done: make(chan struct{})}
}

// Addr implements Replica.
func (r *RemoteReplica) Addr() string { return r.addr }

// Done implements Replica. A remote replica has no process to exit; the
// channel closes only when the member is drained out of the fleet.
func (r *RemoteReplica) Done() <-chan struct{} { return r.done }

// Close implements Replica: the cluster stops using the address. The
// remote daemon itself is not contacted — its lifecycle belongs to
// whoever runs that host.
func (r *RemoteReplica) Close(ctx context.Context) error {
	r.once.Do(func() { close(r.done) })
	return nil
}

// Kill implements Replica: same as Close for a process we do not own.
func (r *RemoteReplica) Kill() {
	r.once.Do(func() { close(r.done) })
}

// ErrClientGone marks an attempt that died because the requesting
// client canceled or disconnected mid-request. It is neither retried
// (nobody is waiting) nor held against the replica's breaker (the
// replica did nothing wrong).
var ErrClientGone = errors.New("cluster: client disconnected mid-request")

// StatusClientClosedRequest is the nginx-convention status for a
// request whose client went away before the answer (nobody reads the
// response; the status exists for logs and outcome metrics).
const StatusClientClosedRequest = 499

// validateMemberAddr checks a remote member address is a usable
// host:port.
func validateMemberAddr(addr string) error {
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return fmt.Errorf("cluster: member addr %q: %w", addr, err)
	}
	if host == "" || port == "" || port == "0" {
		return fmt.Errorf("cluster: member addr %q needs an explicit host and port", addr)
	}
	return nil
}
