package cluster

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"contention/internal/faults"
	"contention/internal/netchaos"
)

// remoteChaosSpec is the remote gate's fault schedule: seeded, so a
// failing run is re-playable bit-for-bit against the same wire faults.
func remoteChaosSpec() faults.NetChaosSpec {
	return faults.NetChaosSpec{
		Seed:           1996, // Figueira–Berman, HPDC '96
		Links:          3,
		Duration:       3 * time.Second,
		LatencyEvery:   500 * time.Millisecond,
		LatencyFor:     200 * time.Millisecond,
		LatencyAdd:     20 * time.Millisecond,
		ResetEvery:     700 * time.Millisecond,
		StallEvery:     900 * time.Millisecond,
		StallFor:       120 * time.Millisecond,
		PartitionEvery: 1200 * time.Millisecond,
		PartitionFor:   350 * time.Millisecond,
	}
}

// buildContentiond compiles the daemon into a per-test dir. The child
// processes are the real binary — the remote gate exercises the same
// artifact operators deploy, not an in-process stand-in.
func buildContentiond(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "contentiond")
	cmd := exec.Command("go", "build", "-o", bin, "contention/cmd/contentiond")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build contentiond: %v\n%s", err, out)
	}
	return bin
}

// TestRemoteChaosGate is the multi-host SLO gate: real contentiond
// child processes joined as remote members, each reached through a
// netchaos proxy that injects a seeded schedule of latency, resets,
// stalls, and partitions mid-load. The fleet must hold ≥99% success,
// never go fully dark in any 250ms bucket, mark partitioned members
// suspect via the heartbeat failure detector, and readmit them after
// the partition heals.
func TestRemoteChaosGate(t *testing.T) {
	if testing.Short() {
		t.Skip("remote chaos gate builds a binary and runs seconds of wall-clock load")
	}
	spec := remoteChaosSpec()
	plan, err := faults.PlanNetChaos(spec)
	if err != nil {
		t.Fatalf("PlanNetChaos: %v", err)
	}
	t.Logf("net chaos plan: %v over %v", faults.NetChaosSummary(plan), spec.Duration)

	bin := buildContentiond(t)
	factory := ExecFactory(bin)
	daemons := make([]Replica, spec.Links)
	proxies := make([]*netchaos.Proxy, spec.Links)
	for i := range daemons {
		rep, err := factory(100+i, 0)
		if err != nil {
			t.Fatalf("spawn contentiond %d: %v", i, err)
		}
		daemons[i] = rep
		t.Cleanup(rep.Kill)
		p, err := netchaos.New(rep.Addr())
		if err != nil {
			t.Fatalf("proxy %d: %v", i, err)
		}
		proxies[i] = p
		t.Cleanup(func() { p.Close() })
	}

	c, err := New(Config{
		Seed:              spec.Seed,
		MaxTries:          4,
		RetryBudget:       1.0,
		HedgeDelay:        40 * time.Millisecond,
		PerTryTimeout:     400 * time.Millisecond,
		Timeout:           3 * time.Second,
		MaxInFlight:       64,
		MaxQueue:          256,
		ProbeInterval:     25 * time.Millisecond,
		HeartbeatInterval: 25 * time.Millisecond,
		SuspectAfter:      4,
		Breaker:           BreakerConfig{Cooldown: 100 * time.Millisecond},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := c.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	for i, p := range proxies {
		if _, err := c.AddRemote(p.Addr(), 1); err != nil {
			t.Fatalf("AddRemote %d: %v", i, err)
		}
	}
	front := httptest.NewServer(c.Handler())
	defer front.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = c.Shutdown(ctx)
	}()

	// Detector watcher: sample member states so the gate can assert the
	// suspect → rejoin lifecycle actually happened.
	var suspectSeen atomic.Bool
	watchStop := make(chan struct{})
	var watchWG sync.WaitGroup
	watchWG.Add(1)
	go func() {
		defer watchWG.Done()
		for {
			select {
			case <-watchStop:
				return
			case <-time.After(10 * time.Millisecond):
			}
			for _, m := range c.Members() {
				if m.State == "suspect" {
					suspectSeen.Store(true)
				}
			}
		}
	}()

	// Load: closed-loop workers over a small key corpus.
	const workers = 12
	bodies := make([]string, 8)
	for i := range bodies {
		bodies[i] = fmt.Sprintf(
			`{"kind":"comp","dcomp":%d,"contenders":[{"comm_fraction":0.%d,"msg_words":%d}]}`,
			1+i%3, 1+i%8, 100*(i+1))
	}
	runFor := spec.Duration + 500*time.Millisecond
	const bucketWidth = 250 * time.Millisecond
	nBuckets := int(runFor/bucketWidth) + 1
	var (
		total, succ atomic.Int64
		bucketTotal = make([]atomic.Int64, nBuckets)
		bucketSucc  = make([]atomic.Int64, nBuckets)
		failures    sync.Map
	)
	countFailure := func(key string) {
		v, _ := failures.LoadOrStore(key, new(atomic.Int64))
		v.(*atomic.Int64).Add(1)
	}
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := &http.Client{Timeout: 5 * time.Second}
			defer client.CloseIdleConnections()
			for i := 0; ; i++ {
				elapsed := time.Since(start)
				if elapsed >= runFor {
					return
				}
				bucket := int(elapsed / bucketWidth)
				total.Add(1)
				bucketTotal[bucket].Add(1)
				resp, err := client.Post(front.URL+"/v1/predict", "application/json",
					strings.NewReader(bodies[(w+i)%len(bodies)]))
				if err != nil {
					countFailure("transport: " + err.Error())
					continue
				}
				_ = resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					succ.Add(1)
					bucketSucc[bucket].Add(1)
				} else {
					countFailure(fmt.Sprintf("status %d", resp.StatusCode))
				}
			}
		}(w)
	}

	// Applier: replay the plan against wall-clock offsets.
	applied := map[string]int{}
	for _, e := range plan {
		if d := e.At - time.Since(start); d > 0 {
			time.Sleep(d)
		}
		p := proxies[e.Target]
		switch e.Kind {
		case faults.NetChaosLatency:
			p.SetLatency(e.Latency)
			time.AfterFunc(e.For, func() { p.SetLatency(0) })
		case faults.NetChaosReset:
			p.Reset()
		case faults.NetChaosStall:
			p.Stall(e.For)
		case faults.NetChaosPartition:
			p.Partition()
		case faults.NetChaosHeal:
			p.Heal()
		}
		applied[e.Kind]++
	}
	wg.Wait()
	t.Logf("applied: %v", applied)
	if applied[faults.NetChaosPartition] == 0 {
		t.Fatal("plan applied no partitions — the gate is not exercising failure detection")
	}

	// Straggler heals land after Duration; make sure every link is open
	// before asserting recovery.
	for _, p := range proxies {
		p.Heal()
		p.SetLatency(0)
	}

	// SLO: ≥99% success across the run.
	tot, ok := total.Load(), succ.Load()
	if tot == 0 {
		t.Fatal("no requests issued")
	}
	rate := float64(ok) / float64(tot)
	failSummary := ""
	failures.Range(func(k, v any) bool {
		failSummary += fmt.Sprintf(" [%v ×%d]", k, v.(*atomic.Int64).Load())
		return true
	})
	t.Logf("requests: %d, success: %d (%.3f%%)%s", tot, ok, 100*rate, failSummary)
	if rate < 0.99 {
		t.Errorf("success rate %.3f%% < 99%%:%s", 100*rate, failSummary)
	}

	// Availability never hits zero: partitions are serialized by the
	// plan, so some member is always reachable.
	for i := 0; i < nBuckets; i++ {
		bt, bs := bucketTotal[i].Load(), bucketSucc[i].Load()
		if bt >= 20 && bs == 0 {
			t.Errorf("availability hit zero in bucket %d (%d requests, 0 successes)", i, bt)
		}
	}

	// The failure detector did its job: partitioned members were marked
	// suspect mid-run, and every member is back after heal.
	close(watchStop)
	watchWG.Wait()
	if !suspectSeen.Load() {
		t.Error("no member was ever marked suspect despite partitions")
	}
	waitFor(t, "all members rejoined after heal", 5*time.Second, func() bool {
		return c.UpCount() == spec.Links
	})
	for _, m := range c.Members() {
		if m.State != "up" {
			t.Errorf("member %d state %q after heal window", m.ID, m.State)
		}
	}

	// Service is still correct after the storm.
	status, out := postPredict(t, front, bodies[0])
	if status != http.StatusOK || out["value"] == nil {
		t.Fatalf("post-chaos predict = %d %v", status, out)
	}
}

// TestMembershipReloadRemapBound: a reload that reweights one member
// moves at most that member's ownership-share delta of keys — far
// under the 2/N acceptance bound — and never moves a key between two
// bystanders.
func TestMembershipReloadRemapBound(t *testing.T) {
	rf := newRemoteFleet(t, 3)
	// Slow heartbeats + a sky-high suspicion threshold: this test
	// measures ring remap arithmetic, and a scheduling hiccup on a
	// loaded CI box must not let the failure detector pull a member
	// (and its keys) out from under the ownership snapshots.
	c, _ := newRemoteCluster(t, func(cfg *Config) {
		cfg.ProbeInterval = time.Second
		cfg.HeartbeatInterval = time.Second
		cfg.SuspectAfter = 1e9
	})
	dir := t.TempDir()
	path := filepath.Join(dir, "members.json")
	writeMembers := func(content string) {
		t.Helper()
		if err := writeFileAtomic(path, content); err != nil {
			t.Fatal(err)
		}
	}
	writeMembers(rf.membersJSON(1, 1, 1))
	ms, err := NewMembership(c, MembershipConfig{Fetch: FileSource(path)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ms.Reload(context.Background()); err != nil {
		t.Fatal(err)
	}

	const keys = 3000
	owner := func() []int {
		r := c.ring.Load()
		out := make([]int, keys)
		for i := range out {
			ids := r.Sequence(fmt.Sprintf("key-%d", i), 1)
			if len(ids) == 0 {
				t.Fatal("empty ring")
			}
			out[i] = ids[0]
		}
		return out
	}
	before := owner()

	// Reweight member 0 from 1 to 2.
	writeMembers(rf.membersJSON(2, 1, 1))
	sum, err := ms.Reload(context.Background())
	if err != nil || sum.Reweighted != 1 {
		t.Fatalf("reload: %+v, %v", sum, err)
	}
	after := owner()

	n := 3
	moved := 0
	for i := range before {
		if before[i] != after[i] {
			moved++
			// Every move involves the reweighted member.
			if before[i] != 0 && after[i] != 0 {
				t.Fatalf("key %d moved between bystanders %d → %d", i, before[i], after[i])
			}
		}
	}
	if frac, bound := float64(moved)/keys, 2.0/float64(n); frac >= bound {
		t.Fatalf("reload remapped %.1f%% of keys, want < %.1f%%", 100*frac, 100*bound)
	}
}

func writeFileAtomic(path, content string) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(content), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
