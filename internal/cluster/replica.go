package cluster

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os/exec"
	"strings"
	"sync"
	"syscall"
	"time"

	"contention/internal/caltrust"
	"contention/internal/core"
	"contention/internal/runner"
	"contention/internal/serve"
)

// Replica is one running prediction backend the cluster supervises and
// routes to. Implementations: InProcReplica (a serve.Server inside this
// process, on a loopback port) and ExecReplica (a child-process
// contentiond).
type Replica interface {
	// Addr is the host:port serving the prediction API.
	Addr() string
	// Done is closed when the replica dies — listener teardown or child
	// process exit. The supervisor watches it to schedule a restart.
	Done() <-chan struct{}
	// Close drains and stops the replica gracefully within ctx.
	Close(ctx context.Context) error
	// Kill tears the replica down abruptly (fail-stop): in-flight
	// connections are severed, nothing is drained.
	Kill()
}

// Factory builds incarnation gen of replica id. The supervisor calls it
// once at spawn and again after every crash; gen starts at 0 and
// increments per restart.
type Factory func(id, gen int) (Replica, error)

// Chaos hooks implemented by InProcReplica; the chaos harness
// type-asserts against these so fault application needs no privileged
// cluster API.
type (
	// Staller freezes request handling for a duration.
	Staller interface{ StallFor(d time.Duration) }
	// Degrader marks the calibration untrusted and clears it again.
	Degrader interface {
		Degrade(reason string)
		Recover()
	}
)

// InProcConfig parameterizes InProcessFactory replicas. Zero fields
// take the serve defaults.
type InProcConfig struct {
	// Cal is the calibration every incarnation serves; nil selects
	// serve.SyntheticCalibration.
	Cal *core.Calibration
	// Serve knobs, passed through to serve.Config.
	Window                time.Duration
	MaxBatch              int
	MaxInFlight, MaxQueue int
	Timeout               time.Duration
}

// InProcReplica is a serve.Server on a loopback listener inside this
// process — the deployment shape for single-binary clusters and the
// harness the chaos gate drives.
type InProcReplica struct {
	addr    string
	srv     *serve.Server
	hs      *http.Server
	pred    *core.Predictor
	tracker *caltrust.Tracker
	done    chan struct{}
	gate    stallGate
	once    sync.Once
}

// InProcessFactory returns a Factory spawning in-process replicas.
func InProcessFactory(cfg InProcConfig) Factory {
	return func(id, gen int) (Replica, error) {
		cal := serve.SyntheticCalibration()
		if cfg.Cal != nil {
			cal = *cfg.Cal
		}
		pred := core.NewPredictorLenient(cal)
		tracker, err := caltrust.NewTracker(pred, caltrust.DefaultTrackerConfig())
		if err != nil {
			return nil, fmt.Errorf("cluster: replica %d/%d tracker: %w", id, gen, err)
		}
		srv, err := serve.New(serve.Config{
			Pred:        pred,
			Tracker:     tracker,
			Pool:        runner.New(0),
			Window:      cfg.Window,
			MaxBatch:    cfg.MaxBatch,
			MaxInFlight: cfg.MaxInFlight,
			MaxQueue:    cfg.MaxQueue,
			Timeout:     cfg.Timeout,
		})
		if err != nil {
			return nil, fmt.Errorf("cluster: replica %d/%d serve: %w", id, gen, err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			srv.Close()
			return nil, fmt.Errorf("cluster: replica %d/%d listen: %w", id, gen, err)
		}
		r := &InProcReplica{
			addr:    ln.Addr().String(),
			srv:     srv,
			pred:    pred,
			tracker: tracker,
			done:    make(chan struct{}),
		}
		r.hs = &http.Server{Handler: r.gate.wrap(srv.Handler()), ReadHeaderTimeout: 5 * time.Second}
		go func() {
			_ = r.hs.Serve(ln)
			close(r.done)
		}()
		return r, nil
	}
}

// Addr implements Replica.
func (r *InProcReplica) Addr() string { return r.addr }

// Done implements Replica.
func (r *InProcReplica) Done() <-chan struct{} { return r.done }

// Close implements Replica: readiness off, in-flight requests finish
// within ctx, parked batches flush, then the listener closes.
func (r *InProcReplica) Close(ctx context.Context) error {
	var err error
	r.once.Do(func() {
		r.srv.Drain()
		err = r.hs.Shutdown(ctx)
		r.srv.Close()
	})
	return err
}

// Kill implements Replica: fail-stop. The listener and every open
// connection are severed immediately; callers mid-request see resets.
func (r *InProcReplica) Kill() {
	r.once.Do(func() {
		_ = r.hs.Close()
		r.srv.Close()
	})
}

// StallFor freezes request handling for d — the chaos stand-in for a GC
// pause, paging storm, or scheduler hiccup on the replica host.
func (r *InProcReplica) StallFor(d time.Duration) { r.gate.stallFor(d) }

// Degrade marks the replica's calibration stale: answers flip to the
// conservative p+1 fallback (flagged degraded) until Recover.
func (r *InProcReplica) Degrade(reason string) { r.pred.MarkStale(reason) }

// Recover clears a prior Degrade.
func (r *InProcReplica) Recover() { r.pred.ClearStale() }

// Server exposes the underlying serve.Server (tests).
func (r *InProcReplica) Server() *serve.Server { return r.srv }

// Tracker exposes the replica's trust tracker (tests).
func (r *InProcReplica) Tracker() *caltrust.Tracker { return r.tracker }

// stallGate is the stall-injection middleware: while stalled, every
// request parks at the front door before reaching the handler.
type stallGate struct {
	mu    sync.Mutex
	until time.Time
}

func (g *stallGate) stallFor(d time.Duration) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if t := time.Now().Add(d); t.After(g.until) {
		g.until = t
	}
}

func (g *stallGate) wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		g.mu.Lock()
		wait := time.Until(g.until)
		g.mu.Unlock()
		if wait > 0 {
			select {
			case <-time.After(wait):
			case <-r.Context().Done():
			}
		}
		next.ServeHTTP(w, r)
	})
}

// ExecReplica is a child-process contentiond. The supervisor learns the
// dynamically bound port from the daemon's startup banner.
type ExecReplica struct {
	cmd  *exec.Cmd
	addr string
	done chan struct{}
	once sync.Once
}

// ExecFactory returns a Factory spawning contentiond child processes
// from the given binary, with extraArgs appended after -addr.
func ExecFactory(bin string, extraArgs ...string) Factory {
	return func(id, gen int) (Replica, error) {
		cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, extraArgs...)...)
		stderr, err := cmd.StderrPipe()
		if err != nil {
			return nil, fmt.Errorf("cluster: replica %d/%d stderr: %w", id, gen, err)
		}
		if err := cmd.Start(); err != nil {
			return nil, fmt.Errorf("cluster: replica %d/%d start: %w", id, gen, err)
		}
		addr, err := scanAddr(stderr, 5*time.Second)
		if err != nil {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
			return nil, fmt.Errorf("cluster: replica %d/%d: %w", id, gen, err)
		}
		r := &ExecReplica{cmd: cmd, addr: addr, done: make(chan struct{})}
		go func() {
			_ = cmd.Wait()
			close(r.done)
		}()
		return r, nil
	}
}

// scanAddr reads the daemon's startup banner ("contentiond on
// http://HOST:PORT ...") off stderr, then keeps draining the pipe in
// the background so the child never blocks on a full pipe.
func scanAddr(stderr io.Reader, timeout time.Duration) (string, error) {
	type res struct {
		addr string
		err  error
	}
	ch := make(chan res, 1)
	br := bufio.NewReader(stderr)
	go func() {
		for {
			line, err := br.ReadString('\n')
			if i := strings.Index(line, "on http://"); i >= 0 {
				rest := line[i+len("on http://"):]
				if j := strings.IndexAny(rest, " \n"); j >= 0 {
					rest = rest[:j]
				}
				ch <- res{addr: rest}
				go func() { _, _ = io.Copy(io.Discard, br) }()
				return
			}
			if err != nil {
				ch <- res{err: fmt.Errorf("banner not found before stderr closed: %w", err)}
				return
			}
		}
	}()
	select {
	case r := <-ch:
		return r.addr, r.err
	case <-time.After(timeout):
		return "", errors.New("timed out waiting for startup banner")
	}
}

// Addr implements Replica.
func (r *ExecReplica) Addr() string { return r.addr }

// Done implements Replica.
func (r *ExecReplica) Done() <-chan struct{} { return r.done }

// Close implements Replica: SIGTERM (the daemon drains), escalating to
// SIGKILL if the child outlives ctx.
func (r *ExecReplica) Close(ctx context.Context) error {
	var err error
	r.once.Do(func() {
		err = r.cmd.Process.Signal(syscall.SIGTERM)
		select {
		case <-r.done:
		case <-ctx.Done():
			_ = r.cmd.Process.Kill()
			err = ctx.Err()
		}
	})
	return err
}

// Kill implements Replica: SIGKILL, fail-stop.
func (r *ExecReplica) Kill() {
	r.once.Do(func() { _ = r.cmd.Process.Kill() })
}
