// Package cluster is the self-healing serving fleet: a supervisor that
// spawns and babysits N prediction replicas, and an affinity router in
// front of them.
//
// Routing is keyed on the canonical contender-multiset batch key
// (serve.Request.BatchKey): the whole point of micro-batching is that
// concurrent requests sharing a key collapse into one slowdown DP, so a
// load balancer that sprays equal keys across the fleet would dilute
// exactly the efficiency it is supposed to scale. A consistent-hash
// ring keeps equal keys on one replica — and keeps most keys where they
// were when membership changes, so a crash-restart reshuffles ~1/N of
// the keyspace instead of all of it.
//
// Around the ring sit the production concerns: per-replica circuit
// breakers over a rolling error rate, load-aware spill to the next ring
// node when a replica's in-flight count crosses its high-water mark,
// bounded retries under a cluster-wide retry budget, optional hedged
// second requests for tail-latency protection, supervised restart with
// seeded exponential backoff and a crash-loop budget, and graceful
// draining on shutdown or replica removal.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVnodes is the virtual-node count per replica. 128 points per
// replica keeps the keyspace share of each replica within a few tens of
// percent of fair for small fleets (the ring property tests pin the
// bound) while membership changes stay O(vnodes·log).
const DefaultVnodes = 128

// Ring is an immutable weighted consistent-hash ring over replica ids.
// Mutation returns a new ring (With/WithWeight/Without), so a router can
// swap rings atomically while lookups proceed lock-free on the old one.
//
// Weights express unequal hosts: a member of weight w gets ~w·vnodes
// points, so its keyspace share is proportional to its weight. A member
// carries the same vnode labels at every weight — weight w covers vnode
// indices [0, w·vnodes) — so reweighting only adds or removes that
// member's highest-index points: keys move to or from the reweighted
// member alone, never between bystanders.
type Ring struct {
	vnodes  int
	points  []ringPoint // sorted by hash
	ids     []int       // distinct member ids, insertion order
	weights []float64   // parallel to ids
}

type ringPoint struct {
	h  uint64
	id int
}

// NewRing builds a ring with the given virtual-node count (<= 0 selects
// DefaultVnodes) over the given replica ids.
func NewRing(vnodes int, ids ...int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	r := &Ring{vnodes: vnodes}
	for _, id := range ids {
		r = r.With(id)
	}
	return r
}

// With returns a ring that additionally contains id at weight 1 (r
// itself if id is already a member, at whatever weight it has).
func (r *Ring) With(id int) *Ring {
	for _, e := range r.ids {
		if e == id {
			return r
		}
	}
	return r.WithWeight(id, 1)
}

// WithWeight returns a ring containing id at the given weight, joining
// or reweighting as needed (r itself if id is already at that weight).
// Negative weights clamp to zero; a zero-weight member stays on the
// member list but owns no points, so it is never looked up or returned
// in a candidate sequence.
func (r *Ring) WithWeight(id int, weight float64) *Ring {
	if weight < 0 {
		weight = 0
	}
	for i, e := range r.ids {
		if e == id {
			if r.weights[i] == weight {
				return r
			}
			return r.reweighted(i, weight)
		}
	}
	nr := &Ring{
		vnodes:  r.vnodes,
		ids:     append(append(make([]int, 0, len(r.ids)+1), r.ids...), id),
		weights: append(append(make([]float64, 0, len(r.weights)+1), r.weights...), weight),
		points:  append(append(make([]ringPoint, 0, len(r.points)+r.vnodes), r.points...), vnodePoints(id, r.vnodes, weight)...),
	}
	nr.sortPoints()
	return nr
}

// reweighted rebuilds member slot i's points at the new weight. Vnode
// labels are stable across weights, so the surviving points keep their
// positions: only the added (weight up) or removed (weight down) points
// remap keys, and only to or from this member.
func (r *Ring) reweighted(i int, weight float64) *Ring {
	id := r.ids[i]
	nr := &Ring{
		vnodes:  r.vnodes,
		ids:     append([]int(nil), r.ids...),
		weights: append([]float64(nil), r.weights...),
	}
	nr.weights[i] = weight
	nr.points = make([]ringPoint, 0, len(r.points))
	for _, p := range r.points {
		if p.id != id {
			nr.points = append(nr.points, p)
		}
	}
	nr.points = append(nr.points, vnodePoints(id, r.vnodes, weight)...)
	nr.sortPoints()
	return nr
}

// Without returns a ring with id removed (r itself if absent). Removal
// is minimally disruptive by construction: every surviving point keeps
// its position, so only keys owned by the removed replica remap.
func (r *Ring) Without(id int) *Ring {
	found := false
	for _, e := range r.ids {
		if e == id {
			found = true
			break
		}
	}
	if !found {
		return r
	}
	nr := &Ring{vnodes: r.vnodes}
	for i, e := range r.ids {
		if e != id {
			nr.ids = append(nr.ids, e)
			nr.weights = append(nr.weights, r.weights[i])
		}
	}
	nr.points = make([]ringPoint, 0, len(r.points))
	for _, p := range r.points {
		if p.id != id {
			nr.points = append(nr.points, p)
		}
	}
	return nr
}

func (r *Ring) sortPoints() {
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].h != r.points[j].h {
			return r.points[i].h < r.points[j].h
		}
		return r.points[i].id < r.points[j].id
	})
}

// vnodeCount is the point count for one member: weight·vnodes, rounded,
// with any positive weight guaranteed at least one point so a lightly
// weighted member still owns keyspace.
func vnodeCount(vnodes int, weight float64) int {
	n := int(weight*float64(vnodes) + 0.5)
	if n == 0 && weight > 0 {
		n = 1
	}
	return n
}

// vnodePoints hashes id's virtual nodes for the given weight.
func vnodePoints(id, vnodes int, weight float64) []ringPoint {
	pts := make([]ringPoint, vnodeCount(vnodes, weight))
	for v := range pts {
		pts[v] = ringPoint{h: hash64(fmt.Sprintf("replica-%d/vnode-%d", id, v)), id: id}
	}
	return pts
}

// hash64 is FNV-1a with a murmur-style finalizer. Raw FNV-1a has weak
// high-bit avalanche on near-identical strings — vnode labels differ in
// a couple of digits, and without the finalizer the ring points cluster
// badly enough to skew two-replica ownership to ~80/20.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Size reports the member count.
func (r *Ring) Size() int { return len(r.ids) }

// IDs returns the member ids (copy, insertion order).
func (r *Ring) IDs() []int { return append([]int(nil), r.ids...) }

// Weight reports id's weight (0 if absent).
func (r *Ring) Weight(id int) float64 {
	for i, e := range r.ids {
		if e == id {
			return r.weights[i]
		}
	}
	return 0
}

// Lookup returns the member owning key, or -1 on an empty ring.
func (r *Ring) Lookup(key string) int {
	seq := r.Sequence(key, 1)
	if len(seq) == 0 {
		return -1
	}
	return seq[0]
}

// Sequence returns up to n distinct member ids in ring order starting
// at the key's successor point: the primary first, then the failover
// candidates a router walks when the primary is down, tripped, or over
// its load high-water.
func (r *Ring) Sequence(key string, n int) []int {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.ids) {
		n = len(r.ids)
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= h })
	out := make([]int, 0, n)
	for k := 0; k < len(r.points) && len(out) < n; k++ {
		p := r.points[(i+k)%len(r.points)]
		if !contains(out, p.id) {
			out = append(out, p.id)
		}
	}
	return out
}

// contains is a linear scan — candidate lists are 2-4 entries, where a
// map would cost more than it saves.
func contains(ids []int, id int) bool {
	for _, e := range ids {
		if e == id {
			return true
		}
	}
	return false
}
