package cluster

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// testKeys generates nKeys seeded batch-key-shaped strings.
func testKeys(seed int64, nKeys int) []string {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]string, nKeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("comm|to_back|j=%d|0.%04d:%d;0.%04d:%d",
			rng.Intn(4), rng.Intn(10000), rng.Intn(2048), rng.Intn(10000), rng.Intn(2048))
	}
	return keys
}

func ownership(r *Ring, keys []string) map[int]int {
	owners := make(map[int]int)
	for _, k := range keys {
		owners[r.Lookup(k)]++
	}
	return owners
}

// TestRingBalance pins the load-balance property: with DefaultVnodes
// virtual nodes, every replica owns within 2x of its fair keyspace
// share, for fleet sizes the cluster actually runs.
func TestRingBalance(t *testing.T) {
	keys := testKeys(11, 20000)
	for _, n := range []int{2, 3, 4, 8} {
		ids := make([]int, n)
		for i := range ids {
			ids[i] = i
		}
		r := NewRing(DefaultVnodes, ids...)
		owners := ownership(r, keys)
		fair := float64(len(keys)) / float64(n)
		for id := 0; id < n; id++ {
			got := float64(owners[id])
			if got < fair/2 || got > fair*2 {
				t.Errorf("n=%d: replica %d owns %.0f keys, fair share %.0f (outside [0.5x, 2x])",
					n, id, got, fair)
			}
		}
	}
}

// TestRingJoinRemapsMinimally: adding a replica to an n-ring moves
// keys only TO the new replica, and fewer than 2/(n+1) of them.
func TestRingJoinRemapsMinimally(t *testing.T) {
	keys := testKeys(23, 20000)
	for _, n := range []int{2, 4, 8} {
		ids := make([]int, n)
		for i := range ids {
			ids[i] = i
		}
		before := NewRing(DefaultVnodes, ids...)
		after := before.With(n)
		moved := 0
		for _, k := range keys {
			was, is := before.Lookup(k), after.Lookup(k)
			if was == is {
				continue
			}
			moved++
			if is != n {
				t.Fatalf("n=%d: key moved from %d to %d, not to the joining replica %d", n, was, is, n)
			}
		}
		if bound := 2 * len(keys) / (n + 1); moved >= bound {
			t.Errorf("n=%d: join remapped %d of %d keys, want < %d", n, moved, len(keys), bound)
		}
		if moved == 0 {
			t.Errorf("n=%d: join remapped nothing — the new replica owns no keyspace", n)
		}
	}
}

// TestRingLeaveRemapsMinimally: removing a replica moves only the keys
// it owned (fewer than 2/n of all keys), and nothing else.
func TestRingLeaveRemapsMinimally(t *testing.T) {
	keys := testKeys(37, 20000)
	for _, n := range []int{2, 4, 8} {
		ids := make([]int, n)
		for i := range ids {
			ids[i] = i
		}
		before := NewRing(DefaultVnodes, ids...)
		victim := n - 1
		after := before.Without(victim)
		moved := 0
		for _, k := range keys {
			was, is := before.Lookup(k), after.Lookup(k)
			if was != victim && was != is {
				t.Fatalf("n=%d: key owned by surviving replica %d remapped to %d", n, was, is)
			}
			if was == victim {
				moved++
				if is == victim {
					t.Fatalf("n=%d: removed replica still owns a key", n)
				}
			}
		}
		if bound := 2 * len(keys) / n; moved >= bound {
			t.Errorf("n=%d: leave remapped %d of %d keys, want < %d", n, moved, len(keys), bound)
		}
	}
}

// TestRingInsertionOrderIrrelevant: the ring is a pure function of its
// membership set — replicas joining in any order yield identical
// routing, so restarts cannot silently reshuffle the keyspace.
func TestRingInsertionOrderIrrelevant(t *testing.T) {
	keys := testKeys(53, 2000)
	a := NewRing(DefaultVnodes, 0, 1, 2, 3)
	b := NewRing(DefaultVnodes, 3, 1, 0, 2)
	for _, k := range keys {
		if a.Lookup(k) != b.Lookup(k) {
			t.Fatalf("key %q routes to %d vs %d under different insertion orders", k, a.Lookup(k), b.Lookup(k))
		}
		if !reflect.DeepEqual(a.Sequence(k, 3), b.Sequence(k, 3)) {
			t.Fatalf("key %q has order-dependent candidate sequence", k)
		}
	}
}

func TestRingSequence(t *testing.T) {
	r := NewRing(DefaultVnodes, 0, 1, 2, 3)
	keys := testKeys(71, 500)
	for _, k := range keys {
		seq := r.Sequence(k, 3)
		if len(seq) != 3 {
			t.Fatalf("Sequence(%q, 3) returned %d ids", k, len(seq))
		}
		seen := map[int]bool{}
		for _, id := range seq {
			if seen[id] {
				t.Fatalf("Sequence(%q, 3) repeats replica %d", k, id)
			}
			seen[id] = true
		}
		if seq[0] != r.Lookup(k) {
			t.Fatalf("Sequence head %d != Lookup %d", seq[0], r.Lookup(k))
		}
		// n beyond membership truncates to the full membership.
		if got := r.Sequence(k, 10); len(got) != 4 {
			t.Fatalf("Sequence(%q, 10) returned %d ids, want 4", k, len(got))
		}
	}
}

// TestRingWeightedOwnership pins the weighted-balance property: each
// member's keyspace share is proportional to its weight within 2x, for
// weight spreads the fleet actually runs (unequal hosts up to 4:1).
func TestRingWeightedOwnership(t *testing.T) {
	keys := testKeys(13, 20000)
	for _, weights := range [][]float64{
		{1, 2},
		{1, 1, 2},
		{1, 2, 4},
		{0.5, 1, 1, 2},
	} {
		r := NewRing(DefaultVnodes)
		total := 0.0
		for id, w := range weights {
			r = r.WithWeight(id, w)
			total += w
		}
		owners := ownership(r, keys)
		for id, w := range weights {
			fair := float64(len(keys)) * w / total
			got := float64(owners[id])
			if got < fair/2 || got > fair*2 {
				t.Errorf("weights %v: replica %d owns %.0f keys, weighted fair share %.0f (outside [0.5x, 2x])",
					weights, id, got, fair)
			}
		}
	}
}

// TestRingReweightRemapsMinimally: changing one member's weight moves
// keys only to or from that member (bystanders keep every key), and the
// moved fraction is bounded by twice the member's share change.
func TestRingReweightRemapsMinimally(t *testing.T) {
	keys := testKeys(29, 20000)
	const n = 4
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	before := NewRing(DefaultVnodes, ids...)
	for _, newW := range []float64{2, 0.5} {
		after := before.WithWeight(0, newW)
		moved := 0
		for _, k := range keys {
			was, is := before.Lookup(k), after.Lookup(k)
			if was == is {
				continue
			}
			moved++
			if was != 0 && is != 0 {
				t.Fatalf("reweight(0, %g): key moved between bystanders %d -> %d", newW, was, is)
			}
			if newW > 1 && is != 0 {
				t.Fatalf("reweight(0, %g): weight increase moved a key away from member 0 (%d -> %d)", newW, was, is)
			}
			if newW < 1 && was != 0 {
				t.Fatalf("reweight(0, %g): weight decrease moved a key toward member 0 (%d -> %d)", newW, was, is)
			}
		}
		shareBefore := 1.0 / n
		shareAfter := newW / (newW + n - 1)
		bound := 2 * math.Abs(shareAfter-shareBefore) * float64(len(keys))
		if float64(moved) >= bound {
			t.Errorf("reweight(0, %g) remapped %d of %d keys, want < %.0f", newW, moved, len(keys), bound)
		}
		if moved == 0 {
			t.Errorf("reweight(0, %g) remapped nothing", newW)
		}
	}
}

// TestRingZeroWeightOwnsNothing: a zero-weight member stays on the
// member list but owns no keys and never appears in a candidate
// sequence; restoring its weight brings it back.
func TestRingZeroWeightOwnsNothing(t *testing.T) {
	keys := testKeys(41, 5000)
	r := NewRing(DefaultVnodes, 0, 1, 2)
	zeroed := r.WithWeight(1, 0)
	if zeroed.Size() != 3 {
		t.Fatalf("zero-weight member left the member list (size %d)", zeroed.Size())
	}
	for _, k := range keys {
		if zeroed.Lookup(k) == 1 {
			t.Fatalf("zero-weight member owns key %q", k)
		}
		for _, id := range zeroed.Sequence(k, 3) {
			if id == 1 {
				t.Fatalf("zero-weight member appears in candidate sequence for %q", k)
			}
		}
	}
	// Surviving members split the orphaned keys; nothing else moved.
	for _, k := range keys {
		was, is := r.Lookup(k), zeroed.Lookup(k)
		if was != 1 && was != is {
			t.Fatalf("zeroing member 1 remapped a bystander key %d -> %d", was, is)
		}
	}
	restored := zeroed.WithWeight(1, 1)
	for _, k := range keys {
		if restored.Lookup(k) != r.Lookup(k) {
			t.Fatal("restoring the weight did not restore the original routing")
		}
	}
}

func TestRingEdgeCases(t *testing.T) {
	empty := NewRing(DefaultVnodes)
	if got := empty.Lookup("anything"); got != -1 {
		t.Fatalf("empty ring Lookup = %d, want -1", got)
	}
	if got := empty.Sequence("anything", 2); got != nil {
		t.Fatalf("empty ring Sequence = %v, want nil", got)
	}
	one := empty.With(7)
	if got := one.Lookup("anything"); got != 7 {
		t.Fatalf("one-member ring Lookup = %d, want 7", got)
	}
	if one.With(7) != one {
		t.Fatal("adding an existing member built a new ring")
	}
	if one.Without(99) != one {
		t.Fatal("removing an absent member built a new ring")
	}
	if got := one.Without(7).Size(); got != 0 {
		t.Fatalf("ring size after removing last member = %d", got)
	}
	if empty.Size() != 0 {
		t.Fatal("With/Without mutated the receiver ring")
	}
}
