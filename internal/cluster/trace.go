// Balancer-side request tracing, per-stage latency attribution, and
// the request-id / SLO plumbing for the front door.
//
// The router's pipeline has three stages worth attributing: decode
// (body read + JSON parse + batch-key derivation), route (candidate
// selection, attempts, failover, hedging — everything between admission
// and the first byte of an answer), and encode (writing the response).
// Each is observed into cluster_stage_seconds on every request; sampled
// requests additionally produce an "lb" span tree — a request root, one
// child span per stage, and one child span per attempt — whose trace
// context is stamped into the X-Contention-Trace header so the chosen
// replica's own spans parent into the same trace. One sampled request
// through the balancer therefore yields a single connected timeline:
//
//	lb/request
//	├── lb/decode
//	├── lb/route
//	│   └── lb/attempt            (one per try; hedges included)
//	│       └── serve/request     (on the replica)
//	│           ├── serve/decode ... serve/encode
//	└── lb/encode
package cluster

import (
	"net/http"
	"time"

	"contention/internal/obs"
	"contention/internal/serve"
)

// Per-stage latency attribution for the router pipeline.
var mLBStageSeconds = obs.NewHistogramVec(obs.MetricClusterStageSeconds,
	"per-stage router latency in seconds", "stage", obs.DefaultSecondsBuckets())

var (
	lbStDecode = mLBStageSeconds.With("decode")
	lbStRoute  = mLBStageSeconds.With("route")
	lbStEncode = mLBStageSeconds.With("encode")
)

var mTraceSampled = obs.NewCounter(obs.MetricTraceSampled,
	"requests that carried or started a sampled trace")

// reqMeta threads per-request correlation state from the front door
// through route/attempt to the outgoing wire: the request id to forward
// and the trace context attempts should parent their spans to. The zero
// value is a request with neither.
type reqMeta struct {
	rid string
	tc  obs.TraceContext
	// contentType is the client's request wire format, forwarded verbatim
	// so binary-wire requests stay binary end to end; empty means JSON.
	contentType string
}

// lbTrace is one sampled request's tracing handle on the balancer; a
// nil *lbTrace is the unsampled case and every method no-ops.
type lbTrace struct {
	root *obs.Span
	tc   obs.TraceContext
}

// requestTrace decides the balancer's trace participation: an incoming
// X-Contention-Trace header is honored verbatim (including a negative
// sampling verdict); only headless requests consult the sampler. The
// returned context (valid whenever the request belongs to any trace,
// sampled or not) is what attempts must propagate downstream.
func (c *Cluster) requestTrace(r *http.Request) (*lbTrace, obs.TraceContext) {
	tc, ok := obs.ParseTraceContext(r.Header.Get(serve.TraceHeader))
	if !ok {
		if !c.cfg.Sampler.Sample() {
			return nil, obs.TraceContext{}
		}
		tc = obs.NewRootContext(true)
	}
	if !tc.Sampled {
		return nil, tc
	}
	root, child := obs.DefaultTracer().StartCtx("lb", "request", tc)
	if root == nil {
		return nil, tc // telemetry disabled: propagate, record nothing
	}
	mTraceSampled.Inc()
	return &lbTrace{root: root, tc: child}, child
}

// stage promotes one timed pipeline stage to a child span of the
// request root. The histograms are observed by the caller either way.
func (lt *lbTrace) stage(name string, start, end time.Time) {
	if lt == nil {
		return
	}
	obs.DefaultTracer().RecordSpan("lb", name, obs.SinceStart(start), obs.SinceStart(end), lt.tc)
}

// end closes the root request span.
func (lt *lbTrace) end() {
	if lt != nil {
		lt.root.End()
	}
}

// recordSLO feeds one finished front-door request into the SLO tracker.
// Client faults (malformed requests, vanished clients, upstream 4xx)
// burn no server error budget and are excluded from both SLIs.
func (c *Cluster) recordSLO(start time.Time, failed, clientFault bool) {
	if c.cfg.SLO == nil || clientFault {
		return
	}
	c.cfg.SLO.Record(time.Since(start).Seconds(), !failed)
}
