package cluster

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"contention/internal/obs"
	"contention/internal/serve"
)

// withTraceRecording enables telemetry and clears the process tracer,
// restoring both afterwards.
func withTraceRecording(t *testing.T) {
	t.Helper()
	prev := obs.Enabled()
	obs.SetEnabled(true)
	obs.DefaultTracer().Reset()
	t.Cleanup(func() {
		obs.SetEnabled(prev)
		obs.DefaultTracer().Reset()
	})
}

// tracePost sends one predict with an explicit trace context.
func tracePost(t *testing.T, front *httptest.Server, body string, tc obs.TraceContext) int {
	t.Helper()
	req, err := http.NewRequest("POST", front.URL+"/v1/predict", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(serve.TraceHeader, tc.String())
	resp, err := front.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode
}

// waitSpansForTrace polls the process tracer until the trace's span set
// stops growing (the lb root span ends in a deferred call that can lag
// the client's receipt of the response).
func waitSpansForTrace(t *testing.T, tc obs.TraceContext, minSpans int) []obs.SpanRecord {
	t.Helper()
	want := obs.HexID(tc.TraceID)
	deadline := time.Now().Add(2 * time.Second)
	for {
		var out []obs.SpanRecord
		for _, s := range obs.DefaultTracer().Spans() {
			if s.Trace == want {
				out = append(out, s)
			}
		}
		if len(out) >= minSpans || time.Now().After(deadline) {
			return out
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestTracePropagationAcrossFleet is the propagation differential: a
// balancer fronting two real serve replicas (each on its own loopback
// port, reached over HTTP) must turn one sampled client request into
// ONE connected trace — the lb's request/stage/attempt spans and the
// replica's request/stage spans all share the client's trace id and
// form a single parent-linked tree across the process-boundary hop.
func TestTracePropagationAcrossFleet(t *testing.T) {
	withTraceRecording(t)
	c, _, front := newTestCluster(t, 2, func(cfg *Config) {
		cfg.Factory = InProcessFactory(InProcConfig{Window: 200 * time.Microsecond})
	})
	if up := c.UpCount(); up != 2 {
		t.Fatalf("replicas up = %d, want 2", up)
	}

	for i := 0; i < 6; i++ {
		client := obs.NewRootContext(true)
		client.SpanID = obs.NewID() // simulate a client-side span as the parent
		if code := tracePost(t, front, predictBody(i), client); code != http.StatusOK {
			t.Fatalf("request %d: status %d", i, code)
		}

		// lb: request + decode + route + attempt + encode; serve: request
		// + decode + admission + compute/surface + encode.
		spans := waitSpansForTrace(t, client, 9)
		byID := map[string]obs.SpanRecord{}
		for _, s := range spans {
			byID[s.Span] = s
		}

		var lbRoot, serveRoot obs.SpanRecord
		lbStages := map[string]obs.SpanRecord{}
		serveStages := map[string]bool{}
		var attempts []obs.SpanRecord
		for _, s := range spans {
			switch {
			case s.Actor == "lb" && s.Name == "request":
				lbRoot = s
			case s.Actor == "lb" && s.Name == "attempt":
				attempts = append(attempts, s)
			case s.Actor == "lb":
				lbStages[s.Name] = s
			case s.Actor == "serve" && s.Name == "request":
				serveRoot = s
			case s.Actor == "serve":
				serveStages[s.Name] = true
			}
		}

		if lbRoot.Span == "" {
			t.Fatalf("request %d: no lb root span in %+v", i, spans)
		}
		if lbRoot.Parent != obs.HexID(client.SpanID) {
			t.Fatalf("request %d: lb root parent %q, want client span %q",
				i, lbRoot.Parent, obs.HexID(client.SpanID))
		}
		for _, name := range []string{"decode", "route", "encode"} {
			s, ok := lbStages[name]
			if !ok {
				t.Fatalf("request %d: lb stage %q missing in %+v", i, name, spans)
			}
			if s.Parent != lbRoot.Span {
				t.Errorf("request %d: lb/%s parent %q, want root %q", i, name, s.Parent, lbRoot.Span)
			}
		}
		if len(attempts) == 0 {
			t.Fatalf("request %d: no lb attempt span", i)
		}
		for _, a := range attempts {
			if a.Parent != lbRoot.Span {
				t.Errorf("request %d: attempt parent %q, want root %q", i, a.Parent, lbRoot.Span)
			}
		}
		if serveRoot.Span == "" {
			t.Fatalf("request %d: no serve root span — trace did not cross the hop: %+v", i, spans)
		}
		parentAttempt, ok := byID[serveRoot.Parent]
		if !ok || parentAttempt.Actor != "lb" || parentAttempt.Name != "attempt" {
			t.Fatalf("request %d: serve root parent %q is not an lb attempt (got %+v)",
				i, serveRoot.Parent, parentAttempt)
		}
		for _, name := range []string{"decode", "encode"} {
			if !serveStages[name] {
				t.Errorf("request %d: serve stage %q missing in %+v", i, name, spans)
			}
		}
		// Connectivity: every span's parent chain must reach the client
		// span — one tree, no orphans.
		for _, s := range spans {
			cur, hops := s, 0
			for cur.Parent != obs.HexID(client.SpanID) {
				next, ok := byID[cur.Parent]
				if !ok {
					t.Fatalf("request %d: span %s/%s has orphan parent %q", i, s.Actor, s.Name, cur.Parent)
				}
				cur = next
				if hops++; hops > 10 {
					t.Fatalf("request %d: parent cycle at %s/%s", i, s.Actor, s.Name)
				}
			}
		}
	}

	// The negative half of the differential: a valid but unsampled
	// context routes fine and records nothing, anywhere.
	unsampled := obs.TraceContext{TraceID: 0xfeed, SpanID: 0xbee, Sampled: false}
	if code := tracePost(t, front, predictBody(99), unsampled); code != http.StatusOK {
		t.Fatalf("unsampled request: status %d", code)
	}
	for _, s := range obs.DefaultTracer().Spans() {
		if s.Trace == obs.HexID(unsampled.TraceID) {
			t.Fatalf("unsampled request recorded span %+v", s)
		}
	}
}

// TestLBStageHistogramsAlwaysOn pins that per-stage attribution does
// not depend on sampling: an unsampled request still lands in every
// cluster_stage_seconds series.
func TestLBStageHistogramsAlwaysOn(t *testing.T) {
	withClusterTelemetry(t)
	_, _, front := newTestCluster(t, 1, nil)
	before := map[string]int64{}
	for _, m := range obs.Default().Snapshot().Metrics {
		if strings.HasPrefix(m.Name, obs.MetricClusterStageSeconds+"{") {
			before[m.Name] = m.Count
		}
	}
	if code, _ := postPredict(t, front, predictBody(3)); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	for _, stage := range []string{"decode", "route", "encode"} {
		name := obs.MetricClusterStageSeconds + `{stage="` + stage + `"}`
		m, ok := obs.Default().Snapshot().Find(name)
		if !ok || m.Count <= before[name] {
			t.Errorf("stage %s histogram did not move: %+v ok=%v", stage, m, ok)
		}
	}
}

var lbHexIDRe = regexp.MustCompile(`^[0-9a-f]{16}$`)

// TestLBRequestIDForwardingAndEcho pins request-id correlation through
// the balancer: a client id is forwarded to the replica and echoed on
// success; error envelopes carry the client id when sent and a minted
// 16-hex id when not.
func TestLBRequestIDForwardingAndEcho(t *testing.T) {
	// Tight routing budget so the failure half (a stalled replica) turns
	// into an lb-generated timeout envelope quickly. Upstream error
	// bodies are relayed verbatim — a real replica embeds the forwarded
	// id itself — so the envelope cases below use lb-originated errors.
	_, fl, front := newTestCluster(t, 1, func(cfg *Config) {
		cfg.PerTryTimeout = 100 * time.Millisecond
		cfg.Timeout = 300 * time.Millisecond
	})

	do := func(rid string) *http.Response {
		req, err := http.NewRequest("POST", front.URL+"/v1/predict", strings.NewReader(predictBody(1)))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if rid != "" {
			req.Header.Set(serve.RequestIDHeader, rid)
		}
		resp, err := front.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	// Success: forwarded to the replica, echoed to the client.
	resp := do("cli-42")
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK || resp.Header.Get(serve.RequestIDHeader) != "cli-42" {
		t.Fatalf("success: status %d echo %q", resp.StatusCode, resp.Header.Get(serve.RequestIDHeader))
	}
	if got, _ := fl.current(0).lastRID.Load().(string); got != "cli-42" {
		t.Fatalf("replica saw X-Request-Id %q, want cli-42", got)
	}

	// Success without an id: nothing minted on the happy path.
	resp = do("")
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK || resp.Header.Get(serve.RequestIDHeader) != "" {
		t.Fatalf("plain success: status %d, unexpected header %q",
			resp.StatusCode, resp.Header.Get(serve.RequestIDHeader))
	}

	// Failure: the envelope carries the client id...
	fl.current(0).stallMS.Store(1000)
	resp = do("cli-err")
	var envelope errEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode == http.StatusOK {
		t.Fatal("expected a routed failure")
	}
	if envelope.RequestID != "cli-err" || resp.Header.Get(serve.RequestIDHeader) != "cli-err" {
		t.Fatalf("error correlation: body %q header %q, want cli-err", envelope.RequestID,
			resp.Header.Get(serve.RequestIDHeader))
	}

	// ...and a minted one when the client sent none.
	resp = do("")
	envelope = errEnvelope{}
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
		t.Fatal(err)
	}
	if !lbHexIDRe.MatchString(envelope.RequestID) {
		t.Fatalf("minted request id %q is not 16 hex digits", envelope.RequestID)
	}
	if resp.Header.Get(serve.RequestIDHeader) != envelope.RequestID {
		t.Fatalf("minted id mismatch: header %q body %q",
			resp.Header.Get(serve.RequestIDHeader), envelope.RequestID)
	}
}

// TestReadySLODetail pins the /readyz detail: with an SLO tracker
// configured the body carries burn-rate status, and a breach is
// reported without flipping readiness.
func TestReadySLODetail(t *testing.T) {
	now := new(float64)
	slo, err := obs.NewSLOTracker(obs.SLOConfig{
		AvailabilityTarget: 0.99,
		FastWindowSeconds:  60,
		SlowWindowSeconds:  600,
		Clock:              func() float64 { return *now },
		Registry:           obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	_, _, front := newTestCluster(t, 1, func(cfg *Config) { cfg.SLO = slo })

	get := func() (int, map[string]json.RawMessage) {
		resp, err := front.Client().Get(front.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body map[string]json.RawMessage
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body
	}

	code, body := get()
	if code != http.StatusOK {
		t.Fatalf("readyz status %d", code)
	}
	if _, ok := body["slo"]; !ok {
		t.Fatalf("readyz body missing slo detail: %v", body)
	}

	// Burn the budget: readiness must NOT flip (load-shedding on SLO
	// breach would amplify the outage), but the detail must say breach.
	for s := 0; s < 120; s++ {
		*now = float64(s)
		slo.Record(0.01, false)
	}
	code, body = get()
	if code != http.StatusOK {
		t.Fatalf("breached readyz status %d, want 200 (breach must not flip readiness)", code)
	}
	var st obs.SLOStatus
	if err := json.Unmarshal(body["slo"], &st); err != nil {
		t.Fatal(err)
	}
	if !st.Breach || st.Reason != "availability" {
		t.Fatalf("readyz slo detail %+v, want availability breach", st)
	}
}
