package core

import "testing"

// TestPredictCommAllocationFree is the regression test for the
// hot-path copy audit: after the first call warms the slowdown cache
// for a contender set, PredictComm must not allocate at all — a
// scheduler may evaluate it on every placement decision.
func TestPredictCommAllocationFree(t *testing.T) {
	p, err := NewPredictor(fullCalibration())
	if err != nil {
		t.Fatal(err)
	}
	cs := robustContenders()
	sets := []DataSet{{N: 400, Words: 512}}
	// Warm the cache for this contender multiset.
	if _, err := p.PredictComm(HostToBack, sets, cs); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := p.PredictComm(HostToBack, sets, cs); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm PredictComm allocates %.1f objects/op, want 0", allocs)
	}
}

// TestPredictCompAllocationFree: same contract for the computation path.
func TestPredictCompAllocationFree(t *testing.T) {
	p, err := NewPredictor(fullCalibration())
	if err != nil {
		t.Fatal(err)
	}
	cs := robustContenders()
	if _, err := p.PredictComp(2, cs); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := p.PredictComp(2, cs); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm PredictComp allocates %.1f objects/op, want 0", allocs)
	}
}
