// Slowdown-kernel caching. The paper's mixture slowdowns are pure
// functions of (delay tables, contender multiset, j column); the
// experiment drivers, the serving daemon, and any scheduler hammering
// the model evaluate them over and over with the contender set
// unchanged across an entire message-size sweep. slowdownCache memoizes
// the mixtures keyed on the contender-probability multiset (+ j for the
// computation mixture) and reuses per-shard scratch buffers, turning
// the hot path into a map probe with zero allocations after warm-up.
//
// The cache is sharded: a power-of-two array of independently locked
// shards, selected by an order-insensitive hash of the batch key, so
// concurrent predictor users on a multi-core host contend only when
// they touch the same key neighborhood instead of serializing on one
// global mutex. The shard index must be computable before any scratch
// buffer is available (scratch lives in the shard), so it is derived
// from a commutative mix over the raw contender fields — deterministic
// per multiset, no sorting required.
package core

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
)

// cacheShardBits sets the shard count (1 << cacheShardBits). 64 shards
// keep multi-core contention negligible while the per-shard scratch
// stays a few hundred bytes.
const cacheShardBits = 6

const cacheShards = 1 << cacheShardBits

// slowdownCache memoizes mixture slowdowns for one fixed DelayTables.
//
// Keying/invalidation contract: entries are keyed by the contender
// multiset (order-insensitive) and, for the computation mixture, the j
// column. The tables themselves are NOT part of the key — a cache must
// be owned by exactly one immutable calibration (the Predictor's).
// Recalibration therefore invalidates by construction: it produces a
// new Predictor and with it an empty cache. MarkStale does not touch
// the cache either, because staleness redirects the Robust methods to
// the p+1 fallback (and the Try fast path to a miss) before any cached
// value is consulted; the cached mixtures remain correct for the
// calibration they were computed from.
type slowdownCache struct {
	shards [cacheShards]cacheShard
}

// cacheShard is one independently locked slice of the key space. The
// scratch buffers are shard-local: a key is always built (and a DP
// rebuilt) under the shard lock, so concurrent misses on different
// shards proceed in parallel.
type cacheShard struct {
	mu   sync.Mutex
	comm map[string]float64
	comp map[string]float64
	// scratch buffers reused across calls (guarded by mu)
	key      []byte
	sorted   []Contender
	compDist []float64
	commDist []float64
}

func newSlowdownCache() *slowdownCache {
	c := &slowdownCache{}
	for i := range c.shards {
		c.shards[i].comm = make(map[string]float64)
		c.shards[i].comp = make(map[string]float64)
	}
	return c
}

// fmix64 is the 64-bit murmur3 finalizer: full-avalanche mixing so
// near-identical contender encodings spread across shards.
func fmix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// shardFor selects the shard for a mixture key. The per-contender
// hashes combine by addition — commutative, so every permutation of
// one multiset lands on the same shard without sorting first — and the
// kind/column fold in so the comm and comp key spaces spread
// independently.
func (c *slowdownCache) shardFor(kind byte, col int, cs []Contender) *cacheShard {
	acc := fmix64(uint64(kind)<<32 | uint64(uint32(col)))
	for _, ct := range cs {
		h := math.Float64bits(ct.CommFraction)
		h = h*0x9e3779b97f4a7c15 + math.Float64bits(ct.IOFraction)
		h = h*0x9e3779b97f4a7c15 + uint64(uint32(ct.MsgWords))
		acc += fmix64(h)
	}
	return &c.shards[fmix64(acc)&(cacheShards-1)]
}

// appendKey canonicalizes the contender multiset into sh.key:
// contenders are insertion-sorted (the sets are small) into sh.sorted
// so that permutations of the same multiset share one entry, then the
// fields are encoded as raw float bits. kind and j disambiguate the
// mixture. Both scratch slices are reused; the caller must hold sh.mu.
func (sh *cacheShard) appendKey(kind byte, j int, cs []Contender) {
	sh.sorted = append(sh.sorted[:0], cs...)
	for i := 1; i < len(sh.sorted); i++ {
		for k := i; k > 0 && lessContender(sh.sorted[k], sh.sorted[k-1]); k-- {
			sh.sorted[k], sh.sorted[k-1] = sh.sorted[k-1], sh.sorted[k]
		}
	}
	sh.key = append(sh.key[:0], kind)
	sh.key = binary.LittleEndian.AppendUint64(sh.key, uint64(j))
	for _, ct := range sh.sorted {
		sh.key = binary.LittleEndian.AppendUint64(sh.key, math.Float64bits(ct.CommFraction))
		sh.key = binary.LittleEndian.AppendUint64(sh.key, math.Float64bits(ct.IOFraction))
		sh.key = binary.LittleEndian.AppendUint64(sh.key, uint64(ct.MsgWords))
	}
}

func lessContender(a, b Contender) bool {
	if a.CommFraction != b.CommFraction {
		return a.CommFraction < b.CommFraction
	}
	if a.IOFraction != b.IOFraction {
		return a.IOFraction < b.IOFraction
	}
	return a.MsgWords < b.MsgWords
}

// distributions rebuilds the pcomp/pcomm Poisson-binomial distributions
// into the shard's scratch buffers. The caller must hold sh.mu.
func (sh *cacheShard) distributions(cs []Contender) error {
	for _, ct := range cs {
		if err := ct.Validate(); err != nil {
			return err
		}
	}
	var err error
	sh.compDist, err = appendDistFractions(sh.compDist, cs, Contender.CompFraction)
	if err != nil {
		return err
	}
	sh.commDist, err = appendDistFractions(sh.commDist, cs, func(ct Contender) float64 { return ct.CommFraction })
	return err
}

// appendDistFractions is prob.AppendDistribution over a derived
// per-contender probability, avoiding a staging slice. Contenders must
// already be validated (the fractions are then guaranteed in [0,1]).
func appendDistFractions(dst []float64, cs []Contender, q func(Contender) float64) ([]float64, error) {
	dst = append(dst[:0], 1)
	for _, ct := range cs {
		p := q(ct)
		if p < 0 || p > 1 || math.IsNaN(p) {
			return nil, fmt.Errorf("core: activity probability %v out of [0,1]", p)
		}
		n := len(dst)
		dst = append(dst, 0)
		for i := n - 1; i >= 0; i-- {
			dst[i+1] += dst[i] * p
			dst[i] *= 1 - p
		}
	}
	return dst, nil
}

// commSlowdown returns the communication-slowdown mixture for cs,
// computing and memoizing it on first sight of the multiset.
func (c *slowdownCache) commSlowdown(cs []Contender, t DelayTables) (float64, error) {
	sh := c.shardFor('m', 0, cs)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.appendKey('m', 0, cs)
	if s, ok := sh.comm[string(sh.key)]; ok {
		mCacheCommHits.Inc()
		return s, nil
	}
	mCacheCommMisses.Inc()
	if err := sh.distributions(cs); err != nil {
		return 0, err
	}
	s := 1.0
	for i := 1; i <= len(cs); i++ {
		s += sh.compDist[i] * lookup(t.CompOnComm, i)
		s += sh.commDist[i] * lookup(t.CommOnComm, i)
	}
	sh.comm[string(sh.key)] = s
	return s, nil
}

// probeComm is the lookup-only variant of commSlowdown: it reports a
// memoized mixture when one exists and never runs the DP. The Try fast
// path (and through it, the serving batcher bypass) relies on it being
// allocation-free.
func (c *slowdownCache) probeComm(cs []Contender) (float64, bool) {
	sh := c.shardFor('m', 0, cs)
	sh.mu.Lock()
	sh.appendKey('m', 0, cs)
	s, ok := sh.comm[string(sh.key)]
	sh.mu.Unlock()
	return s, ok
}

// resolveCompCol maps a requested j to its delay^{i,j} column (0 when
// no contender communicates, so column choice cannot matter).
func resolveCompCol(cs []Contender, jGrid []int, j int) (int, error) {
	for _, ct := range cs {
		if ct.CommFraction > 0 {
			return NearestJ(jGrid, j)
		}
	}
	return 0, nil
}

// compSlowdownWithJ returns the computation-slowdown mixture for cs
// using the delay^{i,j} column nearest j (resolved against jGrid, the
// predictor's precomputed ascending column list), memoized per
// (multiset, resolved column).
func (c *slowdownCache) compSlowdownWithJ(cs []Contender, t DelayTables, jGrid []int, j int) (float64, error) {
	// Resolve j to its calibrated column first so that all message sizes
	// mapping to one column share a cache entry.
	col, err := resolveCompCol(cs, jGrid, j)
	if err != nil {
		return 0, err
	}
	sh := c.shardFor('p', col, cs)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.appendKey('p', col, cs)
	if s, ok := sh.comp[string(sh.key)]; ok {
		mCacheCompHits.Inc()
		return s, nil
	}
	mCacheCompMisses.Inc()
	if err := sh.distributions(cs); err != nil {
		return 0, err
	}
	s := 1.0
	for i := 1; i <= len(cs); i++ {
		s += sh.compDist[i] * float64(i)
		if p := sh.commDist[i]; p > 0 {
			s += p * lookup(t.CommOnComp[col], i)
		}
	}
	sh.comp[string(sh.key)] = s
	return s, nil
}

// probeCompWithJ is the lookup-only variant of compSlowdownWithJ.
func (c *slowdownCache) probeCompWithJ(cs []Contender, jGrid []int, j int) (float64, bool) {
	col, err := resolveCompCol(cs, jGrid, j)
	if err != nil {
		return 0, false
	}
	sh := c.shardFor('p', col, cs)
	sh.mu.Lock()
	sh.appendKey('p', col, cs)
	s, ok := sh.comp[string(sh.key)]
	sh.mu.Unlock()
	return s, ok
}

// NearestJ selects the calibrated column in grid (ascending) closest to
// the requested message size, applying the paper's footnote: the j=1
// column is only eligible when the size is below 95 words. It is the
// allocation-free core of DelayTables.NearestJ, shared with the
// precomputed-surface layer so both resolve identically.
func NearestJ(grid []int, words int) (int, error) {
	if len(grid) == 0 {
		return 0, errNoJColumns
	}
	bestJ, bestDist := 0, math.MaxInt
	for _, j := range grid {
		if j == 1 && words >= smallMessageLimit && len(grid) > 1 {
			continue
		}
		d := j - words
		if d < 0 {
			d = -d
		}
		if d < bestDist {
			bestJ, bestDist = j, d
		}
	}
	return bestJ, nil
}
