// Slowdown-kernel caching. The paper's mixture slowdowns are pure
// functions of (delay tables, contender multiset, j column); the
// experiment drivers and any scheduler hammering the model evaluate
// them over and over with the contender set unchanged across an entire
// message-size sweep. slowdownCache memoizes the mixtures keyed on the
// contender-probability multiset (+ j for the computation mixture) and
// reuses the Poisson-binomial DP scratch buffers, turning the hot path
// into a map probe with zero allocations after warm-up.
package core

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
)

// slowdownCache memoizes mixture slowdowns for one fixed DelayTables.
// It is goroutine-safe: one mutex guards both maps and the scratch
// buffers, so concurrent predictor users serialize only for the
// microseconds of a key build or a DP rebuild.
//
// Keying/invalidation contract: entries are keyed by the contender
// multiset (order-insensitive) and, for the computation mixture, the j
// column. The tables themselves are NOT part of the key — a cache must
// be owned by exactly one immutable calibration (the Predictor's).
// Recalibration therefore invalidates by construction: it produces a
// new Predictor and with it an empty cache. MarkStale does not touch
// the cache either, because staleness redirects the Robust methods to
// the p+1 fallback before any cached value is consulted; the cached
// mixtures remain correct for the calibration they were computed from.
type slowdownCache struct {
	mu   sync.Mutex
	comm map[string]float64
	comp map[string]float64
	// scratch buffers reused across calls (guarded by mu)
	key      []byte
	sorted   []Contender
	compDist []float64
	commDist []float64
}

func newSlowdownCache() *slowdownCache {
	return &slowdownCache{
		comm: make(map[string]float64),
		comp: make(map[string]float64),
	}
}

// appendKey canonicalizes the contender multiset into c.key: contenders
// are insertion-sorted (the sets are small) into c.sorted so that
// permutations of the same multiset share one entry, then the fields
// are encoded as raw float bits. kind and j disambiguate the mixture.
// Both scratch slices are reused; the caller must hold c.mu.
func (c *slowdownCache) appendKey(kind byte, j int, cs []Contender) {
	c.sorted = append(c.sorted[:0], cs...)
	for i := 1; i < len(c.sorted); i++ {
		for k := i; k > 0 && lessContender(c.sorted[k], c.sorted[k-1]); k-- {
			c.sorted[k], c.sorted[k-1] = c.sorted[k-1], c.sorted[k]
		}
	}
	c.key = append(c.key[:0], kind)
	c.key = binary.LittleEndian.AppendUint64(c.key, uint64(j))
	for _, ct := range c.sorted {
		c.key = binary.LittleEndian.AppendUint64(c.key, math.Float64bits(ct.CommFraction))
		c.key = binary.LittleEndian.AppendUint64(c.key, math.Float64bits(ct.IOFraction))
		c.key = binary.LittleEndian.AppendUint64(c.key, uint64(ct.MsgWords))
	}
}

func lessContender(a, b Contender) bool {
	if a.CommFraction != b.CommFraction {
		return a.CommFraction < b.CommFraction
	}
	if a.IOFraction != b.IOFraction {
		return a.IOFraction < b.IOFraction
	}
	return a.MsgWords < b.MsgWords
}

// distributions rebuilds the pcomp/pcomm Poisson-binomial distributions
// into the cache's scratch buffers. The caller must hold c.mu.
func (c *slowdownCache) distributions(cs []Contender) error {
	for _, ct := range cs {
		if err := ct.Validate(); err != nil {
			return err
		}
	}
	var err error
	c.compDist, err = appendDistFractions(c.compDist, cs, Contender.CompFraction)
	if err != nil {
		return err
	}
	c.commDist, err = appendDistFractions(c.commDist, cs, func(ct Contender) float64 { return ct.CommFraction })
	return err
}

// appendDistFractions is prob.AppendDistribution over a derived
// per-contender probability, avoiding a staging slice. Contenders must
// already be validated (the fractions are then guaranteed in [0,1]).
func appendDistFractions(dst []float64, cs []Contender, q func(Contender) float64) ([]float64, error) {
	dst = append(dst[:0], 1)
	for _, ct := range cs {
		p := q(ct)
		if p < 0 || p > 1 || math.IsNaN(p) {
			return nil, fmt.Errorf("core: activity probability %v out of [0,1]", p)
		}
		n := len(dst)
		dst = append(dst, 0)
		for i := n - 1; i >= 0; i-- {
			dst[i+1] += dst[i] * p
			dst[i] *= 1 - p
		}
	}
	return dst, nil
}

// commSlowdown returns the communication-slowdown mixture for cs,
// computing and memoizing it on first sight of the multiset.
func (c *slowdownCache) commSlowdown(cs []Contender, t DelayTables) (float64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.appendKey('m', 0, cs)
	if s, ok := c.comm[string(c.key)]; ok {
		mCacheCommHits.Inc()
		return s, nil
	}
	mCacheCommMisses.Inc()
	if err := c.distributions(cs); err != nil {
		return 0, err
	}
	s := 1.0
	for i := 1; i <= len(cs); i++ {
		s += c.compDist[i] * lookup(t.CompOnComm, i)
		s += c.commDist[i] * lookup(t.CommOnComm, i)
	}
	c.comm[string(c.key)] = s
	return s, nil
}

// compSlowdownWithJ returns the computation-slowdown mixture for cs
// using the delay^{i,j} column nearest j (resolved against jGrid, the
// predictor's precomputed ascending column list), memoized per
// (multiset, resolved column).
func (c *slowdownCache) compSlowdownWithJ(cs []Contender, t DelayTables, jGrid []int, j int) (float64, error) {
	// Resolve j to its calibrated column first so that all message sizes
	// mapping to one column share a cache entry.
	col := 0
	anyComm := false
	for _, ct := range cs {
		if ct.CommFraction > 0 {
			anyComm = true
			break
		}
	}
	if anyComm {
		var err error
		col, err = nearestJ(jGrid, j)
		if err != nil {
			return 0, err
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.appendKey('p', col, cs)
	if s, ok := c.comp[string(c.key)]; ok {
		mCacheCompHits.Inc()
		return s, nil
	}
	mCacheCompMisses.Inc()
	if err := c.distributions(cs); err != nil {
		return 0, err
	}
	s := 1.0
	for i := 1; i <= len(cs); i++ {
		s += c.compDist[i] * float64(i)
		if p := c.commDist[i]; p > 0 {
			s += p * lookup(t.CommOnComp[col], i)
		}
	}
	c.comp[string(c.key)] = s
	return s, nil
}

// nearestJ is DelayTables.NearestJ over a precomputed ascending grid,
// allocation-free.
func nearestJ(grid []int, words int) (int, error) {
	if len(grid) == 0 {
		return 0, errNoJColumns
	}
	bestJ, bestDist := 0, math.MaxInt
	for _, j := range grid {
		if j == 1 && words >= smallMessageLimit && len(grid) > 1 {
			continue
		}
		d := j - words
		if d < 0 {
			d = -d
		}
		if d < bestDist {
			bestJ, bestDist = j, d
		}
	}
	return bestJ, nil
}
