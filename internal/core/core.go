// Package core implements the contention model of Figueira & Berman
// (HPDC'96): slowdown factors that adjust dedicated-mode computation and
// communication costs for the load on a non-dedicated two-machine
// heterogeneous platform.
//
// The model has three ingredients:
//
//   - A dedicated communication-cost model: per data set,
//     N × (α + size/β), with (α, β) taken from one of two linear pieces
//     split at a system-dependent threshold (1024 words on the
//     Sun/Paragon).
//   - System-dependent delay tables, measured once per platform by the
//     calibration suite (package calibrate): delay^i_comp (delay imposed
//     on communication by i computing applications), delay^i_comm
//     (imposed on communication by i communicating applications), and
//     delay^{i,j}_comm (imposed on computation by i applications
//     communicating with j-word messages).
//   - Application-dependent workload parameters: each contender's
//     fraction of time spent communicating and its message size, from
//     which Poisson-binomial probabilities pcomp_i / pcomm_i are derived
//     (package prob).
//
// For the tightly coupled Sun/CM2 platform contention reduces to CPU
// sharing, and the slowdown is simply p+1; back-end execution follows
// T_cm2 = max(dcomp_cm2 + didle_cm2, dserial_cm2 × slowdown).
package core

import (
	"errors"
	"fmt"
	"math"

	"contention/internal/prob"
)

// DataSet is a group of same-sized messages: N messages of Words words
// each, the paper's application-dependent communication description.
type DataSet struct {
	N     int
	Words int
}

// Validate reports whether the data set is well-formed.
func (d DataSet) Validate() error {
	if d.N < 0 {
		return fmt.Errorf("core: data set count %d negative", d.N)
	}
	if d.Words < 0 {
		return fmt.Errorf("core: data set size %d negative", d.Words)
	}
	return nil
}

// CommPiece is one linear piece of the communication-cost model:
// cost(words) = Alpha + words/Beta.
type CommPiece struct {
	Alpha float64 // startup time, seconds
	Beta  float64 // effective bandwidth, words/second
}

// Time evaluates the piece for one message.
func (p CommPiece) Time(words int) float64 {
	return p.Alpha + float64(words)/p.Beta
}

// CommModel is the paper's piecewise-linear dedicated communication
// model: messages of Threshold or fewer words use Small, larger
// messages use Large. A single-piece model sets both pieces equal.
type CommModel struct {
	Threshold int
	Small     CommPiece
	Large     CommPiece
}

// Uniform returns a single-piece model with the given parameters.
func Uniform(alpha, beta float64) CommModel {
	p := CommPiece{Alpha: alpha, Beta: beta}
	return CommModel{Threshold: math.MaxInt, Small: p, Large: p}
}

// ValidateReport checks the model parameters, returning every
// violation found as a structured report.
func (m CommModel) ValidateReport() *ValidationReport {
	r := &ValidationReport{}
	piece := func(path string, p CommPiece) {
		if !(p.Beta > 0) || math.IsInf(p.Beta, 0) { // rejects NaN and ±Inf too
			r.Add(path+".Beta", "bandwidth %v must be positive and finite", p.Beta)
		}
		if p.Alpha < 0 || math.IsNaN(p.Alpha) || math.IsInf(p.Alpha, 0) {
			r.Add(path+".Alpha", "startup %v must be non-negative and finite", p.Alpha)
		}
	}
	piece("Small", m.Small)
	piece("Large", m.Large)
	if m.Threshold <= 0 {
		r.Add("Threshold", "threshold %d must be positive", m.Threshold)
	}
	return r
}

// Validate checks the model parameters.
func (m CommModel) Validate() error { return m.ValidateReport().Err() }

// MessageTime returns the dedicated cost of one message.
func (m CommModel) MessageTime(words int) float64 {
	if words <= m.Threshold {
		return m.Small.Time(words)
	}
	return m.Large.Time(words)
}

// Dedicated returns dcomm for a set of data sets:
// Σ over data sets of N_i × (α + size_i/β) with the piece chosen by size.
func (m CommModel) Dedicated(sets []DataSet) (float64, error) {
	total := 0.0
	for _, s := range sets {
		if err := s.Validate(); err != nil {
			return 0, err
		}
		total += float64(s.N) * m.MessageTime(s.Words)
	}
	return total, nil
}

// Contender describes one extra application on the front-end: the
// fraction of time it spends communicating with the back-end machine
// (the rest is computation) and the message size it uses. These are the
// paper's application-dependent parameters, supplied by the user or
// derived from the application's dedicated cost estimates.
type Contender struct {
	CommFraction float64
	MsgWords     int
	// IOFraction is the fraction of time the contender spends blocked
	// on local I/O — the load-characteristics extension (§1 argues
	// CPU- vs I/O-bound must be distinguished; §4 lists I/O as a model
	// extension). Time spent in I/O loads neither the CPU nor the
	// link, so it contributes to neither pcomp nor pcomm.
	IOFraction float64
}

// CompFraction is the fraction of time the contender computes.
func (c Contender) CompFraction() float64 { return 1 - c.CommFraction - c.IOFraction }

// Validate checks the contender parameters.
func (c Contender) Validate() error {
	if c.CommFraction < 0 || c.CommFraction > 1 || math.IsNaN(c.CommFraction) {
		return fmt.Errorf("core: comm fraction %v out of [0,1]", c.CommFraction)
	}
	if c.IOFraction < 0 || c.IOFraction > 1 || math.IsNaN(c.IOFraction) {
		return fmt.Errorf("core: I/O fraction %v out of [0,1]", c.IOFraction)
	}
	if c.CommFraction+c.IOFraction > 1 {
		return fmt.Errorf("core: comm %v + I/O %v fractions exceed 1", c.CommFraction, c.IOFraction)
	}
	if c.MsgWords < 0 {
		return fmt.Errorf("core: message size %d negative", c.MsgWords)
	}
	return nil
}

// smallMessageLimit is the paper's footnote 2: the j=1 delay column is
// only used for message sizes below 95 words.
const smallMessageLimit = 95

// DelayTables holds the system-dependent delays measured by the
// calibration suite. Index convention: element [i-1] is the delay
// imposed by i contenders, so a table of length n covers 1..n
// contenders. Lookups beyond the table clamp to the last entry.
type DelayTables struct {
	// CompOnComm[i-1] = delay^i_comp: average extra delay (as a fraction
	// of dedicated cost) imposed on communication by i applications
	// computing on the front-end.
	CompOnComm []float64
	// CommOnComm[i-1] = delay^i_comm: average extra delay imposed on
	// communication by i applications communicating with the back end
	// (averaged over both transfer directions, per the paper).
	CommOnComm []float64
	// CommOnComp maps a calibrated message size j to the table whose
	// [i-1] entry is delay^{i,j}_comm: the delay imposed on computation
	// by i applications communicating with j-word messages. The paper
	// calibrates j ∈ {1, 500, 1000}.
	CommOnComp map[int][]float64
}

// ValidateReport checks table invariants — every entry finite and
// non-negative, every j key positive — returning all violations found.
func (t DelayTables) ValidateReport() *ValidationReport {
	r := &ValidationReport{}
	check := func(name string, xs []float64) {
		for i, v := range xs {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				r.Add(fmt.Sprintf("%s[%d]", name, i), "delay %v must be finite and non-negative", v)
			}
		}
	}
	check("CompOnComm", t.CompOnComm)
	check("CommOnComm", t.CommOnComm)
	for j, xs := range t.CommOnComp {
		if j <= 0 {
			r.Add(fmt.Sprintf("CommOnComp[%d]", j), "message-size key must be positive")
		}
		check(fmt.Sprintf("CommOnComp[%d]", j), xs)
	}
	return r
}

// Validate checks table invariants.
func (t DelayTables) Validate() error { return t.ValidateReport().Err() }

func lookup(table []float64, i int) float64 {
	if len(table) == 0 || i <= 0 {
		return 0
	}
	if i > len(table) {
		i = len(table)
	}
	return table[i-1]
}

// JGrid returns the calibrated message sizes available in CommOnComp,
// in ascending order.
func (t DelayTables) JGrid() []int {
	grid := make([]int, 0, len(t.CommOnComp))
	for j := range t.CommOnComp {
		grid = append(grid, j)
	}
	for i := 1; i < len(grid); i++ {
		for k := i; k > 0 && grid[k] < grid[k-1]; k-- {
			grid[k], grid[k-1] = grid[k-1], grid[k]
		}
	}
	return grid
}

// errNoJColumns is the shared "no delay^{i,j} columns" failure, reused
// by the cached kernel so both paths return the identical error.
var errNoJColumns = errors.New("core: no delay^{i,j} columns calibrated")

// NearestJ selects the calibrated j column closest to the requested
// message size, applying the paper's footnote: the j=1 column is only
// eligible when the size is below 95 words.
func (t DelayTables) NearestJ(words int) (int, error) {
	return NearestJ(t.JGrid(), words)
}

// CommOnCompDelay returns delay^{i,j}_comm for i contenders using the
// calibrated column nearest to words.
func (t DelayTables) CommOnCompDelay(i, words int) (float64, error) {
	j, err := t.NearestJ(words)
	if err != nil {
		return 0, err
	}
	return lookup(t.CommOnComp[j], i), nil
}

// SimpleSlowdown is the CM2-platform slowdown: p extra CPU-bound
// processes on a fair-shared CPU slow everything by p+1.
func SimpleSlowdown(p int) float64 {
	if p < 0 {
		panic(fmt.Sprintf("core: negative contender count %d", p))
	}
	return float64(p + 1)
}

// probabilities builds the pcomp/pcomm Poisson-binomial distributions
// from the contender set.
func probabilities(cs []Contender) (comp, comm *prob.Calc, err error) {
	comp, err = prob.New()
	if err != nil {
		return nil, nil, err
	}
	comm, err = prob.New()
	if err != nil {
		return nil, nil, err
	}
	for _, c := range cs {
		if err := c.Validate(); err != nil {
			return nil, nil, err
		}
		if err := comp.Add(c.CompFraction()); err != nil {
			return nil, nil, err
		}
		if err := comm.Add(c.CommFraction); err != nil {
			return nil, nil, err
		}
	}
	return comp, comm, nil
}

// CommSlowdown is the Sun/Paragon communication slowdown:
//
//	1 + Σ_i pcomp_i × delay^i_comp + Σ_i pcomm_i × delay^i_comm.
func CommSlowdown(cs []Contender, t DelayTables) (float64, error) {
	if err := t.Validate(); err != nil {
		return 0, err
	}
	comp, comm, err := probabilities(cs)
	if err != nil {
		return 0, err
	}
	s := 1.0
	for i := 1; i <= len(cs); i++ {
		s += comp.P(i) * lookup(t.CompOnComm, i)
		s += comm.P(i) * lookup(t.CommOnComm, i)
	}
	return s, nil
}

// CompSlowdown is the Sun/Paragon computation slowdown:
//
//	1 + Σ_i pcomp_i × i + Σ_i pcomm_i × delay^{i,j}_comm,
//
// where j is the maximum message size used by the contenders (the
// paper's guidance). Use CompSlowdownWithJ to force a specific j.
func CompSlowdown(cs []Contender, t DelayTables) (float64, error) {
	j := 0
	for _, c := range cs {
		if c.MsgWords > j {
			j = c.MsgWords
		}
	}
	return CompSlowdownWithJ(cs, t, j)
}

// CompSlowdownWithJ is CompSlowdown with an explicit message size used
// to select the delay^{i,j} column (the paper's Figures 7–8 sweep j to
// show its importance).
func CompSlowdownWithJ(cs []Contender, t DelayTables, j int) (float64, error) {
	if err := t.Validate(); err != nil {
		return 0, err
	}
	comp, comm, err := probabilities(cs)
	if err != nil {
		return 0, err
	}
	s := 1.0
	for i := 1; i <= len(cs); i++ {
		s += comp.P(i) * float64(i)
		if comm.P(i) > 0 {
			d, err := t.CommOnCompDelay(i, j)
			if err != nil {
				return 0, err
			}
			s += comm.P(i) * d
		}
	}
	return s, nil
}

// CM2ExecTime is the paper's back-end execution law:
//
//	T_cm2 = max(dcomp_cm2 + didle_cm2, dserial_cm2 × (p+1)),
//
// where dcomp is the dedicated parallel-instruction time, didle the
// dedicated back-end idle time, dserial the dedicated front-end
// serial/scalar time, and p the number of extra CPU-bound processes on
// the front-end.
func CM2ExecTime(dcomp, didle, dserial float64, p int) float64 {
	return math.Max(dcomp+didle, dserial*SimpleSlowdown(p))
}

// CM2CommTime scales a dedicated CM2 transfer cost by the CPU slowdown:
// element-by-element transfers are driven entirely by the front-end CPU.
func CM2CommTime(dcomm float64, p int) float64 {
	return dcomm * SimpleSlowdown(p)
}

// ShouldOffload is the paper's Equation (1): execute the task on the
// back-end machine only when the host time exceeds back-end time plus
// both transfer costs.
func ShouldOffload(tHost, tBack, cTo, cFrom float64) bool {
	return tHost > tBack+cTo+cFrom
}
