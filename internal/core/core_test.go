package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestCommPieceTime(t *testing.T) {
	p := CommPiece{Alpha: 0.01, Beta: 1000}
	if got := p.Time(500); !approx(got, 0.51, 1e-12) {
		t.Fatalf("Time(500) = %v, want 0.51", got)
	}
}

func TestUniformModel(t *testing.T) {
	m := Uniform(0.1, 100)
	if got := m.MessageTime(10); !approx(got, 0.2, 1e-12) {
		t.Fatalf("MessageTime(10) = %v, want 0.2", got)
	}
	if got := m.MessageTime(1 << 30); got <= 0 {
		t.Fatalf("huge message time = %v", got)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCommModelPiecewiseSelection(t *testing.T) {
	m := CommModel{
		Threshold: 1024,
		Small:     CommPiece{Alpha: 0.001, Beta: 1e6},
		Large:     CommPiece{Alpha: 0.005, Beta: 5e5},
	}
	if got, want := m.MessageTime(1024), 0.001+1024/1e6; !approx(got, want, 1e-12) {
		t.Fatalf("at threshold: %v, want %v (small piece)", got, want)
	}
	if got, want := m.MessageTime(1025), 0.005+1025/5e5; !approx(got, want, 1e-12) {
		t.Fatalf("past threshold: %v, want %v (large piece)", got, want)
	}
}

func TestDedicatedSumsDataSets(t *testing.T) {
	m := Uniform(0.5, 10) // msg cost = 0.5 + words/10
	got, err := m.Dedicated([]DataSet{{N: 2, Words: 10}, {N: 1, Words: 20}})
	if err != nil {
		t.Fatal(err)
	}
	want := 2*(0.5+1.0) + 1*(0.5+2.0)
	if !approx(got, want, 1e-12) {
		t.Fatalf("Dedicated = %v, want %v", got, want)
	}
}

func TestDedicatedValidatesSets(t *testing.T) {
	m := Uniform(0.5, 10)
	if _, err := m.Dedicated([]DataSet{{N: -1, Words: 10}}); err == nil {
		t.Fatal("negative N did not error")
	}
	if _, err := m.Dedicated([]DataSet{{N: 1, Words: -1}}); err == nil {
		t.Fatal("negative Words did not error")
	}
}

func TestCommModelValidate(t *testing.T) {
	bad := []CommModel{
		{Threshold: 1024, Small: CommPiece{0, 0}, Large: CommPiece{0, 1}},
		{Threshold: 1024, Small: CommPiece{-1, 1}, Large: CommPiece{0, 1}},
		{Threshold: 0, Small: CommPiece{0, 1}, Large: CommPiece{0, 1}},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d did not error", i)
		}
	}
}

func TestContenderValidate(t *testing.T) {
	if err := (Contender{CommFraction: 0.5, MsgWords: 10}).Validate(); err != nil {
		t.Fatal(err)
	}
	for _, c := range []Contender{
		{CommFraction: -0.1},
		{CommFraction: 1.1},
		{CommFraction: math.NaN()},
		{CommFraction: 0.5, MsgWords: -1},
	} {
		if err := c.Validate(); err == nil {
			t.Errorf("contender %+v did not error", c)
		}
	}
}

func TestSimpleSlowdown(t *testing.T) {
	for p := 0; p <= 5; p++ {
		if got := SimpleSlowdown(p); got != float64(p+1) {
			t.Fatalf("SimpleSlowdown(%d) = %v", p, got)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative p did not panic")
		}
	}()
	SimpleSlowdown(-1)
}

func TestNearestJRule(t *testing.T) {
	tables := DelayTables{CommOnComp: map[int][]float64{
		1:    {0.1},
		500:  {0.5},
		1000: {1.0},
	}}
	cases := []struct {
		words int
		want  int
	}{
		{1, 1},       // tiny message: j=1 eligible
		{50, 1},      // below 95: j=1 eligible and nearest
		{94, 1},      // just below the limit
		{95, 500},    // at the limit j=1 excluded
		{200, 500},   // nearest of {500,1000}
		{700, 500},   // nearest is 500
		{800, 1000},  // nearest is 1000
		{5000, 1000}, // clamps to largest
	}
	for _, c := range cases {
		got, err := tables.NearestJ(c.words)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("NearestJ(%d) = %d, want %d", c.words, got, c.want)
		}
	}
}

func TestNearestJEmptyTables(t *testing.T) {
	if _, err := (DelayTables{}).NearestJ(100); err == nil {
		t.Fatal("NearestJ with no columns did not error")
	}
}

func TestJGridSorted(t *testing.T) {
	tables := DelayTables{CommOnComp: map[int][]float64{1000: nil, 1: nil, 500: nil}}
	grid := tables.JGrid()
	want := []int{1, 500, 1000}
	for i := range want {
		if grid[i] != want[i] {
			t.Fatalf("JGrid = %v, want %v", grid, want)
		}
	}
}

func TestCommSlowdownPaperStructure(t *testing.T) {
	// p=2 contenders: comm 20%/30%. With delay tables set to make the
	// formula transparent: delay^i_comp = i (pure CPU sharing would add
	// i), delay^i_comm = 2i.
	cs := []Contender{
		{CommFraction: 0.2, MsgWords: 100},
		{CommFraction: 0.3, MsgWords: 100},
	}
	tables := DelayTables{
		CompOnComm: []float64{1, 2},
		CommOnComm: []float64{2, 4},
	}
	got, err := CommSlowdown(cs, tables)
	if err != nil {
		t.Fatal(err)
	}
	pcomp1 := 0.8*0.3 + 0.7*0.2
	pcomp2 := 0.8 * 0.7
	pcomm1 := 0.2*0.7 + 0.3*0.8
	pcomm2 := 0.2 * 0.3
	want := 1 + pcomp1*1 + pcomp2*2 + pcomm1*2 + pcomm2*4
	if !approx(got, want, 1e-12) {
		t.Fatalf("CommSlowdown = %v, want %v", got, want)
	}
}

func TestCommSlowdownNoContenders(t *testing.T) {
	got, err := CommSlowdown(nil, DelayTables{})
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("CommSlowdown(nil) = %v, want 1", got)
	}
}

func TestCompSlowdownUsesCPUShareTerm(t *testing.T) {
	// Pure CPU-bound contenders (comm fraction 0): slowdown must equal
	// p+1 regardless of the delay tables — first summation only.
	cs := []Contender{{CommFraction: 0}, {CommFraction: 0}, {CommFraction: 0}}
	tables := DelayTables{CommOnComp: map[int][]float64{1000: {9, 9, 9}}}
	got, err := CompSlowdown(cs, tables)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(got, 4, 1e-12) {
		t.Fatalf("CompSlowdown CPU-bound = %v, want 4", got)
	}
}

func TestCompSlowdownWithJSelectsColumn(t *testing.T) {
	cs := []Contender{{CommFraction: 1, MsgWords: 1000}}
	tables := DelayTables{CommOnComp: map[int][]float64{
		1:    {0.1},
		500:  {0.5},
		1000: {2.0},
	}}
	// Contender always communicates: pcomm_1 = 1, pcomp_1 = 0.
	got, err := CompSlowdownWithJ(cs, tables, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(got, 3, 1e-12) {
		t.Fatalf("j=1000: %v, want 3", got)
	}
	got, err = CompSlowdownWithJ(cs, tables, 500)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(got, 1.5, 1e-12) {
		t.Fatalf("j=500: %v, want 1.5", got)
	}
}

func TestCompSlowdownDefaultsToMaxMessageSize(t *testing.T) {
	cs := []Contender{
		{CommFraction: 1, MsgWords: 200},
		{CommFraction: 1, MsgWords: 900},
	}
	tables := DelayTables{CommOnComp: map[int][]float64{
		500:  {1, 2},
		1000: {10, 20},
	}}
	// max msg = 900 → nearest j = 1000 → delays 10, 20.
	got, err := CompSlowdown(cs, tables)
	if err != nil {
		t.Fatal(err)
	}
	want := 1.0 + 0 /*pcomp terms: both always communicate*/ + 0*10 + 1*20
	if !approx(got, want, 1e-12) {
		t.Fatalf("CompSlowdown = %v, want %v", got, want)
	}
}

func TestDelayLookupClampsBeyondTable(t *testing.T) {
	cs := []Contender{
		{CommFraction: 0}, {CommFraction: 0}, {CommFraction: 0}, {CommFraction: 0},
	}
	// Table only covers i=1..2; lookups for i=3,4 clamp to entry 2.
	tables := DelayTables{CompOnComm: []float64{1, 5}}
	got, err := CommSlowdown(cs, tables)
	if err != nil {
		t.Fatal(err)
	}
	// All compute: pcomp_4 = 1 → 1 + 5 = 6.
	if !approx(got, 6, 1e-12) {
		t.Fatalf("clamped CommSlowdown = %v, want 6", got)
	}
}

func TestCM2ExecTime(t *testing.T) {
	// Parallel dominated: max picks dcomp+didle.
	if got := CM2ExecTime(10, 2, 1, 3); !approx(got, 12, 1e-12) {
		t.Fatalf("parallel-dominated = %v, want 12", got)
	}
	// Serial dominated under contention: dserial × (p+1).
	if got := CM2ExecTime(2, 1, 5, 3); !approx(got, 20, 1e-12) {
		t.Fatalf("serial-dominated = %v, want 20", got)
	}
	// Dedicated: idle never exceeds serial, so serial wins at p=0 only
	// if dserial > dcomp+didle.
	if got := CM2ExecTime(2, 1, 5, 0); !approx(got, 5, 1e-12) {
		t.Fatalf("dedicated = %v, want 5", got)
	}
}

func TestCM2CommTime(t *testing.T) {
	if got := CM2CommTime(2, 3); !approx(got, 8, 1e-12) {
		t.Fatalf("CM2CommTime = %v, want 8", got)
	}
}

func TestShouldOffload(t *testing.T) {
	if !ShouldOffload(10, 3, 2, 2) {
		t.Fatal("10 > 7: should offload")
	}
	if ShouldOffload(7, 3, 2, 2) {
		t.Fatal("7 = 7: should not offload")
	}
	if ShouldOffload(5, 3, 2, 2) {
		t.Fatal("5 < 7: should not offload")
	}
}

func TestDelayTablesValidate(t *testing.T) {
	bad := []DelayTables{
		{CompOnComm: []float64{-1}},
		{CommOnComm: []float64{math.NaN()}},
		{CommOnComp: map[int][]float64{0: {1}}},
		{CommOnComp: map[int][]float64{500: {-2}}},
	}
	for i, tb := range bad {
		if err := tb.Validate(); err == nil {
			t.Errorf("case %d did not error", i)
		}
	}
}

// Property: slowdown factors are always ≥ 1 and monotone in the delay
// tables (scaling all delays up cannot reduce the slowdown).
func TestSlowdownBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := 1 + r.Intn(5)
		cs := make([]Contender, p)
		for i := range cs {
			cs[i] = Contender{CommFraction: r.Float64(), MsgWords: 1 + r.Intn(2000)}
		}
		tables := DelayTables{
			CompOnComm: randTable(r, p),
			CommOnComm: randTable(r, p),
			CommOnComp: map[int][]float64{1: randTable(r, p), 500: randTable(r, p), 1000: randTable(r, p)},
		}
		s1, err := CommSlowdown(cs, tables)
		if err != nil || s1 < 1 {
			return false
		}
		s2, err := CompSlowdown(cs, tables)
		if err != nil || s2 < 1 {
			return false
		}
		// Double all delays: slowdowns cannot decrease.
		tables2 := DelayTables{
			CompOnComm: scale(tables.CompOnComm, 2),
			CommOnComm: scale(tables.CommOnComm, 2),
			CommOnComp: map[int][]float64{
				1: scale(tables.CommOnComp[1], 2), 500: scale(tables.CommOnComp[500], 2), 1000: scale(tables.CommOnComp[1000], 2),
			},
		}
		s1b, err := CommSlowdown(cs, tables2)
		if err != nil || s1b < s1-1e-12 {
			return false
		}
		s2b, err := CompSlowdown(cs, tables2)
		return err == nil && s2b >= s2-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func randTable(r *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = r.Float64() * 3
	}
	return out
}

func scale(xs []float64, f float64) []float64 {
	out := make([]float64, len(xs))
	for i, v := range xs {
		out[i] = v * f
	}
	return out
}

// Property: CM2ExecTime is nondecreasing in p and bounded below by the
// dedicated time.
func TestCM2ExecMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dcomp := r.Float64() * 10
		didle := r.Float64() * 5
		dserial := r.Float64() * 10
		prev := 0.0
		for p := 0; p < 6; p++ {
			cur := CM2ExecTime(dcomp, didle, dserial, p)
			if cur < prev-1e-12 {
				return false
			}
			prev = cur
		}
		return CM2ExecTime(dcomp, didle, dserial, 0) >= math.Max(dcomp+didle, dserial)-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
