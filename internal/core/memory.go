package core

import (
	"fmt"
	"math"
)

// Memory extension — the paper's §4 lists memory constraints as the
// first model extension ("we are currently extending our model to
// include memory constraints"); the base model assumes every working
// set fits in memory. This file adds the missing term: when the
// combined working sets of the resident applications exceed physical
// memory, paging slows every resident process by a factor the model
// multiplies into the computation slowdown.

// MemoryModel describes the front-end memory for the extension. It
// mirrors the simulator's paging law (cpu.MemoryConfig): the slowdown
// is linear in the oversubscription fraction.
type MemoryModel struct {
	// Pages is the physical memory size in pages.
	Pages int
	// Thrash scales the slowdown per fraction of oversubscription.
	Thrash float64
}

// Validate checks the model parameters.
func (m MemoryModel) Validate() error {
	if m.Pages <= 0 {
		return fmt.Errorf("core: memory pages %d must be positive", m.Pages)
	}
	if m.Thrash < 0 || math.IsNaN(m.Thrash) {
		return fmt.Errorf("core: invalid thrash factor %v", m.Thrash)
	}
	return nil
}

// PagingFactor returns the slowdown for a total residency.
func (m MemoryModel) PagingFactor(residentPages int) float64 {
	if residentPages <= m.Pages {
		return 1
	}
	over := float64(residentPages-m.Pages) / float64(m.Pages)
	return 1 + m.Thrash*over
}

// MemorySlowdown returns the paging factor for an application with
// appPages of working set sharing the host with the given contender
// working sets.
func MemorySlowdown(m MemoryModel, appPages int, contenderPages []int) (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	if appPages < 0 {
		return 0, fmt.Errorf("core: negative working set %d", appPages)
	}
	total := appPages
	for _, p := range contenderPages {
		if p < 0 {
			return 0, fmt.Errorf("core: negative contender working set %d", p)
		}
		total += p
	}
	return m.PagingFactor(total), nil
}

// CompSlowdownWithMemory combines the contention mixture with the
// paging factor: computation on an oversubscribed host pays both.
func CompSlowdownWithMemory(cs []Contender, t DelayTables, m MemoryModel, appPages int, contenderPages []int) (float64, error) {
	base, err := CompSlowdown(cs, t)
	if err != nil {
		return 0, err
	}
	paging, err := MemorySlowdown(m, appPages, contenderPages)
	if err != nil {
		return 0, err
	}
	return base * paging, nil
}
