package core

import (
	"math"
	"testing"

	"contention/internal/cpu"
	"contention/internal/des"
)

func TestMemoryModelPagingFactor(t *testing.T) {
	m := MemoryModel{Pages: 1000, Thrash: 3}
	if got := m.PagingFactor(800); got != 1 {
		t.Fatalf("under memory: %v, want 1", got)
	}
	if got := m.PagingFactor(1000); got != 1 {
		t.Fatalf("at memory: %v, want 1", got)
	}
	if got := m.PagingFactor(1500); !approx(got, 2.5, 1e-12) {
		t.Fatalf("50%% over: %v, want 2.5", got)
	}
}

func TestMemoryModelValidate(t *testing.T) {
	for _, m := range []MemoryModel{{Pages: 0, Thrash: 1}, {Pages: 10, Thrash: -1}, {Pages: 10, Thrash: math.NaN()}} {
		if err := m.Validate(); err == nil {
			t.Errorf("model %+v accepted", m)
		}
	}
}

func TestMemorySlowdownSumsWorkingSets(t *testing.T) {
	m := MemoryModel{Pages: 1000, Thrash: 2}
	got, err := MemorySlowdown(m, 600, []int{300, 300}) // total 1200: 20% over
	if err != nil {
		t.Fatal(err)
	}
	if !approx(got, 1.4, 1e-12) {
		t.Fatalf("MemorySlowdown = %v, want 1.4", got)
	}
	if _, err := MemorySlowdown(m, -1, nil); err == nil {
		t.Fatal("negative app pages accepted")
	}
	if _, err := MemorySlowdown(m, 1, []int{-1}); err == nil {
		t.Fatal("negative contender pages accepted")
	}
	if _, err := MemorySlowdown(MemoryModel{}, 1, nil); err == nil {
		t.Fatal("invalid model accepted")
	}
}

func TestCompSlowdownWithMemoryMultiplies(t *testing.T) {
	cs := []Contender{{CommFraction: 0}, {CommFraction: 0}} // p+1 = 3
	m := MemoryModel{Pages: 1000, Thrash: 2}
	got, err := CompSlowdownWithMemory(cs, DelayTables{}, m, 900, []int{300, 300}) // 50% over → 2
	if err != nil {
		t.Fatal(err)
	}
	if !approx(got, 6, 1e-12) {
		t.Fatalf("combined slowdown = %v, want 6 (3 × 2)", got)
	}
}

// The model extension must track the simulator's paging law end to end:
// an application with CPU-bound contenders on an oversubscribed host.
func TestMemoryExtensionMatchesSimulation(t *testing.T) {
	const (
		work     = 2.0
		memPages = 1000
		thrash   = 2.5
	)
	cases := []struct {
		hogs     int
		appPages int
		hogPages int
	}{
		{0, 800, 0},   // fits: no paging, no contention
		{0, 1500, 0},  // paging only
		{2, 500, 400}, // contention + paging (500+800=1300)
		{3, 300, 200}, // contention, fits (300+600=900)
	}
	for _, c := range cases {
		k := des.New()
		h := cpu.NewHost(k, "sun", 1)
		if err := h.ConfigureMemory(cpu.MemoryConfig{Pages: memPages, Thrash: thrash}); err != nil {
			t.Fatal(err)
		}
		if _, err := h.Reserve(c.appPages); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < c.hogs; i++ {
			if _, err := h.Reserve(c.hogPages); err != nil {
				t.Fatal(err)
			}
			k.Spawn("hog", func(p *des.Proc) { h.Compute(p, 1e18) })
		}
		var elapsed float64
		k.Spawn("app", func(p *des.Proc) {
			start := p.Now()
			h.Compute(p, work)
			elapsed = p.Now() - start
			k.Stop()
		})
		k.Run()

		cs := make([]Contender, c.hogs)
		pages := make([]int, c.hogs)
		for i := range pages {
			pages[i] = c.hogPages
		}
		m := MemoryModel{Pages: memPages, Thrash: thrash}
		slow, err := CompSlowdownWithMemory(cs, DelayTables{}, m, c.appPages, pages)
		if err != nil {
			t.Fatal(err)
		}
		predicted := work * slow
		if math.Abs(predicted-elapsed)/elapsed > 1e-6 {
			t.Fatalf("case %+v: predicted %v, simulated %v", c, predicted, elapsed)
		}
	}
}
