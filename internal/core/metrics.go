package core

import "contention/internal/obs"

// Hot-path telemetry. Every handle is a package-level atomic; recording
// is a single flag load when telemetry is disabled, so the warm
// PredictComm/PredictComp 0 allocs/op contract (alloc_test.go) holds
// with instrumentation compiled in.
var (
	mCacheCommHits = obs.NewCounter(obs.MetricCacheCommHits,
		"comm-slowdown mixtures served from the memo cache")
	mCacheCommMisses = obs.NewCounter(obs.MetricCacheCommMisses,
		"comm-slowdown mixtures computed by a fresh Poisson-binomial DP")
	mCacheCompHits = obs.NewCounter(obs.MetricCacheCompHits,
		"comp-slowdown mixtures served from the memo cache")
	mCacheCompMisses = obs.NewCounter(obs.MetricCacheCompMisses,
		"comp-slowdown mixtures computed by a fresh Poisson-binomial DP")
	mPredictComm = obs.NewCounter(obs.MetricPredictComm,
		"communication cost predictions evaluated")
	mPredictComp = obs.NewCounter(obs.MetricPredictComp,
		"computation cost predictions evaluated")
	mPredictDegraded = obs.NewCounter(obs.MetricPredictDegraded,
		"robust predictions that fell back to the p+1 worst case")
	mPredictBatch = obs.NewHistogram(obs.MetricPredictBatch,
		"grid sizes of batched predictions", obs.DefaultSizeBuckets())
	mSurfaceHits = obs.NewCounterVec(obs.MetricSurfaceHits,
		"slowdowns served from the precomputed surface", "kind")
	mSurfaceMisses = obs.NewCounterVec(obs.MetricSurfaceMisses,
		"Try lookups that fell past the surface (off-class, out of range, or invalidated)", "kind")
	mSurfaceHitComm  = mSurfaceHits.With("comm")
	mSurfaceHitComp  = mSurfaceHits.With("comp")
	mSurfaceMissComm = mSurfaceMisses.With("comm")
	mSurfaceMissComp = mSurfaceMisses.With("comp")
)
