package core

import (
	"testing"

	"contention/internal/obs"
)

// withTelemetry enables global recording for one test and restores the
// disabled default afterwards.
func withTelemetry(t *testing.T) {
	t.Helper()
	obs.SetEnabled(true)
	t.Cleanup(func() { obs.SetEnabled(false) })
}

// TestCacheCountersMove checks that the slowdown memo caches report
// their hits and misses: a fresh predictor misses on the first mixture
// evaluation and hits on the warm repeat, for both the comm and comp
// paths.
func TestCacheCountersMove(t *testing.T) {
	withTelemetry(t)
	p, err := NewPredictor(fullCalibration())
	if err != nil {
		t.Fatal(err)
	}
	cs := robustContenders()
	sets := []DataSet{{N: 400, Words: 512}}

	h0, m0 := mCacheCommHits.Value(), mCacheCommMisses.Value()
	if _, err := p.PredictComm(HostToBack, sets, cs); err != nil {
		t.Fatal(err)
	}
	if _, err := p.PredictComm(HostToBack, sets, cs); err != nil {
		t.Fatal(err)
	}
	if d := mCacheCommMisses.Value() - m0; d < 1 {
		t.Fatalf("comm cache misses moved by %d, want ≥ 1", d)
	}
	if d := mCacheCommHits.Value() - h0; d < 1 {
		t.Fatalf("comm cache hits moved by %d, want ≥ 1", d)
	}

	h0, m0 = mCacheCompHits.Value(), mCacheCompMisses.Value()
	if _, err := p.PredictComp(2, cs); err != nil {
		t.Fatal(err)
	}
	if _, err := p.PredictComp(2, cs); err != nil {
		t.Fatal(err)
	}
	if d := mCacheCompMisses.Value() - m0; d < 1 {
		t.Fatalf("comp cache misses moved by %d, want ≥ 1", d)
	}
	if d := mCacheCompHits.Value() - h0; d < 1 {
		t.Fatalf("comp cache hits moved by %d, want ≥ 1", d)
	}
}

// TestPredictionCountersMove checks the prediction tallies: single
// predictions count one each, batches count their grid size and record
// it in the batch-size histogram, and a stale predictor's robust
// fallback is tallied as degraded.
func TestPredictionCountersMove(t *testing.T) {
	withTelemetry(t)
	p, err := NewPredictor(fullCalibration())
	if err != nil {
		t.Fatal(err)
	}
	cs := robustContenders()

	c0 := mPredictComm.Value()
	if _, err := p.PredictComm(HostToBack, []DataSet{{N: 400, Words: 512}}, cs); err != nil {
		t.Fatal(err)
	}
	if d := mPredictComm.Value() - c0; d != 1 {
		t.Fatalf("comm prediction counter moved by %d, want 1", d)
	}

	b0, n0 := mPredictBatch.Count(), mPredictComp.Value()
	if _, err := p.PredictCompBatch([]float64{1, 2, 3}, cs); err != nil {
		t.Fatal(err)
	}
	if d := mPredictComp.Value() - n0; d != 3 {
		t.Fatalf("comp prediction counter moved by %d for a 3-point batch, want 3", d)
	}
	if d := mPredictBatch.Count() - b0; d != 1 {
		t.Fatalf("batch histogram count moved by %d, want 1", d)
	}

	d0 := mPredictDegraded.Value()
	p.MarkStale("test drift")
	if _, err := p.PredictCompRobust(2, cs); err != nil {
		t.Fatal(err)
	}
	if d := mPredictDegraded.Value() - d0; d != 1 {
		t.Fatalf("degraded counter moved by %d, want 1", d)
	}
}
