package core

import (
	"fmt"

	"contention/internal/prob"
)

// Multi-machine generalization — the paper notes "generalization of
// these results to more than two machines is straightforward". With
// several back-end machines attached to one front-end over separate
// dedicated links, contenders still share a single CPU, but only
// same-link contenders share a given wire. The slowdown of a transfer
// on link L therefore takes three delay contributions:
//
//   - computing contenders (any link): delay^i_comp, as before;
//   - contenders communicating on L: delay^i_comm, as before;
//   - contenders communicating on *other* links: they do not occupy L's
//     wire, but their conversion work loads the CPU exactly the way it
//     loads a computing application — the quantity the delay^{i,j}_comm
//     table measures. A transfer is only partly CPU work, however, so
//     that CPU-equivalent delay is scaled by the CPU share of a
//     transfer, which the calibration also measured: delay^1_comp is
//     the delay one fully CPU-bound contender imposes on communication,
//     i.e. exactly that share.

// LinkID identifies one front-end↔back-end link.
type LinkID int

// MultiContender tags a contender with the link it communicates over.
type MultiContender struct {
	Contender
	Link LinkID
}

// CommSlowdownMulti is the communication slowdown for a transfer on
// link target under the tagged contender set.
func CommSlowdownMulti(target LinkID, cs []MultiContender, t DelayTables) (float64, error) {
	if err := t.Validate(); err != nil {
		return 0, err
	}
	comp := prob.MustNew()
	same := prob.MustNew()
	other := prob.MustNew()
	maxOtherJ := 0
	for _, c := range cs {
		if err := c.Validate(); err != nil {
			return 0, err
		}
		if err := comp.Add(c.CompFraction()); err != nil {
			return 0, err
		}
		sameFrac, otherFrac := 0.0, 0.0
		if c.Link == target {
			sameFrac = c.CommFraction
		} else {
			otherFrac = c.CommFraction
			if c.MsgWords > maxOtherJ {
				maxOtherJ = c.MsgWords
			}
		}
		if err := same.Add(sameFrac); err != nil {
			return 0, err
		}
		if err := other.Add(otherFrac); err != nil {
			return 0, err
		}
	}
	// CPU share of a transfer, as calibrated: the delay one CPU-bound
	// contender imposes on the ping-pong benchmark.
	cpuShare := lookup(t.CompOnComm, 1)
	s := 1.0
	for i := 1; i <= len(cs); i++ {
		s += comp.P(i) * lookup(t.CompOnComm, i)
		s += same.P(i) * lookup(t.CommOnComm, i)
		if p := other.P(i); p > 0 {
			d, err := t.CommOnCompDelay(i, maxOtherJ)
			if err != nil {
				return 0, err
			}
			s += p * d * cpuShare
		}
	}
	return s, nil
}

// CompSlowdownMulti is the computation slowdown on the shared front-end
// under the tagged contender set. Which link a contender communicates
// over does not matter for computation — the CPU effect of conversion
// is the same — so this reduces to the two-machine formula over the
// untagged contenders.
func CompSlowdownMulti(cs []MultiContender, t DelayTables) (float64, error) {
	flat := make([]Contender, len(cs))
	for i, c := range cs {
		flat[i] = c.Contender
	}
	return CompSlowdown(flat, t)
}

// PredictCommMulti scales a dedicated communication cost on the target
// link by the multi-machine slowdown. Dedicated costs are still per
// ⟨application, problem size, link⟩ via each link's own CommModel.
func PredictCommMulti(dcomm float64, target LinkID, cs []MultiContender, t DelayTables) (float64, error) {
	if dcomm < 0 {
		return 0, fmt.Errorf("core: negative dedicated cost %v", dcomm)
	}
	s, err := CommSlowdownMulti(target, cs, t)
	if err != nil {
		return 0, err
	}
	return dcomm * s, nil
}
