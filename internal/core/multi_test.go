package core

import (
	"testing"
)

func multiTables() DelayTables {
	return DelayTables{
		CompOnComm: []float64{0.4, 0.8},
		CommOnComm: []float64{0.3, 0.6},
		CommOnComp: map[int][]float64{
			1:    {0.2, 0.4},
			500:  {0.6, 1.2},
			1000: {0.7, 1.4},
		},
	}
}

func TestCommSlowdownMultiReducesToTwoMachineOnSingleLink(t *testing.T) {
	cs := []Contender{
		{CommFraction: 0.25, MsgWords: 200},
		{CommFraction: 0.76, MsgWords: 200},
	}
	tagged := []MultiContender{
		{Contender: cs[0], Link: 0},
		{Contender: cs[1], Link: 0},
	}
	want, err := CommSlowdown(cs, multiTables())
	if err != nil {
		t.Fatal(err)
	}
	got, err := CommSlowdownMulti(0, tagged, multiTables())
	if err != nil {
		t.Fatal(err)
	}
	if !approx(got, want, 1e-12) {
		t.Fatalf("single-link multi %v != two-machine %v", got, want)
	}
}

func TestCommSlowdownMultiOtherLinkUsesScaledCPUTerm(t *testing.T) {
	// One contender, always communicating on the other link with
	// 500-word messages: contribution = delay^{1,500} × delay^1_comp.
	tagged := []MultiContender{
		{Contender: Contender{CommFraction: 1, MsgWords: 500}, Link: 1},
	}
	got, err := CommSlowdownMulti(0, tagged, multiTables())
	if err != nil {
		t.Fatal(err)
	}
	want := 1 + 0.6*0.4
	if !approx(got, want, 1e-12) {
		t.Fatalf("other-link slowdown %v, want %v", got, want)
	}
}

func TestCommSlowdownMultiSameVsOtherOrdering(t *testing.T) {
	// With these tables the same-link wire term (0.3) exceeds the scaled
	// other-link CPU term (0.6×0.4 = 0.24): moving a contender off the
	// target link must reduce the slowdown.
	c := Contender{CommFraction: 1, MsgWords: 500}
	same, err := CommSlowdownMulti(0, []MultiContender{{Contender: c, Link: 0}}, multiTables())
	if err != nil {
		t.Fatal(err)
	}
	other, err := CommSlowdownMulti(0, []MultiContender{{Contender: c, Link: 1}}, multiTables())
	if err != nil {
		t.Fatal(err)
	}
	if other >= same {
		t.Fatalf("other-link %v not below same-link %v", other, same)
	}
}

func TestCommSlowdownMultiNoContenders(t *testing.T) {
	got, err := CommSlowdownMulti(0, nil, multiTables())
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("empty set: %v, want 1", got)
	}
}

func TestCommSlowdownMultiValidation(t *testing.T) {
	bad := []MultiContender{{Contender: Contender{CommFraction: 2}, Link: 0}}
	if _, err := CommSlowdownMulti(0, bad, multiTables()); err == nil {
		t.Fatal("invalid contender accepted")
	}
	if _, err := CommSlowdownMulti(0, nil, DelayTables{CompOnComm: []float64{-1}}); err == nil {
		t.Fatal("invalid tables accepted")
	}
}

func TestCompSlowdownMultiIgnoresLinkTags(t *testing.T) {
	cs := []Contender{
		{CommFraction: 0.4, MsgWords: 500},
		{CommFraction: 0.7, MsgWords: 200},
	}
	want, err := CompSlowdown(cs, multiTables())
	if err != nil {
		t.Fatal(err)
	}
	tagged := []MultiContender{
		{Contender: cs[0], Link: 0},
		{Contender: cs[1], Link: 3},
	}
	got, err := CompSlowdownMulti(tagged, multiTables())
	if err != nil {
		t.Fatal(err)
	}
	if !approx(got, want, 1e-12) {
		t.Fatalf("CompSlowdownMulti %v != CompSlowdown %v", got, want)
	}
}

func TestPredictCommMulti(t *testing.T) {
	tagged := []MultiContender{
		{Contender: Contender{CommFraction: 1, MsgWords: 500}, Link: 1},
	}
	got, err := PredictCommMulti(10, 0, tagged, multiTables())
	if err != nil {
		t.Fatal(err)
	}
	if !approx(got, 10*(1+0.24), 1e-12) {
		t.Fatalf("PredictCommMulti = %v", got)
	}
	if _, err := PredictCommMulti(-1, 0, nil, multiTables()); err == nil {
		t.Fatal("negative dcomm accepted")
	}
}
