package core

import (
	"encoding/json"
	"fmt"
	"io"
)

// Calibration persistence. The calibration is static per platform and
// the paper stresses it is computed "just once"; saving it lets a
// scheduler load the tables at startup instead of re-running the test
// suite. The format is plain JSON (DelayTables' integer j keys are
// stringified by encoding/json and restored on load).

// Save writes the calibration as JSON.
func (c Calibration) Save(w io.Writer) error {
	if err := c.Validate(); err != nil {
		return fmt.Errorf("core: refusing to save invalid calibration: %w", err)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c)
}

// LoadCalibration reads a calibration written by Save and validates it.
func LoadCalibration(r io.Reader) (Calibration, error) {
	var c Calibration
	dec := json.NewDecoder(r)
	if err := dec.Decode(&c); err != nil {
		return Calibration{}, fmt.Errorf("core: decoding calibration: %w", err)
	}
	if err := c.Validate(); err != nil {
		return Calibration{}, fmt.Errorf("core: loaded calibration invalid: %w", err)
	}
	return c, nil
}
