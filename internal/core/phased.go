package core

import (
	"errors"
	"fmt"
	"math"
)

// Phased prediction — the paper's §4 plans "to characterize the setting
// in which contending applications execute for only part of the
// execution of a given application. Since system load may vary during
// the execution of an application, the slowdown factors should be
// recalculated when the job mix changes." This file adds that setting:
// the workload is a piecewise-constant timeline of contender sets, the
// slowdown factor is re-evaluated per phase, and the application's
// dedicated work is consumed phase by phase.

// Phase is one interval of constant workload. Duration is wall-clock
// seconds; a non-positive Duration marks the final, open-ended phase.
type Phase struct {
	Duration   float64
	Contenders []Contender
}

// Validate checks a phase.
func (p Phase) Validate() error {
	if math.IsNaN(p.Duration) {
		return errors.New("core: NaN phase duration")
	}
	for _, c := range p.Contenders {
		if err := c.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// slowdownFn computes the slowdown factor of one phase.
type slowdownFn func(cs []Contender) (float64, error)

// predictPhased consumes dedicated work across the timeline. Phases
// after the last one repeat the last phase's workload (an empty
// timeline means dedicated mode throughout).
func predictPhased(dedicated float64, phases []Phase, slow slowdownFn) (float64, error) {
	if dedicated < 0 || math.IsNaN(dedicated) {
		return 0, fmt.Errorf("core: invalid dedicated cost %v", dedicated)
	}
	if dedicated == 0 {
		return 0, nil
	}
	elapsed := 0.0
	remaining := dedicated
	for i, ph := range phases {
		if err := ph.Validate(); err != nil {
			return 0, fmt.Errorf("core: phase %d: %w", i, err)
		}
		s, err := slow(ph.Contenders)
		if err != nil {
			return 0, fmt.Errorf("core: phase %d: %w", i, err)
		}
		last := i == len(phases)-1
		if ph.Duration <= 0 || last {
			// Open-ended (or final) phase: finish here.
			return elapsed + remaining*s, nil
		}
		progress := ph.Duration / s
		if progress >= remaining {
			return elapsed + remaining*s, nil
		}
		remaining -= progress
		elapsed += ph.Duration
	}
	// No phases: dedicated mode.
	return elapsed + remaining, nil
}

// PredictCompPhased predicts the elapsed time of a computation of
// dcomp dedicated seconds under a phase timeline, re-evaluating the
// computation slowdown at every job-mix change.
func PredictCompPhased(dcomp float64, phases []Phase, t DelayTables) (float64, error) {
	if err := t.Validate(); err != nil {
		return 0, err
	}
	return predictPhased(dcomp, phases, func(cs []Contender) (float64, error) {
		return CompSlowdown(cs, t)
	})
}

// PredictCommPhased predicts the elapsed time of a communication of
// dcomm dedicated seconds under a phase timeline, re-evaluating the
// communication slowdown at every job-mix change.
func PredictCommPhased(dcomm float64, phases []Phase, t DelayTables) (float64, error) {
	if err := t.Validate(); err != nil {
		return 0, err
	}
	return predictPhased(dcomm, phases, func(cs []Contender) (float64, error) {
		return CommSlowdown(cs, t)
	})
}
