package core

import (
	"testing"
)

func TestPredictCompPhasedDedicatedOnly(t *testing.T) {
	got, err := PredictCompPhased(5, nil, DelayTables{})
	if err != nil {
		t.Fatal(err)
	}
	if got != 5 {
		t.Fatalf("no phases: %v, want 5 (dedicated)", got)
	}
}

func TestPredictCompPhasedSinglePhase(t *testing.T) {
	// One open-ended phase with 2 CPU-bound contenders: ×3.
	phases := []Phase{{Contenders: []Contender{{}, {}}}}
	got, err := PredictCompPhased(5, phases, DelayTables{})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(got, 15, 1e-12) {
		t.Fatalf("single phase: %v, want 15", got)
	}
}

func TestPredictCompPhasedConsumesWorkAcrossPhases(t *testing.T) {
	// dcomp = 10. Phase 1: 6 wall seconds with 1 CPU-bound contender
	// (slowdown 2) → 3 units done. Phase 2 (open-ended): dedicated →
	// 7 more seconds. Total 13.
	phases := []Phase{
		{Duration: 6, Contenders: []Contender{{}}},
		{Contenders: nil},
	}
	got, err := PredictCompPhased(10, phases, DelayTables{})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(got, 13, 1e-12) {
		t.Fatalf("two phases: %v, want 13", got)
	}
}

func TestPredictCompPhasedFinishesMidPhase(t *testing.T) {
	// dcomp = 2; phase 1 is long enough (slowdown 2 → finishes at 4).
	phases := []Phase{
		{Duration: 100, Contenders: []Contender{{}}},
		{Contenders: []Contender{{}, {}, {}}},
	}
	got, err := PredictCompPhased(2, phases, DelayTables{})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(got, 4, 1e-12) {
		t.Fatalf("mid-phase finish: %v, want 4", got)
	}
}

func TestPredictCompPhasedLastPhaseExtends(t *testing.T) {
	// The final phase applies to all remaining work even when its
	// Duration understates it.
	phases := []Phase{
		{Duration: 2, Contenders: nil},             // 2 units done
		{Duration: 1, Contenders: []Contender{{}}}, // final: ×2 for the rest
	}
	got, err := PredictCompPhased(5, phases, DelayTables{})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(got, 2+3*2, 1e-12) {
		t.Fatalf("extending final phase: %v, want 8", got)
	}
}

func TestPredictPhasedValidation(t *testing.T) {
	if _, err := PredictCompPhased(-1, nil, DelayTables{}); err == nil {
		t.Fatal("negative dcomp accepted")
	}
	bad := []Phase{{Duration: 1, Contenders: []Contender{{CommFraction: 2}}}}
	if _, err := PredictCompPhased(1, bad, DelayTables{}); err == nil {
		t.Fatal("invalid contender accepted")
	}
	if got, err := PredictCompPhased(0, bad, DelayTables{}); err != nil || got != 0 {
		t.Fatalf("zero work should short-circuit: %v, %v", got, err)
	}
}

func TestPredictCommPhased(t *testing.T) {
	tables := DelayTables{CompOnComm: []float64{1}} // 1 computing app doubles comm
	phases := []Phase{
		{Duration: 4, Contenders: []Contender{{CommFraction: 0}}}, // slowdown 2 → 2 units
		{Contenders: nil}, // dedicated for the remaining 3 → 3s
	}
	got, err := PredictCommPhased(5, phases, tables)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(got, 7, 1e-12) {
		t.Fatalf("phased comm: %v, want 7", got)
	}
}
