package core

import (
	"errors"
	"fmt"
)

// Direction names a transfer direction across the platform link.
type Direction int

const (
	// HostToBack is front-end → back-end (the paper's Sun→CM2/Paragon).
	HostToBack Direction = iota
	// BackToHost is back-end → front-end.
	BackToHost
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	switch d {
	case HostToBack:
		return "host→back"
	case BackToHost:
		return "back→host"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// Calibration bundles everything the model needs for one platform: the
// per-direction dedicated communication models and the delay tables.
// It is produced once per platform by package calibrate and is constant
// at run time; only the contender set changes.
type Calibration struct {
	ToBack   CommModel
	ToHost   CommModel
	Tables   DelayTables
	Platform string
}

// Validate checks the calibration.
func (c Calibration) Validate() error {
	if err := c.ToBack.Validate(); err != nil {
		return fmt.Errorf("to-back model: %w", err)
	}
	if err := c.ToHost.Validate(); err != nil {
		return fmt.Errorf("to-host model: %w", err)
	}
	return c.Tables.Validate()
}

// Predictor produces slowdown-adjusted cost predictions from a
// calibration and a contender set. It is the façade a scheduler uses to
// rank candidate allocations.
type Predictor struct {
	cal Calibration
}

// NewPredictor validates the calibration and returns a predictor.
func NewPredictor(cal Calibration) (*Predictor, error) {
	if err := cal.Validate(); err != nil {
		return nil, err
	}
	return &Predictor{cal: cal}, nil
}

// Calibration returns the predictor's calibration.
func (p *Predictor) Calibration() Calibration { return p.cal }

// model returns the dedicated comm model for a direction.
func (p *Predictor) model(dir Direction) (CommModel, error) {
	switch dir {
	case HostToBack:
		return p.cal.ToBack, nil
	case BackToHost:
		return p.cal.ToHost, nil
	default:
		return CommModel{}, fmt.Errorf("core: unknown direction %d", int(dir))
	}
}

// DedicatedComm returns dcomm for the data sets in the given direction.
// It is computed once per ⟨application, problem size, platform⟩ triple
// and does not vary with load.
func (p *Predictor) DedicatedComm(dir Direction, sets []DataSet) (float64, error) {
	m, err := p.model(dir)
	if err != nil {
		return 0, err
	}
	return m.Dedicated(sets)
}

// PredictComm returns the slowdown-adjusted communication cost
// C = dcomm × slowdown for the given contender set.
func (p *Predictor) PredictComm(dir Direction, sets []DataSet, cs []Contender) (float64, error) {
	dcomm, err := p.DedicatedComm(dir, sets)
	if err != nil {
		return 0, err
	}
	s, err := CommSlowdown(cs, p.cal.Tables)
	if err != nil {
		return 0, err
	}
	return dcomm * s, nil
}

// PredictComp returns T = dcomp × slowdown for computation on the
// front-end under the given contender set.
func (p *Predictor) PredictComp(dcomp float64, cs []Contender) (float64, error) {
	if dcomp < 0 {
		return 0, errors.New("core: negative dedicated computation time")
	}
	s, err := CompSlowdown(cs, p.cal.Tables)
	if err != nil {
		return 0, err
	}
	return dcomp * s, nil
}

// PredictCompWithJ is PredictComp with an explicit j column.
func (p *Predictor) PredictCompWithJ(dcomp float64, cs []Contender, j int) (float64, error) {
	if dcomp < 0 {
		return 0, errors.New("core: negative dedicated computation time")
	}
	s, err := CompSlowdownWithJ(cs, p.cal.Tables, j)
	if err != nil {
		return 0, err
	}
	return dcomp * s, nil
}
