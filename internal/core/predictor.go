package core

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
)

// Direction names a transfer direction across the platform link.
type Direction int

const (
	// HostToBack is front-end → back-end (the paper's Sun→CM2/Paragon).
	HostToBack Direction = iota
	// BackToHost is back-end → front-end.
	BackToHost
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	switch d {
	case HostToBack:
		return "host→back"
	case BackToHost:
		return "back→host"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// Calibration bundles everything the model needs for one platform: the
// per-direction dedicated communication models and the delay tables.
// It is produced once per platform by package calibrate and is constant
// at run time; only the contender set changes.
type Calibration struct {
	ToBack   CommModel
	ToHost   CommModel
	Tables   DelayTables
	Platform string
}

// ValidateReport checks the whole calibration and returns every
// violation found, each prefixed with the component it lives in.
func (c Calibration) ValidateReport() *ValidationReport {
	r := &ValidationReport{}
	r.Merge("ToBack", c.ToBack.ValidateReport())
	r.Merge("ToHost", c.ToHost.ValidateReport())
	r.Merge("Tables", c.Tables.ValidateReport())
	return r
}

// Validate checks the calibration. On failure the returned error is a
// *ValidationReport; errors.As recovers the structured violations.
func (c Calibration) Validate() error { return c.ValidateReport().Err() }

// Predictor produces slowdown-adjusted cost predictions from a
// calibration and a contender set. It is the façade a scheduler uses to
// rank candidate allocations.
//
// A Predictor is goroutine-safe: its calibration is immutable, per-call
// state lives in an internal slowdown cache guarded by a mutex, and the
// staleness mark is synchronized. Many scheduler goroutines (or the
// parallel experiment runner) may share one Predictor; they also share
// its memoized slowdown kernels.
type Predictor struct {
	cal    Calibration
	report *ValidationReport // validation findings captured at construction

	// Derived at construction so the prediction hot path never rebuilds
	// a validation report or re-sorts the calibrated j columns.
	cache     *slowdownCache
	jGrid     []int
	checksum  uint64   // TablesChecksum of cal.Tables, for surface stamping
	tablesErr error    // fatal delay-table violations, if any
	modelErr  [2]error // per-direction comm-model validation result

	// stale holds the staleness reason (nil: fresh). An atomic pointer,
	// not a mutex, so the Try fast path can gate on freshness with one
	// load. surface is the optionally attached precomputed surface.
	stale   atomic.Pointer[string]
	surface atomic.Pointer[surfaceBox]
}

// initDerived populates the construction-time caches shared by the
// strict and lenient constructors.
func (p *Predictor) initDerived() {
	p.cache = newSlowdownCache()
	p.jGrid = p.cal.Tables.JGrid()
	p.checksum = TablesChecksum(p.cal.Tables)
	p.tablesErr = p.cal.Tables.Validate()
	p.modelErr[HostToBack] = p.cal.ToBack.Validate()
	p.modelErr[BackToHost] = p.cal.ToHost.Validate()
}

// NewPredictor validates the calibration and returns a predictor. On
// failure the error is a *ValidationReport carrying every violation.
func NewPredictor(cal Calibration) (*Predictor, error) {
	report := cal.ValidateReport()
	if err := report.Err(); err != nil {
		return nil, err
	}
	p := &Predictor{cal: cal, report: report}
	p.initDerived()
	return p, nil
}

// NewPredictorLenient accepts a possibly incomplete or invalid
// calibration without error, recording its validation report. The
// strict Predict* methods behave as usual (and fail where the
// calibration cannot support them); the Robust variants degrade to the
// conservative worst case instead of failing — with the delay tables'
// validation violations as the degradation reason when that is what is
// wrong. Use it when a scheduler must keep ranking allocations even
// though the calibration suite has not (fully or correctly) run.
func NewPredictorLenient(cal Calibration) *Predictor {
	p := &Predictor{cal: cal, report: cal.ValidateReport()}
	p.initDerived()
	return p
}

// ValidationReport returns the validation findings recorded when the
// predictor was built (never nil; possibly empty for a clean
// calibration).
func (p *Predictor) ValidationReport() *ValidationReport {
	if p.report == nil {
		return &ValidationReport{}
	}
	return p.report
}

// Calibration returns the predictor's calibration.
func (p *Predictor) Calibration() Calibration { return p.cal }

// model returns the dedicated comm model for a direction.
func (p *Predictor) model(dir Direction) (CommModel, error) {
	switch dir {
	case HostToBack:
		return p.cal.ToBack, nil
	case BackToHost:
		return p.cal.ToHost, nil
	default:
		return CommModel{}, fmt.Errorf("core: unknown direction %d", int(dir))
	}
}

// DedicatedComm returns dcomm for the data sets in the given direction.
// It is computed once per ⟨application, problem size, platform⟩ triple
// and does not vary with load.
func (p *Predictor) DedicatedComm(dir Direction, sets []DataSet) (float64, error) {
	m, err := p.model(dir)
	if err != nil {
		return 0, err
	}
	// Guard lenient predictors: an invalid α/β fit must error here, not
	// price transfers at Inf/NaN (worst-case pessimism can stand in for
	// missing delay tables, but not for a missing cost model). The
	// verdict was captured at construction; the hot path only consults it.
	if err := p.modelErr[dir]; err != nil {
		return 0, err
	}
	return m.Dedicated(sets)
}

// commSlowdown is the memoized CommSlowdown over the predictor's
// (immutable) delay tables.
func (p *Predictor) commSlowdown(cs []Contender) (float64, error) {
	if p.tablesErr != nil {
		return 0, p.tablesErr
	}
	return p.cache.commSlowdown(cs, p.cal.Tables)
}

// compSlowdownWithJ is the memoized CompSlowdownWithJ analogue.
func (p *Predictor) compSlowdownWithJ(cs []Contender, j int) (float64, error) {
	if p.tablesErr != nil {
		return 0, p.tablesErr
	}
	return p.cache.compSlowdownWithJ(cs, p.cal.Tables, p.jGrid, j)
}

// compSlowdown resolves the paper's auto-j rule (the maximum contender
// message size) and evaluates the memoized computation slowdown.
func (p *Predictor) compSlowdown(cs []Contender) (float64, error) {
	j := 0
	for _, c := range cs {
		if c.MsgWords > j {
			j = c.MsgWords
		}
	}
	return p.compSlowdownWithJ(cs, j)
}

// PredictComm returns the slowdown-adjusted communication cost
// C = dcomm × slowdown for the given contender set. The slowdown
// mixture is memoized on the contender multiset, so sweeping message
// sizes against a fixed contender set costs one DP total.
func (p *Predictor) PredictComm(dir Direction, sets []DataSet, cs []Contender) (float64, error) {
	mPredictComm.Inc()
	dcomm, err := p.DedicatedComm(dir, sets)
	if err != nil {
		return 0, err
	}
	s, err := p.commSlowdown(cs)
	if err != nil {
		return 0, err
	}
	return dcomm * s, nil
}

// PredictComp returns T = dcomp × slowdown for computation on the
// front-end under the given contender set.
func (p *Predictor) PredictComp(dcomp float64, cs []Contender) (float64, error) {
	mPredictComp.Inc()
	if dcomp < 0 {
		return 0, errors.New("core: negative dedicated computation time")
	}
	s, err := p.compSlowdown(cs)
	if err != nil {
		return 0, err
	}
	return dcomp * s, nil
}

// PredictCompWithJ is PredictComp with an explicit j column.
func (p *Predictor) PredictCompWithJ(dcomp float64, cs []Contender, j int) (float64, error) {
	mPredictComp.Inc()
	if dcomp < 0 {
		return 0, errors.New("core: negative dedicated computation time")
	}
	s, err := p.compSlowdownWithJ(cs, j)
	if err != nil {
		return 0, err
	}
	return dcomp * s, nil
}

// CommSlowdown is the memoized communication-slowdown mixture for the
// predictor's calibration (the package-level CommSlowdown, cached on
// the contender multiset).
func (p *Predictor) CommSlowdown(cs []Contender) (float64, error) { return p.commSlowdown(cs) }

// CompSlowdown is the memoized computation-slowdown mixture with the
// paper's auto-selected j (maximum contender message size).
func (p *Predictor) CompSlowdown(cs []Contender) (float64, error) { return p.compSlowdown(cs) }

// CompSlowdownWithJ is CompSlowdown with an explicit j column.
func (p *Predictor) CompSlowdownWithJ(cs []Contender, j int) (float64, error) {
	return p.compSlowdownWithJ(cs, j)
}

// --- Batched prediction ------------------------------------------------------

// PredictCommBatch prices a whole grid of transfers (one []DataSet per
// grid point, e.g. a message-size sweep) under one contender set,
// evaluating the slowdown mixture exactly once and amortizing it over
// the grid. Result k corresponds to batches[k].
func (p *Predictor) PredictCommBatch(dir Direction, batches [][]DataSet, cs []Contender) ([]float64, error) {
	mPredictComm.Add(int64(len(batches)))
	mPredictBatch.Observe(float64(len(batches)))
	s, err := p.commSlowdown(cs)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(batches))
	for k, sets := range batches {
		dcomm, err := p.DedicatedComm(dir, sets)
		if err != nil {
			return nil, err
		}
		out[k] = dcomm * s
	}
	return out, nil
}

// PredictCompBatch predicts a grid of dedicated computation times under
// one contender set with a single slowdown evaluation (auto-selected j,
// per the paper's maximum-message-size rule).
func (p *Predictor) PredictCompBatch(dcomps []float64, cs []Contender) ([]float64, error) {
	mPredictComp.Add(int64(len(dcomps)))
	mPredictBatch.Observe(float64(len(dcomps)))
	s, err := p.compSlowdown(cs)
	if err != nil {
		return nil, err
	}
	return scaleBatch(dcomps, s)
}

// PredictCompBatchWithJ is PredictCompBatch with an explicit j column.
func (p *Predictor) PredictCompBatchWithJ(dcomps []float64, cs []Contender, j int) ([]float64, error) {
	mPredictComp.Add(int64(len(dcomps)))
	mPredictBatch.Observe(float64(len(dcomps)))
	s, err := p.compSlowdownWithJ(cs, j)
	if err != nil {
		return nil, err
	}
	return scaleBatch(dcomps, s)
}

func scaleBatch(dcomps []float64, s float64) ([]float64, error) {
	out := make([]float64, len(dcomps))
	for k, d := range dcomps {
		if d < 0 {
			return nil, errors.New("core: negative dedicated computation time")
		}
		out[k] = d * s
	}
	return out, nil
}

// --- Graceful degradation ---------------------------------------------------

// Prediction is a cost prediction carrying degradation metadata: when
// the calibration cannot support the paper's mixture model, Value holds
// the conservative p+1 worst case instead, Degraded is set, and Reason
// says why. Callers that ignore the flag still get a usable (if
// pessimistic) number — degraded, never wrong-silently.
type Prediction struct {
	Value    float64
	Degraded bool
	Reason   string
}

// WorstCaseSlowdown is the conservative fallback the degraded mode uses:
// all p contenders permanently resident on a fair-shared resource slow
// the application by p+1 (the paper's CM2-platform law, which needs no
// delay tables at all).
func WorstCaseSlowdown(cs []Contender) float64 { return float64(len(cs) + 1) }

// MarkStale flags the calibration as stale — e.g. the resource manager
// observed a job-mix regime change since calibration (§4: "slowdown
// factors should be recalculated when the job mix changes"). Until
// ClearStale, the Robust methods return the worst-case fallback, the
// Try fast path misses, and any attached surface is invalidated.
func (p *Predictor) MarkStale(reason string) {
	if reason == "" {
		reason = "calibration marked stale"
	}
	p.stale.Store(&reason)
	if b := p.surface.Load(); b != nil {
		b.s.Invalidate()
	}
}

// ClearStale removes the staleness mark (after recalibration). An
// attached surface is revalidated through its checksum gate: it only
// comes back if it was built from these exact tables.
func (p *Predictor) ClearStale() {
	p.stale.Store(nil)
	if b := p.surface.Load(); b != nil {
		b.s.Revalidate(p.checksum)
	}
}

// Stale reports the staleness reason ("" when fresh).
func (p *Predictor) Stale() string {
	if r := p.stale.Load(); r != nil {
		return *r
	}
	return ""
}

// tablesInvalidReason returns a degradation reason when the validation
// report recorded at construction shows fatal violations in the delay
// tables (the lenient predictor path: a bad table degrades to p+1, it
// does not feed garbage into the mixture).
func (p *Predictor) tablesInvalidReason() string {
	if p.report == nil {
		return ""
	}
	for _, v := range p.report.Fatal() {
		if strings.HasPrefix(v.Path, "Tables") {
			return fmt.Sprintf("invalid delay tables: %s: %s", v.Path, v.Msg)
		}
	}
	return ""
}

// degradeReasonComm reports why the communication slowdown cannot be
// trusted, or "" when the tables support it.
func (p *Predictor) degradeReasonComm(cs []Contender) string {
	if stale := p.Stale(); stale != "" {
		return "stale calibration: " + stale
	}
	if reason := p.tablesInvalidReason(); reason != "" {
		return reason
	}
	t := p.cal.Tables
	if len(t.CompOnComm) == 0 && len(t.CommOnComm) == 0 {
		return "no delay tables calibrated"
	}
	if len(t.CompOnComm) < len(cs) || len(t.CommOnComm) < len(cs) {
		return fmt.Sprintf("delay tables cover %d/%d contenders",
			min(len(t.CompOnComm), len(t.CommOnComm)), len(cs))
	}
	return ""
}

// degradeReasonComp is the computation-slowdown analogue.
func (p *Predictor) degradeReasonComp(cs []Contender) string {
	if stale := p.Stale(); stale != "" {
		return "stale calibration: " + stale
	}
	if reason := p.tablesInvalidReason(); reason != "" {
		return reason
	}
	t := p.cal.Tables
	anyComm := false
	for _, c := range cs {
		if c.CommFraction > 0 {
			anyComm = true
			break
		}
	}
	if anyComm {
		if len(t.CommOnComp) == 0 {
			return "no delay^{i,j} columns calibrated"
		}
		for j, col := range t.CommOnComp {
			if len(col) < len(cs) {
				return fmt.Sprintf("delay^{i,%d} column covers %d/%d contenders", j, len(col), len(cs))
			}
		}
	}
	return ""
}

// PredictCommRobust is PredictComm with graceful degradation: when the
// delay tables are missing, partial, invalid, or stale it returns
// dcomm × (p+1) flagged Degraded instead of an error. It still errors
// when the dedicated model itself cannot price the transfer (no α/β fit
// can be substituted by pessimism).
func (p *Predictor) PredictCommRobust(dir Direction, sets []DataSet, cs []Contender) (Prediction, error) {
	mPredictComm.Inc()
	dcomm, err := p.DedicatedComm(dir, sets)
	if err != nil {
		return Prediction{}, err
	}
	if reason := p.degradeReasonComm(cs); reason != "" {
		mPredictDegraded.Inc()
		return Prediction{Value: dcomm * WorstCaseSlowdown(cs), Degraded: true, Reason: reason}, nil
	}
	s, err := p.commSlowdown(cs)
	if err != nil {
		mPredictDegraded.Inc()
		return Prediction{Value: dcomm * WorstCaseSlowdown(cs), Degraded: true, Reason: err.Error()}, nil
	}
	return Prediction{Value: dcomm * s}, nil
}

// PredictCompRobust is PredictComp with graceful degradation to
// dcomp × (p+1) when the delay^{i,j} tables cannot support the mixture.
func (p *Predictor) PredictCompRobust(dcomp float64, cs []Contender) (Prediction, error) {
	mPredictComp.Inc()
	if dcomp < 0 {
		return Prediction{}, errors.New("core: negative dedicated computation time")
	}
	if reason := p.degradeReasonComp(cs); reason != "" {
		mPredictDegraded.Inc()
		return Prediction{Value: dcomp * WorstCaseSlowdown(cs), Degraded: true, Reason: reason}, nil
	}
	s, err := p.compSlowdown(cs)
	if err != nil {
		mPredictDegraded.Inc()
		return Prediction{Value: dcomp * WorstCaseSlowdown(cs), Degraded: true, Reason: err.Error()}, nil
	}
	return Prediction{Value: dcomp * s}, nil
}
