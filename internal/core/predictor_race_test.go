package core

import (
	"context"
	"testing"

	"contention/internal/runner"
)

// TestPredictorConcurrentUse hammers one shared Predictor from the
// worker pool exactly the way the parallel experiment engine does:
// many goroutines predicting over overlapping contender multisets
// (shared cache entries) while others miss the cache and fill it, plus
// concurrent MarkStale/ClearStale flips. Run under `go test -race` this
// is the goroutine-safety gate for the cached hot path.
func TestPredictorConcurrentUse(t *testing.T) {
	p, err := NewPredictor(fullCalibration())
	if err != nil {
		t.Fatal(err)
	}
	sets := []DataSet{{N: 10, Words: 100}}
	mixes := [][]Contender{
		robustContenders(),
		{{CommFraction: 0.1, MsgWords: 500}},
		{{CommFraction: 0.5, MsgWords: 500}, {CommFraction: 0.2, MsgWords: 500}},
		{{CommFraction: 0.9, MsgWords: 500}, {CommFraction: 0.3, MsgWords: 500}, {CommFraction: 0.6, MsgWords: 500}},
	}
	// Serial reference values, computed before any concurrency.
	wantComm := make([]float64, len(mixes))
	wantComp := make([]float64, len(mixes))
	for i, cs := range mixes {
		if wantComm[i], err = p.PredictComm(HostToBack, sets, cs); err != nil {
			t.Fatal(err)
		}
		if wantComp[i], err = p.PredictComp(2, cs); err != nil {
			t.Fatal(err)
		}
	}

	fresh, err := NewPredictor(fullCalibration()) // cold cache, filled under race
	if err != nil {
		t.Fatal(err)
	}
	pool := runner.New(8)
	err = runner.Run(context.Background(), pool, 400, func(_ context.Context, i int) error {
		cs := mixes[i%len(mixes)]
		switch i % 7 {
		case 3:
			fresh.MarkStale("load shifted")
		case 5:
			fresh.ClearStale()
			_ = fresh.Stale()
		}
		for _, pred := range []*Predictor{p, fresh} {
			comm, err := pred.PredictComm(HostToBack, sets, cs)
			if err != nil {
				return err
			}
			if comm != wantComm[i%len(mixes)] {
				t.Errorf("task %d: comm %v, want %v", i, comm, wantComm[i%len(mixes)])
			}
			comp, err := pred.PredictComp(2, cs)
			if err != nil {
				return err
			}
			if comp != wantComp[i%len(mixes)] {
				t.Errorf("task %d: comp %v, want %v", i, comp, wantComp[i%len(mixes)])
			}
		}
		if _, err := fresh.PredictCommRobust(HostToBack, sets, cs); err != nil {
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
