package core

import (
	"strings"
	"testing"
)

func fullCalibration() Calibration {
	return Calibration{
		ToBack: Uniform(0.5, 10),
		ToHost: Uniform(0.5, 10),
		Tables: DelayTables{
			CompOnComm: []float64{0.4, 0.8, 1.2},
			CommOnComm: []float64{0.3, 0.6, 0.9},
			CommOnComp: map[int][]float64{500: {0.5, 1.0, 1.5}},
		},
	}
}

func robustContenders() []Contender {
	return []Contender{
		{CommFraction: 0.3, MsgWords: 500},
		{CommFraction: 0.6, MsgWords: 500},
	}
}

func TestRobustMatchesStrictWhenCalibrated(t *testing.T) {
	p, err := NewPredictor(fullCalibration())
	if err != nil {
		t.Fatal(err)
	}
	cs := robustContenders()
	sets := []DataSet{{N: 10, Words: 100}}
	want, err := p.PredictComm(HostToBack, sets, cs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.PredictCommRobust(HostToBack, sets, cs)
	if err != nil {
		t.Fatal(err)
	}
	if got.Degraded || got.Value != want {
		t.Fatalf("robust = %+v, strict = %v", got, want)
	}
	wantC, err := p.PredictComp(2, cs)
	if err != nil {
		t.Fatal(err)
	}
	gotC, err := p.PredictCompRobust(2, cs)
	if err != nil {
		t.Fatal(err)
	}
	if gotC.Degraded || gotC.Value != wantC {
		t.Fatalf("comp robust = %+v, strict = %v", gotC, wantC)
	}
}

func TestRobustDegradesWithoutTables(t *testing.T) {
	cal := fullCalibration()
	cal.Tables = DelayTables{}
	p := NewPredictorLenient(cal)
	cs := robustContenders()
	sets := []DataSet{{N: 10, Words: 100}}
	dcomm, err := p.DedicatedComm(HostToBack, sets)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.PredictCommRobust(HostToBack, sets, cs)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Degraded || got.Reason == "" {
		t.Fatalf("table-less prediction not flagged: %+v", got)
	}
	if want := dcomm * WorstCaseSlowdown(cs); got.Value != want {
		t.Fatalf("degraded value %v, want p+1 fallback %v", got.Value, want)
	}
	gotC, err := p.PredictCompRobust(2, cs)
	if err != nil {
		t.Fatal(err)
	}
	if !gotC.Degraded || gotC.Value != 2*WorstCaseSlowdown(cs) {
		t.Fatalf("comp degraded = %+v, want %v", gotC, 2*WorstCaseSlowdown(cs))
	}
	// The strict method silently treats missing table entries as zero
	// delay — the optimistic failure mode the Robust variant replaces
	// with flagged pessimism.
	strict, err := p.PredictComm(HostToBack, sets, cs)
	if err != nil {
		t.Fatal(err)
	}
	if strict != dcomm {
		t.Fatalf("strict table-less prediction %v, want optimistic dcomm %v", strict, dcomm)
	}
	if got.Value <= strict {
		t.Fatalf("degraded %v not more conservative than strict %v", got.Value, strict)
	}
}

func TestRobustDegradesOnPartialTables(t *testing.T) {
	// Tables calibrated for 1 contender, asked about 2: pessimism, not
	// silent extrapolation.
	cal := fullCalibration()
	cal.Tables.CompOnComm = cal.Tables.CompOnComm[:1]
	cal.Tables.CommOnComm = cal.Tables.CommOnComm[:1]
	p := NewPredictorLenient(cal)
	got, err := p.PredictCommRobust(HostToBack, []DataSet{{N: 10, Words: 100}}, robustContenders())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Degraded || !strings.Contains(got.Reason, "1/2") {
		t.Fatalf("partial-table prediction = %+v, want degraded with coverage reason", got)
	}
}

func TestRobustDegradesWhenStale(t *testing.T) {
	p, err := NewPredictor(fullCalibration())
	if err != nil {
		t.Fatal(err)
	}
	cs := robustContenders()
	sets := []DataSet{{N: 10, Words: 100}}
	p.MarkStale("job mix changed")
	if p.Stale() == "" {
		t.Fatal("Stale() empty after MarkStale")
	}
	got, err := p.PredictCommRobust(HostToBack, sets, cs)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Degraded || !strings.Contains(got.Reason, "job mix changed") {
		t.Fatalf("stale prediction = %+v", got)
	}
	p.ClearStale()
	got, err = p.PredictCommRobust(HostToBack, sets, cs)
	if err != nil {
		t.Fatal(err)
	}
	if got.Degraded {
		t.Fatalf("prediction still degraded after ClearStale: %+v", got)
	}
}

func TestRobustStillErrorsWithoutCommModel(t *testing.T) {
	// Pessimism cannot substitute for a missing dedicated cost model:
	// no α/β fit means no price at all.
	p := NewPredictorLenient(Calibration{})
	if _, err := p.PredictCommRobust(HostToBack, []DataSet{{N: 1, Words: 10}}, nil); err == nil {
		t.Fatal("priced a transfer with no dedicated model")
	}
	if _, err := p.PredictCompRobust(-1, nil); err == nil {
		t.Fatal("negative dcomp accepted")
	}
}

func TestWorstCaseSlowdown(t *testing.T) {
	if got := WorstCaseSlowdown(nil); got != 1 {
		t.Fatalf("WorstCaseSlowdown(nil) = %v", got)
	}
	if got := WorstCaseSlowdown(make([]Contender, 3)); got != 4 {
		t.Fatalf("WorstCaseSlowdown(3) = %v", got)
	}
}
