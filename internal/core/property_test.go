package core

import (
	"math"
	"math/rand"
	"testing"
)

// randomMonotoneTables builds valid delay tables with random positive
// increments — monotone non-decreasing in the contender count i, as the
// physics demands (more contenders never means less interference).
func randomMonotoneTables(rng *rand.Rand, depth int) DelayTables {
	column := func(scale float64) []float64 {
		col := make([]float64, depth)
		v := 0.0
		for i := range col {
			v += rng.Float64() * scale
			col[i] = v
		}
		return col
	}
	return DelayTables{
		CompOnComm: column(0.4),
		CommOnComm: column(1.2),
		CommOnComp: map[int][]float64{
			1:    column(0.1),
			500:  column(0.8),
			1000: column(1.4),
		},
	}
}

// randomContenders draws n valid contenders.
func randomContenders(rng *rand.Rand, n int) []Contender {
	cs := make([]Contender, n)
	for i := range cs {
		comm := rng.Float64() * 0.9
		var io float64
		if rng.Intn(3) == 0 {
			io = rng.Float64() * (1 - comm)
		}
		cs[i] = Contender{CommFraction: comm, IOFraction: io, MsgWords: rng.Intn(1200)}
	}
	return cs
}

// TestPropertySlowdownNonDecreasingInP: the model's central qualitative
// prediction — both slowdowns are non-decreasing as contenders are
// added to the mix. Checked over random monotone tables and random
// contender prefixes: S(cs[:k]) ≤ S(cs[:k+1]) for every k, for
// CommSlowdown and for CompSlowdownWithJ at a fixed j (fixing j
// isolates the contender-count effect from the j-column switch).
func TestPropertySlowdownNonDecreasingInP(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	const slack = 1e-12 // float summation noise only
	for trial := 0; trial < 300; trial++ {
		tables := randomMonotoneTables(rng, 8)
		cs := randomContenders(rng, 8)
		j := []int{0, 1, 250, 500, 750, 1000, 5000}[rng.Intn(7)]
		prevComm, prevComp := 0.0, 0.0
		for k := 0; k <= len(cs); k++ {
			comm, err := CommSlowdown(cs[:k], tables)
			if err != nil {
				t.Fatalf("trial %d k=%d: CommSlowdown: %v", trial, k, err)
			}
			comp, err := CompSlowdownWithJ(cs[:k], tables, j)
			if err != nil {
				t.Fatalf("trial %d k=%d j=%d: CompSlowdownWithJ: %v", trial, k, j, err)
			}
			if k == 0 {
				if comm != 1 || comp != 1 {
					t.Fatalf("trial %d: empty mix slowdowns (%v, %v), want (1, 1)", trial, comm, comp)
				}
			} else {
				if comm < prevComm-slack {
					t.Fatalf("trial %d: CommSlowdown decreased adding contender %d: %v -> %v\nadded %+v",
						trial, k, prevComm, comm, cs[k-1])
				}
				if comp < prevComp-slack {
					t.Fatalf("trial %d: CompSlowdown (j=%d) decreased adding contender %d: %v -> %v\nadded %+v",
						trial, j, k, prevComp, comp, cs[k-1])
				}
			}
			prevComm, prevComp = comm, comp
		}
	}
}

// TestPropertySlowdownBounds: slowdowns live in [1, p+1]-flavoured
// bounds — at least 1 (contention never speeds you up), and CompSlowdown
// never exceeds 1 + p·max(1, top delay column entry); the p+1 simple
// model is the exact upper envelope when every contender is pure
// computation.
func TestPropertySlowdownBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 300; trial++ {
		tables := randomMonotoneTables(rng, 8)
		p := 1 + rng.Intn(8)
		cs := randomContenders(rng, p)
		comm, err := CommSlowdown(cs, tables)
		if err != nil {
			t.Fatal(err)
		}
		comp, err := CompSlowdown(cs, tables)
		if err != nil {
			t.Fatal(err)
		}
		if comm < 1 || comp < 1 {
			t.Fatalf("trial %d: slowdown below 1 (comm %v, comp %v)", trial, comm, comp)
		}
		maxDelay := 1.0
		for _, col := range tables.CommOnComp {
			if last := col[len(col)-1]; last > maxDelay {
				maxDelay = last
			}
		}
		if bound := 1 + float64(p)*maxDelay; comp > bound+1e-9 {
			t.Fatalf("trial %d: CompSlowdown %v above envelope %v (p=%d)", trial, comp, bound, p)
		}
		// Pure-computation contenders: CompSlowdown degenerates to the
		// exact p+1 of the simple model (pcomp_p = 1, delay = p).
		pure := make([]Contender, p)
		pureComp, err := CompSlowdown(pure, tables)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(pureComp-SimpleSlowdown(p)) > 1e-9 {
			t.Fatalf("trial %d: pure-comp CompSlowdown %v != p+1 = %v", trial, pureComp, SimpleSlowdown(p))
		}
	}
}

// TestPropertyPredictorMonotoneInIdenticalContenders lifts monotonicity
// to the Predictor API: predicted comm and comp costs are non-decreasing
// in the number of identical contenders sharing the node, across the
// cached (warm) path — the serving layer's degraded-mode comparisons
// rely on this ordering.
func TestPropertyPredictorMonotoneInIdenticalContenders(t *testing.T) {
	p, err := NewPredictor(fullCalibration())
	if err != nil {
		t.Fatal(err)
	}
	sets := []DataSet{{N: 200, Words: 800}}
	for _, proto := range []Contender{
		{CommFraction: 0.3, MsgWords: 700},
		{CommFraction: 0.7, MsgWords: 100, IOFraction: 0.1},
		{CommFraction: 0.05, MsgWords: 1000},
	} {
		prevComm, prevComp := 0.0, 0.0
		for n := 0; n <= 6; n++ {
			cs := make([]Contender, n)
			for i := range cs {
				cs[i] = proto
			}
			comm, err := p.PredictComm(HostToBack, sets, cs)
			if err != nil {
				t.Fatalf("n=%d: PredictComm: %v", n, err)
			}
			comp, err := p.PredictComp(3, cs)
			if err != nil {
				t.Fatalf("n=%d: PredictComp: %v", n, err)
			}
			if n > 0 && (comm < prevComm-1e-12 || comp < prevComp-1e-12) {
				t.Fatalf("proto %+v: cost decreased at n=%d: comm %v -> %v, comp %v -> %v",
					proto, n, prevComm, comm, prevComp, comp)
			}
			prevComm, prevComp = comm, comp
		}
	}
}
