// Precomputed-surface integration. The steady-state serving workload is
// dominated by homogeneous contender classes (p identical contenders, no
// I/O fraction), for which the slowdown mixtures collapse to smooth
// functions of (p, comm fraction[, j column]). internal/surface
// evaluates those functions once, on a dense grid, at calibration-load
// time; this file defines the interface the Predictor consumes, the
// checksum that version-stamps a surface against the delay tables it
// was built from, and the Try* fast-path methods that answer from the
// surface (or the sharded memo cache) without ever running the DP —
// returning ok=false to send the caller down the full slow path.
package core

import (
	"errors"
	"math"
)

// SlowdownSurface is the read side of a precomputed slowdown surface.
// Implementations must be goroutine-safe and allocation-free on the
// lookup methods; Comm/CompWithJ return ok=false whenever the query is
// outside the precomputed domain or the surface has been invalidated.
type SlowdownSurface interface {
	// Checksum is the TablesChecksum of the DelayTables the surface was
	// built from. AttachSurface refuses a mismatch.
	Checksum() uint64
	// Valid reports whether lookups are currently allowed.
	Valid() bool
	// Invalidate disables lookups until a successful Revalidate.
	Invalidate()
	// Revalidate re-enables lookups iff checksum still matches the build
	// checksum, reporting whether it did. A surface built from tables
	// that have since been replaced can never be revalidated against the
	// new predictor — the checksum gate makes stale data unreachable.
	Revalidate(checksum uint64) bool
	// Comm returns the communication-slowdown mixture for p identical
	// contenders with comm fraction f (I/O fraction zero).
	Comm(p int, f float64) (float64, bool)
	// CompWithJ returns the computation-slowdown mixture for p identical
	// contenders with comm fraction f, using the delay^{i,j} column
	// nearest the words-sized message.
	CompWithJ(p int, f float64, words int) (float64, bool)
}

// surfaceBox wraps the interface so it can live in an atomic.Pointer.
type surfaceBox struct{ s SlowdownSurface }

// TablesChecksum fingerprints the delay tables with FNV-64a over a
// canonical encoding (lengths, raw float bits, j keys in ascending
// order). Surfaces are stamped with it at build time and predictors
// verify it at attach/revalidate time, so a surface can never serve
// values computed from tables other than the predictor's own.
func TablesChecksum(t DelayTables) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime
			v >>= 8
		}
	}
	table := func(xs []float64) {
		mix(uint64(len(xs)))
		for _, x := range xs {
			mix(math.Float64bits(x))
		}
	}
	table(t.CompOnComm)
	table(t.CommOnComm)
	grid := t.JGrid()
	mix(uint64(len(grid)))
	for _, j := range grid {
		mix(uint64(j))
		table(t.CommOnComp[j])
	}
	return h
}

// ErrSurfaceChecksum is returned by AttachSurface when the surface was
// built from different delay tables than the predictor's.
var ErrSurfaceChecksum = errors.New("core: surface checksum does not match predictor tables")

// AttachSurface installs a precomputed surface on the fast path. The
// surface's build checksum must match the predictor's tables exactly;
// attaching is atomic and may happen while predictions are in flight.
func (p *Predictor) AttachSurface(s SlowdownSurface) error {
	if s.Checksum() != p.checksum {
		return ErrSurfaceChecksum
	}
	p.surface.Store(&surfaceBox{s: s})
	return nil
}

// Surface returns the attached surface, or nil.
func (p *Predictor) Surface() SlowdownSurface {
	if b := p.surface.Load(); b != nil {
		return b.s
	}
	return nil
}

// TablesChecksum returns the checksum of the predictor's delay tables
// (precomputed at construction).
func (p *Predictor) TablesChecksum() uint64 { return p.checksum }

// homogeneousFraction reports whether the multiset is surface-resident:
// every contender shares one comm fraction and spends no time in I/O.
// (Message sizes may differ — they select the j column, not the class.)
func homogeneousFraction(cs []Contender) (float64, bool) {
	if len(cs) == 0 {
		return 0, true
	}
	f := cs[0].CommFraction
	for _, c := range cs {
		if c.CommFraction != f || c.IOFraction != 0 {
			return 0, false
		}
	}
	return f, true
}

// --- Try fast path -----------------------------------------------------------
//
// The Try* methods are the warm path the serving batcher bypass rides:
// surface lookup first, sharded-cache probe second, and ok=false —
// never an error, never a DP — when neither can answer. They are
// allocation-free and safe under concurrent MarkStale/AttachSurface.

// TryCommSlowdown answers the communication-slowdown mixture from the
// surface or the memo cache, without running the DP.
func (p *Predictor) TryCommSlowdown(cs []Contender) (float64, bool) {
	if p.tablesErr != nil || p.stale.Load() != nil {
		return 0, false
	}
	if b := p.surface.Load(); b != nil {
		if f, ok := homogeneousFraction(cs); ok {
			if v, ok := b.s.Comm(len(cs), f); ok {
				mSurfaceHitComm.Inc()
				return v, true
			}
		}
		mSurfaceMissComm.Inc()
	}
	return p.cache.probeComm(cs)
}

// TryCompSlowdownWithJ answers the computation-slowdown mixture for an
// explicit message size, surface first.
func (p *Predictor) TryCompSlowdownWithJ(cs []Contender, j int) (float64, bool) {
	if p.tablesErr != nil || p.stale.Load() != nil {
		return 0, false
	}
	if b := p.surface.Load(); b != nil {
		if f, ok := homogeneousFraction(cs); ok {
			if v, ok := b.s.CompWithJ(len(cs), f, j); ok {
				mSurfaceHitComp.Inc()
				return v, true
			}
		}
		mSurfaceMissComp.Inc()
	}
	return p.cache.probeCompWithJ(cs, p.jGrid, j)
}

// TryCompSlowdown is TryCompSlowdownWithJ under the paper's auto-j rule
// (maximum contender message size).
func (p *Predictor) TryCompSlowdown(cs []Contender) (float64, bool) {
	j := 0
	for _, c := range cs {
		if c.MsgWords > j {
			j = c.MsgWords
		}
	}
	return p.TryCompSlowdownWithJ(cs, j)
}

// TryPredictComm is the fast-path PredictComm: dcomm × slowdown when
// the slowdown is already resident, ok=false otherwise (including when
// the dedicated model cannot price the transfer — the slow path owns
// error reporting).
func (p *Predictor) TryPredictComm(dir Direction, sets []DataSet, cs []Contender) (float64, bool) {
	s, ok := p.TryCommSlowdown(cs)
	if !ok {
		return 0, false
	}
	dcomm, err := p.DedicatedComm(dir, sets)
	if err != nil {
		return 0, false
	}
	mPredictComm.Inc()
	return dcomm * s, true
}

// TryPredictComp is the fast-path PredictComp (auto-j).
func (p *Predictor) TryPredictComp(dcomp float64, cs []Contender) (float64, bool) {
	if dcomp < 0 || math.IsNaN(dcomp) {
		return 0, false
	}
	s, ok := p.TryCompSlowdown(cs)
	if !ok {
		return 0, false
	}
	mPredictComp.Inc()
	return dcomp * s, true
}

// TryPredictCompWithJ is the fast-path PredictCompWithJ.
func (p *Predictor) TryPredictCompWithJ(dcomp float64, cs []Contender, j int) (float64, bool) {
	if dcomp < 0 || math.IsNaN(dcomp) {
		return 0, false
	}
	s, ok := p.TryCompSlowdownWithJ(cs, j)
	if !ok {
		return 0, false
	}
	mPredictComp.Inc()
	return dcomp * s, true
}
