package core

import (
	"fmt"

	"contention/internal/prob"
)

// System tracks the set of applications currently sharing the front-end
// and maintains the pcomp/pcomm distributions incrementally, mirroring
// the paper's run-time usage: the slowdown factor "is always calculated
// at run-time [and] must be efficient to compute relative to how quickly
// applications enter and leave the system". Adding an application is
// O(p); removal regenerates in O(p²); evaluating a slowdown is O(p)
// (O(p²) worst case overall, which the paper deems negligible).
type System struct {
	contenders []Contender
	comp       *prob.Calc // activity = computing
	comm       *prob.Calc // activity = communicating
	tables     DelayTables
	jGrid      []int // ascending CommOnComp columns, fixed at construction
}

// NewSystem returns an empty system using the given delay tables.
func NewSystem(tables DelayTables) (*System, error) {
	if err := tables.Validate(); err != nil {
		return nil, err
	}
	return &System{
		comp:   prob.MustNew(),
		comm:   prob.MustNew(),
		tables: tables,
		jGrid:  tables.JGrid(),
	}, nil
}

// Len reports the number of contenders currently in the system.
func (s *System) Len() int { return len(s.contenders) }

// Contenders returns a copy of the current contender set.
func (s *System) Contenders() []Contender {
	return append([]Contender(nil), s.contenders...)
}

// Add registers a new application in O(p).
func (s *System) Add(c Contender) error {
	if err := c.Validate(); err != nil {
		return err
	}
	if err := s.comp.Add(c.CompFraction()); err != nil {
		return err
	}
	if err := s.comm.Add(c.CommFraction); err != nil {
		// Roll back the comp distribution to keep the two in step.
		if rbErr := s.comp.Remove(s.comp.N() - 1); rbErr != nil {
			return fmt.Errorf("core: %w (rollback failed: %v)", err, rbErr)
		}
		return err
	}
	s.contenders = append(s.contenders, c)
	return nil
}

// Remove deletes the application at index, regenerating the
// distributions in O(p²) (needed only when task migration is allowed,
// per the paper).
func (s *System) Remove(index int) error {
	if index < 0 || index >= len(s.contenders) {
		return fmt.Errorf("core: remove index %d out of range [0,%d)", index, len(s.contenders))
	}
	if err := s.comp.Remove(index); err != nil {
		return err
	}
	if err := s.comm.Remove(index); err != nil {
		return err
	}
	s.contenders = append(s.contenders[:index], s.contenders[index+1:]...)
	return nil
}

// CommSlowdown evaluates the communication slowdown for the current set
// in O(p) using the cached distributions.
func (s *System) CommSlowdown() float64 {
	out := 1.0
	for i := 1; i <= len(s.contenders); i++ {
		out += s.comp.P(i) * lookup(s.tables.CompOnComm, i)
		out += s.comm.P(i) * lookup(s.tables.CommOnComm, i)
	}
	return out
}

// CompSlowdown evaluates the computation slowdown for the current set,
// using the j column nearest the maximum contender message size.
func (s *System) CompSlowdown() (float64, error) {
	j := 0
	for _, c := range s.contenders {
		if c.MsgWords > j {
			j = c.MsgWords
		}
	}
	return s.CompSlowdownWithJ(j)
}

// CompSlowdownWithJ evaluates the computation slowdown with an explicit
// j column. The nearest calibrated column is resolved once against the
// grid fixed at construction, keeping the evaluation allocation-free.
func (s *System) CompSlowdownWithJ(j int) (float64, error) {
	col, colErr := 0, error(nil)
	resolved := false
	out := 1.0
	for i := 1; i <= len(s.contenders); i++ {
		out += s.comp.P(i) * float64(i)
		if p := s.comm.P(i); p > 0 {
			if !resolved {
				col, colErr = NearestJ(s.jGrid, j)
				resolved = true
			}
			if colErr != nil {
				return 0, colErr
			}
			out += p * lookup(s.tables.CommOnComp[col], i)
		}
	}
	return out, nil
}
