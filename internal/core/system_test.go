package core

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
)

func testTables() DelayTables {
	return DelayTables{
		CompOnComm: []float64{0.9, 1.8, 2.7},
		CommOnComm: []float64{0.5, 1.0, 1.5},
		CommOnComp: map[int][]float64{
			1:    {0.1, 0.2, 0.3},
			500:  {0.4, 0.8, 1.2},
			1000: {0.7, 1.4, 2.1},
		},
	}
}

func TestSystemMatchesBatchFormulas(t *testing.T) {
	sys, err := NewSystem(testTables())
	if err != nil {
		t.Fatal(err)
	}
	cs := []Contender{
		{CommFraction: 0.25, MsgWords: 200},
		{CommFraction: 0.76, MsgWords: 200},
	}
	for _, c := range cs {
		if err := sys.Add(c); err != nil {
			t.Fatal(err)
		}
	}
	wantComm, err := CommSlowdown(cs, testTables())
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.CommSlowdown(); math.Abs(got-wantComm) > 1e-12 {
		t.Fatalf("System.CommSlowdown = %v, batch = %v", got, wantComm)
	}
	wantComp, err := CompSlowdown(cs, testTables())
	if err != nil {
		t.Fatal(err)
	}
	got, err := sys.CompSlowdown()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-wantComp) > 1e-12 {
		t.Fatalf("System.CompSlowdown = %v, batch = %v", got, wantComp)
	}
}

func TestSystemAddRemoveSequence(t *testing.T) {
	sys, err := NewSystem(testTables())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	var live []Contender
	for step := 0; step < 100; step++ {
		if len(live) == 0 || rng.Intn(2) == 0 {
			c := Contender{CommFraction: rng.Float64(), MsgWords: 1 + rng.Intn(1500)}
			if err := sys.Add(c); err != nil {
				t.Fatal(err)
			}
			live = append(live, c)
		} else {
			idx := rng.Intn(len(live))
			if err := sys.Remove(idx); err != nil {
				t.Fatal(err)
			}
			live = append(live[:idx], live[idx+1:]...)
		}
		if sys.Len() != len(live) {
			t.Fatalf("step %d: Len = %d, want %d", step, sys.Len(), len(live))
		}
		want, err := CommSlowdown(live, testTables())
		if err != nil {
			t.Fatal(err)
		}
		if got := sys.CommSlowdown(); math.Abs(got-want) > 1e-9 {
			t.Fatalf("step %d: incremental %v vs batch %v", step, got, want)
		}
	}
}

func TestSystemEmptySlowdownsAreOne(t *testing.T) {
	sys, err := NewSystem(testTables())
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.CommSlowdown(); got != 1 {
		t.Fatalf("empty CommSlowdown = %v, want 1", got)
	}
	got, err := sys.CompSlowdown()
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("empty CompSlowdown = %v, want 1", got)
	}
}

func TestSystemRejectsInvalid(t *testing.T) {
	sys, err := NewSystem(testTables())
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Add(Contender{CommFraction: 2}); err == nil {
		t.Fatal("invalid contender accepted")
	}
	if sys.Len() != 0 {
		t.Fatal("failed add changed state")
	}
	if err := sys.Remove(0); err == nil {
		t.Fatal("remove from empty system did not error")
	}
}

func TestSystemContendersCopy(t *testing.T) {
	sys, _ := NewSystem(testTables())
	_ = sys.Add(Contender{CommFraction: 0.5, MsgWords: 10})
	cs := sys.Contenders()
	cs[0].CommFraction = 0.9
	if sys.Contenders()[0].CommFraction != 0.5 {
		t.Fatal("Contenders() returned a live reference")
	}
}

func TestNewSystemValidatesTables(t *testing.T) {
	if _, err := NewSystem(DelayTables{CompOnComm: []float64{-1}}); err == nil {
		t.Fatal("invalid tables accepted")
	}
}

func TestPredictorEndToEnd(t *testing.T) {
	cal := Calibration{
		ToBack: CommModel{Threshold: 1024,
			Small: CommPiece{Alpha: 0.001, Beta: 1e6},
			Large: CommPiece{Alpha: 0.004, Beta: 8e5}},
		ToHost:   Uniform(0.002, 9e5),
		Tables:   testTables(),
		Platform: "sun/paragon",
	}
	pr, err := NewPredictor(cal)
	if err != nil {
		t.Fatal(err)
	}
	sets := []DataSet{{N: 1000, Words: 200}}
	dcomm, err := pr.DedicatedComm(HostToBack, sets)
	if err != nil {
		t.Fatal(err)
	}
	want := 1000 * (0.001 + 200/1e6)
	if math.Abs(dcomm-want) > 1e-9 {
		t.Fatalf("DedicatedComm = %v, want %v", dcomm, want)
	}
	cs := []Contender{{CommFraction: 0.25, MsgWords: 200}, {CommFraction: 0.76, MsgWords: 200}}
	pred, err := pr.PredictComm(HostToBack, sets, cs)
	if err != nil {
		t.Fatal(err)
	}
	sd, _ := CommSlowdown(cs, testTables())
	if math.Abs(pred-dcomm*sd) > 1e-9 {
		t.Fatalf("PredictComm = %v, want %v", pred, dcomm*sd)
	}
	comp, err := pr.PredictComp(10, cs)
	if err != nil {
		t.Fatal(err)
	}
	sd2, _ := CompSlowdown(cs, testTables())
	if math.Abs(comp-10*sd2) > 1e-9 {
		t.Fatalf("PredictComp = %v, want %v", comp, 10*sd2)
	}
	compJ, err := pr.PredictCompWithJ(10, cs, 1000)
	if err != nil {
		t.Fatal(err)
	}
	sd3, _ := CompSlowdownWithJ(cs, testTables(), 1000)
	if math.Abs(compJ-10*sd3) > 1e-9 {
		t.Fatalf("PredictCompWithJ = %v, want %v", compJ, 10*sd3)
	}
}

func TestPredictorErrors(t *testing.T) {
	if _, err := NewPredictor(Calibration{}); err == nil {
		t.Fatal("zero calibration accepted")
	}
	cal := Calibration{ToBack: Uniform(0, 1), ToHost: Uniform(0, 1), Tables: testTables()}
	pr, err := NewPredictor(cal)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pr.DedicatedComm(Direction(9), nil); err == nil {
		t.Fatal("unknown direction accepted")
	}
	if _, err := pr.PredictComp(-1, nil); err == nil {
		t.Fatal("negative dcomp accepted")
	}
	if _, err := pr.PredictCompWithJ(-1, nil, 500); err == nil {
		t.Fatal("negative dcomp accepted (WithJ)")
	}
}

func TestDirectionString(t *testing.T) {
	if HostToBack.String() == "" || BackToHost.String() == "" {
		t.Fatal("empty direction strings")
	}
	if Direction(9).String() == "" {
		t.Fatal("unknown direction should still render")
	}
}

func TestCalibrationSaveLoadRoundTrip(t *testing.T) {
	cal := Calibration{
		ToBack: CommModel{Threshold: 1024,
			Small: CommPiece{Alpha: 0.001, Beta: 1e6},
			Large: CommPiece{Alpha: 0.004, Beta: 8e5}},
		ToHost:   Uniform(0.002, 9e5),
		Tables:   testTables(),
		Platform: "sun/paragon (1-HOP)",
	}
	var buf bytes.Buffer
	if err := cal.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCalibration(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Platform != cal.Platform || back.ToBack.Threshold != 1024 {
		t.Fatalf("round trip lost metadata: %+v", back)
	}
	// Predictions from the loaded calibration are identical.
	p1, err := NewPredictor(cal)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := NewPredictor(back)
	if err != nil {
		t.Fatal(err)
	}
	cs := []Contender{{CommFraction: 0.4, MsgWords: 500}}
	sets := []DataSet{{N: 100, Words: 700}}
	a, err := p1.PredictComm(HostToBack, sets, cs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p2.PredictComm(HostToBack, sets, cs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-b) > 1e-12 {
		t.Fatalf("prediction drift after round trip: %v vs %v", a, b)
	}
	// The j-columns (integer-keyed map) must survive.
	j1, err := cal.Tables.NearestJ(600)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := back.Tables.NearestJ(600)
	if err != nil {
		t.Fatal(err)
	}
	if j1 != j2 {
		t.Fatalf("j grid lost: %d vs %d", j1, j2)
	}
}

func TestSaveRejectsInvalidAndLoadRejectsGarbage(t *testing.T) {
	var buf bytes.Buffer
	if err := (Calibration{}).Save(&buf); err == nil {
		t.Fatal("saving a zero calibration did not error")
	}
	if _, err := LoadCalibration(strings.NewReader("{")); err == nil {
		t.Fatal("loading truncated JSON did not error")
	}
	if _, err := LoadCalibration(strings.NewReader(`{"ToBack":{"Threshold":0}}`)); err == nil {
		t.Fatal("loading invalid calibration did not error")
	}
}
