package core

import (
	"fmt"
	"strings"
)

// Violation is one structured invariant failure found in a calibration
// artifact. Path locates the offending field ("Tables.CompOnComm[2]",
// "ToBack.Small.Beta"); Warn marks advisory findings that do not
// invalidate the calibration (the trust layer surfaces them, the strict
// validators ignore them).
type Violation struct {
	Path string
	Msg  string
	Warn bool
}

// String renders the violation compactly.
func (v Violation) String() string {
	sev := "error"
	if v.Warn {
		sev = "warn"
	}
	return fmt.Sprintf("%s: %s: %s", sev, v.Path, v.Msg)
}

// ValidationReport collects every violation found in a calibration
// artifact. It implements error so validators can return it directly;
// callers that want structure use errors.As to recover it instead of
// parsing the message.
type ValidationReport struct {
	Violations []Violation
}

// Add records a fatal violation.
func (r *ValidationReport) Add(path, format string, args ...any) {
	r.Violations = append(r.Violations, Violation{Path: path, Msg: fmt.Sprintf(format, args...)})
}

// Warn records an advisory violation.
func (r *ValidationReport) Warn(path, format string, args ...any) {
	r.Violations = append(r.Violations, Violation{Path: path, Msg: fmt.Sprintf(format, args...), Warn: true})
}

// Merge appends another report's violations under a path prefix.
func (r *ValidationReport) Merge(prefix string, other *ValidationReport) {
	if other == nil {
		return
	}
	for _, v := range other.Violations {
		p := v.Path
		if prefix != "" {
			if p == "" {
				p = prefix
			} else {
				p = prefix + "." + p
			}
		}
		r.Violations = append(r.Violations, Violation{Path: p, Msg: v.Msg, Warn: v.Warn})
	}
}

// OK reports whether the artifact passed: no fatal violations
// (warnings are allowed).
func (r *ValidationReport) OK() bool {
	for _, v := range r.Violations {
		if !v.Warn {
			return false
		}
	}
	return true
}

// Fatal returns the non-advisory violations.
func (r *ValidationReport) Fatal() []Violation {
	var out []Violation
	for _, v := range r.Violations {
		if !v.Warn {
			out = append(out, v)
		}
	}
	return out
}

// Err returns the report as an error when it has fatal violations, or
// nil. Always use Err (never return a *ValidationReport directly as an
// error) to avoid the typed-nil-in-interface trap.
func (r *ValidationReport) Err() error {
	if r == nil || r.OK() {
		return nil
	}
	return r
}

// Error implements error: a one-line summary plus each fatal violation.
func (r *ValidationReport) Error() string {
	fatal := r.Fatal()
	if len(fatal) == 0 {
		return "core: calibration valid"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "core: calibration invalid (%d violation", len(fatal))
	if len(fatal) > 1 {
		b.WriteByte('s')
	}
	b.WriteByte(')')
	for _, v := range fatal {
		b.WriteString("; ")
		b.WriteString(v.Path)
		b.WriteString(": ")
		b.WriteString(v.Msg)
	}
	return b.String()
}

// String renders every violation, warnings included, one per line.
func (r *ValidationReport) String() string {
	if len(r.Violations) == 0 {
		return "ok"
	}
	lines := make([]string, len(r.Violations))
	for i, v := range r.Violations {
		lines[i] = v.String()
	}
	return strings.Join(lines, "\n")
}
