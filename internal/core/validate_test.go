package core

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func TestValidationReportStructured(t *testing.T) {
	bad := Calibration{
		ToBack: Uniform(1e-3, 1e5),
		ToHost: CommModel{Threshold: 100,
			Small: CommPiece{Alpha: -1, Beta: 0},
			Large: CommPiece{Alpha: 0, Beta: math.Inf(1)}},
		Tables: DelayTables{
			CompOnComm: []float64{0.1, math.NaN()},
			CommOnComm: []float64{-0.5},
			CommOnComp: map[int][]float64{-3: {0.2}},
		},
	}
	report := bad.ValidateReport()
	if report.OK() {
		t.Fatal("invalid calibration passed validation")
	}
	wantPaths := []string{
		"ToHost.Small.Alpha", "ToHost.Small.Beta", "ToHost.Large.Beta",
		"Tables.CompOnComm[1]", "Tables.CommOnComm[0]", "Tables.CommOnComp[-3]",
	}
	for _, want := range wantPaths {
		found := false
		for _, v := range report.Violations {
			if v.Path == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("report missing violation at %s:\n%s", want, report)
		}
	}
	// ToBack is clean: no violations under it.
	for _, v := range report.Violations {
		if strings.HasPrefix(v.Path, "ToBack") {
			t.Errorf("spurious violation %s", v)
		}
	}
}

func TestNewPredictorReturnsReport(t *testing.T) {
	_, err := NewPredictor(Calibration{})
	if err == nil {
		t.Fatal("empty calibration accepted")
	}
	var report *ValidationReport
	if !errors.As(err, &report) {
		t.Fatalf("error %T is not a *ValidationReport", err)
	}
	if len(report.Fatal()) == 0 {
		t.Fatal("report has no fatal violations")
	}
}

func TestValidationReportErrNilWhenClean(t *testing.T) {
	cal := Calibration{ToBack: Uniform(1e-3, 1e5), ToHost: Uniform(1e-3, 1e5)}
	if err := cal.Validate(); err != nil {
		t.Fatalf("clean calibration rejected: %v", err)
	}
	r := &ValidationReport{}
	r.Warn("Tables", "advisory only")
	if err := r.Err(); err != nil {
		t.Fatalf("warnings-only report produced an error: %v", err)
	}
}

// TestLenientPredictorDegradesOnInvalidTables pins the lenient path:
// a calibration whose delay tables fail validation must yield the p+1
// worst case flagged Degraded with the violation as the reason, never
// a slowdown computed from the garbage entries.
func TestLenientPredictorDegradesOnInvalidTables(t *testing.T) {
	cal := Calibration{
		ToBack: Uniform(1e-3, 1e5),
		ToHost: Uniform(1e-3, 1e5),
		Tables: DelayTables{
			CompOnComm: []float64{math.NaN(), 0.5},
			CommOnComm: []float64{0.3, 0.6},
			CommOnComp: map[int][]float64{500: {0.4, 0.9}},
		},
	}
	p := NewPredictorLenient(cal)
	cs := []Contender{{CommFraction: 0.5, MsgWords: 200}, {CommFraction: 0.2, MsgWords: 100}}
	sets := []DataSet{{N: 10, Words: 512}}

	pred, err := p.PredictCommRobust(HostToBack, sets, cs)
	if err != nil {
		t.Fatal(err)
	}
	if !pred.Degraded {
		t.Fatal("invalid tables did not degrade the comm prediction")
	}
	if !strings.Contains(pred.Reason, "invalid delay tables") {
		t.Fatalf("degradation reason %q does not name the invalid tables", pred.Reason)
	}
	dcomm, err := p.DedicatedComm(HostToBack, sets)
	if err != nil {
		t.Fatal(err)
	}
	if want := dcomm * WorstCaseSlowdown(cs); pred.Value != want {
		t.Fatalf("degraded value %v, want p+1 fallback %v", pred.Value, want)
	}

	comp, err := p.PredictCompRobust(1.0, cs)
	if err != nil {
		t.Fatal(err)
	}
	if !comp.Degraded || comp.Value != WorstCaseSlowdown(cs) {
		t.Fatalf("comp prediction %+v, want degraded p+1", comp)
	}
}
