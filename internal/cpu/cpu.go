// Package cpu models a time-shared uniprocessor as an ideal
// processor-sharing (PS) resource: CPU cycles are split equally among
// all resident jobs of equal weight, which is precisely the scheduling
// law the paper observed on the Sun front-ends ("CPU cycles are split
// equally among all the processes running on the Sun with the same
// priority"), and the origin of the slowdown = p+1 rule.
package cpu

import (
	"fmt"
	"math"

	"contention/internal/des"
)

// epsilon below which remaining work counts as finished; guards float drift.
const eps = 1e-9

// Host is a processor-sharing CPU attached to a simulation kernel.
type Host struct {
	k     *des.Kernel
	name  string
	speed float64 // work units per second when a job runs alone

	jobs       []*job
	completion *des.Event
	lastUpdate float64

	busyTime     float64 // total time with ≥1 resident job
	loadIntegral float64 // ∫ (number of resident jobs) dt
	completed    int

	// stallUntil is the end of the current stall window: until then the
	// host makes no progress on resident jobs (see Stall). Jobs stay
	// resident — a stalled host is busy, not idle.
	stallUntil float64
	stalls     int

	// Memory extension (see memory.go).
	mem      MemoryConfig
	hasMem   bool
	resident int
}

type job struct {
	remaining float64
	weight    float64
	proc      *des.Proc
	onDone    func()
}

// NewHost returns a PS host with the given speed (work units/second).
func NewHost(k *des.Kernel, name string, speed float64) *Host {
	if speed <= 0 || math.IsNaN(speed) {
		panic(fmt.Sprintf("cpu: invalid speed %v", speed))
	}
	return &Host{k: k, name: name, speed: speed}
}

// Name reports the host name.
func (h *Host) Name() string { return h.name }

// Speed reports the dedicated-mode speed in work units per second.
func (h *Host) Speed() float64 { return h.speed }

// Load reports the current number of resident jobs.
func (h *Host) Load() int { return len(h.jobs) }

// BusyTime reports the cumulative virtual time during which at least one
// job was resident (updated lazily; call after the kernel is idle or at
// event boundaries for exact values).
func (h *Host) BusyTime() float64 {
	h.advance()
	return h.busyTime
}

// LoadIntegral reports ∫(number of resident jobs)dt since t=0; windowed
// averages come from differencing two readings.
func (h *Host) LoadIntegral() float64 {
	h.advance()
	return h.loadIntegral
}

// AvgLoad reports the time-averaged number of resident jobs since t=0.
func (h *Host) AvgLoad() float64 {
	h.advance()
	if now := h.k.Now(); now > 0 {
		return h.loadIntegral / now
	}
	return 0
}

// Completed reports the number of jobs that have finished service.
func (h *Host) Completed() int { return h.completed }

// Compute runs `work` units on the host under processor sharing,
// blocking p until the work completes. Zero work yields once and returns.
func (h *Host) Compute(p *des.Proc, work float64) {
	h.ComputeWeighted(p, work, 1)
}

// ComputeWeighted is Compute with a relative share weight (default 1).
// A job with weight w receives a w/Σw fraction of the processor.
func (h *Host) ComputeWeighted(p *des.Proc, work, weight float64) {
	if work < 0 || math.IsNaN(work) {
		panic(fmt.Sprintf("cpu: invalid work %v", work))
	}
	if weight <= 0 || math.IsNaN(weight) {
		panic(fmt.Sprintf("cpu: invalid weight %v", weight))
	}
	if work == 0 {
		p.Delay(0)
		return
	}
	h.advance()
	h.jobs = append(h.jobs, &job{remaining: work, weight: weight, proc: p})
	h.reschedule()
	p.Park()
}

// ComputeAsync enqueues work whose completion invokes onDone in kernel
// context instead of blocking a process. Used by resources (e.g. the
// link's data-conversion stage) that are not themselves processes.
func (h *Host) ComputeAsync(work float64, onDone func()) {
	if work < 0 || math.IsNaN(work) {
		panic(fmt.Sprintf("cpu: invalid work %v", work))
	}
	if work == 0 {
		h.k.After(0, onDone)
		return
	}
	h.advance()
	h.jobs = append(h.jobs, &job{remaining: work, weight: 1, onDone: onDone})
	h.reschedule()
}

// advance applies elapsed time to all resident jobs' remaining work.
// Time overlapping a stall window counts toward residency accounting but
// contributes no progress.
func (h *Host) advance() {
	now := h.k.Now()
	prev := h.lastUpdate
	dt := now - prev
	h.lastUpdate = now
	if dt <= 0 || len(h.jobs) == 0 {
		return
	}
	h.busyTime += dt
	h.loadIntegral += dt * float64(len(h.jobs))
	effDt := dt
	if h.stallUntil > prev {
		frozenEnd := math.Min(now, h.stallUntil)
		effDt -= frozenEnd - prev
	}
	if effDt <= 0 {
		return
	}
	total := h.totalWeight()
	eff := h.speed / h.PagingFactor()
	for _, j := range h.jobs {
		j.remaining -= effDt * eff * j.weight / total
	}
}

// Stall freezes all progress on the host for d seconds of virtual time —
// the fault model's host-stall / crash-restart-downtime window. Resident
// jobs keep their progress (checkpoint-restart semantics) and resume when
// the window ends; overlapping stalls merge.
func (h *Host) Stall(d float64) {
	if d < 0 || math.IsNaN(d) {
		panic(fmt.Sprintf("cpu: invalid stall duration %v", d))
	}
	if d == 0 {
		return
	}
	h.advance()
	if until := h.k.Now() + d; until > h.stallUntil {
		h.stallUntil = until
	}
	h.stalls++
	h.reschedule()
}

// Stalled reports whether the host is currently inside a stall window.
func (h *Host) Stalled() bool { return h.k.Now() < h.stallUntil }

// Stalls reports the number of stall windows injected so far.
func (h *Host) Stalls() int { return h.stalls }

func (h *Host) totalWeight() float64 {
	w := 0.0
	for _, j := range h.jobs {
		w += j.weight
	}
	return w
}

// reschedule (re)installs the completion event for the earliest
// finishing job given current membership.
func (h *Host) reschedule() {
	if h.completion != nil {
		h.k.Cancel(h.completion)
		h.completion = nil
	}
	if len(h.jobs) == 0 {
		return
	}
	total := h.totalWeight()
	eff := h.speed / h.PagingFactor()
	stallLeft := 0.0
	if h.stallUntil > h.k.Now() {
		stallLeft = h.stallUntil - h.k.Now()
	}
	next := math.Inf(1)
	for _, j := range h.jobs {
		t := j.remaining * total / (eff * j.weight)
		if t < next {
			next = t
		}
	}
	if next < 0 {
		next = 0
	}
	h.completion = h.k.After(stallLeft+next, h.finishDue)
}

// finishDue retires every job whose remaining work has reached zero.
func (h *Host) finishDue() {
	h.completion = nil
	h.advance()
	var keep []*job
	var done []*job
	for _, j := range h.jobs {
		if j.remaining <= eps {
			done = append(done, j)
		} else {
			keep = append(keep, j)
		}
	}
	h.jobs = keep
	h.reschedule()
	for _, j := range done {
		h.completed++
		if j.proc != nil {
			j.proc.Resume()
		} else if j.onDone != nil {
			fn := j.onDone
			h.k.After(0, fn)
		}
	}
}
