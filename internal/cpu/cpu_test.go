package cpu

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"contention/internal/des"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSingleJobRunsAtFullSpeed(t *testing.T) {
	k := des.New()
	h := NewHost(k, "sun", 2) // 2 work/sec
	var done float64
	k.Spawn("a", func(p *des.Proc) {
		h.Compute(p, 10)
		done = p.Now()
	})
	k.Run()
	if !approx(done, 5, 1e-9) {
		t.Fatalf("finished at %v, want 5", done)
	}
}

func TestTwoEqualJobsShareEvenly(t *testing.T) {
	k := des.New()
	h := NewHost(k, "sun", 1)
	var doneA, doneB float64
	k.Spawn("a", func(p *des.Proc) { h.Compute(p, 1); doneA = p.Now() })
	k.Spawn("b", func(p *des.Proc) { h.Compute(p, 1); doneB = p.Now() })
	k.Run()
	if !approx(doneA, 2, 1e-9) || !approx(doneB, 2, 1e-9) {
		t.Fatalf("finished at %v/%v, want 2/2", doneA, doneB)
	}
}

func TestLateArrivalSharesRemainder(t *testing.T) {
	// A (work 2) starts at 0; B (work 1) arrives at t=1. A then has 1
	// unit left; both run at rate 1/2 and finish together at t=3.
	k := des.New()
	h := NewHost(k, "sun", 1)
	var doneA, doneB float64
	k.Spawn("a", func(p *des.Proc) { h.Compute(p, 2); doneA = p.Now() })
	k.Spawn("b", func(p *des.Proc) {
		p.Delay(1)
		h.Compute(p, 1)
		doneB = p.Now()
	})
	k.Run()
	if !approx(doneA, 3, 1e-9) || !approx(doneB, 3, 1e-9) {
		t.Fatalf("finished at %v/%v, want 3/3", doneA, doneB)
	}
}

func TestSlowdownIsPPlusOne(t *testing.T) {
	// The paper's central CM2 observation: with p extra CPU-bound
	// processes, a task runs p+1 times slower.
	for _, p := range []int{0, 1, 2, 3, 5} {
		k := des.New()
		h := NewHost(k, "sun", 1)
		const work = 4.0
		var done float64
		k.Spawn("task", func(pr *des.Proc) {
			h.Compute(pr, work)
			done = pr.Now()
		})
		for i := 0; i < p; i++ {
			k.Spawn("hog", func(pr *des.Proc) {
				h.Compute(pr, 1e9) // effectively infinite
			})
		}
		k.RunUntil(work * float64(p+2)) // enough horizon for the task
		want := work * float64(p+1)
		if !approx(done, want, 1e-6) {
			t.Fatalf("p=%d: finished at %v, want %v", p, done, want)
		}
	}
}

func TestWeightedSharing(t *testing.T) {
	// Weight-2 job gets 2/3 of the CPU against a weight-1 job.
	k := des.New()
	h := NewHost(k, "sun", 1)
	var doneHeavy float64
	k.Spawn("heavy", func(p *des.Proc) {
		h.ComputeWeighted(p, 2, 2)
		doneHeavy = p.Now()
	})
	k.Spawn("light", func(p *des.Proc) {
		h.ComputeWeighted(p, 10, 1)
	})
	k.RunUntil(4)
	if !approx(doneHeavy, 3, 1e-9) {
		t.Fatalf("heavy finished at %v, want 3", doneHeavy)
	}
}

func TestZeroWorkReturnsImmediately(t *testing.T) {
	k := des.New()
	h := NewHost(k, "sun", 1)
	var done float64
	k.Spawn("a", func(p *des.Proc) {
		h.Compute(p, 0)
		done = p.Now()
	})
	k.Run()
	if done != 0 {
		t.Fatalf("zero work finished at %v, want 0", done)
	}
}

func TestComputeAsyncCallback(t *testing.T) {
	k := des.New()
	h := NewHost(k, "sun", 1)
	var at float64
	h.ComputeAsync(3, func() { at = k.Now() })
	k.Run()
	if !approx(at, 3, 1e-9) {
		t.Fatalf("async done at %v, want 3", at)
	}
}

func TestComputeAsyncZeroWork(t *testing.T) {
	k := des.New()
	h := NewHost(k, "sun", 1)
	called := false
	h.ComputeAsync(0, func() { called = true })
	k.Run()
	if !called {
		t.Fatal("zero-work async callback not invoked")
	}
}

func TestAsyncAndProcJobsShare(t *testing.T) {
	k := des.New()
	h := NewHost(k, "sun", 1)
	var procDone, asyncDone float64
	k.Spawn("a", func(p *des.Proc) {
		h.Compute(p, 1)
		procDone = p.Now()
	})
	h.ComputeAsync(1, func() { asyncDone = k.Now() })
	k.Run()
	if !approx(procDone, 2, 1e-9) || !approx(asyncDone, 2, 1e-9) {
		t.Fatalf("done at %v/%v, want 2/2", procDone, asyncDone)
	}
}

func TestBusyTimeAndAvgLoad(t *testing.T) {
	k := des.New()
	h := NewHost(k, "sun", 1)
	k.Spawn("a", func(p *des.Proc) { h.Compute(p, 2) })
	k.Spawn("b", func(p *des.Proc) { h.Compute(p, 2) })
	// Both share: finish at t=4. Then idle until t=10 via a timer proc.
	k.Spawn("idler", func(p *des.Proc) { p.Delay(10) })
	k.Run()
	if got := h.BusyTime(); !approx(got, 4, 1e-9) {
		t.Fatalf("BusyTime = %v, want 4", got)
	}
	if got := h.AvgLoad(); !approx(got, 0.8, 1e-9) { // 2 jobs × 4s / 10s
		t.Fatalf("AvgLoad = %v, want 0.8", got)
	}
	if h.Completed() != 2 {
		t.Fatalf("Completed = %d, want 2", h.Completed())
	}
}

func TestInvalidArgumentsPanic(t *testing.T) {
	k := des.New()
	cases := []func(){
		func() { NewHost(k, "x", 0) },
		func() { NewHost(k, "x", math.NaN()) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
	h := NewHost(k, "sun", 1)
	k.Spawn("bad", func(p *des.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("negative work did not panic")
			}
		}()
		h.Compute(p, -1)
	})
	k.Run()
}

// Property: total completion time of n equal simultaneous jobs equals
// n × work / speed (PS conserves work), and all jobs finish together.
func TestPSConservesWorkProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		work := 0.5 + r.Float64()*4
		speed := 0.5 + r.Float64()*4
		k := des.New()
		h := NewHost(k, "sun", speed)
		times := make([]float64, 0, n)
		for i := 0; i < n; i++ {
			k.Spawn("j", func(p *des.Proc) {
				h.Compute(p, work)
				times = append(times, p.Now())
			})
		}
		k.Run()
		want := float64(n) * work / speed
		for _, at := range times {
			if !approx(at, want, 1e-6) {
				return false
			}
		}
		return len(times) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: staggered arrivals — each job's response time is at least
// work/speed (no job can beat dedicated speed) and total busy time
// equals total work / speed.
func TestPSWorkConservationStaggeredProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(6)
		k := des.New()
		h := NewHost(k, "sun", 1)
		type rec struct{ start, end, work float64 }
		recs := make([]*rec, n)
		totalWork := 0.0
		for i := 0; i < n; i++ {
			w := 0.1 + r.Float64()*2
			start := r.Float64() * 3
			totalWork += w
			rc := &rec{work: w}
			recs[i] = rc
			k.Spawn("j", func(p *des.Proc) {
				p.Delay(start)
				rc.start = p.Now()
				h.Compute(p, w)
				rc.end = p.Now()
			})
		}
		k.Run()
		for _, rc := range recs {
			if rc.end-rc.start < rc.work-1e-9 {
				return false
			}
		}
		return approx(h.BusyTime(), totalWork, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestStallFreezesProgress(t *testing.T) {
	// A job with 2 units of work at speed 1 is stalled for 3 seconds at
	// t=1: it finishes at 1 + 3 + 1 = 5, not 2.
	k := des.New()
	h := NewHost(k, "sun", 1)
	var done float64
	k.Spawn("a", func(p *des.Proc) { h.Compute(p, 2); done = p.Now() })
	k.At(1, func() { h.Stall(3) })
	k.Run()
	if !approx(done, 5, 1e-9) {
		t.Fatalf("finished at %v, want 5", done)
	}
	if h.Stalls() != 1 {
		t.Fatalf("Stalls() = %d, want 1", h.Stalls())
	}
}

func TestOverlappingStallsMerge(t *testing.T) {
	// Two overlapping stalls [1,4) and [2,6) freeze [1,6): a 2-unit job
	// finishes at 1 + 5 + 1 = 7.
	k := des.New()
	h := NewHost(k, "sun", 1)
	var done float64
	k.Spawn("a", func(p *des.Proc) { h.Compute(p, 2); done = p.Now() })
	k.At(1, func() { h.Stall(3) })
	k.At(2, func() { h.Stall(4) })
	k.Run()
	if !approx(done, 7, 1e-9) {
		t.Fatalf("finished at %v, want 7", done)
	}
	if h.Stalls() != 2 {
		t.Fatalf("Stalls() = %d, want 2", h.Stalls())
	}
}

func TestStallKeepsBusyAccounting(t *testing.T) {
	// A stalled host with a resident job is busy, not idle: load and
	// busy-time integrate through the stall window.
	k := des.New()
	h := NewHost(k, "sun", 1)
	k.Spawn("a", func(p *des.Proc) { h.Compute(p, 1) })
	k.At(0.5, func() { h.Stall(2) })
	k.Run()
	if !approx(h.BusyTime(), 3, 1e-9) {
		t.Fatalf("BusyTime = %v, want 3 (stall included)", h.BusyTime())
	}
	if !approx(h.LoadIntegral(), 3, 1e-9) {
		t.Fatalf("LoadIntegral = %v, want 3", h.LoadIntegral())
	}
}

func TestStallOnIdleHostDelaysNextJob(t *testing.T) {
	// A stall beginning while the host is idle delays work arriving
	// mid-window.
	k := des.New()
	h := NewHost(k, "sun", 1)
	k.At(0, func() { h.Stall(2) })
	var done float64
	k.Spawn("late", func(p *des.Proc) {
		p.Delay(1)
		h.Compute(p, 1)
		done = p.Now()
	})
	k.Run()
	if !approx(done, 3, 1e-9) {
		t.Fatalf("finished at %v, want 3 (1 wait + 1 work after stall ends at 2)", done)
	}
	if h.Stalled() {
		t.Fatal("host still stalled after window")
	}
}

func TestStallValidation(t *testing.T) {
	k := des.New()
	h := NewHost(k, "sun", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("negative stall accepted")
		}
	}()
	h.Stall(-1)
}
