package cpu

import (
	"fmt"
	"math"
)

// Memory support — the paper's first listed extension ("we are
// currently extending our model to include memory constraints"; its
// base model assumes every working set fits in memory). A host may be
// configured with a memory size; applications reserve working-set pages
// while resident. When reservations exceed memory, every resident job's
// effective speed degrades by a paging factor — a deliberately simple
// linear thrashing law that the model in package core mirrors.

// MemoryConfig describes host memory for the paging extension.
type MemoryConfig struct {
	// Pages is the physical memory size in pages.
	Pages int
	// Thrash scales the slowdown per fraction of oversubscription:
	// factor = 1 + Thrash × max(0, resident−Pages)/Pages.
	Thrash float64
}

// Validate checks the configuration.
func (m MemoryConfig) Validate() error {
	if m.Pages <= 0 {
		return fmt.Errorf("cpu: memory pages %d must be positive", m.Pages)
	}
	if m.Thrash < 0 || math.IsNaN(m.Thrash) {
		return fmt.Errorf("cpu: invalid thrash factor %v", m.Thrash)
	}
	return nil
}

// Factor returns the paging slowdown for a total residency.
func (m MemoryConfig) Factor(residentPages int) float64 {
	if m.Pages <= 0 || residentPages <= m.Pages {
		return 1
	}
	over := float64(residentPages-m.Pages) / float64(m.Pages)
	return 1 + m.Thrash*over
}

// ConfigureMemory enables the paging extension on the host. Calling it
// with jobs resident re-times them under the new law.
func (h *Host) ConfigureMemory(cfg MemoryConfig) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	h.advance()
	h.mem = cfg
	h.hasMem = true
	h.reschedule()
	return nil
}

// Memory reports the active memory configuration (zero Config, false if
// the extension is disabled).
func (h *Host) Memory() (MemoryConfig, bool) { return h.mem, h.hasMem }

// ResidentPages reports the total reserved working-set pages.
func (h *Host) ResidentPages() int { return h.resident }

// PagingFactor reports the current slowdown from memory pressure.
func (h *Host) PagingFactor() float64 {
	if !h.hasMem {
		return 1
	}
	return h.mem.Factor(h.resident)
}

// Residency is a working-set reservation held while an application is
// resident on the host.
type Residency struct {
	h        *Host
	pages    int
	released bool
}

// Reserve registers pages of working set. Oversubscription is allowed —
// that is the condition being modeled — and immediately slows every
// resident job.
func (h *Host) Reserve(pages int) (*Residency, error) {
	if pages < 0 {
		return nil, fmt.Errorf("cpu: negative working set %d", pages)
	}
	h.advance()
	h.resident += pages
	h.reschedule()
	return &Residency{h: h, pages: pages}, nil
}

// Pages reports the reservation size.
func (r *Residency) Pages() int { return r.pages }

// Release returns the pages. Idempotent.
func (r *Residency) Release() {
	if r.released {
		return
	}
	r.released = true
	r.h.advance()
	r.h.resident -= r.pages
	r.h.reschedule()
}
