package cpu

import (
	"math"
	"testing"

	"contention/internal/des"
)

func TestMemoryConfigFactor(t *testing.T) {
	m := MemoryConfig{Pages: 100, Thrash: 2}
	cases := []struct {
		resident int
		want     float64
	}{
		{0, 1}, {50, 1}, {100, 1}, {150, 2}, {200, 3},
	}
	for _, c := range cases {
		if got := m.Factor(c.resident); !approx(got, c.want, 1e-12) {
			t.Errorf("Factor(%d) = %v, want %v", c.resident, got, c.want)
		}
	}
}

func TestMemoryConfigValidate(t *testing.T) {
	bad := []MemoryConfig{
		{Pages: 0, Thrash: 1},
		{Pages: 10, Thrash: -1},
		{Pages: 10, Thrash: math.NaN()},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d did not error", i)
		}
	}
}

func TestHostWithoutMemoryExtensionIsUnaffected(t *testing.T) {
	k := des.New()
	h := NewHost(k, "sun", 1)
	if got := h.PagingFactor(); got != 1 {
		t.Fatalf("PagingFactor = %v without memory config", got)
	}
	if _, ok := h.Memory(); ok {
		t.Fatal("Memory() reports configured")
	}
}

func TestOversubscriptionSlowsComputation(t *testing.T) {
	k := des.New()
	h := NewHost(k, "sun", 1)
	if err := h.ConfigureMemory(MemoryConfig{Pages: 100, Thrash: 2}); err != nil {
		t.Fatal(err)
	}
	// Reserve 150 pages: 50% oversubscription → factor 2.
	r, err := h.Reserve(150)
	if err != nil {
		t.Fatal(err)
	}
	var done float64
	k.Spawn("a", func(p *des.Proc) {
		h.Compute(p, 1)
		done = p.Now()
	})
	k.Run()
	if !approx(done, 2, 1e-9) {
		t.Fatalf("job finished at %v, want 2 (paging factor 2)", done)
	}
	r.Release()
	if h.ResidentPages() != 0 {
		t.Fatalf("ResidentPages = %d after release", h.ResidentPages())
	}
}

func TestReleaseMidJobRestoresSpeed(t *testing.T) {
	// Factor 2 for the first second (0.5 work done), then release →
	// remaining 0.5 at full speed: total 1.5s.
	k := des.New()
	h := NewHost(k, "sun", 1)
	if err := h.ConfigureMemory(MemoryConfig{Pages: 100, Thrash: 2}); err != nil {
		t.Fatal(err)
	}
	var res *Residency
	k.Spawn("setup", func(p *des.Proc) {
		var err error
		res, err = h.Reserve(150)
		if err != nil {
			t.Error(err)
		}
		p.Delay(1)
		res.Release()
		res.Release() // idempotent
	})
	var done float64
	k.Spawn("a", func(p *des.Proc) {
		h.Compute(p, 1)
		done = p.Now()
	})
	k.Run()
	if !approx(done, 1.5, 1e-9) {
		t.Fatalf("job finished at %v, want 1.5", done)
	}
}

func TestReserveWithinMemoryIsFree(t *testing.T) {
	k := des.New()
	h := NewHost(k, "sun", 1)
	if err := h.ConfigureMemory(MemoryConfig{Pages: 100, Thrash: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Reserve(80); err != nil {
		t.Fatal(err)
	}
	var done float64
	k.Spawn("a", func(p *des.Proc) {
		h.Compute(p, 1)
		done = p.Now()
	})
	k.Run()
	if !approx(done, 1, 1e-9) {
		t.Fatalf("job finished at %v, want 1 (fits in memory)", done)
	}
}

func TestReserveNegativePagesErrors(t *testing.T) {
	k := des.New()
	h := NewHost(k, "sun", 1)
	if _, err := h.Reserve(-1); err == nil {
		t.Fatal("negative reserve accepted")
	}
}

func TestConfigureMemoryRejectsInvalid(t *testing.T) {
	k := des.New()
	h := NewHost(k, "sun", 1)
	if err := h.ConfigureMemory(MemoryConfig{Pages: 0}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestPagingCombinesWithProcessorSharing(t *testing.T) {
	// Two equal jobs + factor-2 paging: each runs at speed/4 → work 1
	// finishes at t=4.
	k := des.New()
	h := NewHost(k, "sun", 1)
	if err := h.ConfigureMemory(MemoryConfig{Pages: 100, Thrash: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Reserve(150); err != nil {
		t.Fatal(err)
	}
	var doneA, doneB float64
	k.Spawn("a", func(p *des.Proc) { h.Compute(p, 1); doneA = p.Now() })
	k.Spawn("b", func(p *des.Proc) { h.Compute(p, 1); doneB = p.Now() })
	k.Run()
	if !approx(doneA, 4, 1e-9) || !approx(doneB, 4, 1e-9) {
		t.Fatalf("finished at %v/%v, want 4/4", doneA, doneB)
	}
}
