// Package des implements a deterministic discrete-event simulation
// kernel used to emulate the coupled heterogeneous platforms of
// Figueira & Berman (HPDC'96).
//
// The kernel advances a virtual clock over a heap of cancelable events.
// Simulated activities are written as ordinary imperative Go functions
// running in "processes" (goroutines that the kernel resumes one at a
// time, so execution is sequential and fully deterministic). Resources
// such as processor-sharing CPUs and FCFS links are built on top of the
// kernel's event primitives in sibling packages.
//
// Determinism: exactly one goroutine (the kernel or a single process) is
// runnable at any instant; control transfers through unbuffered channel
// handshakes; simultaneous events fire in schedule order (a monotonically
// increasing sequence number breaks time ties).
package des
