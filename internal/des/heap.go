package des

// Event is a scheduled callback in virtual time. Events are created via
// Kernel.At / Kernel.After and may be canceled before they fire.
type Event struct {
	at       float64
	seq      uint64
	fn       func()
	index    int // position in the heap, -1 once fired or canceled
	canceled bool
}

// Time reports the virtual time at which the event is (or was) scheduled.
func (e *Event) Time() float64 { return e.at }

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e.canceled }

// eventHeap is a binary min-heap ordered by (time, sequence). It is
// hand-rolled rather than using container/heap to keep the index
// bookkeeping explicit and allocation-free on the hot path.
type eventHeap struct {
	items []*Event
}

func (h *eventHeap) len() int { return len(h.items) }

func (h *eventHeap) less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (h *eventHeap) swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.items[i].index = i
	h.items[j].index = j
}

func (h *eventHeap) push(e *Event) {
	e.index = len(h.items)
	h.items = append(h.items, e)
	h.up(e.index)
}

func (h *eventHeap) pop() *Event {
	n := len(h.items)
	if n == 0 {
		return nil
	}
	top := h.items[0]
	h.swap(0, n-1)
	h.items[n-1] = nil
	h.items = h.items[:n-1]
	if len(h.items) > 0 {
		h.down(0)
	}
	top.index = -1
	return top
}

// remove deletes the event at position i, restoring heap order.
func (h *eventHeap) remove(i int) {
	n := len(h.items)
	if i < 0 || i >= n {
		return
	}
	h.items[i].index = -1
	if i == n-1 {
		h.items[n-1] = nil
		h.items = h.items[:n-1]
		return
	}
	h.swap(i, n-1)
	h.items[n-1] = nil
	h.items = h.items[:n-1]
	if !h.down(i) {
		h.up(i)
	}
}

func (h *eventHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

// down sifts the item at i toward the leaves. It reports whether the
// item moved.
func (h *eventHeap) down(i int) bool {
	start := i
	n := len(h.items)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		smallest := left
		if right := left + 1; right < n && h.less(right, left) {
			smallest = right
		}
		if !h.less(smallest, i) {
			break
		}
		h.swap(i, smallest)
		i = smallest
	}
	return i != start
}
