package des

import "fmt"

// Kernel is the discrete-event simulation core: a virtual clock plus a
// heap of pending events. A Kernel is not safe for concurrent use; all
// interaction happens either before Run or from within event callbacks
// and processes, which the kernel serializes.
type Kernel struct {
	now   float64
	seq   uint64
	heap  eventHeap
	yield chan struct{} // handshake: a process hands control back here

	running  bool
	stopped  bool
	procs    int // live processes (diagnostics)
	maxTime  float64
	hasLimit bool
}

// New returns an empty kernel with the clock at zero.
func New() *Kernel {
	return &Kernel{yield: make(chan struct{})}
}

// Now reports the current virtual time in seconds.
func (k *Kernel) Now() float64 { return k.now }

// At schedules fn to run at absolute virtual time t. Scheduling in the
// past panics: it indicates a simulation logic error, not a recoverable
// condition.
func (k *Kernel) At(t float64, fn func()) *Event {
	if t < k.now {
		panic(fmt.Sprintf("des: schedule at %v before now %v", t, k.now))
	}
	k.seq++
	e := &Event{at: t, seq: k.seq, fn: fn}
	k.heap.push(e)
	return e
}

// After schedules fn to run d seconds from now.
func (k *Kernel) After(d float64, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("des: negative delay %v", d))
	}
	return k.At(k.now+d, fn)
}

// Cancel removes a pending event. Canceling an event that already fired
// or was already canceled is a no-op.
func (k *Kernel) Cancel(e *Event) {
	if e == nil || e.canceled || e.index < 0 {
		if e != nil {
			e.canceled = true
		}
		return
	}
	e.canceled = true
	k.heap.remove(e.index)
}

// Stop makes Run return after the current event completes.
func (k *Kernel) Stop() { k.stopped = true }

// Run executes events in time order until the heap drains, Stop is
// called, or the optional time limit set by RunUntil is reached.
func (k *Kernel) Run() {
	if k.running {
		panic("des: Run called reentrantly")
	}
	k.running = true
	defer func() { k.running = false }()
	for k.heap.len() > 0 && !k.stopped {
		e := k.heap.pop()
		if e.canceled {
			continue
		}
		if k.hasLimit && e.at > k.maxTime {
			// Push back so a later RunUntil with a larger horizon
			// still sees the event.
			k.heap.push(e)
			k.now = k.maxTime
			return
		}
		k.now = e.at
		e.fn()
	}
}

// RunUntil executes events with timestamps ≤ t, then leaves the clock at
// min(t, time of last event). Remaining events stay queued.
func (k *Kernel) RunUntil(t float64) {
	k.maxTime, k.hasLimit = t, true
	defer func() { k.hasLimit = false }()
	k.Run()
}

// Pending reports the number of queued events (canceled events that have
// not yet been popped are excluded).
func (k *Kernel) Pending() int {
	n := 0
	for _, e := range k.heap.items {
		if e != nil && !e.canceled {
			n++
		}
	}
	return n
}

// Procs reports the number of live processes (spawned and not finished).
func (k *Kernel) Procs() int { return k.procs }
