package des

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestKernelStartsAtZero(t *testing.T) {
	k := New()
	if got := k.Now(); got != 0 {
		t.Fatalf("Now() = %v, want 0", got)
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	k := New()
	var order []float64
	for _, d := range []float64{3, 1, 2, 5, 4} {
		d := d
		k.After(d, func() { order = append(order, d) })
	}
	k.Run()
	if !sort.Float64sAreSorted(order) {
		t.Fatalf("events fired out of order: %v", order)
	}
	if len(order) != 5 {
		t.Fatalf("fired %d events, want 5", len(order))
	}
	if k.Now() != 5 {
		t.Fatalf("clock = %v, want 5", k.Now())
	}
}

func TestSimultaneousEventsFireInScheduleOrder(t *testing.T) {
	k := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(7, func() { order = append(order, i) })
	}
	k.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break order = %v, want ascending schedule order", order)
		}
	}
}

func TestCancelPreventsFiring(t *testing.T) {
	k := New()
	fired := false
	e := k.After(1, func() { fired = true })
	k.Cancel(e)
	k.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
	if !e.Canceled() {
		t.Fatal("Canceled() = false after Cancel")
	}
}

func TestCancelIsIdempotentAndSafeAfterFire(t *testing.T) {
	k := New()
	e := k.After(1, func() {})
	k.Run()
	k.Cancel(e) // after fire: no-op
	k.Cancel(e) // again: no-op
	k.Cancel(nil)
}

func TestCancelMiddleOfHeap(t *testing.T) {
	k := New()
	var fired []int
	events := make([]*Event, 20)
	for i := range events {
		i := i
		events[i] = k.After(float64(i+1), func() { fired = append(fired, i) })
	}
	// Cancel every third event.
	for i := 0; i < len(events); i += 3 {
		k.Cancel(events[i])
	}
	k.Run()
	for _, v := range fired {
		if v%3 == 0 {
			t.Fatalf("canceled event %d fired", v)
		}
	}
	if len(fired) != 13 {
		t.Fatalf("fired %d events, want 13", len(fired))
	}
}

func TestEventSchedulingFromWithinEvent(t *testing.T) {
	k := New()
	var times []float64
	k.After(1, func() {
		k.After(1, func() { times = append(times, k.Now()) })
	})
	k.Run()
	if len(times) != 1 || times[0] != 2 {
		t.Fatalf("nested event fired at %v, want [2]", times)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	k := New()
	k.After(5, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		k.At(1, func() {})
	})
	k.Run()
}

func TestNegativeDelayPanics(t *testing.T) {
	k := New()
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	k.After(-1, func() {})
}

func TestRunUntilStopsAtHorizon(t *testing.T) {
	k := New()
	var fired []float64
	for _, d := range []float64{1, 2, 3, 4} {
		d := d
		k.After(d, func() { fired = append(fired, d) })
	}
	k.RunUntil(2.5)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 1 and 2 only", fired)
	}
	if k.Now() != 2.5 {
		t.Fatalf("clock = %v, want 2.5", k.Now())
	}
	k.Run() // drain the rest
	if len(fired) != 4 {
		t.Fatalf("after full Run fired %v, want all 4", fired)
	}
}

func TestStopHaltsRun(t *testing.T) {
	k := New()
	count := 0
	for i := 1; i <= 10; i++ {
		k.After(float64(i), func() {
			count++
			if count == 3 {
				k.Stop()
			}
		})
	}
	k.Run()
	if count != 3 {
		t.Fatalf("processed %d events after Stop, want 3", count)
	}
}

func TestPendingCountsQueuedEvents(t *testing.T) {
	k := New()
	e1 := k.After(1, func() {})
	k.After(2, func() {})
	if got := k.Pending(); got != 2 {
		t.Fatalf("Pending = %d, want 2", got)
	}
	k.Cancel(e1)
	if got := k.Pending(); got != 1 {
		t.Fatalf("Pending after cancel = %d, want 1", got)
	}
}

// Property: for any set of non-negative delays, events fire in
// nondecreasing time order and the final clock equals the max delay.
func TestEventOrderProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		k := New()
		var fired []float64
		max := 0.0
		for _, r := range raw {
			d := float64(r) / 16.0
			if d > max {
				max = d
			}
			k.After(d, func() { fired = append(fired, d) })
		}
		k.Run()
		return sort.Float64sAreSorted(fired) && len(fired) == len(raw) && k.Now() == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: canceling a random subset leaves exactly the complement to fire.
func TestCancelSubsetProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		k := New()
		n := 1 + rng.Intn(64)
		events := make([]*Event, n)
		fired := make([]bool, n)
		for i := 0; i < n; i++ {
			i := i
			events[i] = k.After(rng.Float64()*100, func() { fired[i] = true })
		}
		canceled := make([]bool, n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				canceled[i] = true
				k.Cancel(events[i])
			}
		}
		k.Run()
		for i := 0; i < n; i++ {
			if fired[i] == canceled[i] {
				t.Fatalf("trial %d event %d: fired=%v canceled=%v", trial, i, fired[i], canceled[i])
			}
		}
	}
}

func TestHeapRemoveStress(t *testing.T) {
	// Exercise removals at arbitrary heap positions.
	rng := rand.New(rand.NewSource(7))
	var h eventHeap
	var live []*Event
	for i := 0; i < 500; i++ {
		e := &Event{at: rng.Float64() * 1000, seq: uint64(i)}
		h.push(e)
		live = append(live, e)
	}
	// Remove 250 random events.
	for i := 0; i < 250; i++ {
		j := rng.Intn(len(live))
		e := live[j]
		live = append(live[:j], live[j+1:]...)
		h.remove(e.index)
	}
	// Drain and check sortedness.
	prev := -1.0
	count := 0
	for h.len() > 0 {
		e := h.pop()
		if e.at < prev {
			t.Fatalf("heap pop out of order: %v after %v", e.at, prev)
		}
		prev = e.at
		count++
	}
	if count != 250 {
		t.Fatalf("drained %d events, want 250", count)
	}
}
