package des

import "fmt"

// Proc is a simulated process: a goroutine whose execution the kernel
// interleaves with events deterministically. At most one process (or the
// kernel) runs at a time; a process gives up control by parking (Delay,
// mailbox receive, resource acquisition) and is resumed by kernel events.
type Proc struct {
	k    *Kernel
	name string
	wake chan struct{}
	dead bool
}

// Name reports the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Kernel returns the kernel the process belongs to.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now is shorthand for p.Kernel().Now().
func (p *Proc) Now() float64 { return p.k.now }

// Spawn creates a process executing body. The body starts at the current
// virtual time, after already-queued events at that time.
func (k *Kernel) Spawn(name string, body func(p *Proc)) *Proc {
	p := &Proc{k: k, name: name, wake: make(chan struct{})}
	k.procs++
	k.After(0, func() {
		go func() {
			defer func() {
				p.dead = true
				k.procs--
				k.yield <- struct{}{}
			}()
			body(p)
		}()
		<-k.yield // wait until the process parks or finishes
	})
	return p
}

// park suspends the process until something resumes it. Must only be
// called from the process's own goroutine.
func (p *Proc) park() {
	p.k.yield <- struct{}{}
	<-p.wake
}

// Park suspends the process until another simulation context calls
// Resume. It is the low-level hook for resource implementations in
// other packages (CPU hosts, links); application code should prefer the
// higher-level primitives.
func (p *Proc) Park() { p.park() }

// resume transfers control to a parked process and waits for it to park
// again or finish. Must only be called from kernel context (inside an
// event callback), never from another process.
func (p *Proc) resume() {
	if p.dead {
		panic(fmt.Sprintf("des: resume of dead process %q", p.name))
	}
	p.wake <- struct{}{}
	<-p.k.yield
}

// Resume schedules the process to be woken at the current virtual time.
// Safe to call from any simulation context (event or another process).
func (p *Proc) Resume() {
	p.k.After(0, func() { p.resume() })
}

// Delay advances the process by d seconds of virtual time.
func (p *Proc) Delay(d float64) {
	if d < 0 {
		panic(fmt.Sprintf("des: negative delay %v", d))
	}
	if d == 0 {
		// Still yield so same-time events interleave fairly.
		p.k.After(0, func() { p.resume() })
		p.park()
		return
	}
	p.k.After(d, func() { p.resume() })
	p.park()
}

// waiter is the unit parked in wait queues: resuming it hands control to
// the process via the kernel.
type waiter struct {
	p *Proc
}

// waitQueue is a FIFO of parked processes used by the synchronization
// primitives and resources.
type waitQueue struct {
	ws []*waiter
}

func (q *waitQueue) empty() bool { return len(q.ws) == 0 }
func (q *waitQueue) len() int    { return len(q.ws) }

func (q *waitQueue) push(p *Proc) *waiter {
	w := &waiter{p: p}
	q.ws = append(q.ws, w)
	return w
}

func (q *waitQueue) pop() *waiter {
	if len(q.ws) == 0 {
		return nil
	}
	w := q.ws[0]
	q.ws = q.ws[1:]
	return w
}

// remove deletes a specific waiter (used for timeouts); reports success.
func (q *waitQueue) remove(w *waiter) bool {
	for i, x := range q.ws {
		if x == w {
			q.ws = append(q.ws[:i], q.ws[i+1:]...)
			return true
		}
	}
	return false
}
