package des

import (
	"testing"
)

func TestProcDelayAdvancesClock(t *testing.T) {
	k := New()
	var at []float64
	k.Spawn("a", func(p *Proc) {
		p.Delay(1.5)
		at = append(at, p.Now())
		p.Delay(2.5)
		at = append(at, p.Now())
	})
	k.Run()
	if len(at) != 2 || at[0] != 1.5 || at[1] != 4.0 {
		t.Fatalf("observed times %v, want [1.5 4]", at)
	}
}

func TestProcZeroDelayYields(t *testing.T) {
	k := New()
	var order []string
	k.Spawn("a", func(p *Proc) {
		order = append(order, "a1")
		p.Delay(0)
		order = append(order, "a2")
	})
	k.Spawn("b", func(p *Proc) {
		order = append(order, "b1")
		p.Delay(0)
		order = append(order, "b2")
	})
	k.Run()
	want := []string{"a1", "b1", "a2", "b2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("interleave = %v, want %v", order, want)
		}
	}
}

func TestProcsInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		k := New()
		var order []string
		for _, name := range []string{"x", "y", "z"} {
			name := name
			k.Spawn(name, func(p *Proc) {
				for i := 0; i < 3; i++ {
					p.Delay(1)
					order = append(order, name)
				}
			})
		}
		k.Run()
		return order
	}
	a, b := run(), run()
	if len(a) != 9 {
		t.Fatalf("got %d steps, want 9", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic interleave: %v vs %v", a, b)
		}
	}
}

func TestProcCountTracksLifetimes(t *testing.T) {
	k := New()
	k.Spawn("short", func(p *Proc) { p.Delay(1) })
	k.Spawn("long", func(p *Proc) { p.Delay(10) })
	k.RunUntil(5)
	if got := k.Procs(); got != 1 {
		t.Fatalf("Procs at t=5: %d, want 1", got)
	}
	k.Run()
	if got := k.Procs(); got != 0 {
		t.Fatalf("Procs at end: %d, want 0", got)
	}
}

func TestMailboxDeliversFIFO(t *testing.T) {
	k := New()
	mb := NewMailbox[int](k, "mb")
	var got []int
	k.Spawn("recv", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, mb.Recv(p))
		}
	})
	k.Spawn("send", func(p *Proc) {
		for i := 1; i <= 3; i++ {
			p.Delay(1)
			mb.Send(i * 10)
		}
	})
	k.Run()
	if len(got) != 3 || got[0] != 10 || got[1] != 20 || got[2] != 30 {
		t.Fatalf("received %v, want [10 20 30]", got)
	}
}

func TestMailboxRecvBlocksUntilSend(t *testing.T) {
	k := New()
	mb := NewMailbox[string](k, "mb")
	var recvAt float64
	k.Spawn("recv", func(p *Proc) {
		mb.Recv(p)
		recvAt = p.Now()
	})
	k.Spawn("send", func(p *Proc) {
		p.Delay(3)
		mb.Send("hi")
	})
	k.Run()
	if recvAt != 3 {
		t.Fatalf("receive completed at %v, want 3", recvAt)
	}
}

func TestMailboxTryRecv(t *testing.T) {
	k := New()
	mb := NewMailbox[int](k, "mb")
	if _, ok := mb.TryRecv(); ok {
		t.Fatal("TryRecv on empty mailbox returned ok")
	}
	mb.Send(1)
	if v, ok := mb.TryRecv(); !ok || v != 1 {
		t.Fatalf("TryRecv = (%v,%v), want (1,true)", v, ok)
	}
	if mb.Len() != 0 {
		t.Fatalf("Len = %d after drain, want 0", mb.Len())
	}
}

func TestSemaphoreLimitsConcurrency(t *testing.T) {
	k := New()
	sem := NewSemaphore(k, 2)
	active, peak := 0, 0
	for i := 0; i < 5; i++ {
		k.Spawn("w", func(p *Proc) {
			sem.Acquire(p)
			active++
			if active > peak {
				peak = active
			}
			p.Delay(1)
			active--
			sem.Release()
		})
	}
	k.Run()
	if peak != 2 {
		t.Fatalf("peak concurrency = %d, want 2", peak)
	}
	if k.Now() != 3 { // ceil(5/2) waves of 1s each
		t.Fatalf("finished at %v, want 3", k.Now())
	}
	if sem.Available() != 2 {
		t.Fatalf("Available = %d at end, want 2", sem.Available())
	}
}

func TestSemaphoreFIFOOrder(t *testing.T) {
	k := New()
	sem := NewSemaphore(k, 1)
	var order []int
	for i := 0; i < 4; i++ {
		i := i
		k.Spawn("w", func(p *Proc) {
			p.Delay(float64(i) * 0.001) // stagger arrival
			sem.Acquire(p)
			order = append(order, i)
			p.Delay(1)
			sem.Release()
		})
	}
	k.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("service order = %v, want FIFO", order)
		}
	}
}

func TestSemaphoreTryAcquire(t *testing.T) {
	k := New()
	sem := NewSemaphore(k, 1)
	if !sem.TryAcquire() {
		t.Fatal("TryAcquire failed with a free permit")
	}
	if sem.TryAcquire() {
		t.Fatal("TryAcquire succeeded with no permits")
	}
	sem.Release()
	if sem.Available() != 1 {
		t.Fatalf("Available = %d, want 1", sem.Available())
	}
}

func TestBarrierReleasesAllAtOnce(t *testing.T) {
	k := New()
	b := NewBarrier(k, 3)
	var times []float64
	for i := 0; i < 3; i++ {
		i := i
		k.Spawn("w", func(p *Proc) {
			p.Delay(float64(i + 1))
			b.Await(p)
			times = append(times, p.Now())
		})
	}
	k.Run()
	if len(times) != 3 {
		t.Fatalf("released %d procs, want 3", len(times))
	}
	for _, at := range times {
		if at != 3 {
			t.Fatalf("release times %v, want all at 3", times)
		}
	}
	if b.Cycles() != 1 {
		t.Fatalf("Cycles = %d, want 1", b.Cycles())
	}
}

func TestBarrierIsCyclic(t *testing.T) {
	k := New()
	b := NewBarrier(k, 2)
	count := 0
	for i := 0; i < 2; i++ {
		k.Spawn("w", func(p *Proc) {
			for round := 0; round < 3; round++ {
				p.Delay(1)
				b.Await(p)
				count++
			}
		})
	}
	k.Run()
	if count != 6 {
		t.Fatalf("total barrier passes = %d, want 6", count)
	}
	if b.Cycles() != 3 {
		t.Fatalf("Cycles = %d, want 3", b.Cycles())
	}
}

func TestLatchReleasesEarlyAndLateWaiters(t *testing.T) {
	k := New()
	l := NewLatch(k)
	var times []float64
	k.Spawn("early", func(p *Proc) {
		l.Wait(p)
		times = append(times, p.Now())
	})
	k.Spawn("opener", func(p *Proc) {
		p.Delay(2)
		l.Open()
	})
	k.Spawn("late", func(p *Proc) {
		p.Delay(5)
		l.Wait(p) // already open: returns immediately
		times = append(times, p.Now())
	})
	k.Run()
	if len(times) != 2 || times[0] != 2 || times[1] != 5 {
		t.Fatalf("wait completions %v, want [2 5]", times)
	}
	if !l.Opened() {
		t.Fatal("latch should report opened")
	}
}

func TestResumeWakesParkedViaDelayIndirectly(t *testing.T) {
	// A process parked in a mailbox is woken by a Send from an event
	// callback (kernel context), not another process.
	k := New()
	mb := NewMailbox[int](k, "mb")
	got := 0
	k.Spawn("r", func(p *Proc) { got = mb.Recv(p) })
	k.After(4, func() { mb.Send(99) })
	k.Run()
	if got != 99 {
		t.Fatalf("got %d, want 99", got)
	}
	if k.Now() != 4 {
		t.Fatalf("clock %v, want 4", k.Now())
	}
}
