package des

import (
	"fmt"
	"math/rand"
	"testing"
)

// stressRun drives a randomized mix of primitives (delays, semaphores,
// mailboxes, barriers) and returns an event journal. Two runs with the
// same seed must journal identically — the determinism guarantee the
// experiment reproducibility rests on.
func stressRun(seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	k := New()
	var journal []string
	log := func(format string, args ...any) {
		journal = append(journal, fmt.Sprintf(format, args...))
	}

	sem := NewSemaphore(k, 1+rng.Intn(3))
	mb := NewMailbox[int](k, "mb")
	nProcs := 3 + rng.Intn(5)
	bar := NewBarrier(k, nProcs)

	for i := 0; i < nProcs; i++ {
		i := i
		steps := 3 + rng.Intn(5)
		delays := make([]float64, steps)
		for j := range delays {
			delays[j] = rng.Float64() * 2
		}
		k.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			for j, d := range delays {
				p.Delay(d)
				switch j % 4 {
				case 0:
					sem.Acquire(p)
					log("p%d acquired at %.6f", i, p.Now())
					p.Delay(0.1)
					sem.Release()
				case 1:
					mb.Send(i*100 + j)
					log("p%d sent at %.6f", i, p.Now())
				case 2:
					if v, ok := mb.TryRecv(); ok {
						log("p%d recv %d at %.6f", i, v, p.Now())
					}
				case 3:
					log("p%d step at %.6f", i, p.Now())
				}
			}
			bar.Await(p)
			log("p%d through barrier at %.6f", i, p.Now())
		})
	}
	k.Run()
	return journal
}

func TestStressDeterminism(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		a := stressRun(seed)
		b := stressRun(seed)
		if len(a) != len(b) {
			t.Fatalf("seed %d: journal lengths %d vs %d", seed, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d: journals diverge at %d:\n%s\nvs\n%s", seed, i, a[i], b[i])
			}
		}
		if len(a) == 0 {
			t.Fatalf("seed %d: empty journal", seed)
		}
	}
}

func TestStressDifferentSeedsDiffer(t *testing.T) {
	a := stressRun(1)
	b := stressRun(2)
	same := len(a) == len(b)
	if same {
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical journals — RNG not wired through")
	}
}

func TestStressAllProcsFinish(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		k := New()
		n := 2 + rng.Intn(6)
		finished := 0
		for i := 0; i < n; i++ {
			k.Spawn("p", func(p *Proc) {
				for j := 0; j < 5; j++ {
					p.Delay(rng.Float64())
				}
				finished++
			})
		}
		k.Run()
		if finished != n {
			t.Fatalf("seed %d: %d/%d procs finished", seed, finished, n)
		}
		if k.Procs() != 0 {
			t.Fatalf("seed %d: %d procs leaked", seed, k.Procs())
		}
	}
}
