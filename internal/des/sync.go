package des

// Mailbox is an unbounded FIFO message queue between processes. Sends
// never block; receives park the caller until a message arrives.
type Mailbox[T any] struct {
	k     *Kernel
	name  string
	msgs  []T
	queue waitQueue
}

// NewMailbox returns an empty mailbox bound to k.
func NewMailbox[T any](k *Kernel, name string) *Mailbox[T] {
	return &Mailbox[T]{k: k, name: name}
}

// Len reports the number of queued messages.
func (m *Mailbox[T]) Len() int { return len(m.msgs) }

// Send enqueues v and wakes one parked receiver, if any. Send is safe to
// call from event callbacks as well as processes.
func (m *Mailbox[T]) Send(v T) {
	m.msgs = append(m.msgs, v)
	if w := m.queue.pop(); w != nil {
		w.p.Resume()
	}
}

// Recv returns the oldest message, parking p until one is available.
func (m *Mailbox[T]) Recv(p *Proc) T {
	for len(m.msgs) == 0 {
		m.queue.push(p)
		p.park()
	}
	v := m.msgs[0]
	m.msgs = m.msgs[1:]
	return v
}

// TryRecv returns the oldest message without blocking.
func (m *Mailbox[T]) TryRecv() (T, bool) {
	var zero T
	if len(m.msgs) == 0 {
		return zero, false
	}
	v := m.msgs[0]
	m.msgs = m.msgs[1:]
	return v, true
}

// Semaphore is a counting semaphore for processes.
type Semaphore struct {
	k     *Kernel
	avail int
	queue waitQueue
}

// NewSemaphore returns a semaphore with n initial permits.
func NewSemaphore(k *Kernel, n int) *Semaphore {
	if n < 0 {
		panic("des: negative semaphore count")
	}
	return &Semaphore{k: k, avail: n}
}

// Acquire takes one permit, parking p until one is available. Waiters
// are served FIFO.
func (s *Semaphore) Acquire(p *Proc) {
	if s.avail > 0 && s.queue.empty() {
		s.avail--
		return
	}
	s.queue.push(p)
	p.park()
	// Ownership was transferred by Release; the permit is already ours.
}

// TryAcquire takes a permit if one is immediately available.
func (s *Semaphore) TryAcquire() bool {
	if s.avail > 0 && s.queue.empty() {
		s.avail--
		return true
	}
	return false
}

// Release returns one permit, waking the oldest waiter if any. The
// permit passes directly to the waiter (no barging).
func (s *Semaphore) Release() {
	if w := s.queue.pop(); w != nil {
		w.p.Resume()
		return
	}
	s.avail++
}

// Available reports the number of free permits.
func (s *Semaphore) Available() int { return s.avail }

// Waiting reports the number of parked acquirers.
func (s *Semaphore) Waiting() int { return s.queue.len() }

// Barrier parks processes until a target count arrive, then releases
// them all and resets (a cyclic barrier).
type Barrier struct {
	k      *Kernel
	target int
	n      int
	queue  waitQueue
	cycles int
}

// NewBarrier returns a barrier that trips every target arrivals.
func NewBarrier(k *Kernel, target int) *Barrier {
	if target <= 0 {
		panic("des: barrier target must be positive")
	}
	return &Barrier{k: k, target: target}
}

// Await blocks p until target processes have arrived.
func (b *Barrier) Await(p *Proc) {
	b.n++
	if b.n >= b.target {
		b.n = 0
		b.cycles++
		for {
			w := b.queue.pop()
			if w == nil {
				break
			}
			w.p.Resume()
		}
		return
	}
	b.queue.push(p)
	p.park()
}

// Cycles reports how many times the barrier has tripped.
func (b *Barrier) Cycles() int { return b.cycles }

// Latch is a one-shot completion signal: processes wait until Open is
// called; afterwards Wait returns immediately.
type Latch struct {
	k     *Kernel
	open  bool
	queue waitQueue
}

// NewLatch returns a closed latch.
func NewLatch(k *Kernel) *Latch { return &Latch{k: k} }

// Open releases all current and future waiters. Idempotent.
func (l *Latch) Open() {
	if l.open {
		return
	}
	l.open = true
	for {
		w := l.queue.pop()
		if w == nil {
			return
		}
		w.p.Resume()
	}
}

// Opened reports whether the latch has been opened.
func (l *Latch) Opened() bool { return l.open }

// Wait parks p until the latch opens.
func (l *Latch) Wait(p *Proc) {
	if l.open {
		return
	}
	l.queue.push(p)
	p.park()
}
