// Package disk models the front-end's local disk as an FCFS device
// with a per-operation seek and a transfer rate. It exists for the
// paper's I/O extension (§4: "we are currently extending our model to
// include … I/O operations") and for its §1 observation that load
// *characteristics* matter: an I/O-bound contender spends most of its
// time waiting on the device and therefore imposes far less CPU
// contention than a CPU-bound one — which the extended model captures
// through per-contender activity fractions.
package disk

import (
	"fmt"
	"math"

	"contention/internal/cpu"
	"contention/internal/des"
)

// Config describes the device.
type Config struct {
	Name string
	// Seek is the per-operation positioning time in seconds.
	Seek float64
	// Rate is the transfer rate in words per second.
	Rate float64
	// Host, when non-nil, is charged CPUPerOp of work per operation
	// (driver/interrupt overhead).
	Host *cpu.Host
	// CPUPerOp is the CPU work per operation on Host.
	CPUPerOp float64
}

func (c Config) validate() error {
	if c.Seek < 0 || math.IsNaN(c.Seek) {
		return fmt.Errorf("disk %q: invalid seek %v", c.Name, c.Seek)
	}
	if c.Rate <= 0 || math.IsNaN(c.Rate) {
		return fmt.Errorf("disk %q: rate %v must be positive", c.Name, c.Rate)
	}
	if c.CPUPerOp < 0 {
		return fmt.Errorf("disk %q: negative CPU per op %v", c.Name, c.CPUPerOp)
	}
	return nil
}

// Disk is the FCFS device.
type Disk struct {
	k   *des.Kernel
	cfg Config
	arm *des.Semaphore

	busyTime float64
	ops      int
	words    int
}

// New builds a disk from cfg.
func New(k *des.Kernel, cfg Config) (*Disk, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Disk{k: k, cfg: cfg, arm: des.NewSemaphore(k, 1)}, nil
}

// MustNew is New but panics on config errors.
func MustNew(k *des.Kernel, cfg Config) *Disk {
	d, err := New(k, cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// Config returns the device configuration.
func (d *Disk) Config() Config { return d.cfg }

// OpTime returns the dedicated duration of one operation.
func (d *Disk) OpTime(words int) float64 {
	if words < 0 {
		panic(fmt.Sprintf("disk: negative operation size %d", words))
	}
	return d.cfg.Seek + float64(words)/d.cfg.Rate
}

// Op performs one read/write of the given size, blocking p through the
// FCFS queue and the device time. The caller's CPU is idle meanwhile —
// the defining property of I/O-bound load.
func (d *Disk) Op(p *des.Proc, words int) {
	t := d.OpTime(words)
	if d.cfg.Host != nil && d.cfg.CPUPerOp > 0 {
		d.cfg.Host.Compute(p, d.cfg.CPUPerOp)
	}
	d.arm.Acquire(p)
	p.Delay(t)
	d.busyTime += t
	d.ops++
	d.words += words
	d.arm.Release()
}

// BusyTime reports cumulative device occupancy.
func (d *Disk) BusyTime() float64 { return d.busyTime }

// Ops reports completed operations.
func (d *Disk) Ops() int { return d.ops }

// WordsMoved reports total words transferred.
func (d *Disk) WordsMoved() int { return d.words }

// Utilization reports the device busy fraction since t=0.
func (d *Disk) Utilization() float64 {
	if now := d.k.Now(); now > 0 {
		return d.busyTime / now
	}
	return 0
}
