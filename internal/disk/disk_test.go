package disk

import (
	"math"
	"testing"

	"contention/internal/cpu"
	"contention/internal/des"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func testCfg() Config {
	return Config{Name: "sd0", Seek: 0.01, Rate: 1000}
}

func TestOpTime(t *testing.T) {
	k := des.New()
	d := MustNew(k, testCfg())
	if got, want := d.OpTime(100), 0.01+0.1; !approx(got, want, 1e-12) {
		t.Fatalf("OpTime = %v, want %v", got, want)
	}
}

func TestOpBlocksForDeviceTime(t *testing.T) {
	k := des.New()
	d := MustNew(k, testCfg())
	var done float64
	k.Spawn("a", func(p *des.Proc) {
		d.Op(p, 100) // 0.11s
		done = p.Now()
	})
	k.Run()
	if !approx(done, 0.11, 1e-9) {
		t.Fatalf("op finished at %v, want 0.11", done)
	}
	if d.Ops() != 1 || d.WordsMoved() != 100 {
		t.Fatalf("accounting ops=%d words=%d", d.Ops(), d.WordsMoved())
	}
	if !approx(d.BusyTime(), 0.11, 1e-9) {
		t.Fatalf("BusyTime = %v", d.BusyTime())
	}
}

func TestDiskIsFCFS(t *testing.T) {
	k := des.New()
	d := MustNew(k, testCfg())
	var done1, done2 float64
	k.Spawn("a", func(p *des.Proc) { d.Op(p, 90); done1 = p.Now() }) // 0.1s
	k.Spawn("b", func(p *des.Proc) { d.Op(p, 90); done2 = p.Now() }) // queued
	k.Run()
	if !approx(done1, 0.1, 1e-9) || !approx(done2, 0.2, 1e-9) {
		t.Fatalf("ops finished at %v/%v, want 0.1/0.2", done1, done2)
	}
}

func TestDiskDoesNotConsumeCPUWhileWaiting(t *testing.T) {
	// An I/O operation without CPUPerOp leaves the host idle: a CPU job
	// running concurrently is not slowed.
	k := des.New()
	h := cpu.NewHost(k, "sun", 1)
	cfg := testCfg()
	d := MustNew(k, cfg)
	var cpuDone float64
	k.Spawn("io", func(p *des.Proc) {
		for i := 0; i < 20; i++ {
			d.Op(p, 100)
		}
	})
	k.Spawn("cpu", func(p *des.Proc) {
		h.Compute(p, 1)
		cpuDone = p.Now()
	})
	k.Run()
	if !approx(cpuDone, 1, 1e-9) {
		t.Fatalf("CPU job finished at %v, want 1 (no interference)", cpuDone)
	}
}

func TestCPUPerOpChargesHost(t *testing.T) {
	k := des.New()
	h := cpu.NewHost(k, "sun", 1)
	cfg := Config{Name: "sd0", Seek: 0.01, Rate: 1000, Host: h, CPUPerOp: 0.005}
	d := MustNew(k, cfg)
	var done float64
	k.Spawn("io", func(p *des.Proc) {
		d.Op(p, 100)
		done = p.Now()
	})
	k.Run()
	if !approx(done, 0.115, 1e-9) {
		t.Fatalf("op finished at %v, want 0.115 (CPU + seek + transfer)", done)
	}
	if !approx(h.BusyTime(), 0.005, 1e-9) {
		t.Fatalf("host busy %v, want 0.005", h.BusyTime())
	}
}

func TestConfigValidation(t *testing.T) {
	k := des.New()
	bad := []Config{
		{Name: "a", Seek: -1, Rate: 1},
		{Name: "b", Seek: 0, Rate: 0},
		{Name: "c", Seek: 0, Rate: 1, CPUPerOp: -1},
		{Name: "d", Seek: math.NaN(), Rate: 1},
	}
	for _, cfg := range bad {
		if _, err := New(k, cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestNegativeOpSizePanics(t *testing.T) {
	k := des.New()
	d := MustNew(k, testCfg())
	defer func() {
		if recover() == nil {
			t.Fatal("negative size did not panic")
		}
	}()
	d.OpTime(-1)
}

func TestUtilization(t *testing.T) {
	k := des.New()
	d := MustNew(k, testCfg())
	k.Spawn("a", func(p *des.Proc) { d.Op(p, 90) })   // busy 0.1s
	k.Spawn("idle", func(p *des.Proc) { p.Delay(1) }) // clock to 1s
	k.Run()
	if got := d.Utilization(); !approx(got, 0.1, 1e-9) {
		t.Fatalf("Utilization = %v, want 0.1", got)
	}
}
