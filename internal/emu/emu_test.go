package emu

import (
	"errors"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"
)

func testSpinner(t *testing.T) *Spinner {
	t.Helper()
	s, err := CalibrateSpinner(30 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCalibrateSpinner(t *testing.T) {
	s := testSpinner(t)
	if s.OpsPerSec() < 1e6 {
		t.Fatalf("implausible spin rate %v ops/s", s.OpsPerSec())
	}
	if _, err := CalibrateSpinner(0); err == nil {
		t.Fatal("zero calibration duration accepted")
	}
}

func TestSpinForTakesRoughlyRightTime(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock test")
	}
	s := testSpinner(t)
	start := time.Now()
	s.SpinFor(0.05)
	elapsed := time.Since(start).Seconds()
	if elapsed < 0.02 || elapsed > 0.25 {
		t.Fatalf("SpinFor(50ms) took %.3fs", elapsed)
	}
}

func TestHostComputeValidation(t *testing.T) {
	s := testSpinner(t)
	h, err := NewHost(s, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if err := h.Compute(-1); err == nil {
		t.Fatal("negative work accepted")
	}
	if err := h.Compute(0); err != nil {
		t.Fatal("zero work should be a no-op")
	}
	if _, err := NewHost(nil, 1e-3); err == nil {
		t.Fatal("nil spinner accepted")
	}
	if _, err := NewHost(s, 0); err == nil {
		t.Fatal("zero quantum accepted")
	}
}

func TestHostRejectsComputeAfterClose(t *testing.T) {
	s := testSpinner(t)
	h, err := NewHost(s, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	h.Close()
	if err := h.Compute(0.01); err == nil {
		t.Fatal("Compute after Close accepted")
	}
}

func TestHostFairSharing(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock test")
	}
	s := testSpinner(t)
	h, err := NewHost(s, 5e-4)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	// Two equal jobs submitted together should finish nearly together.
	var wg sync.WaitGroup
	times := make([]time.Duration, 2)
	start := time.Now()
	for i := 0; i < 2; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := h.Compute(0.05); err != nil {
				t.Error(err)
				return
			}
			times[i] = time.Since(start)
		}()
	}
	wg.Wait()
	ratio := float64(times[0]) / float64(times[1])
	if ratio < 0.7 || ratio > 1.4 {
		t.Fatalf("equal jobs finished at %v and %v (ratio %.2f)", times[0], times[1], ratio)
	}
}

func TestComputeSlowdownMatchesPPlusOne(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock test")
	}
	s := testSpinner(t)
	for _, p := range []int{1, 3} {
		res, err := ComputeSlowdown(s, 0.08, p)
		if err != nil {
			t.Fatal(err)
		}
		model := float64(p + 1)
		if res.Slowdown < model*0.7 || res.Slowdown > model*1.35 {
			t.Fatalf("p=%d: live slowdown %.2f, model %v (outside ±35%%)", p, res.Slowdown, model)
		}
	}
}

func TestComputeSlowdownValidation(t *testing.T) {
	s := testSpinner(t)
	if _, err := ComputeSlowdown(s, 0.01, -1); err == nil {
		t.Fatal("negative p accepted")
	}
	if _, err := ComputeSlowdown(s, 0, 1); err == nil {
		t.Fatal("zero work accepted")
	}
}

func TestLinkSendAndAck(t *testing.T) {
	l, err := NewLink(1e6, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	c, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 10; i++ {
		if err := c.Send(100); err != nil {
			t.Fatal(err)
		}
	}
	if got := l.Messages(); got != 10 {
		t.Fatalf("sink saw %d messages, want 10", got)
	}
	if err := c.Send(-1); err == nil {
		t.Fatal("negative size accepted")
	}
}

func TestLinkValidation(t *testing.T) {
	if _, err := NewLink(0, 0); err == nil {
		t.Fatal("zero bandwidth accepted")
	}
	if _, err := NewLink(1e6, -time.Second); err == nil {
		t.Fatal("negative startup accepted")
	}
}

func TestLinkPacingRoughlyMatchesConfig(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock test")
	}
	l, err := NewLink(500_000, 200*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	c, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const count, words = 100, 400 // 200µs + 800µs = 1ms per message
	start := time.Now()
	for i := 0; i < count; i++ {
		if err := c.Send(words); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	want := time.Duration(count) * time.Millisecond
	if elapsed < want || elapsed > 3*want {
		t.Fatalf("burst took %v, want within [%v, %v]", elapsed, want, 3*want)
	}
}

func TestLinkContentionMatchesFCFSModel(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock test")
	}
	res, err := LinkContention(60, 300, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Slowdown < 1.4 || res.Slowdown > 2.8 {
		t.Fatalf("1 contender: slowdown %.2f, model 2 (outside band)", res.Slowdown)
	}
}

func TestLinkContentionValidation(t *testing.T) {
	if _, err := LinkContention(0, 1, 1); err == nil {
		t.Fatal("zero count accepted")
	}
	if _, err := LinkContention(1, -1, 1); err == nil {
		t.Fatal("negative words accepted")
	}
	if _, err := LinkContention(1, 1, -1); err == nil {
		t.Fatal("negative contenders accepted")
	}
}

func TestSubmitCancelWithdrawsJob(t *testing.T) {
	s := testSpinner(t)
	h, err := NewHost(s, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	jh, err := h.Submit(1e9) // effectively infinite
	if err != nil {
		t.Fatal(err)
	}
	if h.Load() != 1 {
		t.Fatalf("Load = %d, want 1", h.Load())
	}
	jh.Cancel()
	jh.Cancel() // idempotent
	if !jh.Canceled() {
		t.Fatal("Canceled() = false after Cancel")
	}
	jh.Wait() // must not block
	// The queue drains promptly after cancellation.
	deadline := time.Now().Add(time.Second)
	for h.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("Load = %d after cancel", h.Load())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSubmitValidation(t *testing.T) {
	s := testSpinner(t)
	h, err := NewHost(s, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if _, err := h.Submit(0); err == nil {
		t.Fatal("zero-work Submit accepted")
	}
}

func TestCancelAfterCompletionIsNoOp(t *testing.T) {
	s := testSpinner(t)
	h, err := NewHost(s, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	jh, err := h.Submit(1e-3)
	if err != nil {
		t.Fatal(err)
	}
	jh.Wait()
	jh.Cancel()
	if jh.Canceled() {
		t.Fatal("completed job reported canceled")
	}
}

func TestCloseCancelsResidentJobs(t *testing.T) {
	s := testSpinner(t)
	h, err := NewHost(s, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	jh, err := h.Submit(1e9)
	if err != nil {
		t.Fatal(err)
	}
	h.Close()
	jh.Wait() // released by Close
	h.Close() // idempotent
}

func TestMixtureSlowdownMatchesObservedUtilization(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock test")
	}
	s := testSpinner(t)
	// Two alternators off-CPU half of each cycle: the probe's slowdown
	// must match the work-conservation prediction from their observed
	// CPU utilizations, and sit well below the p+1 worst case.
	res, err := MixtureSlowdown(s, 0.2, []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Slowdown <= 1.05 || res.Slowdown >= 3 {
		t.Fatalf("live slowdown %.2f outside (1.05, 3)", res.Slowdown)
	}
	if res.ErrPct > 25 {
		t.Fatalf("utilization model error %.1f%%, want ≤ 25%% (model %.2f vs measured %.2f)",
			res.ErrPct, res.ModelSlowdown, res.Slowdown)
	}
	// The observed-parameter prediction must beat the naive worst case.
	worstErr := 100 * abs(3.0-res.Slowdown) / res.Slowdown
	if res.ErrPct >= worstErr {
		t.Fatalf("mixture error %.1f%% not below worst-case error %.1f%%", res.ErrPct, worstErr)
	}
	for i, rho := range res.ObservedCPUFracs {
		if rho <= 0 || rho >= 0.5 {
			t.Fatalf("contender %d utilization %v implausible", i, rho)
		}
	}
}

func TestMixtureSlowdownValidation(t *testing.T) {
	s := testSpinner(t)
	if _, err := MixtureSlowdown(s, 0, nil); err == nil {
		t.Fatal("zero work accepted")
	}
	if _, err := MixtureSlowdown(s, 0.1, []float64{1.5}); err == nil {
		t.Fatal("fraction > 1 accepted")
	}
}

// --- Robustness: ErrClosed, deadlines, retries, leak-freedom ---------------

func TestLinkErrClosedAfterClose(t *testing.T) {
	l, err := NewLink(1e6, 0)
	if err != nil {
		t.Fatal(err)
	}
	c, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Send(10); !errors.Is(err, ErrClosed) {
		t.Fatalf("Send on closed link: err = %v, want ErrClosed", err)
	}
	if _, err := l.Dial(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Dial on closed link: err = %v, want ErrClosed", err)
	}
}

func TestConnSendAfterConnClose(t *testing.T) {
	l, err := NewLink(1e6, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	c, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal("second Close not idempotent:", err)
	}
	if err := c.Send(10); !errors.Is(err, ErrClosed) {
		t.Fatalf("Send on closed conn: err = %v, want ErrClosed", err)
	}
}

func TestLinkOptionsValidation(t *testing.T) {
	bad := []Options{
		{SendTimeout: 0, MaxRetries: 1, RetryBase: time.Millisecond},
		{SendTimeout: time.Second, MaxRetries: -1, RetryBase: time.Millisecond},
		{SendTimeout: time.Second, MaxRetries: 1, RetryBase: 0},
	}
	for i, o := range bad {
		if _, err := NewLinkOpts(1e6, 0, o); err == nil {
			t.Fatalf("options %d accepted: %+v", i, o)
		}
	}
}

// TestKilledSinkBoundedDeadline kills the sink mid-run (listener and all
// accepted connections torn down, link NOT marked closed) and checks a
// sender fails within the bound implied by its deadline/retry budget
// instead of blocking forever.
func TestKilledSinkBoundedDeadline(t *testing.T) {
	opts := Options{SendTimeout: 200 * time.Millisecond, MaxRetries: 2, RetryBase: 5 * time.Millisecond}
	l, err := NewLinkOpts(1e6, 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	c, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send(10); err != nil {
		t.Fatal(err)
	}
	// Kill the sink: close the listener and every accepted connection.
	l.ln.Close()
	l.mu.Lock()
	sinkConns := make([]net.Conn, 0, len(l.conns))
	for sc := range l.conns {
		sinkConns = append(sinkConns, sc)
	}
	l.mu.Unlock()
	for _, sc := range sinkConns {
		sc.Close()
	}
	// Worst case: (retries+1) × (deadline + backoff) plus slack.
	bound := time.Duration(opts.MaxRetries+1)*(opts.SendTimeout+100*time.Millisecond) + time.Second
	start := time.Now()
	err = c.Send(10)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("Send succeeded against a killed sink")
	}
	if errors.Is(err, ErrClosed) {
		t.Fatalf("Send reported ErrClosed for a killed (not closed) sink: %v", err)
	}
	if elapsed > bound {
		t.Fatalf("Send took %v to fail, bound %v", elapsed, bound)
	}
}

// TestStallSinkRetrySucceeds injects a sink-side ack stall longer than
// the per-attempt deadline: the sender must time out, back off, re-dial,
// and succeed once the stall clears.
func TestStallSinkRetrySucceeds(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock test")
	}
	opts := Options{SendTimeout: 60 * time.Millisecond, MaxRetries: 8, RetryBase: 20 * time.Millisecond}
	l, err := NewLinkOpts(1e6, 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	c, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	l.StallSink(150 * time.Millisecond)
	if err := c.Send(10); err != nil {
		t.Fatalf("Send did not survive a transient sink stall: %v", err)
	}
	if l.Retries() == 0 {
		t.Fatal("stalled sink produced no retries")
	}
}

// TestLinkCloseNoGoroutineLeak verifies Close reaps the sink's handler
// goroutines even with live connections (run under -race in CI).
func TestLinkCloseNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		l, err := NewLink(1e6, 0)
		if err != nil {
			t.Fatal(err)
		}
		var conns []*Conn
		for j := 0; j < 4; j++ {
			c, err := l.Dial()
			if err != nil {
				t.Fatal(err)
			}
			if err := c.Send(16); err != nil {
				t.Fatal(err)
			}
			conns = append(conns, c)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		for _, c := range conns {
			c.Close()
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after close", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSendConcurrentWithStall checks one stalled sender cannot block the
// others forever: the wire lock is released before network I/O, so a
// sender waiting on a dead socket holds nothing shared.
func TestSendConcurrentWithStall(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock test")
	}
	opts := Options{SendTimeout: 300 * time.Millisecond, MaxRetries: 1, RetryBase: 5 * time.Millisecond}
	l, err := NewLinkOpts(1e6, 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := 0; i < 4; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := l.Dial()
			if err != nil {
				errs[i] = err
				return
			}
			defer c.Close()
			for j := 0; j < 5; j++ {
				if err := c.Send(50); err != nil {
					errs[i] = err
					return
				}
			}
		}()
	}
	l.StallSink(100 * time.Millisecond)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("concurrent senders wedged behind a stalled sink")
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("sender %d: %v", i, err)
		}
	}
}
