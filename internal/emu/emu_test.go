package emu

import (
	"sync"
	"testing"
	"time"
)

func testSpinner(t *testing.T) *Spinner {
	t.Helper()
	s, err := CalibrateSpinner(30 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCalibrateSpinner(t *testing.T) {
	s := testSpinner(t)
	if s.OpsPerSec() < 1e6 {
		t.Fatalf("implausible spin rate %v ops/s", s.OpsPerSec())
	}
	if _, err := CalibrateSpinner(0); err == nil {
		t.Fatal("zero calibration duration accepted")
	}
}

func TestSpinForTakesRoughlyRightTime(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock test")
	}
	s := testSpinner(t)
	start := time.Now()
	s.SpinFor(0.05)
	elapsed := time.Since(start).Seconds()
	if elapsed < 0.02 || elapsed > 0.25 {
		t.Fatalf("SpinFor(50ms) took %.3fs", elapsed)
	}
}

func TestHostComputeValidation(t *testing.T) {
	s := testSpinner(t)
	h, err := NewHost(s, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if err := h.Compute(-1); err == nil {
		t.Fatal("negative work accepted")
	}
	if err := h.Compute(0); err != nil {
		t.Fatal("zero work should be a no-op")
	}
	if _, err := NewHost(nil, 1e-3); err == nil {
		t.Fatal("nil spinner accepted")
	}
	if _, err := NewHost(s, 0); err == nil {
		t.Fatal("zero quantum accepted")
	}
}

func TestHostRejectsComputeAfterClose(t *testing.T) {
	s := testSpinner(t)
	h, err := NewHost(s, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	h.Close()
	if err := h.Compute(0.01); err == nil {
		t.Fatal("Compute after Close accepted")
	}
}

func TestHostFairSharing(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock test")
	}
	s := testSpinner(t)
	h, err := NewHost(s, 5e-4)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	// Two equal jobs submitted together should finish nearly together.
	var wg sync.WaitGroup
	times := make([]time.Duration, 2)
	start := time.Now()
	for i := 0; i < 2; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := h.Compute(0.05); err != nil {
				t.Error(err)
				return
			}
			times[i] = time.Since(start)
		}()
	}
	wg.Wait()
	ratio := float64(times[0]) / float64(times[1])
	if ratio < 0.7 || ratio > 1.4 {
		t.Fatalf("equal jobs finished at %v and %v (ratio %.2f)", times[0], times[1], ratio)
	}
}

func TestComputeSlowdownMatchesPPlusOne(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock test")
	}
	s := testSpinner(t)
	for _, p := range []int{1, 3} {
		res, err := ComputeSlowdown(s, 0.08, p)
		if err != nil {
			t.Fatal(err)
		}
		model := float64(p + 1)
		if res.Slowdown < model*0.7 || res.Slowdown > model*1.35 {
			t.Fatalf("p=%d: live slowdown %.2f, model %v (outside ±35%%)", p, res.Slowdown, model)
		}
	}
}

func TestComputeSlowdownValidation(t *testing.T) {
	s := testSpinner(t)
	if _, err := ComputeSlowdown(s, 0.01, -1); err == nil {
		t.Fatal("negative p accepted")
	}
	if _, err := ComputeSlowdown(s, 0, 1); err == nil {
		t.Fatal("zero work accepted")
	}
}

func TestLinkSendAndAck(t *testing.T) {
	l, err := NewLink(1e6, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	c, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 10; i++ {
		if err := c.Send(100); err != nil {
			t.Fatal(err)
		}
	}
	if got := l.Messages(); got != 10 {
		t.Fatalf("sink saw %d messages, want 10", got)
	}
	if err := c.Send(-1); err == nil {
		t.Fatal("negative size accepted")
	}
}

func TestLinkValidation(t *testing.T) {
	if _, err := NewLink(0, 0); err == nil {
		t.Fatal("zero bandwidth accepted")
	}
	if _, err := NewLink(1e6, -time.Second); err == nil {
		t.Fatal("negative startup accepted")
	}
}

func TestLinkPacingRoughlyMatchesConfig(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock test")
	}
	l, err := NewLink(500_000, 200*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	c, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const count, words = 100, 400 // 200µs + 800µs = 1ms per message
	start := time.Now()
	for i := 0; i < count; i++ {
		if err := c.Send(words); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	want := time.Duration(count) * time.Millisecond
	if elapsed < want || elapsed > 3*want {
		t.Fatalf("burst took %v, want within [%v, %v]", elapsed, want, 3*want)
	}
}

func TestLinkContentionMatchesFCFSModel(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock test")
	}
	res, err := LinkContention(60, 300, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Slowdown < 1.4 || res.Slowdown > 2.8 {
		t.Fatalf("1 contender: slowdown %.2f, model 2 (outside band)", res.Slowdown)
	}
}

func TestLinkContentionValidation(t *testing.T) {
	if _, err := LinkContention(0, 1, 1); err == nil {
		t.Fatal("zero count accepted")
	}
	if _, err := LinkContention(1, -1, 1); err == nil {
		t.Fatal("negative words accepted")
	}
	if _, err := LinkContention(1, 1, -1); err == nil {
		t.Fatal("negative contenders accepted")
	}
}

func TestSubmitCancelWithdrawsJob(t *testing.T) {
	s := testSpinner(t)
	h, err := NewHost(s, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	jh, err := h.Submit(1e9) // effectively infinite
	if err != nil {
		t.Fatal(err)
	}
	if h.Load() != 1 {
		t.Fatalf("Load = %d, want 1", h.Load())
	}
	jh.Cancel()
	jh.Cancel() // idempotent
	if !jh.Canceled() {
		t.Fatal("Canceled() = false after Cancel")
	}
	jh.Wait() // must not block
	// The queue drains promptly after cancellation.
	deadline := time.Now().Add(time.Second)
	for h.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("Load = %d after cancel", h.Load())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSubmitValidation(t *testing.T) {
	s := testSpinner(t)
	h, err := NewHost(s, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if _, err := h.Submit(0); err == nil {
		t.Fatal("zero-work Submit accepted")
	}
}

func TestCancelAfterCompletionIsNoOp(t *testing.T) {
	s := testSpinner(t)
	h, err := NewHost(s, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	jh, err := h.Submit(1e-3)
	if err != nil {
		t.Fatal(err)
	}
	jh.Wait()
	jh.Cancel()
	if jh.Canceled() {
		t.Fatal("completed job reported canceled")
	}
}

func TestCloseCancelsResidentJobs(t *testing.T) {
	s := testSpinner(t)
	h, err := NewHost(s, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	jh, err := h.Submit(1e9)
	if err != nil {
		t.Fatal(err)
	}
	h.Close()
	jh.Wait() // released by Close
	h.Close() // idempotent
}

func TestMixtureSlowdownMatchesObservedUtilization(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock test")
	}
	s := testSpinner(t)
	// Two alternators off-CPU half of each cycle: the probe's slowdown
	// must match the work-conservation prediction from their observed
	// CPU utilizations, and sit well below the p+1 worst case.
	res, err := MixtureSlowdown(s, 0.2, []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Slowdown <= 1.05 || res.Slowdown >= 3 {
		t.Fatalf("live slowdown %.2f outside (1.05, 3)", res.Slowdown)
	}
	if res.ErrPct > 25 {
		t.Fatalf("utilization model error %.1f%%, want ≤ 25%% (model %.2f vs measured %.2f)",
			res.ErrPct, res.ModelSlowdown, res.Slowdown)
	}
	// The observed-parameter prediction must beat the naive worst case.
	worstErr := 100 * abs(3.0-res.Slowdown) / res.Slowdown
	if res.ErrPct >= worstErr {
		t.Fatalf("mixture error %.1f%% not below worst-case error %.1f%%", res.ErrPct, worstErr)
	}
	for i, rho := range res.ObservedCPUFracs {
		if rho <= 0 || rho >= 0.5 {
			t.Fatalf("contender %d utilization %v implausible", i, rho)
		}
	}
}

func TestMixtureSlowdownValidation(t *testing.T) {
	s := testSpinner(t)
	if _, err := MixtureSlowdown(s, 0, nil); err == nil {
		t.Fatal("zero work accepted")
	}
	if _, err := MixtureSlowdown(s, 0.1, []float64{1.5}); err == nil {
		t.Fatal("fraction > 1 accepted")
	}
}
