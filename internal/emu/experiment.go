package emu

import (
	"fmt"
	"sync"
	"time"
)

// ComputeResult is the outcome of the live CPU-contention experiment.
type ComputeResult struct {
	P         int
	Dedicated time.Duration
	Contended time.Duration
	// Slowdown is Contended/Dedicated; the model predicts p+1.
	Slowdown float64
	// ModelSlowdown is the paper's prediction.
	ModelSlowdown float64
	// ErrPct is the relative model error in percent.
	ErrPct float64
}

// ComputeSlowdown runs the live CPU experiment: measure a job of `work`
// CPU-seconds alone on the fair-share host, then again with p CPU-bound
// hog goroutines, and compare the measured slowdown to p+1.
func ComputeSlowdown(spinner *Spinner, work float64, p int) (ComputeResult, error) {
	if p < 0 {
		return ComputeResult{}, fmt.Errorf("emu: negative contender count %d", p)
	}
	if work <= 0 {
		return ComputeResult{}, fmt.Errorf("emu: work %v must be positive", work)
	}
	host, err := NewHost(spinner, 1e-3)
	if err != nil {
		return ComputeResult{}, err
	}
	defer host.Close()

	measure := func() (time.Duration, error) {
		start := time.Now()
		if err := host.Compute(work); err != nil {
			return 0, err
		}
		return time.Since(start), nil
	}

	dedicated, err := measure()
	if err != nil {
		return ComputeResult{}, err
	}

	// Submit p permanently resident CPU-bound hogs (withdrawn after the
	// measurement — how a real contender would eventually exit).
	hogs := make([]*JobHandle, 0, p)
	for i := 0; i < p; i++ {
		jh, err := host.Submit(1e9)
		if err != nil {
			return ComputeResult{}, err
		}
		hogs = append(hogs, jh)
	}
	contended, err := measure()
	for _, jh := range hogs {
		jh.Cancel()
	}
	if err != nil {
		return ComputeResult{}, err
	}

	slow := float64(contended) / float64(dedicated)
	model := float64(p + 1)
	return ComputeResult{
		P:             p,
		Dedicated:     dedicated,
		Contended:     contended,
		Slowdown:      slow,
		ModelSlowdown: model,
		ErrPct:        100 * abs(model-slow) / slow,
	}, nil
}

// LinkResult is the outcome of the live link-contention experiment.
type LinkResult struct {
	Contenders int
	Dedicated  time.Duration
	Contended  time.Duration
	Slowdown   float64
	// ModelSlowdown: with n extra always-sending peers on an FCFS wire,
	// the target's burst takes about n+1 times as long.
	ModelSlowdown float64
	ErrPct        float64
}

// LinkContention measures a burst of count words-sized messages alone,
// then with n contender goroutines streaming the same messages over the
// shared wire, and compares against the n+1 FCFS prediction.
func LinkContention(count, words, contenders int) (LinkResult, error) {
	if count <= 0 || words < 0 || contenders < 0 {
		return LinkResult{}, fmt.Errorf("emu: invalid experiment (count %d, words %d, contenders %d)", count, words, contenders)
	}
	// 1 ms per 250-word message keeps the experiment brief but well
	// above scheduler noise.
	link, err := NewLink(500_000, 200*time.Microsecond)
	if err != nil {
		return LinkResult{}, err
	}
	defer link.Close()

	burst := func(c *Conn) (time.Duration, error) {
		start := time.Now()
		for i := 0; i < count; i++ {
			if err := c.Send(words); err != nil {
				return 0, err
			}
		}
		return time.Since(start), nil
	}

	target, err := link.Dial()
	if err != nil {
		return LinkResult{}, err
	}
	defer target.Close()

	dedicated, err := burst(target)
	if err != nil {
		return LinkResult{}, err
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < contenders; i++ {
		conn, err := link.Dial()
		if err != nil {
			close(stop)
			wg.Wait()
			return LinkResult{}, err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer conn.Close()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := conn.Send(words); err != nil {
					return
				}
			}
		}()
	}
	// Give contenders time to start queueing on the wire.
	time.Sleep(20 * time.Millisecond)
	contended, err := burst(target)
	close(stop)
	wg.Wait()
	if err != nil {
		return LinkResult{}, err
	}

	slow := float64(contended) / float64(dedicated)
	model := float64(contenders + 1)
	return LinkResult{
		Contenders:    contenders,
		Dedicated:     dedicated,
		Contended:     contended,
		Slowdown:      slow,
		ModelSlowdown: model,
		ErrPct:        100 * abs(model-slow) / slow,
	}, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// MixtureResult is the outcome of the live mixture-law experiment.
type MixtureResult struct {
	// SpecFracs are the contenders' requested non-CPU fractions.
	SpecFracs []float64
	// ObservedCPUFracs are the CPU utilizations (consumed CPU seconds
	// over wall seconds) each contender actually achieved during the
	// contended window — the paper's run-time application-dependent
	// parameters, observed rather than assumed, since wall-clock sleeps
	// and compute phases both stretch on a loaded machine.
	ObservedCPUFracs []float64
	// Dedicated and Contended are the probe's wall-clock times.
	Dedicated, Contended time.Duration
	// Slowdown is the measured ratio.
	Slowdown float64
	// ModelSlowdown is the processor-sharing prediction from the
	// observed utilizations: with the contenders consuming Σρ of the
	// CPU, a work-conserving fair-share host leaves the probe a 1−Σρ
	// share, so its slowdown is 1/(1−Σρ).
	ModelSlowdown float64
	ErrPct        float64
}

// MixtureSlowdown runs the live counterpart of the paper's
// probabilistic mixture: alternator goroutines that compute part of
// each cycle and spend the rest off-CPU, against a CPU-bound probe on
// the fair-share host. As in the paper, the model consumes the
// contenders' run-time computation percentages — here observed during
// the contended window, since compute phases stretch under sharing.
func MixtureSlowdown(spinner *Spinner, work float64, fracs []float64) (MixtureResult, error) {
	if work <= 0 {
		return MixtureResult{}, fmt.Errorf("emu: work %v must be positive", work)
	}
	for _, f := range fracs {
		if f < 0 || f > 1 {
			return MixtureResult{}, fmt.Errorf("emu: fraction %v out of [0,1]", f)
		}
	}
	host, err := NewHost(spinner, 1e-3)
	if err != nil {
		return MixtureResult{}, err
	}
	defer host.Close()

	measure := func() (time.Duration, error) {
		start := time.Now()
		if err := host.Compute(work); err != nil {
			return 0, err
		}
		return time.Since(start), nil
	}
	dedicated, err := measure()
	if err != nil {
		return MixtureResult{}, err
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	const period = 10e-3
	cpuConsumed := make([]float64, len(fracs)) // CPU seconds per contender
	totalWall := make([]time.Duration, len(fracs))
	for i, f := range fracs {
		i, f := i, f
		wg.Add(1)
		offset := time.Duration(i) * 3 * time.Millisecond // stagger cycles
		go func() {
			defer wg.Done()
			time.Sleep(offset)
			begin := time.Now()
			for {
				select {
				case <-stop:
					totalWall[i] = time.Since(begin)
					return
				default:
				}
				if err := host.Compute((1 - f) * period); err != nil {
					totalWall[i] = time.Since(begin)
					return
				}
				cpuConsumed[i] += (1 - f) * period
				if f > 0 {
					// The non-CPU phase: network wait / device time.
					time.Sleep(time.Duration(f * period * float64(time.Second)))
				}
			}
		}()
	}
	time.Sleep(20 * time.Millisecond) // reach steady state
	contended, err := measure()
	close(stop)
	wg.Wait()
	if err != nil {
		return MixtureResult{}, err
	}

	slow := float64(contended) / float64(dedicated)
	observed := make([]float64, len(fracs))
	sumRho := 0.0
	for i := range fracs {
		if totalWall[i] > 0 {
			observed[i] = cpuConsumed[i] / totalWall[i].Seconds()
		}
		sumRho += observed[i]
	}
	model := slow // degenerate fallback
	if sumRho < 0.95 {
		model = 1 / (1 - sumRho)
	}
	return MixtureResult{
		SpecFracs:        append([]float64(nil), fracs...),
		ObservedCPUFracs: observed,
		Dedicated:        dedicated,
		Contended:        contended,
		Slowdown:         slow,
		ModelSlowdown:    model,
		ErrPct:           100 * abs(model-slow) / slow,
	}, nil
}
