package emu

import (
	"errors"
	"fmt"
	"sync"
)

// Host emulates a time-shared uniprocessor: all submitted work executes
// on a single executor goroutine that grants fixed CPU quanta to
// resident jobs in round-robin order. Because exactly one quantum runs
// at a time, CPU cycles are split equally among resident jobs whatever
// GOMAXPROCS is — the fair-share law behind the paper's p+1 slowdown,
// reproduced with real wall-clock execution.
type Host struct {
	spinner *Spinner
	quantum float64 // CPU-seconds per grant

	mu     sync.Mutex
	cond   *sync.Cond
	jobs   []*emuJob
	rr     int
	closed bool
	done   chan struct{}
}

type emuJob struct {
	remaining float64
	canceled  bool
	finished  chan struct{}
}

// JobHandle refers to a submitted job.
type JobHandle struct {
	h   *Host
	job *emuJob
}

// NewHost starts the executor. Quantum is in CPU-seconds (e.g. 1e-3).
func NewHost(spinner *Spinner, quantum float64) (*Host, error) {
	if spinner == nil {
		return nil, errors.New("emu: nil spinner")
	}
	if quantum <= 0 {
		return nil, fmt.Errorf("emu: quantum %v must be positive", quantum)
	}
	h := &Host{spinner: spinner, quantum: quantum, done: make(chan struct{})}
	h.cond = sync.NewCond(&h.mu)
	go h.run()
	return h, nil
}

func (h *Host) run() {
	defer close(h.done)
	for {
		h.mu.Lock()
		for len(h.jobs) == 0 && !h.closed {
			h.cond.Wait()
		}
		if h.closed {
			// Cancel whatever is still resident and exit.
			for _, j := range h.jobs {
				j.canceled = true
				close(j.finished)
			}
			h.jobs = nil
			h.mu.Unlock()
			return
		}
		if h.rr >= len(h.jobs) {
			h.rr = 0
		}
		job := h.jobs[h.rr]
		grant := h.quantum
		if job.remaining < grant {
			grant = job.remaining
		}
		h.mu.Unlock()

		h.spinner.SpinFor(grant)

		h.mu.Lock()
		job.remaining -= grant
		if job.canceled {
			// Already detached by Cancel; nothing to retire.
		} else if job.remaining <= 1e-12 {
			h.retireLocked(job)
			close(job.finished)
		} else {
			h.rr++
		}
		if h.rr >= len(h.jobs) {
			h.rr = 0
		}
		h.mu.Unlock()
	}
}

// retireLocked removes the job from the queue, keeping the round-robin
// cursor stable. Caller holds h.mu.
func (h *Host) retireLocked(job *emuJob) {
	for i, j := range h.jobs {
		if j == job {
			h.jobs = append(h.jobs[:i], h.jobs[i+1:]...)
			if i < h.rr {
				h.rr--
			}
			return
		}
	}
}

// Submit enqueues cpuSeconds of work without blocking. Use Wait on the
// handle to block for completion, Cancel to withdraw the job (how a
// long-lived CPU-bound contender leaves the system).
func (h *Host) Submit(cpuSeconds float64) (*JobHandle, error) {
	if cpuSeconds <= 0 {
		return nil, fmt.Errorf("emu: work %v must be positive", cpuSeconds)
	}
	job := &emuJob{remaining: cpuSeconds, finished: make(chan struct{})}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil, errors.New("emu: host closed")
	}
	h.jobs = append(h.jobs, job)
	h.cond.Signal()
	h.mu.Unlock()
	return &JobHandle{h: h, job: job}, nil
}

// Wait blocks until the job finishes or is canceled.
func (jh *JobHandle) Wait() { <-jh.job.finished }

// Canceled reports whether the job was withdrawn before completion.
func (jh *JobHandle) Canceled() bool {
	jh.h.mu.Lock()
	defer jh.h.mu.Unlock()
	return jh.job.canceled
}

// Cancel withdraws the job. Idempotent; a no-op after completion.
func (jh *JobHandle) Cancel() {
	h := jh.h
	h.mu.Lock()
	defer h.mu.Unlock()
	if jh.job.canceled {
		return
	}
	select {
	case <-jh.job.finished:
		return // already completed
	default:
	}
	jh.job.canceled = true
	h.retireLocked(jh.job)
	close(jh.job.finished)
}

// Compute blocks the caller until cpuSeconds of work have executed
// under fair sharing. Zero work is a no-op. Safe for concurrent use.
func (h *Host) Compute(cpuSeconds float64) error {
	if cpuSeconds < 0 {
		return fmt.Errorf("emu: negative work %v", cpuSeconds)
	}
	if cpuSeconds == 0 {
		return nil
	}
	jh, err := h.Submit(cpuSeconds)
	if err != nil {
		return err
	}
	jh.Wait()
	return nil
}

// Load reports the number of resident jobs.
func (h *Host) Load() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.jobs)
}

// Close stops the executor, canceling resident jobs.
func (h *Host) Close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		<-h.done
		return
	}
	h.closed = true
	h.cond.Broadcast()
	h.mu.Unlock()
	<-h.done
}
