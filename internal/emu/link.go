package emu

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"contention/internal/obs"
)

// Wire telemetry for the live emulation: what actually crossed the
// loopback TCP link and how often the reliability machinery engaged.
var (
	mMessages = obs.NewCounter(obs.MetricEmuMessages,
		"framed messages acknowledged by the sink")
	mBytes = obs.NewCounter(obs.MetricEmuBytes,
		"payload bytes (header included) successfully sent and acked")
	mRetries = obs.NewCounter(obs.MetricEmuRetries,
		"sender retry attempts after a failed transmission")
	mRedials = obs.NewCounter(obs.MetricEmuRedials,
		"sender re-dials of the sink after a failed attempt")
	mDeadlines = obs.NewCounter(obs.MetricEmuDeadlines,
		"send/ack attempts that hit the per-attempt deadline")
)

// ErrClosed is returned by operations on a closed link or connection.
var ErrClosed = errors.New("emu: link closed")

// Options bound how long a sender may hang on a misbehaving sink.
type Options struct {
	// SendTimeout is the per-attempt deadline covering the TCP write and
	// the acknowledgement read.
	SendTimeout time.Duration
	// MaxRetries is the number of additional attempts after the first
	// fails; each retry re-dials the sink.
	MaxRetries int
	// RetryBase is the first retry backoff; it doubles per attempt, with
	// ±50% jitter so concurrent retriers do not stampede in lockstep.
	RetryBase time.Duration
}

// DefaultOptions returns the production defaults: generous enough for a
// loaded CI machine, bounded enough that a dead sink fails a sender in
// well under ten seconds.
func DefaultOptions() Options {
	return Options{
		SendTimeout: 2 * time.Second,
		MaxRetries:  2,
		RetryBase:   5 * time.Millisecond,
	}
}

func (o Options) validate() error {
	if o.SendTimeout <= 0 {
		return fmt.Errorf("emu: send timeout %v must be positive", o.SendTimeout)
	}
	if o.MaxRetries < 0 {
		return fmt.Errorf("emu: negative retry count %d", o.MaxRetries)
	}
	if o.RetryBase <= 0 {
		return fmt.Errorf("emu: retry base %v must be positive", o.RetryBase)
	}
	return nil
}

// Link emulates the private Ethernet with real loopback TCP: a sink
// server acknowledges framed messages, and a shared wire lock paces
// each transmission to startup + words/bandwidth, so concurrent senders
// experience genuine FCFS contention — the distributed-contention half
// of the live emulation. Senders carry read/write deadlines and bounded
// exponential-backoff retries with re-dial, so a hung or killed sink
// fails them within a bounded deadline instead of blocking forever.
type Link struct {
	bandwidth float64       // words per second
	perMsg    time.Duration // startup per message
	opts      Options

	ln   net.Listener
	wire sync.Mutex

	mu         sync.Mutex
	sent       int
	retries    int
	closed     bool
	conns      map[net.Conn]struct{} // accepted sink-side connections
	stallUntil time.Time             // sink fault injection: ack stall
	rng        *rand.Rand            // retry jitter
}

// NewLink starts the sink server on a loopback port with DefaultOptions.
func NewLink(bandwidthWords float64, perMsg time.Duration) (*Link, error) {
	return NewLinkOpts(bandwidthWords, perMsg, DefaultOptions())
}

// NewLinkOpts is NewLink with explicit timeout/retry options.
func NewLinkOpts(bandwidthWords float64, perMsg time.Duration, opts Options) (*Link, error) {
	if bandwidthWords <= 0 {
		return nil, fmt.Errorf("emu: bandwidth %v must be positive", bandwidthWords)
	}
	if perMsg < 0 {
		return nil, fmt.Errorf("emu: negative per-message startup %v", perMsg)
	}
	if err := opts.validate(); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("emu: listen: %w", err)
	}
	l := &Link{
		bandwidth: bandwidthWords,
		perMsg:    perMsg,
		opts:      opts,
		ln:        ln,
		conns:     map[net.Conn]struct{}{},
		rng:       rand.New(rand.NewSource(time.Now().UnixNano())),
	}
	go l.serve()
	return l, nil
}

// Addr reports the sink's address.
func (l *Link) Addr() string { return l.ln.Addr().String() }

// Messages reports the number of messages acknowledged by the sink.
func (l *Link) Messages() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sent
}

// Retries reports the number of sender retry attempts across the link.
func (l *Link) Retries() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.retries
}

// StallSink injects a sink-side fault: until d from now, the sink
// delays acknowledgements, so sender ack deadlines trip — the live
// counterpart of the simulator's fault schedules, used to exercise the
// timeout/retry path against real TCP.
func (l *Link) StallSink(d time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if until := time.Now().Add(d); until.After(l.stallUntil) {
		l.stallUntil = until
	}
}

func (l *Link) isClosed() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.closed
}

func (l *Link) serve() {
	for {
		conn, err := l.ln.Accept()
		if err != nil {
			return // listener closed
		}
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			conn.Close()
			return
		}
		l.conns[conn] = struct{}{}
		l.mu.Unlock()
		go l.handle(conn)
	}
}

func (l *Link) handle(conn net.Conn) {
	defer func() {
		conn.Close()
		l.mu.Lock()
		delete(l.conns, conn)
		l.mu.Unlock()
	}()
	var hdr [4]byte
	buf := make([]byte, 64*1024)
	for {
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return
		}
		n := int(binary.BigEndian.Uint32(hdr[:]))
		remaining := n * 4
		for remaining > 0 {
			chunk := remaining
			if chunk > len(buf) {
				chunk = len(buf)
			}
			if _, err := io.ReadFull(conn, buf[:chunk]); err != nil {
				return
			}
			remaining -= chunk
		}
		l.mu.Lock()
		l.sent++
		stall := time.Until(l.stallUntil)
		l.mu.Unlock()
		mMessages.Inc()
		if stall > 0 {
			time.Sleep(stall)
		}
		if _, err := conn.Write([]byte{1}); err != nil { // ack
			return
		}
	}
}

// Conn is one application's connection to the sink.
type Conn struct {
	link *Link

	mu     sync.Mutex
	c      net.Conn
	closed bool
	ack    [1]byte
}

// Dial opens a sender connection. On a closed link it returns ErrClosed.
func (l *Link) Dial() (*Conn, error) {
	c, err := l.dialRaw()
	if err != nil {
		return nil, err
	}
	return &Conn{link: l, c: c}, nil
}

func (l *Link) dialRaw() (net.Conn, error) {
	if l.isClosed() {
		return nil, fmt.Errorf("emu: dial: %w", ErrClosed)
	}
	c, err := net.DialTimeout("tcp", l.Addr(), l.opts.SendTimeout)
	if err != nil {
		if l.isClosed() {
			return nil, fmt.Errorf("emu: dial: %w", ErrClosed)
		}
		return nil, fmt.Errorf("emu: dial: %w", err)
	}
	return c, nil
}

// jitteredBackoff returns RetryBase·2^attempt with ±50% jitter.
func (l *Link) jitteredBackoff(attempt int) time.Duration {
	base := l.opts.RetryBase << attempt
	l.mu.Lock()
	f := 0.5 + l.rng.Float64() // [0.5, 1.5)
	l.mu.Unlock()
	return time.Duration(float64(base) * f)
}

// Send transmits one framed message of the given word count and waits
// for the acknowledgement. The shared wire lock is held only for the
// paced transmission time — the TCP write happens outside it, so one
// stalled sender socket cannot serialize-block every other sender. A
// failed write or ack is retried with exponential backoff and a fresh
// connection, up to Options.MaxRetries; on a closed link or connection
// Send returns ErrClosed.
func (c *Conn) Send(words int) error {
	if words < 0 {
		return fmt.Errorf("emu: negative message size %d", words)
	}
	l := c.link
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed || l.isClosed() {
		return fmt.Errorf("emu: send: %w", ErrClosed)
	}
	tx := l.perMsg + time.Duration(float64(words)/l.bandwidth*float64(time.Second))
	payload := make([]byte, 4+words*4)
	binary.BigEndian.PutUint32(payload[:4], uint32(words))

	var lastErr error
	for attempt := 0; attempt <= l.opts.MaxRetries; attempt++ {
		if attempt > 0 {
			l.mu.Lock()
			l.retries++
			l.mu.Unlock()
			mRetries.Inc()
			time.Sleep(l.jitteredBackoff(attempt - 1))
			if err := c.redial(); err != nil {
				lastErr = err
				if errors.Is(err, ErrClosed) {
					return fmt.Errorf("emu: send: %w", ErrClosed)
				}
				continue
			}
		}
		// Pace on the shared wire: occupancy is the contention resource,
		// so every (re)transmission pays it, FCFS with other senders.
		l.wire.Lock()
		time.Sleep(tx)
		l.wire.Unlock()
		if err := c.writeAndAck(payload); err != nil {
			lastErr = err
			if l.isClosed() {
				return fmt.Errorf("emu: send: %w", ErrClosed)
			}
			continue
		}
		mBytes.Add(int64(len(payload)))
		return nil
	}
	return fmt.Errorf("emu: send failed after %d attempts: %w", l.opts.MaxRetries+1, lastErr)
}

// writeAndAck performs one framed write + ack read under the
// per-attempt deadline.
func (c *Conn) writeAndAck(payload []byte) error {
	c.mu.Lock()
	conn := c.c
	closed := c.closed
	c.mu.Unlock()
	if closed || conn == nil {
		return fmt.Errorf("emu: send: %w", ErrClosed)
	}
	deadline := time.Now().Add(c.link.opts.SendTimeout)
	if err := conn.SetDeadline(deadline); err != nil {
		return fmt.Errorf("emu: deadline: %w", err)
	}
	if _, err := conn.Write(payload); err != nil {
		noteDeadline(err)
		return fmt.Errorf("emu: send: %w", err)
	}
	if _, err := io.ReadFull(conn, c.ack[:]); err != nil {
		noteDeadline(err)
		return fmt.Errorf("emu: ack: %w", err)
	}
	return nil
}

// noteDeadline counts attempts that failed by blowing the per-attempt
// deadline (as opposed to a reset or closed connection).
func noteDeadline(err error) {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		mDeadlines.Inc()
	}
}

// redial replaces the underlying TCP connection after a failed attempt.
func (c *Conn) redial() error {
	mRedials.Inc()
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return fmt.Errorf("emu: redial: %w", ErrClosed)
	}
	old := c.c
	c.mu.Unlock()
	if old != nil {
		old.Close()
	}
	nc, err := c.link.dialRaw()
	if err != nil {
		return err
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		nc.Close()
		return fmt.Errorf("emu: redial: %w", ErrClosed)
	}
	c.c = nc
	c.mu.Unlock()
	return nil
}

// Close closes the sender connection. Subsequent Sends return ErrClosed.
func (c *Conn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	conn := c.c
	c.c = nil
	c.mu.Unlock()
	if conn != nil {
		return conn.Close()
	}
	return nil
}

// Close shuts the sink down, closing the listener and every accepted
// connection so in-flight senders fail fast instead of leaking.
func (l *Link) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	conns := make([]net.Conn, 0, len(l.conns))
	for c := range l.conns {
		conns = append(conns, c)
	}
	l.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	return l.ln.Close()
}
