package emu

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Link emulates the private Ethernet with real loopback TCP: a sink
// server acknowledges framed messages, and a shared wire lock paces
// each transmission to startup + words/bandwidth, so concurrent senders
// experience genuine FCFS contention — the distributed-contention half
// of the live emulation.
type Link struct {
	bandwidth float64       // words per second
	perMsg    time.Duration // startup per message

	ln   net.Listener
	wire sync.Mutex

	mu     sync.Mutex
	sent   int
	closed bool
}

// NewLink starts the sink server on a loopback port.
func NewLink(bandwidthWords float64, perMsg time.Duration) (*Link, error) {
	if bandwidthWords <= 0 {
		return nil, fmt.Errorf("emu: bandwidth %v must be positive", bandwidthWords)
	}
	if perMsg < 0 {
		return nil, fmt.Errorf("emu: negative per-message startup %v", perMsg)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("emu: listen: %w", err)
	}
	l := &Link{bandwidth: bandwidthWords, perMsg: perMsg, ln: ln}
	go l.serve()
	return l, nil
}

// Addr reports the sink's address.
func (l *Link) Addr() string { return l.ln.Addr().String() }

// Messages reports the number of messages acknowledged by the sink.
func (l *Link) Messages() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sent
}

func (l *Link) serve() {
	for {
		conn, err := l.ln.Accept()
		if err != nil {
			return // listener closed
		}
		go l.handle(conn)
	}
}

func (l *Link) handle(conn net.Conn) {
	defer conn.Close()
	var hdr [4]byte
	buf := make([]byte, 64*1024)
	for {
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return
		}
		n := int(binary.BigEndian.Uint32(hdr[:]))
		remaining := n * 4
		for remaining > 0 {
			chunk := remaining
			if chunk > len(buf) {
				chunk = len(buf)
			}
			if _, err := io.ReadFull(conn, buf[:chunk]); err != nil {
				return
			}
			remaining -= chunk
		}
		l.mu.Lock()
		l.sent++
		l.mu.Unlock()
		if _, err := conn.Write([]byte{1}); err != nil { // ack
			return
		}
	}
}

// Conn is one application's connection to the sink.
type Conn struct {
	link *Link
	c    net.Conn
	ack  [1]byte
}

// Dial opens a sender connection.
func (l *Link) Dial() (*Conn, error) {
	c, err := net.Dial("tcp", l.Addr())
	if err != nil {
		return nil, fmt.Errorf("emu: dial: %w", err)
	}
	return &Conn{link: l, c: c}, nil
}

// Send transmits one framed message of the given word count and waits
// for the acknowledgement. The shared wire lock is held for the paced
// transmission time, so concurrent senders serialize FCFS.
func (c *Conn) Send(words int) error {
	if words < 0 {
		return fmt.Errorf("emu: negative message size %d", words)
	}
	tx := c.link.perMsg + time.Duration(float64(words)/c.link.bandwidth*float64(time.Second))

	c.link.wire.Lock()
	time.Sleep(tx)
	payload := make([]byte, 4+words*4)
	binary.BigEndian.PutUint32(payload[:4], uint32(words))
	_, err := c.c.Write(payload)
	c.link.wire.Unlock()
	if err != nil {
		return fmt.Errorf("emu: send: %w", err)
	}
	if _, err := io.ReadFull(c.c, c.ack[:]); err != nil {
		return fmt.Errorf("emu: ack: %w", err)
	}
	return nil
}

// Close closes the sender connection.
func (c *Conn) Close() error { return c.c.Close() }

// Close shuts the sink down.
func (l *Link) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	return l.ln.Close()
}

// ErrClosed is returned by operations on a closed link.
var ErrClosed = errors.New("emu: link closed")
