package emu

import (
	"testing"

	"contention/internal/obs"
)

// TestLinkCountersMove checks the loopback link's telemetry: every
// delivered message is counted, and the payload byte counter moves by
// at least the word payload of the burst (4 bytes per word).
func TestLinkCountersMove(t *testing.T) {
	obs.SetEnabled(true)
	t.Cleanup(func() { obs.SetEnabled(false) })

	l, err := NewLink(1e6, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	c, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	m0, b0 := mMessages.Value(), mBytes.Value()
	const sends, words = 10, 100
	for i := 0; i < sends; i++ {
		if err := c.Send(words); err != nil {
			t.Fatal(err)
		}
	}
	if d := mMessages.Value() - m0; d != sends {
		t.Fatalf("message counter moved by %d, want %d", d, sends)
	}
	if d := mBytes.Value() - b0; d < sends*words {
		t.Fatalf("byte counter moved by %d, want ≥ %d", d, sends*words)
	}
}
