// Package emu is the live counterpart of the discrete-event platform:
// it emulates a time-shared host and a shared network link with real
// concurrency — goroutines doing calibrated spin work under a quantum
// round-robin fair-share executor, and real loopback-TCP transfers with
// wire pacing. It exists to demonstrate that the paper's slowdown laws
// (p+1 CPU sharing, FCFS link sharing) hold for genuinely concurrent
// distributed execution, not only inside the simulator.
//
// Wall-clock measurements are inherently noisy; the experiments in this
// package use work sizes large enough for ratios to stabilize and the
// tests assert generous tolerance bands.
package emu

import (
	"errors"
	"time"
)

// Spinner executes calibrated busy-work: a pure CPU loop whose rate is
// measured once so work can be expressed in CPU-seconds.
type Spinner struct {
	opsPerSec float64
	state     uint64
}

// spin runs n iterations of a xorshift mix and returns the final state
// (returned so the compiler cannot elide the loop).
func spin(state uint64, n int) uint64 {
	if state == 0 {
		state = 0x9e3779b97f4a7c15
	}
	for i := 0; i < n; i++ {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
	}
	return state
}

// CalibrateSpinner measures the spin rate over the given duration.
func CalibrateSpinner(dur time.Duration) (*Spinner, error) {
	if dur <= 0 {
		return nil, errors.New("emu: non-positive calibration duration")
	}
	const chunk = 1 << 16
	state := uint64(1)
	iters := 0
	start := time.Now()
	for time.Since(start) < dur {
		state = spin(state, chunk)
		iters += chunk
	}
	elapsed := time.Since(start).Seconds()
	if elapsed <= 0 || iters == 0 {
		return nil, errors.New("emu: spinner calibration failed")
	}
	return &Spinner{opsPerSec: float64(iters) / elapsed, state: state}, nil
}

// OpsPerSec reports the calibrated spin rate.
func (s *Spinner) OpsPerSec() float64 { return s.opsPerSec }

// SpinFor burns approximately cpuSeconds of CPU time.
func (s *Spinner) SpinFor(cpuSeconds float64) {
	if cpuSeconds <= 0 {
		return
	}
	n := int(cpuSeconds * s.opsPerSec)
	if n < 1 {
		n = 1
	}
	s.state = spin(s.state, n)
}
