package experiments

import (
	"fmt"
	"math"
	"os"

	"contention/internal/calibrate"
	"contention/internal/caltrust"
	"contention/internal/core"
	"contention/internal/des"
	"contention/internal/rm"
	"contention/internal/stats"
	"contention/internal/workload"
)

// The calibration-drift experiment: a platform whose wire bandwidth
// degrades mid-run (a flaky cable, a re-routed mesh — the paper's §4
// "slowdown factors should be recalculated" concern, applied to the
// platform constants rather than the job mix). The trust layer must
// notice from prediction residuals alone, flip the predictor to its
// conservative fallback, recalibrate on the drifted platform, and
// recover the pre-drift prediction error.

const (
	// caldriftWindows is the total number of monitoring windows; each
	// window measures one contended burst and feeds the residual to the
	// drift detector.
	caldriftWindows = 12
	// caldriftInjectAt is the first window run on the drifted platform.
	caldriftInjectAt = 4
	// caldriftMaxLag bounds the acceptable detection latency in windows.
	caldriftMaxLag = 4
	// caldriftBandwidthFactor scales the wire bandwidth at injection —
	// a β drift in the model's terms. At 512-word messages the wire is
	// ~20% of the burst cost, so a 70% bandwidth loss shifts the
	// residual by ≈ +0.45 — far past the detector's λ in one window.
	caldriftBandwidthFactor = 0.30
)

// caldriftRecalOptions is the reduced suite used for automatic
// recalibration: same grids a scheduler could afford on-line, with the
// robust layer on so the recalibrated parameters carry intervals.
func caldriftRecalOptions(env *Env) calibrate.Options {
	o := env.Opts
	o.BurstCount = 50
	o.Sizes = []int{32, 128, 256, 512, 768, 1024, 1536, 2048, 3072, 4096}
	o.MaxContenders = 3
	o.ProbeWork = 0.5
	o.Repeats = 2
	o.BootstrapResamples = 50
	return o
}

// caldriftPredict evaluates the model's contended burst prediction for
// the Figure 5 scenario under the given calibration.
func caldriftPredict(cal core.Calibration, count, words int) (float64, *core.Predictor, error) {
	pred := core.NewPredictorLenient(cal)
	_, cs := figure56Contenders()
	dcomm, err := pred.DedicatedComm(core.HostToBack, []core.DataSet{{N: count, Words: words}})
	if err != nil {
		return 0, nil, err
	}
	slowdown, err := core.CommSlowdown(cs, cal.Tables)
	if err != nil {
		return 0, nil, err
	}
	return dcomm * slowdown, pred, nil
}

// CalibrationDrift runs the end-to-end trust loop: clean windows on the
// calibrated platform, a mid-run bandwidth drop, CUSUM detection from
// residuals, degraded fallback, automatic recalibration through the
// versioned store, and error recovery after adoption.
func CalibrationDrift(env *Env) (Result, error) {
	const count, words = 400, 512
	specs, cs := figure56Contenders()

	predicted, pred, err := caldriftPredict(env.Cal, count, words)
	if err != nil {
		return Result{}, err
	}

	// The versioned store holds the original calibration as v1; the
	// automatic recalibration lands as v2.
	dir, err := os.MkdirTemp("", "caldrift-store-")
	if err != nil {
		return Result{}, err
	}
	defer os.RemoveAll(dir)
	store, err := caltrust.NewStore(dir)
	if err != nil {
		return Result{}, err
	}
	if _, err := store.Save(env.Cal, caltrust.Meta{Note: "initial calibration"}); err != nil {
		return Result{}, err
	}

	recalRequested := ""
	cfg := caltrust.DefaultTrackerConfig()
	cfg.OnStale = func(reason string) { recalRequested = reason }
	tracker, err := caltrust.NewTracker(pred, cfg)
	if err != nil {
		return Result{}, err
	}

	// The resource manager surfaces the trust state to schedulers.
	mgr, err := rm.New(des.New(), rm.Config{Tables: env.Cal.Tables, Trust: tracker})
	if err != nil {
		return Result{}, err
	}
	healthAt := func(stage string) string {
		state, reason := mgr.Health()
		if reason != "" {
			return fmt.Sprintf("rm health %s: %v (%s)", stage, state, reason)
		}
		return fmt.Sprintf("rm health %s: %v", stage, state)
	}

	drifted := env.ParagonParams
	drifted.Link.Bandwidth *= caldriftBandwidthFactor

	r := Result{
		ID:     "caldrift",
		Title:  "Calibration drift: detection, degraded fallback, and recovery (Figure 5 scenario)",
		XLabel: "window",
		YLabel: "seconds",
	}
	var xs, actualYs, predictedYs, residYs []float64
	var preErr, driftErr, postErr []float64
	detectedAt := -1
	recalAt := -1
	notes := []string{healthAt("initial")}

	for w := 0; w < caldriftWindows; w++ {
		params := env.ParagonParams
		if w >= caldriftInjectAt {
			params = drifted
		}
		actual, err := burstElapsed(params, workload.SunToParagon, count, words, specs)
		if err != nil {
			return Result{}, err
		}
		resid := actual/predicted - 1
		xs = append(xs, float64(w))
		actualYs = append(actualYs, actual)
		predictedYs = append(predictedYs, predicted)
		residYs = append(residYs, resid)
		errPct := 100 * math.Abs(actual-predicted) / actual
		switch {
		case w < caldriftInjectAt:
			preErr = append(preErr, errPct)
		case detectedAt < 0 || recalAt < 0:
			driftErr = append(driftErr, errPct)
		default:
			postErr = append(postErr, errPct)
		}

		fired, err := tracker.Observe(predicted, actual)
		if err != nil {
			return Result{}, err
		}
		if fired {
			detectedAt = w
			notes = append(notes,
				fmt.Sprintf("window %d: drift detected (%s)", w, tracker.Reason()),
				healthAt("post-detection"))
			// The stale predictor must answer with the conservative p+1
			// fallback until recalibration.
			p, err := tracker.Predictor().PredictCommRobust(core.HostToBack,
				[]core.DataSet{{N: count, Words: words}}, cs)
			if err != nil {
				return Result{}, err
			}
			if !p.Degraded {
				return Result{}, fmt.Errorf("experiments: stale predictor answered un-degraded")
			}
			notes = append(notes, fmt.Sprintf("degraded fallback active: %q (predicts %.4gs)", p.Reason, p.Value))

			// Automatic recalibration on the drifted platform, persisted
			// as the next store version and adopted.
			opts := caldriftRecalOptions(env)
			opts.Params = drifted
			recal, conf, err := calibrate.RunRobust(opts)
			if err != nil {
				return Result{}, err
			}
			v, err := store.Save(recal, caltrust.Meta{Note: fmt.Sprintf("auto recalibration at window %d", w)})
			if err != nil {
				return Result{}, err
			}
			cur, _, curV, err := store.Current()
			if err != nil {
				return Result{}, err
			}
			if curV != v {
				return Result{}, fmt.Errorf("experiments: store CURRENT at v%d, want v%d", curV, v)
			}
			newPredicted, newPred, err := caldriftPredict(cur, count, words)
			if err != nil {
				return Result{}, err
			}
			if err := tracker.Adopt(newPred); err != nil {
				return Result{}, err
			}
			if tracker.State() != caltrust.Fresh {
				return Result{}, fmt.Errorf("experiments: recalibrated tracker %v, want fresh (%s)",
					tracker.State(), tracker.Reason())
			}
			predicted = newPredicted
			recalAt = w
			notes = append(notes,
				fmt.Sprintf("window %d: recalibrated on drifted platform → store v%d (repeats %d, %d outliers rejected)",
					w, v, conf.Repeats, conf.OutliersRejected),
				healthAt("post-recalibration"))
		}
	}

	if detectedAt < 0 {
		return Result{}, fmt.Errorf("experiments: injected β drift never detected")
	}
	lag := detectedAt - caldriftInjectAt
	if lag > caldriftMaxLag {
		return Result{}, fmt.Errorf("experiments: detection lag %d windows exceeds bound %d", lag, caldriftMaxLag)
	}
	if recalRequested == "" {
		return Result{}, fmt.Errorf("experiments: OnStale recalibration request never fired")
	}
	if len(postErr) == 0 {
		return Result{}, fmt.Errorf("experiments: no post-recalibration windows ran")
	}

	r.Series = []Series{
		{Name: "actual", X: xs, Y: actualYs},
		{Name: "predicted", X: xs, Y: predictedYs},
		{Name: "residual", X: xs, Y: residYs},
	}
	r.ModelErrPct = map[string]float64{
		"pre-drift":        stats.Mean(preErr),
		"undetected-drift": stats.Mean(driftErr),
		"post-recal":       stats.Mean(postErr),
	}
	r.Notes = append(notes,
		fmt.Sprintf("β drift injected at window %d (bandwidth ×%.2f); detected at window %d (lag %d ≤ %d)",
			caldriftInjectAt, caldriftBandwidthFactor, detectedAt, lag, caldriftMaxLag),
		fmt.Sprintf("error %.1f%% pre-drift → %.1f%% while drifted → %.1f%% after recalibration",
			stats.Mean(preErr), stats.Mean(driftErr), stats.Mean(postErr)),
	)
	return r, nil
}
