package experiments

import (
	"sync"

	"contention/internal/calibrate"
	"contention/internal/core"
	"contention/internal/platform"
	"contention/internal/runner"
)

// Env bundles the platform parameters and the calibrations every driver
// shares. Calibration runs once per Env (it is static per platform, as
// in the paper).
type Env struct {
	ParagonParams platform.ParagonParams
	CM2Params     platform.CM2Params

	// Cal is the Sun/Paragon calibration (α/β per direction + delay tables).
	Cal core.Calibration
	// CM2Model is the Sun/CM2 dedicated transfer model.
	CM2Model core.CommModel
	// Opts records the calibration options used.
	Opts calibrate.Options
	// Pred is the shared predictor over Cal. It is goroutine-safe and
	// memoizes slowdown mixtures, so every driver drawing from it
	// amortizes the Poisson-binomial DP across the whole suite.
	Pred *core.Predictor
	// Pool is the worker pool drivers fan sweep points out on. nil (or
	// runner.Serial()) runs everything inline; the parallel pool
	// produces byte-identical results in the same order, because every
	// sweep point simulates on its own DES kernel with locally seeded
	// RNGs and results are assembled by index.
	Pool *runner.Pool
}

// pool returns the fan-out pool, defaulting to serial.
func (e *Env) pool() *runner.Pool { return e.Pool }

// NewEnv calibrates both platforms and returns the shared environment.
func NewEnv() (*Env, error) {
	pparams := platform.DefaultParagonParams(platform.OneHop)
	opts := calibrate.DefaultOptions(pparams)
	cal, err := calibrate.Run(opts)
	if err != nil {
		return nil, err
	}
	cm2Params := platform.DefaultCM2Params()
	cm2Model, err := calibrate.CalibrateCM2(calibrate.DefaultCM2Options(cm2Params))
	if err != nil {
		return nil, err
	}
	pred, err := core.NewPredictor(cal)
	if err != nil {
		return nil, err
	}
	return &Env{
		ParagonParams: pparams,
		CM2Params:     cm2Params,
		Cal:           cal,
		CM2Model:      cm2Model,
		Opts:          opts,
		Pred:          pred,
	}, nil
}

var (
	sharedEnv  *Env
	sharedErr  error
	sharedOnce sync.Once
)

// SharedEnv returns a lazily created process-wide Env, so tests and
// benchmarks pay the calibration cost once. The shared Env is serial;
// use WithPool for a parallel view of it.
func SharedEnv() (*Env, error) {
	sharedOnce.Do(func() { sharedEnv, sharedErr = NewEnv() })
	return sharedEnv, sharedErr
}

// WithPool returns a shallow copy of the Env that fans out on p. The
// calibrations and the memoized predictor stay shared.
func (e *Env) WithPool(p *runner.Pool) *Env {
	c := *e
	c.Pool = p
	return &c
}
