package experiments

import (
	"sync"

	"contention/internal/calibrate"
	"contention/internal/core"
	"contention/internal/platform"
)

// Env bundles the platform parameters and the calibrations every driver
// shares. Calibration runs once per Env (it is static per platform, as
// in the paper).
type Env struct {
	ParagonParams platform.ParagonParams
	CM2Params     platform.CM2Params

	// Cal is the Sun/Paragon calibration (α/β per direction + delay tables).
	Cal core.Calibration
	// CM2Model is the Sun/CM2 dedicated transfer model.
	CM2Model core.CommModel
	// Opts records the calibration options used.
	Opts calibrate.Options
}

// NewEnv calibrates both platforms and returns the shared environment.
func NewEnv() (*Env, error) {
	pparams := platform.DefaultParagonParams(platform.OneHop)
	opts := calibrate.DefaultOptions(pparams)
	cal, err := calibrate.Run(opts)
	if err != nil {
		return nil, err
	}
	cm2Params := platform.DefaultCM2Params()
	cm2Model, err := calibrate.CalibrateCM2(calibrate.DefaultCM2Options(cm2Params))
	if err != nil {
		return nil, err
	}
	return &Env{
		ParagonParams: pparams,
		CM2Params:     cm2Params,
		Cal:           cal,
		CM2Model:      cm2Model,
		Opts:          opts,
	}, nil
}

var (
	sharedEnv  *Env
	sharedErr  error
	sharedOnce sync.Once
)

// SharedEnv returns a lazily created process-wide Env, so tests and
// benchmarks pay the calibration cost once.
func SharedEnv() (*Env, error) {
	sharedOnce.Do(func() { sharedEnv, sharedErr = NewEnv() })
	return sharedEnv, sharedErr
}
