// Package experiments contains one driver per table and figure of the
// paper's evaluation. Each driver runs the "actual" measurement on the
// simulated platform (with emulated contention, as the paper emulated
// contention on production systems) and the model prediction from the
// calibrated parameters, returning both as labelled series together
// with the mean error and the error the paper quotes for the same
// experiment.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"contention/internal/stats"
)

// Series is one labelled curve of a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Result is one reproduced table or figure.
type Result struct {
	ID     string // "table1", "figure5", ...
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// Text carries non-tabular output (the Figure 2 timeline).
	Text string
	// Notes document scenario details and observations.
	Notes []string
	// ModelErrPct maps a comparison label (e.g. "p=3") to the measured
	// MAPE between the model series and the actual series.
	ModelErrPct map[string]float64
	// PaperErrPct is the error the paper quotes for this experiment
	// (0 when the paper gives none).
	PaperErrPct float64
}

// seriesByName returns the series with the given name, if present.
func (r Result) seriesByName(name string) (Series, bool) {
	for _, s := range r.Series {
		if s.Name == name {
			return s, true
		}
	}
	return Series{}, false
}

// Err returns the recorded model error for a comparison label.
func (r Result) Err(label string) float64 { return r.ModelErrPct[label] }

// sharedGrid reports whether every series has exactly the X grid of
// the first (same length, same values) and a matching Y per point.
func (r Result) sharedGrid() bool {
	base := r.Series[0].X
	for _, s := range r.Series {
		if len(s.X) != len(base) || len(s.Y) != len(base) {
			return false
		}
		for i, x := range s.X {
			if x != base[i] {
				return false
			}
		}
	}
	return true
}

// Render formats the result as an aligned text table (one row per x,
// one column per series), followed by notes and error lines.
func (r Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	if r.Text != "" {
		b.WriteString(r.Text)
		if !strings.HasSuffix(r.Text, "\n") {
			b.WriteByte('\n')
		}
	}
	switch {
	case len(r.Series) > 0 && r.sharedGrid():
		// All series share one X grid: one row per x, one column per
		// series.
		fmt.Fprintf(&b, "%12s", r.XLabel)
		for _, s := range r.Series {
			fmt.Fprintf(&b, "  %14s", s.Name)
		}
		b.WriteByte('\n')
		for i, x := range r.Series[0].X {
			fmt.Fprintf(&b, "%12.4g", x)
			for _, s := range r.Series {
				fmt.Fprintf(&b, "  %14.6g", s.Y[i])
			}
			b.WriteByte('\n')
		}
	case len(r.Series) > 0:
		// Ragged X grids: a shared table would silently drop or
		// misalign points, so render every series as its own block.
		for _, s := range r.Series {
			fmt.Fprintf(&b, "-- %s --\n", s.Name)
			fmt.Fprintf(&b, "%12s  %14s\n", r.XLabel, s.Name)
			for i, x := range s.X {
				fmt.Fprintf(&b, "%12.4g", x)
				if i < len(s.Y) {
					fmt.Fprintf(&b, "  %14.6g", s.Y[i])
				}
				b.WriteByte('\n')
			}
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	labels := make([]string, 0, len(r.ModelErrPct))
	for label := range r.ModelErrPct {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	for _, label := range labels {
		fmt.Fprintf(&b, "model error (%s): %.1f%%\n", label, r.ModelErrPct[label])
	}
	if r.PaperErrPct > 0 {
		fmt.Fprintf(&b, "paper-quoted error: ≈%.0f%%\n", r.PaperErrPct)
	}
	return b.String()
}

// mape is a convenience wrapper that panics on programmer error (the
// drivers always produce matched series).
func mape(pred, actual []float64) float64 {
	m, err := stats.MAPE(pred, actual)
	if err != nil {
		panic(err)
	}
	return m
}
