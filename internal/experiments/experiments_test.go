package experiments

import (
	"encoding/json"
	"strings"
	"testing"
)

func env(t *testing.T) *Env {
	t.Helper()
	e, err := SharedEnv()
	if err != nil {
		t.Fatalf("calibration failed: %v", err)
	}
	return e
}

func TestTables12ReproducesPaper(t *testing.T) {
	r, err := Tables12()
	if err != nil {
		t.Fatal(err)
	}
	ys := r.Series[0].Y
	if ys[0] != 16 {
		t.Fatalf("best makespan %v, want 16", ys[0])
	}
	if len(ys) != 4 {
		t.Fatalf("ranked %d assignments, want 4", len(ys))
	}
}

func TestTable3ReproducesPaper(t *testing.T) {
	r, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	if r.Series[0].Y[0] != 38 {
		t.Fatalf("best contended makespan %v, want 38", r.Series[0].Y[0])
	}
	if r.Series[0].Y[1] != 48 {
		t.Fatalf("both-on-M1 makespan %v, want 48", r.Series[0].Y[1])
	}
}

func TestTable4ReproducesPaper(t *testing.T) {
	r, err := Table4()
	if err != nil {
		t.Fatal(err)
	}
	if r.Series[0].Y[0] != 48 {
		t.Fatalf("best makespan %v, want 48", r.Series[0].Y[0])
	}
	if r.Series[0].Y[1] != 54 {
		t.Fatalf("split makespan %v, want 54", r.Series[0].Y[1])
	}
}

func TestFigure1ModelTracksActual(t *testing.T) {
	r, err := Figure1(env(t))
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Err("p=0"); got > 5 {
		t.Fatalf("dedicated error %.1f%%, want < 5%%", got)
	}
	if got := r.Err("p=3"); got > 15 {
		t.Fatalf("contended error %.1f%%, want < 15%% (paper: 11%%)", got)
	}
	ded, _ := r.seriesByName("actual p=0")
	con, _ := r.seriesByName("actual p=3")
	for i := range ded.Y {
		ratio := con.Y[i] / ded.Y[i]
		if ratio < 3 || ratio > 4.2 {
			t.Fatalf("M=%v: contention ratio %.2f outside [3,4.2] (3 CPU-bound hogs)", ded.X[i], ratio)
		}
	}
}

func TestFigure2TimelineShowsInterleave(t *testing.T) {
	r, err := Figure2(env(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, needle := range []string{"serial instruction", "execute", "idle", "idle (await result)"} {
		if !strings.Contains(r.Text, needle) {
			t.Fatalf("timeline missing %q:\n%s", needle, r.Text)
		}
	}
	// Overlap must exist: some row shows the Sun doing serial work while
	// the CM2 executes.
	overlap := false
	for _, line := range strings.Split(r.Text, "\n") {
		if strings.Contains(line, "serial instruction") && strings.Contains(line, "execute") {
			overlap = true
			break
		}
	}
	if !overlap {
		t.Fatalf("no front-end/back-end overlap visible:\n%s", r.Text)
	}
}

func TestFigure3CrossoverShape(t *testing.T) {
	r, err := Figure3(env(t))
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Err("p=3"); got > 15 {
		t.Fatalf("contended error %.1f%%, want < 15%% (paper quotes 15%%)", got)
	}
	ded, _ := r.seriesByName("actual p=0")
	con, _ := r.seriesByName("actual p=3")
	// Small problems: contention hurts (serial-bound). The paper shows
	// the gap for M < 200.
	first := con.Y[0] / ded.Y[0]
	if first < 1.25 {
		t.Fatalf("M=%v: contended/dedicated = %.2f, want > 1.25 (serial-bound)", ded.X[0], first)
	}
	// Large problems: curves join (CM2-bound).
	last := con.Y[len(con.Y)-1] / ded.Y[len(ded.Y)-1]
	if last > 1.1 {
		t.Fatalf("M=%v: contended/dedicated = %.2f, want ≤ 1.1 (CM2-bound)", ded.X[len(ded.X)-1], last)
	}
	// The crossover lands in the paper's neighbourhood.
	crossed := false
	for i := range ded.X {
		if ded.X[i] >= 150 && ded.X[i] <= 350 && con.Y[i] <= ded.Y[i]*1.1 {
			crossed = true
			break
		}
	}
	if !crossed {
		t.Fatal("no crossover found in M ∈ [150, 350] (paper: M ≈ 200)")
	}
}

func TestFigure4PiecewiseShape(t *testing.T) {
	r, err := Figure4(env(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 4 {
		t.Fatalf("got %d series, want 4 (2 directions × 2 modes)", len(r.Series))
	}
	for _, s := range r.Series {
		// Monotone in message size.
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i] <= s.Y[i-1] {
				t.Fatalf("%s: not increasing at %v", s.Name, s.X[i])
			}
		}
		// The knee: per-word marginal cost above the MTU exceeds the
		// marginal cost below it.
		slope := func(i, j int) float64 { return (s.Y[j] - s.Y[i]) / (s.X[j] - s.X[i]) }
		idx := func(x float64) int {
			for i, v := range s.X {
				if v == x {
					return i
				}
			}
			t.Fatalf("%s: missing x=%v", s.Name, x)
			return -1
		}
		below := slope(idx(256), idx(1024))
		above := slope(idx(1536), idx(4096))
		if above <= below*1.05 {
			t.Fatalf("%s: no knee: slope below MTU %v, above %v", s.Name, below, above)
		}
	}
	// 2-HOPS is never faster than 1-HOP for the same direction.
	oneHop, _ := r.seriesByName("sun→paragon 1-HOP")
	twoHops, _ := r.seriesByName("sun→paragon 2-HOPS")
	for i := range oneHop.Y {
		if twoHops.Y[i] < oneHop.Y[i]-1e-9 {
			t.Fatalf("2-HOPS faster than 1-HOP at %v", oneHop.X[i])
		}
	}
}

func TestFigure5ErrorWithinPaperBand(t *testing.T) {
	r, err := Figure5(env(t))
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Err("contended"); got > 20 {
		t.Fatalf("error %.1f%%, want < 20%% (paper: ≈12%%)", got)
	}
	// The contended series must sit clearly above dedicated.
	ded, _ := r.seriesByName("dedicated")
	act, _ := r.seriesByName("actual")
	for i := range ded.Y {
		if act.Y[i] < ded.Y[i]*1.2 {
			t.Fatalf("at %v words contention barely visible: %.3f vs %.3f", ded.X[i], act.Y[i], ded.Y[i])
		}
	}
}

func TestFigure6ErrorWithinPaperBand(t *testing.T) {
	r, err := Figure6(env(t))
	if err != nil {
		t.Fatal(err)
	}
	// The paper quotes ≈14% here and observes up to 30% when contenders
	// communicate intensively.
	if got := r.Err("contended"); got > 25 {
		t.Fatalf("error %.1f%%, want < 25%% (paper: ≈14%%)", got)
	}
}

func TestFigure7JSensitivity(t *testing.T) {
	r, err := Figure7(env(t))
	if err != nil {
		t.Fatal(err)
	}
	best := r.Err("j=1000")
	if best > 10 {
		t.Fatalf("j=1000 error %.1f%%, want < 10%% (paper: 4%%)", best)
	}
	if j1 := r.Err("j=1"); j1 <= best+5 {
		t.Fatalf("j=1 error %.1f%% should clearly exceed j=1000 error %.1f%% (paper: 32%% vs 4%%)", j1, best)
	}
}

func TestFigure8JSensitivity(t *testing.T) {
	r, err := Figure8(env(t))
	if err != nil {
		t.Fatal(err)
	}
	best := r.Err("j=500")
	if best > 15 {
		t.Fatalf("j=500 error %.1f%%, want < 15%% (paper: 5%%)", best)
	}
	if j1 := r.Err("j=1"); j1 <= best+5 {
		t.Fatalf("j=1 error %.1f%% should clearly exceed j=500 error %.1f%% (paper: 25%% vs 5%%)", j1, best)
	}
}

func TestAllRunsEveryDriver(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep in -short mode")
	}
	results, err := All(env(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 11 {
		t.Fatalf("got %d results, want 11 (3 tables + 8 figures)", len(results))
	}
	seen := map[string]bool{}
	for _, r := range results {
		if r.ID == "" || r.Title == "" {
			t.Fatalf("result missing ID/title: %+v", r)
		}
		if seen[r.ID] {
			t.Fatalf("duplicate result ID %q", r.ID)
		}
		seen[r.ID] = true
		if out := r.Render(); !strings.Contains(out, r.ID) {
			t.Fatalf("Render output missing ID for %s", r.ID)
		}
	}
}

func TestRenderFormatsSeries(t *testing.T) {
	r := Result{
		ID: "x", Title: "t", XLabel: "n", YLabel: "s",
		Series:      []Series{{Name: "a", X: []float64{1, 2}, Y: []float64{3, 4}}},
		Notes:       []string{"hello"},
		ModelErrPct: map[string]float64{"c": 5},
		PaperErrPct: 10,
	}
	out := r.Render()
	for _, needle := range []string{"== x: t ==", "hello", "5.0%", "≈10%"} {
		if !strings.Contains(out, needle) {
			t.Fatalf("Render missing %q:\n%s", needle, out)
		}
	}
}

func TestSyntheticSuiteWithinPaperBand(t *testing.T) {
	r, err := SyntheticCM2(env(t), 24)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Err("suite"); got > 15 {
		t.Fatalf("synthetic suite error %.1f%%, want < 15%% (paper's generality claim)", got)
	}
	if len(r.Series[0].Y) != 24 {
		t.Fatalf("modeled series has %d points, want 24", len(r.Series[0].Y))
	}
	if _, err := SyntheticCM2(env(t), 0); err == nil {
		t.Fatal("zero program count accepted")
	}
}

func TestResultMarshalsToJSON(t *testing.T) {
	r := Result{
		ID: "x", Title: "t",
		Series:      []Series{{Name: "a", X: []float64{1}, Y: []float64{2}}},
		ModelErrPct: map[string]float64{"c": 5},
	}
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.ID != "x" || len(back.Series) != 1 || back.Series[0].Y[0] != 2 {
		t.Fatalf("round trip lost data: %+v", back)
	}
}
