package experiments

import (
	"testing"
)

func TestIOCharacteristicsExtendedModelWins(t *testing.T) {
	r, err := IOCharacteristics(env(t))
	if err != nil {
		t.Fatal(err)
	}
	ext := r.Err("extended")
	naive := r.Err("naive")
	if ext > 10 {
		t.Fatalf("extended-model error %.1f%%, want < 10%%", ext)
	}
	if naive < ext+20 {
		t.Fatalf("naive p+1 error %.1f%% should grossly exceed extended %.1f%%", naive, ext)
	}
	// The contenders are mostly I/O-bound: actual slowdown well under p+1.
	ded, _ := r.seriesByName("dedicated")
	act, _ := r.seriesByName("actual")
	for i := range ded.Y {
		ratio := act.Y[i] / ded.Y[i]
		if ratio < 1.3 || ratio > 2.2 {
			t.Fatalf("M=%v: slowdown %.2f outside (1.3,2.2) for 2 I/O-bound contenders", ded.X[i], ratio)
		}
	}
}

func TestPhasedContentionBeatsStatic(t *testing.T) {
	r, err := PhasedContention(env(t))
	if err != nil {
		t.Fatal(err)
	}
	phased := r.Err("phased")
	static := r.Err("static")
	if phased > 10 {
		t.Fatalf("phased-model error %.1f%%, want < 10%%", phased)
	}
	if phased >= static {
		t.Fatalf("phased error %.1f%% should beat static %.1f%%", phased, static)
	}
}

func TestMultiMachineWithinBand(t *testing.T) {
	r, err := MultiMachine(env(t))
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Err("split"); got > 15 {
		t.Fatalf("split-placement error %.1f%%, want ≤ 15%% (the paper's band)", got)
	}
	if got := r.Err("same"); got > 20 {
		t.Fatalf("same-link error %.1f%%, want ≤ 20%%", got)
	}
	// Same-link placement must cost at least as much as split at small
	// message sizes (the target wire is shared there).
	same, _ := r.seriesByName("actual same")
	split, _ := r.seriesByName("actual split")
	if same.Y[0] <= split.Y[0] {
		t.Fatalf("same-link %.3f not above split %.3f at %v words", same.Y[0], split.Y[0], same.X[0])
	}
}

func TestExtensionsAggregator(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep in -short mode")
	}
	results, err := Extensions(env(t))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"synthetic", "iochar", "phased", "multimachine", "offload", "faulttolerance", "caldrift", "scenarioreplay"}
	if len(results) != len(want) {
		t.Fatalf("got %d results, want %d", len(results), len(want))
	}
	for i, r := range results {
		if r.ID != want[i] {
			t.Fatalf("result %d = %q, want %q", i, r.ID, want[i])
		}
	}
}

func TestOffloadDecisionAccuracy(t *testing.T) {
	r, err := OffloadDecision(env(t))
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Err("sun"); got > 15 {
		t.Fatalf("sun-side error %.1f%%, want ≤ 15%%", got)
	}
	if got := r.Err("offload"); got > 15 {
		t.Fatalf("offload-side error %.1f%%, want ≤ 15%%", got)
	}
	// Every size must be decided correctly, and both regimes must occur.
	sun, _ := r.seriesByName("actual sun")
	off, _ := r.seriesByName("actual offload")
	sunWins, offWins := 0, 0
	for i := range sun.Y {
		if sun.Y[i] < off.Y[i] {
			sunWins++
		} else {
			offWins++
		}
	}
	if sunWins == 0 || offWins == 0 {
		t.Fatalf("no crossover: sunWins=%d offWins=%d", sunWins, offWins)
	}
	found := false
	for _, n := range r.Notes {
		if n == "decision accuracy: 8/8 sizes decided correctly" {
			found = true
		}
	}
	if !found {
		t.Fatalf("decisions not all correct: %v", r.Notes)
	}
}

func TestFaultToleranceSmoothDegradation(t *testing.T) {
	r, err := FaultTolerance(env(t))
	if err != nil {
		t.Fatal(err)
	}
	act, ok := r.seriesByName("actual")
	if !ok {
		t.Fatal("no actual series")
	}
	errs, ok := r.seriesByName("model err %")
	if !ok {
		t.Fatal("no error series")
	}
	// The clean point must be the paper-accuracy regime; each added
	// fault intensity must slow the burst further, growing the
	// fault-blind model's error monotonically — degradation, not
	// collapse.
	if errs.Y[0] > 10 {
		t.Fatalf("clean-run model error %.1f%%, want < 10%%", errs.Y[0])
	}
	for i := 1; i < len(act.Y); i++ {
		if act.Y[i] <= act.Y[i-1] {
			t.Fatalf("rate %v: elapsed %.4g not above %.4g at rate %v",
				act.X[i], act.Y[i], act.Y[i-1], act.X[i-1])
		}
		if errs.Y[i] <= errs.Y[i-1] {
			t.Fatalf("rate %v: model error %.1f%% not above %.1f%%",
				errs.X[i], errs.Y[i], errs.Y[i-1])
		}
	}
	// The conservative p+1 fallback must bound the faulty measurements
	// from above across the sweep — pessimistic, never optimistic.
	deg, ok := r.seriesByName("degraded(p+1)")
	if !ok {
		t.Fatal("no degraded series")
	}
	for i := range act.Y {
		if act.Y[i] > deg.Y[i] {
			t.Fatalf("rate %v: actual %.4g exceeds degraded bound %.4g", act.X[i], act.Y[i], deg.Y[i])
		}
	}
}

func TestCalibrationDriftDetectAndRecover(t *testing.T) {
	r, err := CalibrationDrift(env(t))
	if err != nil {
		t.Fatal(err)
	}
	pre := r.Err("pre-drift")
	during := r.Err("undetected-drift")
	post := r.Err("post-recal")
	// Pre-drift the model is in its paper-accuracy regime.
	if pre > 10 {
		t.Fatalf("pre-drift error %.1f%%, want < 10%%", pre)
	}
	// The injected bandwidth drop must visibly break the model...
	if during < pre+15 {
		t.Fatalf("drifted error %.1f%% barely above pre-drift %.1f%% — drift too weak to test detection", during, pre)
	}
	// ...and recalibration must restore pre-drift accuracy.
	if post > 10 {
		t.Fatalf("post-recalibration error %.1f%%, want < 10%%", post)
	}
	if post > during/2 {
		t.Fatalf("post-recalibration error %.1f%% did not recover from drifted %.1f%%", post, during)
	}
	// The residual series must show the jump at the injection window and
	// the collapse after adoption.
	resid, ok := r.seriesByName("residual")
	if !ok {
		t.Fatal("no residual series")
	}
	if len(resid.Y) != caldriftWindows {
		t.Fatalf("%d residual windows, want %d", len(resid.Y), caldriftWindows)
	}
	if abs := resid.Y[caldriftInjectAt]; abs < 0.15 {
		t.Fatalf("injection-window residual %.3f, want a clear jump", abs)
	}
	last := resid.Y[len(resid.Y)-1]
	if last > 0.1 || last < -0.1 {
		t.Fatalf("final residual %.3f still large after recalibration", last)
	}
}
