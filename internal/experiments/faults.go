package experiments

import (
	"context"
	"fmt"
	"math"

	"contention/internal/core"
	"contention/internal/des"
	"contention/internal/faults"
	"contention/internal/monitor"
	"contention/internal/platform"
	"contention/internal/runner"
	"contention/internal/workload"
)

// faultToleranceSeed fixes the injector RNG so the perturbed sweep is
// exactly reproducible run to run.
const faultToleranceSeed = 96

// faultRun is one measured burst on a fault-injected platform.
type faultRun struct {
	elapsed     float64
	injected    int // total fault events fired
	retransmits int // link-level retransmissions
	stalls      int // host stall/crash windows
	dropped     int // monitor samples lost
}

// faultyBurst measures a Sun→Paragon burst on a platform perturbed by
// the composed fault schedule at the given intensity (rate 0 = clean).
func faultyBurst(params platform.ParagonParams, count, words int, rate float64, seed int64) (faultRun, error) {
	k := des.New()
	sp, err := platform.NewSunParagon(k, params)
	if err != nil {
		return faultRun{}, err
	}
	specs, _ := figure56Contenders()
	for _, s := range specs {
		if _, err := workload.SpawnAlternator(sp, s); err != nil {
			return faultRun{}, err
		}
	}
	mon, err := monitor.New(sp, 0.05, 4096)
	if err != nil {
		return faultRun{}, err
	}
	mon.Start()

	in := faults.NewInjector(k, seed)
	if rate > 0 {
		churnID := 0
		err := in.Arm(
			// Each transmission attempt lost with probability `rate`
			// (70% silent drop, 30% detected corruption).
			faults.LinkFaults{Link: sp.Link, DropProb: 0.7 * rate, CorruptProb: 0.3 * rate},
			// Scheduler hiccups: onset every ~0.5 s, length scaling
			// with the fault intensity.
			faults.HostStalls{Host: sp.Host, MeanSpacing: 0.5, MeanDuration: 0.1 * rate},
			// Fail-stop crash with checkpoint restart, rare but long.
			faults.CrashRestart{Host: sp.Host, MTBF: 6, Downtime: 0.5 * rate},
			// Transient contenders the model is never told about.
			faults.ContenderChurn{MeanSpacing: 0.8, Perturb: func() {
				churnID++
				work := 0.2 * rate
				k.Spawn(fmt.Sprintf("churn%d", churnID), func(p *des.Proc) {
					sp.Host.Compute(p, work)
				})
			}},
			// Lossy telemetry path to the resource manager.
			faults.SampleLoss{Monitor: mon, DropProb: rate},
		)
		if err != nil {
			return faultRun{}, err
		}
	}

	const port = "ftbench"
	workload.SpawnPingEcho(sp, port)
	elapsed := -1.0
	k.Spawn("ftbench", func(p *des.Proc) {
		p.Delay(burstWarmup)
		elapsed = workload.PingPongBurst(p, sp, port, count, words)
		k.Stop()
	})
	k.Run()
	if elapsed < 0 {
		return faultRun{}, fmt.Errorf("experiments: faulty burst (rate %v) did not finish", rate)
	}
	return faultRun{
		elapsed:     elapsed,
		injected:    in.Count(""),
		retransmits: sp.Link.Retransmits(),
		stalls:      sp.Host.Stalls(),
		dropped:     mon.Dropped(),
	}, nil
}

// faultRates is the fault-intensity sweep.
var faultRates = []float64{0, 0.05, 0.1, 0.2, 0.4}

// FaultTolerance sweeps the composed fault schedule over increasing
// intensities on the Figure 5 scenario and compares the measured burst
// time against two predictions that both know nothing about the faults:
// the calibrated mixture model, and the degraded p+1 worst case that
// core.Predictor falls back to when its delay tables are gone. The
// calibrated model's error must grow smoothly with fault intensity —
// perturbations degrade the prediction, they do not invalidate the
// model — and the run is bit-reproducible for a fixed seed.
func FaultTolerance(env *Env) (Result, error) {
	const count, words = 400, 512
	_, cs := figure56Contenders()
	slowdown, err := env.Pred.CommSlowdown(cs)
	if err != nil {
		return Result{}, err
	}
	dcomm, err := env.Pred.DedicatedComm(core.HostToBack, []core.DataSet{{N: count, Words: words}})
	if err != nil {
		return Result{}, err
	}
	// The degraded path as a scheduler would hit it: a lenient predictor
	// whose delay tables never got calibrated.
	bare := core.NewPredictorLenient(core.Calibration{ToBack: env.Cal.ToBack, ToHost: env.Cal.ToHost})
	degraded, err := bare.PredictCommRobust(core.HostToBack, []core.DataSet{{N: count, Words: words}}, cs)
	if err != nil {
		return Result{}, err
	}
	if !degraded.Degraded {
		return Result{}, fmt.Errorf("experiments: table-less predictor not degraded")
	}

	r := Result{
		ID:     "faulttolerance",
		Title:  "Model error vs injected-fault intensity (Figure 5 scenario, 400×512-word burst)",
		XLabel: "fault rate",
		YLabel: "seconds",
	}
	// Every fault intensity runs its own seeded injector on a private
	// kernel: the sweep fans out on the pool.
	runs, err := runner.Map(context.Background(), env.pool(), faultRates,
		func(_ context.Context, _ int, rate float64) (faultRun, error) {
			return faultyBurst(env.ParagonParams, count, words, rate, faultToleranceSeed)
		})
	if err != nil {
		return Result{}, err
	}
	var xs, actual, modeled, degradedYs, errPct []float64
	var notes []string
	for i, rate := range faultRates {
		run := runs[i]
		xs = append(xs, rate)
		actual = append(actual, run.elapsed)
		modeled = append(modeled, dcomm*slowdown)
		degradedYs = append(degradedYs, degraded.Value)
		errPct = append(errPct, 100*math.Abs(dcomm*slowdown-run.elapsed)/run.elapsed)
		notes = append(notes, fmt.Sprintf(
			"rate %.2f: %d faults injected (%d retransmits, %d host stalls, %d samples lost)",
			rate, run.injected, run.retransmits, run.stalls, run.dropped))
	}
	// Reproducibility: the heaviest point rerun with the same seed must
	// reproduce the measurement and the fault log exactly.
	last := len(faultRates) - 1
	rerun, err := faultyBurst(env.ParagonParams, count, words, faultRates[last], faultToleranceSeed)
	if err != nil {
		return Result{}, err
	}
	if rerun.elapsed != actual[last] || rerun.injected == 0 {
		return Result{}, fmt.Errorf("experiments: fault injection not reproducible: %.9g vs %.9g (%d faults)",
			rerun.elapsed, actual[last], rerun.injected)
	}
	r.Series = []Series{
		{Name: "actual", X: xs, Y: actual},
		{Name: "modeled", X: xs, Y: modeled},
		{Name: "degraded(p+1)", X: xs, Y: degradedYs},
		{Name: "model err %", X: xs, Y: errPct},
	}
	r.ModelErrPct = map[string]float64{
		"clean":          errPct[0],
		"heaviest-fault": errPct[last],
	}
	r.Notes = append(notes,
		fmt.Sprintf("degraded fallback reason: %q", degraded.Reason),
		fmt.Sprintf("reproducible: rate %.2f rerun matches to the bit (%d fault events)", faultRates[last], rerun.injected),
		"the calibrated model's error grows smoothly with fault intensity; the faults are invisible to it by design")
	return r, nil
}
