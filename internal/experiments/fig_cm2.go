package experiments

import (
	"context"
	"fmt"

	"contention/internal/apps"
	"contention/internal/core"
	"contention/internal/des"
	"contention/internal/platform"
	"contention/internal/runner"
	"contention/internal/trace"
	"contention/internal/workload"
)

// Figure-1/3 contenders: "CPU-bound" applications with realistic
// micro-pauses (duty < 1), the reason measured slowdown sits slightly
// below the ideal p+1 — the paper's measurements show the same kind of
// gap (≈11% average error in Figure 1).
const (
	hogDuty   = 0.92
	hogPeriod = 0.08
)

func spawnDutyHogs(k *des.Kernel, plat *platform.SunCM2, n int) {
	for i := 0; i < n; i++ {
		workload.SpawnDutyHogOnHost(k, plat.Host, fmt.Sprintf("hog%d", i), hogDuty, hogPeriod, int64(i+1))
	}
}

// cm2TransferElapsed measures the to-and-from transfer of an M×M matrix
// (M row messages of M words each way) with p contenders.
func cm2TransferElapsed(env *Env, m, hogs int) float64 {
	k := des.New()
	plat := platform.MustNewSunCM2(k, env.CM2Params)
	spawnDutyHogs(k, plat, hogs)
	elapsed := -1.0
	k.Spawn("app", func(p *des.Proc) {
		start := p.Now()
		plat.TransferMessages(p, m, m) // Sun → CM2
		plat.TransferMessages(p, m, m) // CM2 → Sun
		elapsed = p.Now() - start
		k.Stop()
	})
	k.Run()
	return elapsed
}

// Figure1 reproduces the Sun/CM2 communication experiment: modeled and
// actual times to transfer an M×M matrix to and from the CM2, dedicated
// (p=0) and with 3 extra CPU-bound applications (p=3).
func Figure1(env *Env) (Result, error) {
	ms := []int{50, 100, 150, 200, 250, 300, 350, 400, 450, 500}
	r := Result{
		ID:          "figure1",
		Title:       "Sun↔CM2 matrix transfer, dedicated and p=3",
		XLabel:      "M",
		YLabel:      "seconds",
		PaperErrPct: 11,
	}
	type point struct{ dcomm, ded, con float64 }
	pts, err := runner.Map(context.Background(), env.pool(), ms,
		func(_ context.Context, _ int, m int) (point, error) {
			sets := []core.DataSet{{N: 2 * m, Words: m}} // to and from
			dcomm, err := env.CM2Model.Dedicated(sets)
			if err != nil {
				return point{}, err
			}
			return point{
				dcomm: dcomm,
				ded:   cm2TransferElapsed(env, m, 0),
				con:   cm2TransferElapsed(env, m, 3),
			}, nil
		})
	if err != nil {
		return Result{}, err
	}
	var xs []float64
	series := map[string][]float64{}
	for i, m := range ms {
		xs = append(xs, float64(m))
		series["model p=0"] = append(series["model p=0"], core.CM2CommTime(pts[i].dcomm, 0))
		series["actual p=0"] = append(series["actual p=0"], pts[i].ded)
		series["model p=3"] = append(series["model p=3"], core.CM2CommTime(pts[i].dcomm, 3))
		series["actual p=3"] = append(series["actual p=3"], pts[i].con)
	}
	for _, name := range []string{"model p=0", "actual p=0", "model p=3", "actual p=3"} {
		r.Series = append(r.Series, Series{Name: name, X: xs, Y: series[name]})
	}
	r.ModelErrPct = map[string]float64{
		"p=0": mape(series["model p=0"], series["actual p=0"]),
		"p=3": mape(series["model p=3"], series["actual p=3"]),
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("CM2 comm model: α=%.4gs β=%.4g words/s (calibrated)", env.CM2Model.Small.Alpha, env.CM2Model.Small.Beta),
		fmt.Sprintf("contenders: duty %.0f%% CPU-bound hogs — slowdown slightly below p+1, as on real systems", hogDuty*100))
	return r, nil
}

// Figure2 renders the serial/parallel interleave timeline of a small
// CM2 program: the Sun alternating serial instructions with parallel
// instruction issues, the CM2 alternating idle and execute — including
// a reduction where the Sun waits for the CM2's result.
func Figure2(env *Env) (Result, error) {
	k := des.New()
	plat, err := platform.NewSunCM2(k, env.CM2Params)
	if err != nil {
		return Result{}, err
	}
	var tr trace.Trace
	k.Spawn("app", func(p *des.Proc) {
		s := plat.Backend.Attach(p, "fig2", 2)
		serial := func(d float64) {
			tr.Record(p.Now(), "sun", "serial instruction")
			plat.Host.Compute(p, d)
		}
		issue := func(d float64) {
			tr.Record(p.Now(), "sun", "parallel instruction")
			s.Issue(p, d)
		}
		serial(0.004)
		serial(0.004)
		issue(0.006)
		serial(0.002)
		serial(0.002)
		issue(0.006)
		serial(0.002)
		serial(0.004)
		serial(0.004)
		issue(0.006)
		tr.Record(p.Now(), "sun", "idle (await result)")
		s.Sync(p) // the reduction: Sun waits for the CM2
		serial(0.004)
		s.Detach(p)
		tr.Record(p.Now(), "sun", "done")

		// Back-end states from the recorded execution intervals.
		tr.Record(0, "cm2", "idle")
		for _, iv := range s.Intervals() {
			tr.Record(iv.Start, "cm2", "execute")
			tr.Record(iv.End, "cm2", "idle")
		}
		k.Stop()
	})
	k.Run()
	return Result{
		ID:    "figure2",
		Title: "Execution of a task on the CM2: front-end/back-end interleave",
		Text:  tr.Timeline(0.002, []string{"sun", "cm2"}),
		Notes: []string{
			"serial instructions execute on the Sun; parallel instructions are queued to the CM2",
			"the Sun pre-executes serial code while the CM2 works (overlap), and idles awaiting the reduction",
		},
	}, nil
}

// gaussRun measures one Gaussian-elimination run on the CM2 platform.
func gaussRun(env *Env, m, hogs int) (elapsed, busy, idle float64) {
	k := des.New()
	plat := platform.MustNewSunCM2(k, env.CM2Params)
	spawnDutyHogs(k, plat, hogs)
	prog := apps.GaussCM2Program(m)
	k.Spawn("gauss", func(p *des.Proc) {
		elapsed, busy, idle = apps.RunCM2(p, plat, prog)
		k.Stop()
	})
	k.Run()
	return elapsed, busy, idle
}

// Figure3 reproduces the Gaussian-elimination experiment on the CM2:
// modeled and actual times for p=3 against the dedicated curve, with
// the crossover near M=200 beyond which contention stops mattering.
func Figure3(env *Env) (Result, error) {
	ms := []int{50, 100, 150, 200, 250, 300, 350, 400, 450, 500}
	r := Result{
		ID:          "figure3",
		Title:       "Gaussian elimination on the CM2, dedicated vs p=3",
		XLabel:      "M",
		YLabel:      "seconds",
		PaperErrPct: 15,
	}
	type point struct{ ded, model0, model3, con float64 }
	pts, err := runner.Map(context.Background(), env.pool(), ms,
		func(_ context.Context, _ int, m int) (point, error) {
			prog := apps.GaussCM2Program(m)
			// Dedicated run: the source of dcomp_cm2 and didle_cm2.
			ded, busy, idle := gaussRun(env, m, 0)
			contended, _, _ := gaussRun(env, m, 3)
			return point{
				ded:    ded,
				model0: core.CM2ExecTime(busy, idle, prog.TotalSerial(), 0),
				model3: core.CM2ExecTime(busy, idle, prog.TotalSerial(), 3),
				con:    contended,
			}, nil
		})
	if err != nil {
		return Result{}, err
	}
	var xs []float64
	series := map[string][]float64{}
	for i, m := range ms {
		xs = append(xs, float64(m))
		series["actual p=0"] = append(series["actual p=0"], pts[i].ded)
		series["model p=0"] = append(series["model p=0"], pts[i].model0)
		series["model p=3"] = append(series["model p=3"], pts[i].model3)
		series["actual p=3"] = append(series["actual p=3"], pts[i].con)
	}
	for _, name := range []string{"actual p=0", "model p=0", "model p=3", "actual p=3"} {
		r.Series = append(r.Series, Series{Name: name, X: xs, Y: series[name]})
	}
	r.ModelErrPct = map[string]float64{
		"p=0": mape(series["model p=0"], series["actual p=0"]),
		"p=3": mape(series["model p=3"], series["actual p=3"]),
	}
	// Locate the crossover: the first M where the contended run is
	// within 10% of dedicated.
	cross := 0.0
	for i := range xs {
		if series["actual p=3"][i] <= series["actual p=0"][i]*1.10 {
			cross = xs[i]
			break
		}
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("contended run joins the dedicated curve at M ≈ %.0f (paper: M ≈ 200)", cross),
		"T_cm2 = max(dcomp+didle, dserial×(p+1)): serial-bound below the crossover, CM2-bound above")
	return r, nil
}
