package experiments

import (
	"context"
	"fmt"

	"contention/internal/core"
	"contention/internal/des"
	"contention/internal/platform"
	"contention/internal/runner"
	"contention/internal/workload"
)

// burstWarmup lets contenders reach steady state before a measurement.
const burstWarmup = 0.5

// burstElapsed measures one burst (count messages of words each) in the
// given direction on a fresh platform with the given contenders.
func burstElapsed(params platform.ParagonParams, dir workload.Direction, count, words int, specs []workload.AlternatorSpec) (float64, error) {
	k := des.New()
	sp, err := platform.NewSunParagon(k, params)
	if err != nil {
		return 0, err
	}
	for _, s := range specs {
		if _, err := workload.SpawnAlternator(sp, s); err != nil {
			return 0, err
		}
	}
	warmup := burstWarmup
	if len(specs) == 0 {
		warmup = 0
	}
	elapsed := -1.0
	const port = "bench"
	switch dir {
	case workload.SunToParagon:
		workload.SpawnPingEcho(sp, port)
		k.Spawn("bench", func(p *des.Proc) {
			if warmup > 0 {
				p.Delay(warmup)
			}
			elapsed = workload.PingPongBurst(p, sp, port, count, words)
			k.Stop()
		})
	case workload.ParagonToSun:
		ctl := workload.BurstServer(sp, "server", port)
		k.Spawn("bench", func(p *des.Proc) {
			if warmup > 0 {
				p.Delay(warmup)
			}
			elapsed = workload.BurstFromParagon(p, sp, ctl, port, count, words)
			k.Stop()
		})
	default:
		return 0, fmt.Errorf("experiments: unknown direction %d", int(dir))
	}
	k.Run()
	if elapsed < 0 {
		return 0, fmt.Errorf("experiments: burst (dir %v, %d×%d words) did not finish", dir, count, words)
	}
	return elapsed, nil
}

// figure4Sizes is the message-size sweep of the dedicated-burst figure.
var figure4Sizes = []int{16, 64, 128, 256, 512, 768, 1024, 1536, 2048, 3072, 4096}

// Figure4 reproduces the dedicated communication measurement: time to
// send bursts of 1000 equal-sized messages to and from the Paragon in
// both communication modes (1-HOP and 2-HOPS). The curves are piecewise
// linear with the knee at the 1024-word MTU.
func Figure4(env *Env) (Result, error) {
	const count = 1000
	r := Result{
		ID:     "figure4",
		Title:  "Dedicated 1000-message bursts to/from the Paragon, 1-HOP vs 2-HOPS",
		XLabel: "words/msg",
		YLabel: "seconds",
	}
	var xs []float64
	for _, w := range figure4Sizes {
		xs = append(xs, float64(w))
	}
	// Flatten the (mode, direction, size) grid into independent burst
	// simulations and fan them out; series reassemble by index.
	type cell struct {
		mode platform.HopMode
		dir  workload.Direction
		w    int
	}
	var cells []cell
	for _, mode := range []platform.HopMode{platform.OneHop, platform.TwoHops} {
		for _, dir := range []workload.Direction{workload.SunToParagon, workload.ParagonToSun} {
			for _, w := range figure4Sizes {
				cells = append(cells, cell{mode: mode, dir: dir, w: w})
			}
		}
	}
	ys, err := runner.Map(context.Background(), env.pool(), cells,
		func(_ context.Context, _ int, c cell) (float64, error) {
			return burstElapsed(platform.DefaultParagonParams(c.mode), c.dir, count, c.w, nil)
		})
	if err != nil {
		return Result{}, err
	}
	for i := 0; i < len(cells); i += len(figure4Sizes) {
		c := cells[i]
		r.Series = append(r.Series, Series{
			Name: fmt.Sprintf("%v %v", c.dir, c.mode),
			X:    xs,
			Y:    ys[i : i+len(figure4Sizes)],
		})
	}
	r.Notes = append(r.Notes,
		"piecewise linear in message size; knee at the 1024-word MTU (the paper's threshold)",
		"1-HOP and 2-HOPS behave very similarly (2-HOPS adds the NX hop latency)")
	return r, nil
}

// figure56Contenders is the paper's Figure 5/6 workload: two extra
// applications on the Sun alternating computation and communication,
// communicating 25% and 76% of the time with 200-word messages.
func figure56Contenders() ([]workload.AlternatorSpec, []core.Contender) {
	specs := []workload.AlternatorSpec{
		{Name: "alt25", CommFraction: 0.25, MsgWords: 200, Period: 0.1, Phase: 0.017, Direction: workload.SunToParagon},
		{Name: "alt76", CommFraction: 0.76, MsgWords: 200, Period: 0.1, Phase: 0.031, Direction: workload.SunToParagon},
	}
	cs := []core.Contender{
		{CommFraction: 0.25, MsgWords: 200},
		{CommFraction: 0.76, MsgWords: 200},
	}
	return specs, cs
}

// figure56Sizes is the burst-size sweep of Figures 5 and 6.
var figure56Sizes = []int{16, 64, 128, 256, 512, 768, 1024, 1536, 2048}

func burstFigure(env *Env, id, title string, dir workload.Direction, modelDir core.Direction, paperErr float64) (Result, error) {
	const count = 1000
	specs, cs := figure56Contenders()
	slowdown, err := env.Pred.CommSlowdown(cs)
	if err != nil {
		return Result{}, err
	}
	r := Result{
		ID:          id,
		Title:       title,
		XLabel:      "words/msg",
		YLabel:      "seconds",
		PaperErrPct: paperErr,
	}
	// Model sweep: the batched path evaluates the slowdown mixture once
	// for the whole message-size grid.
	var xs []float64
	batches := make([][]core.DataSet, 0, len(figure56Sizes))
	for _, w := range figure56Sizes {
		xs = append(xs, float64(w))
		batches = append(batches, []core.DataSet{{N: count, Words: w}})
	}
	modeled, err := env.Pred.PredictCommBatch(modelDir, batches, cs)
	if err != nil {
		return Result{}, err
	}
	// Measured sweep: a dedicated and a contended burst per size, fanned
	// out on the pool.
	type point struct{ ded, act float64 }
	pts, err := runner.Map(context.Background(), env.pool(), figure56Sizes,
		func(_ context.Context, _ int, w int) (point, error) {
			ded, err := burstElapsed(env.ParagonParams, dir, count, w, nil)
			if err != nil {
				return point{}, err
			}
			act, err := burstElapsed(env.ParagonParams, dir, count, w, specs)
			if err != nil {
				return point{}, err
			}
			return point{ded: ded, act: act}, nil
		})
	if err != nil {
		return Result{}, err
	}
	var dedicated, actual []float64
	for _, pt := range pts {
		dedicated = append(dedicated, pt.ded)
		actual = append(actual, pt.act)
	}
	r.Series = []Series{
		{Name: "dedicated", X: xs, Y: dedicated},
		{Name: "modeled", X: xs, Y: modeled},
		{Name: "actual", X: xs, Y: actual},
	}
	r.ModelErrPct = map[string]float64{"contended": mape(modeled, actual)}
	r.Notes = append(r.Notes,
		fmt.Sprintf("slowdown factor = %.3f (pcomp/pcomm mixture over the delay tables)", slowdown),
		"contenders: 25%% and 76%% communication, 200-word messages")
	return r, nil
}

// Figure5 reproduces the contended Sun→Paragon burst experiment
// (paper-quoted average error ≈12%).
func Figure5(env *Env) (Result, error) {
	return burstFigure(env, "figure5",
		"1000-message bursts Sun→Paragon under two alternating contenders",
		workload.SunToParagon, core.HostToBack, 12)
}

// Figure6 reproduces the contended Paragon→Sun burst experiment
// (paper-quoted average error ≈14%).
func Figure6(env *Env) (Result, error) {
	return burstFigure(env, "figure6",
		"1000-message bursts Paragon→Sun under two alternating contenders",
		workload.ParagonToSun, core.BackToHost, 14)
}
