package experiments

import (
	"context"
	"fmt"
	"sort"

	"contention/internal/apps"
	"contention/internal/core"
	"contention/internal/des"
	"contention/internal/obs"
	"contention/internal/platform"
	"contention/internal/runner"
	"contention/internal/workload"
)

// mDriverSeconds records each driver's wall time; the same interval is
// also captured as a span on the default tracer, so run manifests carry
// a per-driver timeline.
var mDriverSeconds = obs.NewGaugeVec(obs.MetricDriverSeconds,
	"wall seconds spent in each experiment driver", "driver")

// sorIters is the sweep count of the SOR benchmark runs (the paper
// parameterizes by problem size M×M; iterations are held fixed).
const sorIters = 20

// sorSizes is the problem-size sweep of Figures 7 and 8.
var sorSizes = []int{100, 150, 200, 250, 300, 350, 400}

// sorElapsed measures the SOR program (pure Sun computation) under the
// given contenders.
func sorElapsed(params platform.ParagonParams, m int, specs []workload.AlternatorSpec) (float64, error) {
	k := des.New()
	sp, err := platform.NewSunParagon(k, params)
	if err != nil {
		return 0, err
	}
	for _, s := range specs {
		if _, err := workload.SpawnAlternator(sp, s); err != nil {
			return 0, err
		}
	}
	warmup := burstWarmup
	if len(specs) == 0 {
		warmup = 0
	}
	elapsed := -1.0
	k.Spawn("sor", func(p *des.Proc) {
		if warmup > 0 {
			p.Delay(warmup)
		}
		start := p.Now()
		sp.Host.Compute(p, apps.SORWork(m, sorIters))
		elapsed = p.Now() - start
		k.Stop()
	})
	k.Run()
	if elapsed < 0 {
		return 0, fmt.Errorf("experiments: SOR run (M=%d) did not finish", m)
	}
	return elapsed, nil
}

// sorFigure runs one SOR-under-contention experiment, sweeping the j
// column used by the computation slowdown to reproduce the paper's
// sensitivity analysis.
func sorFigure(env *Env, id, title string, specs []workload.AlternatorSpec, cs []core.Contender, bestJ int, paperErrByJ map[int]float64) (Result, error) {
	r := Result{
		ID:          id,
		Title:       title,
		XLabel:      "M",
		YLabel:      "seconds",
		PaperErrPct: paperErrByJ[bestJ],
	}
	jGrid := []int{1, 500, 1000}
	slowdowns := map[int]float64{}
	for _, j := range jGrid {
		s, err := env.Pred.CompSlowdownWithJ(cs, j)
		if err != nil {
			return Result{}, err
		}
		slowdowns[j] = s
	}
	autoSlowdown, err := env.Pred.CompSlowdown(cs)
	if err != nil {
		return Result{}, err
	}

	// Measured sweep: every problem size simulates a dedicated and a
	// contended run on its own DES kernel, so the points fan out on the
	// pool and reassemble by index.
	type point struct{ ded, act float64 }
	pts, err := runner.Map(context.Background(), env.pool(), sorSizes,
		func(_ context.Context, _ int, m int) (point, error) {
			ded, err := sorElapsed(env.ParagonParams, m, nil)
			if err != nil {
				return point{}, err
			}
			act, err := sorElapsed(env.ParagonParams, m, specs)
			if err != nil {
				return point{}, err
			}
			return point{ded: ded, act: act}, nil
		})
	if err != nil {
		return Result{}, err
	}
	var xs, dedicated, actual, dcomps []float64
	for i, m := range sorSizes {
		xs = append(xs, float64(m))
		dcomps = append(dcomps, apps.SORWork(m, sorIters))
		dedicated = append(dedicated, pts[i].ded)
		actual = append(actual, pts[i].act)
	}
	// Model sweep: one slowdown evaluation per j column, amortized over
	// the whole problem-size grid by the batched predictor API.
	modeled := map[int][]float64{}
	for _, j := range jGrid {
		ys, err := env.Pred.PredictCompBatchWithJ(dcomps, cs, j)
		if err != nil {
			return Result{}, err
		}
		modeled[j] = ys
	}
	r.Series = []Series{
		{Name: "dedicated", X: xs, Y: dedicated},
		{Name: "actual", X: xs, Y: actual},
	}
	r.ModelErrPct = map[string]float64{}
	for _, j := range jGrid {
		r.Series = append(r.Series, Series{Name: fmt.Sprintf("model j=%d", j), X: xs, Y: modeled[j]})
		r.ModelErrPct[fmt.Sprintf("j=%d", j)] = mape(modeled[j], actual)
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("slowdowns: j=1 → %.3f, j=500 → %.3f, j=1000 → %.3f (auto j → %.3f)",
			slowdowns[1], slowdowns[500], slowdowns[1000], autoSlowdown),
		fmt.Sprintf("paper: best accuracy at j=%d; j sensitivity shows the message size matters", bestJ))
	// Sorted so the rendered notes are deterministic (map iteration
	// order is not) and serial/parallel runs stay byte-identical.
	paperJs := make([]int, 0, len(paperErrByJ))
	for j := range paperErrByJ {
		paperJs = append(paperJs, j)
	}
	sort.Ints(paperJs)
	for _, j := range paperJs {
		r.Notes = append(r.Notes, fmt.Sprintf("paper error at j=%d: ≈%.0f%%", j, paperErrByJ[j]))
	}
	return r, nil
}

// Figure7 reproduces the SOR experiment with contenders communicating
// 66% (800-word messages) and 33% (1200-word messages) of the time:
// the paper reports 4% error with j=1000, 16% with j=500, 32% with j=1.
func Figure7(env *Env) (Result, error) {
	specs := []workload.AlternatorSpec{
		{Name: "alt66", CommFraction: 0.66, MsgWords: 800, Period: 0.1, Phase: 0.017, Direction: workload.SunToParagon},
		{Name: "alt33", CommFraction: 0.33, MsgWords: 1200, Period: 0.1, Phase: 0.031, Direction: workload.ParagonToSun},
	}
	cs := []core.Contender{
		{CommFraction: 0.66, MsgWords: 800},
		{CommFraction: 0.33, MsgWords: 1200},
	}
	return sorFigure(env, "figure7",
		"SOR on the Sun under contenders (66% @ 800w, 33% @ 1200w)",
		specs, cs, 1000, map[int]float64{1000: 4, 500: 16, 1: 32})
}

// Figure8 reproduces the SOR experiment with contenders communicating
// 40% (500-word messages) and 76% (200-word messages) of the time:
// the paper reports 5% error with j=500 and 25% with j=1 or j=1000.
func Figure8(env *Env) (Result, error) {
	specs := []workload.AlternatorSpec{
		{Name: "alt40", CommFraction: 0.40, MsgWords: 500, Period: 0.1, Phase: 0.017, Direction: workload.SunToParagon},
		{Name: "alt76", CommFraction: 0.76, MsgWords: 200, Period: 0.1, Phase: 0.031, Direction: workload.ParagonToSun},
	}
	cs := []core.Contender{
		{CommFraction: 0.40, MsgWords: 500},
		{CommFraction: 0.76, MsgWords: 200},
	}
	return sorFigure(env, "figure8",
		"SOR on the Sun under contenders (40% @ 500w, 76% @ 200w)",
		specs, cs, 500, map[int]float64{500: 5, 1: 25, 1000: 25})
}

// driver pairs an experiment id with its runner, for the suite fan-out.
type driver struct {
	name string
	run  func() (Result, error)
}

// runDrivers fans the drivers out on the Env's pool. Results come back
// in input order and the reported error is the first driver's (by
// position) regardless of completion order, so the parallel suite is
// observationally identical to the serial loop.
func runDrivers(env *Env, drivers []driver) ([]Result, error) {
	return runner.Map(context.Background(), env.pool(), drivers,
		func(_ context.Context, _ int, d driver) (Result, error) {
			sp := obs.StartSpan("driver", d.name)
			r, err := d.run()
			mDriverSeconds.With(d.name).Add(sp.End())
			if err != nil {
				return Result{}, fmt.Errorf("%s: %w", d.name, err)
			}
			return r, nil
		})
}

// All runs every table and figure driver in paper order.
func All(env *Env) ([]Result, error) {
	return runDrivers(env, []driver{
		{"table1-2", Tables12},
		{"table3", Table3},
		{"table4", Table4},
		{"figure1", func() (Result, error) { return Figure1(env) }},
		{"figure2", func() (Result, error) { return Figure2(env) }},
		{"figure3", func() (Result, error) { return Figure3(env) }},
		{"figure4", func() (Result, error) { return Figure4(env) }},
		{"figure5", func() (Result, error) { return Figure5(env) }},
		{"figure6", func() (Result, error) { return Figure6(env) }},
		{"figure7", func() (Result, error) { return Figure7(env) }},
		{"figure8", func() (Result, error) { return Figure8(env) }},
	})
}

// Extensions runs the drivers that go beyond the paper's published
// exhibits: its generality claim (synthetic suite) and the §4 future
// work implemented here (I/O characteristics, dynamic job mix,
// multi-machine platforms).
func Extensions(env *Env) ([]Result, error) {
	return runDrivers(env, []driver{
		{"synthetic", func() (Result, error) { return SyntheticCM2(env, 30) }},
		{"iochar", func() (Result, error) { return IOCharacteristics(env) }},
		{"phased", func() (Result, error) { return PhasedContention(env) }},
		{"multimachine", func() (Result, error) { return MultiMachine(env) }},
		{"offload", func() (Result, error) { return OffloadDecision(env) }},
		{"faulttolerance", func() (Result, error) { return FaultTolerance(env) }},
		{"caldrift", func() (Result, error) { return CalibrationDrift(env) }},
		{"scenarioreplay", func() (Result, error) { return ScenarioReplay(env) }},
	})
}
