package experiments

import (
	"context"
	"fmt"

	"contention/internal/apps"
	"contention/internal/core"
	"contention/internal/des"
	"contention/internal/platform"
	"contention/internal/runner"
	"contention/internal/workload"
)

// IOCharacteristics demonstrates the paper's §1 argument that load
// *characteristics* (CPU- versus I/O-bound) must be considered, using
// the §4 I/O extension: two I/O-bound contenders (70% disk, 30% CPU)
// slow a computation far less than two CPU-bound ones, and a model that
// treats them as CPU-bound (the naive p+1) grossly overestimates, while
// the extended model with per-contender activity fractions tracks the
// measurement.
func IOCharacteristics(env *Env) (Result, error) {
	const ioFrac = 0.7
	specs := []workload.AlternatorSpec{
		{Name: "io1", CommFraction: 0, IOFraction: ioFrac, IOWords: 8192, MsgWords: 1, Period: 0.1, Phase: 0.013},
		{Name: "io2", CommFraction: 0, IOFraction: ioFrac, IOWords: 8192, MsgWords: 1, Period: 0.1, Phase: 0.029},
	}
	cs := []core.Contender{
		{CommFraction: 0, IOFraction: ioFrac},
		{CommFraction: 0, IOFraction: ioFrac},
	}

	extended, err := env.Pred.CompSlowdown(cs)
	if err != nil {
		return Result{}, err
	}
	naive := core.SimpleSlowdown(len(cs))

	r := Result{
		ID:     "iochar",
		Title:  "I/O-bound contenders: extended model vs naive p+1",
		XLabel: "M",
		YLabel: "seconds",
	}
	type point struct{ ded, act float64 }
	pts, err := runner.Map(context.Background(), env.pool(), sorSizes,
		func(_ context.Context, _ int, m int) (point, error) {
			ded, err := sorElapsed(env.ParagonParams, m, nil)
			if err != nil {
				return point{}, err
			}
			act, err := ioSORElapsed(env.ParagonParams, m, specs)
			if err != nil {
				return point{}, err
			}
			return point{ded: ded, act: act}, nil
		})
	if err != nil {
		return Result{}, err
	}
	var xs, dedicated, actual, extPred, naivePred []float64
	for i, m := range sorSizes {
		xs = append(xs, float64(m))
		dcomp := apps.SORWork(m, sorIters)
		dedicated = append(dedicated, pts[i].ded)
		actual = append(actual, pts[i].act)
		extPred = append(extPred, dcomp*extended)
		naivePred = append(naivePred, dcomp*naive)
	}
	r.Series = []Series{
		{Name: "dedicated", X: xs, Y: dedicated},
		{Name: "actual", X: xs, Y: actual},
		{Name: "extended model", X: xs, Y: extPred},
		{Name: "naive p+1", X: xs, Y: naivePred},
	}
	r.ModelErrPct = map[string]float64{
		"extended": mape(extPred, actual),
		"naive":    mape(naivePred, actual),
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("extended slowdown %.3f vs naive %.0f: the contenders compute only %.0f%% of the time",
			extended, naive, 100*(1-ioFrac)),
		"§1: \"both load characteristics (CPU- versus I/O-bound) and contention on the network should be considered\"")
	return r, nil
}

// ioSORElapsed is sorElapsed with I/O-capable contenders.
func ioSORElapsed(params platform.ParagonParams, m int, specs []workload.AlternatorSpec) (float64, error) {
	k := des.New()
	sp, err := platform.NewSunParagon(k, params)
	if err != nil {
		return 0, err
	}
	for _, s := range specs {
		if _, err := workload.SpawnAlternator(sp, s); err != nil {
			return 0, err
		}
	}
	elapsed := -1.0
	k.Spawn("sor", func(p *des.Proc) {
		p.Delay(burstWarmup)
		start := p.Now()
		sp.Host.Compute(p, apps.SORWork(m, sorIters))
		elapsed = p.Now() - start
		k.Stop()
	})
	k.Run()
	if elapsed < 0 {
		return 0, fmt.Errorf("experiments: I/O SOR run (M=%d) did not finish", m)
	}
	return elapsed, nil
}
