package experiments

import (
	"sort"

	"contention/internal/obs"
)

// FaultSeeds returns the fixed injector seeds the suite's perturbed
// drivers draw from, for run-manifest reproducibility records.
func FaultSeeds() []int64 { return []int64{faultToleranceSeed} }

// BuildManifest assembles the run manifest for an experiments run:
// calibration identity and trust at exit, fault seeds, per-driver wall
// time from the span log, and every summary section derived from the
// default registry snapshot. The caller stamps StartedAt/WallSeconds
// and merges command-line config before writing.
func BuildManifest(env *Env, command string, config map[string]string) *obs.Manifest {
	m := obs.NewManifest(command)
	m.Config = config

	cal := &obs.CalibrationInfo{Platform: "sun-paragon", Version: "in-memory"}
	if env != nil && env.Pred != nil {
		if reason := env.Pred.Stale(); reason != "" {
			cal.Trust = "stale"
			cal.StaleReason = reason
		} else {
			cal.Trust = "fresh"
		}
		if rep := env.Pred.ValidationReport(); rep != nil {
			cal.FatalViolations = len(rep.Fatal())
			if cal.FatalViolations > 0 {
				cal.Trust = "degraded"
			}
		}
	}
	m.Calibration = cal
	m.FaultSeeds = FaultSeeds()

	// Driver wall times come from the span log; the suite may have run
	// drivers concurrently, so reports are sorted by id for stable output.
	spans := obs.DefaultTracer().Spans()
	m.Spans = spans
	for _, sp := range spans {
		if sp.Actor == "driver" {
			m.Drivers = append(m.Drivers, obs.DriverReport{ID: sp.Name, WallSeconds: sp.Duration()})
		}
	}
	sort.Slice(m.Drivers, func(i, j int) bool { return m.Drivers[i].ID < m.Drivers[j].ID })

	if env != nil {
		m.Pool = &obs.PoolReport{Workers: env.pool().Workers()}
	}
	m.FillFromSnapshot(obs.Default().Snapshot())
	return m
}
