package experiments

import (
	"path/filepath"
	"testing"

	"contention/internal/obs"
	"contention/internal/runner"
)

// TestBuildManifestFromRun is the end-to-end telemetry check: a full
// suite run with recording on must produce a manifest whose summary
// sections are nonzero and internally consistent — cache traffic, pool
// utilization from a parallel pool, one driver report per suite driver
// — and the manifest must survive a write/read round trip.
func TestBuildManifestFromRun(t *testing.T) {
	obs.SetEnabled(true)
	t.Cleanup(func() { obs.SetEnabled(false) })

	e := env(t).WithPool(runner.New(2))
	if _, err := All(e); err != nil {
		t.Fatal(err)
	}
	m := BuildManifest(e, "experiments-test", map[string]string{"parallel": "true"})
	if m.Schema != obs.ManifestSchema {
		t.Fatalf("schema %q, want %q", m.Schema, obs.ManifestSchema)
	}

	if m.Cache == nil || m.Cache.CommHits+m.Cache.CommMisses == 0 {
		t.Fatalf("no comm cache traffic recorded: %+v", m.Cache)
	}
	if m.Cache.CompHits+m.Cache.CompMisses == 0 {
		t.Fatalf("no comp cache traffic recorded: %+v", m.Cache)
	}
	if m.Cache.HitRate <= 0 || m.Cache.HitRate > 1 {
		t.Fatalf("cache hit rate %v out of (0,1]", m.Cache.HitRate)
	}

	if m.Predictions == nil || m.Predictions.Comm == 0 || m.Predictions.Comp == 0 {
		t.Fatalf("prediction tallies not recorded: %+v", m.Predictions)
	}

	if m.Pool == nil || m.Pool.Workers != 2 {
		t.Fatalf("pool workers = %+v, want 2", m.Pool)
	}
	if m.Pool.Tasks == 0 || m.Pool.Tasks != m.Pool.Inline+m.Pool.Async {
		t.Fatalf("pool task split inconsistent: %+v", m.Pool)
	}
	if m.Pool.Async < 1 || m.Pool.Utilization <= 0 || m.Pool.Utilization > 1 {
		t.Fatalf("2-worker pool recorded no async work: %+v", m.Pool)
	}
	if m.Pool.Utilization != float64(m.Pool.Async)/float64(m.Pool.Tasks) {
		t.Fatalf("utilization %v ≠ async/tasks (%d/%d)", m.Pool.Utilization, m.Pool.Async, m.Pool.Tasks)
	}

	// Every core driver must have a span-derived wall-time report.
	want := []string{"table1-2", "table3", "table4", "figure1", "figure2",
		"figure3", "figure4", "figure5", "figure6", "figure7", "figure8"}
	got := map[string]bool{}
	for _, d := range m.Drivers {
		if d.WallSeconds < 0 {
			t.Fatalf("driver %s has negative wall time %v", d.ID, d.WallSeconds)
		}
		got[d.ID] = true
	}
	for _, id := range want {
		if !got[id] {
			t.Fatalf("driver %s missing from manifest (have %v)", id, m.Drivers)
		}
	}
	if len(m.Spans) < len(want) {
		t.Fatalf("span log has %d entries, want ≥ %d", len(m.Spans), len(want))
	}
	if len(m.FaultSeeds) == 0 {
		t.Fatal("fault seeds missing")
	}
	if m.Calibration == nil || m.Calibration.Trust != "fresh" {
		t.Fatalf("calibration info %+v, want fresh trust", m.Calibration)
	}

	// The summary must agree with the embedded snapshot it was derived
	// from.
	snap := obs.Snapshot{Metrics: m.Metrics}
	if hits := snap.Counter(obs.MetricCacheCommHits); hits != m.Cache.CommHits {
		t.Fatalf("summary comm hits %d ≠ snapshot %d", m.Cache.CommHits, hits)
	}
	if tasks := snap.Counter(obs.MetricPoolTasks); tasks != m.Pool.Tasks {
		t.Fatalf("summary pool tasks %d ≠ snapshot %d", m.Pool.Tasks, tasks)
	}

	path := filepath.Join(t.TempDir(), "run.json")
	if err := m.Write(path); err != nil {
		t.Fatal(err)
	}
	back, err := obs.ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Pool.Tasks != m.Pool.Tasks || back.Cache.CommHits != m.Cache.CommHits {
		t.Fatalf("round trip changed the manifest: %+v vs %+v", back.Pool, m.Pool)
	}
}
