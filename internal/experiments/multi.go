package experiments

import (
	"fmt"

	"contention/internal/core"
	"contention/internal/des"
	"contention/internal/platform"
	"contention/internal/workload"
)

// MultiMachine validates the more-than-two-machines generalization: a
// front-end drives two back-end machines over separate links. The same
// two contenders are placed either both on the target link ("same") or
// split across the links ("split"); splitting relieves the target wire,
// and the per-link slowdown model predicts each placement with the
// two-machine model's accuracy.
func MultiMachine(env *Env) (Result, error) {
	const count = 1000
	a := core.Contender{CommFraction: 0.76, MsgWords: 200}
	b := core.Contender{CommFraction: 0.66, MsgWords: 800}

	splitSlow, err := core.CommSlowdownMulti(0, []core.MultiContender{
		{Contender: a, Link: 0}, {Contender: b, Link: 1},
	}, env.Cal.Tables)
	if err != nil {
		return Result{}, err
	}
	sameSlow, err := core.CommSlowdownMulti(0, []core.MultiContender{
		{Contender: a, Link: 0}, {Contender: b, Link: 0},
	}, env.Cal.Tables)
	if err != nil {
		return Result{}, err
	}
	pred, err := core.NewPredictor(env.Cal)
	if err != nil {
		return Result{}, err
	}

	r := Result{
		ID:     "multimachine",
		Title:  "Three-machine platform: contender placement across links",
		XLabel: "words/msg",
		YLabel: "seconds",
	}
	var xs, actSame, actSplit, predSame, predSplit []float64
	for _, w := range []int{64, 256, 512, 1024, 2048} {
		xs = append(xs, float64(w))
		dcomm, err := pred.DedicatedComm(core.HostToBack, []core.DataSet{{N: count, Words: w}})
		if err != nil {
			return Result{}, err
		}
		predSplit = append(predSplit, dcomm*splitSlow)
		predSame = append(predSame, dcomm*sameSlow)
		as, err := multiBurst(env.ParagonParams, count, w, false)
		if err != nil {
			return Result{}, err
		}
		actSplit = append(actSplit, as)
		am, err := multiBurst(env.ParagonParams, count, w, true)
		if err != nil {
			return Result{}, err
		}
		actSame = append(actSame, am)
	}
	r.Series = []Series{
		{Name: "actual split", X: xs, Y: actSplit},
		{Name: "model split", X: xs, Y: predSplit},
		{Name: "actual same", X: xs, Y: actSame},
		{Name: "model same", X: xs, Y: predSame},
	}
	r.ModelErrPct = map[string]float64{
		"split": mape(predSplit, actSplit),
		"same":  mape(predSame, actSame),
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("slowdown on link 0: split %.3f, same-link %.3f", splitSlow, sameSlow),
		"splitting the contenders across links relieves the target wire but not the shared CPU",
		"§1: \"generalization of these results to more than two machines is straightforward\"")
	return r, nil
}

// multiBurst measures a burst on leg 0 of a two-back-end platform with
// two contenders, either both on leg 0 or split across legs.
func multiBurst(params platform.ParagonParams, count, words int, sameLink bool) (float64, error) {
	k := des.New()
	legs, err := platform.NewSunMultiParagon(k, params, 2)
	if err != nil {
		return 0, err
	}
	legB := legs[1]
	if sameLink {
		legB = legs[0]
	}
	if _, err := workload.SpawnAlternator(legs[0], workload.AlternatorSpec{
		Name: "contA", CommFraction: 0.76, MsgWords: 200, Period: 0.1, Phase: 0.017,
	}); err != nil {
		return 0, err
	}
	if _, err := workload.SpawnAlternator(legB, workload.AlternatorSpec{
		Name: "contB", CommFraction: 0.66, MsgWords: 800, Period: 0.1, Phase: 0.031,
	}); err != nil {
		return 0, err
	}
	workload.SpawnPingEcho(legs[0], "bench")
	elapsed := -1.0
	k.Spawn("bench", func(p *des.Proc) {
		p.Delay(burstWarmup)
		elapsed = workload.PingPongBurst(p, legs[0], "bench", count, words)
		k.Stop()
	})
	k.Run()
	if elapsed < 0 {
		return 0, fmt.Errorf("experiments: multi-machine burst did not finish")
	}
	return elapsed, nil
}
