package experiments

import (
	"context"
	"fmt"

	"contention/internal/apps"
	"contention/internal/core"
	"contention/internal/des"
	"contention/internal/platform"
	"contention/internal/runner"
	"contention/internal/workload"
)

// OffloadDecision exercises the paper's Equation (1) end to end: for a
// sweep of SOR problem sizes under contention on the Sun, the model
// predicts both the front-end execution time (dcomp × comp slowdown)
// and the offload cost (transfer out × comm slowdown + T_p + transfer
// back × comm slowdown), decides where to run, and the decision is
// checked against actual simulated runs of both options. Small problems
// stay on the Sun (transfer overhead dominates); large ones move to the
// Paragon — the crossover the motivating example is about.
func OffloadDecision(env *Env) (Result, error) {
	const nodes = 8
	specs := []workload.AlternatorSpec{
		{Name: "alt40", CommFraction: 0.40, MsgWords: 500, Period: 0.1, Phase: 0.017},
		{Name: "alt25", CommFraction: 0.25, MsgWords: 200, Period: 0.1, Phase: 0.031},
	}
	cs := []core.Contender{
		{CommFraction: 0.40, MsgWords: 500},
		{CommFraction: 0.25, MsgWords: 200},
	}
	compSlow, err := env.Pred.CompSlowdown(cs)
	if err != nil {
		return Result{}, err
	}
	commSlow, err := env.Pred.CommSlowdown(cs)
	if err != nil {
		return Result{}, err
	}
	pred := env.Pred

	r := Result{
		ID:     "offload",
		Title:  "Equation (1) end to end: run SOR on the Sun or offload to the Paragon?",
		XLabel: "M",
		YLabel: "seconds",
	}
	// Per size: the dedicated T_p estimate plus the two actual contended
	// runs, all on private kernels — fanned out on the pool.
	type point struct{ tp, aSun, aOff float64 }
	ms := []int{16, 24, 32, 48, 64, 100, 200, 400}
	pts, err := runner.Map(context.Background(), env.pool(), ms,
		func(_ context.Context, _ int, m int) (point, error) {
			tp, err := estimateTp(env, apps.SORParagonSpec{M: m, Iters: sorIters, Nodes: nodes})
			if err != nil {
				return point{}, err
			}
			aSun, err := sorElapsed(env.ParagonParams, m, specs)
			if err != nil {
				return point{}, err
			}
			aOff, err := offloadRun(env.ParagonParams, m, nodes, specs)
			if err != nil {
				return point{}, err
			}
			return point{tp: tp, aSun: aSun, aOff: aOff}, nil
		})
	if err != nil {
		return Result{}, err
	}
	var xs, predSun, actSun, predOff, actOff []float64
	correct, total := 0, 0
	crossover := 0.0
	for i, m := range ms {
		xs = append(xs, float64(m))
		dcomp := apps.SORWork(m, sorIters)

		// Model: T_sun.
		tSun := dcomp * compSlow
		predSun = append(predSun, tSun)

		// Model: offload = C_to + T_p + C_from.
		sets := apps.SORDataSets(m)
		dTo, err := pred.DedicatedComm(core.HostToBack, sets)
		if err != nil {
			return Result{}, err
		}
		dFrom, err := pred.DedicatedComm(core.BackToHost, sets)
		if err != nil {
			return Result{}, err
		}
		tp := pts[i].tp
		tOff := dTo*commSlow + tp + dFrom*commSlow
		predOff = append(predOff, tOff)

		// Actual runs of both options under the contenders.
		aSun, aOff := pts[i].aSun, pts[i].aOff
		actSun = append(actSun, aSun)
		actOff = append(actOff, aOff)

		// Decision quality: does the model pick the actual winner?
		modelOffloads := core.ShouldOffload(tSun, tp, dTo*commSlow, dFrom*commSlow)
		actualOffloadWins := aOff < aSun
		if modelOffloads == actualOffloadWins {
			correct++
		}
		total++
		if crossover == 0 && actualOffloadWins {
			crossover = float64(m)
		}
	}
	r.Series = []Series{
		{Name: "model sun", X: xs, Y: predSun},
		{Name: "actual sun", X: xs, Y: actSun},
		{Name: "model offload", X: xs, Y: predOff},
		{Name: "actual offload", X: xs, Y: actOff},
	}
	r.ModelErrPct = map[string]float64{
		"sun":     mape(predSun, actSun),
		"offload": mape(predOff, actOff),
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("decision accuracy: %d/%d sizes decided correctly", correct, total),
		fmt.Sprintf("offloading starts to win at M ≈ %.0f", crossover),
		fmt.Sprintf("slowdowns under load: computation %.3f, communication %.3f", compSlow, commSlow))
	return r, nil
}

// estimateTp measures the dedicated Paragon run once (space-shared, so
// contention on the Sun does not change it).
func estimateTp(env *Env, spec apps.SORParagonSpec) (float64, error) {
	k := des.New()
	sp, err := platform.NewSunParagon(k, env.ParagonParams)
	if err != nil {
		return 0, err
	}
	out := -1.0
	var runErr error
	k.Spawn("tp", func(p *des.Proc) {
		out, runErr = apps.RunSORParagon(p, sp, spec)
		k.Stop()
	})
	k.Run()
	if runErr != nil {
		return 0, runErr
	}
	if out < 0 {
		return 0, fmt.Errorf("experiments: T_p run did not finish")
	}
	return out, nil
}

// offloadRun measures the full offload path under contenders: ship the
// matrix out, run on the Paragon, ship the result back.
func offloadRun(params platform.ParagonParams, m, nodes int, specs []workload.AlternatorSpec) (float64, error) {
	k := des.New()
	sp, err := platform.NewSunParagon(k, params)
	if err != nil {
		return 0, err
	}
	for _, s := range specs {
		if _, err := workload.SpawnAlternator(sp, s); err != nil {
			return 0, err
		}
	}
	workload.DrainPort(sp, "data")
	ctl := workload.BurstServer(sp, "result-server", "result")
	elapsed := -1.0
	var runErr error
	k.Spawn("app", func(p *des.Proc) {
		p.Delay(burstWarmup)
		start := p.Now()
		// Ship the matrix: M rows of M words.
		for i := 0; i < m; i++ {
			sp.SendToParagon(p, "data", m)
		}
		// Execute on the MPP.
		if _, err := apps.RunSORParagon(p, sp, apps.SORParagonSpec{M: m, Iters: sorIters, Nodes: nodes}); err != nil {
			runErr = err
			k.Stop()
			return
		}
		// Ship the solution back.
		elapsed = workload.BurstFromParagon(p, sp, ctl, "result", m, m)
		elapsed = p.Now() - start
		k.Stop()
	})
	k.Run()
	if runErr != nil {
		return 0, runErr
	}
	if elapsed < 0 {
		return 0, fmt.Errorf("experiments: offload run did not finish")
	}
	return elapsed, nil
}
