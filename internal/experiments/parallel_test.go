package experiments

import (
	"strings"
	"testing"

	"contention/internal/runner"
)

// renderAll renders every core and extension result into one blob.
func renderAll(t *testing.T, e *Env) string {
	t.Helper()
	results, err := All(e)
	if err != nil {
		t.Fatal(err)
	}
	ext, err := Extensions(e)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, r := range append(results, ext...) {
		b.WriteString(r.Render())
		b.WriteByte('\n')
	}
	return b.String()
}

// TestParallelMatchesSerialByteIdentical is the golden test for the
// experiment engine: the full suite (core figures/tables plus every
// extension driver) rendered through the worker pool must be
// byte-for-byte identical to the serial run.
func TestParallelMatchesSerialByteIdentical(t *testing.T) {
	e := env(t)
	serial := renderAll(t, e.WithPool(runner.Serial()))
	parallel := renderAll(t, e.WithPool(runner.New(4)))
	if serial != parallel {
		line := 0
		sLines, pLines := strings.Split(serial, "\n"), strings.Split(parallel, "\n")
		for i := 0; i < len(sLines) && i < len(pLines); i++ {
			if sLines[i] != pLines[i] {
				line = i
				break
			}
		}
		t.Fatalf("parallel output diverges from serial at line %d:\nserial:   %q\nparallel: %q",
			line+1, sLines[line], pLines[line])
	}
}
