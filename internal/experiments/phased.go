package experiments

import (
	"context"
	"fmt"

	"contention/internal/apps"
	"contention/internal/core"
	"contention/internal/des"
	"contention/internal/platform"
	"contention/internal/runner"
	"contention/internal/workload"
)

// PhasedContention exercises the §4 extension in which contending
// applications execute for only part of the measured application's run:
// a CPU-bound contender is present at the start and leaves; a
// communicating contender joins mid-run. The phased predictor
// re-evaluates the slowdown at every job-mix change; a static predictor
// that freezes the initial mix drifts.
func PhasedContention(env *Env) (Result, error) {
	const (
		appStart = 0.5 // measurement begins after warmup
		tJoin    = 4.0 // seconds after app start: contender B joins
		tLeave   = 8.0 // seconds after app start: contender A leaves
	)
	cpuBound := core.Contender{CommFraction: 0} // contender A
	comm := core.Contender{CommFraction: 0.4, MsgWords: 500}

	phases := []core.Phase{
		{Duration: tJoin, Contenders: []core.Contender{cpuBound}},
		{Duration: tLeave - tJoin, Contenders: []core.Contender{cpuBound, comm}},
		{Contenders: []core.Contender{comm}}, // open-ended
	}

	r := Result{
		ID:     "phased",
		Title:  "Dynamic job mix: phased prediction vs static initial-mix prediction",
		XLabel: "M",
		YLabel: "seconds",
	}
	staticSlowdown, err := env.Pred.CompSlowdown([]core.Contender{cpuBound})
	if err != nil {
		return Result{}, err
	}

	ms := []int{250, 300, 350, 400, 450}
	acts, err := runner.Map(context.Background(), env.pool(), ms,
		func(_ context.Context, _ int, m int) (float64, error) {
			return phasedRun(env.ParagonParams, apps.SORWork(m, sorIters), appStart, tJoin, tLeave)
		})
	if err != nil {
		return Result{}, err
	}
	var xs, actual, phasedPred, staticPred []float64
	for i, m := range ms {
		xs = append(xs, float64(m))
		dcomp := apps.SORWork(m, sorIters)

		pred, err := core.PredictCompPhased(dcomp, phases, env.Cal.Tables)
		if err != nil {
			return Result{}, err
		}
		phasedPred = append(phasedPred, pred)
		staticPred = append(staticPred, dcomp*staticSlowdown)
		actual = append(actual, acts[i])
	}
	r.Series = []Series{
		{Name: "actual", X: xs, Y: actual},
		{Name: "phased model", X: xs, Y: phasedPred},
		{Name: "static model", X: xs, Y: staticPred},
	}
	r.ModelErrPct = map[string]float64{
		"phased": mape(phasedPred, actual),
		"static": mape(staticPred, actual),
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("timeline: CPU-bound contender [0,%.0fs); +communicating contender [%.0f,%.0fs); comm only afterwards", tLeave, tJoin, tLeave),
		"§4: \"the slowdown factors should be recalculated when the job mix changes\"")
	return r, nil
}

// phasedRun measures a compute-only application under the dynamic mix.
func phasedRun(params platform.ParagonParams, dcomp, appStart, tJoin, tLeave float64) (float64, error) {
	k := des.New()
	sp, err := platform.NewSunParagon(k, params)
	if err != nil {
		return 0, err
	}
	// Contender A: CPU-bound from the beginning until appStart+tLeave.
	specA := workload.AlternatorSpec{
		Name: "cpuA", CommFraction: 0, MsgWords: 1, Period: 0.05,
		Stop: appStart + tLeave,
	}
	if _, err := workload.SpawnAlternator(sp, specA); err != nil {
		return 0, err
	}
	// Contender B: communicating, joins at appStart+tJoin.
	specB := workload.AlternatorSpec{
		Name: "commB", CommFraction: 0.4, MsgWords: 500, Period: 0.1,
		Phase: appStart + tJoin,
	}
	if _, err := workload.SpawnAlternator(sp, specB); err != nil {
		return 0, err
	}
	elapsed := -1.0
	k.Spawn("app", func(p *des.Proc) {
		p.Delay(appStart)
		start := p.Now()
		sp.Host.Compute(p, dcomp)
		elapsed = p.Now() - start
		k.Stop()
	})
	k.Run()
	if elapsed < 0 {
		return 0, fmt.Errorf("experiments: phased run did not finish")
	}
	return elapsed, nil
}
