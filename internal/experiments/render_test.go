package experiments

import (
	"strings"
	"testing"
)

// TestRenderSharedGrid pins the classic one-row-per-x table for series
// that share an X grid — the parallel engine's golden test depends on
// this output staying stable.
func TestRenderSharedGrid(t *testing.T) {
	r := Result{
		ID: "shared", Title: "shared grid", XLabel: "M",
		Series: []Series{
			{Name: "a", X: []float64{1, 2}, Y: []float64{10, 20}},
			{Name: "b", X: []float64{1, 2}, Y: []float64{30, 40}},
		},
	}
	got := r.Render()
	want := "== shared: shared grid ==\n" +
		"           M               a               b\n" +
		"           1              10              30\n" +
		"           2              20              40\n"
	if got != want {
		t.Fatalf("shared-grid render changed:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestRenderRaggedGrid is the regression test for the silent-blank bug:
// when series do not share the first series' X grid, every point of
// every series must still appear in the output.
func TestRenderRaggedGrid(t *testing.T) {
	r := Result{
		ID: "ragged", Title: "ragged grid", XLabel: "M",
		Series: []Series{
			{Name: "short", X: []float64{1, 2}, Y: []float64{10, 20}},
			{Name: "long", X: []float64{1, 2, 3, 4}, Y: []float64{30, 40, 50, 60}},
			{Name: "offset", X: []float64{7, 8}, Y: []float64{70, 80}},
		},
	}
	got := r.Render()
	// The old renderer iterated Series[0].X (length 2): x=3, x=4 of
	// "long" vanished and "offset" was misaligned under x=1, x=2.
	for _, want := range []string{
		"50", "60", // the long series' tail
		"           7              70", "           8              80", // offset points on their own x
		"-- short --", "-- long --", "-- offset --",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("ragged render lost %q:\n%s", want, got)
		}
	}
}

// TestRenderYShorterThanX: a series whose Y ran short of its X grid is
// ragged, not silently blank-padded.
func TestRenderYShorterThanX(t *testing.T) {
	r := Result{
		ID: "shorty", Title: "short Y", XLabel: "M",
		Series: []Series{
			{Name: "a", X: []float64{1, 2, 3}, Y: []float64{10, 20}},
		},
	}
	got := r.Render()
	if !strings.Contains(got, "-- a --") {
		t.Fatalf("short-Y series not rendered per-series:\n%s", got)
	}
	if !strings.Contains(got, "           3\n") {
		t.Fatalf("short-Y series lost its yless x row:\n%s", got)
	}
}
