package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"time"

	"contention/internal/cluster"
	"contention/internal/core"
	"contention/internal/des"
	"contention/internal/obs"
	"contention/internal/runner"
	"contention/internal/scenario"
	"contention/internal/serve"
	"contention/internal/surface"
)

// Scenario-sweep telemetry: matrix coverage and per-cell traffic.
var (
	mSweepCells = obs.NewCounter(obs.MetricScenarioSweepCells,
		"scenario sweep matrix cells executed")
	mSweepRequests = obs.NewCounter(obs.MetricScenarioSweepRequest,
		"requests issued by the scenario sweep (record and replay passes)")
)

const (
	scenarioReplaySeed    = 42
	scenarioReplayHorizon = 2 * time.Second
	scenarioReplayBuckets = 10
)

// scenarioReplayPass replays every record of a generated trace on a DES
// kernel: each arrival is an event at its recorded offset on the
// virtual clock, evaluated through the no-batcher serve path
// (serve.Direct) against the shared predictor. It returns the predicted
// value per record plus per-bucket arrival counts by cohort and bucket
// value sums — everything derived from the virtual clock and the
// predictor, so two passes over the same trace must agree bit-for-bit.
func scenarioReplayPass(env *Env, hdr scenario.TraceHeader, recs []scenario.Record) (values []float64, counts map[string][]float64, sums, ns []float64, err error) {
	k := des.New()
	values = make([]float64, len(recs))
	counts = map[string][]float64{}
	sums = make([]float64, scenarioReplayBuckets)
	ns = make([]float64, scenarioReplayBuckets)
	width := scenarioReplayHorizon.Seconds() / scenarioReplayBuckets
	var evalErr error
	for i := range recs {
		i := i
		rec := recs[i]
		k.At(rec.Offset.Seconds(), func() {
			if evalErr != nil {
				return
			}
			req, derr := scenario.DecodeRequestBytes(rec.Req, hdr.Format)
			if derr != nil {
				evalErr = fmt.Errorf("record %d: %w", i, derr)
				return
			}
			resp, derr := serve.Direct(env.Pred, req, false)
			if derr != nil {
				evalErr = fmt.Errorf("record %d: %w", i, derr)
				return
			}
			values[i] = resp.Value
			b := int(k.Now() / width)
			if b >= scenarioReplayBuckets {
				b = scenarioReplayBuckets - 1
			}
			if counts[rec.Cohort] == nil {
				counts[rec.Cohort] = make([]float64, scenarioReplayBuckets)
			}
			counts[rec.Cohort][b]++
			sums[b] += resp.Value
			ns[b]++
		})
	}
	k.Run()
	if evalErr != nil {
		return nil, nil, nil, nil, evalErr
	}
	return values, counts, sums, ns, nil
}

// ScenarioReplay is the deterministic replay exhibit: the mixed builtin
// scenario is realized once into an in-memory contention/trace/v1
// stream, then replayed twice through a DES-clocked driver, and every
// predicted value must agree bit-for-bit between the passes. The series
// show each cohort's arrival rate over virtual time next to the mean
// predicted slowdown — the traffic shape the generators exist to
// produce, and the model's response to it.
func ScenarioReplay(env *Env) (Result, error) {
	sc, err := scenario.Builtin("mixed")
	if err != nil {
		return Result{}, err
	}
	var buf bytes.Buffer
	if _, err := scenario.WriteSchedule(&buf, sc, scenarioReplaySeed, scenarioReplayHorizon, scenario.FormatBinary); err != nil {
		return Result{}, err
	}
	raw := buf.Bytes()
	hdr, recs, err := scenario.ReadTrace(bytes.NewReader(raw))
	if err != nil {
		return Result{}, err
	}

	first, counts, sums, ns, err := scenarioReplayPass(env, hdr, recs)
	if err != nil {
		return Result{}, err
	}
	second, _, _, _, err := scenarioReplayPass(env, hdr, recs)
	if err != nil {
		return Result{}, err
	}
	mismatches := 0
	for i := range first {
		if math.Float64bits(first[i]) != math.Float64bits(second[i]) {
			mismatches++
			scenario.CountReplayMismatch()
		}
	}
	if mismatches > 0 {
		return Result{}, fmt.Errorf("scenarioreplay: %d of %d replayed predictions diverged between passes", mismatches, len(recs))
	}

	width := scenarioReplayHorizon.Seconds() / scenarioReplayBuckets
	x := make([]float64, scenarioReplayBuckets)
	for b := range x {
		x[b] = (float64(b) + 0.5) * width
	}
	cohorts := make([]string, 0, len(counts))
	for name := range counts {
		cohorts = append(cohorts, name)
	}
	sort.Strings(cohorts)
	var series []Series
	for _, name := range cohorts {
		y := make([]float64, scenarioReplayBuckets)
		for b, c := range counts[name] {
			y[b] = c / width
		}
		series = append(series, Series{Name: name + " req/s", X: x, Y: y})
	}
	mean := make([]float64, scenarioReplayBuckets)
	for b := range mean {
		if ns[b] > 0 {
			mean[b] = sums[b] / ns[b]
		}
	}
	series = append(series, Series{Name: "mean slowdown", X: x, Y: mean})

	return Result{
		ID:     "scenarioreplay",
		Title:  "Scenario trace replay on the DES clock (mixed builtin)",
		XLabel: "time (s)",
		YLabel: "arrivals (req/s) / predicted slowdown",
		Series: series,
		Notes: []string{
			fmt.Sprintf("trace: %d records, %d bytes, seed %d, horizon %v, %s wire",
				len(recs), len(raw), scenarioReplaySeed, scenarioReplayHorizon, hdr.Format),
			fmt.Sprintf("replay determinism: %d/%d predictions bit-identical across passes", len(recs), len(recs)),
		},
		ModelErrPct: map[string]float64{"replay": 0},
	}, nil
}

// sweepTarget is one serving configuration a sweep cell drives:
// issue posts one wire body and reports (status, response); close tears
// the target down.
type sweepTarget struct {
	issue func(body []byte) (int, serve.Response)
	close func()
}

// directTarget evaluates bodies in-process through serve.Direct — the
// no-batcher baseline. Decode or validation failures count as 400s,
// mirroring the HTTP path's status mapping.
func directTarget(wire string) (*sweepTarget, error) {
	cal := serve.SyntheticCalibration()
	pred, err := core.NewPredictor(cal)
	if err != nil {
		return nil, err
	}
	tryFast := wire == "binary+surface"
	if tryFast {
		s, err := surface.Build(cal.Tables, surface.Config{})
		if err != nil {
			return nil, err
		}
		if err := pred.AttachSurface(s); err != nil {
			return nil, err
		}
	}
	format := scenario.FormatJSON
	if wire != "json" {
		format = scenario.FormatBinary
	}
	return &sweepTarget{
		issue: func(body []byte) (int, serve.Response) {
			req, err := scenario.DecodeRequestBytes(body, format)
			if err != nil {
				return http.StatusBadRequest, serve.Response{}
			}
			resp, err := serve.Direct(pred, req, tryFast)
			if err != nil {
				return http.StatusBadRequest, serve.Response{}
			}
			return http.StatusOK, resp
		},
		close: func() {},
	}, nil
}

// httpTarget posts bodies to a handler over loopback HTTP.
func httpTarget(handler http.Handler, contentType string, binary bool, stop func()) *sweepTarget {
	ts := httptest.NewServer(handler)
	client := ts.Client()
	url := ts.URL + "/v1/predict"
	return &sweepTarget{
		issue: func(body []byte) (int, serve.Response) {
			resp, err := client.Post(url, contentType, bytes.NewReader(body))
			if err != nil {
				return 0, serve.Response{}
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return resp.StatusCode, serve.Response{}
			}
			var out serve.Response
			if binary {
				var raw bytes.Buffer
				if _, err := raw.ReadFrom(resp.Body); err != nil {
					return 0, serve.Response{}
				}
				if out, err = serve.DecodeBinaryResponse(raw.Bytes()); err != nil {
					return 0, serve.Response{}
				}
			} else if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				return 0, serve.Response{}
			}
			return resp.StatusCode, out
		},
		close: func() { ts.Close(); stop() },
	}
}

// batchedTarget serves bodies through the full micro-batching server.
func batchedTarget(wire string) (*sweepTarget, error) {
	cal := serve.SyntheticCalibration()
	pred, err := core.NewPredictor(cal)
	if err != nil {
		return nil, err
	}
	withSurface := wire == "binary+surface"
	if withSurface {
		s, err := surface.Build(cal.Tables, surface.Config{})
		if err != nil {
			return nil, err
		}
		if err := pred.AttachSurface(s); err != nil {
			return nil, err
		}
	}
	srv, err := serve.New(serve.Config{
		Pred: pred, Pool: runner.New(0), Window: 200 * time.Microsecond, FastPath: withSurface,
	})
	if err != nil {
		return nil, err
	}
	binary := wire != "json"
	contentType := "application/json"
	if binary {
		contentType = serve.ContentTypeBinary
	}
	return httpTarget(srv.Handler(), contentType, binary, func() { srv.Close() }), nil
}

// clusterTarget serves bodies through a 2-replica affinity-routed
// cluster. Replicas take no surface, so binary+surface cells measure
// the plain binary path here (noted on the sweep result).
func clusterTarget(wire string) (*sweepTarget, error) {
	c, err := cluster.New(cluster.Config{
		Replicas: 2,
		Factory:  cluster.InProcessFactory(cluster.InProcConfig{Window: 200 * time.Microsecond}),
	})
	if err != nil {
		return nil, err
	}
	if err := c.Start(); err != nil {
		return nil, err
	}
	binary := wire != "json"
	contentType := "application/json"
	if binary {
		contentType = serve.ContentTypeBinary
	}
	return httpTarget(c.Handler(), contentType, binary, func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = c.Shutdown(ctx)
	}), nil
}

// sweepIssueAll drives bodies through the target with a small worker
// pool and returns per-body statuses, responses, and latencies
// (seconds) in body order.
func sweepIssueAll(tg *sweepTarget, bodies [][]byte, conc int) ([]int, []serve.Response, []float64) {
	statuses := make([]int, len(bodies))
	outs := make([]serve.Response, len(bodies))
	lats := make([]float64, len(bodies))
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				t0 := time.Now()
				statuses[i], outs[i] = tg.issue(bodies[i])
				lats[i] = time.Since(t0).Seconds()
				mSweepRequests.Inc()
			}
		}()
	}
	for i := range bodies {
		next <- i
	}
	close(next)
	wg.Wait()
	return statuses, outs, lats
}

// sweepVerify compares a replay pass against the record pass: statuses
// must match exactly and 200 values bit-for-bit, except where the
// fast-path verdict flipped between passes (admission timing), where
// the surface's interpolation tolerance applies.
func sweepVerify(recStatus, repStatus []int, recOut, repOut []serve.Response) int {
	mismatches := 0
	for i := range recStatus {
		if recStatus[i] != repStatus[i] {
			mismatches++
			scenario.CountReplayMismatch()
			continue
		}
		if recStatus[i] != http.StatusOK {
			continue
		}
		if recOut[i].Fast == repOut[i].Fast {
			if math.Float64bits(recOut[i].Value) != math.Float64bits(repOut[i].Value) {
				mismatches++
				scenario.CountReplayMismatch()
			}
			continue
		}
		rel := math.Abs(recOut[i].Value-repOut[i].Value) / math.Max(math.Abs(recOut[i].Value), 1e-12)
		if rel > 1e-3 {
			mismatches++
			scenario.CountReplayMismatch()
		}
	}
	return mismatches
}

// ScenarioSweep runs the full scenario matrix: every builtin scenario ×
// {json, binary, binary+surface} wire × {direct, batched, cluster}
// serving mode. Each cell realizes a bounded schedule, drives it twice
// through a fresh target — a record pass and a replay pass — verifies
// the replay reproduced the recorded responses, and reports throughput,
// latency percentiles, batched%, and fast% per cell. n bounds the
// requests per cell. The returned report feeds the run manifest; the
// Result renders the matrix as text.
func ScenarioSweep(env *Env, n int) (Result, *obs.ScenarioReport, error) {
	if n < 1 {
		n = 1
	}
	wires := []string{"json", "binary", "binary+surface"}
	modes := []string{"direct", "batched", "cluster"}

	// One realized schedule per scenario, shared across its cells so
	// every wire/mode combination sees identical traffic.
	type realized struct {
		json, binary [][]byte
	}
	schedules := map[string]*realized{}
	for _, name := range scenario.BuiltinNames() {
		sc, err := scenario.Builtin(name)
		if err != nil {
			return Result{}, nil, err
		}
		items, err := sc.Schedule(7, time.Second)
		if err != nil {
			return Result{}, nil, err
		}
		if len(items) > n {
			items = items[:n]
		}
		r := &realized{}
		for _, it := range items {
			jb, err := scenario.EncodeItem(it, scenario.FormatJSON)
			if err != nil {
				return Result{}, nil, err
			}
			bb, err := scenario.EncodeItem(it, scenario.FormatBinary)
			if err != nil {
				return Result{}, nil, err
			}
			r.json = append(r.json, jb)
			r.binary = append(r.binary, bb)
		}
		schedules[name] = r
	}

	report := &obs.ScenarioReport{}
	for _, name := range scenario.BuiltinNames() {
		for _, wire := range wires {
			bodies := schedules[name].binary
			if wire == "json" {
				bodies = schedules[name].json
			}
			for _, mode := range modes {
				var (
					tg  *sweepTarget
					err error
				)
				switch mode {
				case "direct":
					tg, err = directTarget(wire)
				case "batched":
					tg, err = batchedTarget(wire)
				case "cluster":
					tg, err = clusterTarget(wire)
				}
				if err != nil {
					return Result{}, nil, fmt.Errorf("scenariosweep %s/%s/%s: %w", name, wire, mode, err)
				}
				t0 := time.Now()
				recStatus, recOut, lats := sweepIssueAll(tg, bodies, 8)
				elapsed := time.Since(t0).Seconds()
				repStatus, repOut, _ := sweepIssueAll(tg, bodies, 8)
				tg.close()
				mismatches := sweepVerify(recStatus, repStatus, recOut, repOut)
				mSweepCells.Inc()

				ok, batched, fast := 0, 0, 0
				for i, s := range recStatus {
					if s != http.StatusOK {
						continue
					}
					ok++
					if recOut[i].Batch > 1 {
						batched++
					}
					if recOut[i].Fast {
						fast++
					}
				}
				sort.Float64s(lats)
				cell := obs.ScenarioCell{
					Scenario: name, Wire: wire, Mode: mode,
					Requests:         len(bodies),
					ReqPerSec:        float64(len(bodies)) / elapsed,
					P50Ms:            percentileSeconds(lats, 50) * 1e3,
					P99Ms:            percentileSeconds(lats, 99) * 1e3,
					BatchedPct:       pct(batched, ok),
					FastPct:          pct(fast, ok),
					ReplayMismatches: mismatches,
				}
				report.Cells = append(report.Cells, cell)
				report.Replayed += len(bodies)
				report.Mismatches += mismatches
				if ok == 0 {
					return Result{}, nil, fmt.Errorf("scenariosweep %s/%s/%s: no successful requests", name, wire, mode)
				}
			}
		}
	}
	if report.Mismatches > 0 {
		return Result{}, nil, fmt.Errorf("scenariosweep: %d replay mismatches across the matrix", report.Mismatches)
	}

	var b bytes.Buffer
	fmt.Fprintf(&b, "%-12s %-16s %-8s %8s %10s %9s %9s %9s %7s\n",
		"scenario", "wire", "mode", "reqs", "req/s", "p50-ms", "p99-ms", "batch%", "fast%")
	for _, c := range report.Cells {
		fmt.Fprintf(&b, "%-12s %-16s %-8s %8d %10.0f %9.3f %9.3f %9.1f %7.1f\n",
			c.Scenario, c.Wire, c.Mode, c.Requests, c.ReqPerSec, c.P50Ms, c.P99Ms, c.BatchedPct, c.FastPct)
	}
	return Result{
		ID:    "scenariosweep",
		Title: "Scenario sweep matrix: builtin scenarios × wire format × serving mode",
		Text:  b.String(),
		Notes: []string{
			fmt.Sprintf("%d cells, %d requests replayed, %d mismatches", len(report.Cells), report.Replayed, report.Mismatches),
			"cluster replicas take no surface: binary+surface cluster cells measure the plain binary path",
			"throughput and latency cells are wall-clock measurements; replay verification is the deterministic gate",
		},
		ModelErrPct: map[string]float64{"replay": 100 * float64(report.Mismatches) / float64(max(report.Replayed, 1))},
	}, report, nil
}

// pct is the percentage of part in whole, 0 when whole is 0.
func pct(part, whole int) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}

// percentileSeconds returns the p-th percentile (nearest rank) of
// sorted data, 0 when empty.
func percentileSeconds(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}
