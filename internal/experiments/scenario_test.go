package experiments

import (
	"strings"
	"testing"
	"time"

	"contention/internal/scenario"
)

// TestScenarioReplayDeterministic pins the DES replay driver: two full
// runs must render byte-identically (the property the parallel-suite
// gate relies on), every mixed-builtin cohort must appear as a series,
// and the replay error must be exactly zero.
func TestScenarioReplayDeterministic(t *testing.T) {
	e := env(t)
	r1, err := ScenarioReplay(e)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ScenarioReplay(e)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := r1.Render(), r2.Render(); a != b {
		t.Fatalf("two replay runs rendered differently:\n%s\n---\n%s", a, b)
	}
	for _, cohort := range []string{"batch", "interactive", "crowd"} {
		if _, ok := r1.seriesByName(cohort + " req/s"); !ok {
			t.Fatalf("no arrival series for cohort %q", cohort)
		}
	}
	if _, ok := r1.seriesByName("mean slowdown"); !ok {
		t.Fatal("no mean-slowdown series")
	}
	if got := r1.Err("replay"); got != 0 {
		t.Fatalf("replay error %.3f%%, want exactly 0", got)
	}
	// The flash-crowd cohort must actually surge: its peak bucket rate
	// well above its quietest.
	crowd, _ := r1.seriesByName("crowd req/s")
	lo, hi := crowd.Y[0], crowd.Y[0]
	for _, y := range crowd.Y {
		if y < lo {
			lo = y
		}
		if y > hi {
			hi = y
		}
	}
	if hi < 4*(lo+1) {
		t.Fatalf("crowd cohort never surged: bucket rates span [%.1f, %.1f]", lo, hi)
	}
}

// TestScenarioSweepSmokeCell drives single cells of the sweep matrix —
// the direct and batched targets on the steady scenario — and holds the
// record/replay verification on each. This is the `make scenario-gate`
// cell; the full matrix runs in TestScenarioSweepMatrix.
func TestScenarioSweepSmokeCell(t *testing.T) {
	bodies := sweepBodies(t, "steady", 60)
	for _, wire := range []string{"binary", "binary+surface"} {
		tg, err := directTarget(wire)
		if err != nil {
			t.Fatal(err)
		}
		recS, recO, _ := sweepIssueAll(tg, bodies, 8)
		repS, repO, _ := sweepIssueAll(tg, bodies, 8)
		tg.close()
		if m := sweepVerify(recS, repS, recO, repO); m != 0 {
			t.Fatalf("direct/%s: %d replay mismatches", wire, m)
		}
		if wire == "binary+surface" {
			fast := 0
			for _, o := range recO {
				if o.Fast {
					fast++
				}
			}
			if fast == 0 {
				t.Fatal("binary+surface direct cell never hit the fast path")
			}
		}
	}
	tg, err := batchedTarget("json")
	if err != nil {
		t.Fatal(err)
	}
	recS, recO, _ := sweepIssueAll(tg, bodies, 8)
	repS, repO, _ := sweepIssueAll(tg, bodies, 8)
	tg.close()
	if m := sweepVerify(recS, repS, recO, repO); m != 0 {
		t.Fatalf("batched/json: %d replay mismatches", m)
	}
}

// sweepBodies realizes one builtin scenario into binary wire bodies.
func sweepBodies(t *testing.T, name string, n int) [][]byte {
	t.Helper()
	sc, err := scenario.Builtin(name)
	if err != nil {
		t.Fatal(err)
	}
	items, err := sc.Schedule(7, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) > n {
		items = items[:n]
	}
	bodies := make([][]byte, len(items))
	for i, it := range items {
		if bodies[i], err = scenario.EncodeItem(it, scenario.FormatBinary); err != nil {
			t.Fatal(err)
		}
	}
	return bodies
}

// TestScenarioSweepMatrix runs the full 45-cell matrix at smoke size:
// every cell must verify its replay, every cell must complete, and the
// surface cells must exercise the fast path somewhere.
func TestScenarioSweepMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix in -short mode")
	}
	r, report, err := ScenarioSweep(env(t), 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Cells) != 45 {
		t.Fatalf("%d cells, want 5 scenarios × 3 wires × 3 modes = 45", len(report.Cells))
	}
	if report.Mismatches != 0 {
		t.Fatalf("%d replay mismatches across the matrix", report.Mismatches)
	}
	fastSeen := false
	for _, c := range report.Cells {
		if c.Requests == 0 {
			t.Fatalf("cell %s/%s/%s ran zero requests", c.Scenario, c.Wire, c.Mode)
		}
		if c.Wire == "binary+surface" && c.Mode != "cluster" && c.FastPct > 0 {
			fastSeen = true
		}
	}
	if !fastSeen {
		t.Fatal("no binary+surface cell exercised the fast path")
	}
	if !strings.Contains(r.Text, "binary+surface") || !strings.Contains(r.Text, "cluster") {
		t.Fatalf("matrix text missing axes:\n%s", r.Text)
	}
}
