package experiments

import (
	"context"
	"fmt"

	"contention/internal/apps"
	"contention/internal/core"
	"contention/internal/des"
	"contention/internal/platform"
	"contention/internal/runner"
	"contention/internal/stats"
)

// SyntheticCM2 reproduces the paper's generality check: "a large number
// of experiments using synthetic benchmarks, which employ a
// representative subset of the operations provided by the CM2 …
// have shown the error between predicted and actual times to be within
// 15% for both communication and computation". It generates a
// population of random CM2 programs spanning serial-bound to
// CM2-bound balances and validates the execution law for p ∈ {1, 2, 3}.
func SyntheticCM2(env *Env, programs int) (Result, error) {
	if programs < 1 {
		return Result{}, fmt.Errorf("experiments: program count %d must be ≥ 1", programs)
	}
	r := Result{
		ID:          "synthetic",
		Title:       fmt.Sprintf("Synthetic CM2 benchmark suite (%d random programs, p ∈ {1,2,3})", programs),
		XLabel:      "program",
		YLabel:      "seconds",
		PaperErrPct: 15,
	}
	// Each synthetic program is generated from its own seed and measured
	// on its own kernel, so the population fans out on the pool.
	type point struct{ model, actual float64 }
	indices := make([]int, programs)
	for i := range indices {
		indices[i] = i
	}
	pts, err := runner.Map(context.Background(), env.pool(), indices,
		func(_ context.Context, _ int, i int) (point, error) {
			spec := apps.DefaultSyntheticSpec(int64(1000 + i))
			// Sweep the serial/parallel balance across the population.
			frac := float64(i) / float64(programs)
			spec.SerialMeanOps *= 0.25 + 3*frac // serial-light → serial-heavy
			spec.ParallelMean *= 2.5 - 2.2*frac // CM2-heavy → CM2-light
			spec.Segments = 40 + (i*7)%80       // varying lengths
			spec.SyncEvery = []int{0, 8, 16, 4}[i%4]
			prog, err := apps.SyntheticCM2Program(spec)
			if err != nil {
				return point{}, err
			}
			p := 1 + i%3

			// Dedicated run: measure dcomp_cm2 and didle_cm2.
			_, busy, idle := syntheticRun(env, prog, 0)
			model := core.CM2ExecTime(busy, idle, prog.TotalSerial(), p)
			contended, _, _ := syntheticRun(env, prog, p)
			return point{model: model, actual: contended}, nil
		})
	if err != nil {
		return Result{}, err
	}
	var xs, modeled, actual, errs []float64
	worst := 0.0
	for i, pt := range pts {
		xs = append(xs, float64(i))
		modeled = append(modeled, pt.model)
		actual = append(actual, pt.actual)
		e := 100 * stats.RelErr(pt.model, pt.actual)
		errs = append(errs, e)
		if e > worst {
			worst = e
		}
	}
	r.Series = []Series{
		{Name: "modeled", X: xs, Y: modeled},
		{Name: "actual", X: xs, Y: actual},
	}
	r.ModelErrPct = map[string]float64{"suite": mape(modeled, actual)}
	r.Notes = append(r.Notes,
		fmt.Sprintf("per-program error: %s", stats.Summarize(errs)),
		fmt.Sprintf("worst program error %.1f%% (paper: within 15%% on average)", worst))
	return r, nil
}

func syntheticRun(env *Env, prog apps.CM2Program, hogs int) (elapsed, busy, idle float64) {
	k := des.New()
	plat := platform.MustNewSunCM2(k, env.CM2Params)
	spawnDutyHogs(k, plat, hogs)
	k.Spawn(prog.Name, func(p *des.Proc) {
		elapsed, busy, idle = apps.RunCM2(p, plat, prog)
		k.Stop()
	})
	k.Run()
	return elapsed, busy, idle
}
