package experiments

import (
	"fmt"

	"contention/internal/core"
	"contention/internal/sched"
)

// Tables12 reproduces the paper's Tables 1–2: in dedicated mode, both
// tasks belong on M1 for a 16-unit makespan.
func Tables12() (Result, error) {
	p := sched.PaperExample()
	best, err := p.Best()
	if err != nil {
		return Result{}, err
	}
	ranked, err := p.Rank()
	if err != nil {
		return Result{}, err
	}
	r := Result{
		ID:     "table1-2",
		Title:  "Dedicated execution and communication times: best allocation",
		XLabel: "rank",
		YLabel: "makespan",
	}
	var xs, ys []float64
	for i, cand := range ranked {
		xs = append(xs, float64(i+1))
		ys = append(ys, cand.Makespan)
		r.Notes = append(r.Notes, fmt.Sprintf("rank %d: %s makespan %.0f", i+1, cand.Assignment, cand.Makespan))
	}
	r.Series = []Series{{Name: "makespan", X: xs, Y: ys}}
	r.Notes = append(r.Notes, fmt.Sprintf("best: %s = %.0f (paper: both on M1, 16 units)", best.Assignment, best.Makespan))
	return r, nil
}

// Table3 reproduces Table 3: two CPU-bound contenders on M1 slow its
// computation ×3 (slowdown = p+1), flipping A to M2 for a 38-unit
// makespan.
func Table3() (Result, error) {
	slowdown := core.SimpleSlowdown(2) // p = 2 extra CPU-bound applications
	p := sched.PaperExample().ScaleExec("M1", slowdown)
	best, err := p.Best()
	if err != nil {
		return Result{}, err
	}
	both, err := p.Evaluate(sched.Assignment{"A": "M1", "B": "M1"})
	if err != nil {
		return Result{}, err
	}
	r := Result{
		ID:     "table3",
		Title:  "Non-dedicated execution times (M1 compute slowed ×3)",
		XLabel: "case",
		YLabel: "makespan",
		Series: []Series{{
			Name: "makespan",
			X:    []float64{1, 2},
			Y:    []float64{best.Makespan, both},
		}},
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("slowdown factor = p+1 = %.0f", slowdown),
		fmt.Sprintf("best: %s = %.0f (paper: A→M2, B→M1, 38 units)", best.Assignment, best.Makespan),
		fmt.Sprintf("both on M1 = %.0f (10 units worse, as the paper notes)", both),
	)
	return r, nil
}

// Table4 reproduces Table 4: when the contenders also load the link,
// communication slows ×3 too and both tasks stay on M1 (48 units).
func Table4() (Result, error) {
	slowdown := core.SimpleSlowdown(2)
	p := sched.PaperExample().ScaleExec("M1", slowdown).ScaleComm(slowdown)
	best, err := p.Best()
	if err != nil {
		return Result{}, err
	}
	split, err := p.Evaluate(sched.Assignment{"A": "M2", "B": "M1"})
	if err != nil {
		return Result{}, err
	}
	r := Result{
		ID:     "table4",
		Title:  "Non-dedicated execution and communication times (both slowed ×3)",
		XLabel: "case",
		YLabel: "makespan",
		Series: []Series{{
			Name: "makespan",
			X:    []float64{1, 2},
			Y:    []float64{best.Makespan, split},
		}},
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("best: %s = %.0f (paper: both on M1, 48 units)", best.Assignment, best.Makespan),
		fmt.Sprintf("offloading A now costs %.0f: slowed communication outweighs the gain", split),
	)
	return r, nil
}
