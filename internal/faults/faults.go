// Package faults is the deterministic, seeded fault-injection subsystem
// for the simulated platform. The paper's model assumes a cooperative
// world — complete calibration tables, accurate contender descriptors, a
// wire that never misbehaves — and §4 itself warns that real systems
// drift ("slowdown factors should be recalculated when the job mix
// changes"). Injected perturbations are how a first-principles
// performance model is shown to degrade gracefully rather than collapse:
// this package composes fault schedules — transient link faults with
// paced retransmit, host stalls and crash-restart downtime on the
// processor-sharing CPU, contender churn, monitor sample loss — all
// driven by the DES kernel from one seeded RNG, so a faulty run is
// exactly as reproducible as a clean one.
package faults

import (
	"fmt"
	"math"
	"math/rand"

	"contention/internal/cpu"
	"contention/internal/des"
	"contention/internal/link"
	"contention/internal/monitor"
	"contention/internal/obs"
)

// mInjected counts fired fault events by kind, the telemetry twin of
// the injector's own log.
var mInjected = obs.NewCounterVec(obs.MetricFaultsInjected,
	"fault events fired by the injector, by kind", "kind")

// Injected is one fault event the injector actually fired, kept for
// diagnostics and reproducibility checks.
type Injected struct {
	At   float64
	Kind string
	Info string
}

// Injector owns the seeded RNG and arms fault schedules on a kernel.
// All draws happen in kernel-serialized context (event callbacks and
// sender processes), so for a fixed seed the whole perturbed simulation
// is deterministic.
type Injector struct {
	k   *des.Kernel
	rng *rand.Rand
	log []Injected
}

// NewInjector returns an injector bound to k with a fixed seed.
func NewInjector(k *des.Kernel, seed int64) *Injector {
	return &Injector{k: k, rng: rand.New(rand.NewSource(seed))}
}

// Kernel returns the kernel the injector drives.
func (in *Injector) Kernel() *des.Kernel { return in.k }

// Rand exposes the injector's RNG for fault schedules that need extra
// draws; use only from simulation context to preserve determinism.
func (in *Injector) Rand() *rand.Rand { return in.rng }

// Log returns a copy of the injected-event log.
func (in *Injector) Log() []Injected {
	return append([]Injected(nil), in.log...)
}

// Count reports how many fault events of the given kind fired ("" = all).
func (in *Injector) Count(kind string) int {
	n := 0
	for _, e := range in.log {
		if kind == "" || e.Kind == kind {
			n++
		}
	}
	return n
}

func (in *Injector) note(kind, format string, args ...any) {
	mInjected.With(kind).Inc()
	in.log = append(in.log, Injected{At: in.k.Now(), Kind: kind, Info: fmt.Sprintf(format, args...)})
}

// exp draws an exponential inter-arrival time with the given mean.
func (in *Injector) exp(mean float64) float64 {
	return in.rng.ExpFloat64() * mean
}

// Window bounds a fault schedule in virtual time. End = 0 means "until
// the simulation stops".
type Window struct {
	Start, End float64
}

func (w Window) validate() error {
	if w.Start < 0 || math.IsNaN(w.Start) {
		return fmt.Errorf("faults: negative window start %v", w.Start)
	}
	if w.End != 0 && (w.End <= w.Start || math.IsNaN(w.End)) {
		return fmt.Errorf("faults: window end %v not after start %v", w.End, w.Start)
	}
	return nil
}

func (w Window) contains(t float64) bool {
	return t >= w.Start && (w.End == 0 || t < w.End)
}

// Fault is one composable fault schedule. Arm installs it on the
// injector's kernel; the fault then drives itself from DES events.
type Fault interface {
	Arm(in *Injector) error
}

// Arm validates and installs each fault in order.
func (in *Injector) Arm(fs ...Fault) error {
	for _, f := range fs {
		if err := f.Arm(in); err != nil {
			return err
		}
	}
	return nil
}

// poisson schedules fn at Poisson arrivals with the given mean spacing
// inside the window. fn fires in kernel event context.
func (in *Injector) poisson(w Window, mean float64, fn func()) {
	var next func()
	next = func() {
		d := in.exp(mean)
		at := in.k.Now() + d
		if w.End != 0 && at >= w.End {
			return
		}
		in.k.At(at, func() {
			fn()
			next()
		})
	}
	in.k.At(w.Start, next)
}

// LinkFaults injects transient wire faults on a DES link: each
// transmission attempt is independently dropped with DropProb or
// corrupted with CorruptProb. Either way the attempt is lost — the
// sender pays full wire occupancy and retransmits after a paced,
// doubling backoff (see link.Link).
type LinkFaults struct {
	Link        *link.Link
	DropProb    float64
	CorruptProb float64
	Window      Window
}

// Arm installs the fault decision on the link.
func (f LinkFaults) Arm(in *Injector) error {
	if f.Link == nil {
		return fmt.Errorf("faults: LinkFaults with nil link")
	}
	for _, p := range []float64{f.DropProb, f.CorruptProb} {
		if p < 0 || p > 1 || math.IsNaN(p) {
			return fmt.Errorf("faults: link fault probability %v out of [0,1]", p)
		}
	}
	if f.DropProb+f.CorruptProb > 1 {
		return fmt.Errorf("faults: drop %v + corrupt %v probabilities exceed 1", f.DropProb, f.CorruptProb)
	}
	if err := f.Window.validate(); err != nil {
		return err
	}
	f.Link.SetFaultFunc(func(words int) bool {
		if !f.Window.contains(in.k.Now()) {
			return false
		}
		u := in.rng.Float64()
		switch {
		case u < f.DropProb:
			in.note("link-drop", "%d-word attempt dropped", words)
			return true
		case u < f.DropProb+f.CorruptProb:
			in.note("link-corrupt", "%d-word attempt corrupted", words)
			return true
		}
		return false
	})
	return nil
}

// HostStalls freezes the processor-sharing host for exponentially
// distributed windows at Poisson arrivals — scheduler hiccups, paging
// storms, interrupt bursts.
type HostStalls struct {
	Host *cpu.Host
	// MeanSpacing is the mean time between stall onsets.
	MeanSpacing float64
	// MeanDuration is the mean stall length.
	MeanDuration float64
	Window       Window
}

// Arm schedules the stall process.
func (f HostStalls) Arm(in *Injector) error {
	if f.Host == nil {
		return fmt.Errorf("faults: HostStalls with nil host")
	}
	if f.MeanSpacing <= 0 || math.IsNaN(f.MeanSpacing) {
		return fmt.Errorf("faults: stall spacing %v must be positive", f.MeanSpacing)
	}
	if f.MeanDuration <= 0 || math.IsNaN(f.MeanDuration) {
		return fmt.Errorf("faults: stall duration %v must be positive", f.MeanDuration)
	}
	if err := f.Window.validate(); err != nil {
		return err
	}
	in.poisson(f.Window, f.MeanSpacing, func() {
		d := in.exp(f.MeanDuration)
		in.note("host-stall", "stall %.4gs", d)
		f.Host.Stall(d)
	})
	return nil
}

// CrashRestart models fail-stop crashes of the front-end with a fixed
// restart time: at Poisson arrivals (mean MTBF) the host freezes for
// Downtime, then resumes resident jobs from their checkpointed progress.
type CrashRestart struct {
	Host     *cpu.Host
	MTBF     float64
	Downtime float64
	Window   Window
}

// Arm schedules the crash process.
func (f CrashRestart) Arm(in *Injector) error {
	if f.Host == nil {
		return fmt.Errorf("faults: CrashRestart with nil host")
	}
	if f.MTBF <= 0 || math.IsNaN(f.MTBF) {
		return fmt.Errorf("faults: MTBF %v must be positive", f.MTBF)
	}
	if f.Downtime <= 0 || math.IsNaN(f.Downtime) {
		return fmt.Errorf("faults: downtime %v must be positive", f.Downtime)
	}
	if err := f.Window.validate(); err != nil {
		return err
	}
	in.poisson(f.Window, f.MTBF, func() {
		in.note("crash-restart", "down %.4gs", f.Downtime)
		f.Host.Stall(f.Downtime)
	})
	return nil
}

// ContenderChurn perturbs the job mix at Poisson arrivals: each event
// calls Perturb, which typically spawns a transient contender (or flips
// one in a registry). The model under test is never told — that is the
// point.
type ContenderChurn struct {
	// MeanSpacing is the mean time between churn events.
	MeanSpacing float64
	// Perturb is invoked in kernel event context at each churn arrival.
	Perturb func()
	Window  Window
}

// Arm schedules the churn process.
func (f ContenderChurn) Arm(in *Injector) error {
	if f.Perturb == nil {
		return fmt.Errorf("faults: ContenderChurn with nil Perturb")
	}
	if f.MeanSpacing <= 0 || math.IsNaN(f.MeanSpacing) {
		return fmt.Errorf("faults: churn spacing %v must be positive", f.MeanSpacing)
	}
	if err := f.Window.validate(); err != nil {
		return err
	}
	in.poisson(f.Window, f.MeanSpacing, func() {
		in.note("churn", "job mix perturbed")
		f.Perturb()
	})
	return nil
}

// SampleLoss drops monitor samples independently with DropProb,
// modeling a lossy telemetry path between the platform and the resource
// manager.
type SampleLoss struct {
	Monitor  *monitor.Monitor
	DropProb float64
	Window   Window
}

// Arm installs the loss decision on the monitor.
func (f SampleLoss) Arm(in *Injector) error {
	if f.Monitor == nil {
		return fmt.Errorf("faults: SampleLoss with nil monitor")
	}
	if f.DropProb < 0 || f.DropProb > 1 || math.IsNaN(f.DropProb) {
		return fmt.Errorf("faults: sample loss probability %v out of [0,1]", f.DropProb)
	}
	if err := f.Window.validate(); err != nil {
		return err
	}
	f.Monitor.SetLossFunc(func() bool {
		if !f.Window.contains(in.k.Now()) {
			return false
		}
		if in.rng.Float64() < f.DropProb {
			in.note("sample-loss", "monitor sample dropped")
			return true
		}
		return false
	})
	return nil
}
