package faults

import (
	"testing"

	"contention/internal/cpu"
	"contention/internal/des"
	"contention/internal/monitor"
	"contention/internal/platform"
	"contention/internal/workload"
)

func newSP(t *testing.T) (*des.Kernel, *platform.SunParagon) {
	t.Helper()
	k := des.New()
	return k, platform.MustNewSunParagon(k, platform.DefaultParagonParams(platform.OneHop))
}

// runScenario drives a fixed traffic pattern under the full fault
// composition and returns the injector plus the observables a
// reproducibility check compares.
func runScenario(t *testing.T, seed int64) (*Injector, float64, int, int) {
	t.Helper()
	k, sp := newSP(t)
	mon, err := monitor.New(sp, 0.05, 1000)
	if err != nil {
		t.Fatal(err)
	}
	mon.Start()
	in := NewInjector(k, seed)
	churn := 0
	err = in.Arm(
		LinkFaults{Link: sp.Link, DropProb: 0.2, CorruptProb: 0.1},
		HostStalls{Host: sp.Host, MeanSpacing: 0.4, MeanDuration: 0.05},
		CrashRestart{Host: sp.Host, MTBF: 2, Downtime: 0.1},
		ContenderChurn{MeanSpacing: 0.5, Perturb: func() { churn++ }},
		SampleLoss{Monitor: mon, DropProb: 0.3},
	)
	if err != nil {
		t.Fatal(err)
	}
	workload.SpawnPingEcho(sp, "x")
	elapsed := -1.0
	k.Spawn("bench", func(p *des.Proc) {
		elapsed = workload.PingPongBurst(p, sp, "x", 200, 256)
		k.Stop()
	})
	k.Run()
	if elapsed < 0 {
		t.Fatal("burst did not finish")
	}
	return in, elapsed, churn, mon.Dropped()
}

func TestSeededInjectionIsReproducible(t *testing.T) {
	in1, e1, c1, d1 := runScenario(t, 7)
	in2, e2, c2, d2 := runScenario(t, 7)
	if e1 != e2 {
		t.Fatalf("elapsed differs for same seed: %v vs %v", e1, e2)
	}
	if c1 != c2 || d1 != d2 {
		t.Fatalf("side effects differ: churn %d/%d, dropped %d/%d", c1, c2, d1, d2)
	}
	log1, log2 := in1.Log(), in2.Log()
	if len(log1) != len(log2) {
		t.Fatalf("fault logs differ in length: %d vs %d", len(log1), len(log2))
	}
	for i := range log1 {
		if log1[i] != log2[i] {
			t.Fatalf("fault %d differs: %+v vs %+v", i, log1[i], log2[i])
		}
	}
	if len(log1) == 0 {
		t.Fatal("no faults fired")
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	_, e1, _, _ := runScenario(t, 1)
	_, e2, _, _ := runScenario(t, 2)
	if e1 == e2 {
		t.Fatalf("different seeds produced identical elapsed %v", e1)
	}
}

func TestLinkFaultsSlowTheWire(t *testing.T) {
	clean := func() float64 {
		k, sp := newSP(t)
		workload.SpawnPingEcho(sp, "x")
		e := -1.0
		k.Spawn("b", func(p *des.Proc) { e = workload.PingPongBurst(p, sp, "x", 200, 256); k.Stop() })
		k.Run()
		return e
	}()
	k, sp := newSP(t)
	in := NewInjector(k, 3)
	if err := in.Arm(LinkFaults{Link: sp.Link, DropProb: 0.3}); err != nil {
		t.Fatal(err)
	}
	workload.SpawnPingEcho(sp, "x")
	faulty := -1.0
	k.Spawn("b", func(p *des.Proc) { faulty = workload.PingPongBurst(p, sp, "x", 200, 256); k.Stop() })
	k.Run()
	if faulty <= clean {
		t.Fatalf("faulty burst %v not slower than clean %v", faulty, clean)
	}
	if sp.Link.Retransmits() == 0 {
		t.Fatal("no retransmits under 30% drop")
	}
	if in.Count("link-drop") == 0 {
		t.Fatal("no drop events logged")
	}
	if in.Count("link-drop")+in.Count("link-corrupt") != sp.Link.Retransmits() {
		t.Fatalf("log (%d drops + %d corrupt) disagrees with link retransmits %d",
			in.Count("link-drop"), in.Count("link-corrupt"), sp.Link.Retransmits())
	}
}

func TestHostStallsFreezeCompute(t *testing.T) {
	k := des.New()
	h := cpu.NewHost(k, "sun", 1)
	in := NewInjector(k, 5)
	if err := in.Arm(HostStalls{Host: h, MeanSpacing: 0.2, MeanDuration: 0.2}); err != nil {
		t.Fatal(err)
	}
	done := -1.0
	k.Spawn("a", func(p *des.Proc) { h.Compute(p, 5); done = p.Now() })
	k.RunUntil(1000)
	if done <= 5 {
		t.Fatalf("5 units finished at %v despite stalls", done)
	}
	if h.Stalls() != in.Count("host-stall") {
		t.Fatalf("host counted %d stalls, log has %d", h.Stalls(), in.Count("host-stall"))
	}
}

func TestCrashRestartAddsDowntime(t *testing.T) {
	k := des.New()
	h := cpu.NewHost(k, "sun", 1)
	in := NewInjector(k, 11)
	if err := in.Arm(CrashRestart{Host: h, MTBF: 1, Downtime: 0.5}); err != nil {
		t.Fatal(err)
	}
	done := -1.0
	k.Spawn("a", func(p *des.Proc) { h.Compute(p, 10); done = p.Now() })
	k.RunUntil(1000)
	crashes := in.Count("crash-restart")
	if crashes == 0 {
		t.Fatal("no crashes in 10 work units at MTBF 1")
	}
	// Progress freezes during each downtime window; with checkpointed
	// progress the job still finishes, later by at least one downtime.
	if done < 10+0.5 {
		t.Fatalf("finished at %v with %d crashes, want ≥ 10.5", done, crashes)
	}
}

func TestWindowBoundsInjection(t *testing.T) {
	k, sp := newSP(t)
	in := NewInjector(k, 9)
	// Faults live only inside [0.5, 1.0): traffic before and after must
	// be untouched.
	if err := in.Arm(LinkFaults{Link: sp.Link, DropProb: 1, Window: Window{Start: 0.5, End: 1.0}}); err != nil {
		t.Fatal(err)
	}
	workload.SpawnPingEcho(sp, "x")
	k.Spawn("b", func(p *des.Proc) {
		workload.PingPongBurst(p, sp, "x", 20, 100)
		if p.Now() >= 0.5 {
			t.Errorf("pre-window burst ran into the window: %v", p.Now())
		}
		p.Delay(1.5 - p.Now())
		workload.PingPongBurst(p, sp, "x", 20, 100)
		k.Stop()
	})
	preRetrans := -1
	k.At(0.5, func() { preRetrans = sp.Link.Retransmits() })
	k.Run()
	if preRetrans != 0 {
		t.Fatalf("%d retransmits before the fault window opened", preRetrans)
	}
	// After the window closes no further retransmits accumulate beyond
	// what the window produced.
	if sp.Link.Retransmits() != in.Count("link-drop") {
		t.Fatalf("retransmits %d != logged drops %d", sp.Link.Retransmits(), in.Count("link-drop"))
	}
}

func TestArmValidation(t *testing.T) {
	k, sp := newSP(t)
	h := cpu.NewHost(k, "sun2", 1)
	mon, err := monitor.New(sp, 0.1, 10)
	if err != nil {
		t.Fatal(err)
	}
	in := NewInjector(k, 1)
	bad := []Fault{
		LinkFaults{Link: nil, DropProb: 0.1},
		LinkFaults{Link: sp.Link, DropProb: -0.1},
		LinkFaults{Link: sp.Link, DropProb: 0.7, CorruptProb: 0.7},
		LinkFaults{Link: sp.Link, DropProb: 0.1, Window: Window{Start: 2, End: 1}},
		HostStalls{Host: nil, MeanSpacing: 1, MeanDuration: 1},
		HostStalls{Host: h, MeanSpacing: 0, MeanDuration: 1},
		HostStalls{Host: h, MeanSpacing: 1, MeanDuration: -1},
		CrashRestart{Host: nil, MTBF: 1, Downtime: 1},
		CrashRestart{Host: h, MTBF: 0, Downtime: 1},
		ContenderChurn{MeanSpacing: 1, Perturb: nil},
		ContenderChurn{MeanSpacing: 0, Perturb: func() {}},
		SampleLoss{Monitor: nil, DropProb: 0.1},
		SampleLoss{Monitor: mon, DropProb: 1.5},
	}
	for i, f := range bad {
		if err := in.Arm(f); err == nil {
			t.Errorf("case %d accepted: %+v", i, f)
		}
	}
}

func TestLinkFaultDistinguishesDropAndCorrupt(t *testing.T) {
	k, sp := newSP(t)
	in := NewInjector(k, 21)
	if err := in.Arm(LinkFaults{Link: sp.Link, DropProb: 0.15, CorruptProb: 0.15}); err != nil {
		t.Fatal(err)
	}
	workload.SpawnPingEcho(sp, "x")
	k.Spawn("b", func(p *des.Proc) { workload.PingPongBurst(p, sp, "x", 300, 200); k.Stop() })
	k.Run()
	if in.Count("link-drop") == 0 || in.Count("link-corrupt") == 0 {
		t.Fatalf("expected both kinds: %d drops, %d corruptions",
			in.Count("link-drop"), in.Count("link-corrupt"))
	}
}
