package faults

import (
	"testing"

	"contention/internal/obs"
)

// TestInjectionCountersMatchLog checks that the per-kind fault counters
// agree exactly with the injector's own event log under the full fault
// composition.
func TestInjectionCountersMatchLog(t *testing.T) {
	obs.SetEnabled(true)
	t.Cleanup(func() { obs.SetEnabled(false) })

	before := map[string]int64{}
	kinds := []string{"link-drop", "link-corrupt", "host-stall", "crash-restart", "churn", "sample-loss"}
	for _, k := range kinds {
		before[k] = mInjected.With(k).Value()
	}
	in, _, _, _ := runScenario(t, 7)
	for _, k := range kinds {
		moved := int(mInjected.With(k).Value() - before[k])
		if logged := in.Count(k); moved != logged {
			t.Errorf("kind %q: counter moved by %d, log has %d", k, moved, logged)
		}
	}
	if in.Count("") == 0 {
		t.Fatal("scenario fired no faults")
	}
}
