package faults

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Network chaos planning: the same pure-function-of-one-seed property
// as PlanChaos, but for the wire between a router and its remote
// replicas rather than the replica processes themselves. Events target
// links (proxy instances), and the kinds map onto what a real network
// does to long-lived HTTP connections: added latency, mid-stream
// resets, stalls (packets neither flowing nor failing), and full
// partitions. Partitions are special-cased for the availability
// guarantee chaos gates assert: PlanNetChaos serializes them — at most
// one link is partitioned at any moment, with a guard gap between heal
// and next onset — so a fleet of ≥2 replicas always has a reachable
// member even under the nastiest seed.

// Net chaos event kinds emitted by PlanNetChaos.
const (
	// NetChaosLatency adds Event.Latency of one-way delay on the link
	// for Event.For.
	NetChaosLatency = "latency"
	// NetChaosReset RSTs every connection currently open on the link.
	NetChaosReset = "reset"
	// NetChaosStall freezes the link's byte flow for Event.For without
	// closing anything (the worst case for timeout tuning).
	NetChaosStall = "stall"
	// NetChaosPartition makes the link refuse new connections and sever
	// existing ones until the paired NetChaosHeal.
	NetChaosPartition = "partition"
	// NetChaosHeal clears a prior NetChaosPartition on the same target.
	NetChaosHeal = "heal"
)

// NetChaosEvent is one planned network fault.
type NetChaosEvent struct {
	// At is the offset from the start of the run.
	At time.Duration
	// Kind is one of the NetChaos* constants.
	Kind string
	// Target is the link index in [0, Links).
	Target int
	// For is the fault length (latency, stall; partitions express theirs
	// as the paired heal event).
	For time.Duration
	// Latency is the added one-way delay (NetChaosLatency only).
	Latency time.Duration
}

// NetChaosSpec parameterizes a network chaos plan. Every *Every field
// is a mean inter-arrival time (Poisson arrivals); zero disables that
// kind.
type NetChaosSpec struct {
	// Seed fixes the plan: equal specs produce identical plans.
	Seed int64
	// Links is the number of proxied replica links events target.
	Links int
	// Duration bounds event onsets to [0, Duration).
	Duration time.Duration

	// LatencyEvery / LatencyFor / LatencyAdd: mean spacing, mean length,
	// and mean added delay of latency episodes.
	LatencyEvery, LatencyFor, LatencyAdd time.Duration
	// ResetEvery is the mean spacing of connection-reset bursts.
	ResetEvery time.Duration
	// StallEvery / StallFor are the mean spacing and mean length of
	// link stalls.
	StallEvery, StallFor time.Duration
	// PartitionEvery / PartitionFor are the mean spacing and mean length
	// of full partitions. Partitions are serialized across all links
	// with PartitionGuard between one heal and the next onset.
	PartitionEvery, PartitionFor time.Duration
	// PartitionGuard is the minimum healed gap between partitions.
	// Zero selects PartitionFor (one mean length of calm between storms).
	PartitionGuard time.Duration
}

func (s NetChaosSpec) validate() error {
	if s.Links < 1 {
		return fmt.Errorf("faults: net chaos plan needs at least one link (got %d)", s.Links)
	}
	if s.Duration <= 0 {
		return fmt.Errorf("faults: net chaos duration %v must be positive", s.Duration)
	}
	for _, d := range []time.Duration{
		s.LatencyEvery, s.LatencyFor, s.LatencyAdd, s.ResetEvery,
		s.StallEvery, s.StallFor, s.PartitionEvery, s.PartitionFor, s.PartitionGuard,
	} {
		if d < 0 {
			return fmt.Errorf("faults: negative net chaos spacing/duration %v", d)
		}
	}
	if s.LatencyEvery > 0 && (s.LatencyFor == 0 || s.LatencyAdd == 0) {
		return fmt.Errorf("faults: LatencyEvery set without LatencyFor/LatencyAdd")
	}
	if s.StallEvery > 0 && s.StallFor == 0 {
		return fmt.Errorf("faults: StallEvery set without StallFor")
	}
	if s.PartitionEvery > 0 && s.PartitionFor == 0 {
		return fmt.Errorf("faults: PartitionEvery set without PartitionFor")
	}
	return nil
}

// PlanNetChaos expands a spec into its deterministic event schedule,
// sorted by onset with a total tie-break order. Partition onsets are
// pushed forward so no two partitions (on any link) overlap and a
// guard gap separates a heal from the next onset: with two or more
// links, at least one link is always unpartitioned.
func PlanNetChaos(spec NetChaosSpec) ([]NetChaosEvent, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	if spec.PartitionGuard == 0 {
		spec.PartitionGuard = spec.PartitionFor
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	var events []NetChaosEvent

	// Fixed kind order: the draw sequence is a function of the seed
	// alone (same discipline as PlanChaos).
	arrivals := func(every time.Duration, emit func(at time.Duration)) {
		if every <= 0 {
			return
		}
		at := time.Duration(rng.ExpFloat64() * float64(every))
		for at < spec.Duration {
			emit(at)
			at += time.Duration(rng.ExpFloat64() * float64(every))
		}
	}
	expDur := func(mean time.Duration) time.Duration {
		d := time.Duration(rng.ExpFloat64() * float64(mean))
		return max(d, time.Millisecond)
	}

	arrivals(spec.LatencyEvery, func(at time.Duration) {
		events = append(events, NetChaosEvent{
			At: at, Kind: NetChaosLatency, Target: rng.Intn(spec.Links),
			For: expDur(spec.LatencyFor), Latency: expDur(spec.LatencyAdd),
		})
	})
	arrivals(spec.ResetEvery, func(at time.Duration) {
		events = append(events, NetChaosEvent{At: at, Kind: NetChaosReset, Target: rng.Intn(spec.Links)})
	})
	arrivals(spec.StallEvery, func(at time.Duration) {
		events = append(events, NetChaosEvent{
			At: at, Kind: NetChaosStall, Target: rng.Intn(spec.Links), For: expDur(spec.StallFor),
		})
	})
	// Partitions: serialized, guarded, never overlapping.
	var lastHeal time.Duration
	arrivals(spec.PartitionEvery, func(at time.Duration) {
		target := rng.Intn(spec.Links)
		length := expDur(spec.PartitionFor)
		onset := at
		if earliest := lastHeal + spec.PartitionGuard; lastHeal > 0 && onset < earliest {
			onset = earliest
		}
		if onset >= spec.Duration {
			return
		}
		lastHeal = onset + length
		events = append(events,
			NetChaosEvent{At: onset, Kind: NetChaosPartition, Target: target, For: length},
			NetChaosEvent{At: lastHeal, Kind: NetChaosHeal, Target: target})
	})

	sort.Slice(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Target < b.Target
	})
	return events, nil
}

// NetChaosSummary counts a plan's events by kind.
func NetChaosSummary(events []NetChaosEvent) map[string]int {
	m := make(map[string]int, 5)
	for _, e := range events {
		m[e.Kind]++
	}
	return m
}

// NetPlanEnd reports the latest onset in the plan (0 for an empty
// plan), after which the applier may stop waiting.
func NetPlanEnd(events []NetChaosEvent) time.Duration {
	var m time.Duration
	for _, e := range events {
		if e.At > m {
			m = e.At
		}
	}
	return m
}
