package faults

import (
	"reflect"
	"testing"
	"time"
)

func testNetSpec(seed int64) NetChaosSpec {
	return NetChaosSpec{
		Seed:           seed,
		Links:          3,
		Duration:       10 * time.Second,
		LatencyEvery:   400 * time.Millisecond,
		LatencyFor:     200 * time.Millisecond,
		LatencyAdd:     30 * time.Millisecond,
		ResetEvery:     600 * time.Millisecond,
		StallEvery:     800 * time.Millisecond,
		StallFor:       150 * time.Millisecond,
		PartitionEvery: 1500 * time.Millisecond,
		PartitionFor:   400 * time.Millisecond,
	}
}

func TestPlanNetChaosDeterministic(t *testing.T) {
	a, err := PlanNetChaos(testNetSpec(1996))
	if err != nil {
		t.Fatalf("PlanNetChaos: %v", err)
	}
	b, err := PlanNetChaos(testNetSpec(1996))
	if err != nil {
		t.Fatalf("PlanNetChaos: %v", err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("equal specs produced different plans")
	}
	if len(a) == 0 {
		t.Fatal("plan is empty")
	}
	c, err := PlanNetChaos(testNetSpec(7))
	if err != nil {
		t.Fatalf("PlanNetChaos: %v", err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical plans")
	}
	sum := NetChaosSummary(a)
	for _, kind := range []string{NetChaosLatency, NetChaosReset, NetChaosStall, NetChaosPartition} {
		if sum[kind] == 0 {
			t.Errorf("plan has no %s events: %v", kind, sum)
		}
	}
	if sum[NetChaosPartition] != sum[NetChaosHeal] {
		t.Errorf("%d partitions but %d heals", sum[NetChaosPartition], sum[NetChaosHeal])
	}
}

// TestPlanNetChaosPartitionsSerialized: partitions never overlap — on
// any link — and a guard gap separates a heal from the next onset, so
// a ≥2-replica fleet always has a reachable member.
func TestPlanNetChaosPartitionsSerialized(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		spec := testNetSpec(seed)
		spec.PartitionEvery = 300 * time.Millisecond // press hard
		events, err := PlanNetChaos(spec)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		var lastHeal time.Duration
		open := -1 // link currently partitioned, -1 none
		for _, e := range events {
			switch e.Kind {
			case NetChaosPartition:
				if open != -1 {
					t.Fatalf("seed %d: partition of link %d at %v while link %d still partitioned",
						seed, e.Target, e.At, open)
				}
				if lastHeal > 0 && e.At < lastHeal+spec.PartitionGuard {
					// Guard defaulted to PartitionFor inside PlanNetChaos.
					if e.At < lastHeal+spec.PartitionFor {
						t.Fatalf("seed %d: partition at %v violates guard after heal at %v", seed, e.At, lastHeal)
					}
				}
				open = e.Target
			case NetChaosHeal:
				if open != e.Target {
					t.Fatalf("seed %d: heal of link %d at %v but %d was partitioned", seed, e.Target, e.At, open)
				}
				open = -1
				lastHeal = e.At
			}
		}
	}
}

func TestPlanNetChaosValidation(t *testing.T) {
	bad := []NetChaosSpec{
		{Links: 0, Duration: time.Second},
		{Links: 2, Duration: 0},
		{Links: 2, Duration: time.Second, LatencyEvery: time.Second}, // no For/Add
		{Links: 2, Duration: time.Second, StallEvery: time.Second},   // no StallFor
		{Links: 2, Duration: time.Second, PartitionEvery: time.Second},
		{Links: 2, Duration: time.Second, ResetEvery: -time.Second},
	}
	for i, s := range bad {
		if _, err := PlanNetChaos(s); err == nil {
			t.Errorf("spec %d accepted: %+v", i, s)
		}
	}
	if _, err := PlanNetChaos(NetChaosSpec{Links: 1, Duration: time.Second}); err != nil {
		t.Errorf("empty-but-valid spec rejected: %v", err)
	}
}
