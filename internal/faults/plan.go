package faults

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Wall-clock chaos planning. The Injector above perturbs the *simulated*
// platform from inside the DES kernel; the serving cluster lives in real
// time, so its chaos harness needs the same property — a fault schedule
// that is a pure function of one seed — without a kernel to hang events
// on. PlanChaos pre-computes the whole schedule up front: the plan (what
// dies, stalls, or degrades, when, for how long) is bit-deterministic
// for a fixed spec, and the applier just replays it against wall-clock
// timers. Re-running a chaos gate with the same seed re-fires the same
// faults in the same order at the same offsets.

// Chaos event kinds emitted by PlanChaos.
const (
	// ChaosKill fail-stops a replica; the supervisor restarts it.
	ChaosKill = "kill"
	// ChaosStall freezes a replica's request handling for Event.For.
	ChaosStall = "stall"
	// ChaosDegrade marks a replica's calibration untrusted (p+1 fallback
	// answers) until the paired ChaosRecover.
	ChaosDegrade = "degrade"
	// ChaosRecover clears a prior ChaosDegrade on the same target.
	ChaosRecover = "recover"
)

// ChaosEvent is one planned fault.
type ChaosEvent struct {
	// At is the offset from the start of the run.
	At time.Duration
	// Kind is one of the Chaos* constants.
	Kind string
	// Target is the replica index in [0, Replicas).
	Target int
	// For is the stall length (ChaosStall only; 0 otherwise — degrade
	// length is expressed as a separate ChaosRecover event).
	For time.Duration
}

// ChaosSpec parameterizes a chaos plan. Rates are mean inter-arrival
// times per kind (Poisson arrivals, exponential spacing); zero disables
// that kind.
type ChaosSpec struct {
	// Seed fixes the plan: equal specs produce identical plans.
	Seed int64
	// Replicas is the fleet size events target.
	Replicas int
	// Duration bounds event onsets to [0, Duration).
	Duration time.Duration

	// KillEvery is the mean spacing of fail-stop kills.
	KillEvery time.Duration
	// StallEvery / StallFor are the mean spacing and mean length of
	// request-handling stalls.
	StallEvery, StallFor time.Duration
	// DegradeEvery / DegradeFor are the mean spacing and mean length of
	// calibration-trust degradations.
	DegradeEvery, DegradeFor time.Duration
}

func (s ChaosSpec) validate() error {
	if s.Replicas < 1 {
		return fmt.Errorf("faults: chaos plan needs at least one replica (got %d)", s.Replicas)
	}
	if s.Duration <= 0 {
		return fmt.Errorf("faults: chaos duration %v must be positive", s.Duration)
	}
	for _, d := range []time.Duration{s.KillEvery, s.StallEvery, s.StallFor, s.DegradeEvery, s.DegradeFor} {
		if d < 0 {
			return fmt.Errorf("faults: negative chaos spacing/duration %v", d)
		}
	}
	if s.StallEvery > 0 && s.StallFor == 0 {
		return fmt.Errorf("faults: StallEvery set without StallFor")
	}
	if s.DegradeEvery > 0 && s.DegradeFor == 0 {
		return fmt.Errorf("faults: DegradeEvery set without DegradeFor")
	}
	return nil
}

// PlanChaos expands a spec into its deterministic event schedule,
// sorted by onset (ties broken by kind then target, so the order is
// total and reproducible). Durations drawn for stalls and degradations
// are exponential around their means, clamped below at 1ms so an event
// always does something observable. ChaosRecover events paired with a
// degradation may land past Duration; the applier simply fires them
// during teardown slack.
func PlanChaos(spec ChaosSpec) ([]ChaosEvent, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	var events []ChaosEvent

	// Kind order is fixed: every draw sequence is a function of the seed
	// alone, never of map iteration or scheduling.
	arrivals := func(every time.Duration, emit func(at time.Duration)) {
		if every <= 0 {
			return
		}
		at := time.Duration(rng.ExpFloat64() * float64(every))
		for at < spec.Duration {
			emit(at)
			at += time.Duration(rng.ExpFloat64() * float64(every))
		}
	}
	expDur := func(mean time.Duration) time.Duration {
		d := time.Duration(rng.ExpFloat64() * float64(mean))
		return max(d, time.Millisecond)
	}

	arrivals(spec.KillEvery, func(at time.Duration) {
		events = append(events, ChaosEvent{At: at, Kind: ChaosKill, Target: rng.Intn(spec.Replicas)})
	})
	arrivals(spec.StallEvery, func(at time.Duration) {
		events = append(events, ChaosEvent{At: at, Kind: ChaosStall, Target: rng.Intn(spec.Replicas), For: expDur(spec.StallFor)})
	})
	arrivals(spec.DegradeEvery, func(at time.Duration) {
		target := rng.Intn(spec.Replicas)
		length := expDur(spec.DegradeFor)
		events = append(events,
			ChaosEvent{At: at, Kind: ChaosDegrade, Target: target},
			ChaosEvent{At: at + length, Kind: ChaosRecover, Target: target})
	})

	sort.Slice(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Target < b.Target
	})
	return events, nil
}

// ChaosSummary counts a plan's events by kind — the compact form chaos
// gates log so a failing run names the schedule it replayed.
func ChaosSummary(events []ChaosEvent) map[string]int {
	m := make(map[string]int, 4)
	for _, e := range events {
		m[e.Kind]++
	}
	return m
}

// PlanEnd reports the latest onset in the plan (0 for an empty plan),
// after which the applier may stop waiting.
func PlanEnd(events []ChaosEvent) time.Duration {
	var m time.Duration
	for _, e := range events {
		if e.At > m {
			m = e.At
		}
	}
	return m
}
