package faults

import (
	"reflect"
	"testing"
	"time"
)

func chaosSpec(seed int64) ChaosSpec {
	return ChaosSpec{
		Seed:         seed,
		Replicas:     4,
		Duration:     10 * time.Second,
		KillEvery:    2 * time.Second,
		StallEvery:   time.Second,
		StallFor:     200 * time.Millisecond,
		DegradeEvery: 3 * time.Second,
		DegradeFor:   time.Second,
	}
}

func TestPlanChaosDeterministic(t *testing.T) {
	a, err := PlanChaos(chaosSpec(42))
	if err != nil {
		t.Fatalf("PlanChaos: %v", err)
	}
	b, err := PlanChaos(chaosSpec(42))
	if err != nil {
		t.Fatalf("PlanChaos (rerun): %v", err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("equal specs produced different plans")
	}
	if len(a) == 0 {
		t.Fatal("plan is empty for a spec with all fault kinds enabled")
	}
	c, err := PlanChaos(chaosSpec(43))
	if err != nil {
		t.Fatalf("PlanChaos (other seed): %v", err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical plans")
	}
}

func TestPlanChaosShape(t *testing.T) {
	events, err := PlanChaos(chaosSpec(7))
	if err != nil {
		t.Fatalf("PlanChaos: %v", err)
	}
	spec := chaosSpec(7)
	degrades := map[int]int{}
	for i, e := range events {
		if i > 0 && events[i-1].At > e.At {
			t.Fatalf("plan not sorted at %d: %v after %v", i, e.At, events[i-1].At)
		}
		if e.Target < 0 || e.Target >= spec.Replicas {
			t.Fatalf("event %d targets replica %d outside [0,%d)", i, e.Target, spec.Replicas)
		}
		switch e.Kind {
		case ChaosKill, ChaosDegrade, ChaosRecover:
			if e.For != 0 {
				t.Fatalf("%s event carries a duration %v", e.Kind, e.For)
			}
			if e.Kind != ChaosRecover && e.At >= spec.Duration {
				t.Fatalf("%s onset %v past duration %v", e.Kind, e.At, spec.Duration)
			}
			if e.Kind == ChaosDegrade {
				degrades[e.Target]++
			} else if e.Kind == ChaosRecover {
				degrades[e.Target]--
			}
		case ChaosStall:
			if e.For < time.Millisecond {
				t.Fatalf("stall %d has sub-millisecond length %v", i, e.For)
			}
			if e.At >= spec.Duration {
				t.Fatalf("stall onset %v past duration %v", e.At, spec.Duration)
			}
		default:
			t.Fatalf("unknown event kind %q", e.Kind)
		}
	}
	for target, n := range degrades {
		if n != 0 {
			t.Fatalf("replica %d has %d unpaired degrade events", target, n)
		}
	}
	sum := ChaosSummary(events)
	if sum[ChaosDegrade] != sum[ChaosRecover] {
		t.Fatalf("summary degrades %d != recovers %d", sum[ChaosDegrade], sum[ChaosRecover])
	}
	if got := PlanEnd(events); got != events[len(events)-1].At {
		t.Fatalf("PlanEnd %v != last onset %v", got, events[len(events)-1].At)
	}
}

func TestPlanChaosValidation(t *testing.T) {
	bad := []ChaosSpec{
		{Replicas: 0, Duration: time.Second},
		{Replicas: 2, Duration: 0},
		{Replicas: 2, Duration: time.Second, KillEvery: -1},
		{Replicas: 2, Duration: time.Second, StallEvery: time.Second},   // no StallFor
		{Replicas: 2, Duration: time.Second, DegradeEvery: time.Second}, // no DegradeFor
	}
	for i, spec := range bad {
		if _, err := PlanChaos(spec); err == nil {
			t.Fatalf("spec %d validated, want error", i)
		}
	}
	// A kills-only plan is valid.
	events, err := PlanChaos(ChaosSpec{Seed: 1, Replicas: 2, Duration: 5 * time.Second, KillEvery: time.Second})
	if err != nil {
		t.Fatalf("kills-only spec: %v", err)
	}
	for _, e := range events {
		if e.Kind != ChaosKill {
			t.Fatalf("kills-only plan contains %q", e.Kind)
		}
	}
}
