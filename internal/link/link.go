// Package link models the private network connecting the front-end to
// the back-end machine: a half-duplex FCFS wire shared by all
// applications, with per-message data-format-conversion work charged to
// the endpoint CPUs.
//
// Two properties of the real Sun/Paragon Ethernet that the paper's model
// depends on are reproduced structurally:
//
//   - Packetization: messages are fragmented at the MTU, paying a
//     per-packet overhead, which makes the dedicated cost a
//     piecewise-linear function of message size with the knee at the MTU
//     (the paper's 1024-word threshold).
//   - CPU coupling: the conversion stage executes on the sending (and
//     optionally receiving) host CPU, so CPU-bound contenders slow
//     communication and communicating contenders slow computation —
//     exactly the cross-terms the slowdown model captures.
package link

import (
	"fmt"
	"math"

	"contention/internal/cpu"
	"contention/internal/des"
)

// Message is one transfer across the link.
type Message struct {
	Words   int
	SrcPort string
	DstPort string
	Sent    float64 // virtual time Send was called
	Queued  float64 // virtual time the wire was acquired
	Arrived float64 // virtual time of delivery to the inbox
	Payload any
}

// Config describes the wire characteristics of a link.
type Config struct {
	Name string
	// MTU is the maximum packet payload in words; larger messages are
	// fragmented. Must be positive.
	MTU int
	// PerPacket is the wire overhead per packet in seconds (framing,
	// protocol acknowledgement, interrupt handling).
	PerPacket float64
	// Bandwidth is the raw wire bandwidth in words per second.
	Bandwidth float64
}

func (c Config) validate() error {
	if c.MTU <= 0 {
		return fmt.Errorf("link %q: MTU %d must be positive", c.Name, c.MTU)
	}
	if c.PerPacket < 0 || math.IsNaN(c.PerPacket) {
		return fmt.Errorf("link %q: invalid per-packet overhead %v", c.Name, c.PerPacket)
	}
	if c.Bandwidth <= 0 || math.IsNaN(c.Bandwidth) {
		return fmt.Errorf("link %q: bandwidth %v must be positive", c.Name, c.Bandwidth)
	}
	return nil
}

// EndpointConfig describes one side of the link.
type EndpointConfig struct {
	Name string
	// Host, when non-nil, is the CPU that pays conversion costs on this
	// side. A nil host (e.g. the MPP side, where conversion is spread
	// over many nodes) makes conversion free.
	Host *cpu.Host
	// SendStartup/SendPerWord are CPU work units charged on this side
	// per outgoing message and per outgoing word.
	SendStartup, SendPerWord float64
	// RecvStartup/RecvPerWord are CPU work units charged to the
	// receiving process (in Recv) per incoming message and word — the
	// data-format conversion performed in the reader's context.
	RecvStartup, RecvPerWord float64
	// PreSend, when non-nil, runs in the sender's process before the
	// wire is acquired — e.g. the NX hop from a Paragon compute node to
	// the service node in 2-HOPS mode.
	PreSend func(p *des.Proc, words int)
	// Forward, when non-nil, intercepts inbound delivery on this
	// endpoint after receive conversion: it must eventually call
	// deliver. Used for the service-node → compute-node NX hop.
	Forward func(words int, deliver func())
}

// maxTxAttempts bounds retransmission: after this many lost attempts the
// transfer is delivered anyway, so a pathological fault schedule cannot
// livelock a sender. Each lost attempt still pays full wire time plus a
// doubling retransmit backoff.
const maxTxAttempts = 16

// FaultFunc decides, per transmission attempt, whether the attempt is
// lost on the wire (dropped or corrupted beyond recovery). A lost
// attempt pays its full wire occupancy and is retransmitted after a
// paced backoff. Installed by the fault-injection subsystem; nil means a
// perfect wire.
type FaultFunc func(words int) bool

// Link is a half-duplex point-to-point wire between two endpoints.
type Link struct {
	k    *des.Kernel
	cfg  Config
	wire *des.Semaphore
	a, b *Endpoint

	busyTime   float64
	messages   int
	wordsMoved int

	fault       FaultFunc
	retransmits int
}

// Endpoint is one side of a link; applications send from and receive at
// named ports so concurrent applications do not steal each other's
// messages.
type Endpoint struct {
	link  *Link
	cfg   EndpointConfig
	peer  *Endpoint
	ports map[string]*des.Mailbox[Message]
}

// New creates a link between two endpoints.
func New(k *des.Kernel, cfg Config, aCfg, bCfg EndpointConfig) (*Link, *Endpoint, *Endpoint, error) {
	if err := cfg.validate(); err != nil {
		return nil, nil, nil, err
	}
	l := &Link{k: k, cfg: cfg, wire: des.NewSemaphore(k, 1)}
	l.a = &Endpoint{link: l, cfg: aCfg, ports: map[string]*des.Mailbox[Message]{}}
	l.b = &Endpoint{link: l, cfg: bCfg, ports: map[string]*des.Mailbox[Message]{}}
	l.a.peer, l.b.peer = l.b, l.a
	return l, l.a, l.b, nil
}

// MustNew is New but panics on config errors; for tests and fixtures.
func MustNew(k *des.Kernel, cfg Config, aCfg, bCfg EndpointConfig) (*Link, *Endpoint, *Endpoint) {
	l, a, b, err := New(k, cfg, aCfg, bCfg)
	if err != nil {
		panic(err)
	}
	return l, a, b
}

// Config returns the wire configuration.
func (l *Link) Config() Config { return l.cfg }

// WireTime returns the dedicated-mode wire occupancy for a message of
// the given size: ceil(words/MTU) packets of overhead plus payload time.
func (l *Link) WireTime(words int) float64 {
	if words <= 0 {
		return l.cfg.PerPacket
	}
	packets := (words + l.cfg.MTU - 1) / l.cfg.MTU
	return float64(packets)*l.cfg.PerPacket + float64(words)/l.cfg.Bandwidth
}

// BusyTime reports cumulative wire occupancy.
func (l *Link) BusyTime() float64 { return l.busyTime }

// Messages reports the number of messages fully transmitted.
func (l *Link) Messages() int { return l.messages }

// WordsMoved reports the total payload words transmitted.
func (l *Link) WordsMoved() int { return l.wordsMoved }

// SetFaultFunc installs (or, with nil, removes) the per-attempt fault
// decision. Call from simulation context only; the kernel serializes all
// senders, so no further synchronization is needed.
func (l *Link) SetFaultFunc(f FaultFunc) { l.fault = f }

// Retransmits reports the number of lost transmission attempts that were
// retransmitted.
func (l *Link) Retransmits() int { return l.retransmits }

// Utilization reports wire busy fraction since t=0.
func (l *Link) Utilization() float64 {
	if now := l.k.Now(); now > 0 {
		return l.busyTime / now
	}
	return 0
}

// Name reports the endpoint name.
func (e *Endpoint) Name() string { return e.cfg.Name }

// Port returns (creating if needed) the inbox for the given port name.
func (e *Endpoint) Port(name string) *des.Mailbox[Message] {
	mb, ok := e.ports[name]
	if !ok {
		mb = des.NewMailbox[Message](e.link.k, e.cfg.Name+"/"+name)
		e.ports[name] = mb
	}
	return mb
}

// Send transfers words of payload to dstPort on the peer endpoint,
// blocking p through local conversion and wire occupancy (receiver-side
// conversion is pipelined and charged asynchronously). The returned
// message carries the sender-side timestamps; the receiver's copy also
// has Arrived set.
func (e *Endpoint) Send(p *des.Proc, srcPort, dstPort string, words int, payload any) Message {
	if words < 0 {
		panic(fmt.Sprintf("link: negative message size %d", words))
	}
	l := e.link
	msg := Message{Words: words, SrcPort: srcPort, DstPort: dstPort, Sent: p.Now(), Payload: payload}

	// 0. Pre-wire hop on the sending side (e.g. NX to the service node).
	if e.cfg.PreSend != nil {
		e.cfg.PreSend(p, words)
	}

	// 1. Outbound data-format conversion on the local CPU (if any).
	if e.cfg.Host != nil {
		work := e.cfg.SendStartup + e.cfg.SendPerWord*float64(words)
		e.cfg.Host.Compute(p, work)
	}

	// 2. Exclusive wire occupancy, FCFS. A lost attempt (drop or
	// corruption injected by the fault subsystem) pays full wire time,
	// waits a doubling retransmit backoff off the wire, and retries.
	backoff := l.cfg.PerPacket
	for attempt := 1; ; attempt++ {
		l.wire.Acquire(p)
		if attempt == 1 {
			msg.Queued = p.Now()
		}
		wt := l.WireTime(words)
		p.Delay(wt)
		l.busyTime += wt
		l.wire.Release()
		if l.fault == nil || attempt >= maxTxAttempts || !l.fault(words) {
			break
		}
		l.retransmits++
		p.Delay(backoff)
		backoff *= 2
	}
	l.messages++
	l.wordsMoved += words

	// 3. Delivery to the peer's inbox (through the Forward hook when the
	// service node relays it). Receive-side conversion is charged in
	// Recv, in the receiving process's context.
	peer := e.peer
	deliver := func() {
		msg.Arrived = l.k.Now()
		peer.Port(dstPort).Send(msg)
	}
	if fwd := peer.cfg.Forward; fwd != nil {
		inner := deliver
		deliver = func() { fwd(words, inner) }
	}
	deliver()
	return msg
}

// Recv blocks p until a message arrives at the given local port, then
// charges the receive-side data-format conversion to this endpoint's
// CPU in the caller's context (as a Unix read of an XDR stream does).
func (e *Endpoint) Recv(p *des.Proc, port string) Message {
	msg := e.Port(port).Recv(p)
	if e.cfg.Host != nil {
		work := e.cfg.RecvStartup + e.cfg.RecvPerWord*float64(msg.Words)
		e.cfg.Host.Compute(p, work)
	}
	return msg
}
