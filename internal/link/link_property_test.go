package link

import (
	"fmt"
	"math/rand"
	"testing"

	"contention/internal/cpu"
	"contention/internal/des"
)

// Property: under random traffic, words are conserved (everything sent
// arrives), per-port delivery is FIFO, and wire busy time equals the
// sum of per-message wire times.
func TestLinkConservationProperty(t *testing.T) {
	for trial := 0; trial < 25; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		cfg := Config{
			Name:      "ether",
			MTU:       1 + rng.Intn(2048),
			PerPacket: rng.Float64() * 1e-3,
			Bandwidth: 1e4 + rng.Float64()*1e6,
		}
		k := des.New()
		host := cpu.NewHost(k, "sun", 1)
		l, a, b := MustNew(k, cfg,
			EndpointConfig{Name: "a", Host: host, SendStartup: rng.Float64() * 1e-4, SendPerWord: rng.Float64() * 1e-6},
			EndpointConfig{Name: "b"})

		nSenders := 1 + rng.Intn(4)
		perSender := 1 + rng.Intn(20)
		sentWords := 0
		expectedWire := 0.0
		type sent struct{ port string }
		var plan [][]int // per sender: message sizes
		for s := 0; s < nSenders; s++ {
			sizes := make([]int, perSender)
			for i := range sizes {
				sizes[i] = rng.Intn(3000)
				sentWords += sizes[i]
				expectedWire += l.WireTime(sizes[i])
			}
			plan = append(plan, sizes)
		}
		_ = sent{}

		received := map[string][]int{}
		for s := 0; s < nSenders; s++ {
			s := s
			port := fmt.Sprintf("p%d", s)
			k.Spawn("recv"+port, func(p *des.Proc) {
				for i := 0; i < perSender; i++ {
					msg := b.Recv(p, port)
					received[port] = append(received[port], msg.Payload.(int))
				}
			})
			k.Spawn("send"+port, func(p *des.Proc) {
				for i, words := range plan[s] {
					a.Send(p, port, port, words, i)
				}
			})
		}
		k.Run()

		if l.WordsMoved() != sentWords {
			t.Fatalf("trial %d: moved %d words, sent %d", trial, l.WordsMoved(), sentWords)
		}
		if l.Messages() != nSenders*perSender {
			t.Fatalf("trial %d: %d messages, want %d", trial, l.Messages(), nSenders*perSender)
		}
		if diff := l.BusyTime() - expectedWire; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("trial %d: busy %v, want %v", trial, l.BusyTime(), expectedWire)
		}
		// FIFO per port: payload sequence numbers in order.
		for port, seq := range received {
			for i, v := range seq {
				if v != i {
					t.Fatalf("trial %d port %s: out-of-order delivery %v", trial, port, seq)
				}
			}
		}
	}
}

// Property: the simulation is deterministic — identical runs produce
// identical message timings.
func TestLinkDeterminismProperty(t *testing.T) {
	run := func() []float64 {
		k := des.New()
		host := cpu.NewHost(k, "sun", 1)
		_, a, b := MustNew(k, Config{Name: "e", MTU: 512, PerPacket: 1e-4, Bandwidth: 1e5},
			EndpointConfig{Name: "a", Host: host, SendStartup: 1e-4, SendPerWord: 1e-6},
			EndpointConfig{Name: "b"})
		var arrivals []float64
		for s := 0; s < 3; s++ {
			port := fmt.Sprintf("p%d", s)
			k.Spawn("r"+port, func(p *des.Proc) {
				for i := 0; i < 10; i++ {
					arrivals = append(arrivals, b.Recv(p, port).Arrived)
				}
			})
			k.Spawn("s"+port, func(p *des.Proc) {
				for i := 0; i < 10; i++ {
					a.Send(p, port, port, 100*(s+1), nil)
				}
			})
		}
		k.Run()
		return arrivals
	}
	x, y := run(), run()
	if len(x) != len(y) || len(x) != 30 {
		t.Fatalf("lengths %d/%d", len(x), len(y))
	}
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("nondeterminism at %d: %v vs %v", i, x[i], y[i])
		}
	}
}
