package link

import (
	"math"
	"testing"

	"contention/internal/cpu"
	"contention/internal/des"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func basicCfg() Config {
	return Config{Name: "ether", MTU: 1024, PerPacket: 0.001, Bandwidth: 1e6}
}

func TestWireTimePiecewise(t *testing.T) {
	k := des.New()
	l, _, _ := MustNew(k, basicCfg(), EndpointConfig{Name: "a"}, EndpointConfig{Name: "b"})
	// One packet for sizes ≤ 1024.
	if got, want := l.WireTime(512), 0.001+512/1e6; !approx(got, want, 1e-12) {
		t.Fatalf("WireTime(512) = %v, want %v", got, want)
	}
	if got, want := l.WireTime(1024), 0.001+1024/1e6; !approx(got, want, 1e-12) {
		t.Fatalf("WireTime(1024) = %v, want %v", got, want)
	}
	// Two packets just past the MTU: the knee.
	if got, want := l.WireTime(1025), 0.002+1025/1e6; !approx(got, want, 1e-12) {
		t.Fatalf("WireTime(1025) = %v, want %v", got, want)
	}
	if got, want := l.WireTime(4096), 0.004+4096/1e6; !approx(got, want, 1e-12) {
		t.Fatalf("WireTime(4096) = %v, want %v", got, want)
	}
	// Zero-size message still costs one packet.
	if got := l.WireTime(0); !approx(got, 0.001, 1e-12) {
		t.Fatalf("WireTime(0) = %v, want 0.001", got)
	}
}

func TestSendDeliversToNamedPort(t *testing.T) {
	k := des.New()
	_, a, b := MustNew(k, basicCfg(), EndpointConfig{Name: "sun"}, EndpointConfig{Name: "mpp"})
	var got Message
	k.Spawn("recv", func(p *des.Proc) { got = b.Recv(p, "app1") })
	k.Spawn("send", func(p *des.Proc) { a.Send(p, "app1", "app1", 100, "hello") })
	k.Run()
	if got.Payload != "hello" || got.Words != 100 {
		t.Fatalf("received %+v", got)
	}
	if got.Arrived <= 0 {
		t.Fatalf("Arrived not set: %+v", got)
	}
}

func TestPortsIsolateApplications(t *testing.T) {
	k := des.New()
	_, a, b := MustNew(k, basicCfg(), EndpointConfig{Name: "sun"}, EndpointConfig{Name: "mpp"})
	var got1, got2 Message
	k.Spawn("r1", func(p *des.Proc) { got1 = b.Recv(p, "app1") })
	k.Spawn("r2", func(p *des.Proc) { got2 = b.Recv(p, "app2") })
	k.Spawn("s", func(p *des.Proc) {
		a.Send(p, "app2", "app2", 1, "two")
		a.Send(p, "app1", "app1", 1, "one")
	})
	k.Run()
	if got1.Payload != "one" || got2.Payload != "two" {
		t.Fatalf("port crosstalk: app1 got %v, app2 got %v", got1.Payload, got2.Payload)
	}
}

func TestWireIsFCFSAndExclusive(t *testing.T) {
	// Two senders race; second sender's message waits for the wire.
	cfg := Config{Name: "ether", MTU: 1024, PerPacket: 0, Bandwidth: 100} // 100 words/s
	k := des.New()
	_, a, b := MustNew(k, cfg, EndpointConfig{Name: "sun"}, EndpointConfig{Name: "mpp"})
	var arr1, arr2 float64
	k.Spawn("r", func(p *des.Proc) {
		m1 := b.Recv(p, "x")
		m2 := b.Recv(p, "x")
		arr1, arr2 = m1.Arrived, m2.Arrived
	})
	k.Spawn("s1", func(p *des.Proc) { a.Send(p, "x", "x", 100, 1) }) // 1s wire
	k.Spawn("s2", func(p *des.Proc) { a.Send(p, "x", "x", 100, 2) }) // queued behind s1
	k.Run()
	if !approx(arr1, 1, 1e-9) || !approx(arr2, 2, 1e-9) {
		t.Fatalf("arrivals %v/%v, want 1/2 (FCFS serialization)", arr1, arr2)
	}
}

func TestConversionChargedToHostCPU(t *testing.T) {
	// Send conversion is CPU work; a CPU hog on the host slows it 2×.
	k := des.New()
	host := cpu.NewHost(k, "sun", 1)
	cfg := Config{Name: "ether", MTU: 1024, PerPacket: 0, Bandwidth: 1e9}
	_, a, _ := MustNew(k, cfg,
		EndpointConfig{Name: "sun", Host: host, SendStartup: 1.0},
		EndpointConfig{Name: "mpp"})
	var done float64
	k.Spawn("hog", func(p *des.Proc) { host.Compute(p, 1e9) })
	k.Spawn("s", func(p *des.Proc) {
		a.Send(p, "x", "x", 1, nil)
		done = p.Now()
	})
	k.RunUntil(10)
	// Conversion work 1.0 shared with the hog → 2 seconds.
	if !approx(done, 2, 1e-6) {
		t.Fatalf("send completed at %v, want 2 (CPU-contended conversion)", done)
	}
}

func TestReceiveConversionChargedToReceiver(t *testing.T) {
	k := des.New()
	hostB := cpu.NewHost(k, "sunB", 1)
	cfg := Config{Name: "ether", MTU: 1024, PerPacket: 0, Bandwidth: 1e9}
	_, a, b := MustNew(k, cfg,
		EndpointConfig{Name: "src"},
		EndpointConfig{Name: "dst", Host: hostB, RecvStartup: 3.0})
	var sendDone, recvDone, arrived float64
	k.Spawn("r", func(p *des.Proc) {
		m := b.Recv(p, "x")
		arrived = m.Arrived
		recvDone = p.Now()
	})
	k.Spawn("s", func(p *des.Proc) {
		a.Send(p, "x", "x", 1, nil)
		sendDone = p.Now()
	})
	k.Run()
	if sendDone >= 1 {
		t.Fatalf("sender blocked %v seconds; it must not wait for receive conversion", sendDone)
	}
	if arrived >= 1 {
		t.Fatalf("inbox delivery at %v; should happen at wire completion", arrived)
	}
	// The receiving process pays the 3s conversion in its own context.
	if !approx(recvDone, 3, 1e-6) {
		t.Fatalf("Recv returned at %v, want 3 (receiver-side conversion)", recvDone)
	}
}

func TestLinkAccounting(t *testing.T) {
	cfg := Config{Name: "ether", MTU: 100, PerPacket: 0.5, Bandwidth: 100}
	k := des.New()
	l, a, b := MustNew(k, cfg, EndpointConfig{Name: "a"}, EndpointConfig{Name: "b"})
	k.Spawn("r", func(p *des.Proc) { b.Recv(p, "x"); b.Recv(p, "x") })
	k.Spawn("s", func(p *des.Proc) {
		a.Send(p, "x", "x", 100, nil) // 0.5 + 1 = 1.5s
		a.Send(p, "x", "x", 150, nil) // 1.0 + 1.5 = 2.5s
	})
	k.Run()
	if l.Messages() != 2 {
		t.Fatalf("Messages = %d, want 2", l.Messages())
	}
	if l.WordsMoved() != 250 {
		t.Fatalf("WordsMoved = %d, want 250", l.WordsMoved())
	}
	if got := l.BusyTime(); !approx(got, 4, 1e-9) {
		t.Fatalf("BusyTime = %v, want 4", got)
	}
	if got := l.Utilization(); !approx(got, 1, 1e-9) {
		t.Fatalf("Utilization = %v, want 1", got)
	}
}

func TestConfigValidation(t *testing.T) {
	k := des.New()
	bad := []Config{
		{Name: "m0", MTU: 0, PerPacket: 0, Bandwidth: 1},
		{Name: "bw", MTU: 1, PerPacket: 0, Bandwidth: 0},
		{Name: "pp", MTU: 1, PerPacket: -1, Bandwidth: 1},
		{Name: "nan", MTU: 1, PerPacket: 0, Bandwidth: math.NaN()},
	}
	for _, cfg := range bad {
		if _, _, _, err := New(k, cfg, EndpointConfig{}, EndpointConfig{}); err == nil {
			t.Errorf("config %+v did not error", cfg)
		}
	}
}

func TestNegativeSizePanics(t *testing.T) {
	k := des.New()
	_, a, _ := MustNew(k, basicCfg(), EndpointConfig{Name: "a"}, EndpointConfig{Name: "b"})
	k.Spawn("s", func(p *des.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("negative size did not panic")
			}
		}()
		a.Send(p, "x", "x", -1, nil)
	})
	k.Run()
}

func TestBidirectionalSharingHalfDuplex(t *testing.T) {
	// Transfers in opposite directions contend for the same wire.
	cfg := Config{Name: "ether", MTU: 1024, PerPacket: 0, Bandwidth: 100}
	k := des.New()
	_, a, b := MustNew(k, cfg, EndpointConfig{Name: "a"}, EndpointConfig{Name: "b"})
	var doneA, doneB float64
	k.Spawn("ra", func(p *des.Proc) { a.Recv(p, "x") })
	k.Spawn("rb", func(p *des.Proc) { b.Recv(p, "x") })
	k.Spawn("sa", func(p *des.Proc) {
		a.Send(p, "x", "x", 100, nil)
		doneA = p.Now()
	})
	k.Spawn("sb", func(p *des.Proc) {
		b.Send(p, "x", "x", 100, nil)
		doneB = p.Now()
	})
	k.Run()
	// One of them must wait for the other: completions at 1s and 2s.
	lo, hi := math.Min(doneA, doneB), math.Max(doneA, doneB)
	if !approx(lo, 1, 1e-9) || !approx(hi, 2, 1e-9) {
		t.Fatalf("completions %v/%v, want 1 and 2", doneA, doneB)
	}
}

func TestPreSendHookRunsBeforeWire(t *testing.T) {
	cfg := Config{Name: "ether", MTU: 1024, PerPacket: 0, Bandwidth: 100}
	k := des.New()
	var hookAt float64
	_, a, b := MustNew(k, cfg,
		EndpointConfig{Name: "src", PreSend: func(p *des.Proc, words int) {
			p.Delay(0.5)
			hookAt = p.Now()
		}},
		EndpointConfig{Name: "dst"})
	var arrived float64
	k.Spawn("r", func(p *des.Proc) { arrived = b.Recv(p, "x").Arrived })
	k.Spawn("s", func(p *des.Proc) { a.Send(p, "x", "x", 100, nil) })
	k.Run()
	if !approx(hookAt, 0.5, 1e-9) {
		t.Fatalf("hook ran at %v, want 0.5", hookAt)
	}
	if !approx(arrived, 1.5, 1e-9) {
		t.Fatalf("arrival at %v, want 1.5 (hook + wire)", arrived)
	}
}

func TestForwardHookDelaysDelivery(t *testing.T) {
	cfg := Config{Name: "ether", MTU: 1024, PerPacket: 0, Bandwidth: 100}
	k := des.New()
	_, a, b := MustNew(k, cfg,
		EndpointConfig{Name: "src"},
		EndpointConfig{Name: "dst", Forward: func(words int, deliver func()) {
			k.After(2, deliver) // e.g. an NX hop
		}})
	var arrived float64
	k.Spawn("r", func(p *des.Proc) { arrived = b.Recv(p, "x").Arrived })
	k.Spawn("s", func(p *des.Proc) { a.Send(p, "x", "x", 100, nil) })
	k.Run()
	if !approx(arrived, 3, 1e-9) {
		t.Fatalf("arrival at %v, want 3 (wire 1 + forward 2)", arrived)
	}
}

func TestFaultFuncForcesRetransmit(t *testing.T) {
	// Dropping exactly the first attempt of each message: every send
	// pays one extra wire time plus one PerPacket backoff.
	k := des.New()
	l, a, b := MustNew(k, basicCfg(), EndpointConfig{Name: "sun"}, EndpointConfig{Name: "mpp"})
	attempt := 0
	l.SetFaultFunc(func(words int) bool {
		attempt++
		return attempt == 1
	})
	var arrived float64
	k.Spawn("recv", func(p *des.Proc) { b.Recv(p, "x"); arrived = p.Now() })
	k.Spawn("send", func(p *des.Proc) { a.Send(p, "x", "x", 100, nil) })
	k.Run()
	wire := l.WireTime(100)
	// Two paced transmissions plus the first backoff (= PerPacket).
	want := 2*wire + 0.001
	if !approx(arrived, want, 1e-9) {
		t.Fatalf("arrived at %v, want %v (1 retransmit)", arrived, want)
	}
	if l.Retransmits() != 1 {
		t.Fatalf("Retransmits = %d, want 1", l.Retransmits())
	}
	// Both attempts occupied the wire.
	if got, want := l.BusyTime(), 2*wire; !approx(got, want, 1e-9) {
		t.Fatalf("BusyTime = %v, want %v", got, want)
	}
}

func TestFaultFuncAttemptsAreBounded(t *testing.T) {
	// A wire that always faults must not livelock: the sender gives up
	// retransmitting after maxTxAttempts and delivers anyway (transport
	// gives up on reliability, the simulation stays live).
	k := des.New()
	l, a, b := MustNew(k, basicCfg(), EndpointConfig{Name: "sun"}, EndpointConfig{Name: "mpp"})
	l.SetFaultFunc(func(words int) bool { return true })
	delivered := false
	k.Spawn("recv", func(p *des.Proc) { b.Recv(p, "x"); delivered = true })
	k.Spawn("send", func(p *des.Proc) { a.Send(p, "x", "x", 10, nil) })
	k.Run()
	if !delivered {
		t.Fatal("message never delivered under a permanently faulty wire")
	}
	if l.Retransmits() != maxTxAttempts-1 {
		t.Fatalf("Retransmits = %d, want %d", l.Retransmits(), maxTxAttempts-1)
	}
}

func TestFaultFuncNilIsClean(t *testing.T) {
	k := des.New()
	l, a, b := MustNew(k, basicCfg(), EndpointConfig{Name: "sun"}, EndpointConfig{Name: "mpp"})
	k.Spawn("recv", func(p *des.Proc) { b.Recv(p, "x") })
	k.Spawn("send", func(p *des.Proc) { a.Send(p, "x", "x", 10, nil) })
	k.Run()
	if l.Retransmits() != 0 {
		t.Fatalf("Retransmits = %d on a clean wire", l.Retransmits())
	}
}
