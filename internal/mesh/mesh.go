// Package mesh models an Intel-Paragon-style space-shared MIMD MPP:
// a pool of compute nodes allocated to applications in partitions, an
// internal NX-style message fabric, and a service node that bridges the
// external TCP link to the fabric (the paper's 2-HOPS communication
// mode). The paper treats intra-machine effects (inter-partition mesh
// traffic, gang scheduling) as folded into T_p; the fabric here is a
// shared FCFS resource so that such traffic can be generated and
// measured, but the contention model itself only sees the external link.
package mesh

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"contention/internal/des"
)

// Config describes the machine.
type Config struct {
	Name string
	// Nodes is the number of compute nodes (excluding the service node).
	Nodes int
	// NodeSpeed is per-node compute speed in work units per second.
	NodeSpeed float64
	// NXAlpha is the per-message startup of the internal fabric (s).
	NXAlpha float64
	// NXBeta is the internal fabric bandwidth (words/s).
	NXBeta float64
}

func (c Config) validate() error {
	if c.Nodes <= 0 {
		return fmt.Errorf("mesh %q: node count %d must be positive", c.Name, c.Nodes)
	}
	if c.NodeSpeed <= 0 || math.IsNaN(c.NodeSpeed) {
		return fmt.Errorf("mesh %q: node speed %v must be positive", c.Name, c.NodeSpeed)
	}
	if c.NXAlpha < 0 || c.NXBeta <= 0 {
		return fmt.Errorf("mesh %q: invalid NX parameters α=%v β=%v", c.Name, c.NXAlpha, c.NXBeta)
	}
	return nil
}

// Machine is the MPP.
type Machine struct {
	k      *des.Kernel
	cfg    Config
	free   []int // free node ids, kept sorted
	shares []int // per-node resident gang count (time-shared allocation)
	fabric *des.Semaphore

	allocated   int
	peakInUse   int
	inUse       int
	fabricBusy  float64
	fabricSends int
}

// New builds a machine from cfg.
func New(k *des.Kernel, cfg Config) (*Machine, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	m := &Machine{k: k, cfg: cfg, fabric: des.NewSemaphore(k, 1)}
	m.free = make([]int, cfg.Nodes)
	for i := range m.free {
		m.free[i] = i
	}
	m.shares = make([]int, cfg.Nodes)
	return m, nil
}

// MustNew is New but panics on config errors.
func MustNew(k *des.Kernel, cfg Config) *Machine {
	m, err := New(k, cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// FreeNodes reports the number of currently unallocated nodes.
func (m *Machine) FreeNodes() int { return len(m.free) }

// InUse reports the number of currently allocated nodes.
func (m *Machine) InUse() int { return m.inUse }

// PeakInUse reports the maximum simultaneous allocation seen.
func (m *Machine) PeakInUse() int { return m.peakInUse }

// ErrInsufficientNodes is returned when an allocation cannot be satisfied.
var ErrInsufficientNodes = errors.New("mesh: not enough free nodes")

// Partition is a space-shared allocation of nodes to one application.
// Non-contiguous allocation is permitted, as on the SDSC Paragon
// (Wan et al., the paper's reference [18]).
type Partition struct {
	m        *Machine
	owner    string
	nodes    []int
	shared   bool
	released bool

	busyTime float64
}

// Allocate reserves n nodes for the named application. Allocation is
// first-fit over free node ids (contiguous when possible, non-contiguous
// otherwise); it fails immediately rather than queuing — batch queuing
// belongs to the resource manager above this layer.
func (m *Machine) Allocate(owner string, n int) (*Partition, error) {
	if n <= 0 {
		return nil, fmt.Errorf("mesh: partition size %d must be positive", n)
	}
	if n > len(m.free) {
		return nil, fmt.Errorf("%w: want %d, have %d", ErrInsufficientNodes, n, len(m.free))
	}
	// Prefer a contiguous run of ids if one exists.
	ids := m.contiguousRun(n)
	if ids == nil {
		ids = append([]int(nil), m.free[:n]...)
	}
	m.removeFree(ids)
	for _, id := range ids {
		m.shares[id]++
	}
	m.inUse += len(ids)
	m.allocated++
	if m.inUse > m.peakInUse {
		m.peakInUse = m.inUse
	}
	return &Partition{m: m, owner: owner, nodes: ids}, nil
}

// AllocateShared reserves n time-shared nodes for a gang-scheduled
// application (Feitelson's survey is the paper's reference [7]): nodes
// already hosting fewer than maxShare gangs are eligible, least-loaded
// first. Computation on the partition slows by the gang rotation —
// see Partition.Compute. The contention model folds this into T_p.
func (m *Machine) AllocateShared(owner string, n, maxShare int) (*Partition, error) {
	if n <= 0 {
		return nil, fmt.Errorf("mesh: partition size %d must be positive", n)
	}
	if maxShare < 1 {
		return nil, fmt.Errorf("mesh: max share %d must be ≥ 1", maxShare)
	}
	// Candidate nodes: share < maxShare, least-loaded first, stable by id.
	type cand struct{ id, share int }
	var cands []cand
	for id, sh := range m.shares {
		if sh < maxShare {
			cands = append(cands, cand{id, sh})
		}
	}
	if len(cands) < n {
		return nil, fmt.Errorf("%w: want %d time-shared, have %d", ErrInsufficientNodes, n, len(cands))
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].share != cands[j].share {
			return cands[i].share < cands[j].share
		}
		return cands[i].id < cands[j].id
	})
	ids := make([]int, n)
	for i := 0; i < n; i++ {
		ids[i] = cands[i].id
	}
	sort.Ints(ids)
	for _, id := range ids {
		if m.shares[id] == 0 {
			m.inUse++
		}
		m.shares[id]++
	}
	m.removeFree(ids)
	m.allocated++
	if m.inUse > m.peakInUse {
		m.peakInUse = m.inUse
	}
	return &Partition{m: m, owner: owner, nodes: ids, shared: true}, nil
}

func (m *Machine) contiguousRun(n int) []int {
	runStart := 0
	for i := 1; i <= len(m.free); i++ {
		if i < len(m.free) && m.free[i] == m.free[i-1]+1 {
			continue
		}
		if i-runStart >= n {
			return append([]int(nil), m.free[runStart:runStart+n]...)
		}
		runStart = i
	}
	return nil
}

func (m *Machine) removeFree(ids []int) {
	drop := make(map[int]bool, len(ids))
	for _, id := range ids {
		drop[id] = true
	}
	keep := m.free[:0]
	for _, id := range m.free {
		if !drop[id] {
			keep = append(keep, id)
		}
	}
	m.free = keep
}

// Release returns the partition's nodes to the free pool. Idempotent.
func (p *Partition) Release() {
	if p.released {
		return
	}
	p.released = true
	for _, id := range p.nodes {
		p.m.shares[id]--
		if p.m.shares[id] == 0 {
			p.m.inUse--
			p.m.free = append(p.m.free, id)
		}
	}
	sort.Ints(p.m.free)
}

// Owner reports the owning application name.
func (p *Partition) Owner() string { return p.owner }

// Size reports the number of nodes in the partition.
func (p *Partition) Size() int { return len(p.nodes) }

// Nodes returns a copy of the allocated node ids.
func (p *Partition) Nodes() []int { return append([]int(nil), p.nodes...) }

// BusyTime reports cumulative per-partition compute occupancy.
func (p *Partition) BusyTime() float64 { return p.busyTime }

// Compute runs workPerNode units on every node in parallel (a perfectly
// balanced data-parallel step), blocking proc for its duration. Space
// sharing means no contention with other partitions.
func (p *Partition) Compute(proc *des.Proc, workPerNode float64) {
	if p.released {
		panic("mesh: Compute on released partition")
	}
	if workPerNode < 0 {
		panic(fmt.Sprintf("mesh: negative work %v", workPerNode))
	}
	d := workPerNode / p.m.cfg.NodeSpeed * p.GangFactor()
	p.busyTime += d
	proc.Delay(d)
}

// GangFactor is the time-sharing slowdown of the partition: the maximum
// number of gangs resident on any of its nodes (gang scheduling rotates
// whole partitions, so the slowest node's rotation paces the gang).
// Space-shared partitions always report 1.
func (p *Partition) GangFactor() float64 {
	max := 1
	for _, id := range p.nodes {
		if s := p.m.shares[id]; s > max {
			max = s
		}
	}
	return float64(max)
}

// Shared reports whether the partition was allocated time-shared.
func (p *Partition) Shared() bool { return p.shared }

// ComputeTotal splits totalWork evenly across the partition's nodes and
// runs it as one balanced step.
func (p *Partition) ComputeTotal(proc *des.Proc, totalWork float64) {
	p.Compute(proc, totalWork/float64(len(p.nodes)))
}

// ComputeImbalanced runs a step whose slowest node has workPerNode ×
// (1+imbalance) work — a crude model of load imbalance.
func (p *Partition) ComputeImbalanced(proc *des.Proc, workPerNode, imbalance float64) {
	if imbalance < 0 {
		panic(fmt.Sprintf("mesh: negative imbalance %v", imbalance))
	}
	p.Compute(proc, workPerNode*(1+imbalance))
}

// NXTime returns the dedicated fabric time for one message.
func (m *Machine) NXTime(words int) float64 {
	if words < 0 {
		panic(fmt.Sprintf("mesh: negative message size %d", words))
	}
	return m.cfg.NXAlpha + float64(words)/m.cfg.NXBeta
}

// NXSend occupies the internal fabric for one node-to-node message,
// blocking proc. The fabric is a shared FCFS resource, so heavy
// inter-partition traffic delays other senders (Liu et al.; Tron &
// Plateau — the paper's references [12] and [17]).
func (m *Machine) NXSend(proc *des.Proc, words int) {
	t := m.NXTime(words)
	m.fabric.Acquire(proc)
	proc.Delay(t)
	m.fabricBusy += t
	m.fabricSends++
	m.fabric.Release()
}

// NXHopAsync models the service node forwarding an externally received
// message into the fabric without a blocking process: done fires after
// the (possibly queued) fabric hop.
func (m *Machine) NXHopAsync(words int, done func()) {
	t := m.NXTime(words)
	if m.fabric.TryAcquire() {
		m.k.After(t, func() {
			m.fabricBusy += t
			m.fabricSends++
			m.fabric.Release()
			done()
		})
		return
	}
	// Fabric busy: spawn a lightweight forwarding process that queues
	// FCFS behind current senders.
	m.k.Spawn("svc-fwd", func(p *des.Proc) {
		m.NXSend(p, words)
		done()
	})
}

// FabricBusy reports cumulative fabric occupancy.
func (m *Machine) FabricBusy() float64 { return m.fabricBusy }

// FabricSends reports the number of fabric transfers completed.
func (m *Machine) FabricSends() int { return m.fabricSends }
