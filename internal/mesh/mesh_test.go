package mesh

import (
	"errors"
	"math"
	"testing"

	"contention/internal/des"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func testCfg() Config {
	return Config{Name: "paragon", Nodes: 16, NodeSpeed: 2, NXAlpha: 0.001, NXBeta: 1e6}
}

func TestAllocateAndRelease(t *testing.T) {
	k := des.New()
	m := MustNew(k, testCfg())
	p1, err := m.Allocate("a", 4)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Size() != 4 || m.FreeNodes() != 12 || m.InUse() != 4 {
		t.Fatalf("after alloc: size=%d free=%d inUse=%d", p1.Size(), m.FreeNodes(), m.InUse())
	}
	p1.Release()
	p1.Release() // idempotent
	if m.FreeNodes() != 16 || m.InUse() != 0 {
		t.Fatalf("after release: free=%d inUse=%d", m.FreeNodes(), m.InUse())
	}
}

func TestAllocatePrefersContiguous(t *testing.T) {
	k := des.New()
	m := MustNew(k, testCfg())
	a, _ := m.Allocate("a", 4) // nodes 0-3
	b, _ := m.Allocate("b", 4) // nodes 4-7
	a.Release()                // free: 0-3, 8-15
	c, err := m.Allocate("c", 8)
	if err != nil {
		t.Fatal(err)
	}
	nodes := c.Nodes()
	for i := 1; i < len(nodes); i++ {
		if nodes[i] != nodes[i-1]+1 {
			t.Fatalf("allocation %v not contiguous though 8-15 was available", nodes)
		}
	}
	_ = b
}

func TestAllocateFallsBackToNonContiguous(t *testing.T) {
	k := des.New()
	m := MustNew(k, testCfg())
	a, _ := m.Allocate("a", 6) // 0-5
	b, _ := m.Allocate("b", 6) // 6-11
	a.Release()                // free: 0-5, 12-15 (max contiguous run 6)
	c, err := m.Allocate("c", 8)
	if err != nil {
		t.Fatalf("non-contiguous allocation failed: %v", err)
	}
	if c.Size() != 8 {
		t.Fatalf("partition size %d, want 8", c.Size())
	}
	_ = b
}

func TestAllocateErrors(t *testing.T) {
	k := des.New()
	m := MustNew(k, testCfg())
	if _, err := m.Allocate("x", 0); err == nil {
		t.Fatal("size-0 allocation did not error")
	}
	if _, err := m.Allocate("x", 17); !errors.Is(err, ErrInsufficientNodes) {
		t.Fatalf("oversize allocation error = %v, want ErrInsufficientNodes", err)
	}
}

func TestPeakInUse(t *testing.T) {
	k := des.New()
	m := MustNew(k, testCfg())
	a, _ := m.Allocate("a", 8)
	b, _ := m.Allocate("b", 8)
	a.Release()
	b.Release()
	if m.PeakInUse() != 16 {
		t.Fatalf("PeakInUse = %d, want 16", m.PeakInUse())
	}
}

func TestComputeIsSpaceShared(t *testing.T) {
	// Two partitions computing concurrently do not slow each other.
	k := des.New()
	m := MustNew(k, testCfg()) // speed 2
	var doneA, doneB float64
	pa, _ := m.Allocate("a", 4)
	pb, _ := m.Allocate("b", 4)
	k.Spawn("a", func(p *des.Proc) {
		pa.Compute(p, 10) // 10 work @ speed 2 = 5s
		doneA = p.Now()
	})
	k.Spawn("b", func(p *des.Proc) {
		pb.Compute(p, 10)
		doneB = p.Now()
	})
	k.Run()
	if !approx(doneA, 5, 1e-9) || !approx(doneB, 5, 1e-9) {
		t.Fatalf("done at %v/%v, want 5/5 (no cross-partition slowdown)", doneA, doneB)
	}
	if !approx(pa.BusyTime(), 5, 1e-9) {
		t.Fatalf("BusyTime = %v, want 5", pa.BusyTime())
	}
}

func TestComputeTotalSplitsAcrossNodes(t *testing.T) {
	k := des.New()
	m := MustNew(k, testCfg())
	pa, _ := m.Allocate("a", 4)
	var done float64
	k.Spawn("a", func(p *des.Proc) {
		pa.ComputeTotal(p, 40) // 10/node @ speed 2 = 5s
		done = p.Now()
	})
	k.Run()
	if !approx(done, 5, 1e-9) {
		t.Fatalf("done at %v, want 5", done)
	}
}

func TestComputeImbalanced(t *testing.T) {
	k := des.New()
	m := MustNew(k, testCfg())
	pa, _ := m.Allocate("a", 4)
	var done float64
	k.Spawn("a", func(p *des.Proc) {
		pa.ComputeImbalanced(p, 10, 0.2) // slowest node: 12 work @ 2 = 6s
		done = p.Now()
	})
	k.Run()
	if !approx(done, 6, 1e-9) {
		t.Fatalf("done at %v, want 6", done)
	}
}

func TestComputeOnReleasedPartitionPanics(t *testing.T) {
	k := des.New()
	m := MustNew(k, testCfg())
	pa, _ := m.Allocate("a", 2)
	pa.Release()
	k.Spawn("a", func(p *des.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("Compute on released partition did not panic")
			}
		}()
		pa.Compute(p, 1)
	})
	k.Run()
}

func TestNXTimeLinear(t *testing.T) {
	k := des.New()
	m := MustNew(k, testCfg())
	if got, want := m.NXTime(1000), 0.001+1000/1e6; !approx(got, want, 1e-12) {
		t.Fatalf("NXTime = %v, want %v", got, want)
	}
}

func TestNXFabricIsFCFS(t *testing.T) {
	cfg := testCfg()
	cfg.NXAlpha = 0
	cfg.NXBeta = 100 // 100 words/s: 100-word msg = 1s
	k := des.New()
	m := MustNew(k, cfg)
	var done1, done2 float64
	k.Spawn("s1", func(p *des.Proc) {
		m.NXSend(p, 100)
		done1 = p.Now()
	})
	k.Spawn("s2", func(p *des.Proc) {
		m.NXSend(p, 100)
		done2 = p.Now()
	})
	k.Run()
	if !approx(done1, 1, 1e-9) || !approx(done2, 2, 1e-9) {
		t.Fatalf("NX sends finished at %v/%v, want 1/2", done1, done2)
	}
	if !approx(m.FabricBusy(), 2, 1e-9) || m.FabricSends() != 2 {
		t.Fatalf("fabric accounting busy=%v sends=%d", m.FabricBusy(), m.FabricSends())
	}
}

func TestNXHopAsync(t *testing.T) {
	cfg := testCfg()
	cfg.NXAlpha = 0
	cfg.NXBeta = 100
	k := des.New()
	m := MustNew(k, cfg)
	var at float64
	m.NXHopAsync(100, func() { at = k.Now() })
	k.Run()
	if !approx(at, 1, 1e-9) {
		t.Fatalf("hop completed at %v, want 1", at)
	}
}

func TestNXHopAsyncQueuesBehindBusyFabric(t *testing.T) {
	cfg := testCfg()
	cfg.NXAlpha = 0
	cfg.NXBeta = 100
	k := des.New()
	m := MustNew(k, cfg)
	var hopAt float64
	k.Spawn("s", func(p *des.Proc) { m.NXSend(p, 200) }) // busy until t=2
	k.Spawn("trigger", func(p *des.Proc) {
		p.Delay(0.5)
		m.NXHopAsync(100, func() { hopAt = k.Now() })
	})
	k.Run()
	if !approx(hopAt, 3, 1e-9) {
		t.Fatalf("queued hop completed at %v, want 3", hopAt)
	}
}

func TestConfigValidation(t *testing.T) {
	k := des.New()
	bad := []Config{
		{Name: "n", Nodes: 0, NodeSpeed: 1, NXBeta: 1},
		{Name: "s", Nodes: 1, NodeSpeed: 0, NXBeta: 1},
		{Name: "b", Nodes: 1, NodeSpeed: 1, NXBeta: 0},
		{Name: "a", Nodes: 1, NodeSpeed: 1, NXAlpha: -1, NXBeta: 1},
	}
	for _, cfg := range bad {
		if _, err := New(k, cfg); err == nil {
			t.Errorf("config %+v did not error", cfg)
		}
	}
}

func TestAllocateSharedGangSlowdown(t *testing.T) {
	k := des.New()
	m := MustNew(k, testCfg()) // 16 nodes, speed 2
	// Two gangs of 16 share every node: each computes at half speed.
	g1, err := m.AllocateShared("g1", 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := m.AllocateShared("g2", 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g1.GangFactor() != 2 || g2.GangFactor() != 2 {
		t.Fatalf("gang factors %v/%v, want 2/2", g1.GangFactor(), g2.GangFactor())
	}
	var done float64
	k.Spawn("a", func(p *des.Proc) {
		g1.Compute(p, 10) // 10 work @ speed 2 × gang 2 = 10s
		done = p.Now()
	})
	k.Run()
	if !approx(done, 10, 1e-9) {
		t.Fatalf("gang-shared compute took %v, want 10", done)
	}
	g1.Release()
	// After the release, g2 runs alone at full speed.
	if g2.GangFactor() != 1 {
		t.Fatalf("gang factor %v after release, want 1", g2.GangFactor())
	}
	g2.Release()
	if m.InUse() != 0 || m.FreeNodes() != 16 {
		t.Fatalf("nodes leaked: inUse=%d free=%d", m.InUse(), m.FreeNodes())
	}
}

func TestAllocateSharedPrefersLeastLoaded(t *testing.T) {
	k := des.New()
	m := MustNew(k, testCfg())
	a, _ := m.AllocateShared("a", 8, 2) // nodes 0-7
	b, err := m.AllocateShared("b", 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	// b must take the 8 empty nodes, not stack on a's.
	for _, id := range b.Nodes() {
		for _, aid := range a.Nodes() {
			if id == aid {
				t.Fatalf("b stacked on a's node %d though empty nodes existed", id)
			}
		}
	}
	if b.GangFactor() != 1 {
		t.Fatalf("gang factor %v, want 1 (no overlap)", b.GangFactor())
	}
}

func TestAllocateSharedRespectsMaxShare(t *testing.T) {
	k := des.New()
	m := MustNew(k, testCfg())
	for i := 0; i < 2; i++ {
		if _, err := m.AllocateShared("g", 16, 2); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.AllocateShared("g3", 16, 2); !errors.Is(err, ErrInsufficientNodes) {
		t.Fatalf("third full-machine gang: err = %v, want ErrInsufficientNodes", err)
	}
	// A higher share cap admits it.
	if _, err := m.AllocateShared("g3", 16, 3); err != nil {
		t.Fatal(err)
	}
}

func TestAllocateSharedValidation(t *testing.T) {
	k := des.New()
	m := MustNew(k, testCfg())
	if _, err := m.AllocateShared("x", 0, 2); err == nil {
		t.Fatal("size 0 accepted")
	}
	if _, err := m.AllocateShared("x", 1, 0); err == nil {
		t.Fatal("maxShare 0 accepted")
	}
}

func TestSpaceSharedAllocateSkipsTimeSharedNodes(t *testing.T) {
	k := des.New()
	m := MustNew(k, testCfg())
	g, err := m.AllocateShared("gang", 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Only 6 empty nodes remain for exclusive allocation.
	if _, err := m.Allocate("excl", 7); !errors.Is(err, ErrInsufficientNodes) {
		t.Fatalf("err = %v, want ErrInsufficientNodes", err)
	}
	excl, err := m.Allocate("excl", 6)
	if err != nil {
		t.Fatal(err)
	}
	if excl.GangFactor() != 1 || excl.Shared() {
		t.Fatalf("exclusive partition looks shared: factor %v", excl.GangFactor())
	}
	_ = g
}
