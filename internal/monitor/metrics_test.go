package monitor

import (
	"errors"
	"math"
	"testing"

	"contention/internal/obs"
)

// TestSampleCountersMove checks that the sampling path accounts for
// every scheduled sample: accepted ones land in the window, a loss
// function's casualties are counted as dropped, and a non-finite
// counter inside the estimation window is counted as rejected.
func TestSampleCountersMove(t *testing.T) {
	obs.SetEnabled(true)
	t.Cleanup(func() { obs.SetEnabled(false) })

	k, sp := newSP(t)
	m, err := New(sp, 0.1, 100)
	if err != nil {
		t.Fatal(err)
	}
	drop := true
	m.SetLossFunc(func() bool {
		drop = !drop
		return drop
	})
	a0, d0, r0 := mAccepted.Value(), mDropped.Value(), mRejected.Value()
	m.Start()
	k.RunUntil(2)
	if d := mAccepted.Value() - a0; d < 2 {
		t.Fatalf("accepted counter moved by %d, want ≥ 2", d)
	}
	if d := mDropped.Value() - d0; int(d) != m.Dropped() || d < 1 {
		t.Fatalf("dropped counter moved by %d, want %d (≥ 1)", d, m.Dropped())
	}

	m.samples[0].HostBusy = math.NaN()
	if _, err := m.EstimateWindow(100); !errors.Is(err, ErrNonFiniteSample) {
		t.Fatalf("error = %v, want ErrNonFiniteSample", err)
	}
	if d := mRejected.Value() - r0; int(d) != m.Rejected() || d != 1 {
		t.Fatalf("rejected counter moved by %d, want %d (= 1)", d, m.Rejected())
	}
}
