// Package monitor estimates the model's application-dependent workload
// parameters from run-time observation of the platform, in the spirit
// of the Network Weather Service line of work the paper sits alongside
// (§2: the parameters "are determined at run time [and] should be easy
// to obtain or calculate"; they "may be provided by the users or
// obtained from the resource management system"). When neither users
// nor the resource manager supply descriptors, a monitor can observe
// CPU residency and wire occupancy and synthesize an equivalent
// contender set for the slowdown formulas.
package monitor

import (
	"errors"
	"fmt"
	"math"

	"contention/internal/core"
	"contention/internal/des"
	"contention/internal/obs"
	"contention/internal/platform"
)

// Sampling-path telemetry: the gap-tolerance (loss) and non-finite
// sample paths used to swallow their casualties silently; now every
// sample is accounted for as accepted, dropped, or rejected.
var (
	mAccepted = obs.NewCounter(obs.MetricMonitorAccepted,
		"platform samples recorded into monitor windows")
	mDropped = obs.NewCounter(obs.MetricMonitorDropped,
		"platform samples discarded by the installed loss function")
	mRejected = obs.NewCounter(obs.MetricMonitorRejected,
		"non-finite platform samples rejected during estimation")
)

// Sample is one reading of the platform's cumulative counters.
type Sample struct {
	At           float64
	HostBusy     float64
	HostLoadInt  float64
	LinkBusy     float64
	LinkMessages int
	LinkWords    int
}

// Monitor periodically samples a Sun/Paragon platform.
type Monitor struct {
	sp       *platform.SunParagon
	interval float64
	samples  []Sample
	maxKeep  int

	loss     func() bool
	dropped  int
	rejected int
}

// New creates a monitor sampling every interval seconds, keeping at
// most maxKeep samples (older ones are dropped).
func New(sp *platform.SunParagon, interval float64, maxKeep int) (*Monitor, error) {
	if interval <= 0 || math.IsNaN(interval) {
		return nil, fmt.Errorf("monitor: interval %v must be positive", interval)
	}
	if maxKeep < 2 {
		return nil, fmt.Errorf("monitor: maxKeep %d must be ≥ 2", maxKeep)
	}
	return &Monitor{sp: sp, interval: interval, maxKeep: maxKeep}, nil
}

// Start spawns the sampling process; it runs until the simulation ends.
func (m *Monitor) Start() {
	m.record() // t=0 baseline
	m.sp.K.Spawn("monitor", func(p *des.Proc) {
		for {
			p.Delay(m.interval)
			m.record()
		}
	})
}

// SetLossFunc installs a sample-loss decision: when f returns true the
// scheduled sample is discarded, leaving a gap in the window. Because the
// counters are cumulative, estimates over gappy windows stay exact for
// utilizations and averages — the monitor degrades, it does not lie.
// Installed by the fault-injection subsystem; nil means lossless.
func (m *Monitor) SetLossFunc(f func() bool) { m.loss = f }

// Dropped reports the number of samples lost to the loss function.
func (m *Monitor) Dropped() int { return m.dropped }

// Rejected reports the number of non-finite samples rejected during
// estimation (each rejection also surfaced as ErrNonFiniteSample).
func (m *Monitor) Rejected() int { return m.rejected }

// record takes one sample immediately.
func (m *Monitor) record() {
	if m.loss != nil && m.loss() {
		m.dropped++
		mDropped.Inc()
		return
	}
	mAccepted.Inc()
	s := Sample{
		At:           m.sp.K.Now(),
		HostBusy:     m.sp.Host.BusyTime(),
		HostLoadInt:  m.sp.Host.LoadIntegral(),
		LinkBusy:     m.sp.Link.BusyTime(),
		LinkMessages: m.sp.Link.Messages(),
		LinkWords:    m.sp.Link.WordsMoved(),
	}
	m.samples = append(m.samples, s)
	if len(m.samples) > m.maxKeep {
		m.samples = m.samples[len(m.samples)-m.maxKeep:]
	}
}

// Samples returns a copy of the retained samples.
func (m *Monitor) Samples() []Sample {
	return append([]Sample(nil), m.samples...)
}

// Estimate summarizes the workload over an observation window.
type Estimate struct {
	// Window is the covered time span.
	Window float64
	// HostUtilization is the CPU busy fraction.
	HostUtilization float64
	// AvgHostJobs is the time-averaged number of CPU-resident jobs.
	AvgHostJobs float64
	// LinkUtilization is the wire busy fraction.
	LinkUtilization float64
	// MeanMsgWords is the average observed message size.
	MeanMsgWords int
	// MessageRate is messages per second on the wire.
	MessageRate float64
	// Apps is the estimated number of active applications.
	Apps int
	// CommFraction is the estimated per-application communication
	// fraction, assuming a homogeneous population.
	CommFraction float64
}

// ErrInsufficientData is returned when fewer than two samples cover the
// requested window.
var ErrInsufficientData = errors.New("monitor: insufficient samples")

// ErrInvalidWindow is returned for a non-positive or NaN window.
var ErrInvalidWindow = errors.New("monitor: invalid window")

// ErrNonFiniteSample is returned when a sample inside the estimation
// window carries a NaN or infinite counter — a corrupted reading must
// surface as an error, not as NaN silently propagating into slowdowns.
var ErrNonFiniteSample = errors.New("monitor: non-finite sample counter")

// check reports which counter of the sample, if any, is not finite.
func (s Sample) check() error {
	for _, c := range []struct {
		name string
		v    float64
	}{
		{"At", s.At},
		{"HostBusy", s.HostBusy},
		{"HostLoadInt", s.HostLoadInt},
		{"LinkBusy", s.LinkBusy},
	} {
		if math.IsNaN(c.v) || math.IsInf(c.v, 0) {
			return fmt.Errorf("%w: %s = %v at t=%v", ErrNonFiniteSample, c.name, c.v, s.At)
		}
	}
	return nil
}

// EstimateWindow derives workload estimates from the samples within the
// last `window` seconds. A window longer than the retained history falls
// back to the oldest retained sample; gaps from dropped samples are
// harmless because the counters are cumulative.
func (m *Monitor) EstimateWindow(window float64) (Estimate, error) {
	if window <= 0 || math.IsNaN(window) {
		return Estimate{}, fmt.Errorf("%w: %v", ErrInvalidWindow, window)
	}
	if len(m.samples) < 2 {
		return Estimate{}, ErrInsufficientData
	}
	last := m.samples[len(m.samples)-1]
	cutoff := last.At - window
	first := m.samples[0]
	for _, s := range m.samples {
		if s.At >= cutoff {
			first = s
			break
		}
	}
	if err := first.check(); err != nil {
		m.rejected++
		mRejected.Inc()
		return Estimate{}, err
	}
	if err := last.check(); err != nil {
		m.rejected++
		mRejected.Inc()
		return Estimate{}, err
	}
	dt := last.At - first.At
	if dt <= 0 {
		return Estimate{}, ErrInsufficientData
	}
	est := Estimate{Window: dt}
	est.HostUtilization = clamp01((last.HostBusy - first.HostBusy) / dt)
	est.AvgHostJobs = (last.HostLoadInt - first.HostLoadInt) / dt
	est.LinkUtilization = clamp01((last.LinkBusy - first.LinkBusy) / dt)
	msgs := last.LinkMessages - first.LinkMessages
	words := last.LinkWords - first.LinkWords
	if msgs > 0 {
		est.MeanMsgWords = words / msgs
		est.MessageRate = float64(msgs) / dt
	}
	// An application is either CPU-resident or on the wire; the sum of
	// the two occupancies estimates the active population.
	active := est.AvgHostJobs + est.LinkUtilization
	est.Apps = int(math.Round(active))
	if est.Apps < 0 {
		est.Apps = 0
	}
	if active > 0 {
		est.CommFraction = clamp01(est.LinkUtilization / active)
	}
	return est, nil
}

// Contenders synthesizes an equivalent homogeneous contender set from
// the estimate, excluding the observer's own activity by subtracting
// selfJobs CPU-resident applications (pass 0 when observing from
// outside, 1 when the measuring application itself computes on the
// host).
func (e Estimate) Contenders(selfJobs int) []core.Contender {
	n := e.Apps - selfJobs
	if n <= 0 {
		return nil
	}
	words := e.MeanMsgWords
	if words < 1 {
		words = 1
	}
	out := make([]core.Contender, n)
	for i := range out {
		out[i] = core.Contender{CommFraction: e.CommFraction, MsgWords: words}
	}
	return out
}

func clamp01(x float64) float64 {
	if math.IsNaN(x) || x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
