package monitor

import (
	"errors"
	"math"
	"testing"

	"contention/internal/core"
	"contention/internal/des"
	"contention/internal/platform"
	"contention/internal/workload"
)

func newSP(t *testing.T) (*des.Kernel, *platform.SunParagon) {
	t.Helper()
	k := des.New()
	return k, platform.MustNewSunParagon(k, platform.DefaultParagonParams(platform.OneHop))
}

func TestNewValidation(t *testing.T) {
	_, sp := newSP(t)
	if _, err := New(sp, 0, 10); err == nil {
		t.Fatal("zero interval accepted")
	}
	if _, err := New(sp, 0.1, 1); err == nil {
		t.Fatal("maxKeep 1 accepted")
	}
}

func TestEstimateRequiresSamples(t *testing.T) {
	_, sp := newSP(t)
	m, err := New(sp, 0.1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.EstimateWindow(1); !errors.Is(err, ErrInsufficientData) {
		t.Fatalf("error = %v, want ErrInsufficientData", err)
	}
}

func TestEstimateIdleSystem(t *testing.T) {
	k, sp := newSP(t)
	m, err := New(sp, 0.1, 100)
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	k.RunUntil(5)
	est, err := m.EstimateWindow(5)
	if err != nil {
		t.Fatal(err)
	}
	if est.HostUtilization != 0 || est.LinkUtilization != 0 || est.Apps != 0 {
		t.Fatalf("idle estimate %+v", est)
	}
	if len(est.Contenders(0)) != 0 {
		t.Fatal("idle system produced contenders")
	}
}

func TestEstimateCPUBoundHogs(t *testing.T) {
	k, sp := newSP(t)
	workload.SpawnCPUHog(sp, "h1")
	workload.SpawnCPUHog(sp, "h2")
	m, err := New(sp, 0.1, 1000)
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	k.RunUntil(10)
	est, err := m.EstimateWindow(10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.HostUtilization-1) > 0.01 {
		t.Fatalf("host utilization %v, want ≈ 1", est.HostUtilization)
	}
	if math.Abs(est.AvgHostJobs-2) > 0.05 {
		t.Fatalf("avg jobs %v, want ≈ 2", est.AvgHostJobs)
	}
	if est.Apps != 2 {
		t.Fatalf("apps %d, want 2", est.Apps)
	}
	cs := est.Contenders(0)
	if len(cs) != 2 {
		t.Fatalf("contenders %v", cs)
	}
	if cs[0].CommFraction > 0.05 {
		t.Fatalf("CPU hogs estimated with comm fraction %v", cs[0].CommFraction)
	}
}

func TestEstimateObservesMessageSize(t *testing.T) {
	k, sp := newSP(t)
	if _, err := workload.SpawnAlternator(sp, workload.AlternatorSpec{
		Name: "alt", CommFraction: 0.5, MsgWords: 300, Period: 0.1,
	}); err != nil {
		t.Fatal(err)
	}
	m, err := New(sp, 0.1, 1000)
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	k.RunUntil(20)
	est, err := m.EstimateWindow(20)
	if err != nil {
		t.Fatal(err)
	}
	if est.MeanMsgWords != 300 {
		t.Fatalf("mean message size %d, want 300", est.MeanMsgWords)
	}
	if est.MessageRate <= 0 {
		t.Fatal("zero message rate with an active alternator")
	}
	if est.Apps != 1 {
		t.Fatalf("apps %d, want 1", est.Apps)
	}
}

// The headline property: a slowdown computed from the ESTIMATED
// contender set tracks the slowdown computed from the true descriptors.
func TestEstimatedContendersPredictSimilarSlowdown(t *testing.T) {
	k, sp := newSP(t)
	true1 := workload.AlternatorSpec{Name: "a", CommFraction: 0.25, MsgWords: 200, Period: 0.1, Phase: 0.017}
	true2 := workload.AlternatorSpec{Name: "b", CommFraction: 0.76, MsgWords: 200, Period: 0.1, Phase: 0.031}
	for _, s := range []workload.AlternatorSpec{true1, true2} {
		if _, err := workload.SpawnAlternator(sp, s); err != nil {
			t.Fatal(err)
		}
	}
	m, err := New(sp, 0.05, 10000)
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	k.RunUntil(30)
	est, err := m.EstimateWindow(30)
	if err != nil {
		t.Fatal(err)
	}
	if est.Apps != 2 {
		t.Fatalf("apps %d, want 2 (estimate %+v)", est.Apps, est)
	}
	tables := core.DelayTables{
		CompOnComm: []float64{0.4, 0.8},
		CommOnComm: []float64{0.3, 0.6},
		CommOnComp: map[int][]float64{200: {0.5, 1.0}},
	}
	trueCS := []core.Contender{
		{CommFraction: 0.25, MsgWords: 200},
		{CommFraction: 0.76, MsgWords: 200},
	}
	wantComm, err := core.CommSlowdown(trueCS, tables)
	if err != nil {
		t.Fatal(err)
	}
	gotComm, err := core.CommSlowdown(est.Contenders(0), tables)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gotComm-wantComm)/wantComm > 0.15 {
		t.Fatalf("estimated slowdown %v vs true %v (>15%%)", gotComm, wantComm)
	}
}

func TestSamplesAreBounded(t *testing.T) {
	k, sp := newSP(t)
	m, err := New(sp, 0.01, 10)
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	k.RunUntil(5)
	if n := len(m.Samples()); n > 10 {
		t.Fatalf("kept %d samples, cap is 10", n)
	}
}

func TestContendersExcludesSelf(t *testing.T) {
	e := Estimate{Apps: 3, CommFraction: 0.4, MeanMsgWords: 100}
	if got := len(e.Contenders(1)); got != 2 {
		t.Fatalf("Contenders(1) = %d, want 2", got)
	}
	if got := len(e.Contenders(5)); got != 0 {
		t.Fatalf("Contenders(5) = %d, want 0", got)
	}
}

func TestEstimateWindowValidation(t *testing.T) {
	k, sp := newSP(t)
	m, err := New(sp, 0.1, 100)
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	k.RunUntil(1)
	for _, w := range []float64{0, -1, math.NaN()} {
		if _, err := m.EstimateWindow(w); !errors.Is(err, ErrInvalidWindow) {
			t.Fatalf("window %v: err = %v, want ErrInvalidWindow", w, err)
		}
	}
}

func TestEstimateWindowLargerThanHistory(t *testing.T) {
	// maxKeep 5 at 0.1s spacing retains ~0.4s; asking for a 100s window
	// must fall back to the oldest retained sample, not fail.
	k, sp := newSP(t)
	m, err := New(sp, 0.1, 5)
	if err != nil {
		t.Fatal(err)
	}
	workload.SpawnCPUHog(sp, "hog")
	m.Start()
	k.RunUntil(3)
	est, err := m.EstimateWindow(100)
	if err != nil {
		t.Fatal(err)
	}
	if est.Window <= 0 || est.Window > 0.5 {
		t.Fatalf("window %v, want the ~0.4s of retained history", est.Window)
	}
	if est.HostUtilization < 0.99 {
		t.Fatalf("utilization %v under a CPU hog", est.HostUtilization)
	}
}

func TestEstimateWindowZeroSpan(t *testing.T) {
	// Two samples at the same instant: zero span is insufficient data,
	// not a division by zero.
	k, sp := newSP(t)
	m, err := New(sp, 0.1, 100)
	if err != nil {
		t.Fatal(err)
	}
	m.record()
	m.record()
	_ = k
	if _, err := m.EstimateWindow(1); !errors.Is(err, ErrInsufficientData) {
		t.Fatalf("err = %v, want ErrInsufficientData on zero span", err)
	}
}

func TestLossFuncDropsSamplesButEstimatesSurvive(t *testing.T) {
	k, sp := newSP(t)
	m, err := New(sp, 0.1, 1000)
	if err != nil {
		t.Fatal(err)
	}
	workload.SpawnCPUHog(sp, "hog")
	n := 0
	m.SetLossFunc(func() bool {
		n++
		return n%2 == 0 // every other sample lost
	})
	m.Start()
	k.RunUntil(5)
	if m.Dropped() == 0 {
		t.Fatal("no samples dropped")
	}
	if len(m.Samples())+m.Dropped() != n {
		t.Fatalf("samples %d + dropped %d != attempts %d", len(m.Samples()), m.Dropped(), n)
	}
	// Cumulative counters keep gappy-window estimates exact.
	est, err := m.EstimateWindow(4)
	if err != nil {
		t.Fatal(err)
	}
	if est.HostUtilization < 0.99 {
		t.Fatalf("utilization %v under a CPU hog with sample loss", est.HostUtilization)
	}
}

func TestEstimateRejectsNonFiniteSamples(t *testing.T) {
	_, sp := newSP(t)
	m, err := New(sp, 0.1, 100)
	if err != nil {
		t.Fatal(err)
	}
	finite := Sample{At: 1, HostBusy: 0.5, HostLoadInt: 0.5, LinkBusy: 0.2}
	corrupt := []Sample{
		{At: 0, HostBusy: math.NaN()},
		{At: 0, HostLoadInt: math.Inf(1)},
		{At: 0, LinkBusy: math.Inf(-1)},
	}
	for i, bad := range corrupt {
		m.samples = []Sample{bad, finite}
		if _, err := m.EstimateWindow(10); !errors.Is(err, ErrNonFiniteSample) {
			t.Errorf("case %d (corrupt first): error = %v, want ErrNonFiniteSample", i, err)
		}
		badLast := bad
		badLast.At = 2
		m.samples = []Sample{{At: 0}, badLast}
		if _, err := m.EstimateWindow(10); !errors.Is(err, ErrNonFiniteSample) {
			t.Errorf("case %d (corrupt last): error = %v, want ErrNonFiniteSample", i, err)
		}
	}
	// A NaN timestamp never matches the window cutoff; the final sample's
	// own check must still catch it.
	m.samples = []Sample{{At: 0}, {At: math.NaN()}}
	if _, err := m.EstimateWindow(10); !errors.Is(err, ErrNonFiniteSample) {
		t.Errorf("NaN timestamp: error = %v, want ErrNonFiniteSample", err)
	}
}

func TestClamp01NaNSafe(t *testing.T) {
	if got := clamp01(math.NaN()); got != 0 {
		t.Fatalf("clamp01(NaN) = %v, want 0", got)
	}
	if got := clamp01(math.Inf(1)); got != 1 {
		t.Fatalf("clamp01(+Inf) = %v, want 1", got)
	}
	if got := clamp01(math.Inf(-1)); got != 0 {
		t.Fatalf("clamp01(-Inf) = %v, want 0", got)
	}
}
