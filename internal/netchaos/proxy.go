// Package netchaos is an in-process TCP chaos proxy: it sits between a
// router and one remote replica and does to the byte stream what a bad
// network does — added latency, mid-stream resets, stalls, and full
// partitions — under explicit, instantaneous control. Paired with
// faults.PlanNetChaos it gives chaos gates a deterministic network: the
// plan is a pure function of one seed, the proxy applies each event the
// moment the driver replays it, and nothing in the fault path depends
// on kernel packet timing or external tooling (tc, iptables), so the
// same gate runs identically on a laptop and in CI.
package netchaos

import (
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// copyBuf is the relay chunk size: small enough that latency and stall
// shaping get a control point at least once per few KB, large enough
// not to dominate CPU.
const copyBuf = 8 << 10

// Proxy is one shaped link. Create with New, point clients at Addr,
// drive faults with SetLatency / Stall / Reset / Partition / Heal.
// All controls are goroutine-safe and take effect immediately.
type Proxy struct {
	target string
	ln     net.Listener

	latency    atomic.Int64 // one-way added delay, nanoseconds
	stallUntil atomic.Int64 // unix nanos; byte flow frozen until then
	parted     atomic.Bool

	mu     sync.Mutex
	conns  map[*conn]struct{}
	closed bool

	wg sync.WaitGroup
}

// conn is one proxied client⇄target connection pair.
type conn struct {
	client, upstream *net.TCPConn
	once             sync.Once
}

// sever tears both halves down. rst controls whether the client side
// goes with a RST (SetLinger(0)) instead of a graceful FIN — resets and
// partitions should look like failures, not like the server finishing.
func (c *conn) sever(rst bool) {
	c.once.Do(func() {
		if rst {
			_ = c.client.SetLinger(0)
			_ = c.upstream.SetLinger(0)
		}
		_ = c.client.Close()
		_ = c.upstream.Close()
	})
}

// New starts a proxy for target (host:port) listening on a fresh
// loopback port.
func New(target string) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{target: target, ln: ln, conns: make(map[*conn]struct{})}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr is the proxy's listen address; point the router here instead of
// at the real replica.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Target is the address the proxy forwards to.
func (p *Proxy) Target() string { return p.target }

// SetLatency sets the added one-way delay applied to each relayed
// chunk (0 clears).
func (p *Proxy) SetLatency(d time.Duration) { p.latency.Store(int64(d)) }

// Stall freezes byte flow in both directions for d without closing
// anything: connections stay open, requests hang. Extends (never
// shortens) any stall already in effect.
func (p *Proxy) Stall(d time.Duration) {
	until := time.Now().Add(d).UnixNano()
	for {
		cur := p.stallUntil.Load()
		if cur >= until || p.stallUntil.CompareAndSwap(cur, until) {
			return
		}
	}
}

// Reset RSTs every connection currently open through the proxy. New
// connections still succeed — this is a transient network burp, not an
// outage.
func (p *Proxy) Reset() {
	p.mu.Lock()
	conns := make([]*conn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	for _, c := range conns {
		c.sever(true)
	}
}

// Partition cuts the link: existing connections are severed with RST
// and new ones are refused until Heal.
func (p *Proxy) Partition() {
	p.parted.Store(true)
	p.Reset()
}

// Heal ends a partition.
func (p *Proxy) Heal() { p.parted.Store(false) }

// Partitioned reports whether the link is currently cut.
func (p *Proxy) Partitioned() bool { return p.parted.Load() }

// Close stops the listener and severs everything. The proxy cannot be
// reused.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	err := p.ln.Close()
	p.Reset()
	p.wg.Wait()
	return err
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		cl, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		client := cl.(*net.TCPConn)
		if p.parted.Load() {
			// Refuse as a partition does: an immediate RST, not a
			// polite close.
			_ = client.SetLinger(0)
			_ = client.Close()
			continue
		}
		up, err := net.DialTimeout("tcp", p.target, time.Second)
		if err != nil {
			_ = client.SetLinger(0)
			_ = client.Close()
			continue
		}
		c := &conn{client: client, upstream: up.(*net.TCPConn)}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			c.sever(true)
			continue
		}
		p.conns[c] = struct{}{}
		p.mu.Unlock()
		p.wg.Add(2)
		go p.relay(c, c.client, c.upstream)
		go p.relay(c, c.upstream, c.client)
	}
}

// relay copies src→dst in shaped chunks. When either direction dies the
// whole pair is severed: half-open proxied connections would leak and
// model nothing a routed HTTP request cares about.
func (p *Proxy) relay(c *conn, src, dst *net.TCPConn) {
	defer p.wg.Done()
	defer func() {
		c.sever(false)
		p.mu.Lock()
		delete(p.conns, c)
		p.mu.Unlock()
	}()
	buf := make([]byte, copyBuf)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			p.shape()
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
		}
		if err != nil {
			if !errors.Is(err, io.EOF) {
				return
			}
			// Propagate the half-close; the deferred sever finishes the
			// teardown once the other direction drains.
			_ = dst.CloseWrite()
			return
		}
	}
}

// shape applies the current latency and stall settings to one chunk.
func (p *Proxy) shape() {
	if until := p.stallUntil.Load(); until > 0 {
		if wait := time.Until(time.Unix(0, until)); wait > 0 {
			time.Sleep(wait)
		}
	}
	if d := time.Duration(p.latency.Load()); d > 0 {
		time.Sleep(d)
	}
}
