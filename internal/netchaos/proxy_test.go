package netchaos

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"
)

// echoServer answers each line with the same line.
func echoServer(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				sc := bufio.NewScanner(c)
				for sc.Scan() {
					fmt.Fprintf(c, "%s\n", sc.Text())
				}
			}(c)
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return ln
}

func newTestProxy(t *testing.T) *Proxy {
	t.Helper()
	ln := echoServer(t)
	p, err := New(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

// echoOnce dials through the proxy, sends one line, and returns the
// answer (or an error).
func echoOnce(p *Proxy, msg string) (string, error) {
	c, err := net.DialTimeout("tcp", p.Addr(), time.Second)
	if err != nil {
		return "", err
	}
	defer c.Close()
	_ = c.SetDeadline(time.Now().Add(2 * time.Second))
	if _, err := fmt.Fprintf(c, "%s\n", msg); err != nil {
		return "", err
	}
	line, err := bufio.NewReader(c).ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimSuffix(line, "\n"), nil
}

func TestProxyRelays(t *testing.T) {
	p := newTestProxy(t)
	got, err := echoOnce(p, "hello")
	if err != nil {
		t.Fatalf("echo through proxy: %v", err)
	}
	if got != "hello" {
		t.Fatalf("echo = %q, want hello", got)
	}
}

func TestProxyLatency(t *testing.T) {
	p := newTestProxy(t)
	p.SetLatency(50 * time.Millisecond)
	start := time.Now()
	if _, err := echoOnce(p, "slow"); err != nil {
		t.Fatalf("echo with latency: %v", err)
	}
	// Request and response directions are each shaped once.
	if elapsed := time.Since(start); elapsed < 90*time.Millisecond {
		t.Fatalf("round trip %v with 2×50ms latency, want ≥90ms", elapsed)
	}
	p.SetLatency(0)
	start = time.Now()
	if _, err := echoOnce(p, "fast"); err != nil {
		t.Fatalf("echo after clearing latency: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("round trip %v after clearing latency", elapsed)
	}
}

func TestProxyStall(t *testing.T) {
	p := newTestProxy(t)
	p.Stall(150 * time.Millisecond)
	start := time.Now()
	if _, err := echoOnce(p, "stalled"); err != nil {
		t.Fatalf("echo during stall: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 100*time.Millisecond {
		t.Fatalf("round trip %v during a 150ms stall, want ≥100ms", elapsed)
	}
}

func TestProxyResetSeversExistingConns(t *testing.T) {
	p := newTestProxy(t)
	c, err := net.DialTimeout("tcp", p.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_ = c.SetDeadline(time.Now().Add(2 * time.Second))
	fmt.Fprintf(c, "ping\n")
	if _, err := bufio.NewReader(c).ReadString('\n'); err != nil {
		t.Fatalf("pre-reset echo: %v", err)
	}
	p.Reset()
	// The severed connection must error out promptly.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := fmt.Fprintf(c, "dead?\n"); err != nil {
			break
		}
		if _, err := bufio.NewReader(c).ReadString('\n'); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("connection survived Reset")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// New connections work: a reset is a burp, not an outage.
	if got, err := echoOnce(p, "again"); err != nil || got != "again" {
		t.Fatalf("post-reset echo: %q, %v", got, err)
	}
}

func TestProxyPartitionAndHeal(t *testing.T) {
	p := newTestProxy(t)
	if _, err := echoOnce(p, "before"); err != nil {
		t.Fatalf("pre-partition echo: %v", err)
	}
	p.Partition()
	if !p.Partitioned() {
		t.Fatal("Partitioned() false after Partition")
	}
	if _, err := echoOnce(p, "during"); err == nil {
		t.Fatal("echo succeeded through a partition")
	}
	p.Heal()
	// Heal is immediate; the next connection goes through.
	if got, err := echoOnce(p, "after"); err != nil || got != "after" {
		t.Fatalf("post-heal echo: %q, %v", got, err)
	}
}

func TestProxyCloseIsIdempotent(t *testing.T) {
	p := newTestProxy(t)
	if err := p.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := echoOnce(p, "closed"); err == nil {
		t.Fatal("echo succeeded through a closed proxy")
	}
}

func TestProxyDeadTargetRefusesCleanly(t *testing.T) {
	ln := echoServer(t)
	addr := ln.Addr().String()
	ln.Close()
	p, err := New(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, err := echoOnce(p, "void"); err == nil {
		t.Fatal("echo succeeded with a dead target")
	}
}
