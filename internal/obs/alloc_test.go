package obs

import "testing"

// The disabled-path allocation contract: with telemetry off, every
// record operation must be a single atomic load and return — zero
// allocations, so instrumenting the prediction hot path costs the
// 0 allocs/op regression tests in internal/core nothing. The `make
// check` gate runs these by name.

func TestDisabledRecordingAllocationFree(t *testing.T) {
	SetEnabled(false)
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", []float64{1, 2, 3})
	if allocs := testing.AllocsPerRun(200, func() {
		c.Inc()
		c.Add(3)
		g.Set(1)
		g.Add(1)
		g.SetMax(9)
		h.Observe(0.5)
	}); allocs != 0 {
		t.Fatalf("disabled metric recording allocates %.1f objects/op, want 0", allocs)
	}
}

func TestDisabledSpansAllocationFree(t *testing.T) {
	SetEnabled(false)
	tr := NewTracer(WallClock(), 16)
	if allocs := testing.AllocsPerRun(200, func() {
		sp := tr.Start("actor", "name")
		sp.End()
		StartSpan("actor", "name").End()
	}); allocs != 0 {
		t.Fatalf("disabled span path allocates %.1f objects/op, want 0", allocs)
	}
}

// Enabled counters and histograms are atomic too — recording never
// allocates, only Start'ing a live span does.
func TestEnabledCountersAllocationFree(t *testing.T) {
	withTelemetry(t)
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", []float64{1, 2, 3})
	if allocs := testing.AllocsPerRun(200, func() {
		c.Inc()
		g.Add(1)
		h.Observe(2.5)
	}); allocs != 0 {
		t.Fatalf("enabled metric recording allocates %.1f objects/op, want 0", allocs)
	}
}
