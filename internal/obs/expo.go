package obs

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
)

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4): series sorted by name, one
// `# HELP` / `# TYPE` header per base family, histograms expanded into
// cumulative `_bucket{le=...}` series plus `_sum` and `_count`.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.Snapshot().WritePrometheus(w)
}

// WritePrometheus renders a frozen snapshot in the same text format —
// the fleet scraper writes merged member snapshots through this path.
func (snap Snapshot) WritePrometheus(w io.Writer) error {
	lastBase := ""
	for _, m := range snap.Metrics {
		base := m.Name
		labels := ""
		if i := strings.IndexByte(base, '{'); i >= 0 {
			base, labels = base[:i], base[i:]
		}
		if base != lastBase {
			if m.Help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", base, strings.ReplaceAll(m.Help, "\n", " ")); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, m.Kind); err != nil {
				return err
			}
			lastBase = base
		}
		switch m.Kind {
		case KindHistogram.String():
			for _, b := range m.Buckets {
				le := "+Inf"
				if !math.IsInf(b.UpperBound, 1) {
					le = formatValue(b.UpperBound)
				}
				series := base + "_bucket" + bucketLabels(labels, le)
				if _, err := fmt.Fprintf(w, "%s %d\n", series, b.Count); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", base, labels, formatValue(m.Sum)); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", base, labels, m.Count); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprintf(w, "%s%s %s\n", base, labels, formatValue(m.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

// PrometheusText is WritePrometheus into a string.
func (r *Registry) PrometheusText() string {
	var b strings.Builder
	// strings.Builder never errors.
	_ = r.WritePrometheus(&b)
	return b.String()
}

// bucketLabels merges an existing {label="value"} suffix with the le
// bucket label.
func bucketLabels(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return strings.TrimSuffix(labels, "}") + `,le="` + le + `"}`
}

// formatValue renders a float the way Prometheus clients do: integral
// values without a decimal point, everything else in shortest form.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler serves the registry: the Prometheus text format at the
// handler's root.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

var expvarOnce sync.Once

// PublishExpvar publishes the default registry's snapshot under the
// expvar name "contention" (alongside the runtime's memstats/cmdline),
// so any /debug/vars scraper sees the same numbers as /metrics.
// Idempotent; expvar forbids re-publishing a name.
func PublishExpvar() {
	expvarOnce.Do(func() {
		expvar.Publish("contention", expvar.Func(func() any { return std.Snapshot() }))
	})
}

// ListenAndServe starts an HTTP exposition endpoint for the default
// registry on addr: /metrics (Prometheus text) and /debug/vars (expvar
// JSON, including the published registry snapshot). It returns the
// bound address (useful with a ":0" port) and never blocks; the server
// lives until the process exits. Errors binding the listener are
// returned synchronously.
func ListenAndServe(addr string) (string, error) {
	PublishExpvar()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", std.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), nil
}
