package obs

import (
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// goldenRegistry builds the deterministic registry the exposition and
// manifest golden tests share.
func goldenRegistry(t *testing.T) *Registry {
	t.Helper()
	withTelemetry(t)
	r := NewRegistry()
	r.Counter("core_cache_comm_hits_total", "comm-slowdown cache hits").Add(42)
	v := r.CounterVec("faults_injected_total", "injected fault events", "kind")
	v.With("link-drop").Add(3)
	v.With("host-stall").Inc()
	r.Gauge("runner_tasks_in_flight", "tasks currently executing").Set(2.5)
	h := r.Histogram("runner_task_seconds", "task wall seconds", []float64{0.001, 0.1, 1})
	for _, x := range []float64{0.0005, 0.05, 0.05, 5} {
		h.Observe(x)
	}
	return r
}

// checkGolden compares got against the named testdata file;
// UPDATE_GOLDEN=1 rewrites the file instead.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if os.Getenv("UPDATE_GOLDEN") == "1" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if string(want) != string(got) {
		t.Fatalf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestPrometheusExpositionGolden pins the text exposition format: the
// `make check` gate depends on this test by name.
func TestPrometheusExpositionGolden(t *testing.T) {
	r := goldenRegistry(t)
	checkGolden(t, "exposition.golden", []byte(r.PrometheusText()))
}

func TestExpositionShape(t *testing.T) {
	r := goldenRegistry(t)
	text := r.PrometheusText()
	for _, want := range []string{
		"# TYPE core_cache_comm_hits_total counter",
		"core_cache_comm_hits_total 42",
		`faults_injected_total{kind="link-drop"} 3`,
		"# TYPE runner_task_seconds histogram",
		`runner_task_seconds_bucket{le="+Inf"} 4`,
		"runner_task_seconds_sum 5.1005",
		"runner_task_seconds_count 4",
		"runner_tasks_in_flight 2.5",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
	// One header per family, even with several labelled series.
	if got := strings.Count(text, "# TYPE faults_injected_total"); got != 1 {
		t.Fatalf("family header repeated %d times", got)
	}
}

func TestHistogramBucketMergesLabels(t *testing.T) {
	withTelemetry(t)
	r := NewRegistry()
	r.Histogram(`lat_seconds{op="send"}`, "", []float64{1}).Observe(0.5)
	text := r.PrometheusText()
	if !strings.Contains(text, `lat_seconds_bucket{op="send",le="1"} 1`) {
		t.Fatalf("labelled histogram buckets malformed:\n%s", text)
	}
	if !strings.Contains(text, `lat_seconds_sum{op="send"} 0.5`) {
		t.Fatalf("labelled histogram sum malformed:\n%s", text)
	}
}

func TestHandlerServesExposition(t *testing.T) {
	r := goldenRegistry(t)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	if string(body) != r.PrometheusText() {
		t.Fatal("handler body differs from PrometheusText")
	}
}

func TestFormatValue(t *testing.T) {
	for _, tc := range []struct {
		in   float64
		want string
	}{
		{0, "0"}, {42, "42"}, {-3, "-3"}, {2.5, "2.5"}, {0.001, "0.001"}, {1e16, "1e+16"},
	} {
		if got := formatValue(tc.in); got != tc.want {
			t.Fatalf("formatValue(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}
