package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// ManifestSchema versions the run-manifest JSON layout. Bump on any
// breaking field change; consumers must check it before parsing deeper.
const ManifestSchema = "contention/run-manifest/v1"

// CalibrationInfo records which calibration a run predicted from and
// whether it was trusted at exit.
type CalibrationInfo struct {
	Platform string `json:"platform"`
	// Version is the persistence-layer version string when the
	// calibration came from a caltrust store ("in-memory" otherwise).
	Version string `json:"version,omitempty"`
	// Trust is the trust state at exit: fresh / stale / degraded.
	Trust string `json:"trust,omitempty"`
	// StaleReason carries the predictor's staleness reason, if any.
	StaleReason string `json:"stale_reason,omitempty"`
	// FatalViolations counts fatal validation findings at adoption.
	FatalViolations int `json:"fatal_violations,omitempty"`
}

// DriverReport is one experiment driver's wall time.
type DriverReport struct {
	ID          string  `json:"id"`
	WallSeconds float64 `json:"wall_seconds"`
}

// PoolReport summarizes the runner pool over the run.
type PoolReport struct {
	Workers     int   `json:"workers"`
	Tasks       int64 `json:"tasks"`
	Inline      int64 `json:"inline"`
	Async       int64 `json:"async"`
	MaxInFlight int64 `json:"max_in_flight"`
	// Utilization is the fraction of tasks that actually ran on a pool
	// worker (the rest ran inline on the submitter, the pool's overflow
	// path).
	Utilization float64 `json:"utilization"`
}

// CacheReport summarizes the slowdown-kernel cache.
type CacheReport struct {
	CommHits   int64 `json:"comm_hits"`
	CommMisses int64 `json:"comm_misses"`
	CompHits   int64 `json:"comp_hits"`
	CompMisses int64 `json:"comp_misses"`
	// HitRate is hits/(hits+misses) over both mixtures, 0 when unused.
	HitRate float64 `json:"hit_rate"`
}

// PredictionReport tallies predictor activity.
type PredictionReport struct {
	Comm     int64 `json:"comm"`
	Comp     int64 `json:"comp"`
	Degraded int64 `json:"degraded"`
}

// ReliabilityReport tallies the retry/timeout/degradation machinery.
type ReliabilityReport struct {
	EmuRetries      int64 `json:"emu_retries,omitempty"`
	EmuRedials      int64 `json:"emu_redials,omitempty"`
	EmuDeadlineHits int64 `json:"emu_deadline_hits,omitempty"`
	DriftAlarms     int64 `json:"drift_alarms,omitempty"`
	MonitorDropped  int64 `json:"monitor_dropped,omitempty"`
	MonitorRejected int64 `json:"monitor_rejected,omitempty"`
}

// ServingReport summarizes the prediction daemon's request handling:
// traffic volume, outcome mix, micro-batching efficiency, and queue
// pressure.
type ServingReport struct {
	Requests map[string]int64 `json:"requests,omitempty"` // by kind
	Outcomes map[string]int64 `json:"outcomes,omitempty"` // ok / 4xx class / timeout / rejected
	Degraded int64            `json:"degraded,omitempty"`
	Batches  int64            `json:"batches"`
	// BatchedRequests is the number of requests that went through the
	// batcher; BatchedRequests/Batches is the amortization factor.
	BatchedRequests int64   `json:"batched_requests"`
	MeanBatchSize   float64 `json:"mean_batch_size,omitempty"`
	MaxQueueDepth   int64   `json:"max_queue_depth,omitempty"`
}

// ScenarioCell is one cell of the scenario sweep matrix: a (scenario,
// wire format, serving mode) combination with its smoke-run
// measurements and replay-verification outcome.
type ScenarioCell struct {
	Scenario         string  `json:"scenario"`
	Wire             string  `json:"wire"`
	Mode             string  `json:"mode"`
	Requests         int     `json:"requests"`
	ReqPerSec        float64 `json:"req_per_sec"`
	P50Ms            float64 `json:"p50_ms"`
	P99Ms            float64 `json:"p99_ms"`
	BatchedPct       float64 `json:"batched_pct"`
	FastPct          float64 `json:"fast_pct"`
	ReplayMismatches int     `json:"replay_mismatches"`
}

// ScenarioReport summarizes a scenario sweep: every executed cell plus
// the matrix-wide replay totals.
type ScenarioReport struct {
	Cells      []ScenarioCell `json:"cells"`
	Replayed   int            `json:"replayed_requests"`
	Mismatches int            `json:"mismatches"`
}

// Manifest is the schema-versioned record a command writes at the end
// of a run: what was configured, what calibration was trusted, what the
// machine actually did. Maps marshal with sorted keys and the embedded
// snapshot is sorted by series name, so two identical runs produce
// byte-identical manifests (timestamps excepted, and omitted when
// unset).
type Manifest struct {
	Schema  string `json:"schema"`
	Command string `json:"command"`
	// StartedAt is RFC3339 wall time; left empty in golden tests.
	StartedAt   string  `json:"started_at,omitempty"`
	WallSeconds float64 `json:"wall_seconds,omitempty"`

	Config      map[string]string  `json:"config,omitempty"`
	Calibration *CalibrationInfo   `json:"calibration,omitempty"`
	FaultSeeds  []int64            `json:"fault_seeds,omitempty"`
	Drivers     []DriverReport     `json:"drivers,omitempty"`
	Pool        *PoolReport        `json:"pool,omitempty"`
	Cache       *CacheReport       `json:"cache,omitempty"`
	Predictions *PredictionReport  `json:"predictions,omitempty"`
	Faults      map[string]int64   `json:"faults,omitempty"`
	Reliability *ReliabilityReport `json:"reliability,omitempty"`
	Serving     *ServingReport     `json:"serving,omitempty"`
	// Scenario is the sweep report when the run executed the scenario
	// matrix; stamped by the command, never derived from the snapshot.
	Scenario *ScenarioReport `json:"scenario,omitempty"`
	// SLO is the objective tracker's state at exit (burn rates over both
	// windows, breach verdict); absent when no SLO was configured.
	SLO *SLOStatus `json:"slo,omitempty"`

	// Spans is the span log (virtual or wall clock, per tracer).
	Spans []SpanRecord `json:"spans,omitempty"`
	// Metrics embeds the full registry snapshot, the source of truth
	// the summary sections above were derived from.
	Metrics []MetricSnapshot `json:"metrics,omitempty"`
}

// NewManifest starts a manifest for a command.
func NewManifest(command string) *Manifest {
	return &Manifest{Schema: ManifestSchema, Command: command}
}

// FillFromSnapshot derives the summary sections (pool, cache,
// predictions, faults, reliability) from a registry snapshot using the
// canonical metric names, and embeds the snapshot itself. Sections
// whose counters never moved are filled with zeros rather than omitted,
// so consumers can rely on their presence.
func (m *Manifest) FillFromSnapshot(s Snapshot) {
	m.Metrics = s.Metrics

	tasks := s.Counter(MetricPoolTasks)
	async := s.Counter(MetricPoolAsync)
	pool := &PoolReport{
		Tasks:       tasks,
		Inline:      s.Counter(MetricPoolInline),
		Async:       async,
		MaxInFlight: int64(s.Gauge(MetricPoolMaxInFlight)),
	}
	if tasks > 0 {
		pool.Utilization = float64(async) / float64(tasks)
	}
	if m.Pool != nil {
		pool.Workers = m.Pool.Workers
	}
	m.Pool = pool

	cache := &CacheReport{
		CommHits:   s.Counter(MetricCacheCommHits),
		CommMisses: s.Counter(MetricCacheCommMisses),
		CompHits:   s.Counter(MetricCacheCompHits),
		CompMisses: s.Counter(MetricCacheCompMisses),
	}
	if total := cache.CommHits + cache.CommMisses + cache.CompHits + cache.CompMisses; total > 0 {
		cache.HitRate = float64(cache.CommHits+cache.CompHits) / float64(total)
	}
	m.Cache = cache

	m.Predictions = &PredictionReport{
		Comm:     s.Counter(MetricPredictComm),
		Comp:     s.Counter(MetricPredictComp),
		Degraded: s.Counter(MetricPredictDegraded),
	}

	faults := map[string]int64{}
	for kind, n := range s.Labelled(MetricFaultsInjected) {
		faults[kind] = int64(n)
	}
	if len(faults) > 0 {
		m.Faults = faults
	}

	// The serving section only appears when the daemon actually handled
	// traffic — batch experiment manifests stay unchanged.
	if batches := s.Counter(MetricServeBatches); batches > 0 || len(s.Labelled(MetricServeRequests)) > 0 {
		srv := &ServingReport{
			Batches:       batches,
			Degraded:      s.Counter(MetricServeDegraded),
			MaxQueueDepth: int64(s.Gauge(MetricServeQueueDepthMax)),
		}
		if reqs := s.Labelled(MetricServeRequests); len(reqs) > 0 {
			srv.Requests = map[string]int64{}
			for kind, n := range reqs {
				srv.Requests[kind] = int64(n)
			}
		}
		if outs := s.Labelled(MetricServeResponses); len(outs) > 0 {
			srv.Outcomes = map[string]int64{}
			for outcome, n := range outs {
				srv.Outcomes[outcome] = int64(n)
			}
		}
		for _, ms := range s.Metrics {
			if ms.Name == MetricServeBatchSize {
				srv.BatchedRequests = int64(ms.Sum)
				if ms.Count > 0 {
					srv.MeanBatchSize = ms.Sum / float64(ms.Count)
				}
			}
		}
		m.Serving = srv
	}

	m.Reliability = &ReliabilityReport{
		EmuRetries:      s.Counter(MetricEmuRetries),
		EmuRedials:      s.Counter(MetricEmuRedials),
		EmuDeadlineHits: s.Counter(MetricEmuDeadlines),
		DriftAlarms:     s.Counter(MetricDriftAlarms),
		MonitorDropped:  s.Counter(MetricMonitorDropped),
		MonitorRejected: s.Counter(MetricMonitorRejected),
	}
}

// Encode renders the manifest as indented JSON with a trailing newline.
func (m *Manifest) Encode() ([]byte, error) {
	if m.Schema == "" {
		return nil, fmt.Errorf("obs: manifest missing schema version")
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("obs: encoding manifest: %w", err)
	}
	return append(data, '\n'), nil
}

// Write atomically writes the manifest to path (temp file + rename, so
// a crashed run never leaves a truncated manifest behind).
func (m *Manifest) Write(path string) error {
	data, err := m.Encode()
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".manifest-*.json")
	if err != nil {
		return fmt.Errorf("obs: writing manifest: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("obs: writing manifest: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("obs: writing manifest: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("obs: writing manifest: %w", err)
	}
	return nil
}

// ReadManifest loads and schema-checks a manifest file.
func ReadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("obs: %s: %w", path, err)
	}
	if m.Schema != ManifestSchema {
		return nil, fmt.Errorf("obs: %s: schema %q, want %q", path, m.Schema, ManifestSchema)
	}
	return &m, nil
}
