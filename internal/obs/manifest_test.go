package obs

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// goldenManifest builds a fully deterministic manifest from the shared
// golden registry plus fixed header fields (timestamps deliberately
// left empty — they are the only nondeterministic fields).
func goldenManifest(t *testing.T) *Manifest {
	t.Helper()
	r := goldenRegistry(t)
	m := NewManifest("experiments")
	m.Config = map[string]string{"parallel": "true", "workers": "4", "only": ""}
	m.Calibration = &CalibrationInfo{Platform: "sun-paragon", Version: "in-memory", Trust: "fresh"}
	m.FaultSeeds = []int64{96}
	m.Drivers = []DriverReport{{ID: "figure5", WallSeconds: 0.25}, {ID: "figure6", WallSeconds: 0.5}}
	m.Pool = &PoolReport{Workers: 4}
	m.Spans = []SpanRecord{{Actor: "driver", Name: "figure5", Start: 1, End: 1.25}}
	m.FillFromSnapshot(r.Snapshot())
	return m
}

// TestManifestGolden pins the manifest JSON schema; the `make check`
// gate depends on this test by name.
func TestManifestGolden(t *testing.T) {
	m := goldenManifest(t)
	data, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "manifest.golden", data)
}

func TestManifestSchemaVersioned(t *testing.T) {
	m := goldenManifest(t)
	data, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"schema": "`+ManifestSchema+`"`) {
		t.Fatalf("manifest missing schema version:\n%s", data)
	}
	if _, err := (&Manifest{}).Encode(); err == nil {
		t.Fatal("schema-less manifest encoded without error")
	}
}

func TestManifestFillDerivesSummaries(t *testing.T) {
	withTelemetry(t)
	r := NewRegistry()
	r.Counter(MetricPoolTasks, "").Add(10)
	r.Counter(MetricPoolAsync, "").Add(6)
	r.Counter(MetricPoolInline, "").Add(4)
	r.Gauge(MetricPoolMaxInFlight, "").Set(3)
	r.Counter(MetricCacheCommHits, "").Add(8)
	r.Counter(MetricCacheCommMisses, "").Add(2)
	r.Counter(MetricPredictComm, "").Add(10)
	r.Counter(MetricPredictDegraded, "").Add(1)
	r.CounterVec(MetricFaultsInjected, "", "kind").With("link-drop").Add(5)
	r.Counter(MetricEmuRetries, "").Add(7)
	r.Counter(MetricDriftAlarms, "").Inc()

	m := NewManifest("experiments")
	m.Pool = &PoolReport{Workers: 2}
	m.FillFromSnapshot(r.Snapshot())

	if m.Pool.Tasks != 10 || m.Pool.Async != 6 || m.Pool.Inline != 4 || m.Pool.Workers != 2 {
		t.Fatalf("pool = %+v", m.Pool)
	}
	if m.Pool.Utilization != 0.6 {
		t.Fatalf("utilization = %v, want 0.6", m.Pool.Utilization)
	}
	if m.Pool.MaxInFlight != 3 {
		t.Fatalf("max in flight = %d", m.Pool.MaxInFlight)
	}
	if m.Cache.CommHits != 8 || m.Cache.HitRate != 0.8 {
		t.Fatalf("cache = %+v", m.Cache)
	}
	if m.Predictions.Comm != 10 || m.Predictions.Degraded != 1 {
		t.Fatalf("predictions = %+v", m.Predictions)
	}
	if m.Faults["link-drop"] != 5 {
		t.Fatalf("faults = %v", m.Faults)
	}
	if m.Reliability.EmuRetries != 7 || m.Reliability.DriftAlarms != 1 {
		t.Fatalf("reliability = %+v", m.Reliability)
	}
	if len(m.Metrics) == 0 {
		t.Fatal("snapshot not embedded")
	}
}

func TestManifestWriteReadRoundtrip(t *testing.T) {
	m := goldenManifest(t)
	path := filepath.Join(t.TempDir(), "manifest.json")
	if err := m.Write(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Command != "experiments" || got.Schema != ManifestSchema {
		t.Fatalf("roundtrip header = %+v", got)
	}
	if len(got.Metrics) != len(m.Metrics) || got.Cache.CommHits != m.Cache.CommHits {
		t.Fatal("roundtrip lost metrics")
	}
	// No temp litter from the atomic write.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("unexpected files after atomic write: %v", entries)
	}
}

func TestReadManifestRejectsWrongSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"schema":"contention/run-manifest/v0","command":"x"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(path); err == nil {
		t.Fatal("wrong schema accepted")
	}
	if err := os.WriteFile(path, []byte(`{not json`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(path); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}
