package obs

// Canonical metric names. They live here, in the leaf package, so the
// instrumented packages and the manifest builder agree on one naming
// table without importing each other. Conventions follow Prometheus:
// snake_case, a subsystem prefix, `_total` on counters, base units
// (seconds, bytes) in the name.
const (
	// internal/core — the prediction hot path.
	MetricCacheCommHits   = "core_cache_comm_hits_total"
	MetricCacheCommMisses = "core_cache_comm_misses_total"
	MetricCacheCompHits   = "core_cache_comp_hits_total"
	MetricCacheCompMisses = "core_cache_comp_misses_total"
	MetricPredictComm     = "core_predict_comm_total"
	MetricPredictComp     = "core_predict_comp_total"
	MetricPredictDegraded = "core_predict_degraded_total"
	MetricPredictBatch    = "core_predict_batch_size"

	// internal/core + internal/surface — the precomputed slowdown
	// surface that replaces the DP on the steady-state hot path.
	MetricSurfaceHits          = "surface_hits_total"   // label: kind (comm | comp)
	MetricSurfaceMisses        = "surface_misses_total" // label: kind
	MetricSurfaceFills         = "surface_fills_total"  // grid nodes evaluated at build time
	MetricSurfaceBuilds        = "surface_builds_total"
	MetricSurfaceInvalidations = "surface_invalidations_total"
	MetricSurfaceRevalidations = "surface_revalidations_total"

	// internal/runner — the shared worker pool.
	MetricPoolTasks       = "runner_tasks_total"
	MetricPoolInline      = "runner_tasks_inline_total"
	MetricPoolAsync       = "runner_tasks_async_total"
	MetricPoolInFlight    = "runner_tasks_in_flight"
	MetricPoolMaxInFlight = "runner_tasks_in_flight_max"
	MetricPoolTaskSeconds = "runner_task_seconds"

	// internal/caltrust — the calibration trust layer.
	MetricDriftAlarms      = "caltrust_drift_alarms_total"
	MetricTrustTransitions = "caltrust_transitions_total" // label: to
	MetricResidualsSeen    = "caltrust_residuals_total"

	// internal/faults — the simulated fault injector.
	MetricFaultsInjected = "faults_injected_total" // label: kind

	// internal/emu — the live loopback-TCP emulation link.
	MetricEmuMessages  = "emu_link_messages_total"
	MetricEmuBytes     = "emu_link_bytes_total"
	MetricEmuRetries   = "emu_link_retries_total"
	MetricEmuRedials   = "emu_link_redials_total"
	MetricEmuDeadlines = "emu_link_deadline_hits_total"

	// internal/monitor — run-time workload estimation.
	MetricMonitorAccepted = "monitor_samples_accepted_total"
	MetricMonitorDropped  = "monitor_samples_dropped_total"
	MetricMonitorRejected = "monitor_samples_rejected_total"

	// internal/experiments — per-driver wall time.
	MetricDriverSeconds = "experiments_driver_seconds" // label: driver

	// internal/serve — the online prediction daemon.
	MetricServeRequests       = "serve_requests_total"  // label: kind
	MetricServeResponses      = "serve_responses_total" // label: outcome
	MetricServeDegraded       = "serve_degraded_total"
	MetricServeBatches        = "serve_batches_total"
	MetricServeBatchSize      = "serve_batch_size"
	MetricServeQueueDepth     = "serve_queue_depth"
	MetricServeQueueDepthMax  = "serve_queue_depth_max"
	MetricServeRequestSeconds = "serve_request_seconds"
	MetricServeFlushSeconds   = "serve_flush_seconds"

	// internal/serve — the binary wire format and the batcher-bypass
	// fast path for surface-resident keys.
	MetricServeBinaryRequests = "serve_binary_requests_total"
	MetricServeFastHits       = "serve_fastpath_hits_total"
	MetricServeFastMisses     = "serve_fastpath_misses_total"

	// internal/cluster — the self-healing replica fleet and its router.
	MetricClusterRequests     = "cluster_requests_total"            // label: outcome
	MetricClusterRetries      = "cluster_retries_total"             // failover re-sends after a retryable failure
	MetricClusterSpills       = "cluster_spills_total"              // load-aware departures from the ring primary
	MetricClusterHedges       = "cluster_hedges_total"              // hedged second requests launched
	MetricClusterRestarts     = "cluster_restarts_total"            // replica respawns by the supervisor
	MetricClusterAbandoned    = "cluster_abandoned_total"           // replicas given up on (crash-loop budget)
	MetricClusterBreakerTrans = "cluster_breaker_transitions_total" // label: to
	MetricClusterReplicasUp   = "cluster_replicas_up"
	MetricClusterRouteSeconds = "cluster_route_seconds"

	// internal/serve + internal/cluster — per-stage latency attribution
	// (the observability plane). One histogram per pipeline stage.
	MetricServeStageSeconds   = "serve_stage_seconds"   // label: stage (decode | admission | batch-wait | compute | surface | encode)
	MetricClusterStageSeconds = "cluster_stage_seconds" // label: stage (decode | route | encode)

	// internal/obs — trace sampling and the SLO plane.
	MetricTraceSampled       = "trace_sampled_total"
	MetricSLOLatencyBurnFast = "slo_latency_burn_fast"
	MetricSLOLatencyBurnSlow = "slo_latency_burn_slow"
	MetricSLOAvailBurnFast   = "slo_availability_burn_fast"
	MetricSLOAvailBurnSlow   = "slo_availability_burn_slow"
	MetricSLOBreach          = "slo_breach"

	// internal/cluster — the fleet metrics scraper behind /debug/fleet.
	MetricFleetScrapes       = "fleet_scrapes_total"
	MetricFleetScrapeErrors  = "fleet_scrape_errors_total"
	MetricFleetMembersSeen   = "fleet_members_scraped"
	MetricFleetScrapeSeconds = "fleet_scrape_seconds"

	// internal/scenario — arrival-process generation and trace
	// record/replay.
	MetricScenarioArrivals     = "scenario_arrivals_total" // label: cohort
	MetricScenarioTraceWrites  = "scenario_trace_records_written_total"
	MetricScenarioTraceReads   = "scenario_trace_records_read_total"
	MetricScenarioReplayDiffs  = "scenario_replay_mismatches_total"
	MetricScenarioSweepCells   = "scenario_sweep_cells_total"
	MetricScenarioSweepRequest = "scenario_sweep_requests_total"

	// internal/cluster — multi-host membership and failure detection.
	MetricClusterSuspects     = "cluster_suspects_total"           // remote members suspected by the failure detector
	MetricClusterRejoins      = "cluster_rejoins_total"            // suspect members readmitted after a heartbeat
	MetricClusterMembersAdded = "cluster_members_added_total"      // remote members joined via AddRemote
	MetricClusterClientGone   = "cluster_client_gone_total"        // attempts abandoned because the client vanished
	MetricClusterReloads      = "cluster_membership_reloads_total" // label: outcome (applied | unchanged | error)
)
