// Package obs is the unified telemetry layer for the contention stack:
// a zero-dependency metrics registry (atomic counters, gauges and
// fixed-bucket histograms with Prometheus-style text exposition and
// expvar publishing), lightweight span tracing that is virtual-time
// aware (a DES run and a wall-clock emulation run produce equally
// coherent timelines), and schema-versioned JSON run manifests the
// commands emit at exit.
//
// The paper's premise is that contended performance is only predictable
// when the contention is observable; obs turns that lens on the
// reproduction itself. The subsystems it instruments — the runner pool,
// the slowdown caches, the trust layer, the fault injector, the live
// emulation link, the monitor — publish through one registry, so a run
// can always answer "what did the machine actually do".
//
// Telemetry is off by default and must cost nothing when off: every
// record operation first consults one atomic flag and returns without
// allocating (enforced by alloc regression tests), so the 0 allocs/op
// contract of the warm prediction hot path is preserved.
package obs

import "sync/atomic"

// enabled is the global switch. All record paths (Counter.Add,
// Gauge.Set, Histogram.Observe, Tracer.Start) are no-ops while it is
// false; registration, snapshots and exposition work regardless, they
// just report zeros.
var enabled atomic.Bool

// SetEnabled switches telemetry recording on or off globally.
func SetEnabled(v bool) { enabled.Store(v) }

// Enabled reports whether telemetry recording is on.
func Enabled() bool { return enabled.Load() }

// std is the process-wide default registry the instrumented packages
// register into.
var std = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return std }

// NewCounter registers (or fetches) a counter on the default registry.
func NewCounter(name, help string) *Counter { return std.Counter(name, help) }

// NewGauge registers (or fetches) a gauge on the default registry.
func NewGauge(name, help string) *Gauge { return std.Gauge(name, help) }

// NewHistogram registers (or fetches) a histogram on the default
// registry. See Registry.Histogram for the bounds contract.
func NewHistogram(name, help string, bounds []float64) *Histogram {
	return std.Histogram(name, help, bounds)
}

// NewCounterVec returns a labelled counter family on the default
// registry.
func NewCounterVec(name, help, label string) *CounterVec {
	return std.CounterVec(name, help, label)
}

// NewGaugeVec returns a labelled gauge family on the default registry.
func NewGaugeVec(name, help, label string) *GaugeVec {
	return std.GaugeVec(name, help, label)
}

// NewHistogramVec returns a labelled histogram family on the default
// registry.
func NewHistogramVec(name, help, label string, bounds []float64) *HistogramVec {
	return std.HistogramVec(name, help, label, bounds)
}
