package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ParsePrometheusText parses the Prometheus text exposition format back
// into a Snapshot — the inverse of Snapshot.WritePrometheus, used by
// the fleet scraper to ingest member /metrics pages. It understands the
// subset our exposition emits (and any Prometheus 0.0.4 page built from
// counters, gauges, and classic histograms whose label values avoid
// embedded `,` and `"`): `# HELP` / `# TYPE` headers, scalar series,
// and `_bucket`/`_sum`/`_count` histogram triples, which it reassembles
// into cumulative bucket lists. Unknown-typed series default to gauge.
// Round-tripping a snapshot through WritePrometheus and back is
// lossless (pinned by test).
func ParsePrometheusText(text string) (Snapshot, error) {
	type hist struct {
		buckets map[float64]int64
		sum     float64
		count   int64
	}
	kinds := map[string]string{} // base family -> TYPE
	helps := map[string]string{}
	scalars := map[string]float64{}
	hists := map[string]*hist{} // full series name (base+labels) -> partial histogram
	var order []string          // first-seen order of series names, for stable errors

	histFor := func(series string) *hist {
		h, ok := hists[series]
		if !ok {
			h = &hist{buckets: map[float64]int64{}}
			hists[series] = h
			order = append(order, series)
		}
		return h
	}

	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) == 4 {
				switch fields[1] {
				case "TYPE":
					kinds[fields[2]] = strings.TrimSpace(fields[3])
				case "HELP":
					helps[fields[2]] = fields[3]
				}
			}
			continue
		}
		// Sample line: name{labels} value — the value is everything
		// after the last space, the series name everything before.
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			return Snapshot{}, fmt.Errorf("obs: metrics line %d: no value in %q", ln+1, line)
		}
		series, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			return Snapshot{}, fmt.Errorf("obs: metrics line %d: value %q: %v", ln+1, valStr, err)
		}
		base, labels := splitSeries(series)
		switch {
		case strings.HasSuffix(base, "_bucket"):
			family := strings.TrimSuffix(base, "_bucket")
			if kinds[family] != "histogram" {
				scalars[series] = val
				order = append(order, series)
				continue
			}
			rest, le, ok := extractLe(labels)
			if !ok {
				return Snapshot{}, fmt.Errorf("obs: metrics line %d: bucket without le label: %q", ln+1, line)
			}
			histFor(family + rest).buckets[le] += int64(val)
		case strings.HasSuffix(base, "_sum") && kinds[strings.TrimSuffix(base, "_sum")] == "histogram":
			histFor(strings.TrimSuffix(base, "_sum") + labels).sum = val
		case strings.HasSuffix(base, "_count") && kinds[strings.TrimSuffix(base, "_count")] == "histogram":
			histFor(strings.TrimSuffix(base, "_count") + labels).count = int64(val)
		default:
			scalars[series] = val
			order = append(order, series)
		}
	}

	snap := Snapshot{}
	for _, series := range order {
		base, _ := splitSeries(series)
		if h, ok := hists[series]; ok {
			m := MetricSnapshot{Name: series, Kind: "histogram", Help: helps[base], Count: h.count, Sum: h.sum}
			bounds := make([]float64, 0, len(h.buckets))
			for b := range h.buckets {
				bounds = append(bounds, b)
			}
			sort.Float64s(bounds)
			for _, b := range bounds {
				m.Buckets = append(m.Buckets, BucketSnapshot{UpperBound: b, Count: h.buckets[b]})
			}
			snap.Metrics = append(snap.Metrics, m)
			continue
		}
		v, ok := scalars[series]
		if !ok {
			continue
		}
		kind := kinds[base]
		if kind != "counter" && kind != "gauge" {
			kind = "gauge"
		}
		snap.Metrics = append(snap.Metrics, MetricSnapshot{Name: series, Kind: kind, Help: helps[base], Value: v})
	}
	sort.Slice(snap.Metrics, func(i, j int) bool { return snap.Metrics[i].Name < snap.Metrics[j].Name })
	return snap, nil
}

// splitSeries splits `name{labels}` into base name and the `{...}`
// suffix ("" when unlabelled).
func splitSeries(series string) (base, labels string) {
	if i := strings.IndexByte(series, '{'); i >= 0 {
		return series[:i], series[i:]
	}
	return series, ""
}

// extractLe removes the le="..." pair from a label suffix, returning
// the remaining suffix (normalized; "" when le was the only label) and
// the parsed bound.
func extractLe(labels string) (rest string, le float64, ok bool) {
	if len(labels) < 2 || labels[0] != '{' || labels[len(labels)-1] != '}' {
		return "", 0, false
	}
	inner := labels[1 : len(labels)-1]
	parts := strings.Split(inner, ",")
	kept := parts[:0]
	found := false
	for _, p := range parts {
		if v, isLe := strings.CutPrefix(p, `le="`); isLe && strings.HasSuffix(v, `"`) {
			bound := strings.TrimSuffix(v, `"`)
			if bound == "+Inf" {
				le, found = math.Inf(1), true
				continue
			}
			f, err := strconv.ParseFloat(bound, 64)
			if err != nil {
				return "", 0, false
			}
			le, found = f, true
			continue
		}
		kept = append(kept, p)
	}
	if !found {
		return "", 0, false
	}
	if len(kept) == 0 {
		return "", le, true
	}
	return "{" + strings.Join(kept, ",") + "}", le, true
}

// MergeSnapshots sums same-named series across several snapshots into
// one, prefixing every series name with prefix — the fleet aggregation
// rule. Counters, gauges, and histogram sums/counts add; histogram
// buckets merge per upper bound (members share bucket layouts since
// they run the same binary, but a union is taken if they differ). A
// series whose kind conflicts across snapshots keeps the first kind and
// skips the conflicting later values.
func MergeSnapshots(prefix string, snaps ...Snapshot) Snapshot {
	type acc struct {
		m       MetricSnapshot
		buckets map[float64]int64
	}
	byName := map[string]*acc{}
	var order []string
	for _, s := range snaps {
		for _, m := range s.Metrics {
			name := prefix + m.Name
			a, ok := byName[name]
			if !ok {
				a = &acc{m: MetricSnapshot{Name: name, Kind: m.Kind, Help: m.Help}}
				if m.Kind == "histogram" {
					a.buckets = map[float64]int64{}
				}
				byName[name] = a
				order = append(order, name)
			}
			if a.m.Kind != m.Kind {
				continue
			}
			switch m.Kind {
			case "histogram":
				a.m.Count += m.Count
				a.m.Sum += m.Sum
				for _, b := range m.Buckets {
					a.buckets[b.UpperBound] += b.Count
				}
			default:
				a.m.Value += m.Value
			}
		}
	}
	out := Snapshot{Metrics: make([]MetricSnapshot, 0, len(order))}
	for _, name := range order {
		a := byName[name]
		if a.buckets != nil {
			bounds := make([]float64, 0, len(a.buckets))
			for b := range a.buckets {
				bounds = append(bounds, b)
			}
			sort.Float64s(bounds)
			for _, b := range bounds {
				a.m.Buckets = append(a.m.Buckets, BucketSnapshot{UpperBound: b, Count: a.buckets[b]})
			}
		}
		out.Metrics = append(out.Metrics, a.m)
	}
	sort.Slice(out.Metrics, func(i, j int) bool { return out.Metrics[i].Name < out.Metrics[j].Name })
	return out
}
