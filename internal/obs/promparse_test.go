package obs

import (
	"reflect"
	"strings"
	"testing"
)

// TestPrometheusRoundTrip pins the contract the fleet scraper depends
// on: parsing a registry's own text exposition reproduces its snapshot
// exactly (names, kinds, values, cumulative buckets).
func TestPrometheusRoundTrip(t *testing.T) {
	withTelemetry(t)
	r := NewRegistry()
	r.Counter("reqs_total", "requests").Add(42)
	r.Gauge("up_replicas", "replicas up").Set(3)
	h := r.Histogram("lat_seconds", "latency", []float64{0.001, 0.01, 0.1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5) // overflow bucket
	hv := r.HistogramVec("stage_seconds", "per-stage", "stage", []float64{0.001, 0.01})
	hv.With("decode").Observe(0.0005)
	hv.With("compute").Observe(0.02)
	cv := r.CounterVec("outcomes_total", "outcomes", "outcome")
	cv.With("ok").Add(7)
	cv.With("error").Inc()

	want := r.Snapshot()
	got, err := ParsePrometheusText(r.PrometheusText())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Metrics) != len(want.Metrics) {
		t.Fatalf("parsed %d series, want %d\ngot:  %+v\nwant: %+v",
			len(got.Metrics), len(want.Metrics), got.Metrics, want.Metrics)
	}
	for i := range want.Metrics {
		w, g := want.Metrics[i], got.Metrics[i]
		// Exposition collapses help text per base family; compare the
		// load-bearing fields.
		w.Help, g.Help = "", ""
		if !reflect.DeepEqual(w, g) {
			t.Errorf("series %d:\ngot  %+v\nwant %+v", i, g, w)
		}
	}
}

func TestParsePrometheusTextRejectsGarbage(t *testing.T) {
	for _, text := range []string{
		"lat_seconds",                    // no value
		"lat_seconds notanum",            // bad value
		"# TYPE h histogram\nh_bucket 3", // bucket without le
	} {
		if _, err := ParsePrometheusText(text); err == nil {
			t.Errorf("ParsePrometheusText(%q) accepted, want error", text)
		}
	}
	// Comments, blank lines, and unknown TYPE default handled leniently.
	snap, err := ParsePrometheusText("\n# a comment\n\nfoo 3\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Metrics) != 1 || snap.Metrics[0].Kind != "gauge" || snap.Metrics[0].Value != 3 {
		t.Fatalf("lenient parse = %+v", snap.Metrics)
	}
}

// TestMergeSnapshots pins the fleet aggregation rule: same-named series
// sum (counters, gauges, histogram sums/counts, buckets per bound) and
// every merged series gains the fleet_ prefix.
func TestMergeSnapshots(t *testing.T) {
	a := Snapshot{Metrics: []MetricSnapshot{
		{Name: "reqs_total", Kind: "counter", Value: 10},
		{Name: "lat_seconds", Kind: "histogram", Count: 2, Sum: 0.3, Buckets: []BucketSnapshot{
			{UpperBound: 0.1, Count: 1}, {UpperBound: 1, Count: 2},
		}},
	}}
	b := Snapshot{Metrics: []MetricSnapshot{
		{Name: "reqs_total", Kind: "counter", Value: 5},
		{Name: "only_b", Kind: "gauge", Value: 7},
		{Name: "lat_seconds", Kind: "histogram", Count: 1, Sum: 0.9, Buckets: []BucketSnapshot{
			{UpperBound: 0.1, Count: 0}, {UpperBound: 1, Count: 1},
		}},
	}}
	m := MergeSnapshots("fleet_", a, b)

	if c, ok := m.Find("fleet_reqs_total"); !ok || c.Value != 15 {
		t.Errorf("fleet_reqs_total = %+v ok=%v, want 15", c, ok)
	}
	if g, ok := m.Find("fleet_only_b"); !ok || g.Value != 7 {
		t.Errorf("fleet_only_b = %+v ok=%v, want 7", g, ok)
	}
	h, ok := m.Find("fleet_lat_seconds")
	if !ok || h.Count != 3 || h.Sum != 1.2 {
		t.Fatalf("fleet_lat_seconds = %+v ok=%v, want count 3 sum 1.2", h, ok)
	}
	wantBuckets := []BucketSnapshot{{UpperBound: 0.1, Count: 1}, {UpperBound: 1, Count: 3}}
	if !reflect.DeepEqual(h.Buckets, wantBuckets) {
		t.Errorf("merged buckets = %+v, want %+v", h.Buckets, wantBuckets)
	}
	// Kind conflict: first kind wins, later values skipped.
	c1 := Snapshot{Metrics: []MetricSnapshot{{Name: "x", Kind: "counter", Value: 1}}}
	c2 := Snapshot{Metrics: []MetricSnapshot{{Name: "x", Kind: "gauge", Value: 100}}}
	if x, ok := MergeSnapshots("", c1, c2).Find("x"); !ok || x.Kind != "counter" || x.Value != 1 {
		t.Errorf("kind conflict: %+v ok=%v, want counter 1", x, ok)
	}
}

// TestMergedSnapshotExposes checks the merged snapshot writes valid
// exposition text that itself round-trips — the contentionlb /metrics
// page serves exactly this.
func TestMergedSnapshotExposes(t *testing.T) {
	withTelemetry(t)
	r := NewRegistry()
	r.Counter("reqs_total", "").Add(3)
	r.Histogram("lat_seconds", "", []float64{0.1}).Observe(0.05)
	merged := MergeSnapshots("fleet_", r.Snapshot(), r.Snapshot())
	var sb strings.Builder
	if err := merged.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := ParsePrometheusText(sb.String())
	if err != nil {
		t.Fatalf("merged exposition does not re-parse: %v\n%s", err, sb.String())
	}
	if c, ok := back.Find("fleet_reqs_total"); !ok || c.Value != 6 {
		t.Errorf("fleet_reqs_total = %+v ok=%v, want 6", c, ok)
	}
	if h, ok := back.Find("fleet_lat_seconds"); !ok || h.Count != 2 {
		t.Errorf("fleet_lat_seconds = %+v ok=%v, want count 2", h, ok)
	}
}
