package obs

import "math"

// HistogramQuantile estimates the q-th quantile of a histogram from its
// cumulative buckets by linear interpolation inside the bucket that
// crosses the target rank — the same estimator Prometheus's
// histogram_quantile uses, shared here so the fleet page, the SLO
// tracker, and loadgen stop doing ad-hoc percentile math.
//
// Semantics at the edges:
//   - no observations (or no buckets): NaN
//   - q <= 0: the lower edge of the first occupied bucket
//   - q >= 1: the upper edge of the last occupied bucket
//   - rank lands in the +Inf overflow bucket: the highest finite bound
//     (there is nothing to interpolate toward), or NaN if every
//     observation overflowed a single-bucket histogram.
//
// buckets must be cumulative with ascending bounds, as produced by
// Snapshot — the last bucket's count is the total observation count.
func HistogramQuantile(buckets []BucketSnapshot, q float64) float64 {
	if len(buckets) == 0 {
		return math.NaN()
	}
	total := buckets[len(buckets)-1].Count
	if total <= 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	// Find the first bucket whose cumulative count reaches the rank.
	idx := len(buckets) - 1
	for i, b := range buckets {
		if float64(b.Count) >= rank && b.Count > 0 {
			idx = i
			break
		}
	}
	upper := buckets[idx].UpperBound
	lower := 0.0
	prev := int64(0)
	if idx > 0 {
		lower = buckets[idx-1].UpperBound
		prev = buckets[idx-1].Count
	}
	if math.IsInf(upper, 1) {
		// Overflow bucket: report the highest finite bound rather than
		// inventing a value beyond the histogram's resolution.
		if idx == 0 {
			return math.NaN()
		}
		return lower
	}
	in := buckets[idx].Count - prev
	if in <= 0 {
		return upper
	}
	frac := (rank - float64(prev)) / float64(in)
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	return lower + (upper-lower)*frac
}

// Quantile estimates the q-th quantile of a snapshotted histogram
// series; ok is false for non-histogram series or one with no
// observations.
func (m MetricSnapshot) Quantile(q float64) (v float64, ok bool) {
	if m.Kind != KindHistogram.String() || m.Count <= 0 {
		return 0, false
	}
	v = HistogramQuantile(m.Buckets, q)
	if math.IsNaN(v) {
		return 0, false
	}
	return v, true
}

// Find returns the snapshotted series with the exact name.
func (s Snapshot) Find(name string) (MetricSnapshot, bool) {
	for _, m := range s.Metrics {
		if m.Name == name {
			return m, true
		}
	}
	return MetricSnapshot{}, false
}
