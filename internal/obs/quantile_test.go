package obs

import (
	"math"
	"testing"
)

func cumBuckets(bounds []float64, counts []int64) []BucketSnapshot {
	out := make([]BucketSnapshot, len(bounds))
	cum := int64(0)
	for i := range bounds {
		cum += counts[i]
		out[i] = BucketSnapshot{UpperBound: bounds[i], Count: cum}
	}
	return out
}

func TestHistogramQuantileInterpolates(t *testing.T) {
	// 100 observations uniform in (0,1], 100 in (1,2].
	b := cumBuckets([]float64{1, 2, math.Inf(1)}, []int64{100, 100, 0})
	cases := []struct{ q, want float64 }{
		{0.25, 0.5},
		{0.5, 1.0},
		{0.75, 1.5},
		{0.9, 1.8},
	}
	for _, c := range cases {
		if got := HistogramQuantile(b, c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("q=%v: got %v, want %v", c.q, got, c.want)
		}
	}
}

func TestHistogramQuantileEdges(t *testing.T) {
	if !math.IsNaN(HistogramQuantile(nil, 0.5)) {
		t.Error("empty buckets must be NaN")
	}
	empty := cumBuckets([]float64{1, math.Inf(1)}, []int64{0, 0})
	if !math.IsNaN(HistogramQuantile(empty, 0.5)) {
		t.Error("zero observations must be NaN")
	}
	// All mass in the overflow bucket of a multi-bucket histogram:
	// report the highest finite bound, not an invented value.
	over := cumBuckets([]float64{1, 2, math.Inf(1)}, []int64{0, 0, 10})
	if got := HistogramQuantile(over, 0.99); got != 2 {
		t.Errorf("overflow-heavy q99 = %v, want highest finite bound 2", got)
	}
	// Single +Inf bucket: nothing finite to report.
	onlyInf := cumBuckets([]float64{math.Inf(1)}, []int64{5})
	if !math.IsNaN(HistogramQuantile(onlyInf, 0.5)) {
		t.Error("single overflow bucket must be NaN")
	}
	// q clamped to [0,1].
	b := cumBuckets([]float64{1, 2, math.Inf(1)}, []int64{10, 10, 0})
	if got := HistogramQuantile(b, -1); got != 0 {
		t.Errorf("q<0: got %v, want lower edge 0", got)
	}
	if got := HistogramQuantile(b, 2); got != 2 {
		t.Errorf("q>1: got %v, want upper occupied edge 2", got)
	}
}

func TestMetricSnapshotQuantile(t *testing.T) {
	withTelemetry(t)
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "", []float64{1, 2, 4})
	for i := 0; i < 100; i++ {
		h.Observe(0.5)
	}
	for i := 0; i < 100; i++ {
		h.Observe(3.0)
	}
	snap := r.Snapshot()
	m, ok := snap.Find("lat_seconds")
	if !ok {
		t.Fatal("histogram series missing from snapshot")
	}
	p50, ok := m.Quantile(0.5)
	if !ok || p50 < 0.5 || p50 > 1.0 {
		t.Errorf("p50 = %v ok=%v, want within (0,1]", p50, ok)
	}
	p99, ok := m.Quantile(0.99)
	if !ok || p99 < 2 || p99 > 4 {
		t.Errorf("p99 = %v ok=%v, want within (2,4]", p99, ok)
	}
	// Non-histogram series and empty histograms refuse.
	r.Counter("c_total", "").Inc()
	snap = r.Snapshot()
	if c, ok := snap.Find("c_total"); !ok {
		t.Fatal("counter missing")
	} else if _, ok := c.Quantile(0.5); ok {
		t.Error("counter Quantile must report !ok")
	}
	r2 := NewRegistry()
	r2.Histogram("empty_seconds", "", []float64{1})
	if m, ok := r2.Snapshot().Find("empty_seconds"); ok {
		if _, ok := m.Quantile(0.5); ok {
			t.Error("empty histogram Quantile must report !ok")
		}
	}
}
