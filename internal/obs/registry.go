package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind classifies a metric.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Counter is a monotonically increasing integer. All methods are
// goroutine-safe; Add and Inc are allocation-free and no-ops while
// telemetry is disabled.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add increments by n; negative or zero n is ignored (counters only go
// up).
func (c *Counter) Add(n int64) {
	if n <= 0 || !enabled.Load() {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous float64 value (queue depth, in-flight
// tasks, a high-water mark). Goroutine-safe; recording is a no-op while
// telemetry is disabled.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if !enabled.Load() {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add shifts the gauge by delta (negative to decrement).
func (g *Gauge) Add(delta float64) {
	if !enabled.Load() {
		return
	}
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// SetMax raises the gauge to v if v exceeds the current value — a
// high-water mark in one call.
func (g *Gauge) SetMax(v float64) {
	if !enabled.Load() {
		return
	}
	for {
		old := g.bits.Load()
		if v <= math.Float64frombits(old) {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets (cumulative at
// snapshot time, like Prometheus `le` buckets). Observe is
// allocation-free and a no-op while telemetry is disabled.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; +Inf bucket is implicit
	buckets []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if !enabled.Load() || math.IsNaN(v) {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// DefaultSecondsBuckets covers microseconds through minutes — suitable
// for both simulated bursts and wall-clock driver runs.
func DefaultSecondsBuckets() []float64 {
	return []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1, 5, 30, 120}
}

// DefaultSizeBuckets covers batch/queue sizes from 1 to 4096.
func DefaultSizeBuckets() []float64 {
	return []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 1024, 4096}
}

// metric is one registered series.
type metric struct {
	name string // full series name, possibly with a {label="value"} suffix
	help string
	kind Kind
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// Registry is a named collection of metrics. Registration is
// get-or-create: asking twice for the same name and kind returns the
// same handle, so packages may register at use sites without
// coordinating init order. Asking for an existing name with a different
// kind panics — that is a programming error, not a runtime condition.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: map[string]*metric{}}
}

// lookup returns the series, creating it via mk on first sight.
func (r *Registry) lookup(name, help string, kind Kind, mk func() *metric) *metric {
	if err := checkName(name); err != nil {
		panic(err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: metric %q already registered as %v, requested %v", name, m.kind, kind))
		}
		return m
	}
	m := mk()
	m.name, m.help, m.kind = name, help, kind
	r.metrics[name] = m
	return m
}

// Counter registers (or fetches) a counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.lookup(name, help, KindCounter, func() *metric { return &metric{c: &Counter{}} }).c
}

// Gauge registers (or fetches) a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.lookup(name, help, KindGauge, func() *metric { return &metric{g: &Gauge{}} }).g
}

// Histogram registers (or fetches) a histogram with the given ascending
// upper bucket bounds (a +Inf overflow bucket is implicit). bounds must
// be non-empty, finite, and strictly ascending; on a repeated
// registration the original bounds win.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic(fmt.Sprintf("obs: histogram %q needs at least one bucket bound", name))
	}
	for i, b := range bounds {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			panic(fmt.Sprintf("obs: histogram %q bound %v not finite", name, b))
		}
		if i > 0 && b <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not strictly ascending at %v", name, b))
		}
	}
	return r.lookup(name, help, KindHistogram, func() *metric {
		own := append([]float64(nil), bounds...)
		return &metric{h: &Histogram{bounds: own, buckets: make([]atomic.Int64, len(own)+1)}}
	}).h
}

// checkName validates a series name: a Prometheus-style identifier with
// an optional single {label="value"} suffix (labels are baked into the
// series name; exposition prints them verbatim).
func checkName(name string) error {
	base, labels := name, ""
	if i := strings.IndexByte(name, '{'); i >= 0 {
		base, labels = name[:i], name[i:]
		if !strings.HasSuffix(labels, "\"}") || strings.Count(labels, "{") != 1 {
			return fmt.Errorf("obs: malformed label suffix in %q", name)
		}
	}
	if base == "" {
		return fmt.Errorf("obs: empty metric name")
	}
	for i, ch := range base {
		ok := ch == '_' || ch == ':' || (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
			(i > 0 && ch >= '0' && ch <= '9')
		if !ok {
			return fmt.Errorf("obs: invalid metric name %q", name)
		}
	}
	return nil
}

// Label renders a labelled series name: Label("x_total", "kind", "drop")
// is `x_total{kind="drop"}`. Values are escaped per the Prometheus text
// format.
func Label(base, key, value string) string {
	return base + "{" + key + "=\"" + escapeLabelValue(value) + "\"}"
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, ch := range v {
		switch ch {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(ch)
		}
	}
	return b.String()
}

// CounterVec is a family of counters sharing one base name and label
// key, one series per label value. Handles are memoized: With is cheap
// after first use, and the family shows up in exposition as
// `base{label="value"}` series.
type CounterVec struct {
	r     *Registry
	base  string
	help  string
	label string

	mu sync.Mutex
	by map[string]*Counter
}

// CounterVec registers a labelled counter family.
func (r *Registry) CounterVec(base, help, label string) *CounterVec {
	return &CounterVec{r: r, base: base, help: help, label: label, by: map[string]*Counter{}}
}

// With returns the counter for one label value.
func (v *CounterVec) With(value string) *Counter {
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.by[value]; ok {
		return c
	}
	c := v.r.Counter(Label(v.base, v.label, value), v.help)
	v.by[value] = c
	return c
}

// GaugeVec is the gauge analogue of CounterVec.
type GaugeVec struct {
	r     *Registry
	base  string
	help  string
	label string

	mu sync.Mutex
	by map[string]*Gauge
}

// GaugeVec registers a labelled gauge family.
func (r *Registry) GaugeVec(base, help, label string) *GaugeVec {
	return &GaugeVec{r: r, base: base, help: help, label: label, by: map[string]*Gauge{}}
}

// With returns the gauge for one label value.
func (v *GaugeVec) With(value string) *Gauge {
	v.mu.Lock()
	defer v.mu.Unlock()
	if g, ok := v.by[value]; ok {
		return g
	}
	g := v.r.Gauge(Label(v.base, v.label, value), v.help)
	v.by[value] = g
	return g
}

// HistogramVec is the histogram analogue of CounterVec: one histogram
// per label value, all sharing one base name and bucket layout.
type HistogramVec struct {
	r      *Registry
	base   string
	help   string
	label  string
	bounds []float64

	mu sync.Mutex
	by map[string]*Histogram
}

// HistogramVec registers a labelled histogram family.
func (r *Registry) HistogramVec(base, help, label string, bounds []float64) *HistogramVec {
	return &HistogramVec{r: r, base: base, help: help, label: label,
		bounds: append([]float64(nil), bounds...), by: map[string]*Histogram{}}
}

// With returns the histogram for one label value.
func (v *HistogramVec) With(value string) *Histogram {
	v.mu.Lock()
	defer v.mu.Unlock()
	if h, ok := v.by[value]; ok {
		return h
	}
	h := v.r.Histogram(Label(v.base, v.label, value), v.help, v.bounds)
	v.by[value] = h
	return h
}

// BucketSnapshot is one cumulative histogram bucket.
type BucketSnapshot struct {
	UpperBound float64 `json:"-"`
	Count      int64   `json:"count"`
}

// bucketJSON is the wire form: `le` as a Prometheus-style string, so
// the +Inf overflow bucket survives JSON (which has no infinities).
type bucketJSON struct {
	Le    string `json:"le"`
	Count int64  `json:"count"`
}

// MarshalJSON implements json.Marshaler.
func (b BucketSnapshot) MarshalJSON() ([]byte, error) {
	le := "+Inf"
	if !math.IsInf(b.UpperBound, 1) {
		le = strconv.FormatFloat(b.UpperBound, 'g', -1, 64)
	}
	return json.Marshal(bucketJSON{Le: le, Count: b.Count})
}

// UnmarshalJSON implements json.Unmarshaler.
func (b *BucketSnapshot) UnmarshalJSON(data []byte) error {
	var w bucketJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	if w.Le == "+Inf" {
		b.UpperBound = math.Inf(1)
	} else {
		v, err := strconv.ParseFloat(w.Le, 64)
		if err != nil {
			return fmt.Errorf("obs: bucket bound %q: %w", w.Le, err)
		}
		b.UpperBound = v
	}
	b.Count = w.Count
	return nil
}

// MetricSnapshot is one series frozen at snapshot time.
type MetricSnapshot struct {
	Name    string           `json:"name"`
	Kind    string           `json:"kind"`
	Help    string           `json:"help,omitempty"`
	Value   float64          `json:"value,omitempty"`
	Count   int64            `json:"count,omitempty"`
	Sum     float64          `json:"sum,omitempty"`
	Buckets []BucketSnapshot `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time copy of a registry, sorted by series
// name. It is plain data: safe to marshal, diff, or embed in a run
// manifest.
type Snapshot struct {
	Metrics []MetricSnapshot `json:"metrics"`
}

// Snapshot freezes every registered series.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	ms := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		ms = append(ms, m)
	}
	r.mu.Unlock()
	sort.Slice(ms, func(i, j int) bool { return ms[i].name < ms[j].name })
	snap := Snapshot{Metrics: make([]MetricSnapshot, 0, len(ms))}
	for _, m := range ms {
		s := MetricSnapshot{Name: m.name, Kind: m.kind.String(), Help: m.help}
		switch m.kind {
		case KindCounter:
			s.Value = float64(m.c.Value())
		case KindGauge:
			s.Value = m.g.Value()
		case KindHistogram:
			s.Count = m.h.Count()
			s.Sum = m.h.Sum()
			cum := int64(0)
			for i, b := range m.h.bounds {
				cum += m.h.buckets[i].Load()
				s.Buckets = append(s.Buckets, BucketSnapshot{UpperBound: b, Count: cum})
			}
			cum += m.h.buckets[len(m.h.bounds)].Load()
			s.Buckets = append(s.Buckets, BucketSnapshot{UpperBound: math.Inf(1), Count: cum})
		}
		snap.Metrics = append(snap.Metrics, s)
	}
	return snap
}

// Value returns a series' value by exact name (counter count or gauge
// level; histogram observation count) and whether it exists.
func (s Snapshot) Value(name string) (float64, bool) {
	for _, m := range s.Metrics {
		if m.Name == name {
			if m.Kind == KindHistogram.String() {
				return float64(m.Count), true
			}
			return m.Value, true
		}
	}
	return 0, false
}

// Counter returns a counter's value by name, 0 when absent.
func (s Snapshot) Counter(name string) int64 {
	v, _ := s.Value(name)
	return int64(v)
}

// Gauge returns a gauge's value by name, 0 when absent.
func (s Snapshot) Gauge(name string) float64 {
	v, _ := s.Value(name)
	return v
}

// Labelled collects the values of every series of a labelled family,
// keyed by label value: Labelled("faults_injected_total") returns
// {"link-drop": 3, ...}.
func (s Snapshot) Labelled(base string) map[string]float64 {
	out := map[string]float64{}
	prefix := base + "{"
	for _, m := range s.Metrics {
		if !strings.HasPrefix(m.Name, prefix) {
			continue
		}
		inner := m.Name[len(prefix) : len(m.Name)-1] // key="value"
		if i := strings.IndexByte(inner, '"'); i >= 0 && strings.HasSuffix(inner, "\"") {
			out[inner[i+1:len(inner)-1]] = m.Value
		}
	}
	return out
}

// Reset zeroes every registered series. Intended for tests and for
// process-wide registries reused across runs.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, m := range r.metrics {
		switch m.kind {
		case KindCounter:
			m.c.v.Store(0)
		case KindGauge:
			m.g.bits.Store(0)
		case KindHistogram:
			for i := range m.h.buckets {
				m.h.buckets[i].Store(0)
			}
			m.h.count.Store(0)
			m.h.sumBits.Store(0)
		}
	}
}
