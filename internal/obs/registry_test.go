package obs

import (
	"math"
	"sync"
	"testing"
)

// withTelemetry enables recording for one test and restores the prior
// state afterwards.
func withTelemetry(t *testing.T) {
	t.Helper()
	prev := Enabled()
	SetEnabled(true)
	t.Cleanup(func() { SetEnabled(prev) })
}

func TestCounterBasics(t *testing.T) {
	withTelemetry(t)
	r := NewRegistry()
	c := r.Counter("x_total", "help")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters only go up
	c.Add(0)  // ignored
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("x_total", "other help"); again != c {
		t.Fatal("get-or-create returned a different handle")
	}
}

func TestCounterDisabledDoesNotCount(t *testing.T) {
	SetEnabled(false)
	r := NewRegistry()
	c := r.Counter("x_total", "")
	c.Inc()
	if got := c.Value(); got != 0 {
		t.Fatalf("disabled counter moved to %d", got)
	}
}

func TestGaugeSetAddMax(t *testing.T) {
	withTelemetry(t)
	r := NewRegistry()
	g := r.Gauge("depth", "")
	g.Set(3)
	g.Add(2)
	g.Add(-4)
	if got := g.Value(); got != 1 {
		t.Fatalf("gauge = %v, want 1", got)
	}
	g.SetMax(10)
	g.SetMax(7) // lower: ignored
	if got := g.Value(); got != 10 {
		t.Fatalf("SetMax gauge = %v, want 10", got)
	}
}

func TestHistogramBucketsCumulative(t *testing.T) {
	withTelemetry(t)
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "", []float64{1, 10})
	for _, v := range []float64{0.5, 0.7, 5, 100, math.NaN()} {
		h.Observe(v)
	}
	if got := h.Count(); got != 4 {
		t.Fatalf("count = %d, want 4 (NaN must be skipped)", got)
	}
	if got := h.Sum(); got != 106.2 {
		t.Fatalf("sum = %v, want 106.2", got)
	}
	snap := r.Snapshot()
	m := snap.Metrics[0]
	want := []BucketSnapshot{{1, 2}, {10, 3}, {math.Inf(1), 4}}
	if len(m.Buckets) != len(want) {
		t.Fatalf("buckets = %+v", m.Buckets)
	}
	for i, b := range want {
		if m.Buckets[i] != b {
			t.Fatalf("bucket[%d] = %+v, want %+v", i, m.Buckets[i], b)
		}
	}
}

func TestKindClashPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("gauge re-registration of a counter name did not panic")
		}
	}()
	r.Gauge("x", "")
}

func TestBadNamesPanic(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"", "1abc", "a b", "a{unterminated", `a{k="v"}{`, "per-cent%"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("name %q accepted", name)
				}
			}()
			r.Counter(name, "")
		}()
	}
	// Valid forms must not panic.
	r.Counter("ok_total", "")
	r.Counter(`ok_total{kind="link-drop"}`, "")
	r.Counter("ns:sub_total", "")
}

func TestHistogramBoundsValidation(t *testing.T) {
	r := NewRegistry()
	for _, bounds := range [][]float64{nil, {}, {1, 1}, {2, 1}, {math.NaN()}, {math.Inf(1)}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("bounds %v accepted", bounds)
				}
			}()
			r.Histogram("h", "", bounds)
		}()
	}
}

func TestCounterVecMemoizesSeries(t *testing.T) {
	withTelemetry(t)
	r := NewRegistry()
	v := r.CounterVec("faults_total", "injected faults", "kind")
	v.With("drop").Inc()
	v.With("drop").Inc()
	v.With("stall").Inc()
	snap := r.Snapshot()
	got := snap.Labelled("faults_total")
	if got["drop"] != 2 || got["stall"] != 1 {
		t.Fatalf("labelled values = %v", got)
	}
	if v.With("drop") != v.With("drop") {
		t.Fatal("With not memoized")
	}
}

func TestLabelEscaping(t *testing.T) {
	got := Label("m", "k", "a\"b\\c\nd")
	want := `m{k="a\"b\\c\nd"}`
	if got != want {
		t.Fatalf("Label = %s, want %s", got, want)
	}
}

func TestSnapshotLookups(t *testing.T) {
	withTelemetry(t)
	r := NewRegistry()
	r.Counter("c_total", "").Add(7)
	r.Gauge("g", "").Set(2.5)
	r.Histogram("h", "", []float64{1}).Observe(0.5)
	s := r.Snapshot()
	if s.Counter("c_total") != 7 {
		t.Fatalf("Counter lookup = %d", s.Counter("c_total"))
	}
	if s.Gauge("g") != 2.5 {
		t.Fatalf("Gauge lookup = %v", s.Gauge("g"))
	}
	if v, ok := s.Value("h"); !ok || v != 1 {
		t.Fatalf("histogram Value = %v, %v (want observation count)", v, ok)
	}
	if _, ok := s.Value("missing"); ok {
		t.Fatal("missing series reported present")
	}
	if s.Counter("missing") != 0 {
		t.Fatal("missing counter nonzero")
	}
}

func TestResetZeroesEverything(t *testing.T) {
	withTelemetry(t)
	r := NewRegistry()
	r.Counter("c_total", "").Add(3)
	r.Gauge("g", "").Set(9)
	r.Histogram("h", "", []float64{1}).Observe(2)
	r.Reset()
	s := r.Snapshot()
	if s.Counter("c_total") != 0 || s.Gauge("g") != 0 {
		t.Fatalf("reset left values: %+v", s.Metrics)
	}
	if v, _ := s.Value("h"); v != 0 {
		t.Fatalf("reset left histogram count %v", v)
	}
}

// TestConcurrentRecording exercises every record path under the race
// detector.
func TestConcurrentRecording(t *testing.T) {
	withTelemetry(t)
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", []float64{1, 2, 3})
	v := r.CounterVec("v_total", "", "k")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				c.Inc()
				g.Add(1)
				g.SetMax(float64(j))
				h.Observe(float64(j % 5))
				v.With([]string{"a", "b"}[i%2]).Inc()
			}
		}(i)
	}
	wg.Wait()
	if c.Value() != 4000 {
		t.Fatalf("counter = %d, want 4000", c.Value())
	}
	if g.Value() < 499 {
		t.Fatalf("gauge = %v", g.Value())
	}
	if h.Count() != 4000 {
		t.Fatalf("histogram count = %d", h.Count())
	}
	lab := r.Snapshot().Labelled("v_total")
	if lab["a"]+lab["b"] != 4000 {
		t.Fatalf("vec totals = %v", lab)
	}
}
