package obs

import (
	"fmt"
	"sync"
)

// SLO objectives and the multi-window burn-rate math.
//
// Two objectives are tracked over the same request stream:
//
//   - latency: at least LatencyTarget of requests complete within
//     LatencyThresholdSeconds (failed requests are excluded from the
//     latency SLI — they are the availability SLI's problem);
//   - availability: at least AvailabilityTarget of requests succeed.
//
// Each SLI's burn rate is (bad fraction) / (error budget): burn 1 means
// the error budget is being spent exactly at the sustainable rate, burn
// 14.4 means a 30-day budget would be gone in 50 hours. A breach is
// declared only when BOTH the fast and the slow window burn above
// BurnAlert — the standard multi-window rule: the slow window proves
// the problem is real (not one bad second), the fast window proves it
// is still happening (so the alert resets quickly after recovery).
//
// Time comes from a pluggable Clock, so DES tests walk the tracker
// through breach and recovery deterministically; production uses
// WallClock. State is a ring of fixed-width time buckets covering the
// slow window; Record is allocation-free.

// SLOConfig configures an SLOTracker. Zero fields take defaults.
type SLOConfig struct {
	// LatencyThresholdSeconds is the "fast enough" bound; <= 0 disables
	// the latency objective (its burn is always 0).
	LatencyThresholdSeconds float64
	// LatencyTarget is the fraction of successful requests that must be
	// fast enough (default 0.99).
	LatencyTarget float64
	// AvailabilityTarget is the fraction of requests that must succeed
	// (default 0.999).
	AvailabilityTarget float64
	// FastWindowSeconds / SlowWindowSeconds are the two burn windows
	// (defaults 300 and 3600 — 5m and 1h).
	FastWindowSeconds float64
	SlowWindowSeconds float64
	// BurnAlert is the burn rate both windows must exceed to declare a
	// breach (default 14.4 — the classic "2% of a 30-day budget per
	// hour" paging threshold).
	BurnAlert float64
	// Clock supplies time; WallClock() when nil. DES tests pass the
	// kernel's Now.
	Clock Clock
	// Registry receives the slo_* gauges; Default() when nil.
	Registry *Registry
}

// sloBucket accumulates one time slice of the request stream.
type sloBucket struct {
	total  int64 // all requests
	ok     int64 // successful requests
	slow   int64 // successful but over the latency threshold
	failed int64 // unsuccessful
}

// SLOTracker is the tracker; create with NewSLOTracker. Record works
// whether or not telemetry is enabled — objectives gate readiness, not
// just dashboards — but the exported gauges only move while enabled.
type SLOTracker struct {
	cfg   SLOConfig
	clock Clock
	width float64 // seconds per bucket
	fastN int     // buckets per fast window
	slowN int     // buckets per slow window == len(ring)

	mu   sync.Mutex
	ring []sloBucket
	cur  int64 // absolute bucket index the cursor is on

	gLatFast, gLatSlow *Gauge
	gAvFast, gAvSlow   *Gauge
	gBreach            *Gauge
}

// NewSLOTracker validates cfg and returns a tracker.
func NewSLOTracker(cfg SLOConfig) (*SLOTracker, error) {
	if cfg.LatencyTarget == 0 {
		cfg.LatencyTarget = 0.99
	}
	if cfg.AvailabilityTarget == 0 {
		cfg.AvailabilityTarget = 0.999
	}
	if cfg.FastWindowSeconds == 0 {
		cfg.FastWindowSeconds = 300
	}
	if cfg.SlowWindowSeconds == 0 {
		cfg.SlowWindowSeconds = 3600
	}
	if cfg.BurnAlert == 0 {
		cfg.BurnAlert = 14.4
	}
	if cfg.LatencyTarget < 0 || cfg.LatencyTarget >= 1 {
		return nil, fmt.Errorf("obs: latency target %v outside [0,1)", cfg.LatencyTarget)
	}
	if cfg.AvailabilityTarget < 0 || cfg.AvailabilityTarget >= 1 {
		return nil, fmt.Errorf("obs: availability target %v outside [0,1)", cfg.AvailabilityTarget)
	}
	if cfg.FastWindowSeconds <= 0 || cfg.SlowWindowSeconds < cfg.FastWindowSeconds {
		return nil, fmt.Errorf("obs: windows fast=%vs slow=%vs (need 0 < fast <= slow)",
			cfg.FastWindowSeconds, cfg.SlowWindowSeconds)
	}
	if cfg.BurnAlert < 0 {
		return nil, fmt.Errorf("obs: negative burn alert %v", cfg.BurnAlert)
	}
	if cfg.Clock == nil {
		cfg.Clock = WallClock()
	}
	reg := cfg.Registry
	if reg == nil {
		reg = Default()
	}
	// Bucket width: 1/60 of the fast window, so the fast burn updates
	// smoothly and the slow ring stays small (720 buckets at defaults).
	width := cfg.FastWindowSeconds / 60
	fastN := 60
	slowN := int(cfg.SlowWindowSeconds/width + 0.5)
	if slowN < fastN {
		slowN = fastN
	}
	t := &SLOTracker{
		cfg: cfg, clock: cfg.Clock, width: width, fastN: fastN, slowN: slowN,
		ring:     make([]sloBucket, slowN),
		gLatFast: reg.Gauge(MetricSLOLatencyBurnFast, "latency SLO burn rate over the fast window"),
		gLatSlow: reg.Gauge(MetricSLOLatencyBurnSlow, "latency SLO burn rate over the slow window"),
		gAvFast:  reg.Gauge(MetricSLOAvailBurnFast, "availability SLO burn rate over the fast window"),
		gAvSlow:  reg.Gauge(MetricSLOAvailBurnSlow, "availability SLO burn rate over the slow window"),
		gBreach:  reg.Gauge(MetricSLOBreach, "1 while both burn windows exceed the alert threshold"),
	}
	t.cur = t.bucketIndex(t.clock())
	return t, nil
}

func (t *SLOTracker) bucketIndex(now float64) int64 {
	if now < 0 {
		now = 0
	}
	return int64(now / t.width)
}

// Record feeds one finished request into the tracker: its latency in
// seconds and whether it succeeded. Allocation-free.
func (t *SLOTracker) Record(latencySeconds float64, ok bool) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.advanceLocked(t.clock())
	b := &t.ring[int(t.cur%int64(len(t.ring)))]
	b.total++
	if !ok {
		b.failed++
	} else {
		b.ok++
		if t.cfg.LatencyThresholdSeconds > 0 && latencySeconds > t.cfg.LatencyThresholdSeconds {
			b.slow++
		}
	}
	t.mu.Unlock()
}

// advanceLocked moves the cursor to the bucket holding now, zeroing the
// slices in between, and refreshes the exported gauges whenever the
// bucket actually turns over (so gauge staleness is at most one bucket
// width without putting an O(ring) scan on every Record).
func (t *SLOTracker) advanceLocked(now float64) {
	idx := t.bucketIndex(now)
	if idx <= t.cur {
		return
	}
	n := idx - t.cur
	if n > int64(len(t.ring)) {
		n = int64(len(t.ring))
	}
	for i := int64(1); i <= n; i++ {
		t.ring[int((t.cur+i)%int64(len(t.ring)))] = sloBucket{}
	}
	t.cur = idx
	st := t.statusLocked()
	t.gLatFast.Set(st.Fast.LatencyBurn)
	t.gLatSlow.Set(st.Slow.LatencyBurn)
	t.gAvFast.Set(st.Fast.AvailabilityBurn)
	t.gAvSlow.Set(st.Slow.AvailabilityBurn)
	if st.Breach {
		t.gBreach.Set(1)
	} else {
		t.gBreach.Set(0)
	}
}

// SLOWindowStatus is one burn window's tallies and rates.
type SLOWindowStatus struct {
	Seconds          float64 `json:"seconds"`
	Total            int64   `json:"total"`
	Slow             int64   `json:"slow,omitempty"`
	Failed           int64   `json:"failed,omitempty"`
	LatencyBurn      float64 `json:"latency_burn"`
	AvailabilityBurn float64 `json:"availability_burn"`
}

// SLOStatus is the tracker's full externally-visible state — served in
// /readyz detail, on /debug/fleet, and embedded in the run manifest.
type SLOStatus struct {
	LatencyThresholdMs float64         `json:"latency_threshold_ms,omitempty"`
	LatencyTarget      float64         `json:"latency_target"`
	AvailabilityTarget float64         `json:"availability_target"`
	BurnAlert          float64         `json:"burn_alert"`
	Fast               SLOWindowStatus `json:"fast"`
	Slow               SLOWindowStatus `json:"slow"`
	Breach             bool            `json:"breach"`
	Reason             string          `json:"reason,omitempty"`
}

// Status advances the clock and computes both windows. Nil-safe (zero
// status).
func (t *SLOTracker) Status() SLOStatus {
	if t == nil {
		return SLOStatus{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.advanceLocked(t.clock())
	return t.statusLocked()
}

func (t *SLOTracker) statusLocked() SLOStatus {
	st := SLOStatus{
		LatencyThresholdMs: t.cfg.LatencyThresholdSeconds * 1e3,
		LatencyTarget:      t.cfg.LatencyTarget,
		AvailabilityTarget: t.cfg.AvailabilityTarget,
		BurnAlert:          t.cfg.BurnAlert,
		Fast:               t.windowLocked(t.fastN),
		Slow:               t.windowLocked(t.slowN),
	}
	latBreach := st.Fast.LatencyBurn >= t.cfg.BurnAlert && st.Slow.LatencyBurn >= t.cfg.BurnAlert
	avBreach := st.Fast.AvailabilityBurn >= t.cfg.BurnAlert && st.Slow.AvailabilityBurn >= t.cfg.BurnAlert
	switch {
	case latBreach && avBreach:
		st.Breach, st.Reason = true, "latency+availability"
	case latBreach:
		st.Breach, st.Reason = true, "latency"
	case avBreach:
		st.Breach, st.Reason = true, "availability"
	}
	return st
}

// windowLocked sums the last n buckets ending at the cursor.
func (t *SLOTracker) windowLocked(n int) SLOWindowStatus {
	var w sloBucket
	for i := 0; i < n; i++ {
		b := t.ring[int(((t.cur-int64(i))%int64(len(t.ring))+int64(len(t.ring)))%int64(len(t.ring)))]
		w.total += b.total
		w.ok += b.ok
		w.slow += b.slow
		w.failed += b.failed
	}
	st := SLOWindowStatus{Seconds: float64(n) * t.width, Total: w.total, Slow: w.slow, Failed: w.failed}
	if w.ok > 0 && t.cfg.LatencyThresholdSeconds > 0 {
		st.LatencyBurn = (float64(w.slow) / float64(w.ok)) / (1 - t.cfg.LatencyTarget)
	}
	if w.total > 0 {
		st.AvailabilityBurn = (float64(w.failed) / float64(w.total)) / (1 - t.cfg.AvailabilityTarget)
	}
	return st
}
