package obs

import (
	"testing"
)

// sloHarness builds a tracker on a virtual clock with 1-second buckets
// (fast window 60s, slow window 600s) against a private registry, so
// the DES battery can walk breach and recovery deterministically.
func sloHarness(t *testing.T) (*SLOTracker, *float64) {
	t.Helper()
	now := new(float64)
	tr, err := NewSLOTracker(SLOConfig{
		LatencyThresholdSeconds: 0.1,
		LatencyTarget:           0.9,
		AvailabilityTarget:      0.99,
		FastWindowSeconds:       60,
		SlowWindowSeconds:       600,
		Clock:                   func() float64 { return *now },
		Registry:                NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr, now
}

func TestSLOConfigValidation(t *testing.T) {
	bad := []SLOConfig{
		{LatencyTarget: 1.5},
		{AvailabilityTarget: -0.1},
		{FastWindowSeconds: 600, SlowWindowSeconds: 60},
		{BurnAlert: -1},
	}
	for i, cfg := range bad {
		cfg.Registry = NewRegistry()
		if _, err := NewSLOTracker(cfg); err == nil {
			t.Errorf("case %d: config %+v accepted, want error", i, cfg)
		}
	}
	var nilT *SLOTracker
	nilT.Record(1, true) // must not panic
	if st := nilT.Status(); st.Breach {
		t.Error("nil tracker reports breach")
	}
}

// TestSLOBreachAndRecovery is the DES-clocked battery: healthy traffic
// keeps burn at zero, an availability incident trips the multi-window
// alert, and recovery clears it as soon as the fast window drains even
// though the slow window still remembers the incident.
func TestSLOBreachAndRecovery(t *testing.T) {
	tr, now := sloHarness(t)

	// Phase 1: 120 virtual seconds of healthy, fast traffic.
	for s := 0; s < 120; s++ {
		*now = float64(s)
		for i := 0; i < 10; i++ {
			tr.Record(0.01, true)
		}
	}
	st := tr.Status()
	if st.Breach || st.Fast.AvailabilityBurn != 0 || st.Fast.LatencyBurn != 0 {
		t.Fatalf("healthy traffic: %+v, want no burn", st)
	}

	// Phase 2: 60 s outage — every request fails. Availability burn is
	// failed/total scaled by the 1% budget: fast window goes to 100,
	// slow window (600 s, 1/7 of it failing after 60 s) well above 14.4.
	for s := 120; s < 180; s++ {
		*now = float64(s)
		for i := 0; i < 10; i++ {
			tr.Record(0.01, false)
		}
	}
	st = tr.Status()
	if !st.Breach || st.Reason != "availability" {
		t.Fatalf("after outage: breach=%v reason=%q (fast av burn %.1f, slow %.1f), want availability breach",
			st.Breach, st.Reason, st.Fast.AvailabilityBurn, st.Slow.AvailabilityBurn)
	}
	if st.Fast.AvailabilityBurn < 14.4 || st.Slow.AvailabilityBurn < 14.4 {
		t.Fatalf("both windows must burn above alert: fast %.1f slow %.1f",
			st.Fast.AvailabilityBurn, st.Slow.AvailabilityBurn)
	}

	// Phase 3: recovery. After 61 s of healthy traffic the fast window
	// holds no failures, so the breach clears — the slow window still
	// carries the outage (that is the point of the multi-window rule:
	// the fast window resets the alert quickly once the problem stops).
	for s := 180; s < 241; s++ {
		*now = float64(s)
		for i := 0; i < 10; i++ {
			tr.Record(0.01, true)
		}
	}
	st = tr.Status()
	if st.Breach {
		t.Fatalf("after recovery: still breached %+v", st)
	}
	if st.Fast.AvailabilityBurn != 0 {
		t.Errorf("fast window should have drained, burn %.2f", st.Fast.AvailabilityBurn)
	}
	if st.Slow.AvailabilityBurn <= 0 {
		t.Error("slow window should still remember the outage")
	}
}

// TestSLOLatencyBreach drives the latency objective: requests that
// succeed but miss the threshold burn the latency budget while leaving
// availability untouched.
func TestSLOLatencyBreach(t *testing.T) {
	tr, now := sloHarness(t)
	// All requests succeed, all are slow: slow/ok = 1, budget 10% →
	// burn 10 in both windows. Not a breach at the default 14.4 alert…
	for s := 0; s < 60; s++ {
		*now = float64(s)
		for i := 0; i < 10; i++ {
			tr.Record(0.5, true)
		}
	}
	st := tr.Status()
	if st.Breach {
		t.Fatalf("burn 10 < alert 14.4 must not breach: %+v", st)
	}
	if st.Fast.LatencyBurn < 9.9 || st.Fast.LatencyBurn > 10.1 {
		t.Fatalf("fast latency burn %.2f, want ~10", st.Fast.LatencyBurn)
	}
	if st.Fast.AvailabilityBurn != 0 {
		t.Errorf("slow-but-successful traffic must not burn availability, got %.2f", st.Fast.AvailabilityBurn)
	}

	// …until a tracker with a tighter target sees the same traffic.
	tight, tnow := sloHarness(t)
	_ = tnow
	tight.cfg.LatencyTarget = 0.99 // budget 1% → burn 100
	for s := 0; s < 60; s++ {
		*tnow = float64(s)
		for i := 0; i < 10; i++ {
			tight.Record(0.5, true)
		}
	}
	st = tight.Status()
	if !st.Breach || st.Reason != "latency" {
		t.Fatalf("tight latency target: breach=%v reason=%q, want latency breach", st.Breach, st.Reason)
	}
}

// TestSLORecordAllocationFree pins Record on the request path.
func TestSLORecordAllocationFree(t *testing.T) {
	tr, now := sloHarness(t)
	*now = 1
	if allocs := testing.AllocsPerRun(200, func() {
		tr.Record(0.01, true)
		tr.Record(0.5, false)
	}); allocs != 0 {
		t.Fatalf("SLO Record allocates %.1f objects/op, want 0", allocs)
	}
}

// TestSLOGaugesExported checks the slo_* gauges move when a bucket
// turns over while telemetry is enabled.
func TestSLOGaugesExported(t *testing.T) {
	withTelemetry(t)
	now := new(float64)
	reg := NewRegistry()
	tr, err := NewSLOTracker(SLOConfig{
		AvailabilityTarget: 0.99,
		FastWindowSeconds:  60,
		SlowWindowSeconds:  60,
		Clock:              func() float64 { return *now },
		Registry:           reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 30; s++ {
		*now = float64(s)
		tr.Record(0.01, false)
	}
	*now = 31
	tr.Status() // advances the cursor past the last bucket → gauges refresh
	snap := reg.Snapshot()
	m, ok := snap.Find(MetricSLOAvailBurnFast)
	if !ok || m.Value <= 0 {
		t.Fatalf("%s = %+v ok=%v, want positive burn", MetricSLOAvailBurnFast, m, ok)
	}
	if b, ok := snap.Find(MetricSLOBreach); !ok || b.Value != 1 {
		t.Fatalf("%s = %+v ok=%v, want 1", MetricSLOBreach, b, ok)
	}
}
