package obs

import (
	"sort"
	"sync"
	"time"

	"contention/internal/trace"
)

// Clock supplies the tracer's notion of "now" in seconds. A wall-clock
// tracer uses WallClock; a DES-driven tracer passes the kernel's Now
// method directly (func() float64), so spans from a simulated run carry
// virtual timestamps and line up with the simulation's own event log.
type Clock func() float64

// processStart anchors WallClock so wall-clock spans are small positive
// seconds, comparable in magnitude to virtual-time spans.
var processStart = time.Now()

// WallClock returns seconds since process start, monotonic.
func WallClock() Clock {
	return func() float64 { return time.Since(processStart).Seconds() }
}

// SinceStart converts a wall-clock instant to the WallClock timebase
// (seconds since process start), so code that measured stages with
// time.Now can record them as spans on the default tracer.
func SinceStart(t time.Time) float64 { return t.Sub(processStart).Seconds() }

// SpanRecord is one finished (or still-open, End < Start is never
// emitted; open spans have End == Start at export time) span. Spans
// recorded under a sampled TraceContext additionally carry hex trace,
// span, and parent-span ids; plain Start/StartSpan spans leave them
// empty, so pre-tracing manifests are byte-identical.
type SpanRecord struct {
	Actor string  `json:"actor"`
	Name  string  `json:"name"`
	Start float64 `json:"start"`
	End   float64 `json:"end"`

	Trace  string `json:"trace,omitempty"`
	Span   string `json:"span,omitempty"`
	Parent string `json:"parent,omitempty"`
}

// Duration returns End - Start.
func (s SpanRecord) Duration() float64 { return s.End - s.Start }

// Tracer collects spans under one clock. It is goroutine-safe and
// bounded: past Max spans new ones are dropped and counted, never
// grown without limit. The zero value is not usable; a nil *Tracer is —
// every method no-ops, so call sites need no guards.
type Tracer struct {
	clock Clock
	max   int

	mu      sync.Mutex
	spans   []SpanRecord
	dropped int64
}

// NewTracer returns a tracer reading time from clock and retaining at
// most maxSpans spans (<= 0 selects 4096).
func NewTracer(clock Clock, maxSpans int) *Tracer {
	if clock == nil {
		clock = WallClock()
	}
	if maxSpans <= 0 {
		maxSpans = 4096
	}
	return &Tracer{clock: clock, max: maxSpans}
}

// Span is an in-flight interval; End finishes it. A nil *Span (from a
// nil or disabled tracer, or an unsampled trace context) is inert.
type Span struct {
	t      *Tracer
	actor  string
	name   string
	start  float64
	trace  uint64
	id     uint64
	parent uint64
}

// Start opens a span for actor entering name. While telemetry is
// disabled (or on a nil tracer) it returns nil without allocating.
func (t *Tracer) Start(actor, name string) *Span {
	if t == nil || !enabled.Load() {
		return nil
	}
	return &Span{t: t, actor: actor, name: name, start: t.clock()}
}

// StartCtx opens a span inside trace tc and returns, alongside the
// span, the context downstream work should carry (same trace, this span
// as parent). Unsampled, invalid, or disabled contexts cost nothing:
// the span is nil and tc passes through unchanged, so propagation is
// preserved even where recording is off.
func (t *Tracer) StartCtx(actor, name string, tc TraceContext) (*Span, TraceContext) {
	if t == nil || !enabled.Load() || !tc.Sampled || !tc.Valid() {
		return nil, tc
	}
	id := NewID()
	s := &Span{t: t, actor: actor, name: name, start: t.clock(),
		trace: tc.TraceID, id: id, parent: tc.SpanID}
	return s, TraceContext{TraceID: tc.TraceID, SpanID: id, Sampled: true}
}

// Context returns the trace context rooted at this span (zero for spans
// outside any trace, including nil spans).
func (s *Span) Context() TraceContext {
	if s == nil || s.trace == 0 {
		return TraceContext{}
	}
	return TraceContext{TraceID: s.trace, SpanID: s.id, Sampled: true}
}

// End closes the span and returns its duration in clock seconds
// (0 on a nil span).
func (s *Span) End() float64 {
	if s == nil {
		return 0
	}
	end := s.t.clock()
	if end < s.start {
		end = s.start
	}
	rec := SpanRecord{Actor: s.actor, Name: s.name, Start: s.start, End: end}
	if s.trace != 0 {
		rec.Trace = hex64(s.trace)
		rec.Span = hex64(s.id)
		if s.parent != 0 {
			rec.Parent = hex64(s.parent)
		}
	}
	s.t.append(rec)
	return rec.Duration()
}

// RecordSpan appends an already-measured interval as a child span of
// tc — the retroactive form used by per-stage attribution, where stage
// boundaries are timed unconditionally (for histograms) and only
// promoted to spans when the request is sampled. Times are in the
// tracer's clock timebase. No-op (and allocation-free) when the tracer
// is nil, telemetry is disabled, or tc is unsampled.
func (t *Tracer) RecordSpan(actor, name string, start, end float64, tc TraceContext) {
	if t == nil || !enabled.Load() || !tc.Sampled || !tc.Valid() {
		return
	}
	if end < start {
		end = start
	}
	t.append(SpanRecord{
		Actor: actor, Name: name, Start: start, End: end,
		Trace: hex64(tc.TraceID), Span: hex64(NewID()), Parent: hex64(tc.SpanID),
	})
}

func (t *Tracer) append(rec SpanRecord) {
	t.mu.Lock()
	if len(t.spans) < t.max {
		t.spans = append(t.spans, rec)
	} else {
		t.dropped++
	}
	t.mu.Unlock()
}

// HexID renders an id the way the wire format does: 16 hex digits.
func HexID(v uint64) string { return hex64(v) }

// hex64 renders an id the way the wire format does: 16 hex digits.
func hex64(v uint64) string {
	const digits = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = digits[v&0xf]
		v >>= 4
	}
	return string(b[:])
}

// Spans returns the finished spans sorted by start time (ties broken by
// actor, then name, so concurrent spans export deterministically).
func (t *Tracer) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := append([]SpanRecord(nil), t.spans...)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Actor != b.Actor {
			return a.Actor < b.Actor
		}
		return a.Name < b.Name
	})
	return out
}

// Dropped reports spans discarded over the retention bound.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Reset clears retained spans (between runs in one process).
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = nil
	t.dropped = 0
	t.mu.Unlock()
}

// Export replays the spans into a trace.Trace event log: each span
// records the actor entering the span's name state at Start and the
// idle state at End. The result renders with trace.Timeline exactly
// like the simulator's own actor/state charts, so virtual-time DES
// spans and wall-clock emulation spans share one timeline form.
func (t *Tracer) Export(tr *trace.Trace, idleState string) {
	for _, s := range t.Spans() {
		tr.Record(s.Start, s.Actor, s.Name)
		tr.Record(s.End, s.Actor, idleState)
	}
}

// defaultTracer is the process-wide wall-clock tracer StartSpan feeds.
var defaultTracer = NewTracer(WallClock(), 8192)

// DefaultTracer returns the process-wide tracer.
func DefaultTracer() *Tracer { return defaultTracer }

// StartSpan opens a span on the process-wide wall-clock tracer; nil
// (free) while telemetry is disabled.
func StartSpan(actor, name string) *Span { return defaultTracer.Start(actor, name) }
